// chat: a replicated chat log ordered by the paper's ETOB (Algorithm 5),
// demonstrating §5 property 3: causal order — a reply never appears before
// the message it quotes — holds at every replica at ALL times, including
// while Ω outputs different leaders at different replicas.
package main

import (
	"fmt"

	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

type message struct {
	id      string
	from    model.ProcID
	at      model.Time
	replyTo string
}

func main() {
	const n = 4
	fp := model.NewFailurePattern(n)
	// Split brain until t=2500.
	det := fd.NewOmegaSplit(fp, 2, 1, 1, 2500)
	rec := trace.NewRecorder(n)
	k := sim.New(fp, det, etob.Factory(), sim.Options{Seed: 99})
	k.SetObserver(rec)

	thread := []message{
		{id: "alice: anyone up for lunch?", from: 1, at: 30},
		{id: "bob: yes! where?", from: 2, at: 160, replyTo: "alice: anyone up for lunch?"},
		{id: "carol: new ramen place", from: 3, at: 290, replyTo: "bob: yes! where?"},
		{id: "dave: +1 ramen", from: 4, at: 292, replyTo: "bob: yes! where?"},
		{id: "alice: 12:30 then", from: 1, at: 420, replyTo: "carol: new ramen place"},
	}
	var ids []string
	for _, m := range thread {
		in := model.BroadcastInput{ID: m.id}
		if m.replyTo != "" {
			in.Deps = []string{m.replyTo}
		}
		ids = append(ids, m.id)
		k.ScheduleInput(m.from, m.at, in)
	}

	k.RunUntil(30000, func(k *sim.Kernel) bool {
		return k.Now() > 3000 && rec.AllDelivered(fp.Correct(), ids)
	})
	k.Run(k.Now() + 500)

	fmt.Println("final chat log at every replica:")
	for i, line := range rec.FinalSeq(1) {
		fmt.Printf("  %2d. %s\n", i+1, line)
	}

	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{})
	fmt.Printf("\ncausal order held at all times: %v (checked over %d snapshots)\n",
		rep.CausalOrder.OK, countSnapshots(rec, n))
	fmt.Printf("replicas disagreed on interleavings until tau=%d, then converged (Ω stabilized at 2500)\n", rep.Tau)
}

func countSnapshots(rec *trace.Recorder, n int) int {
	total := 0
	for _, p := range model.Procs(n) {
		total += len(rec.Seqs(p))
	}
	return total
}
