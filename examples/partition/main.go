// partition: the paper's headline scenario (§1, §7). Three of five replicas
// crash — only a MINORITY stays correct. The strongly consistent service
// (majority quorums) blocks forever; the paper's eventually consistent
// service keeps committing with just Ω; and the strong service becomes live
// again if it is handed the Σ oracle (detector Ω+Σ) — Σ being exactly the
// information gap between consistency and eventual consistency.
//
// Act two replays the scenario with a crash-free NETWORK partition instead:
// all five replicas stay up, but links between {p1,p2} and {p3,p4,p5} sever
// for a while and then heal (sim.Partitioned buffers cross-partition traffic
// until heal time — the paper's eventual-delivery assumption). Eventual
// consistency rides it out and converges after the heal.
//
// Act three withdraws the eventual-delivery assumption itself: the "lossy"
// environment preset (internal/sim/adversary) silently drops ~15% of
// messages. Raw, the eventually consistent service can stay diverged forever
// — eventual consistency is NOT magic, it needs eventual delivery — and the
// same service converges again once the retransmission layer
// (internal/retransmit) restores delivery end-to-end.
//
// Act four turns everything hostile at once: the "hostile" COMPOSITE preset
// is a single registered environment stacking the protocol-aware
// leader-starving scheduler (adversary.LeaderStarver, reading the run's Ω
// output through the kernel's leadership hook) under ~10% message loss, over
// a churn schedule that keeps restarting replicas. With retransmission
// restoring delivery, eventual consistency STILL converges — the paper's
// claim quantified over its worst named environment — just as late as the
// adversary can push it.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	_ "repro/internal/sim/adversary" // registers the lossy/churn/adversarial presets
)

func main() {
	mk := func() *model.FailurePattern {
		fp := model.NewFailurePattern(5)
		fp.Crash(3, 0)
		fp.Crash(4, 0)
		fp.Crash(5, 0)
		return fp
	}

	cases := []struct {
		name string
		c    core.Consistency
	}{
		{"eventual (ETOB, Ω only)", core.Eventual},
		{"strong (Paxos, majority quorums)", core.Strong},
		{"strong (Paxos, Σ quorums — detector Ω+Σ)", core.StrongSigma},
	}
	for _, tc := range cases {
		svc := core.NewSimService(core.Config{
			N:           5,
			Consistency: tc.c,
			Failures:    mk(),
			Sim:         sim.Options{Seed: 11},
		})
		svc.Submit(1, 30, "set order-1 shipped")
		svc.Submit(2, 90, "set order-2 pending")
		svc.Submit(1, 150, "set order-3 canceled")
		svc.Run(200) // get all three submissions into the run first
		converged := svc.RunUntilConverged(15000)
		applied := 0
		s1 := svc.Snapshot(1)
		if s1 != "" {
			applied = len(splitNonEmpty(s1))
		}
		fmt.Printf("%-45s committed %d/3 operations, converged=%v\n", tc.name+":", applied, converged)
		fmt.Printf("%-45s state at p1: %q\n\n", "", s1)
	}
	fmt.Println("2 of 5 correct: majority quorums are unobtainable, so strong consistency")
	fmt.Println("stalls; eventual consistency needs only Ω (the paper's Theorem 2), and")
	fmt.Println("handing the strong protocol Σ restores it — Σ IS the difference.")

	fmt.Println("\n--- act two: crash-free network partition ---")
	// No crashes: the network itself splits {p1,p2} | {p3,p4,p5} during
	// [500, 3500), buffering cross-partition messages until the heal.
	svc := core.NewSimService(core.Config{
		N:           5,
		Consistency: core.Eventual,
		Sim: sim.Options{
			Seed:    11,
			Network: func() sim.NetworkModel { return sim.NewPartitioned(2, 500, 3000) },
		},
	})
	svc.Submit(1, 30, "set order-1 shipped")   // before the partition
	svc.Submit(2, 900, "set order-2 pending")  // inside: minority side
	svc.Submit(4, 1200, "set order-3 on-hold") // inside: majority side
	svc.Run(2000)
	fmt.Printf("during partition  p1: %q\n", svc.Snapshot(1))
	fmt.Printf("during partition  p4: %q\n", svc.Snapshot(4))
	converged := svc.RunUntilConverged(20000)
	fmt.Printf("after heal (t=%d) converged=%v\n", svc.Kernel().Now(), converged)
	fmt.Printf("after heal        p1: %q\n", svc.Snapshot(1))
	fmt.Printf("after heal        p4: %q\n", svc.Snapshot(4))
	fmt.Println("\nthe sides diverge while split, then the buffered traffic drains at the")
	fmt.Println("heal and every replica converges to one order — eventual consistency.")

	fmt.Println("\n--- act three: lossy links, with and without retransmission ---")
	lossy, err := sim.PresetFactory("lossy")
	if err != nil {
		panic(err)
	}
	for _, retransmit := range []bool{false, true} {
		svc := core.NewSimService(core.Config{
			N:           5,
			Consistency: core.Eventual,
			Sim:         sim.Options{Seed: 24, Network: lossy},
			Retransmit:  retransmit,
		})
		svc.Submit(1, 30, "set order-1 shipped")
		svc.Submit(3, 90, "set order-2 pending")
		svc.Submit(5, 150, "set order-3 on-hold")
		svc.Run(200)
		converged := svc.RunUntilConverged(20000)
		mode := "raw lossy wire    "
		if retransmit {
			mode = "with retransmit   "
		}
		fmt.Printf("%s converged=%-5v p1: %q\n", mode, converged, svc.Snapshot(1))
	}
	fmt.Println("\n~15% of messages vanish: without retransmission an update can be lost")
	fmt.Println("forever and the replicas never agree — the §2 eventual-delivery")
	fmt.Println("assumption is load-bearing. Acks + seeded exponential resend restore it")
	fmt.Println("end-to-end, and convergence with it.")

	fmt.Println("\n--- act four: the hostile composite environment ---")
	// One preset name resolves BOTH halves of the environment: a network
	// stack (leader-aware adversarial delays + lossy links, composed via
	// sim.ComposeNetworks) and a churn schedule for sim.Options.Faults.
	hostile, err := sim.PresetFactory("hostile")
	if err != nil {
		panic(err)
	}
	hostileSvc := core.NewSimService(core.Config{
		N:           5,
		Consistency: core.Eventual,
		Sim: sim.Options{
			Seed:    24,
			Network: hostile,
			Faults:  sim.PresetFaults("hostile")(5),
		},
		Retransmit: true,
	})
	hostileSvc.Submit(1, 30, "set order-1 shipped")
	hostileSvc.Submit(3, 90, "set order-2 pending")
	mid := hostileSvc.RunUntilConverged(4000)
	fmt.Printf("inside the churn   converged=%-5v p1: %q\n", mid, hostileSvc.Snapshot(1))
	// Ride out the rest of the churn window. Restart means STATE RESET, so
	// the preset spares p1 (as E10 does): some replica must carry the
	// history across the churn, and the others re-learn it from the spared
	// leader's traffic after their restarts.
	hostileSvc.Run(4500)
	hostileSvc.Submit(2, 4600, "set order-4 audited")
	hostileSvc.Run(4700) // get the submission into the run before converging
	hostileConverged := hostileSvc.RunUntilConverged(60000)
	fmt.Printf("after the churn    converged=%-5v at t=%d, p1: %q\n",
		hostileConverged, hostileSvc.Kernel().Now(), hostileSvc.Snapshot(1))
	fmt.Println("\nleader links starved at the bound, a tenth of the traffic dropped,")
	fmt.Println("replicas restarting on a churn schedule (restart = state reset; the")
	fmt.Println("spared leader carries the history across). Once the churn quiets, Ω")
	fmt.Println("alone still drives the starved, lossy system back to one order —")
	fmt.Println("eventual consistency in the nastiest named environment.")
}

func splitNonEmpty(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
