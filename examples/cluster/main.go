// cluster: the paper's replicated service as a deployable system — three
// replica nodes speaking real TCP to each other (retransmit-wrapped ETOB,
// heartbeat Ω), each serving an HTTP API, all behind a session-affine
// load-balancing front door. The demo boots the cluster in-process, streams
// client writes through the front door, crashes a replica WITHOUT warning,
// keeps writing while health probes route around the corpse, restarts it
// under the same identity, and prints every replica's snapshot once the
// retransmission layer and the ETOB promote stream have healed the gap.
//
// This is the live counterpart of examples/kvstore: same automaton stack,
// but over real sockets with real failures instead of the simulated kernel.
// (For separate OS processes, see cmd/ecnode and scripts/node_smoke.sh.)
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/lb"
	"repro/internal/model"
	"repro/internal/node"
)

const n = 3

func main() {
	front, err := lb.New(lb.Config{ProbeInterval: 100 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()

	// Reserve a transport address per replica so the mesh is known up front.
	peers := make(map[model.ProcID]string, n)
	var reserved []net.Listener
	for i := 1; i <= n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		peers[model.ProcID(i)] = ln.Addr().String()
		reserved = append(reserved, ln)
	}
	for _, ln := range reserved {
		ln.Close()
	}

	boot := func(p model.ProcID) *node.Node {
		var nd *node.Node
		var err error
		for attempt := 0; attempt < 100; attempt++ {
			if nd, err = node.New(node.Config{ID: p, Peers: peers, Front: front.URL()}); err == nil {
				return nd
			}
			time.Sleep(20 * time.Millisecond)
		}
		log.Fatalf("boot replica %v: %v", p, err)
		return nil
	}
	nodes := make(map[model.ProcID]*node.Node, n)
	for i := 1; i <= n; i++ {
		nodes[model.ProcID(i)] = boot(model.ProcID(i))
	}

	write := func(session, cmd string) {
		req, _ := http.NewRequest(http.MethodPost, front.URL()+"/update?cmd="+cmd, nil)
		req.Header.Set("X-Session", session)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatalf("write %q: %v", cmd, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			log.Fatalf("write %q: %s", cmd, resp.Status)
		}
	}

	fmt.Println("phase 1: all replicas up, writes spread over sessions")
	for i := 0; i < 10; i++ {
		write(fmt.Sprintf("user-%d", i%4), fmt.Sprintf("set+a%d+%d", i, i))
	}

	fmt.Println("phase 2: replica 2 crashes (no deregistration) — probes evict it")
	nodes[2].Kill()
	for len(front.Healthy()) != 2 {
		time.Sleep(20 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		write(fmt.Sprintf("user-%d", i%4), fmt.Sprintf("set+b%d+%d", i, i))
	}

	fmt.Println("phase 3: replica 2 restarts on the same address and catches up")
	nodes[2] = boot(2)
	for len(front.Healthy()) != n {
		time.Sleep(20 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		write(fmt.Sprintf("user-%d", i%4), fmt.Sprintf("set+c%d+%d", i, i))
	}

	// Wait for convergence: identical snapshots with all 30 writes applied.
	deadline := time.Now().Add(60 * time.Second)
	for {
		snaps := make(map[model.ProcID]string, n)
		applied := 0
		for p, nd := range nodes {
			var st struct {
				Applied  int    `json:"applied"`
				Snapshot string `json:"snapshot"`
			}
			resp, err := http.Get(nd.URL() + "/status")
			if err == nil {
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
			}
			snaps[p] = st.Snapshot
			if st.Applied >= 30 {
				applied++
			}
		}
		if applied == n && snaps[1] != "" && snaps[1] == snaps[2] && snaps[2] == snaps[3] {
			fmt.Println("\nconverged — every replica, including the restarted one:")
			for i := 1; i <= n; i++ {
				fmt.Printf("  p%d: %q\n", i, snaps[model.ProcID(i)])
			}
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("no convergence: %v", snaps)
		}
		time.Sleep(50 * time.Millisecond)
	}

	for _, nd := range nodes {
		nd.Kill()
	}
}
