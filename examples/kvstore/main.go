// kvstore: the Dynamo-style scenario that motivates the paper (§1, §6) — an
// eventually consistent replicated key-value store that keeps accepting
// writes during a split-brain period (Ω outputs different leaders at
// different replicas), diverges, and converges once Ω stabilizes.
//
// The run is deterministic (simulated); it prints each replica's view during
// the split and after convergence, and the (E)TOB property report with the
// measured stabilization time τ.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

func main() {
	svc := core.NewSimService(core.Config{
		N: 4,
		// Split brain until t=2000: evens trust p2, odds trust p1.
		Omega: core.OmegaSpec{Pre: core.PreSplit, Stabilization: 2000},
		Sim:   sim.Options{Seed: 7},
	})

	// Concurrent writes to the same keys from both sides of the split.
	svc.Submit(1, 30, "set cart apple")
	svc.Submit(2, 31, "set cart banana")
	svc.Submit(3, 150, "set qty 2")
	svc.Submit(4, 151, "set qty 7")
	svc.Submit(1, 400, "append log checkout")

	// Look at the replicas mid-split: they may disagree.
	svc.Run(1500)
	fmt.Println("during the split (t=1500):")
	for _, p := range model.Procs(4) {
		fmt.Printf("  %v: %q\n", p, svc.Snapshot(p))
	}

	// Let Ω stabilize and the service converge.
	if !svc.RunUntilConverged(30000) {
		fmt.Println("did not converge")
		return
	}
	fmt.Printf("\nafter convergence (t=%d):\n", svc.Kernel().Now())
	for _, p := range model.Procs(4) {
		fmt.Printf("  %v: %q  (rebuilds: %d)\n", p, svc.Snapshot(p), svc.Rebuilds(p))
	}

	rep := svc.Report()
	fmt.Printf("\nETOB report: safety ok=%v, stabilization tau=%d (Ω stabilized at 2000)\n",
		rep.NoCreation.OK && rep.NoDuplication.OK && rep.CausalOrder.OK, rep.Tau)
	fmt.Println("the same state machine over the strong (Paxos) service would have")
	fmt.Println("blocked nothing here — but see examples/partition for where it does.")
}
