// Quickstart: a 3-replica eventually consistent key-value store in a few
// lines, running live (goroutine per replica, heartbeat Ω — the weakest
// failure detector the paper proves sufficient).
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/runtime"
)

func main() {
	svc := core.NewLiveService(3, core.Eventual, nil, runtime.Options{})
	defer svc.Stop()

	// Submit commands at different replicas.
	svc.Submit(1, "set user alice")
	svc.Submit(2, "set city paris")
	svc.Submit(3, "set lang go")

	// Eventual consistency: all replicas converge to the same state.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s1, s2, s3 := svc.Snapshot(1), svc.Snapshot(2), svc.Snapshot(3)
		if s1 == s2 && s2 == s3 && s1 != "" {
			fmt.Println("replicas converged:")
			for _, p := range model.Procs(3) {
				fmt.Printf("  %v: %s\n", p, svc.Snapshot(p))
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("replicas did not converge in time")
}
