// ledger: one workload, two consistency levels. A replicated account ledger
// runs once over the paper's ETOB (eventual, Ω only, 2 communication steps)
// and once over a Paxos log (strong, majority quorums, 3 communication
// steps), with identical commands and a fixed link delay so the paper's
// latency gap (§5 property 1, §7) is directly visible.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/smr"
)

func main() {
	const delay = 1000 // fixed link delay D; tick = 1

	for _, consistency := range []core.Consistency{core.Eventual, core.Strong} {
		svc := core.NewSimService(core.Config{
			N:           5,
			Consistency: consistency,
			Machine:     smr.CounterFactory,
			Sim:         sim.Options{Seed: 3, MinDelay: delay, MaxDelay: delay, TickInterval: 1, MaxTime: 1 << 40},
		})
		// Isolated deposits from non-leader replicas, far apart in time.
		times := []model.Time{10_000, 20_000, 30_000}
		for i, at := range times {
			svc.Submit(model.ProcID(2+i), at, "inc balance 100")
		}
		// Run past the last submission first: RunUntilConverged would otherwise
		// stop as soon as the FIRST deposit (the only broadcast so far) lands.
		svc.Run(42_000)
		if !svc.RunUntilConverged(80_000) {
			fmt.Printf("%v: did not converge\n", consistency)
			continue
		}
		// Latency of each deposit in communication steps.
		fmt.Printf("%s service (n=5, D=%d):\n", consistency, delay)
		var sum float64
		rec := svc.Recorder()
		for i, b := range rec.Broadcasts() {
			worst := model.Time(0)
			for _, p := range model.Procs(5) {
				if st, ok := rec.StableDeliveryTime(p, b.ID); ok && st-times[i] > worst {
					worst = st - times[i]
				}
			}
			steps := float64(worst) / float64(delay)
			sum += steps
			fmt.Printf("  deposit %d committed everywhere after %.1f communication steps\n", i+1, steps)
		}
		fmt.Printf("  mean: %.1f steps; final balance at p1: %s\n\n",
			sum/float64(len(times)), svc.Snapshot(1))
	}
	fmt.Println("eventual consistency saves exactly one message delay per operation —")
	fmt.Println("the gap the paper proves is bought by giving up Σ (see examples/partition).")
}
