// Package repro is the root of a complete Go reproduction of
// "The Weakest Failure Detector for Eventual Consistency"
// (Dubois, Guerraoui, Kuznetsov, Petit, Sens — PODC 2015, arXiv:1505.03469).
//
// The library implements the paper's abstractions (eventual consensus,
// eventual total order broadcast, eventual irrevocable consensus), all seven
// of its algorithms, the generalized CHT reduction of its necessity proof,
// and the strong-consistency baselines it compares against, over a
// deterministic simulator and a live goroutine runtime. The simulator's link
// behavior is pluggable (internal/sim's NetworkModel): uniform delays,
// crash-free partitions that form and heal on a schedule, and jittery
// asymmetric links ship built in, with named presets shared by the CLI
// (cmd/ecsim -net), the examples, and the experiment tables.
//
// Start with README.md (overview and quickstart), DESIGN.md (system
// inventory, per-experiment index, design decisions), and EXPERIMENTS.md
// (paper-vs-measured for every claim). The root package holds the benchmark
// suite (bench_test.go, ablation_bench_test.go) and cross-module
// integration/fuzz tests (integration_test.go).
package repro
