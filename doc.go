// Package repro is the root of a complete Go reproduction of
// "The Weakest Failure Detector for Eventual Consistency"
// (Dubois, Guerraoui, Kuznetsov, Petit, Sens — PODC 2015, arXiv:1505.03469).
//
// The library implements the paper's abstractions (eventual consensus,
// eventual total order broadcast, eventual irrevocable consensus), all seven
// of its algorithms, the generalized CHT reduction of its necessity proof,
// and the strong-consistency baselines it compares against, over a
// deterministic simulator and a live goroutine runtime. The simulator's
// environment is pluggable on both axes. Links (internal/sim's
// NetworkModel): uniform delays, crash-free partitions — two-sided and
// k-sided — that form and heal on a schedule, and jittery asymmetric links
// ship built in; the adversarial engine (internal/sim/adversary) adds lossy
// links with seeded per-link drop rates and burst losses, a
// divergence-maximizing scheduler that greedily starves a rotating victim
// inside admissible delay bounds, and a PROTOCOL-AWARE leader starver that
// reads the run's current Ω output through the kernel's leadership-
// observation hook (sim.LeaderAware, answered from the kernel's fd.Cached
// segments) and pins every link touching the current leader at the bound —
// E13 measures it costing ~10x over both the blind rotation and i.i.d.
// noise on the workload where the blind rotation was not worst-case.
// Failures (model.FaultModel, via sim.Options.Faults): the monotone crash
// pattern generalizes to up/down intervals (adversary.FaultSchedule), with
// the kernel suspending a down process, dropping everything sent to it, and
// restarting it with fresh state — churn as crash+restart pairs; fault
// models merge through model.MergeFaults. Network models stack through
// sim.ComposeNetworks (delays add, delivery needs unanimity), and
// adversary.Composite registers a layered link stack plus a fault schedule
// as ONE preset — "churn-lossy", "hostile", and "hostile-partition", which
// adds a timed partition-and-heal window to the hostile stack. The starver
// can also redirect its target from the leader to a quorum transversal of
// followers (LeaderStarver.StarveQuorum, aimed at Σ-based baselines) — E14
// measures that redirection costing the adversary ~10x on the leader-routed
// transform workload. internal/retransmit restores
// the paper's eventual-delivery assumption end-to-end over those hostile
// environments (ack'd envelopes with per-link contiguous sequence numbers,
// watermark-pruned dedup state bounded by the reordering window, and seeded
// exponential resend), turning loss rate and churn rate into sweepable
// parameters. Named presets ("lossy", "churn-fast", "leader-starve",
// "hostile", ...) are shared by the CLI (cmd/ecsim -net), the examples, and
// the experiment tables. Options.Network takes a NetworkFactory, so every
// kernel owns a private seeded model and options values are safe to share
// across concurrent kernels.
//
// The kernel's hot path is engineered for sweep scale: an inlined 4-ary
// event heap over a reusable slab (no container/heap boxing, no per-event
// allocation), interned broadcast message templates, and failure-detector
// queries memoized per constancy segment (fd.Cached — sound because
// histories are deterministic step functions of time). The CHT reduction —
// the heaviest detector consumer — runs on an interned execution engine
// (internal/cht): states, payloads, messages, and whole configurations map
// to dense int32 IDs, algorithms can opt into a structured stepping fast
// path (cht.StructuredAlgorithm) that skips the per-step decode/encode
// round-trip, and simulation trees grow incrementally across the reduction's
// monotone DAG prefixes (cht.TreeCache) instead of being rebuilt per round.
// The ETOB protocol layer avoids the quadratic costs the transformation
// stacks used to pay: causality graphs are positional with copy-on-write
// snapshot clones, promote extension skips no-op updates, and the ETOB→EC
// First(ℓ) poll resumes its scan instead of re-decoding the sequence per
// tick. On top of it, internal/bench decomposes every experiment into
// independent seeded cells and fans them across a bounded worker pool
// (cmd/bench -parallel) with per-cell timeout isolation (-cell-timeout),
// deterministic cell sharding for multi-machine sweeps (-shard i/n), and
// median-of-N cell timing (-repeat N) to tame single-core noise, with
// rows reassembled deterministically so parallel output is byte-identical
// to serial; cmd/bench -json writes a machine-readable BENCH_<n>.json
// (schema repro-bench/6: per-experiment wall time with its run-to-run
// spread, kernel steps/sec, microbenchmark ns/op and allocs/op, optional
// worker-scaling sweep, optional open-loop latency sweep, optional
// metrics-on/off overhead audit, optional cluster-size scaling sweep)
// tracking the perf trajectory.
//
// Cluster size n is a first-class scaling axis. The ETOB layer has a gossip
// dissemination mode (etob.GossipFactory, gossip.Options, shared peer
// sampling in internal/gossip): a flush sends op deltas to a seeded
// ceil(log2 n)+1 peer sample instead of all-to-all, rumors age out after
// ceil(log2 n) hops, and a digest-based anti-entropy rotation repairs the
// tail — eventual delivery is all the eventual specs need, and with gossip
// off every path is bit-identical to the historical one (golden-pinned).
// The EC layer disseminates promote values the same way (ec.GossipDrivenFactory,
// origin-stamped so values absorb by their proposer, not their carrier), and
// gossip envelopes ride internal/retransmit's at-least-once layer unchanged.
// Underneath, the kernel applies broadcasts as one batched heap entry per
// send expanded at pop instead of n immediate inserts, fd.Cached bounds memo
// state with a per-process LRU over segments, and the CT/Paxos/ABD quorum
// layers count thresholds at insert instead of rescanning their maps per
// delivery. cmd/bench -scalen runs the En experiment — the same workload at
// n in {5..256}, gossip vs all-to-all columns, steps/sec and bytes/proc —
// into the report's "scaling_n" section. The broadcast layers batch under load: etob.BatchOptions
// coalesces k pending ops into one update(CG) broadcast (flush on depth k or
// a linger deadline; k=1 is bit-for-bit the historical path) with an optional
// AIMD controller that grows the window under queue pressure and halves it
// when linger-forced flushes run light, and internal/ec carries bursts of
// promote messages in one envelope the same way. internal/loadgen is the
// open-loop harness that measures what batching buys: seeded Poisson arrivals
// over many client sessions into the kernel (or a live cluster), recording
// submit→visible-at-every-correct-process and submit→order-stable latency
// per op into fixed-footprint log-bucketed histograms — p50/p99/p999 per
// network preset × batch config land in the report's "latency" section
// (cmd/bench -latency), and cmd/bench -profile cpu|mem captures pprof
// profiles of any run.
//
// The service plane makes the paper's replicated service deployable: the
// live runtime's plumbing is abstracted behind runtime.Transport (in-process
// ChanTransport, and TCPTransport speaking length-prefixed gob frames over
// per-peer reconnecting connections), internal/node wraps the replica stack —
// retransmit-wrapped ETOB over heartbeat-Ω — as a node with an HTTP API and a
// graceful drain-deregister-flush shutdown, and internal/lb is a front door
// that spreads client sessions across registered replicas by rendezvous
// hashing with health-driven eviction; cmd/ecnode runs either role as an OS
// process (scripts/node_smoke.sh boots a real 3-process cluster in CI). The
// hostile half runs against real sockets too: runtime.FaultTransport wraps
// any Transport with seeded per-link drops, bursts, delays, duplicates,
// reorders, reset bursts, and scriptable partitions — every per-frame
// decision a pure function of (seed, link, frame index), so chaos runs
// reproduce by seed — with presets mirroring the simulator's vocabulary
// ("lossy", "hostile", "hostile-partition", ...; cmd/ecnode -chaos). The
// paths the injector exposes are hardened: capped redial backoff in
// TCPTransport, deadline-bounded retries with full jitter on node HTTP ops,
// a per-backend circuit breaker and retry budget in the front door, and a
// degraded read-only mode where a fully partitioned replica refuses writes
// with 503 + Retry-After while serving staleness-marked reads
// (internal/node's chaos soak pins convergence after heal with zero
// acked-then-lost writes; CI's chaos-smoke job runs it at a pinned seed
// under -race). The whole plane is observable through internal/obs, a
// dependency-free metrics registry (atomic counters, gauges, log-bucketed
// histograms) plus a bounded-ring op-lifecycle tracer: every replica and the
// front door serve Prometheus-text GET /metrics (the same counter names the
// sim kernel registers, so sim and live runs compare by name), GET /trace?op=
// returns one op's causal timeline (submit → batch-flush → broadcast →
// deliver → order-stable), /status reads the same registry the scrape does,
// and the chaos soak cross-checks scraped counters against the runtime
// StepLog ground truth while scripts/metrics_overhead.sh gates the
// registry's hot-path cost at 5%. The
// deterministic kernel stays authoritative: runtime.Options.StepLog records
// every live step's schedule and runtime.Replay re-executes it through fresh
// automata, pinning that both transports run the SAME automaton semantics.
// Resend scheduling in internal/retransmit uses a due-time-ordered 4-ary
// slab heap (Tick touches only overdue envelopes) and a give-up ceiling
// bounds sender state toward permanently crashed receivers while preserving
// at-least-once delivery to any process that ever returns.
//
// Start with README.md (overview and quickstart), DESIGN.md (system
// inventory, per-experiment index, design decisions), and EXPERIMENTS.md
// (paper-vs-measured for every claim). The root package holds the benchmark
// suite (bench_test.go, ablation_bench_test.go) and cross-module
// integration/fuzz tests (integration_test.go).
package repro
