// Package tob provides the classical (strongly consistent) total order
// broadcast baselines the paper compares against (§1):
//
//   - FromConsensus: the textbook construction [Chandra–Toueg 96] — processes
//     repeatedly agree, via consensus instances, on the next batch of
//     messages to deliver. Built by composing the paper's own Algorithm 1
//     (T_EC→ETOB) over a STRONG consensus sequence: since strong consensus
//     agrees from instance 1, the resulting broadcast satisfies the strong
//     TOB specification (τ = 0).
//
//   - PaxosLog: the direct multi-instance Paxos log (internal/consensus.Log),
//     which delivers in three communication steps in the steady state —
//     the baseline for the paper's "2 vs 3 steps" claim (§5, §7).
//
// Liveness of both baselines needs majority (or Σ) quorums; the paper's ETOB
// needs neither — that contrast is experiment E5.
package tob

import (
	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/transform"
)

// FromConsensus returns the batch-based TOB: Algorithm 1 running over a
// strong consensus sequence with the given quorum mode.
func FromConsensus(mode consensus.QuorumMode) model.AutomatonFactory {
	return transform.ECToETOBFactory(func(p model.ProcID, n int) transform.ECProtocol {
		return consensus.NewSequence(p, n, mode)
	})
}

// PaxosLog returns the direct Paxos-log TOB with the given quorum mode.
func PaxosLog(mode consensus.QuorumMode) model.AutomatonFactory {
	return consensus.LogFactory(mode)
}
