package tob

import (
	"fmt"
	"testing"

	"repro/internal/consensus"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func runTOB(t *testing.T, factory model.AutomatonFactory, fp *model.FailurePattern,
	det fd.Detector, perProc int, seed int64) (*trace.Recorder, []string, model.Time) {
	t.Helper()
	rec := trace.NewRecorder(fp.N())
	k := sim.New(fp, det, factory, sim.Options{Seed: seed})
	k.SetObserver(rec)
	var ids []string
	for i := 0; i < perProc; i++ {
		for _, p := range model.Procs(fp.N()) {
			id := fmt.Sprintf("p%d#%d", p, i+1)
			ids = append(ids, id)
			k.ScheduleInput(p, model.Time(30+60*i)+model.Time(p), model.BroadcastInput{ID: id})
		}
	}
	k.RunUntil(60000, func(k *sim.Kernel) bool { return rec.AllDelivered(fp.Correct(), ids) })
	settleAt := k.Now()
	k.Run(settleAt + 500)
	return rec, ids, settleAt
}

func TestFromConsensusIsStrongTOB(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	rec, ids, settleAt := runTOB(t, FromConsensus(consensus.MajorityQuorums), fp, det, 3, 5)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{SettleTime: settleAt})
	if !rep.OK() || !rep.StrongTOB() {
		t.Fatalf("consensus-based TOB must be strong: τ=%d %+v", rep.Tau, rep)
	}
	for _, p := range fp.Correct() {
		if got := len(rec.FinalSeq(p)); got != len(ids) {
			t.Errorf("%v delivered %d, want %d", p, got, len(ids))
		}
	}
}

func TestFromConsensusStrongUnderChurnAndCrash(t *testing.T) {
	// Even with Ω churn and a crash, batches agree from instance 1: the
	// delivered sequences never diverge (τ = 0).
	fp := model.NewFailurePattern(5)
	fp.Crash(5, 600)
	det := fd.NewOmegaRotating(fp, 2, 900, 70)
	rec := trace.NewRecorder(5)
	k := sim.New(fp, det, FromConsensus(consensus.MajorityQuorums), sim.Options{Seed: 23})
	k.SetObserver(rec)
	var ids []string
	for _, p := range model.Procs(5) {
		id := fmt.Sprintf("m%d", p)
		ids = append(ids, id)
		k.ScheduleInput(p, 30+model.Time(p), model.BroadcastInput{ID: id})
	}
	k.RunUntil(60000, func(k *sim.Kernel) bool {
		return rec.AllDelivered(fp.Correct(), ids[:4]) // p5's message may be lost with it
	})
	settleAt := k.Now()
	k.Run(settleAt + 500)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{InputCutoff: 1, SettleTime: settleAt})
	if !rep.NoCreation.OK || !rep.NoDuplication.OK {
		t.Fatalf("safety: %+v", rep)
	}
	if rep.Tau != 0 {
		t.Fatalf("strong TOB must never diverge: τ=%d (stab %d, order %d)", rep.Tau, rep.StabilityTau, rep.TotalOrderTau)
	}
}

func TestPaxosLogAlias(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	rec, ids, settleAt := runTOB(t, PaxosLog(consensus.MajorityQuorums), fp, det, 2, 7)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{SettleTime: settleAt})
	if !rep.OK() || !rep.StrongTOB() {
		t.Fatalf("Paxos log via tob: τ=%d %+v", rep.Tau, rep)
	}
	if got := len(rec.FinalSeq(1)); got != len(ids) {
		t.Errorf("delivered %d, want %d", got, len(ids))
	}
}
