package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestWritePrometheusGolden pins the full exposition of a populated registry:
// one metric of every kind, values chosen so no two lines could be confused.
// The output is sorted by name, so the golden is stable by construction.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("node_accepted_total").Add(7)
	r.Gauge("batch_target").Set(12)
	r.CounterFunc("kernel_steps_total", func() int64 { return 99_000 })
	r.GaugeFunc("retransmit_pending_envelopes", func() int64 { return 3 })
	h := r.Histogram("http_request_duration_us")
	for v := int64(1); v <= 10; v++ {
		h.Record(v)
	}
	hooked := r.Counter("retransmit_resends_total")
	r.OnScrape(func() { hooked.Set(41) })

	const want = `# TYPE batch_target gauge
batch_target 12
# TYPE http_request_duration_us summary
http_request_duration_us{quantile="0.5"} 5
http_request_duration_us{quantile="0.99"} 10
http_request_duration_us{quantile="0.999"} 10
http_request_duration_us_sum 55
http_request_duration_us_count 10
# TYPE kernel_steps_total counter
kernel_steps_total 99000
# TYPE node_accepted_total counter
node_accepted_total 7
# TYPE retransmit_pending_envelopes gauge
retransmit_pending_envelopes 3
# TYPE retransmit_resends_total counter
retransmit_resends_total 41
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}

	// The golden must round-trip through the strict parser.
	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText on own exposition: %v", err)
	}
	for key, v := range map[string]int64{
		"node_accepted_total":                     7,
		"kernel_steps_total":                      99000,
		"retransmit_resends_total":                41,
		"batch_target":                            12,
		`http_request_duration_us{quantile="0.5"}`: 5,
		"http_request_duration_us_count":          10,
		"http_request_duration_us_sum":            55,
	} {
		if samples[key] != v {
			t.Errorf("parsed %s = %d, want %d", key, samples[key], v)
		}
	}
}

// TestRegistryIdempotentAndChecked pins the constructor contract: same name
// same metric, kind conflicts panic.
func TestRegistryIdempotentAndChecked(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	if r.Counter("x_total") != c {
		t.Error("second Counter(x_total) returned a different metric")
	}
	if r.Value("x_total") != 1 {
		t.Errorf("Value(x_total) = %d, want 1", r.Value("x_total"))
	}
	if r.Value("missing") != 0 {
		t.Error("Value of unregistered name must be 0")
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("kind conflict", func() { r.Gauge("x_total") })
	mustPanic("func over counter", func() { r.CounterFunc("x_total", func() int64 { return 0 }) })
	mustPanic("invalid name", func() { r.Counter("9starts_with_digit") })
	mustPanic("invalid char", func() { r.Counter("has-dash") })
}

// TestRegistryConcurrentScrapeUnderWrites is the -race test the exposition
// path must survive: writers hammer every metric kind while scrapers pull
// full expositions and hooks fire. Every scrape must also PARSE — a torn
// line would fail the strict parser even when the race detector is off.
func TestRegistryConcurrentScrapeUnderWrites(t *testing.T) {
	r := NewRegistry()
	var hookSrc atomic.Int64
	mirrored := r.Counter("mirrored_total")
	r.OnScrape(func() { mirrored.Set(hookSrc.Load()) })
	r.GaugeFunc("fn_gauge", func() int64 { return hookSrc.Load() })

	var stop atomic.Bool
	var writers, scrapers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			c := r.Counter("writes_total")
			g := r.Gauge("depth")
			h := r.Histogram("latency_us")
			for i := int64(0); !stop.Load(); i++ {
				c.Inc()
				g.Set(i % 100)
				h.Record(i % 4096)
				hookSrc.Add(1)
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 50; i++ {
				rec := httptest.NewRecorder()
				r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				if rec.Code != 200 {
					t.Errorf("scrape status %d", rec.Code)
					return
				}
				if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
					t.Errorf("content type %q", ct)
					return
				}
				if _, err := ParseText(rec.Body); err != nil {
					t.Errorf("scrape %d unparseable: %v", i, err)
					return
				}
			}
		}()
	}
	// Scrapers run to completion against live writers; only then do the
	// writers stop, so every scrape raced real traffic.
	scrapers.Wait()
	stop.Store(true)
	writers.Wait()

	final := r.Value("writes_total")
	if final == 0 {
		t.Error("writers recorded nothing")
	}
}
