package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestHistogramExactBelow32(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 32; v++ {
		h.Record(v)
	}
	if h.Count() != 32 || h.Min() != 0 || h.Max() != 31 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	// Values below 32 live in exact buckets, so every quantile is exact:
	// rank ⌈0.5·32⌉ = 16th smallest of 0..31 = 15.
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("p50 = %d, want 15", got)
	}
	if got := h.Quantile(1.0 / 32.0); got != 0 {
		t.Errorf("q(1/32) = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 31 {
		t.Errorf("p100 = %d, want 31", got)
	}
	if got := h.Mean(); got != 15.5 {
		t.Errorf("mean = %v, want 15.5", got)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// The representative value of a bucket must map back to that bucket, and
	// bucket boundaries must be monotone, across the whole dynamic range.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		v := histBucketValue(i)
		if got := histBucketOf(v); got != i {
			t.Fatalf("bucket %d: value %d maps back to bucket %d", i, v, got)
		}
		if v <= prev {
			t.Fatalf("bucket %d: representative %d not monotone (prev %d)", i, v, prev)
		}
		prev = v
	}
}

func TestHistogramQuantileError(t *testing.T) {
	// Against a sorted reference: every quantile within ~3.2% (1/32) relative
	// error, over a log-uniform spread covering several powers of two.
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	vals := make([]int64, 0, 20_000)
	for i := 0; i < 20_000; i++ {
		v := int64(1) << uint(rng.Intn(20))
		v += rng.Int63n(v + 1)
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(q*float64(len(vals))+0.5) - 1
		want := vals[rank]
		got := h.Quantile(q)
		relErr := float64(got-want) / float64(want)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.04 {
			t.Errorf("q=%v: got %d want %d (rel err %.3f)", q, got, want, relErr)
		}
	}
}

func TestHistogramMergeQuantileErrorBound(t *testing.T) {
	// Merging shards must not degrade the quantile error: record one stream
	// split round-robin across 8 shard histograms, merge them, and check the
	// merged quantiles against the sorted reference with the same ~3.2%
	// bound as the single-histogram test. Bucket-wise addition is exact, so
	// the merged histogram must equal the monolithic one sample for sample.
	rng := rand.New(rand.NewSource(7))
	shards := make([]Histogram, 8)
	var mono Histogram
	vals := make([]int64, 0, 16_000)
	for i := 0; i < 16_000; i++ {
		v := rng.Int63n(1 << 22)
		vals = append(vals, v)
		shards[i%len(shards)].Record(v)
		mono.Record(v)
	}
	var merged Histogram
	for i := range shards {
		merged.Merge(&shards[i])
	}
	if merged.Count() != mono.Count() || merged.Min() != mono.Min() ||
		merged.Max() != mono.Max() || merged.Sum() != mono.Sum() {
		t.Fatalf("merged %s != monolithic %s", merged.String(), mono.String())
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if m, g := mono.Quantile(q), merged.Quantile(q); m != g {
			t.Errorf("q=%v: merged %d != monolithic %d", q, g, m)
		}
		rank := int(q*float64(len(vals))+0.5) - 1
		want := vals[rank]
		got := merged.Quantile(q)
		relErr := float64(got-want) / float64(want)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.04 {
			t.Errorf("q=%v: merged %d vs reference %d (rel err %.3f)", q, got, want, relErr)
		}
	}
}

func TestHistogramMergeAndClamp(t *testing.T) {
	var a, b Histogram
	a.Record(-5) // clamps to 0
	a.Record(10)
	b.Record(1_000_000)
	a.Merge(&b)
	if a.Count() != 3 || a.Min() != 0 || a.Max() != 1_000_000 {
		t.Fatalf("after merge: %s", a.String())
	}
	if got := a.Quantile(1); got != 1_000_000 {
		t.Errorf("p100 = %d, want exact max 1000000", got)
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 3 {
		t.Errorf("merge with empty changed count to %d", a.Count())
	}
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	// N goroutines hammer one histogram; the totals must come out exact
	// (atomic adds lose nothing) and the extremes must be the true extremes
	// (the CAS loops converge). Run under -race this also proves Record and
	// the read accessors are data-race free.
	const workers, per = 8, 10_000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(rng.Int63n(1 << 30))
				if i%1000 == 0 {
					_ = h.Quantile(0.99) // concurrent reads must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var sum int64
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < per; i++ {
			sum += rng.Int63n(1 << 30)
		}
	}
	if h.Sum() != sum {
		t.Errorf("sum = %d, want %d", h.Sum(), sum)
	}
}
