package obs

import (
	"encoding/json"
	"net/http"
	"sync"
)

// Stage is one point in an op's lifecycle. The canonical live pipeline is
// submit → batch-flush → broadcast → deliver (per replica, possibly more
// than once: an ETOB re-application after a causal-order revision records a
// fresh deliver). "Order-stable" is not a recorded stage — it is the
// retrospective fact that no further deliver arrived — so the timeline
// reports it as the latest deliver timestamp.
type Stage string

// The lifecycle stages stamped by the serving path.
const (
	StageSubmit     Stage = "submit"
	StageBatchFlush Stage = "batch-flush"
	StageBroadcast  Stage = "broadcast"
	StageDeliver    Stage = "deliver"
)

// TraceEvent is one stamped lifecycle point.
type TraceEvent struct {
	Stage Stage  `json:"stage"`
	Proc  string `json:"proc,omitempty"`
	At    int64  `json:"at"`
}

// maxEventsPerOp bounds a single op's timeline: a submit, a flush, a
// broadcast, and a deliver per replica fit comfortably; a pathological
// re-application storm is truncated rather than growing without bound.
const maxEventsPerOp = 256

// OpTracer records op-lifecycle timelines in a bounded ring: when the
// tracked-op limit is reached the oldest op's whole timeline is evicted
// (FIFO), so a long-lived node traces the most recent window of traffic at a
// fixed memory ceiling. All methods are safe for concurrent use; Record from
// a hot path costs one mutex acquisition and at most one map insert.
//
// Timestamps are caller-defined int64s — the live node stamps wall-clock
// microseconds (time.Now().UnixMicro()), a sim harness would stamp kernel
// ticks — the tracer only orders and reports them.
type OpTracer struct {
	mu      sync.Mutex
	cap     int
	ops     map[string][]TraceEvent
	order   []string // insertion order; head = eviction candidate
	head    int      // first live index in order (amortized queue)
	evicted int64
}

// NewOpTracer returns a tracer bounded to capOps tracked ops (<= 0 means the
// default of 4096).
func NewOpTracer(capOps int) *OpTracer {
	if capOps <= 0 {
		capOps = 4096
	}
	return &OpTracer{cap: capOps, ops: make(map[string][]TraceEvent)}
}

// Record stamps op at stage on proc. The first record of an unknown op
// starts its timeline (evicting the oldest tracked op when full); events past
// maxEventsPerOp are dropped.
func (t *OpTracer) Record(op string, stage Stage, proc string, at int64) {
	if op == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	evs, ok := t.ops[op]
	if !ok {
		if len(t.ops) >= t.cap {
			t.evictLocked()
		}
		t.order = append(t.order, op)
	}
	if len(evs) >= maxEventsPerOp {
		return
	}
	t.ops[op] = append(evs, TraceEvent{Stage: stage, Proc: proc, At: at})
}

// evictLocked removes the oldest tracked op. The order slice compacts when
// the dead prefix outgrows the live tail, keeping eviction amortized O(1).
func (t *OpTracer) evictLocked() {
	for t.head < len(t.order) {
		op := t.order[t.head]
		t.head++
		if _, live := t.ops[op]; live {
			delete(t.ops, op)
			t.evicted++
			break
		}
	}
	if t.head > len(t.order)/2 {
		t.order = append([]string(nil), t.order[t.head:]...)
		t.head = 0
	}
}

// Timeline returns a copy of op's recorded events in record order (nil when
// the op is unknown or already evicted).
func (t *OpTracer) Timeline(op string) []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	evs, ok := t.ops[op]
	if !ok {
		return nil
	}
	return append([]TraceEvent(nil), evs...)
}

// Len returns the number of currently tracked ops; Evicted how many timelines
// the ring dropped.
func (t *OpTracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ops)
}

// Evicted returns how many op timelines the ring has dropped.
func (t *OpTracer) Evicted() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// opsLocked returns up to limit most-recent tracked op ids, oldest first.
func (t *OpTracer) opsLocked(limit int) []string {
	live := make([]string, 0, limit)
	for i := len(t.order) - 1; i >= t.head && len(live) < limit; i-- {
		if _, ok := t.ops[t.order[i]]; ok {
			live = append(live, t.order[i])
		}
	}
	for i, j := 0, len(live)-1; i < j; i, j = i+1, j-1 {
		live[i], live[j] = live[j], live[i]
	}
	return live
}

// traceResponse is the JSON shape of GET /trace?op=<id>.
type traceResponse struct {
	Op     string       `json:"op"`
	Events []TraceEvent `json:"events"`
	// OrderStableAt is the latest deliver timestamp — the point after which
	// no replica re-applied the op (as of this response).
	OrderStableAt int64 `json:"order_stable_at,omitempty"`
}

// traceIndex is the JSON shape of GET /trace without an op parameter.
type traceIndex struct {
	Tracked int      `json:"tracked"`
	Evicted int64    `json:"evicted"`
	Recent  []string `json:"recent"`
}

// ServeHTTP serves GET /trace?op=<id> as a JSON timeline, and GET /trace
// without a parameter as an index of recently tracked ops.
func (t *OpTracer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	op := req.URL.Query().Get("op")
	if op == "" {
		t.mu.Lock()
		idx := traceIndex{Tracked: len(t.ops), Evicted: t.evicted, Recent: t.opsLocked(100)}
		t.mu.Unlock()
		_ = json.NewEncoder(w).Encode(idx)
		return
	}
	evs := t.Timeline(op)
	if evs == nil {
		http.Error(w, "unknown op (never traced or evicted)", http.StatusNotFound)
		return
	}
	resp := traceResponse{Op: op, Events: evs}
	for _, ev := range evs {
		if ev.Stage == StageDeliver && ev.At > resp.OrderStableAt {
			resp.OrderStableAt = ev.At
		}
	}
	_ = json.NewEncoder(w).Encode(resp)
}
