package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestOpTracerTimelineAndStableSynthesis(t *testing.T) {
	tr := NewOpTracer(16)
	tr.Record("p1.1", StageSubmit, "n1", 100)
	tr.Record("p1.1", StageBatchFlush, "n1", 110)
	tr.Record("p1.1", StageBroadcast, "n1", 111)
	tr.Record("p1.1", StageDeliver, "n1", 130)
	tr.Record("p1.1", StageDeliver, "n2", 145)
	tr.Record("p1.1", StageDeliver, "n1", 160) // re-application after reorder

	evs := tr.Timeline("p1.1")
	if len(evs) != 6 {
		t.Fatalf("timeline has %d events, want 6", len(evs))
	}
	if evs[0].Stage != StageSubmit || evs[0].At != 100 {
		t.Errorf("first event = %+v, want submit@100", evs[0])
	}

	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?op=p1.1", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var resp struct {
		Op            string       `json:"op"`
		Events        []TraceEvent `json:"events"`
		OrderStableAt int64        `json:"order_stable_at"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.OrderStableAt != 160 {
		t.Errorf("order_stable_at = %d, want the LAST deliver 160", resp.OrderStableAt)
	}

	rec = httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?op=nope", nil))
	if rec.Code != 404 {
		t.Errorf("unknown op: status %d, want 404", rec.Code)
	}
}

func TestOpTracerRingEviction(t *testing.T) {
	tr := NewOpTracer(8)
	for i := 0; i < 20; i++ {
		op := fmt.Sprintf("p1.%d", i)
		tr.Record(op, StageSubmit, "n1", int64(i))
		tr.Record(op, StageDeliver, "n1", int64(i)+5)
	}
	if tr.Len() != 8 {
		t.Errorf("tracked %d ops, want ring cap 8", tr.Len())
	}
	if tr.Evicted() != 12 {
		t.Errorf("evicted = %d, want 12", tr.Evicted())
	}
	if tr.Timeline("p1.0") != nil {
		t.Error("oldest op must be evicted")
	}
	if evs := tr.Timeline("p1.19"); len(evs) != 2 {
		t.Errorf("newest op timeline has %d events, want 2", len(evs))
	}

	// The index endpoint lists survivors oldest-first.
	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	var idx struct {
		Tracked int      `json:"tracked"`
		Evicted int64    `json:"evicted"`
		Recent  []string `json:"recent"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if idx.Tracked != 8 || idx.Evicted != 12 || len(idx.Recent) != 8 {
		t.Errorf("index = %+v", idx)
	}
	if idx.Recent[0] != "p1.12" || idx.Recent[7] != "p1.19" {
		t.Errorf("recent window = %v", idx.Recent)
	}
}

func TestOpTracerConcurrent(t *testing.T) {
	tr := NewOpTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				op := fmt.Sprintf("p%d.%d", w, i)
				tr.Record(op, StageSubmit, "n1", int64(i))
				tr.Record(op, StageDeliver, "n1", int64(i)+1)
				_ = tr.Timeline(op)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 64 {
		t.Errorf("tracked %d, want 64", tr.Len())
	}
}
