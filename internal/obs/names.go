package obs

// Canonical metric names. Both stacks — the deterministic simulator and the
// live TCP runtime — register the SAME names for the layers they share, so a
// dashboard (or a test) can compare a sim run against a live cluster without
// a translation table. The split is:
//
//   - Stack metrics (retransmit_*, batch_*, smr_*, etob_*) describe the
//     protocol stack and exist in both worlds. StackNames lists them; the
//     parity test in internal/core pins that sim- and live-collected
//     registries expose the identical stack-name set.
//   - Kernel metrics (kernel_*) exist only under the simulator.
//   - Transport, node, lb, and omega metrics exist only in the live runtime
//     (the simulator has no TCP frames, HTTP handlers, or heartbeat
//     detector; its Ω is the kernel's failure-detector oracle).
//
// Naming follows the Prometheus conventions: snake_case, a layer prefix,
// _total suffix on counters, bare names for gauges, and base names for
// summaries (the exposition appends _sum/_count).
const (
	// Stack: retransmission layer (internal/retransmit).
	MetricRetransmitResends    = "retransmit_resends_total"
	MetricRetransmitDuplicates = "retransmit_duplicates_total"
	MetricRetransmitAbandoned  = "retransmit_abandoned_total"
	MetricRetransmitPending    = "retransmit_pending_envelopes"
	MetricRetransmitSparse     = "retransmit_dedup_sparse"
	MetricRetransmitStreams    = "retransmit_dedup_streams"

	// Stack: ETOB broadcast batching (internal/etob).
	MetricBatchFlushes       = "batch_flushes_total"
	MetricBatchFullFlushes   = "batch_full_flushes_total"
	MetricBatchLingerFlushes = "batch_linger_flushes_total"
	MetricBatchOps           = "batch_ops_total"
	MetricBatchTarget        = "batch_target"
	MetricBatchQueued        = "batch_queued"

	// Stack: ETOB delivery (internal/etob): ops whose dependencies have not
	// yet all been delivered — the unresolved-dep stall depth.
	MetricEtobUndelivered = "etob_undelivered_ops"

	// Stack: replicated state machine (internal/smr).
	MetricSMRApplied  = "smr_applied_total"
	MetricSMRRebuilds = "smr_rebuilds_total"

	// Simulator kernel (internal/sim).
	MetricKernelSteps       = "kernel_steps_total"
	MetricKernelSent        = "kernel_messages_sent_total"
	MetricKernelDropped     = "kernel_messages_dropped_total"
	MetricKernelLost        = "kernel_messages_lost_total"

	// Live transport (internal/runtime TCPTransport + node fault layer).
	MetricTransportDropped   = "transport_frames_dropped_total"
	MetricTransportInboxDrop = "transport_inbox_dropped_total"
	MetricTransportFlushes   = "transport_flushes_total"
	MetricTransportCoalesced = "transport_frames_coalesced_total"
	MetricTransportRedials   = "transport_redials_total"
	MetricTransportInjected  = "transport_faults_injected_total"

	// Live replica node (internal/node).
	MetricNodeAccepted = "node_accepted_total"
	MetricNodeRejected = "node_rejected_total"
	MetricNodeDegraded = "node_degraded"
	MetricHTTPLatency  = "http_request_duration_us"

	// Heartbeat Ω (internal/runtime Proc).
	MetricOmegaFlaps  = "omega_flaps_total"
	MetricOmegaLeader = "omega_leader"

	// Front door (internal/lb).
	MetricLBFailovers     = "lb_failovers_total"
	MetricLBRetriesDenied = "lb_retries_denied_total"
	MetricLBDeclined      = "lb_declined_total"
	MetricLBHealthy       = "lb_healthy_replicas"
	MetricLBBreakerOpen   = "lb_breaker_open"
)

// StackNames returns the metric names shared by the sim and live stacks —
// the parity set. Order is fixed (grouped by layer) for readable diffs.
func StackNames() []string {
	return []string{
		MetricRetransmitResends,
		MetricRetransmitDuplicates,
		MetricRetransmitAbandoned,
		MetricRetransmitPending,
		MetricRetransmitSparse,
		MetricRetransmitStreams,
		MetricBatchFlushes,
		MetricBatchFullFlushes,
		MetricBatchLingerFlushes,
		MetricBatchOps,
		MetricBatchTarget,
		MetricBatchQueued,
		MetricEtobUndelivered,
		MetricSMRApplied,
		MetricSMRRebuilds,
	}
}
