package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a fixed-footprint log-bucketed latency histogram in the HDR
// style: values 0..31 are recorded exactly, and each further power of two is
// split into 32 sub-buckets, bounding the relative quantile error at ~3%
// while covering the full non-negative int64 range in a 16 KiB counts array.
// No dependency, no allocation after construction, deterministic for a
// deterministic record sequence. The zero value is ready to use.
//
// Record is safe for concurrent use (atomic adds plus CAS loops on the
// extremes), so a Histogram can sit in a serving path and be scraped while
// requests are in flight. Reads taken during concurrent writes are weakly
// consistent — count, sum, and buckets are each atomically correct but are
// not a single snapshot — which is the standard scrape contract. For a
// single-threaded recorder (the simulator, loadgen) every accessor returns
// exactly what the pre-extraction loadgen histogram returned.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    int64
	// minP stores min+1 so the zero value means "nothing recorded yet" and
	// concurrent first records race benignly through the CAS loop.
	minP int64
	max  int64
}

const (
	histSubBuckets = 32 // sub-buckets per power of two: 2^5
	histSubBits    = 5
	// 32 exact buckets + one row of 32 per remaining power of two.
	histBuckets = histSubBuckets + (63-histSubBits)*histSubBuckets
)

// Record adds one value. Negative values clamp to zero (latency cannot be
// negative; a clamp beats a panic in a measurement path).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	for {
		cur := atomic.LoadInt64(&h.minP)
		if cur != 0 && cur-1 <= v {
			break
		}
		if atomic.CompareAndSwapInt64(&h.minP, cur, v+1) {
			break
		}
	}
	for {
		cur := atomic.LoadInt64(&h.max)
		if v <= cur {
			break
		}
		if atomic.CompareAndSwapInt64(&h.max, cur, v) {
			break
		}
	}
	atomic.AddInt64(&h.n, 1)
	atomic.AddInt64(&h.sum, v)
	atomic.AddInt64(&h.counts[histBucketOf(v)], 1)
}

func histBucketOf(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // v ∈ [2^exp, 2^exp+1), exp >= 5
	base := exp - histSubBits
	sub := int((v >> base) - histSubBuckets) // 0..31
	return histSubBuckets*(base+1) + sub
}

// histBucketValue returns the representative (midpoint) value of bucket i.
func histBucketValue(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	base := i/histSubBuckets - 1
	sub := i % histSubBuckets
	lo := int64(histSubBuckets+sub) << base
	return lo + (int64(1)<<base)/2
}

// Count returns how many values were recorded.
func (h *Histogram) Count() int64 { return atomic.LoadInt64(&h.n) }

// Min and Max return the exact extremes of the recorded values (0 when empty).
func (h *Histogram) Min() int64 {
	mp := atomic.LoadInt64(&h.minP)
	if mp == 0 {
		return 0
	}
	return mp - 1
}

// Max returns the exact maximum recorded value.
func (h *Histogram) Max() int64 { return atomic.LoadInt64(&h.max) }

// Sum returns the exact sum of the recorded values.
func (h *Histogram) Sum() int64 { return atomic.LoadInt64(&h.sum) }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := atomic.LoadInt64(&h.n)
	if n == 0 {
		return 0
	}
	return float64(atomic.LoadInt64(&h.sum)) / float64(n)
}

// Quantile returns the approximate q-quantile (q in [0,1]) of the recorded
// values: the representative value of the bucket containing the rank-⌈q·n⌉
// value. Exact for values < 32; within ~3% above. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	n := atomic.LoadInt64(&h.n)
	if n == 0 {
		return 0
	}
	min, max := h.Min(), h.Max()
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += atomic.LoadInt64(&h.counts[i])
		if seen >= rank {
			v := histBucketValue(i)
			// Clamp to the exact extremes: the top/bottom buckets may extend
			// past what was actually recorded.
			if v > max {
				v = max
			}
			if v < min {
				v = min
			}
			return v
		}
	}
	return max
}

// Merge folds other into h (exact: bucket-wise addition).
func (h *Histogram) Merge(other *Histogram) {
	if other.Count() == 0 {
		return
	}
	for {
		cur := atomic.LoadInt64(&h.minP)
		omp := atomic.LoadInt64(&other.minP)
		if omp == 0 || (cur != 0 && cur <= omp) {
			break
		}
		if atomic.CompareAndSwapInt64(&h.minP, cur, omp) {
			break
		}
	}
	for {
		cur := atomic.LoadInt64(&h.max)
		om := atomic.LoadInt64(&other.max)
		if om <= cur {
			break
		}
		if atomic.CompareAndSwapInt64(&h.max, cur, om) {
			break
		}
	}
	atomic.AddInt64(&h.n, atomic.LoadInt64(&other.n))
	atomic.AddInt64(&h.sum, atomic.LoadInt64(&other.sum))
	for i := range h.counts {
		if c := atomic.LoadInt64(&other.counts[i]); c != 0 {
			atomic.AddInt64(&h.counts[i], c)
		}
	}
}

// String summarizes the histogram (for logs and test failures).
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p99=%d p999=%d max=%d mean=%.1f",
		h.Count(), h.Min(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max(), h.Mean())
}
