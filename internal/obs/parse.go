package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText parses a Prometheus text exposition (the format WritePrometheus
// emits) into a sample map keyed by the sample name including its label
// block, e.g.
//
//	{"retransmit_resends_total": 12, `http_request_duration_us{quantile="0.5"}`: 340}
//
// It is deliberately strict — every sample must belong to a metric family
// declared by a preceding # TYPE line with a known kind, and every value must
// parse as a number — so tests can use it both to read counters back and to
// assert that an endpoint serves VALID exposition, not just plausible text.
// Values are truncated to int64 (this repo's metrics are all integral).
func ParseText(r io.Reader) (map[string]int64, error) {
	samples := make(map[string]int64)
	declared := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: line %d: malformed TYPE comment %q", lineNo, line)
				}
				switch fields[3] {
				case kindCounter, kindGauge, kindSummary, "histogram", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown metric kind %q", lineNo, fields[3])
				}
				declared[fields[2]] = fields[3]
			}
			continue // HELP and other comments pass through unchecked
		}
		// A sample line: name[{labels}] value [timestamp].
		rest := line
		var key string
		if brace := strings.IndexByte(rest, '{'); brace >= 0 {
			close := strings.IndexByte(rest, '}')
			if close < brace {
				return nil, fmt.Errorf("obs: line %d: unbalanced label braces in %q", lineNo, line)
			}
			key = rest[:close+1]
			rest = strings.TrimSpace(rest[close+1:])
		} else {
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				return nil, fmt.Errorf("obs: line %d: sample without value in %q", lineNo, line)
			}
			key = fields[0]
			rest = strings.Join(fields[1:], " ")
		}
		base := key
		if brace := strings.IndexByte(base, '{'); brace >= 0 {
			base = base[:brace]
		}
		family := base
		for _, suffix := range [...]string{"_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(base, suffix); ok {
				if _, isDecl := declared[trimmed]; isDecl {
					family = trimmed
				}
			}
		}
		kind, ok := declared[family]
		if !ok {
			return nil, fmt.Errorf("obs: line %d: sample %q has no preceding # TYPE declaration", lineNo, key)
		}
		_ = kind
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("obs: line %d: malformed sample %q", lineNo, line)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q: %v", lineNo, fields[0], err)
		}
		samples[key] = int64(v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}
