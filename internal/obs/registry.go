package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (d < 0 is a programmer error; it is applied
// as-is rather than hiding the bug behind a clamp).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set overwrites the counter. It exists for MIRRORED counters: sources that
// keep their own monotonic count (an automaton's event-loop-local resend
// tally, a transport's atomic frame counter) are copied into the registry by
// an OnScrape hook, where Set is the natural verb. Code that owns its counter
// should use Add/Inc.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to use;
// all methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments (or with d < 0 decrements) the gauge.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kinds of registry entries, in the order they appear in an exposition line's
// # TYPE comment.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindSummary = "summary"
)

// entry is one registered metric.
type entry struct {
	kind    string
	counter *Counter
	gauge   *Gauge
	fn      func() int64 // non-nil for CounterFunc/GaugeFunc entries
	hist    *Histogram
}

// Registry is a named collection of metrics with a Prometheus text
// exposition. Constructors are idempotent — asking twice for the same name
// returns the same metric — so independent layers can share a registry
// without coordinating initialization order. Registering a name that already
// exists with a DIFFERENT kind panics: that is a naming bug, not a runtime
// condition.
//
// Scrape-time collection: layers whose counters live inside a single-threaded
// event loop (the protocol automata) cannot be read by a scraping goroutine
// directly. They register an OnScrape hook that snapshots those counters into
// mirrored registry metrics (Counter.Set / Gauge.Set) under whatever
// synchronization the layer requires — typically one runtime.Proc.Inspect.
// Hooks run, in registration order, at the start of every WritePrometheus and
// ServeHTTP call, so a scrape always sees a fresh snapshot and an idle
// registry costs nothing.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	hooks   []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// validName reports whether name matches the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup returns the entry for name, creating it with kind when absent.
// Panics on an invalid name or a kind conflict.
func (r *Registry) lookup(name, kind string) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	e, ok := r.entries[name]
	if !ok {
		e = &entry{kind: kind}
		r.entries[name] = e
		return e
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, e.kind, kind))
	}
	return e
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, kindCounter)
	if e.fn != nil {
		panic(fmt.Sprintf("obs: metric %q is a CounterFunc", name))
	}
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, kindGauge)
	if e.fn != nil {
		panic(fmt.Sprintf("obs: metric %q is a GaugeFunc", name))
	}
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// CounterFunc registers a counter whose value is read from fn at scrape time.
// fn must be safe to call from the scraping goroutine (read an atomic, take a
// lock); re-registering the same name replaces the function, which is what a
// restarted component wants. Use for sources that already maintain an atomic
// monotonic count — the registry then stores nothing.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, kindCounter)
	if e.counter != nil {
		panic(fmt.Sprintf("obs: metric %q is a Counter", name))
	}
	e.fn = fn
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time;
// the same contract as CounterFunc.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, kindGauge)
	if e.gauge != nil {
		panic(fmt.Sprintf("obs: metric %q is a Gauge", name))
	}
	e.fn = fn
}

// Histogram returns the histogram registered under name, creating it if
// needed. It is exposed as a Prometheus summary: quantile-labelled samples
// plus _sum and _count.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.lookup(name, kindSummary)
	if e.hist == nil {
		e.hist = &Histogram{}
	}
	return e.hist
}

// OnScrape registers a hook that runs at the start of every scrape, before
// any metric is read. Hooks run in registration order.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// Names returns the registered metric names, sorted. Histogram entries
// report their base name (the exposition expands them to quantile samples).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Value returns the current value of the counter or gauge registered under
// name (0 when absent). It exists so a /status handler can read the same
// numbers a /metrics scrape would report. It does NOT run OnScrape hooks;
// callers that need fresh mirrored values run them via Collect.
func (r *Registry) Value(name string) int64 {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	switch {
	case e.fn != nil:
		return e.fn()
	case e.counter != nil:
		return e.counter.Value()
	case e.gauge != nil:
		return e.gauge.Value()
	}
	return 0
}

// Collect runs the OnScrape hooks without producing an exposition, so
// non-scrape readers (a /status handler built on Value) see the same fresh
// snapshot a scrape would.
func (r *Registry) Collect() {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// WritePrometheus runs the OnScrape hooks and writes every metric in the
// Prometheus text exposition format (version 0.0.4), sorted by name so the
// output is deterministic for a deterministic metric state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.Collect()
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]*entry, len(names))
	for i, name := range names {
		entries[i] = r.entries[name]
	}
	r.mu.Unlock()

	for i, name := range names {
		e := entries[i]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, e.kind); err != nil {
			return err
		}
		var err error
		switch {
		case e.hist != nil:
			h := e.hist
			for _, q := range [...]struct {
				label string
				q     float64
			}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}} {
				if _, err = fmt.Fprintf(w, "%s{quantile=%q} %d\n", name, q.label, h.Quantile(q.q)); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum()); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
		case e.fn != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", name, e.fn())
		case e.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", name, e.counter.Value())
		case e.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", name, e.gauge.Value())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP makes the registry mountable at GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
