// Package obs is the repo's observability plane: a dependency-free metrics
// registry (atomic counters, gauges, and the HDR-style log-bucketed Histogram
// extracted from internal/loadgen), a Prometheus text exposition served at
// GET /metrics, and a bounded-ring op-lifecycle tracer served at GET /trace.
//
// The paper's guarantees are all eventual — ETOB-Stability and EC-Agreement
// hold "for some τ" — so operating the system means WATCHING τ converge, not
// just asserting it post-hoc in internal/trace: retransmit pendings draining
// after a partition heals, Ω flap counts settling after churn, batch depth
// adapting to load. This package is the mechanism; internal/core wires it to
// the protocol stack, internal/node and internal/lb mount the endpoints.
//
// # Naming conventions
//
// Prometheus conventions throughout: snake_case, a layer prefix
// (retransmit_, batch_, smr_, etob_, kernel_, transport_, node_, omega_,
// lb_, http_), the _total suffix on counters, bare names for gauges, base
// names for histograms (exposed as summaries; the exposition appends
// quantile samples plus _sum and _count). Canonical names are constants in
// names.go — wiring code never spells a metric name inline.
//
// # Sim/live metric-name parity
//
// The same protocol stack runs under the deterministic simulator and the
// live TCP runtime, and both register the SAME stack-metric names, so a sim
// run and a live cluster are directly comparable, column for column:
//
//	layer       names                                        sim   live
//	retransmit  retransmit_{resends,duplicates,abandoned}_total,
//	            retransmit_{pending_envelopes,dedup_sparse,
//	            dedup_streams}                               yes   yes
//	etob batch  batch_{flushes,full_flushes,linger_flushes,
//	            ops}_total, batch_{target,queued}            yes   yes
//	etob        etob_undelivered_ops                         yes   yes
//	smr         smr_{applied,rebuilds}_total                 yes   yes
//	kernel      kernel_steps_total, kernel_messages_*_total  yes   —
//	transport   transport_*                                  —     yes
//	node/lb/Ω   node_*, lb_*, omega_*, http_*                —     yes
//
// StackNames returns the shared rows; the parity test in internal/core pins
// the table.
//
// # Overhead contract
//
// Metrics must not perturb what they measure. The registry holds that line
// with three rules:
//
//  1. Hot paths touch at most one atomic per event (Counter.Add,
//     Histogram.Record) — never a lock, never an allocation.
//  2. State that lives inside a single-threaded event loop (automaton
//     counters) is NOT instrumented inline. An OnScrape hook snapshots it at
//     scrape time under the loop's own synchronization (one
//     runtime.Proc.Inspect), so the per-event cost in the loop is zero.
//  3. The simulator registers read-at-scrape CounterFuncs over counters the
//     kernel already maintains — a metrics-on sim run executes the identical
//     per-step instruction stream as a metrics-off run.
//
// scripts/metrics_overhead.sh enforces rule 3's consequence in CI: kernel
// ns/op with a registry attached must stay within 5% of the bare kernel, and
// the BENCH_7.json "metrics" section records the same comparison per
// experiment (parity within each experiment's measured spread).
package obs
