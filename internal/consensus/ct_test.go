package consensus

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func runCT(t *testing.T, fp *model.FailurePattern, det fd.Detector, seed int64,
	values map[model.ProcID]string, horizon model.Time) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder(fp.N())
	k := sim.New(fp, det, CTFactory(), sim.Options{Seed: seed})
	k.SetObserver(rec)
	for p, v := range values {
		k.ScheduleInput(p, 10+model.Time(p), model.ProposeInput{Instance: 1, Value: v})
	}
	k.RunUntil(horizon, func(*sim.Kernel) bool { return rec.AllDecided(fp.Correct(), 1) })
	return rec
}

func allPropose(n int) map[model.ProcID]string {
	m := make(map[model.ProcID]string, n)
	for _, p := range model.Procs(n) {
		m[p] = fmt.Sprintf("v%v", p)
	}
	return m
}

func TestCTFailureFree(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewEventuallyPerfect(fp, 0) // accurate from the start
	rec := runCT(t, fp, det, 1, allPropose(3), 20000)
	rep := trace.CheckEC(rec, fp.Correct(), 1)
	if !rep.OK() || rep.AgreementK != 1 {
		t.Fatalf("CT consensus spec: %+v", rep)
	}
	// Round-1 coordinator is p1: its estimate wins.
	for _, p := range fp.Correct() {
		ds := rec.Decisions(p)
		if len(ds) != 1 || ds[0].Value != "vp1" {
			t.Fatalf("%v decided %+v, want vp1", p, ds)
		}
	}
}

func TestCTCoordinatorCrash(t *testing.T) {
	// p1 (the round-1 coordinator) crashes immediately; suspicion must drive
	// everyone to round 2 where p2 coordinates and decides.
	fp := model.NewFailurePattern(5)
	fp.Crash(1, 5)
	det := fd.NewEventuallyPerfect(fp, 50)
	rec := runCT(t, fp, det, 3, allPropose(5), 40000)
	rep := trace.CheckEC(rec, fp.Correct(), 1)
	if !rep.OK() || rep.AgreementK != 1 {
		t.Fatalf("CT with crashed coordinator: %+v", rep)
	}
}

func TestCTWrongSuspicionsStillSafe(t *testing.T) {
	// ◇S may be wrong for a long time: rounds churn (nacks), but agreement
	// and validity must never be violated, and termination follows once the
	// detector stabilizes.
	fp := model.NewFailurePattern(3)
	det := fd.NewEventuallyPerfect(fp, 1500) // wrong suspicions until t=1500
	rec := runCT(t, fp, det, 7, allPropose(3), 60000)
	rep := trace.CheckEC(rec, fp.Correct(), 1)
	if !rep.OK() || rep.AgreementK != 1 {
		t.Fatalf("CT under wrong suspicions: %+v", rep)
	}
}

func TestCTWithSuspectsFromOmega(t *testing.T) {
	// CT driven by the ◇S-from-Ω reduction: Ω ≡ ◇S made executable.
	fp := model.NewFailurePattern(3)
	base := fd.NewOmegaEventual(fp, 2, 400)
	det := fd.NewSuspectsFromOmega(base, 3)
	rec := runCT(t, fp, det, 11, allPropose(3), 60000)
	rep := trace.CheckEC(rec, fp.Correct(), 1)
	if !rep.OK() || rep.AgreementK != 1 {
		t.Fatalf("CT over SuspectsFromOmega: %+v", rep)
	}
}

func TestCTBlocksWithoutMajority(t *testing.T) {
	// The contrast with the paper's Algorithm 4: CT needs a correct majority.
	fp := model.NewFailurePattern(5)
	fp.Crash(3, 0)
	fp.Crash(4, 0)
	fp.Crash(5, 0)
	det := fd.NewEventuallyPerfect(fp, 0)
	rec := runCT(t, fp, det, 13, allPropose(5), 20000)
	for _, p := range fp.Correct() {
		if len(rec.Decisions(p)) != 0 {
			t.Fatalf("%v decided without a correct majority", p)
		}
	}
}

func TestCTDecidedAccessorAndIdempotentPropose(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewEventuallyPerfect(fp, 0)
	k := sim.New(fp, det, CTFactory(), sim.Options{Seed: 2})
	k.ScheduleInput(1, 10, model.ProposeInput{Instance: 1, Value: "a"})
	k.ScheduleInput(1, 15, model.ProposeInput{Instance: 1, Value: "b"}) // ignored
	k.ScheduleInput(2, 12, model.ProposeInput{Instance: 1, Value: "c"})
	k.Run(20000)
	a := k.Automaton(1).(*CT)
	v, ok := a.Decided()
	if !ok {
		t.Fatal("p1 did not decide")
	}
	if v != "a" && v != "c" {
		t.Fatalf("decided %q, want a proposed value", v)
	}
	if a.Round() < 1 {
		t.Fatal("round accessor")
	}
}
