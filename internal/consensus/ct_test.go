package consensus

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func runCT(t *testing.T, fp *model.FailurePattern, det fd.Detector, seed int64,
	values map[model.ProcID]string, horizon model.Time) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder(fp.N())
	k := sim.New(fp, det, CTFactory(), sim.Options{Seed: seed})
	k.SetObserver(rec)
	for p, v := range values {
		k.ScheduleInput(p, 10+model.Time(p), model.ProposeInput{Instance: 1, Value: v})
	}
	k.RunUntil(horizon, func(*sim.Kernel) bool { return rec.AllDecided(fp.Correct(), 1) })
	return rec
}

func allPropose(n int) map[model.ProcID]string {
	m := make(map[model.ProcID]string, n)
	for _, p := range model.Procs(n) {
		m[p] = fmt.Sprintf("v%v", p)
	}
	return m
}

func TestCTFailureFree(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewEventuallyPerfect(fp, 0) // accurate from the start
	rec := runCT(t, fp, det, 1, allPropose(3), 20000)
	rep := trace.CheckEC(rec, fp.Correct(), 1)
	if !rep.OK() || rep.AgreementK != 1 {
		t.Fatalf("CT consensus spec: %+v", rep)
	}
	// Round-1 coordinator is p1: its estimate wins.
	for _, p := range fp.Correct() {
		ds := rec.Decisions(p)
		if len(ds) != 1 || ds[0].Value != "vp1" {
			t.Fatalf("%v decided %+v, want vp1", p, ds)
		}
	}
}

func TestCTCoordinatorCrash(t *testing.T) {
	// p1 (the round-1 coordinator) crashes immediately; suspicion must drive
	// everyone to round 2 where p2 coordinates and decides.
	fp := model.NewFailurePattern(5)
	fp.Crash(1, 5)
	det := fd.NewEventuallyPerfect(fp, 50)
	rec := runCT(t, fp, det, 3, allPropose(5), 40000)
	rep := trace.CheckEC(rec, fp.Correct(), 1)
	if !rep.OK() || rep.AgreementK != 1 {
		t.Fatalf("CT with crashed coordinator: %+v", rep)
	}
}

func TestCTWrongSuspicionsStillSafe(t *testing.T) {
	// ◇S may be wrong for a long time: rounds churn (nacks), but agreement
	// and validity must never be violated, and termination follows once the
	// detector stabilizes.
	fp := model.NewFailurePattern(3)
	det := fd.NewEventuallyPerfect(fp, 1500) // wrong suspicions until t=1500
	rec := runCT(t, fp, det, 7, allPropose(3), 60000)
	rep := trace.CheckEC(rec, fp.Correct(), 1)
	if !rep.OK() || rep.AgreementK != 1 {
		t.Fatalf("CT under wrong suspicions: %+v", rep)
	}
}

func TestCTWithSuspectsFromOmega(t *testing.T) {
	// CT driven by the ◇S-from-Ω reduction: Ω ≡ ◇S made executable.
	fp := model.NewFailurePattern(3)
	base := fd.NewOmegaEventual(fp, 2, 400)
	det := fd.NewSuspectsFromOmega(base, 3)
	rec := runCT(t, fp, det, 11, allPropose(3), 60000)
	rep := trace.CheckEC(rec, fp.Correct(), 1)
	if !rep.OK() || rep.AgreementK != 1 {
		t.Fatalf("CT over SuspectsFromOmega: %+v", rep)
	}
}

func TestCTBlocksWithoutMajority(t *testing.T) {
	// The contrast with the paper's Algorithm 4: CT needs a correct majority.
	fp := model.NewFailurePattern(5)
	fp.Crash(3, 0)
	fp.Crash(4, 0)
	fp.Crash(5, 0)
	det := fd.NewEventuallyPerfect(fp, 0)
	rec := runCT(t, fp, det, 13, allPropose(5), 20000)
	for _, p := range fp.Correct() {
		if len(rec.Decisions(p)) != 0 {
			t.Fatalf("%v decided without a correct majority", p)
		}
	}
}

// ctPhaseObs counts, per sender, how many times each recipient was sent a
// phase-transition message: a CTProposeMsg per (coordinator, round) and a
// CTDecideMsg per relayer. A recipient appearing twice under one key means
// the transition fired twice — exactly the regression insert-time counters
// could introduce (a rescan fires while len == majority only once; a counter
// mishandling duplicates could re-fire or never fire).
type ctPhaseObs struct {
	proposeSends map[int]map[model.ProcID]map[model.ProcID]int // round → coord → recipient → sends
	decideSends  map[model.ProcID]map[model.ProcID]int         // sender → recipient → sends
}

func (o *ctPhaseObs) OnSend(_ model.Time, m sim.Message) {
	switch pm := m.Payload.(type) {
	case CTProposeMsg:
		byCoord := o.proposeSends[pm.Round]
		if byCoord == nil {
			byCoord = make(map[model.ProcID]map[model.ProcID]int)
			o.proposeSends[pm.Round] = byCoord
		}
		if byCoord[m.From] == nil {
			byCoord[m.From] = make(map[model.ProcID]int)
		}
		byCoord[m.From][m.To]++
	case CTDecideMsg:
		if o.decideSends[m.From] == nil {
			o.decideSends[m.From] = make(map[model.ProcID]int)
		}
		o.decideSends[m.From][m.To]++
	}
}

func (o *ctPhaseObs) OnDeliver(model.Time, sim.Message)      {}
func (o *ctPhaseObs) OnOutput(model.ProcID, model.Time, any) {}
func (o *ctPhaseObs) OnInput(model.ProcID, model.Time, any)  {}

// ctTee fans observer callbacks out to two observers.
type ctTee struct{ a, b sim.Observer }

func (t ctTee) OnSend(tm model.Time, m sim.Message)    { t.a.OnSend(tm, m); t.b.OnSend(tm, m) }
func (t ctTee) OnDeliver(tm model.Time, m sim.Message) { t.a.OnDeliver(tm, m); t.b.OnDeliver(tm, m) }
func (t ctTee) OnOutput(p model.ProcID, tm model.Time, v any) {
	t.a.OnOutput(p, tm, v)
	t.b.OnOutput(p, tm, v)
}
func (t ctTee) OnInput(p model.ProcID, tm model.Time, v any) {
	t.a.OnInput(p, tm, v)
	t.b.OnInput(p, tm, v)
}

// TestCTPhaseTransitionsOncePerRoundN64 pins, at n=64 across a coordinator
// crash (so at least two rounds run), that every coordinator broadcasts its
// round's proposal exactly once and every process broadcasts the decision at
// most once — i.e. the insert-time threshold counters fire each phase
// transition exactly when the old per-delivery rescan did.
func TestCTPhaseTransitionsOncePerRoundN64(t *testing.T) {
	const n = 64
	fp := model.NewFailurePattern(n)
	fp.Crash(1, 5) // round-1 coordinator dies: round 2 must also transition
	det := fd.NewEventuallyPerfect(fp, 50)
	obs := &ctPhaseObs{
		proposeSends: make(map[int]map[model.ProcID]map[model.ProcID]int),
		decideSends:  make(map[model.ProcID]map[model.ProcID]int),
	}
	rec := trace.NewRecorder(n)
	k := sim.New(fp, det, CTFactory(), sim.Options{Seed: 64})
	k.SetObserver(ctTee{a: rec, b: obs})
	for p, v := range allPropose(n) {
		k.ScheduleInput(p, 10+model.Time(p), model.ProposeInput{Instance: 1, Value: v})
	}
	k.RunUntil(120000, func(*sim.Kernel) bool { return rec.AllDecided(fp.Correct(), 1) })

	rep := trace.CheckEC(rec, fp.Correct(), 1)
	if !rep.OK() || rep.AgreementK != 1 {
		t.Fatalf("CT consensus spec at n=64: %+v", rep)
	}
	if len(obs.proposeSends) < 2 {
		t.Fatalf("only rounds %v proposed; the crash should force at least two rounds", len(obs.proposeSends))
	}
	for round, byCoord := range obs.proposeSends {
		for coord, recips := range byCoord {
			for to, sends := range recips {
				if sends != 1 {
					t.Errorf("round %d: coordinator %v sent %d proposals to %v, want exactly 1", round, coord, sends, to)
				}
			}
		}
	}
	// A deciding coordinator legitimately broadcasts CTDecideMsg twice: once
	// from the ack-majority path (fires exactly once per round) and once as
	// the relay-once of onDecide. Everyone else only relays.
	coords := make(map[model.ProcID]bool)
	for _, byCoord := range obs.proposeSends {
		for coord := range byCoord {
			coords[coord] = true
		}
	}
	for from, recips := range obs.decideSends {
		limit := 1
		if coords[from] {
			limit = 2
		}
		for to, sends := range recips {
			if sends > limit {
				t.Errorf("%v sent %d decide messages to %v, want at most %d (ack-majority and relay each fire once)", from, sends, to, limit)
			}
		}
	}
}

func TestCTDecidedAccessorAndIdempotentPropose(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewEventuallyPerfect(fp, 0)
	k := sim.New(fp, det, CTFactory(), sim.Options{Seed: 2})
	k.ScheduleInput(1, 10, model.ProposeInput{Instance: 1, Value: "a"})
	k.ScheduleInput(1, 15, model.ProposeInput{Instance: 1, Value: "b"}) // ignored
	k.ScheduleInput(2, 12, model.ProposeInput{Instance: 1, Value: "c"})
	k.Run(20000)
	a := k.Automaton(1).(*CT)
	v, ok := a.Decided()
	if !ok {
		t.Fatal("p1 did not decide")
	}
	if v != "a" && v != "c" {
		t.Fatalf("decided %q, want a proposed value", v)
	}
	if a.Round() < 1 {
		t.Fatal("round accessor")
	}
}
