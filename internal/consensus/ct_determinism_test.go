package consensus

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestCTRoundOneCoordinatorWinsAcrossSeeds is the regression test for the
// nondeterministic tie-break this revision fixes: in a failure-free run with
// an accurate detector, round 1's coordinator (p1) gathers estimates that
// all carry ts=0, and the deterministic lowest-ProcID tie-break must make
// p1's own value win — for EVERY seed, not just whichever map iteration
// order Go happened to pick.
func TestCTRoundOneCoordinatorWinsAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		fp := model.NewFailurePattern(3)
		det := fd.NewEventuallyPerfect(fp, 0)
		rec := runCT(t, fp, det, seed, allPropose(3), 20000)
		rep := trace.CheckEC(rec, fp.Correct(), 1)
		if !rep.OK() || rep.AgreementK != 1 {
			t.Fatalf("seed %d: CT consensus spec: %+v", seed, rep)
		}
		for _, p := range fp.Correct() {
			ds := rec.Decisions(p)
			if len(ds) != 1 || ds[0].Value != "vp1" {
				t.Fatalf("seed %d: %v decided %+v, want vp1 (round-1 coordinator's value)", seed, p, ds)
			}
		}
	}
}

// ctTraceObs flattens a CT run into a comparable event string sequence.
type ctTraceObs struct {
	sim.NopObserver
	events []string
}

func (o *ctTraceObs) OnSend(t model.Time, m sim.Message) {
	o.events = append(o.events, fmt.Sprintf("S %d #%d %v->%v %+v", t, m.ID, m.From, m.To, m.Payload))
}

func (o *ctTraceObs) OnDeliver(t model.Time, m sim.Message) {
	o.events = append(o.events, fmt.Sprintf("D %d #%d %v->%v %+v", t, m.ID, m.From, m.To, m.Payload))
}

func (o *ctTraceObs) OnOutput(p model.ProcID, t model.Time, v any) {
	o.events = append(o.events, fmt.Sprintf("O %d %v %+v", t, p, v))
}

// TestCTTraceDeterminism: two CT runs with identical seed and options must
// produce identical event sequences end to end — the automaton half of the
// determinism promise (the kernel half lives in internal/sim). This covers
// both the coordinator tie-break and message emission order.
func TestCTTraceDeterminism(t *testing.T) {
	run := func() []string {
		fp := model.NewFailurePattern(5)
		fp.Crash(1, 5) // crashed round-1 coordinator: exercises suspicion paths too
		det := fd.NewEventuallyPerfect(fp, 50)
		obs := &ctTraceObs{}
		k := sim.New(fp, det, CTFactory(), sim.Options{Seed: 3})
		k.SetObserver(obs)
		values := allPropose(5)
		for _, p := range model.Procs(5) { // explicit order: no map iteration
			k.ScheduleInput(p, 10+model.Time(p), model.ProposeInput{Instance: 1, Value: values[p]})
		}
		k.Run(40000)
		return obs.events
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("CT traces diverge at event %d:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
}

// TestPaxosTraceDeterminism covers the map-iteration audit in paxos.go: the
// leader's retransmission and re-proposal loops must emit messages in sorted
// instance order, so same seed ⇒ same trace.
func TestPaxosTraceDeterminism(t *testing.T) {
	run := func() []string {
		fp := model.NewFailurePattern(5)
		fp.Crash(5, 400)
		det := fd.NewOmegaEventual(fp, 2, 300) // leadership churn → re-proposals
		obs := &ctTraceObs{}
		k := sim.New(fp, det, LogFactory(MajorityQuorums), sim.Options{Seed: 5})
		k.SetObserver(obs)
		for i := 0; i < 6; i++ {
			p := model.ProcID(i%4 + 1)
			k.ScheduleInput(p, model.Time(30+40*i), model.BroadcastInput{ID: fmt.Sprintf("m%d", i)})
		}
		k.Run(5000)
		return obs.events
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Paxos traces diverge at event %d:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
}
