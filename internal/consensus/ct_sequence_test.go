package consensus

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transform"
)

// tobFromCT is Algorithm 1's batch construction over the CT sequence.
func tobFromCT() model.AutomatonFactory {
	return transform.ECToETOBFactory(func(p model.ProcID, n int) transform.ECProtocol {
		return NewCTSequence(p, n)
	})
}

func TestCTSequenceMultipleInstances(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewEventuallyPerfect(fp, 0)
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, CTSequenceFactory(), sim.Options{Seed: 5})
	k.SetObserver(rec)
	for l := 1; l <= 4; l++ {
		for _, p := range model.Procs(3) {
			k.ScheduleInput(p, model.Time(10*l)+model.Time(p),
				model.ProposeInput{Instance: l, Value: fmt.Sprintf("v%v-%d", p, l)})
		}
	}
	k.RunUntil(60000, func(*sim.Kernel) bool { return rec.AllDecided(fp.Correct(), 4) })
	rep := trace.CheckEC(rec, fp.Correct(), 4)
	if !rep.OK() || rep.AgreementK != 1 {
		t.Fatalf("CT sequence: %+v", rep)
	}
}

func TestCTSequenceInstancesIsolated(t *testing.T) {
	// A message of instance 2 must never affect instance 1's outcome:
	// propose only instance 2 and check instance 1 stays undecided.
	fp := model.NewFailurePattern(3)
	det := fd.NewEventuallyPerfect(fp, 0)
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, CTSequenceFactory(), sim.Options{Seed: 6})
	k.SetObserver(rec)
	for _, p := range model.Procs(3) {
		k.ScheduleInput(p, 10, model.ProposeInput{Instance: 2, Value: "only2"})
	}
	k.RunUntil(20000, func(*sim.Kernel) bool { return rec.AllDecided(fp.Correct(), 0) && len(rec.Decisions(1)) > 0 })
	for _, p := range fp.Correct() {
		for _, d := range rec.Decisions(p) {
			if d.Instance != 2 {
				t.Fatalf("%v decided instance %d, only 2 was proposed", p, d.Instance)
			}
		}
	}
}

func TestTOBOverCTSequence(t *testing.T) {
	// The textbook stack: Algorithm 1's batch construction over genuine
	// CT96 consensus = classical strong TOB.
	fp := model.NewFailurePattern(3)
	det := fd.NewSuspectsFromOmega(fd.NewOmegaStable(fp, 1), 3)
	rec := trace.NewRecorder(3)
	factory := tobFromCT()
	k := sim.New(fp, det, factory, sim.Options{Seed: 9})
	k.SetObserver(rec)
	var ids []string
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("m%d", i)
		ids = append(ids, id)
		k.ScheduleInput(model.ProcID(i%3+1), model.Time(20+40*i), model.BroadcastInput{ID: id})
	}
	k.RunUntil(60000, func(*sim.Kernel) bool { return rec.AllDelivered(fp.Correct(), ids) })
	settle := k.Now()
	k.Run(settle + 500)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{SettleTime: settle})
	if !rep.OK() || !rep.StrongTOB() {
		t.Fatalf("TOB over CT: τ=%d %+v", rep.Tau, rep)
	}
}
