package consensus

import (
	"repro/internal/fd"
	"repro/internal/model"
)

// This file implements the Chandra–Toueg rotating-coordinator consensus
// algorithm using ◇S-style suspicions [Chandra & Toueg, JACM 96] — the
// classical algorithm the paper's introduction builds on ("the weakest
// failure detector to implement consensus ... is Ω" [CHT96], with ◇S ≡ Ω).
// It requires a correct majority, in contrast with the paper's Algorithm 4,
// which implements *eventual* consensus from Ω in any environment — the
// repository's executable form of that comparison.
//
// Round structure (round r, coordinator c = ((r−1) mod n) + 1):
//
//	phase 1  every process sends its (estimate, ts) to c
//	phase 2  c collects a majority of estimates and proposes the one with
//	         the highest ts
//	phase 3  a process either receives c's proposal (adopts it, ts := r,
//	         acks) or suspects c via the detector (nacks); either way it
//	         moves to round r+1
//	phase 4  c collects a majority of positive acks and reliably broadcasts
//	         the decision; every process relays the decision once
type CT struct {
	self     model.ProcID
	n        int
	majority int

	est     string // current estimate
	ts      int    // round in which est was adopted
	started bool
	decided bool
	value   string

	round   int
	waiting bool // in phase 3: waiting for the coordinator's proposal

	// Coordinator state, per round led by us.
	gathered map[int]map[model.ProcID]ctEstimate // round → estimates received
	proposed map[int]bool                        // rounds we already proposed in
	acks     map[int]map[model.ProcID]bool       // round → positive acks
	coordVal map[int]string                      // round → value we proposed
}

type ctEstimate struct {
	est string
	ts  int
}

// CTEstimateMsg is phase 1: (estimate, ts) to the round's coordinator.
type CTEstimateMsg struct {
	Round int
	Est   string
	TS    int
}

// CTProposeMsg is phase 2: the coordinator's proposal.
type CTProposeMsg struct {
	Round int
	Value string
}

// CTAckMsg is phase 3: ack (OK) or nack (suspicion) to the coordinator.
type CTAckMsg struct {
	Round int
	OK    bool
}

// CTDecideMsg is phase 4: the reliably broadcast decision.
type CTDecideMsg struct {
	Value string
}

var _ model.Automaton = (*CT)(nil)

// NewCT returns the Chandra–Toueg automaton for process p of n. The failure
// detector value must be an fd.SuspectValue (◇P/◇S style) or convertible via
// fd.SuspectsFromOmega.
func NewCT(p model.ProcID, n int) *CT {
	return &CT{
		self:     p,
		n:        n,
		majority: n/2 + 1,
		gathered: make(map[int]map[model.ProcID]ctEstimate),
		proposed: make(map[int]bool),
		acks:     make(map[int]map[model.ProcID]bool),
		coordVal: make(map[int]string),
	}
}

// CTFactory adapts NewCT to model.AutomatonFactory.
func CTFactory() model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return NewCT(p, n) }
}

// coord returns the coordinator of round r.
func (c *CT) coord(r int) model.ProcID {
	return model.ProcID((r-1)%c.n + 1)
}

// Init implements model.Automaton.
func (c *CT) Init(model.Context) {}

// Input implements model.Automaton: model.ProposeInput (instance 1) is
// proposeC(v).
func (c *CT) Input(ctx model.Context, in any) {
	pi, ok := in.(model.ProposeInput)
	if !ok || c.started {
		return
	}
	c.Propose(ctx, pi.Instance, pi.Value)
}

// Propose starts the protocol with initial estimate value (one-shot; the
// instance argument exists for ECProtocol shape compatibility and must be 1).
func (c *CT) Propose(ctx model.Context, _ int, value string) {
	if c.started {
		return
	}
	c.started = true
	c.est = value
	c.ts = 0
	c.enterRound(ctx, 1)
}

func (c *CT) enterRound(ctx model.Context, r int) {
	c.round = r
	c.waiting = true
	m := CTEstimateMsg{Round: r, Est: c.est, TS: c.ts}
	if c.coord(r) == c.self {
		// The coordinator's own estimate is delivered locally, not mailed
		// through the network. When the coordinator enters the round before a
		// remote majority has gathered (e.g. near-simultaneous proposals with
		// link delays exceeding the proposal spread), its estimate is in the
		// gathered set from the start, so the lowest-ProcID tie-break below
		// makes the round-1 coordinator's value win in failure-free runs.
		c.onEstimate(ctx, c.self, m)
		return
	}
	ctx.Send(c.coord(r), m)
}

// Recv implements model.Automaton.
func (c *CT) Recv(ctx model.Context, from model.ProcID, payload any) {
	switch m := payload.(type) {
	case CTEstimateMsg:
		c.onEstimate(ctx, from, m)
	case CTProposeMsg:
		c.onPropose(ctx, from, m)
	case CTAckMsg:
		c.onAck(ctx, from, m)
	case CTDecideMsg:
		c.onDecide(ctx, m.Value)
	}
}

func (c *CT) onEstimate(ctx model.Context, from model.ProcID, m CTEstimateMsg) {
	if c.coord(m.Round) != c.self || c.proposed[m.Round] {
		return
	}
	g := c.gathered[m.Round]
	if g == nil {
		g = make(map[model.ProcID]ctEstimate, c.n)
		c.gathered[m.Round] = g
	}
	g[from] = ctEstimate{est: m.Est, ts: m.TS}
	if len(g) < c.majority {
		return
	}
	// Propose the estimate with the highest timestamp (Paxos-style locking).
	// Ties are broken by the lowest sender ProcID: iterating the map directly
	// would let Go's randomized map order pick the winner, breaking the
	// kernel's bit-for-bit determinism promise.
	best := ctEstimate{ts: -1}
	for _, q := range model.Procs(c.n) {
		if e, ok := g[q]; ok && e.ts > best.ts {
			best = e
		}
	}
	c.proposed[m.Round] = true
	c.coordVal[m.Round] = best.est
	ctx.Broadcast(CTProposeMsg{Round: m.Round, Value: best.est})
}

func (c *CT) onPropose(ctx model.Context, from model.ProcID, m CTProposeMsg) {
	if m.Round != c.round || !c.waiting || from != c.coord(m.Round) {
		return
	}
	c.est = m.Value
	c.ts = m.Round
	c.waiting = false
	ctx.Send(from, CTAckMsg{Round: m.Round, OK: true})
	if !c.decided {
		c.enterRound(ctx, m.Round+1)
	}
}

func (c *CT) onAck(ctx model.Context, from model.ProcID, m CTAckMsg) {
	if c.coord(m.Round) != c.self || !m.OK {
		return
	}
	a := c.acks[m.Round]
	if a == nil {
		a = make(map[model.ProcID]bool, c.n)
		c.acks[m.Round] = a
	}
	a[from] = true
	if len(a) == c.majority { // decide exactly once per round
		ctx.Broadcast(CTDecideMsg{Value: c.coordVal[m.Round]})
	}
}

func (c *CT) onDecide(ctx model.Context, v string) {
	if c.decided {
		return
	}
	c.decided = true
	c.value = v
	// Reliable broadcast: relay once so every correct process decides even if
	// the origin crashes mid-broadcast.
	ctx.Broadcast(CTDecideMsg{Value: v})
	ctx.Output(model.Decision{Instance: 1, Value: v})
}

// Tick implements model.Automaton: suspicion-driven round changes (phase 3's
// escape hatch — without it a crashed coordinator would block the round).
func (c *CT) Tick(ctx model.Context) {
	if !c.started || c.decided || !c.waiting {
		return
	}
	suspects, ok := ctx.FD().(fd.SuspectValue)
	if !ok {
		return
	}
	co := c.coord(c.round)
	for _, s := range suspects {
		if s == co {
			c.waiting = false
			ctx.Send(co, CTAckMsg{Round: c.round, OK: false})
			c.enterRound(ctx, c.round+1)
			return
		}
	}
}

// Decided reports whether this process has decided, and the value.
func (c *CT) Decided() (string, bool) { return c.value, c.decided }

// Round returns the current round (for tests).
func (c *CT) Round() int { return c.round }
