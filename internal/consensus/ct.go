package consensus

import (
	"repro/internal/fd"
	"repro/internal/model"
)

// This file implements the Chandra–Toueg rotating-coordinator consensus
// algorithm using ◇S-style suspicions [Chandra & Toueg, JACM 96] — the
// classical algorithm the paper's introduction builds on ("the weakest
// failure detector to implement consensus ... is Ω" [CHT96], with ◇S ≡ Ω).
// It requires a correct majority, in contrast with the paper's Algorithm 4,
// which implements *eventual* consensus from Ω in any environment — the
// repository's executable form of that comparison.
//
// Round structure (round r, coordinator c = ((r−1) mod n) + 1):
//
//	phase 1  every process sends its (estimate, ts) to c
//	phase 2  c collects a majority of estimates and proposes the one with
//	         the highest ts
//	phase 3  a process either receives c's proposal (adopts it, ts := r,
//	         acks) or suspects c via the detector (nacks); either way it
//	         moves to round r+1
//	phase 4  c collects a majority of positive acks and reliably broadcasts
//	         the decision; every process relays the decision once
type CT struct {
	self     model.ProcID
	n        int
	majority int

	est     string // current estimate
	ts      int    // round in which est was adopted
	started bool
	decided bool
	value   string

	round   int
	waiting bool // in phase 3: waiting for the coordinator's proposal

	// Coordinator state, per round led by us.
	rounds map[int]*ctRound
}

type ctEstimate struct {
	est string
	ts  int
}

// ctRound is the coordinator's per-round state, maintained incrementally at
// insert time: estCount/ackCount are threshold counters and best is the
// running highest-ts estimate, so reaching a majority costs O(1) per
// delivery instead of rescanning the collected map (O(n) per delivery,
// O(n²) per round — measurable at n=64 and dominant at n=256).
type ctRound struct {
	estSeen  map[model.ProcID]bool // dedup: count each sender once
	estCount int
	best     ctEstimate   // running max-ts estimate, lowest sender on ties
	bestFrom model.ProcID // sender of best, for the deterministic tie-break
	proposed bool         // phase 2 fired
	val      string       // value we proposed
	ackSeen  map[model.ProcID]bool
	ackCount int
}

func (c *CT) roundState(r int) *ctRound {
	st := c.rounds[r]
	if st == nil {
		st = &ctRound{
			estSeen: make(map[model.ProcID]bool, c.majority),
			ackSeen: make(map[model.ProcID]bool, c.majority),
			best:    ctEstimate{ts: -1},
		}
		c.rounds[r] = st
	}
	return st
}

// CTEstimateMsg is phase 1: (estimate, ts) to the round's coordinator.
type CTEstimateMsg struct {
	Round int
	Est   string
	TS    int
}

// CTProposeMsg is phase 2: the coordinator's proposal.
type CTProposeMsg struct {
	Round int
	Value string
}

// CTAckMsg is phase 3: ack (OK) or nack (suspicion) to the coordinator.
type CTAckMsg struct {
	Round int
	OK    bool
}

// CTDecideMsg is phase 4: the reliably broadcast decision.
type CTDecideMsg struct {
	Value string
}

var _ model.Automaton = (*CT)(nil)

// NewCT returns the Chandra–Toueg automaton for process p of n. The failure
// detector value must be an fd.SuspectValue (◇P/◇S style) or convertible via
// fd.SuspectsFromOmega.
func NewCT(p model.ProcID, n int) *CT {
	return &CT{
		self:     p,
		n:        n,
		majority: n/2 + 1,
		rounds:   make(map[int]*ctRound),
	}
}

// CTFactory adapts NewCT to model.AutomatonFactory.
func CTFactory() model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return NewCT(p, n) }
}

// coord returns the coordinator of round r.
func (c *CT) coord(r int) model.ProcID {
	return model.ProcID((r-1)%c.n + 1)
}

// Init implements model.Automaton.
func (c *CT) Init(model.Context) {}

// Input implements model.Automaton: model.ProposeInput (instance 1) is
// proposeC(v).
func (c *CT) Input(ctx model.Context, in any) {
	pi, ok := in.(model.ProposeInput)
	if !ok || c.started {
		return
	}
	c.Propose(ctx, pi.Instance, pi.Value)
}

// Propose starts the protocol with initial estimate value (one-shot; the
// instance argument exists for ECProtocol shape compatibility and must be 1).
func (c *CT) Propose(ctx model.Context, _ int, value string) {
	if c.started {
		return
	}
	c.started = true
	c.est = value
	c.ts = 0
	c.enterRound(ctx, 1)
}

func (c *CT) enterRound(ctx model.Context, r int) {
	c.round = r
	c.waiting = true
	m := CTEstimateMsg{Round: r, Est: c.est, TS: c.ts}
	if c.coord(r) == c.self {
		// The coordinator's own estimate is delivered locally, not mailed
		// through the network. When the coordinator enters the round before a
		// remote majority has gathered (e.g. near-simultaneous proposals with
		// link delays exceeding the proposal spread), its estimate is in the
		// gathered set from the start, so the lowest-ProcID tie-break below
		// makes the round-1 coordinator's value win in failure-free runs.
		c.onEstimate(ctx, c.self, m)
		return
	}
	ctx.Send(c.coord(r), m)
}

// Recv implements model.Automaton.
func (c *CT) Recv(ctx model.Context, from model.ProcID, payload any) {
	switch m := payload.(type) {
	case CTEstimateMsg:
		c.onEstimate(ctx, from, m)
	case CTProposeMsg:
		c.onPropose(ctx, from, m)
	case CTAckMsg:
		c.onAck(ctx, from, m)
	case CTDecideMsg:
		c.onDecide(ctx, m.Value)
	}
}

func (c *CT) onEstimate(ctx model.Context, from model.ProcID, m CTEstimateMsg) {
	if c.coord(m.Round) != c.self {
		return
	}
	st := c.roundState(m.Round)
	if st.proposed || st.estSeen[from] {
		return
	}
	st.estSeen[from] = true
	st.estCount++
	// Track the estimate with the highest timestamp (Paxos-style locking)
	// incrementally. Ties break to the lowest sender ProcID — the same winner
	// the old per-delivery rescan over model.Procs picked, but arrival-order
	// independent and without iterating a Go map (whose randomized order
	// would break the kernel's bit-for-bit determinism promise).
	if m.TS > st.best.ts || (m.TS == st.best.ts && from < st.bestFrom) {
		st.best = ctEstimate{est: m.Est, ts: m.TS}
		st.bestFrom = from
	}
	if st.estCount < c.majority {
		return
	}
	st.proposed = true
	st.val = st.best.est
	ctx.Broadcast(CTProposeMsg{Round: m.Round, Value: st.best.est})
}

func (c *CT) onPropose(ctx model.Context, from model.ProcID, m CTProposeMsg) {
	if m.Round != c.round || !c.waiting || from != c.coord(m.Round) {
		return
	}
	c.est = m.Value
	c.ts = m.Round
	c.waiting = false
	ctx.Send(from, CTAckMsg{Round: m.Round, OK: true})
	if !c.decided {
		c.enterRound(ctx, m.Round+1)
	}
}

func (c *CT) onAck(ctx model.Context, from model.ProcID, m CTAckMsg) {
	if c.coord(m.Round) != c.self || !m.OK {
		return
	}
	st := c.roundState(m.Round)
	if st.ackSeen[from] {
		return
	}
	st.ackSeen[from] = true
	st.ackCount++
	if st.ackCount == c.majority { // decide exactly once per round
		ctx.Broadcast(CTDecideMsg{Value: st.val})
	}
}

func (c *CT) onDecide(ctx model.Context, v string) {
	if c.decided {
		return
	}
	c.decided = true
	c.value = v
	// Reliable broadcast: relay once so every correct process decides even if
	// the origin crashes mid-broadcast.
	ctx.Broadcast(CTDecideMsg{Value: v})
	ctx.Output(model.Decision{Instance: 1, Value: v})
}

// Tick implements model.Automaton: suspicion-driven round changes (phase 3's
// escape hatch — without it a crashed coordinator would block the round).
func (c *CT) Tick(ctx model.Context) {
	if !c.started || c.decided || !c.waiting {
		return
	}
	suspects, ok := ctx.FD().(fd.SuspectValue)
	if !ok {
		return
	}
	co := c.coord(c.round)
	for _, s := range suspects {
		if s == co {
			c.waiting = false
			ctx.Send(co, CTAckMsg{Round: c.round, OK: false})
			c.enterRound(ctx, c.round+1)
			return
		}
	}
}

// Decided reports whether this process has decided, and the value.
func (c *CT) Decided() (string, bool) { return c.value, c.decided }

// Round returns the current round (for tests).
func (c *CT) Round() int { return c.round }
