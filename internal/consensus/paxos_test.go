package consensus

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func broadcastAll(k *sim.Kernel, n, perProc int, t0, gap model.Time) []string {
	var ids []string
	for i := 0; i < perProc; i++ {
		for _, p := range model.Procs(n) {
			id := fmt.Sprintf("p%d#%d", p, i+1)
			ids = append(ids, id)
			k.ScheduleInput(p, t0+model.Time(i)*gap+model.Time(p), model.BroadcastInput{ID: id})
		}
	}
	return ids
}

func TestLogStableLeaderStrongTOB(t *testing.T) {
	fp := model.NewFailurePattern(5)
	det := fd.NewOmegaStable(fp, 1)
	rec := trace.NewRecorder(5)
	k := sim.New(fp, det, LogFactory(MajorityQuorums), sim.Options{Seed: 3})
	k.SetObserver(rec)
	ids := broadcastAll(k, 5, 3, 30, 50)
	k.RunUntil(20000, func(k *sim.Kernel) bool { return rec.AllDelivered(fp.Correct(), ids) })
	settleAt := k.Now()
	k.Run(settleAt + 500)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{SettleTime: settleAt})
	if !rep.OK() {
		t.Fatalf("Paxos log violates TOB: %+v", rep)
	}
	if !rep.StrongTOB() {
		t.Fatalf("Paxos log must satisfy STRONG TOB (τ=0), got τ=%d", rep.Tau)
	}
	for _, p := range fp.Correct() {
		if got := len(rec.FinalSeq(p)); got != 15 {
			t.Errorf("%v delivered %d, want 15", p, got)
		}
	}
}

func TestLogStrongEvenWithLeaderChurn(t *testing.T) {
	// The crucial contrast with ETOB: even while Ω misbehaves, Paxos
	// sequences never diverge — consistency is never violated (τ=0);
	// only liveness may suffer during churn.
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaRotating(fp, 1, 1500, 60)
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, LogFactory(MajorityQuorums), sim.Options{Seed: 17})
	k.SetObserver(rec)
	ids := broadcastAll(k, 3, 3, 30, 80)
	k.RunUntil(40000, func(k *sim.Kernel) bool { return rec.AllDelivered(fp.Correct(), ids) })
	settleAt := k.Now()
	k.Run(settleAt + 500)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{SettleTime: settleAt})
	if !rep.OK() || !rep.StrongTOB() {
		t.Fatalf("Paxos under churn must stay strongly consistent: τ=%d %+v", rep.Tau, rep)
	}
}

func TestLogCrashMinorityStillLive(t *testing.T) {
	fp := model.NewFailurePattern(5)
	fp.Crash(4, 400)
	fp.Crash(5, 500)
	det := fd.NewOmegaEventual(fp, 1, 600)
	rec := trace.NewRecorder(5)
	k := sim.New(fp, det, LogFactory(MajorityQuorums), sim.Options{Seed: 29})
	k.SetObserver(rec)
	ids := broadcastAll(k, 5, 2, 30, 60)
	// Only require messages from correct processes (faulty broadcasters may
	// crash before their submit propagates).
	var mustHave []string
	for _, id := range ids {
		var p int
		var i int
		fmt.Sscanf(id, "p%d#%d", &p, &i)
		if fp.IsCorrect(model.ProcID(p)) {
			mustHave = append(mustHave, id)
		}
	}
	k.RunUntil(40000, func(k *sim.Kernel) bool { return rec.AllDelivered(fp.Correct(), mustHave) })
	settleAt := k.Now()
	k.Run(settleAt + 500)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{InputCutoff: 300, SettleTime: settleAt})
	if !rep.OK() || !rep.StrongTOB() {
		t.Fatalf("minority crash must not break Paxos: τ=%d %+v", rep.Tau, rep)
	}
}

func TestLogBlocksWithoutMajority(t *testing.T) {
	// E5's negative half: 2 correct of 5 — majority quorums unreachable, the
	// log must deliver nothing (it stays safe but not live).
	fp := model.NewFailurePattern(5)
	fp.Crash(3, 0)
	fp.Crash(4, 0)
	fp.Crash(5, 0)
	det := fd.NewOmegaStable(fp, 1)
	rec := trace.NewRecorder(5)
	k := sim.New(fp, det, LogFactory(MajorityQuorums), sim.Options{Seed: 31})
	k.SetObserver(rec)
	broadcastAll(k, 5, 2, 30, 60)
	k.Run(8000)
	for _, p := range fp.Correct() {
		if got := len(rec.FinalSeq(p)); got != 0 {
			t.Fatalf("%v delivered %d messages without a correct majority", p, got)
		}
	}
}

func TestLogSigmaQuorumsLiveWithoutMajority(t *testing.T) {
	// E5's positive half: with the Σ oracle (Ω+Σ detector) the same log is
	// live even with a correct minority — Σ is exactly the missing
	// information, not a majority per se.
	fp := model.NewFailurePattern(5)
	fp.Crash(3, 0)
	fp.Crash(4, 0)
	fp.Crash(5, 0)
	det := fd.NewOmegaSigma(fd.NewOmegaStable(fp, 1), fd.NewSigma(fp, 0))
	rec := trace.NewRecorder(5)
	k := sim.New(fp, det, LogFactory(SigmaQuorums), sim.Options{Seed: 37})
	k.SetObserver(rec)
	ids := []string{"a", "b", "c"}
	for i, id := range ids {
		k.ScheduleInput(1, model.Time(30+20*i), model.BroadcastInput{ID: id})
	}
	k.RunUntil(20000, func(k *sim.Kernel) bool { return rec.AllDelivered(fp.Correct(), ids) })
	settleAt := k.Now()
	k.Run(settleAt + 500)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{SettleTime: settleAt})
	if !rep.OK() || !rep.StrongTOB() {
		t.Fatalf("Σ-quorum log must be live and strong with minority correct: %+v", rep)
	}
	for _, p := range fp.Correct() {
		if got := len(rec.FinalSeq(p)); got != 3 {
			t.Errorf("%v delivered %d, want 3", p, got)
		}
	}
}

func TestLogNoDuplicationAcrossLeaderChange(t *testing.T) {
	// A value accepted under one leader and re-proposed by the next must be
	// delivered exactly once.
	fp := model.NewFailurePattern(3)
	fp.Crash(1, 800) // first leader crashes mid-run
	det := fd.NewOmegaEventual(fp, 2, 1000)
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, LogFactory(MajorityQuorums), sim.Options{Seed: 41})
	k.SetObserver(rec)
	ids := broadcastAll(k, 3, 2, 30, 100)
	_ = ids
	k.Run(20000)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{SettleTime: 15000})
	if !rep.NoDuplication.OK {
		t.Fatalf("duplicate deliveries across leader change: %v", rep.NoDuplication.Violations)
	}
	if !rep.NoCreation.OK {
		t.Fatalf("no-creation: %v", rep.NoCreation.Violations)
	}
	if rep.Tau != 0 {
		t.Fatalf("strong TOB requires τ=0, got %d", rep.Tau)
	}
}

func TestSequenceSingleInstanceAgreement(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 2)
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, SequenceFactory(MajorityQuorums), sim.Options{Seed: 7})
	k.SetObserver(rec)
	for _, p := range model.Procs(3) {
		k.ScheduleInput(p, 10+model.Time(p), model.ProposeInput{Instance: 1, Value: fmt.Sprintf("v%v", p)})
	}
	k.RunUntil(10000, func(k *sim.Kernel) bool { return rec.AllDecided(fp.Correct(), 1) })
	rep := trace.CheckEC(rec, fp.Correct(), 1)
	if !rep.OK() {
		t.Fatalf("consensus violates spec: %+v", rep)
	}
	if rep.AgreementK != 1 {
		t.Fatalf("STRONG consensus must agree from instance 1, got k=%d", rep.AgreementK)
	}
}

func TestSequenceManyInstancesAgreeEverywhere(t *testing.T) {
	// Even with Ω churn, every instance agrees (strong safety) — contrast
	// with ec.Automaton where pre-stabilization instances may disagree.
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaRotating(fp, 1, 700, 40)
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, SequenceFactory(MajorityQuorums), sim.Options{Seed: 19})
	k.SetObserver(rec)
	for l := 1; l <= 4; l++ {
		for _, p := range model.Procs(3) {
			k.ScheduleInput(p, model.Time(10*l)+model.Time(p), model.ProposeInput{Instance: l, Value: fmt.Sprintf("v%v-%d", p, l)})
		}
	}
	k.RunUntil(40000, func(k *sim.Kernel) bool { return rec.AllDecided(fp.Correct(), 4) })
	rep := trace.CheckEC(rec, fp.Correct(), 4)
	if !rep.OK() {
		t.Fatalf("sequence violates consensus: %+v", rep)
	}
	if rep.AgreementK != 1 {
		t.Fatalf("every instance must agree (k=1), got k=%d", rep.AgreementK)
	}
}

func TestSequenceChosenInspection(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	k := sim.New(fp, det, SequenceFactory(MajorityQuorums), sim.Options{Seed: 2})
	k.ScheduleInput(1, 10, model.ProposeInput{Instance: 1, Value: "x"})
	k.Run(4000)
	s := k.Automaton(1).(*Sequence)
	if v, ok := s.Chosen(1); !ok || v != "x" {
		t.Fatalf("Chosen(1) = %q,%v want x,true", v, ok)
	}
	if _, ok := s.Chosen(9); ok {
		t.Fatal("undecided instance must not report chosen")
	}
}

func TestBallotUniquenessAndMonotonicity(t *testing.T) {
	l := NewLog(2, 3, MajorityQuorums)
	b1 := l.nextBallot()
	l.observeBallot(b1 + 100)
	b2 := l.nextBallot()
	if b2 <= b1+100 {
		t.Fatalf("nextBallot %d must exceed everything seen (%d)", b2, b1+100)
	}
	if b1%3 != b2%3 {
		t.Fatal("ballots of one process must share its residue class")
	}
	other := NewLog(3, 3, MajorityQuorums)
	if other.nextBallot()%3 == b1%3 {
		t.Fatal("distinct processes must draw from distinct residue classes")
	}
}
