package consensus

import (
	"maps"
	"slices"

	"repro/internal/fd"
	"repro/internal/model"
)

// Sequence is a sequence of independent single-decree Paxos instances exposed
// through the ECProtocol shape (Propose + model.Decision outputs): consensus
// instance ℓ answers proposeC_ℓ. Unlike eventual consensus, agreement holds
// for EVERY instance (k = 1) — this is the strong primitive that classical
// total order broadcast is built from [Chandra–Toueg 96], used as the
// baseline against the paper's eventual abstractions.
//
// Liveness requires Ω plus quorums: majority quorums (live only in the
// majority environment) or Σ quorums (live in any environment — but then the
// full detector is Ω+Σ, which is exactly the paper's point).
type Sequence struct {
	self model.ProcID
	n    int
	mode QuorumMode

	insts     map[int]*seqInst
	proposals map[int]string // our own pending proposal per instance
	decided   map[int]bool   // instances already responded to
	maxBallot int64
}

// seqInst is the per-instance Paxos state (acceptor + proposer + learner).
type seqInst struct {
	// Acceptor.
	promised int64
	accepted BallotValue // Ballot 0 = none

	// Proposer (only used while we consider ourselves leader).
	ballot   int64
	leading  bool
	promises map[model.ProcID]BallotValue // promise senders → their accepted pair

	// Learner.
	votes  map[voteKey]map[model.ProcID]bool
	chosen string
	done   bool
}

// SeqPrepareMsg is phase 1a for one instance.
type SeqPrepareMsg struct {
	Instance int
	Ballot   int64
}

// SeqPromiseMsg is phase 1b for one instance.
type SeqPromiseMsg struct {
	Instance int
	Ballot   int64
	Accepted BallotValue
}

// SeqAcceptMsg is phase 2a for one instance.
type SeqAcceptMsg struct {
	Instance int
	Ballot   int64
	Value    string
}

// SeqAcceptedMsg is phase 2b for one instance, broadcast to all learners.
type SeqAcceptedMsg struct {
	Instance int
	Ballot   int64
	Value    string
}

var _ model.Automaton = (*Sequence)(nil)

// NewSequence returns the consensus-sequence automaton for process p of n.
func NewSequence(p model.ProcID, n int, mode QuorumMode) *Sequence {
	return &Sequence{
		self:      p,
		n:         n,
		mode:      mode,
		insts:     make(map[int]*seqInst),
		proposals: make(map[int]string),
		decided:   make(map[int]bool),
	}
}

// SequenceFactory adapts NewSequence to model.AutomatonFactory.
func SequenceFactory(mode QuorumMode) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return NewSequence(p, n, mode) }
}

func (s *Sequence) inst(i int) *seqInst {
	in, ok := s.insts[i]
	if !ok {
		in = &seqInst{
			promises: make(map[model.ProcID]BallotValue),
			votes:    make(map[voteKey]map[model.ProcID]bool),
		}
		s.insts[i] = in
	}
	return in
}

// Init implements model.Automaton.
func (s *Sequence) Init(model.Context) {}

// Input implements model.Automaton: model.ProposeInput is proposeC_ℓ(v).
func (s *Sequence) Input(ctx model.Context, in any) {
	pi, ok := in.(model.ProposeInput)
	if !ok {
		return
	}
	s.Propose(ctx, pi.Instance, pi.Value)
}

// Propose registers proposal v for instance ℓ. If the instance is already
// chosen, the response is emitted immediately.
func (s *Sequence) Propose(ctx model.Context, instance int, value string) {
	s.proposals[instance] = value
	if in := s.inst(instance); in.done {
		s.respond(ctx, instance, in.chosen)
	}
}

func (s *Sequence) respond(ctx model.Context, instance int, v string) {
	if s.decided[instance] {
		return
	}
	s.decided[instance] = true
	ctx.Output(model.Decision{Instance: instance, Value: v})
}

// Recv implements model.Automaton.
func (s *Sequence) Recv(ctx model.Context, from model.ProcID, payload any) {
	switch m := payload.(type) {
	case SeqPrepareMsg:
		s.observe(m.Ballot)
		in := s.inst(m.Instance)
		if m.Ballot > in.promised {
			in.promised = m.Ballot
			ctx.Send(from, SeqPromiseMsg{Instance: m.Instance, Ballot: m.Ballot, Accepted: in.accepted})
		}
	case SeqPromiseMsg:
		s.onPromise(ctx, from, m)
	case SeqAcceptMsg:
		s.observe(m.Ballot)
		in := s.inst(m.Instance)
		if m.Ballot >= in.promised {
			in.promised = m.Ballot
			in.accepted = BallotValue{Ballot: m.Ballot, Value: m.Value}
			ctx.Broadcast(SeqAcceptedMsg{Instance: m.Instance, Ballot: m.Ballot, Value: m.Value})
		}
	case SeqAcceptedMsg:
		s.onAccepted(ctx, from, m)
	}
}

// Tick implements model.Automaton: leadership and retransmission, per
// undecided instance we have a proposal for.
func (s *Sequence) Tick(ctx model.Context) {
	leader, ok := fd.LeaderOf(ctx.FD())
	if !ok || leader != s.self {
		for _, in := range s.insts {
			in.ballot = 0
			in.leading = false
		}
		return
	}
	// Sorted instance order: each arm below sends, so iterating the map
	// directly would emit messages (and assign ballots) in Go's randomized
	// order and break seed-stable traces.
	for _, instance := range slices.Sorted(maps.Keys(s.proposals)) {
		v := s.proposals[instance]
		in := s.inst(instance)
		if in.done {
			s.respond(ctx, instance, in.chosen)
			continue
		}
		switch {
		case in.ballot == 0:
			in.ballot = s.nextBallot()
			in.leading = false
			in.promises = make(map[model.ProcID]BallotValue)
			ctx.Broadcast(SeqPrepareMsg{Instance: instance, Ballot: in.ballot})
		case !in.leading:
			ctx.Broadcast(SeqPrepareMsg{Instance: instance, Ballot: in.ballot})
		default:
			ctx.Broadcast(SeqAcceptMsg{Instance: instance, Ballot: in.ballot, Value: s.phase2Value(instance, v)})
		}
	}
}

// phase2Value applies Paxos's rule: adopt the accepted value with the
// highest ballot among the promise quorum, else our own proposal.
func (s *Sequence) phase2Value(instance int, own string) string {
	in := s.inst(instance)
	best := BallotValue{}
	for _, bv := range in.promises {
		if bv.Ballot > best.Ballot {
			best = bv
		}
	}
	if best.Ballot > 0 {
		return best.Value
	}
	return own
}

func (s *Sequence) onPromise(ctx model.Context, from model.ProcID, m SeqPromiseMsg) {
	in := s.inst(m.Instance)
	if m.Ballot != in.ballot || in.ballot == 0 {
		return
	}
	in.promises[from] = m.Accepted
	set := make(map[model.ProcID]bool, len(in.promises))
	for p := range in.promises {
		set[p] = true
	}
	if in.leading || !s.quorum(ctx, set) {
		return
	}
	in.leading = true
	if v, ok := s.proposals[m.Instance]; ok && !in.done {
		ctx.Broadcast(SeqAcceptMsg{Instance: m.Instance, Ballot: in.ballot, Value: s.phase2Value(m.Instance, v)})
	}
}

func (s *Sequence) onAccepted(ctx model.Context, from model.ProcID, m SeqAcceptedMsg) {
	in := s.inst(m.Instance)
	key := voteKey{instance: m.Instance, ballot: m.Ballot, value: m.Value}
	set := in.votes[key]
	if set == nil {
		set = make(map[model.ProcID]bool, s.n)
		in.votes[key] = set
	}
	set[from] = true
	if in.done || !s.quorum(ctx, set) {
		return
	}
	in.done = true
	in.chosen = m.Value
	if _, ok := s.proposals[m.Instance]; ok {
		s.respond(ctx, m.Instance, m.Value)
	}
}

func (s *Sequence) observe(b int64) {
	if b > s.maxBallot {
		s.maxBallot = b
	}
}

func (s *Sequence) nextBallot() int64 {
	round := s.maxBallot/int64(s.n) + 1
	b := round*int64(s.n) + int64(s.self-1)
	s.observe(b)
	return b
}

func (s *Sequence) quorum(ctx model.Context, responders map[model.ProcID]bool) bool {
	switch s.mode {
	case MajorityQuorums:
		return len(responders) > s.n/2
	case SigmaQuorums:
		q, ok := fd.QuorumOf(ctx.FD())
		if !ok || len(q) == 0 {
			return false
		}
		for _, p := range q {
			if !responders[p] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Chosen returns the chosen value of an instance, if decided at this process.
func (s *Sequence) Chosen(instance int) (string, bool) {
	in, ok := s.insts[instance]
	if !ok || !in.done {
		return "", false
	}
	return in.chosen, true
}
