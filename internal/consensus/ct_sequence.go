package consensus

import (
	"maps"
	"slices"

	"repro/internal/model"
)

// CTSequence multiplexes independent Chandra–Toueg instances into the
// ECProtocol shape (Propose + model.Decision outputs), so the textbook
// "total order broadcast = consensus on successive batches" construction
// (internal/tob.FromConsensus) can run over the genuine CT96 algorithm.
// Instance messages are wrapped with their instance number.
type CTSequence struct {
	self model.ProcID
	n    int

	insts map[int]*CT
}

// CTWrap carries one CT instance's message.
type CTWrap struct {
	Instance int
	Inner    any
}

var _ model.Automaton = (*CTSequence)(nil)

// NewCTSequence returns the multiplexer for process p of n.
func NewCTSequence(p model.ProcID, n int) *CTSequence {
	return &CTSequence{self: p, n: n, insts: make(map[int]*CT)}
}

// CTSequenceFactory adapts NewCTSequence to model.AutomatonFactory.
func CTSequenceFactory() model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return NewCTSequence(p, n) }
}

func (s *CTSequence) inst(i int) *CT {
	c, ok := s.insts[i]
	if !ok {
		c = NewCT(s.self, s.n)
		s.insts[i] = c
	}
	return c
}

// ctCtx namespaces one instance's traffic and re-tags its decision output.
type ctCtx struct {
	model.Context
	instance int
}

func (c ctCtx) Send(to model.ProcID, payload any) {
	c.Context.Send(to, CTWrap{Instance: c.instance, Inner: payload})
}

func (c ctCtx) Broadcast(payload any) {
	c.Context.Broadcast(CTWrap{Instance: c.instance, Inner: payload})
}

func (c ctCtx) Output(v any) {
	if d, ok := v.(model.Decision); ok {
		d.Instance = c.instance
		c.Context.Output(d)
		return
	}
	c.Context.Output(v)
}

// Init implements model.Automaton.
func (s *CTSequence) Init(model.Context) {}

// Input implements model.Automaton.
func (s *CTSequence) Input(ctx model.Context, in any) {
	pi, ok := in.(model.ProposeInput)
	if !ok {
		return
	}
	s.Propose(ctx, pi.Instance, pi.Value)
}

// Propose implements the ECProtocol shape: proposeC_ℓ(v) on instance ℓ.
func (s *CTSequence) Propose(ctx model.Context, instance int, value string) {
	s.inst(instance).Propose(ctCtx{ctx, instance}, 1, value)
}

// Recv implements model.Automaton.
func (s *CTSequence) Recv(ctx model.Context, from model.ProcID, payload any) {
	w, ok := payload.(CTWrap)
	if !ok {
		return
	}
	s.inst(w.Instance).Recv(ctCtx{ctx, w.Instance}, from, w.Inner)
}

// Tick implements model.Automaton: tick every live instance, in instance
// order — an instance Tick can send messages, so iterating the map directly
// would emit them in Go's randomized order and break seed-stable traces.
func (s *CTSequence) Tick(ctx model.Context) {
	for _, i := range slices.Sorted(maps.Keys(s.insts)) {
		s.insts[i].Tick(ctCtx{ctx, i})
	}
}
