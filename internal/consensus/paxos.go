// Package consensus implements the strong-consistency baseline the paper
// compares against: a replicated log built from Paxos-style consensus
// instances, driven by Ω for liveness [Lamport 98; CHT96].
//
// Two quorum regimes are supported, capturing the paper's Σ discussion:
//
//   - Majority quorums: the classical setting — safe everywhere, live only
//     while a majority of processes is correct (Ω alone suffices as the
//     failure detector in the majority environment).
//   - Σ quorums: phase completion waits for a full quorum currently output
//     by the Σ failure detector (the detector value must be an
//     fd.OmegaSigmaValue). With the Σ oracle this stays live in ANY
//     environment — exhibiting exactly the information gap the paper
//     identifies between consistency and eventual consistency.
//
// The log delivers an invocation after three communication steps in the
// steady state (submit → accept → accepted), matching the lower bound for
// strong consistency [Lamport, Distributed Computing 2006] that the paper
// contrasts with ETOB's two steps.
package consensus

import (
	"maps"
	"slices"
	"sort"

	"repro/internal/fd"
	"repro/internal/model"
)

// QuorumMode selects how phase completion is decided.
type QuorumMode int

// Supported quorum regimes.
const (
	// MajorityQuorums requires >n/2 responders (classical Paxos).
	MajorityQuorums QuorumMode = iota + 1
	// SigmaQuorums requires the responders to include some quorum currently
	// output by Σ at this process.
	SigmaQuorums
)

// SubmitMsg asks the current leader to order a message ID.
type SubmitMsg struct {
	ID string
}

// PrepareMsg is Paxos phase-1a.
type PrepareMsg struct {
	Ballot int64
}

// BallotValue is an accepted (ballot, value) pair for one instance.
type BallotValue struct {
	Ballot int64
	Value  string
}

// PromiseMsg is Paxos phase-1b: the acceptor's accepted values per instance.
type PromiseMsg struct {
	Ballot   int64
	Accepted map[int]BallotValue
}

// AcceptMsg is Paxos phase-2a for one log instance.
type AcceptMsg struct {
	Ballot   int64
	Instance int
	Value    string
}

// AcceptedMsg is Paxos phase-2b, broadcast to all processes (learners).
type AcceptedMsg struct {
	Ballot   int64
	Instance int
	Value    string
}

type voteKey struct {
	instance int
	ballot   int64
	value    string
}

// voteSet counts distinct voters at insert time: the membership map dedups
// retransmitted AcceptedMsgs and serves Σ-quorum inclusion checks, while the
// counter answers the majority test in O(1) per delivery — no rescan of the
// collected set, which is what hurts at n in the hundreds.
type voteSet struct {
	seen  map[model.ProcID]bool
	count int
}

// add records a voter, returning true when it was new.
func (v *voteSet) add(p model.ProcID) bool {
	if v.seen[p] {
		return false
	}
	v.seen[p] = true
	v.count++
	return true
}

// Log is a totally ordered replicated log: the strong TOB baseline.
// Broadcast inputs (model.BroadcastInput) are submitted to the leader, chosen
// via Paxos instances, and delivered in instance order; the evolving d_i is
// emitted as model.SeqSnapshot outputs.
type Log struct {
	self model.ProcID
	n    int
	mode QuorumMode

	// Acceptor state.
	promised int64
	accepted map[int]BallotValue

	// Proposer state.
	ballot    int64           // our current ballot (0 = none)
	leading   bool            // phase 1 complete for our ballot
	promises  voteSet         // promise senders for our ballot
	proposals map[int]string  // instance → value proposed under our ballot
	proposed  map[string]bool // IDs assigned to an instance by us
	nextInst  int             // next free instance
	maxBallot int64           // highest ballot seen anywhere

	// Pending client messages (arrival order, deduplicated).
	pending    []string
	pendingSet map[string]bool

	// Learner state.
	votes     map[voteKey]*voteSet
	chosen    map[int]string
	chosenIDs map[string]bool
	delivered int      // length of the delivered prefix (consecutive instances)
	d         []string // output sequence
	inD       map[string]bool
}

var _ model.Automaton = (*Log)(nil)

// NewLog returns the Paxos log automaton for process p of n.
func NewLog(p model.ProcID, n int, mode QuorumMode) *Log {
	return &Log{
		self:       p,
		n:          n,
		mode:       mode,
		accepted:   make(map[int]BallotValue),
		promises:   voteSet{seen: make(map[model.ProcID]bool)},
		proposals:  make(map[int]string),
		proposed:   make(map[string]bool),
		nextInst:   1,
		pendingSet: make(map[string]bool),
		votes:      make(map[voteKey]*voteSet),
		chosen:     make(map[int]string),
		chosenIDs:  make(map[string]bool),
		inD:        make(map[string]bool),
	}
}

// LogFactory adapts NewLog to model.AutomatonFactory.
func LogFactory(mode QuorumMode) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return NewLog(p, n, mode) }
}

// Init implements model.Automaton.
func (l *Log) Init(model.Context) {}

// Input implements model.Automaton: model.BroadcastInput is broadcastTOB(m).
func (l *Log) Input(ctx model.Context, in any) {
	b, ok := in.(model.BroadcastInput)
	if !ok {
		return
	}
	ctx.Broadcast(SubmitMsg{ID: b.ID})
}

// Recv implements model.Automaton.
func (l *Log) Recv(ctx model.Context, from model.ProcID, payload any) {
	switch m := payload.(type) {
	case SubmitMsg:
		l.enqueue(m.ID)
	case PrepareMsg:
		l.observeBallot(m.Ballot)
		if m.Ballot > l.promised {
			l.promised = m.Ballot
			acc := make(map[int]BallotValue, len(l.accepted))
			for i, bv := range l.accepted {
				acc[i] = bv
			}
			ctx.Send(from, PromiseMsg{Ballot: m.Ballot, Accepted: acc})
		}
	case PromiseMsg:
		l.onPromise(ctx, from, m)
	case AcceptMsg:
		l.observeBallot(m.Ballot)
		if m.Ballot >= l.promised {
			l.promised = m.Ballot
			l.accepted[m.Instance] = BallotValue{Ballot: m.Ballot, Value: m.Value}
			ctx.Broadcast(AcceptedMsg{Ballot: m.Ballot, Instance: m.Instance, Value: m.Value})
		}
	case AcceptedMsg:
		l.onAccepted(ctx, from, m)
	}
}

// Tick implements model.Automaton: leadership management and retransmission.
func (l *Log) Tick(ctx model.Context) {
	leader, ok := fd.LeaderOf(ctx.FD())
	if !ok || leader != l.self {
		// Abdicate: stop proposing (acceptor/learner roles continue).
		l.ballot = 0
		l.leading = false
		return
	}
	if l.ballot == 0 {
		// Start phase 1 with a fresh ballot above everything seen.
		l.ballot = l.nextBallot()
		l.leading = false
		l.promises = voteSet{seen: make(map[model.ProcID]bool)}
		ctx.Broadcast(PrepareMsg{Ballot: l.ballot})
		return
	}
	if !l.leading {
		ctx.Broadcast(PrepareMsg{Ballot: l.ballot}) // retransmit phase 1
		return
	}
	l.proposePending(ctx)
	// Retransmit phase 2 for instances not yet chosen.
	l.broadcastOpenProposals(ctx)
}

// broadcastOpenProposals re-sends AcceptMsg for every proposed-but-unchosen
// instance, in instance order: iterating l.proposals directly would emit
// messages in Go's randomized map order and break seed-stable traces.
func (l *Log) broadcastOpenProposals(ctx model.Context) {
	for _, inst := range slices.Sorted(maps.Keys(l.proposals)) {
		if _, done := l.chosen[inst]; !done {
			ctx.Broadcast(AcceptMsg{Ballot: l.ballot, Instance: inst, Value: l.proposals[inst]})
		}
	}
}

func (l *Log) enqueue(id string) {
	if l.pendingSet[id] || l.chosenIDs[id] {
		return
	}
	l.pendingSet[id] = true
	l.pending = append(l.pending, id)
}

func (l *Log) observeBallot(b int64) {
	if b > l.maxBallot {
		l.maxBallot = b
	}
}

// nextBallot returns a ballot above every ballot seen, unique to this
// process: ballots are round*n + (self-1).
func (l *Log) nextBallot() int64 {
	round := l.maxBallot/int64(l.n) + 1
	b := round*int64(l.n) + int64(l.self-1)
	l.observeBallot(b)
	return b
}

func (l *Log) onPromise(ctx model.Context, from model.ProcID, m PromiseMsg) {
	if m.Ballot != l.ballot || l.ballot == 0 || l.leading {
		if l.leading && m.Ballot == l.ballot {
			return // late promise, already leading
		}
		if m.Ballot != l.ballot {
			return
		}
	}
	l.promises.add(from)
	// Merge accepted values: for each instance keep the highest-ballot value.
	for inst, bv := range m.Accepted {
		cur, ok := l.accepted[inst]
		if !ok || bv.Ballot > cur.Ballot {
			l.accepted[inst] = bv
		}
	}
	if !l.quorumReached(ctx, &l.promises) {
		return
	}
	l.leading = true
	// Re-propose every accepted-but-unchosen instance under our ballot
	// (Paxos's "value with the highest ballot" rule, applied per instance).
	// Sorted so the send order below is seed-stable, not map order.
	for _, inst := range slices.Sorted(maps.Keys(l.accepted)) {
		if _, done := l.chosen[inst]; done {
			continue
		}
		bv := l.accepted[inst]
		l.proposals[inst] = bv.Value
		l.proposed[bv.Value] = true
		if inst >= l.nextInst {
			l.nextInst = inst + 1
		}
	}
	for inst := range l.chosen {
		if inst >= l.nextInst {
			l.nextInst = inst + 1
		}
	}
	l.proposePending(ctx)
	l.broadcastOpenProposals(ctx)
}

// proposePending assigns fresh instances to pending client IDs.
func (l *Log) proposePending(ctx model.Context) {
	for _, id := range l.pending {
		if l.proposed[id] || l.chosenIDs[id] {
			continue
		}
		inst := l.nextInst
		l.nextInst++
		l.proposals[inst] = id
		l.proposed[id] = true
		ctx.Broadcast(AcceptMsg{Ballot: l.ballot, Instance: inst, Value: id})
	}
}

func (l *Log) onAccepted(ctx model.Context, from model.ProcID, m AcceptedMsg) {
	key := voteKey{instance: m.Instance, ballot: m.Ballot, value: m.Value}
	set := l.votes[key]
	if set == nil {
		set = &voteSet{seen: make(map[model.ProcID]bool, l.n/2+1)}
		l.votes[key] = set
	}
	set.add(from)
	if _, done := l.chosen[m.Instance]; done {
		return
	}
	if !l.quorumReached(ctx, set) {
		return
	}
	l.chosen[m.Instance] = m.Value
	l.chosenIDs[m.Value] = true
	l.deliverPrefix(ctx)
}

// deliverPrefix extends d with consecutively chosen instances. A value chosen
// in two instances (possible across leader changes) is delivered once.
func (l *Log) deliverPrefix(ctx model.Context) {
	changed := false
	for {
		v, ok := l.chosen[l.delivered+1]
		if !ok {
			break
		}
		l.delivered++
		if !l.inD[v] {
			l.inD[v] = true
			l.d = append(l.d, v)
			changed = true
		}
	}
	if changed {
		ctx.Output(model.SeqSnapshot{Seq: append([]string(nil), l.d...)})
	}
}

// quorumReached reports whether the responder set completes a phase under
// the configured quorum mode. The majority test reads the insert-time
// counter (O(1)); the Σ test must re-check the detector's CURRENT quorum
// against the membership set on every delivery — Σ's output is time-varying,
// and liveness in minority environments depends on a later, smaller quorum
// being able to complete a phase with responders gathered earlier.
func (l *Log) quorumReached(ctx model.Context, responders *voteSet) bool {
	switch l.mode {
	case MajorityQuorums:
		return responders.count > l.n/2
	case SigmaQuorums:
		q, ok := fd.QuorumOf(ctx.FD())
		if !ok {
			return false
		}
		if len(q) == 0 {
			return false
		}
		for _, p := range q {
			if !responders.seen[p] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Delivered returns a copy of the current output sequence d_i.
func (l *Log) Delivered() []string { return append([]string(nil), l.d...) }

// ChosenInstances returns the chosen instance numbers in sorted order.
func (l *Log) ChosenInstances() []int {
	out := make([]int, 0, len(l.chosen))
	for i := range l.chosen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Leading reports whether this process currently leads a completed phase 1.
func (l *Log) Leading() bool { return l.leading }
