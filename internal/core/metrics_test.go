package core

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/etob"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/retransmit"
	"repro/internal/sim"
	"repro/internal/sim/adversary"
)

// lossyBatchedService builds the deepest sim stack — retransmission over a
// lossy network, ETOB batching on — so every layer CollectStackMetrics knows
// about is present and exercised.
func lossyBatchedService(seed int64) *SimService {
	o := simSeed(seed)
	o.Network = func() sim.NetworkModel { return &adversary.Lossy{Drop: 0.25, Burst: 3} }
	return NewSimService(Config{
		N:          3,
		Retransmit: true,
		Batch:      etob.BatchOptions{MaxBatch: 4, MaxLinger: 2},
		Sim:        o,
	})
}

// TestRegisterSimMetricsMatchesStack pins that a sim-collected registry (a)
// exposes the FULL parity set obs.StackNames plus the kernel counters, and
// (b) reports the same numbers the stack's own accessors do — the ground
// truth the live /metrics cross-check in internal/node relies on.
func TestRegisterSimMetricsMatchesStack(t *testing.T) {
	svc := lossyBatchedService(41)
	reg := obs.NewRegistry()
	RegisterSimMetrics(reg, svc.Kernel(), 1)
	for i := 0; i < 8; i++ {
		svc.Submit(model.ProcID(1+i%3), model.Time(30+7*i), fmt.Sprintf("set k%d v%d", i, i))
	}
	if !svc.RunUntilConverged(60000) {
		t.Fatal("lossy batched service did not converge")
	}
	reg.Collect()

	names := make(map[string]bool)
	for _, n := range reg.Names() {
		names[n] = true
	}
	for _, want := range obs.StackNames() {
		if !names[want] {
			t.Errorf("sim registry missing stack metric %s", want)
		}
	}
	for _, want := range []string{obs.MetricKernelSteps, obs.MetricKernelSent, obs.MetricKernelDropped, obs.MetricKernelLost} {
		if !names[want] {
			t.Errorf("sim registry missing kernel metric %s", want)
		}
	}

	a := svc.Kernel().Automaton(1)
	w, ok := a.(*retransmit.Automaton)
	if !ok {
		t.Fatalf("stack root is %T, want *retransmit.Automaton", a)
	}
	rep := UnwrapReplica(a)
	bs := rep.Inner().(interface{ BatchStats() etob.BatchStats }).BatchStats()
	checks := []struct {
		name string
		want int64
	}{
		{obs.MetricRetransmitResends, w.Resends()},
		{obs.MetricRetransmitDuplicates, w.Duplicates()},
		{obs.MetricRetransmitAbandoned, w.Abandoned()},
		{obs.MetricRetransmitPending, int64(w.PendingEnvelopes())},
		{obs.MetricSMRApplied, int64(rep.AppliedCount())},
		{obs.MetricSMRRebuilds, int64(rep.Rebuilds())},
		{obs.MetricBatchFlushes, bs.Flushes},
		{obs.MetricBatchFullFlushes, bs.FullFlushes},
		{obs.MetricBatchLingerFlushes, bs.LingerFlushes},
		{obs.MetricBatchOps, bs.Ops},
		{obs.MetricKernelSteps, svc.Kernel().Steps()},
		{obs.MetricKernelSent, svc.Kernel().MessagesSent()},
		{obs.MetricKernelLost, svc.Kernel().MessagesLost()},
	}
	for _, c := range checks {
		if got := reg.Value(c.name); got != c.want {
			t.Errorf("%s = %d, want %d (stack accessor)", c.name, got, c.want)
		}
	}
	// The run must have actually exercised the interesting counters, or the
	// equalities above are vacuous.
	if reg.Value(obs.MetricRetransmitResends) == 0 {
		t.Error("lossy run produced no resends; parity check is vacuous")
	}
	if reg.Value(obs.MetricSMRApplied) != 8 {
		t.Errorf("smr_applied_total = %d, want 8", reg.Value(obs.MetricSMRApplied))
	}
	if reg.Value(obs.MetricBatchFlushes) == 0 {
		t.Error("batched run produced no batch flushes")
	}
	if bs.FullFlushes+bs.LingerFlushes != bs.Flushes {
		t.Errorf("flush trigger split %d+%d != total %d", bs.FullFlushes, bs.LingerFlushes, bs.Flushes)
	}
}

// TestCollectStackMetricsBareStack pins the missing-layer contract: a stack
// built without retransmission or batching still registers the full parity
// set, with zeros where the layers are absent — a scrape never serves a
// partial name set.
func TestCollectStackMetricsBareStack(t *testing.T) {
	svc := NewSimService(Config{N: 2, Sim: simSeed(3)})
	svc.Submit(1, 30, "set a 1")
	if !svc.RunUntilConverged(10000) {
		t.Fatal("bare service did not converge")
	}
	reg := obs.NewRegistry()
	CollectStackMetrics(reg, svc.Kernel().Automaton(1))
	names := make(map[string]bool)
	for _, n := range reg.Names() {
		names[n] = true
	}
	for _, want := range obs.StackNames() {
		if !names[want] {
			t.Errorf("bare-stack registry missing %s", want)
		}
	}
	if got := reg.Value(obs.MetricRetransmitResends); got != 0 {
		t.Errorf("unwrapped stack reports resends = %d, want 0", got)
	}
	if got := reg.Value(obs.MetricBatchFlushes); got != 0 {
		t.Errorf("unbatched stack reports batch flushes = %d, want 0", got)
	}
	if got := reg.Value(obs.MetricSMRApplied); got != 1 {
		t.Errorf("smr_applied_total = %d, want 1", got)
	}
}

// benchServiceRun is one fixed replicated-service workload: 6 commands over
// 3 replicas, run to a fixed horizon. The metrics-on variant adds exactly
// what a live scrape adds — registry construction, registration, one
// Collect, one exposition write — so the On/Off delta IS the observability
// overhead scripts/metrics_overhead.sh bounds at 5%.
func benchServiceRun(b *testing.B, metrics bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc := NewSimService(Config{
			N:          3,
			Retransmit: true,
			Batch:      etob.BatchOptions{MaxBatch: 4, MaxLinger: 2},
			Sim:        simSeed(17),
		})
		var reg *obs.Registry
		if metrics {
			reg = obs.NewRegistry()
			RegisterSimMetrics(reg, svc.Kernel(), 1)
		}
		for j := 0; j < 6; j++ {
			svc.Submit(model.ProcID(1+j%3), model.Time(30+5*j), fmt.Sprintf("set k%d v", j))
		}
		svc.Run(4000)
		if svc.Kernel().Steps() == 0 {
			b.Fatal("run did nothing")
		}
		if metrics {
			if err := reg.WritePrometheus(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkKernelMetricsOff(b *testing.B) { benchServiceRun(b, false) }
func BenchmarkKernelMetricsOn(b *testing.B)  { benchServiceRun(b, true) }
