package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/smr"
)

func TestConsistencyString(t *testing.T) {
	cases := map[Consistency]string{
		Eventual: "eventual", Strong: "strong", StrongSigma: "strong+sigma",
		Consistency(42): "Consistency(42)",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestOmegaSpecDefaults(t *testing.T) {
	fp := model.NewFailurePattern(3)
	fp.Crash(1, 0)
	o := OmegaSpec{}.Build(fp)
	if o.Leader() != 2 {
		t.Errorf("default leader = %v, want smallest correct p2", o.Leader())
	}
	for _, pre := range []PreBehavior{PreStable, PreSelfTrust, PreSplit, PreRotating} {
		spec := OmegaSpec{Pre: pre, Stabilization: 100}
		if got := spec.Build(fp).Leader(); got != 2 {
			t.Errorf("pre=%d leader = %v", pre, got)
		}
	}
}

func TestSimServiceEventualConverges(t *testing.T) {
	svc := NewSimService(Config{
		N:     4,
		Omega: OmegaSpec{Pre: PreSplit, Stabilization: 1200},
		Sim:   simSeed(7),
	})
	for i, p := range model.Procs(4) {
		svc.Submit(p, model.Time(30+i), fmt.Sprintf("set k%d v%d", i, i))
	}
	if !svc.RunUntilConverged(20000) {
		t.Fatal("eventual service did not converge")
	}
	ref := svc.Snapshot(1)
	for _, p := range model.Procs(4) {
		if got := svc.Snapshot(p); got != ref {
			t.Errorf("%v snapshot %q != %q", p, got, ref)
		}
	}
	rep := svc.Report()
	if !rep.NoCreation.OK || !rep.NoDuplication.OK || !rep.CausalOrder.OK {
		t.Fatalf("safety: %+v", rep)
	}
}

func TestSimServiceStrongNeverDiverges(t *testing.T) {
	svc := NewSimService(Config{
		N:           3,
		Consistency: Strong,
		Machine:     smr.CounterFactory,
		Omega:       OmegaSpec{Pre: PreRotating, Stabilization: 600},
		Sim:         simSeed(9),
	})
	for _, p := range model.Procs(3) {
		svc.Submit(p, 40, "inc total")
	}
	if !svc.RunUntilConverged(30000) {
		t.Fatal("strong service did not converge")
	}
	for _, p := range model.Procs(3) {
		if svc.Rebuilds(p) != 0 {
			t.Errorf("%v rebuilt under strong consistency", p)
		}
		if got := svc.Snapshot(p); got != "total=3" {
			t.Errorf("%v snapshot = %q, want total=3", p, got)
		}
	}
	if rep := svc.Report(); rep.Tau != 0 {
		t.Errorf("strong service τ = %d, want 0", rep.Tau)
	}
}

func TestSimServiceSigmaWorksWithMinorityCorrect(t *testing.T) {
	fp := model.NewFailurePattern(5)
	fp.Crash(3, 0)
	fp.Crash(4, 0)
	fp.Crash(5, 0)
	svc := NewSimService(Config{
		N:           5,
		Consistency: StrongSigma,
		Failures:    fp,
		Sim:         simSeed(11),
	})
	svc.Submit(1, 30, "set a 1")
	svc.Submit(2, 40, "set b 2")
	if !svc.RunUntilConverged(20000) {
		t.Fatal("Ω+Σ service must progress with a correct minority")
	}
	if got := svc.Snapshot(1); got != "a=1,b=2" {
		t.Errorf("snapshot = %q", got)
	}
}

func TestSimServiceStrongBlocksWithMinorityCorrect(t *testing.T) {
	fp := model.NewFailurePattern(5)
	fp.Crash(3, 0)
	fp.Crash(4, 0)
	fp.Crash(5, 0)
	svc := NewSimService(Config{N: 5, Consistency: Strong, Failures: fp, Sim: simSeed(13)})
	svc.Submit(1, 30, "set a 1")
	svc.Run(8000)
	if got := svc.Snapshot(1); got != "" {
		t.Fatalf("majority-quorum service made progress without a majority: %q", got)
	}
}

func TestLiveServiceQuickstart(t *testing.T) {
	svc := NewLiveService(3, Eventual, nil, liveOpts())
	defer svc.Stop()
	svc.Submit(1, "set color green")
	svc.Submit(2, "set shape circle")
	deadline := time.Now().Add(5 * time.Second)
	want := "color=green,shape=circle"
	for time.Now().Before(deadline) {
		if svc.Snapshot(1) == want && svc.Snapshot(3) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("live service did not converge: %q / %q", svc.Snapshot(1), svc.Snapshot(3))
}

func TestLiveServiceRejectsSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StrongSigma must be rejected live (Σ has no implementation)")
		}
	}()
	NewLiveService(3, StrongSigma, nil, liveOpts())
}

func TestNewSimServicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("N=1 must panic")
		}
	}()
	NewSimService(Config{N: 1})
}

func simSeed(seed int64) (o sim.Options) {
	o.Seed = seed
	return o
}

func liveOpts() (o runtime.Options) { return o }
