// Package core is the top-level API of this reproduction: an eventually
// consistent replicated service — the object the paper proves needs exactly
// Ω — plus the strongly consistent variant (needing Ω+Σ or a correct
// majority) for comparison.
//
// A Service replicates a deterministic state machine over n processes:
//
//   - Eventual: Algorithm 5 (ETOB from Ω). Works in ANY environment; replicas
//     may diverge while Ω misbehaves and converge after it stabilizes;
//     commands commit in 2 communication steps under a stable leader.
//   - Strong: a Paxos log (majority quorums). Never diverges, needs a correct
//     majority, commits in 3 communication steps.
//   - StrongSigma: the Paxos log with Σ quorums (detector Ω+Σ). Never
//     diverges and works in any environment — Σ being exactly the extra
//     information, which is the paper's headline gap.
//
// Services run on the deterministic simulator (NewSimService) for
// experiments and property checking, or live on goroutines with a heartbeat
// Ω (NewLiveService) for the examples.
package core

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/gossip"
	"repro/internal/model"
	"repro/internal/retransmit"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/smr"
	"repro/internal/trace"
)

// Consistency selects the replication protocol.
type Consistency int

// Supported consistency levels.
const (
	// Eventual is the paper's ETOB-based replication (Ω only).
	Eventual Consistency = iota + 1
	// Strong is Paxos with majority quorums (Ω + correct majority).
	Strong
	// StrongSigma is Paxos with Σ quorums (Ω+Σ, any environment).
	StrongSigma
)

// String implements fmt.Stringer.
func (c Consistency) String() string {
	switch c {
	case Eventual:
		return "eventual"
	case Strong:
		return "strong"
	case StrongSigma:
		return "strong+sigma"
	default:
		return fmt.Sprintf("Consistency(%d)", int(c))
	}
}

// PreBehavior is Ω's adversarial output before stabilization.
type PreBehavior int

// Pre-stabilization behaviors of the Ω oracle.
const (
	// PreStable: the leader is stable from time 0.
	PreStable PreBehavior = iota + 1
	// PreSelfTrust: every process trusts itself (maximal divergence).
	PreSelfTrust
	// PreSplit: two leader camps (split brain).
	PreSplit
	// PreRotating: leadership churns through Π.
	PreRotating
)

// OmegaSpec describes the Ω history of a simulated run.
type OmegaSpec struct {
	// Leader is the eventual leader; NoProc means the smallest correct process.
	Leader model.ProcID
	// Stabilization is τ_Ω, the time Ω stabilizes (ignored for PreStable).
	Stabilization model.Time
	// Pre selects the pre-stabilization behavior (default PreStable).
	Pre PreBehavior
	// RotationPeriod applies to PreRotating (default 50).
	RotationPeriod model.Time
	// SplitA and SplitB are the camp leaders for PreSplit (defaults: the two
	// smallest correct processes, assigned so that each camp contains its
	// own leader).
	SplitA, SplitB model.ProcID
}

// Build realizes the spec against a failure pattern.
func (s OmegaSpec) Build(fp *model.FailurePattern) *fd.Omega {
	leader := s.Leader
	if leader == model.NoProc {
		leader = fp.MinCorrect()
	}
	switch s.Pre {
	case PreSelfTrust:
		return fd.NewOmegaEventual(fp, leader, s.Stabilization)
	case PreSplit:
		a, b := s.SplitA, s.SplitB
		if a == model.NoProc || b == model.NoProc {
			// Even camp's leader must be even, odd camp's odd, so both camps
			// self-sustain.
			a, b = 2, 1
		}
		return fd.NewOmegaSplit(fp, a, b, leader, s.Stabilization)
	case PreRotating:
		period := s.RotationPeriod
		if period <= 0 {
			period = 50
		}
		return fd.NewOmegaRotating(fp, leader, s.Stabilization, period)
	default:
		return fd.NewOmegaStable(fp, leader)
	}
}

// ReplicaStack builds the full automaton stack of ONE service replica for a
// consistency level: the broadcast protocol (ETOB for Eventual, a Paxos log
// for the strong variants) driving the replicated machine (nil = KV store),
// optionally wrapped in the retransmission layer (nil rt = bare). This is the
// single definition of "a replica" shared by every way of running one — the
// deterministic kernel (NewSimService), the in-process live cluster
// (NewLiveService), and the deployable node (internal/node) all feed the SAME
// factory to their runtime, which is what makes cross-runtime conformance
// (runtime.Replay) meaningful.
//
// Note the stack does not choose the failure detector: StrongSigma replicas
// additionally require a Σ oracle next to Ω, which only the simulator can
// provide (see NewLiveService).
func ReplicaStack(c Consistency, machine smr.MachineFactory, rt *retransmit.Options) model.AutomatonFactory {
	return ReplicaStackWith(c, StackOptions{Machine: machine, Retransmit: rt})
}

// StackOptions carries the optional layers of a replica stack (see
// ReplicaStackWith).
type StackOptions struct {
	// Machine is the replicated state machine (nil = KV store).
	Machine smr.MachineFactory
	// Retransmit wraps the stack in the retransmission layer (nil = bare).
	Retransmit *retransmit.Options
	// Batch configures ETOB's op-coalescing layer (Eventual only; the
	// strong variants' Paxos log has no batching layer and ignores it). The
	// zero value — batching disabled — keeps the stack bit-for-bit identical
	// to the historical one.
	Batch etob.BatchOptions
	// Gossip switches ETOB to epidemic dissemination: each flush goes to a
	// seeded O(log n) peer sample instead of n−1 sends, with digest-based
	// anti-entropy as the repair channel (Eventual only). The zero value —
	// gossip disabled — keeps the stack bit-for-bit identical.
	Gossip gossip.Options
}

// ReplicaStackWith is ReplicaStack with the optional layers spelled out —
// notably ETOB's batching layer, which amortizes one update broadcast over k
// queued commands (internal/etob's BatchOptions).
func ReplicaStackWith(c Consistency, o StackOptions) model.AutomatonFactory {
	if o.Machine == nil {
		o.Machine = smr.KVFactory
	}
	var broadcast model.AutomatonFactory
	switch c {
	case Eventual, 0:
		switch {
		case o.Gossip.Enabled():
			broadcast = etob.GossipFactory(o.Batch, o.Gossip)
		case o.Batch.Enabled():
			broadcast = etob.BatchedFactory(o.Batch)
		default:
			broadcast = etob.Factory()
		}
	case Strong:
		broadcast = consensus.LogFactory(consensus.MajorityQuorums)
	case StrongSigma:
		broadcast = consensus.LogFactory(consensus.SigmaQuorums)
	default:
		panic(fmt.Sprintf("core: unknown consistency %v", c))
	}
	factory := smr.ReplicaFactory(broadcast, o.Machine)
	if o.Retransmit != nil {
		factory = retransmit.Wrap(factory, *o.Retransmit)
	}
	return factory
}

// UnwrapReplica returns the state-machine replica inside a stack automaton,
// peeling the retransmission wrapper when present.
func UnwrapReplica(a model.Automaton) *smr.Replica {
	if w, ok := a.(*retransmit.Automaton); ok {
		a = w.Inner()
	}
	return a.(*smr.Replica)
}

// Config configures a simulated service.
type Config struct {
	// N is the number of replicas (>= 2).
	N int
	// Consistency selects the protocol (default Eventual).
	Consistency Consistency
	// Machine is the replicated state machine (default KV store).
	Machine smr.MachineFactory
	// Failures is the failure pattern (default failure-free).
	Failures *model.FailurePattern
	// Omega is the Ω history spec (default stable smallest-correct leader).
	Omega OmegaSpec
	// Sim tunes the kernel (Seed, delays, tick interval, network model,
	// fault schedule).
	Sim sim.Options
	// Retransmit wraps every replica in the retransmission layer
	// (internal/retransmit.Wrap). Required for environments that genuinely
	// lose messages — lossy networks (internal/sim/adversary.Lossy) and
	// churn (Sim.Faults with restarts) — where the paper's eventual-delivery
	// assumption must be restored end-to-end for convergence to hold.
	Retransmit bool
	// Batch configures ETOB's op-coalescing layer (Eventual only); the zero
	// value keeps the historical unbatched behavior.
	Batch etob.BatchOptions
}

// SimService is a replicated service running on the deterministic simulator.
type SimService struct {
	cfg    Config
	kernel *sim.Kernel
	rec    *trace.Recorder
	det    fd.Detector
}

// NewSimService builds a simulated service.
func NewSimService(cfg Config) *SimService {
	if cfg.N < 2 {
		panic("core: need at least 2 replicas")
	}
	if cfg.Consistency == 0 {
		cfg.Consistency = Eventual
	}
	if cfg.Machine == nil {
		cfg.Machine = smr.KVFactory
	}
	if cfg.Failures == nil {
		cfg.Failures = model.NewFailurePattern(cfg.N)
	}
	omega := cfg.Omega.Build(cfg.Failures)
	var det fd.Detector = omega
	if cfg.Consistency == StrongSigma {
		det = fd.NewOmegaSigma(omega, fd.NewSigma(cfg.Failures, cfg.Omega.Stabilization))
	}
	var rt *retransmit.Options
	if cfg.Retransmit {
		rt = &retransmit.Options{Seed: cfg.Sim.Seed}
	}
	rec := trace.NewRecorder(cfg.N)
	factory := ReplicaStackWith(cfg.Consistency, StackOptions{Machine: cfg.Machine, Retransmit: rt, Batch: cfg.Batch})
	k := sim.New(cfg.Failures, det, factory, cfg.Sim)
	k.SetObserver(rec)
	return &SimService{cfg: cfg, kernel: k, rec: rec, det: det}
}

// Submit schedules command cmd at replica p at time at.
func (s *SimService) Submit(p model.ProcID, at model.Time, cmd string) {
	s.kernel.ScheduleInput(p, at, smr.Command{Cmd: cmd})
}

// Run advances the simulation to the given time.
func (s *SimService) Run(until model.Time) { s.kernel.Run(until) }

// RunUntilConverged runs until every correct replica has applied all the
// given command-carrying message IDs (see Recorder().Broadcasts() for IDs),
// or maxTime passes. It returns whether convergence was reached.
func (s *SimService) RunUntilConverged(maxTime model.Time) bool {
	correct := s.cfg.Failures.Correct()
	var want []string
	converged := func(*sim.Kernel) bool {
		want = want[:0]
		for _, b := range s.rec.Broadcasts() {
			want = append(want, b.ID)
		}
		if len(want) == 0 {
			return false
		}
		if !s.rec.AllDelivered(correct, want) {
			return false
		}
		// Identical final sequences everywhere.
		ref := s.rec.FinalSeq(correct[0])
		for _, p := range correct[1:] {
			got := s.rec.FinalSeq(p)
			if len(got) != len(ref) {
				return false
			}
			for i := range ref {
				if got[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	s.kernel.RunUntil(maxTime, converged)
	return converged(s.kernel)
}

// Snapshot returns replica p's current machine snapshot.
func (s *SimService) Snapshot(p model.ProcID) string {
	return s.replica(p).Snapshot()
}

// Rebuilds returns how many times replica p replayed from scratch (eventual
// consistency's divergence repair; always 0 under strong consistency).
func (s *SimService) Rebuilds(p model.ProcID) int {
	return s.replica(p).Rebuilds()
}

// replica returns p's state-machine replica, unwrapping the retransmission
// layer when Config.Retransmit put one around it.
func (s *SimService) replica(p model.ProcID) *smr.Replica {
	return UnwrapReplica(s.kernel.Automaton(p))
}

// Report property-checks the run against the (E)TOB specification.
func (s *SimService) Report() trace.ETOBReport {
	return trace.CheckETOB(s.rec, s.cfg.Failures.Correct(), trace.CheckOptions{})
}

// Recorder exposes the run's recorded histories.
func (s *SimService) Recorder() *trace.Recorder { return s.rec }

// Kernel exposes the underlying kernel (for advanced scheduling).
func (s *SimService) Kernel() *sim.Kernel { return s.kernel }

// LiveService is a replicated service on the goroutine runtime with the
// heartbeat Ω.
type LiveService struct {
	cluster *runtime.Cluster
	rec     *trace.Recorder
}

// NewLiveService starts n live replicas with the given consistency and
// machine (nil machine = KV store). Σ is an oracle and has no live
// implementation, so StrongSigma is rejected here — which is, precisely,
// the paper's point.
func NewLiveService(n int, c Consistency, machine smr.MachineFactory, opts runtime.Options) *LiveService {
	if c == StrongSigma {
		panic(fmt.Sprintf("core: consistency %v not available live (Σ is an oracle)", c))
	}
	rec := trace.NewRecorder(n)
	opts.Observer = rec
	cluster := runtime.NewCluster(n, ReplicaStack(c, machine, nil), opts)
	return &LiveService{cluster: cluster, rec: rec}
}

// Submit sends a command to replica p.
func (s *LiveService) Submit(p model.ProcID, cmd string) {
	s.cluster.Submit(p, smr.Command{Cmd: cmd})
}

// Snapshot returns replica p's snapshot ("" if p crashed).
func (s *LiveService) Snapshot(p model.ProcID) string {
	var snap string
	s.cluster.Inspect(p, func(a model.Automaton) { snap = a.(*smr.Replica).Snapshot() })
	return snap
}

// Crash kills replica p.
func (s *LiveService) Crash(p model.ProcID) { s.cluster.Crash(p) }

// Recorder exposes the run's recorded histories.
func (s *LiveService) Recorder() *trace.Recorder { return s.rec }

// Stop shuts the cluster down.
func (s *LiveService) Stop() { s.cluster.Stop() }
