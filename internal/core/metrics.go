package core

import (
	"repro/internal/etob"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/retransmit"
	"repro/internal/sim"
	"repro/internal/smr"
)

// This file wires the protocol stack to the observability plane. The stack's
// counters live inside automata that run in a single-threaded context — the
// kernel's step loop in the simulator, runtime.Proc's event loop live — so
// they cannot be read by a scraping goroutine directly. CollectStackMetrics
// is the one snapshot function both worlds share: the node calls it from an
// OnScrape hook inside Proc.Inspect, a sim harness calls it between Run
// calls. Because both go through the same function, sim and live registries
// expose the identical stack-metric names (the parity the metric-name test
// pins), and /status can be served off the registry instead of hand-collected
// struct fields.

// CollectStackMetrics snapshots one replica-stack automaton's counters into
// reg under the canonical obs.StackNames. The caller must hold whatever
// synchronization the automaton requires (Proc.Inspect live; not-running in
// the simulator). Layers the stack was built without (no retransmission
// wrapper, no batching) register zeros, so a scrape always serves the full
// parity set.
func CollectStackMetrics(reg *obs.Registry, a model.Automaton) {
	var (
		resends, dupes, abandoned int64
		pending, sparse, streams  int
	)
	if w, ok := a.(*retransmit.Automaton); ok {
		resends, dupes, abandoned = w.Resends(), w.Duplicates(), w.Abandoned()
		pending, sparse, streams = w.PendingEnvelopes(), w.DedupSparse(), w.DedupStreams()
		a = w.Inner()
	}
	reg.Counter(obs.MetricRetransmitResends).Set(resends)
	reg.Counter(obs.MetricRetransmitDuplicates).Set(dupes)
	reg.Counter(obs.MetricRetransmitAbandoned).Set(abandoned)
	reg.Gauge(obs.MetricRetransmitPending).Set(int64(pending))
	reg.Gauge(obs.MetricRetransmitSparse).Set(int64(sparse))
	reg.Gauge(obs.MetricRetransmitStreams).Set(int64(streams))

	var applied, rebuilds int
	var inner model.Automaton
	if rep, ok := a.(*smr.Replica); ok {
		applied, rebuilds = rep.AppliedCount(), rep.Rebuilds()
		inner = rep.Inner()
	} else {
		inner = a
	}
	reg.Counter(obs.MetricSMRApplied).Set(int64(applied))
	reg.Counter(obs.MetricSMRRebuilds).Set(int64(rebuilds))

	var bs etob.BatchStats
	if b, ok := inner.(interface{ BatchStats() etob.BatchStats }); ok && inner != nil {
		bs = b.BatchStats()
	}
	reg.Counter(obs.MetricBatchFlushes).Set(bs.Flushes)
	reg.Counter(obs.MetricBatchFullFlushes).Set(bs.FullFlushes)
	reg.Counter(obs.MetricBatchLingerFlushes).Set(bs.LingerFlushes)
	reg.Counter(obs.MetricBatchOps).Set(bs.Ops)
	reg.Gauge(obs.MetricBatchTarget).Set(int64(bs.Target))
	reg.Gauge(obs.MetricBatchQueued).Set(int64(bs.Queued))

	var undelivered int
	if u, ok := inner.(interface{ Undelivered() int }); ok && inner != nil {
		undelivered = u.Undelivered()
	}
	reg.Gauge(obs.MetricEtobUndelivered).Set(int64(undelivered))
}

// RegisterSimMetrics exposes a simulated replica's stack counters plus the
// kernel's run counters on reg: the kernel registers read-at-scrape
// functions, and an OnScrape hook snapshots p's stack via
// CollectStackMetrics. Scrape between Run calls — the kernel is
// single-threaded and holds no locks while stepping.
func RegisterSimMetrics(reg *obs.Registry, k *sim.Kernel, p model.ProcID) {
	k.RegisterMetrics(reg)
	reg.OnScrape(func() { CollectStackMetrics(reg, k.Automaton(p)) })
}
