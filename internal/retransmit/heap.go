package retransmit

// resendHeap is the sender's resend queue: a 4-ary min-heap ordered by
// (dueTick, ord), following the slab layout of internal/sim's event heap. The
// heap itself holds compact pointer-free keys; the pending envelopes live in
// a slab of reusable slots addressed by index, so sift operations move
// 20-byte keys rather than envelope values, and steady-state traffic
// allocates no per-envelope heap nodes.
//
// The queue replaces a linear scan of every unacked envelope per Tick. A tick
// now touches only envelopes whose dueTick has arrived: peek, pop the due
// prefix, resend, re-push with the next backoff. Under a large in-flight
// window with exponential backoff, the overwhelming majority of pending
// envelopes are NOT due on any given tick — the scan was O(pending), the
// heap is O(due·log pending).
//
// Acked envelopes are removed lazily: the ack marks the slot and deletes the
// ack-lookup map entry; the key stays queued until its dueTick pops it, at
// which point the slot is released. The lingering key is bounded by one
// backoff interval (≤ MaxRTO + jitter), so acked state drains on the same
// timescale the old per-tick compaction achieved. Payload references are
// released eagerly by the ack itself (see Recv), so the lingering slot pins
// no protocol data.
//
// Ordering: ord is the envelope's global send ordinal, unique per sender
// incarnation, making (dueTick, ord) a total order. Resends within one tick
// are issued in ord order — exactly the order the old linear scan produced —
// so the seeded jitter stream is drawn in the identical sequence and wrapped
// kernel runs remain bit-for-bit reproducible across this change (the golden
// suite pins this).
type resendHeap struct {
	keys  []resendKey
	slots []pending // payload storage; keys[i].slot indexes into this
	free  []int32   // recycled slot indexes
}

type resendKey struct {
	due  int64
	ord  int64
	slot int32
}

func resendLess(a, b *resendKey) bool {
	if a.due != b.due {
		return a.due < b.due
	}
	return a.ord < b.ord
}

func (h *resendHeap) len() int { return len(h.keys) }

// peekDue returns the earliest queued dueTick. Callers must ensure the heap
// is non-empty.
func (h *resendHeap) peekDue() int64 { return h.keys[0].due }

// alloc reserves a slab slot for a new envelope (contents are the caller's to
// fill) and returns its index. The slot is not queued until push.
func (h *resendHeap) alloc() int32 {
	if n := len(h.free); n > 0 {
		idx := h.free[n-1]
		h.free = h.free[:n-1]
		h.slots[idx] = pending{}
		return idx
	}
	h.slots = append(h.slots, pending{})
	return int32(len(h.slots) - 1)
}

// push queues (or re-queues, after a resend) the envelope in slot for its
// next due tick.
func (h *resendHeap) push(due, ord int64, slot int32) {
	h.keys = append(h.keys, resendKey{due: due, ord: ord, slot: slot})
	h.up(len(h.keys) - 1)
}

// pop removes and returns the minimum key. The caller owns the slot: resend
// and re-push it, or release it.
func (h *resendHeap) pop() resendKey {
	q := h.keys
	top := q[0]
	n := len(q) - 1
	last := q[n]
	h.keys = q[:n]
	if n > 0 {
		q[0] = last
		h.down(0)
	}
	return top
}

// release recycles a slot whose envelope is settled (acked or abandoned),
// dropping its payload reference for the GC.
func (h *resendHeap) release(slot int32) {
	h.slots[slot].payload = nil
	h.free = append(h.free, slot)
}

// reset empties the heap for a fresh incarnation, keeping the allocated
// capacity.
func (h *resendHeap) reset() {
	h.keys = h.keys[:0]
	h.free = h.free[:0]
	for i := range h.slots {
		h.slots[i] = pending{}
	}
	h.slots = h.slots[:0]
}

func (h *resendHeap) up(i int) {
	q := h.keys
	k := q[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !resendLess(&k, &q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = k
}

func (h *resendHeap) down(i int) {
	q := h.keys
	n := len(q)
	k := q[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if resendLess(&q[c], &q[min]) {
				min = c
			}
		}
		if !resendLess(&q[min], &k) {
			break
		}
		q[i] = q[min]
		i = min
	}
	q[i] = k
}
