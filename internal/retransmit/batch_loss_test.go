package retransmit_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/retransmit"
	"repro/internal/sim"
	"repro/internal/sim/adversary"
	"repro/internal/smr"
)

// TestBatchedExactlyOnceUnderBurstyLoss pins the interaction the batching
// layer must not break: a batch rides ONE retransmission envelope, so a
// bursty-lossy wire that eats the envelope eats k ops — and the resend must
// bring back all k, exactly once each, never a partial batch and never a
// duplicated one. The full Eventual stack (retransmit → batched ETOB →
// AppendLog machine) runs over ~30% bursty loss while a receiver restarts
// mid-stream (its state wiped, rebuilt from peer traffic). Afterward every
// process's applied log must hold every submitted op exactly once — checked
// across 10 seeds so the property does not hinge on one loss pattern.
func TestBatchedExactlyOnceUnderBurstyLoss(t *testing.T) {
	const n, ops = 4, 18
	for seed := int64(1); seed <= 10; seed++ {
		fp := model.NewFailurePattern(n)
		det := fd.NewOmegaStable(fp, 1)
		factory := core.ReplicaStackWith(core.Eventual, core.StackOptions{
			Machine:    smr.LogFactory,
			Retransmit: &retransmit.Options{Seed: seed},
			Batch:      etob.BatchOptions{MaxBatch: 4, MaxLinger: 2},
		})
		// Receiver p3 loses a window mid-stream: automaton rebuilt from the
		// factory at t=1800, all retransmit/ETOB/machine state gone.
		faults := adversary.NewFaultSchedule(n)
		faults.Down(3, 1200, 1800)
		k := sim.New(fp, det, factory, sim.Options{
			Seed:    seed,
			Network: func() sim.NetworkModel { return &adversary.Lossy{Drop: 0.3, Burst: 3} },
			Faults:  faults,
		})
		// Submit only through processes that never go down — ops queued but
		// unflushed on a crashing process are lost by the durability
		// contract, which is not what this test is about. Bursts of three
		// back-to-back fill batches; stragglers flush by linger. The stream
		// spans the down window and continues after the restart.
		submitters := []model.ProcID{1, 2, 4}
		for i := 0; i < ops; i++ {
			p := submitters[(i/3)%len(submitters)]
			at := model.Time(100 + 150*(i/3) + i%3)
			k.ScheduleInput(p, at, smr.Command{Cmd: fmt.Sprintf("op%d", i)})
		}
		k.Run(40000)

		if k.MessagesLost() == 0 {
			t.Fatalf("seed %d: no losses — the network exercised nothing", seed)
		}
		var resends, flushes, batched int64
		ref := ""
		for _, p := range model.Procs(n) {
			wrap := k.Automaton(p).(*retransmit.Automaton)
			resends += wrap.Resends()
			rep := core.UnwrapReplica(wrap)
			if b, ok := rep.Inner().(interface{ BatchStats() etob.BatchStats }); ok {
				st := b.BatchStats()
				flushes += st.Flushes
				batched += st.Ops
			}
			snap := rep.Snapshot()
			if p == 1 {
				ref = snap
			} else if snap != ref {
				t.Errorf("seed %d: %v snapshot diverges from p1:\n p%v: %q\n p1: %q", seed, p, p, snap, ref)
			}
			// Exactly-once, per op, in the applied log.
			counts := map[string]int{}
			for _, line := range strings.Split(snap, "\n") {
				counts[line]++
			}
			for i := 0; i < ops; i++ {
				if got := counts[fmt.Sprintf("op%d", i)]; got != 1 {
					t.Errorf("seed %d: %v applied op%d %d times, want exactly 1", seed, p, i, got)
				}
			}
			if got := rep.AppliedCount(); got != ops {
				t.Errorf("seed %d: %v applied %d commands, want %d", seed, p, got, ops)
			}
		}
		if resends == 0 {
			t.Errorf("seed %d: losses occurred but nothing was resent", seed)
		}
		// The restarted p3's batch layer is fresh, so compare cluster-wide:
		// the submitters' layers alone make flushes < ops when coalescing
		// works. (batched counts ops that went THROUGH queues; p3's pre-crash
		// counters are lost with its automaton, so ops is a lower bound.)
		if batched < ops {
			t.Errorf("seed %d: batch layers saw %d ops, want >= %d", seed, batched, ops)
		}
		if flushes == 0 || flushes >= batched {
			t.Errorf("seed %d: %d flushes for %d batched ops — never coalesced", seed, flushes, batched)
		}
	}
}
