package retransmit_test

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/retransmit"
	"repro/internal/sim"
	"repro/internal/sim/adversary"
)

// recvCount tracks, per (receiver, payload), how many times the INNER
// automaton saw the payload — the exactly-once ledger.
type recvCount map[model.ProcID]map[string]int

// counterAuto is the inner protocol: inputs broadcast, receipts are counted.
type counterAuto struct {
	self   model.ProcID
	counts recvCount
}

func (a *counterAuto) Init(model.Context) {}
func (a *counterAuto) Tick(model.Context) {}

func (a *counterAuto) Recv(_ model.Context, _ model.ProcID, payload any) {
	byPayload := a.counts[a.self]
	if byPayload == nil {
		byPayload = map[string]int{}
		a.counts[a.self] = byPayload
	}
	byPayload[payload.(string)]++
}

func (a *counterAuto) Input(ctx model.Context, in any) { ctx.Broadcast(in.(string)) }

func counterFactory(counts recvCount) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton {
		return &counterAuto{self: p, counts: counts}
	}
}

// TestExactlyOnceOverLossy is the property the wrapper exists for: over a
// bursty lossy network, every broadcast payload reaches the inner automaton
// of every correct process EXACTLY once — resends supply at-least-once, dedup
// supplies at-most-once. Checked across multiple seeds so the property does
// not hinge on one lucky loss pattern.
func TestExactlyOnceOverLossy(t *testing.T) {
	const n, payloads = 4, 6
	for seed := int64(1); seed <= 10; seed++ {
		counts := make(recvCount)
		fp := model.NewFailurePattern(n)
		k := sim.New(fp, fd.NewOmegaStable(fp, 1),
			retransmit.Wrap(counterFactory(counts), retransmit.Options{Seed: seed}),
			sim.Options{
				Seed: seed,
				Network: func() sim.NetworkModel {
					return &adversary.Lossy{Drop: 0.3, Burst: 3}
				},
			})
		var want []string
		for i := 0; i < payloads; i++ {
			id := fmt.Sprintf("m%d", i)
			want = append(want, id)
			k.ScheduleInput(model.ProcID(i%n+1), model.Time(50+40*i), id)
		}
		k.Run(30000)

		if k.MessagesLost() == 0 {
			t.Fatalf("seed %d: no losses — the network is not exercising retransmission", seed)
		}
		resends := int64(0)
		for _, p := range model.Procs(n) {
			a := k.Automaton(p).(*retransmit.Automaton)
			resends += a.Resends()
			if pend := a.PendingEnvelopes(); pend != 0 {
				t.Errorf("seed %d: %v still has %d unacked envelopes after the run settled", seed, p, pend)
			}
			for _, id := range want {
				if got := counts[p][id]; got != 1 {
					t.Errorf("seed %d: %v received %q %d times, want exactly 1", seed, p, id, got)
				}
			}
		}
		if resends == 0 {
			t.Errorf("seed %d: losses occurred but nothing was resent", seed)
		}
	}
}

// TestRetransmitTransparentOnCleanNetwork: over a loss-free network the
// wrapper must not change what the inner protocol sees — same exactly-once
// ledger, no resends beyond backoff noise racing the first ack.
func TestRetransmitTransparentOnCleanNetwork(t *testing.T) {
	const n = 3
	counts := make(recvCount)
	fp := model.NewFailurePattern(n)
	k := sim.New(fp, fd.NewOmegaStable(fp, 1),
		retransmit.Wrap(counterFactory(counts), retransmit.Options{Seed: 5, RTO: 10}),
		sim.Options{Seed: 5})
	k.ScheduleInput(1, 50, "a")
	k.ScheduleInput(2, 90, "b")
	k.Run(5000)
	for _, p := range model.Procs(n) {
		for _, id := range []string{"a", "b"} {
			if got := counts[p][id]; got != 1 {
				t.Errorf("%v received %q %d times, want 1", p, id, got)
			}
		}
	}
}

// TestDedupStateBounded is the watermark-pruning regression test: over a
// LONG lossy run (many payloads, sustained bursty loss) the receiver-side
// dedup state must stay bounded by the in-flight reordering window — not grow
// one entry per envelope forever, as the pre-watermark implementation did —
// while delivery remains exactly-once. The sparse size is sampled after every
// kernel event, so a transient blow-up cannot hide behind a clean final
// state.
func TestDedupStateBounded(t *testing.T) {
	const n, payloads = 3, 120
	counts := make(recvCount)
	fp := model.NewFailurePattern(n)
	k := sim.New(fp, fd.NewOmegaStable(fp, 1),
		retransmit.Wrap(counterFactory(counts), retransmit.Options{Seed: 11}),
		sim.Options{
			Seed:    11,
			MaxTime: 400000,
			Network: func() sim.NetworkModel {
				return &adversary.Lossy{Drop: 0.25, Burst: 3}
			},
		})
	var want []string
	for i := 0; i < payloads; i++ {
		id := fmt.Sprintf("m%d", i)
		want = append(want, id)
		k.ScheduleInput(model.ProcID(i%n+1), model.Time(50+60*i), id)
	}
	maxSparse := 0
	k.RunUntil(400000, func(k *sim.Kernel) bool {
		for _, p := range model.Procs(n) {
			if s := k.Automaton(p).(*retransmit.Automaton).DedupSparse(); s > maxSparse {
				maxSparse = s
			}
		}
		return false
	})

	if k.MessagesLost() < 100 {
		t.Fatalf("only %d losses — the run is not long/lossy enough to exercise pruning", k.MessagesLost())
	}
	// Every payload broadcast to n processes: n*payloads envelopes per
	// receiver across the run. The sparse set must stay far below that —
	// the bound here is ~an order of magnitude under the naive growth while
	// leaving room for genuine reordering bursts.
	if total := n * payloads; maxSparse >= total/8 {
		t.Errorf("dedup sparse state peaked at %d entries (of %d envelopes per receiver): watermark is not pruning", maxSparse, total)
	}
	for _, p := range model.Procs(n) {
		a := k.Automaton(p).(*retransmit.Automaton)
		if s := a.DedupSparse(); s != 0 {
			t.Errorf("%v still holds %d sparse dedup entries after every gap closed", p, s)
		}
		if streams := a.DedupStreams(); streams > n {
			t.Errorf("%v tracks %d dedup streams, want <= %d (no restarts in this run)", p, streams, n)
		}
		for _, id := range want {
			if got := counts[p][id]; got != 1 {
				t.Errorf("%v received %q %d times, want exactly 1", p, id, got)
			}
		}
	}
}

// TestDedupBoundedAcrossReceiverRestart covers the churn half of the
// watermark fix: a RESTARTED receiver's fresh dedup ledger first hears from
// a surviving sender at a seq far above 1, and without the Base field in
// every envelope that bottom gap could never close (the missing seqs were
// acked to the previous incarnation), pinning one sparse entry per
// subsequent envelope for the rest of the run. With Base the ledger
// compacts immediately: sparse state must return to 0 once the run settles,
// and payloads broadcast after the restart must reach the new incarnation
// exactly once.
func TestDedupBoundedAcrossReceiverRestart(t *testing.T) {
	const n = 3
	counts := make(recvCount)
	fp := model.NewFailurePattern(n)
	faults := adversary.NewFaultSchedule(n)
	faults.Down(2, 300, 400) // p2 restarts at t=400 with fresh wrapper state
	k := sim.New(fp, fd.NewOmegaStable(fp, 1),
		retransmit.Wrap(counterFactory(counts), retransmit.Options{Seed: 6}),
		sim.Options{Seed: 6, MaxTime: 100000, Faults: faults})
	var postRestart []string
	for i := 0; i < 120; i++ {
		id := fmt.Sprintf("m%d", i)
		at := model.Time(50 + 25*i)
		if at >= 450 {
			postRestart = append(postRestart, id)
		}
		k.ScheduleInput(1, at, id)
	}
	maxSparse := 0
	k.RunUntil(100000, func(k *sim.Kernel) bool {
		if a, ok := k.Automaton(2).(*retransmit.Automaton); ok {
			if s := a.DedupSparse(); s > maxSparse {
				maxSparse = s
			}
		}
		return false
	})
	p2 := k.Automaton(2).(*retransmit.Automaton)
	if s := p2.DedupSparse(); s != 0 {
		t.Errorf("p2 holds %d sparse dedup entries after settling, want 0: the restart gap never compacted", s)
	}
	if maxSparse > 20 {
		t.Errorf("p2's sparse dedup state peaked at %d entries: growing with traffic, not with the reordering window", maxSparse)
	}
	for _, id := range postRestart {
		if got := counts[2][id]; got != 1 {
			t.Errorf("p2's new incarnation received %q %d times, want exactly 1", id, got)
		}
	}
}

// TestMaxRTOClampRespectsExplicitCap pins the Options fix: an explicitly
// configured MaxRTO below RTO is the caller's cap and must bound every
// resend interval (the old defaulting replaced it with max(48, RTO), so
// RTO=100/MaxRTO=50 silently became a 100-tick cap). The resend schedule is
// observed from outside: with RTO=100/MaxRTO=9 honored, a lossy first copy
// is resent within a handful of ticks; with the cap discarded it would sit
// ~100 ticks.
func TestMaxRTOClampRespectsExplicitCap(t *testing.T) {
	counts := make(recvCount)
	fp := model.NewFailurePattern(2)
	// Drop everything on 1→2 for the first transmissions: linkRate is seeded,
	// so instead force loss via a high drop rate and verify by delivery time.
	k := sim.New(fp, fd.NewOmegaStable(fp, 1),
		retransmit.Wrap(counterFactory(counts), retransmit.Options{Seed: 3, RTO: 100, MaxRTO: 9}),
		sim.Options{
			Seed:    3,
			Network: func() sim.NetworkModel { return &adversary.Lossy{Drop: 0.45, Min: 1, Max: 2} },
		})
	k.ScheduleInput(1, 50, "x")
	k.Run(20000)
	resends := int64(0)
	for _, p := range model.Procs(2) {
		a := k.Automaton(p).(*retransmit.Automaton)
		resends += a.Resends()
		if got := counts[p]["x"]; got != 1 {
			t.Errorf("%v received %q %d times, want 1", p, "x", got)
		}
	}
	if resends == 0 {
		t.Skip("seed produced no losses; cap behavior not exercised")
	}
	// The schedule property itself: every inter-resend gap must respect the
	// explicit cap (MaxRTO + jitter < RTO). With the old defaulting the gap
	// would be RTO·2^k up to 100+; with the clamp it is ≤ 9 + jitter(9) = 18.
	// Convergence this fast with losses present is only possible under the
	// clamped schedule.
	if now := k.Now(); now > 2000 {
		t.Errorf("run settled at t=%d; with MaxRTO honored resends are tick-scale and settle is fast", now)
	}
}

// crashedReceiverRun drives the sender-bound scenario: p2 crashes permanently
// early in the run while p1 keeps broadcasting, so every post-crash envelope
// on the 1→2 link is unackable. It returns p1's wrapper for inspection.
func crashedReceiverRun(t *testing.T, opts retransmit.Options) (*retransmit.Automaton, recvCount, []string) {
	t.Helper()
	const n, payloads = 3, 60
	counts := make(recvCount)
	fp := model.NewCrashPattern(n, map[model.ProcID]model.Time{2: 300})
	k := sim.New(fp, fd.NewOmegaStable(fp, 1),
		retransmit.Wrap(counterFactory(counts), opts),
		sim.Options{Seed: 9, MaxTime: 200000})
	var postCrash []string
	for i := 0; i < payloads; i++ {
		id := fmt.Sprintf("m%d", i)
		at := model.Time(50 + 100*i)
		if at >= 300 {
			postCrash = append(postCrash, id)
		}
		k.ScheduleInput(1, at, id)
	}
	k.Run(200000)
	return k.Automaton(1).(*retransmit.Automaton), counts, postCrash
}

// TestSenderUnboundedWithoutGiveUp is the RED half of the sender-bound fix:
// with GiveUpTicks disabled (the paper-faithful default), a sender facing a
// permanently crashed receiver accumulates one immortal pending envelope per
// broadcast, forever — correct under the paper's "correct processes" framing,
// a leak for a long-lived deployable node.
func TestSenderUnboundedWithoutGiveUp(t *testing.T) {
	a, _, postCrash := crashedReceiverRun(t, retransmit.Options{Seed: 9})
	if got := a.PendingEnvelopes(); got < len(postCrash) {
		t.Fatalf("pending = %d, want >= %d (one immortal envelope per post-crash broadcast): "+
			"if this fails the red scenario no longer demonstrates the leak", got, len(postCrash))
	}
	if a.Abandoned() != 0 {
		t.Fatalf("abandoned = %d with GiveUpTicks disabled, want 0", a.Abandoned())
	}
}

// TestSenderBoundedByGiveUp is the GREEN half: with a give-up bound well
// above the backoff cap, the same run drains the sender completely — every
// unackable envelope is abandoned once backoff has capped and the link has
// stayed silent — while delivery between the correct processes remains
// exactly-once.
func TestSenderBoundedByGiveUp(t *testing.T) {
	a, counts, _ := crashedReceiverRun(t, retransmit.Options{Seed: 9, GiveUpTicks: 200})
	if got := a.PendingEnvelopes(); got != 0 {
		t.Errorf("pending = %d after the run settled, want 0: give-up did not bound the sender", got)
	}
	if a.Abandoned() == 0 {
		t.Error("nothing abandoned against a permanently crashed receiver")
	}
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("m%d", i)
		for _, p := range []model.ProcID{1, 3} {
			if got := counts[p][id]; got != 1 {
				t.Errorf("%v received %q %d times, want exactly 1 (give-up must not touch live links)", p, id, got)
			}
		}
	}
}

// TestGiveUpSparesReturningProcess pins the at-least-once caveat: a process
// that comes BACK within the give-up window keeps the delivery guarantee.
// p2 is down for a stretch while p1 broadcasts; with GiveUpTicks far above
// the outage, p1 abandons nothing and p2's new incarnation receives every
// payload sent during the outage exactly once.
func TestGiveUpSparesReturningProcess(t *testing.T) {
	const n = 3
	counts := make(recvCount)
	fp := model.NewFailurePattern(n)
	faults := adversary.NewFaultSchedule(n)
	faults.Down(2, 300, 2000)
	k := sim.New(fp, fd.NewOmegaStable(fp, 1),
		retransmit.Wrap(counterFactory(counts), retransmit.Options{Seed: 4, GiveUpTicks: 100000}),
		sim.Options{Seed: 4, MaxTime: 100000, Faults: faults})
	var during []string
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("m%d", i)
		at := model.Time(50 + 40*i)
		if at >= 300 && at < 2000 {
			during = append(during, id)
		}
		k.ScheduleInput(1, at, id)
	}
	k.Run(100000)
	a1 := k.Automaton(1).(*retransmit.Automaton)
	if a1.Abandoned() != 0 {
		t.Errorf("p1 abandoned %d envelopes though p2 returned within the window", a1.Abandoned())
	}
	if len(during) == 0 {
		t.Fatal("no payloads fell inside the outage; scenario broken")
	}
	for _, id := range during {
		if got := counts[2][id]; got != 1 {
			t.Errorf("p2's new incarnation received %q %d times, want exactly 1", id, got)
		}
	}
}

// TestRetransmitDeterminism: wrapped runs follow the kernel's bit-for-bit
// contract — the wrapper's jitter is seeded, so same seed, same run.
func TestRetransmitDeterminism(t *testing.T) {
	run := func() (int64, int64, int64) {
		counts := make(recvCount)
		fp := model.NewFailurePattern(3)
		k := sim.New(fp, fd.NewOmegaStable(fp, 1),
			retransmit.Wrap(counterFactory(counts), retransmit.Options{Seed: 2}),
			sim.Options{Seed: 2, Network: func() sim.NetworkModel { return adversary.NewLossy(0.25) }})
		k.ScheduleInput(1, 40, "x")
		k.ScheduleInput(3, 200, "y")
		k.Run(10000)
		return k.Steps(), k.MessagesSent(), k.MessagesLost()
	}
	s1, m1, l1 := run()
	s2, m2, l2 := run()
	if s1 != s2 || m1 != m2 || l1 != l2 {
		t.Fatalf("same seed must reproduce: (%d,%d,%d) vs (%d,%d,%d)", s1, m1, l1, s2, m2, l2)
	}
}
