package retransmit_test

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/retransmit"
	"repro/internal/sim"
	"repro/internal/sim/adversary"
)

// recvCount tracks, per (receiver, payload), how many times the INNER
// automaton saw the payload — the exactly-once ledger.
type recvCount map[model.ProcID]map[string]int

// counterAuto is the inner protocol: inputs broadcast, receipts are counted.
type counterAuto struct {
	self   model.ProcID
	counts recvCount
}

func (a *counterAuto) Init(model.Context) {}
func (a *counterAuto) Tick(model.Context) {}

func (a *counterAuto) Recv(_ model.Context, _ model.ProcID, payload any) {
	byPayload := a.counts[a.self]
	if byPayload == nil {
		byPayload = map[string]int{}
		a.counts[a.self] = byPayload
	}
	byPayload[payload.(string)]++
}

func (a *counterAuto) Input(ctx model.Context, in any) { ctx.Broadcast(in.(string)) }

func counterFactory(counts recvCount) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton {
		return &counterAuto{self: p, counts: counts}
	}
}

// TestExactlyOnceOverLossy is the property the wrapper exists for: over a
// bursty lossy network, every broadcast payload reaches the inner automaton
// of every correct process EXACTLY once — resends supply at-least-once, dedup
// supplies at-most-once. Checked across multiple seeds so the property does
// not hinge on one lucky loss pattern.
func TestExactlyOnceOverLossy(t *testing.T) {
	const n, payloads = 4, 6
	for seed := int64(1); seed <= 10; seed++ {
		counts := make(recvCount)
		fp := model.NewFailurePattern(n)
		k := sim.New(fp, fd.NewOmegaStable(fp, 1),
			retransmit.Wrap(counterFactory(counts), retransmit.Options{Seed: seed}),
			sim.Options{
				Seed: seed,
				Network: func() sim.NetworkModel {
					return &adversary.Lossy{Drop: 0.3, Burst: 3}
				},
			})
		var want []string
		for i := 0; i < payloads; i++ {
			id := fmt.Sprintf("m%d", i)
			want = append(want, id)
			k.ScheduleInput(model.ProcID(i%n+1), model.Time(50+40*i), id)
		}
		k.Run(30000)

		if k.MessagesLost() == 0 {
			t.Fatalf("seed %d: no losses — the network is not exercising retransmission", seed)
		}
		resends := int64(0)
		for _, p := range model.Procs(n) {
			a := k.Automaton(p).(*retransmit.Automaton)
			resends += a.Resends()
			if pend := a.PendingEnvelopes(); pend != 0 {
				t.Errorf("seed %d: %v still has %d unacked envelopes after the run settled", seed, p, pend)
			}
			for _, id := range want {
				if got := counts[p][id]; got != 1 {
					t.Errorf("seed %d: %v received %q %d times, want exactly 1", seed, p, id, got)
				}
			}
		}
		if resends == 0 {
			t.Errorf("seed %d: losses occurred but nothing was resent", seed)
		}
	}
}

// TestRetransmitTransparentOnCleanNetwork: over a loss-free network the
// wrapper must not change what the inner protocol sees — same exactly-once
// ledger, no resends beyond backoff noise racing the first ack.
func TestRetransmitTransparentOnCleanNetwork(t *testing.T) {
	const n = 3
	counts := make(recvCount)
	fp := model.NewFailurePattern(n)
	k := sim.New(fp, fd.NewOmegaStable(fp, 1),
		retransmit.Wrap(counterFactory(counts), retransmit.Options{Seed: 5, RTO: 10}),
		sim.Options{Seed: 5})
	k.ScheduleInput(1, 50, "a")
	k.ScheduleInput(2, 90, "b")
	k.Run(5000)
	for _, p := range model.Procs(n) {
		for _, id := range []string{"a", "b"} {
			if got := counts[p][id]; got != 1 {
				t.Errorf("%v received %q %d times, want 1", p, id, got)
			}
		}
	}
}

// TestRetransmitDeterminism: wrapped runs follow the kernel's bit-for-bit
// contract — the wrapper's jitter is seeded, so same seed, same run.
func TestRetransmitDeterminism(t *testing.T) {
	run := func() (int64, int64, int64) {
		counts := make(recvCount)
		fp := model.NewFailurePattern(3)
		k := sim.New(fp, fd.NewOmegaStable(fp, 1),
			retransmit.Wrap(counterFactory(counts), retransmit.Options{Seed: 2}),
			sim.Options{Seed: 2, Network: func() sim.NetworkModel { return adversary.NewLossy(0.25) }})
		k.ScheduleInput(1, 40, "x")
		k.ScheduleInput(3, 200, "y")
		k.Run(10000)
		return k.Steps(), k.MessagesSent(), k.MessagesLost()
	}
	s1, m1, l1 := run()
	s2, m2, l2 := run()
	if s1 != s2 || m1 != m2 || l1 != l2 {
		t.Fatalf("same seed must reproduce: (%d,%d,%d) vs (%d,%d,%d)", s1, m1, l1, s2, m2, l2)
	}
}
