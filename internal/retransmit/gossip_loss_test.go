package retransmit_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/gossip"
	"repro/internal/model"
	"repro/internal/retransmit"
	"repro/internal/sim"
	"repro/internal/sim/adversary"
	"repro/internal/smr"
)

// TestGossipEnvelopesRideRetransmission pins the layering the gossip mode
// depends on: rumor, digest, and repair envelopes are ordinary unicast sends
// from the retransmission wrapper's point of view, so each one rides an
// at-least-once envelope with dedup on the far side. Under ~25% loss a rumor
// that the wire eats is resent — gossip needs no loss handling of its own,
// and the anti-entropy rotation only has to cover rumors that never STARTED
// (sampling gaps), not lost packets. The full Eventual stack (retransmit →
// gossip ETOB → AppendLog) must apply every submitted op exactly once at
// every replica, across 5 seeds.
func TestGossipEnvelopesRideRetransmission(t *testing.T) {
	const n, ops = 8, 16
	for seed := int64(1); seed <= 5; seed++ {
		fp := model.NewFailurePattern(n)
		det := fd.NewOmegaStable(fp, 1)
		factory := core.ReplicaStackWith(core.Eventual, core.StackOptions{
			Machine:    smr.LogFactory,
			Retransmit: &retransmit.Options{Seed: seed},
			Gossip:     gossip.Options{Enable: true, Seed: seed},
		})
		k := sim.New(fp, det, factory, sim.Options{
			Seed:    seed,
			Network: func() sim.NetworkModel { return &adversary.Lossy{Drop: 0.25} },
		})
		for i := 0; i < ops; i++ {
			p := model.ProcID(i%n + 1)
			k.ScheduleInput(p, model.Time(100+40*i), smr.Command{Cmd: fmt.Sprintf("op%d", i)})
		}
		k.Run(40000)

		if k.MessagesLost() == 0 {
			t.Fatalf("seed %d: no losses — the network exercised nothing", seed)
		}
		var resends int64
		ref := ""
		for _, p := range model.Procs(n) {
			wrap := k.Automaton(p).(*retransmit.Automaton)
			resends += wrap.Resends()
			rep := core.UnwrapReplica(wrap)
			snap := rep.Snapshot()
			if p == 1 {
				ref = snap
			} else if snap != ref {
				t.Errorf("seed %d: %v snapshot diverges from p1:\n p%v: %q\n p1: %q", seed, p, p, snap, ref)
			}
			counts := map[string]int{}
			for _, line := range strings.Split(snap, "\n") {
				counts[line]++
			}
			for i := 0; i < ops; i++ {
				if got := counts[fmt.Sprintf("op%d", i)]; got != 1 {
					t.Errorf("seed %d: %v applied op%d %d times, want exactly 1", seed, p, i, got)
				}
			}
		}
		if resends == 0 {
			t.Errorf("seed %d: losses occurred but nothing was resent", seed)
		}
	}
}
