// Package retransmit restores the paper's eventual-delivery assumption (§2)
// over a lossy wire, at the automaton level: Wrap takes any protocol's
// AutomatonFactory and returns one whose messages travel inside ack'd,
// deduplicated envelopes with seeded exponential resend. Over a network that
// drops each transmission with probability < 1 (internal/sim/adversary.Lossy),
// every payload sent between correct processes is delivered to the inner
// automaton EXACTLY once: resends continue until acknowledged (at-least-once),
// and receiver-side dedup suppresses the duplicates (at-most-once). The loss
// rate thereby becomes a sweepable performance parameter — it costs resends
// and latency — instead of a broken model assumption; E11 in internal/bench
// measures exactly that boundary.
//
// Dedup state is BOUNDED: because each sender incarnation numbers its
// envelopes contiguously from 1 per directed link, the receiver compresses
// every (sender, epoch) stream into a contiguous-seq WATERMARK ("all seqs
// ≤ w settled") plus a sparse set of seqs received above a not-yet-closed
// gap. The sparse set drains into the watermark as gaps close — reordering
// gaps close when the straggler arrives, and gaps whose seqs will never
// arrive (acked to a previous incarnation of a since-restarted receiver)
// close through the Base field every envelope carries (see Data) — so
// per-envelope memory is transient, bounded by the in-flight window rather
// than run length, while the dedup decision stays exactly "was this
// (sender, epoch, link, seq) delivered to this incarnation before".
//
// The wrapper is protocol-agnostic and invisible to the inner automaton: it
// intercepts Send/Broadcast on the step context and the matching Recv calls,
// and passes Init/Tick/Input straight through. Retransmission timing counts
// the automaton's own Tick steps (the paper's local timeout — processes have
// no clock access): an unacked envelope is resent after RTO ticks, then
// 2·RTO, 4·RTO, ... capped at MaxRTO, each resend offset by seeded jitter so
// two senders that lost the same burst do not resend in lockstep forever.
//
// Churn interplay: a process restarted by the kernel (sim.Options.Faults)
// re-runs Init with fresh state, which gives the wrapper a new EPOCH (derived
// from the restart time). Envelope identity is (sender, epoch, link, seq) —
// sequence numbers count contiguously per directed link — so a restarted
// sender's fresh sequence numbers are never confused with its previous
// incarnation's, and in-flight envelopes from the old incarnation deliver at
// most once to whichever incarnation receives them first. A restarted
// RECEIVER starts a fresh dedup ledger: envelopes the sender has seen acked
// (by any incarnation) never reappear — the Base carried in every envelope
// lets the new ledger compact past them immediately — while envelopes still
// unacked at the restart keep being resent until the new incarnation
// delivers and acks them.
//
// Determinism: all jitter comes from a PRNG seeded by (Options.Seed, process,
// epoch), and resend decisions depend only on tick counts — a wrapped run is
// bit-for-bit reproducible like any other kernel run.
package retransmit

import (
	"math/rand"

	"repro/internal/model"
)

// Data is the envelope carrying an inner-protocol payload. Identity is
// (sender, Epoch, Seq) on the receiving link — Seq counts the sender
// incarnation's envelopes to THIS recipient contiguously from 1, which is
// what the receiver's watermark compresses. Receivers ack every copy and
// deliver the payload to the inner automaton once.
//
// Base is the sender's lowest not-yet-acked Seq on this link at transmission
// time: every seq below it has been acknowledged and will NEVER be resent,
// so the receiver can compact its watermark up to Base-1 unconditionally.
// This is what keeps dedup state bounded across RECEIVER restarts — a fresh
// incarnation's first envelope from a surviving sender arrives with a seq
// far above 1, and without Base that bottom gap could never close (the
// missing seqs were acked to the previous incarnation), pinning one sparse
// entry per subsequent envelope forever.
type Data struct {
	Epoch   int64
	Seq     int64
	Base    int64
	Payload any
}

// Ack acknowledges receipt of the sender's (Epoch, Seq) envelope. Acks are
// not themselves ack'd: a lost ack just means the data is resent and ack'd
// again.
type Ack struct {
	Epoch int64
	Seq   int64
}

// Options tune the resend schedule.
type Options struct {
	// RTO is the initial resend timeout in ticks of the wrapped automaton
	// (default 3). Attempt k resends after min(RTO·2^k, MaxRTO) ticks plus
	// jitter in [0, RTO).
	RTO int
	// MaxRTO caps the exponential backoff (default 48 ticks).
	MaxRTO int
	// Seed drives the per-process jitter streams.
	Seed int64
	// GiveUpTicks, when positive, bounds sender-side persistence: an envelope
	// is ABANDONED (dropped from the resend queue, counted by Abandoned)
	// instead of resent once (a) its backoff has reached the MaxRTO cap and
	// (b) the destination link has been silent — no Data and no Ack from that
	// process, in any epoch — for more than GiveUpTicks ticks. Without a
	// bound, a sender's pending set grows forever against a permanently
	// crashed receiver (one entry per subsequent broadcast), which for a
	// long-lived deployable node is a leak.
	//
	// Set GiveUpTicks well above the churn scale of the environment (restart
	// gaps, partition spans): any process that returns within the window
	// keeps the at-least-once guarantee, because its first Data or Ack —
	// stale epochs count — refreshes the link and every still-pending
	// envelope keeps being resent. Zero (the default) disables abandonment
	// entirely, preserving the paper's unconditional eventual delivery — the
	// simulator's experiments and golden tables run in this mode; the
	// deployable service plane (internal/node) enables it.
	GiveUpTicks int
}

func (o Options) withDefaults() Options {
	if o.RTO <= 0 {
		o.RTO = 3
	}
	if o.MaxRTO <= 0 {
		// Unset: default cap, raised to RTO for large initial timeouts.
		o.MaxRTO = 48
		if o.MaxRTO < o.RTO {
			o.MaxRTO = o.RTO
		}
	} else if o.MaxRTO < o.RTO {
		// An EXPLICIT cap below the initial timeout is a configuration the
		// caller chose — honor the cap by clamping the initial timeout down
		// to it. (An earlier revision silently replaced such a cap with
		// max(48, RTO), turning e.g. RTO=100/MaxRTO=50 into a 100-tick cap.)
		o.RTO = o.MaxRTO
	}
	return o
}

// Wrap returns a factory producing inner's automata inside the retransmission
// layer. All processes of a run must be wrapped together (the wrapper speaks
// Data/Ack on the wire); payloads that are not envelopes are handed to the
// inner automaton unchanged, so wrapped and unwrapped processes can coexist
// without retransmission protection between them.
func Wrap(inner model.AutomatonFactory, opts Options) model.AutomatonFactory {
	opts = opts.withDefaults()
	return func(p model.ProcID, n int) model.Automaton {
		return &Automaton{self: p, n: n, opts: opts, inner: inner(p, n)}
	}
}

// srcKey identifies one sender incarnation's envelope stream.
type srcKey struct {
	from  model.ProcID
	epoch int64
}

// dedup is the receiver-side duplicate-suppression state for one (sender,
// epoch) stream. Senders allocate seqs contiguously from 1, so most of the
// seen set is a prefix: watermark w means every seq ≤ w has been delivered,
// and only the seqs received ABOVE a gap sit in the sparse `above` set. A
// delivery that closes the gap advances the watermark through `above`,
// deleting entries as they join the prefix — so the state is bounded by the
// stream's in-flight reordering window, not by run length. (An earlier
// revision kept one map entry per envelope forever, growing without bound
// over long lossy runs; the long-run test pins the new bound.)
type dedup struct {
	watermark int64
	above     map[int64]struct{}
}

// compactTo advances the watermark to at least w (seqs ≤ w are settled and
// will never arrive again — the sender's Base guarantee), dropping any
// sparse entries the new prefix swallows and draining the set as usual.
func (d *dedup) compactTo(w int64) {
	if w <= d.watermark {
		return
	}
	d.watermark = w
	for s := range d.above {
		if s <= w {
			delete(d.above, s)
		}
	}
	d.drain()
}

// drain advances the watermark through contiguous sparse entries, deleting
// them as they join the prefix — the single gap-closing step shared by the
// delivery and compaction paths.
func (d *dedup) drain() {
	for {
		if _, ok := d.above[d.watermark+1]; !ok {
			return
		}
		d.watermark++
		delete(d.above, d.watermark)
	}
}

// seen reports whether seq was already delivered, recording it if not.
func (d *dedup) seen(seq int64) bool {
	if seq <= d.watermark {
		return true
	}
	if _, dup := d.above[seq]; dup {
		return true
	}
	if seq == d.watermark+1 {
		d.watermark = seq
		d.drain()
		return false
	}
	if d.above == nil {
		d.above = make(map[int64]struct{})
	}
	d.above[seq] = struct{}{}
	return false
}

// sparse returns how many seqs are held above the watermark — the part of
// the dedup state that is not compressed into the prefix.
func (d *dedup) sparse() int { return len(d.above) }

// pendKey addresses one unacked envelope: sequence numbers are allocated
// contiguously PER DIRECTED LINK (each recipient sees its own 1, 2, 3, ...
// stream from a sender incarnation), which is what lets the receiver-side
// watermark compress the seen set — a global per-sender counter would leave
// every receiver with permanent gaps (it only receives every n-th seq of a
// broadcast) and nothing to prune.
type pendKey struct {
	to  model.ProcID
	seq int64
}

// pending is one unacked envelope awaiting resend. Envelopes live in the
// resend heap's slab (see heap.go) addressed by slot index; the map exists
// only so an arriving ack can find its envelope. The due tick is carried by
// the heap key, not stored here.
type pending struct {
	to       model.ProcID
	seq      int64
	ord      int64 // global send ordinal; fixes intra-tick resend order
	payload  any
	attempts int
	acked    bool // set by the ack; slot released when its key pops
}

// Automaton is the retransmission wrapper around one inner automaton.
type Automaton struct {
	self  model.ProcID
	n     int
	opts  Options
	inner model.Automaton

	epoch   int64
	seqTo   []int64 // last seq sent per destination link (index to-1)
	baseTo  []int64 // lowest possibly-unacked seq per link (advanced lazily)
	ticks   int64
	rng     *rand.Rand
	pending map[pendKey]int32 // ack lookup: (destination, link seq) → slab slot
	heap    resendHeap        // unacked envelopes keyed by next due tick
	due     []int32           // per-tick scratch: slots due for resend
	sent    int64             // send ordinal counter (see pending.ord)
	seen    map[srcKey]*dedup // per (sender, epoch) watermark + sparse set
	resends int64
	dupes   int64 // duplicate envelopes suppressed by receiver-side dedup

	// Give-up bookkeeping (Options.GiveUpTicks).
	lastHeard []int64 // index q-1: tick of last Data/Ack from q, any epoch
	cappedAt  int     // attempt count at which backoff reaches the MaxRTO cap
	abandoned int64
}

var _ model.Automaton = (*Automaton)(nil)

// Inner returns the wrapped automaton, for post-run inspection.
func (a *Automaton) Inner() model.Automaton { return a.inner }

// Resends returns how many envelope retransmissions this process performed.
func (a *Automaton) Resends() int64 { return a.resends }

// Duplicates returns how many duplicate envelopes receiver-side dedup
// suppressed (cumulative across incarnations). Under a duplicating or
// resend-heavy network this is the at-most-once half of the exactly-once
// guarantee made visible: every copy beyond the first lands here instead of
// in the inner automaton.
func (a *Automaton) Duplicates() int64 { return a.dupes }

// PendingEnvelopes returns how many envelopes are still awaiting an ack.
func (a *Automaton) PendingEnvelopes() int { return len(a.pending) }

// Abandoned returns how many envelopes this process gave up resending under
// Options.GiveUpTicks (cumulative across incarnations, like Resends).
func (a *Automaton) Abandoned() int64 { return a.abandoned }

// DedupSparse returns how many received seqs are held OUTSIDE the contiguous
// per-(sender, epoch) watermark prefixes — the only part of the dedup state
// that occupies per-envelope memory. It is transient reordering state: once
// every gap closes it returns to 0 no matter how many envelopes the run
// carried, which the long-lossy-run test asserts.
func (a *Automaton) DedupSparse() int {
	total := 0
	for _, d := range a.seen {
		total += d.sparse()
	}
	return total
}

// DedupStreams returns how many (sender, epoch) streams the receiver tracks —
// bounded by n plus the restarts observed, never by traffic volume.
func (a *Automaton) DedupStreams() int { return len(a.seen) }

// Init implements model.Automaton. The step time identifies the incarnation:
// first boot runs at time 0, kernel restarts run at the restart instant, so
// epochs are distinct per incarnation and deterministic.
func (a *Automaton) Init(ctx model.Context) {
	a.epoch = int64(ctx.Now())
	a.seqTo = make([]int64, a.n)
	a.baseTo = make([]int64, a.n)
	for i := range a.baseTo {
		a.baseTo[i] = 1
	}
	a.ticks = 0
	a.rng = rand.New(rand.NewSource(a.opts.Seed*1_000_003 + int64(a.self)*7919 + a.epoch))
	a.pending = make(map[pendKey]int32)
	a.heap.reset()
	a.sent = 0
	a.seen = make(map[srcKey]*dedup)
	a.lastHeard = make([]int64, a.n)
	a.cappedAt = 0
	for d := int64(a.opts.RTO); d < int64(a.opts.MaxRTO); d *= 2 {
		a.cappedAt++
	}
	a.inner.Init(&wrapCtx{ctx: ctx, a: a})
}

// Input implements model.Automaton.
func (a *Automaton) Input(ctx model.Context, in any) {
	a.inner.Input(&wrapCtx{ctx: ctx, a: a}, in)
}

// Recv implements model.Automaton.
func (a *Automaton) Recv(ctx model.Context, from model.ProcID, payload any) {
	switch m := payload.(type) {
	case Data:
		a.heard(from)
		// Always ack — the previous ack may have been the lost message.
		ctx.Send(from, Ack{Epoch: m.Epoch, Seq: m.Seq})
		key := srcKey{from: from, epoch: m.Epoch}
		d := a.seen[key]
		if d == nil {
			d = &dedup{}
			a.seen[key] = d
		}
		d.compactTo(m.Base - 1)
		if d.seen(m.Seq) {
			a.dupes++
			return
		}
		a.inner.Recv(&wrapCtx{ctx: ctx, a: a}, from, m.Payload)
	case Ack:
		a.heard(from)
		if m.Epoch == a.epoch {
			key := pendKey{to: from, seq: m.Seq}
			if slot, ok := a.pending[key]; ok {
				pd := &a.heap.slots[slot]
				pd.acked = true
				pd.payload = nil // settled: release the protocol data now
				delete(a.pending, key)
			}
		}
	default:
		// Unwrapped payload (a peer outside the retransmission layer).
		a.inner.Recv(&wrapCtx{ctx: ctx, a: a}, from, payload)
	}
}

// Tick implements model.Automaton: resend overdue envelopes, then tick the
// inner automaton.
func (a *Automaton) Tick(ctx model.Context) {
	a.ticks++
	if a.heap.len() > 0 && a.heap.peekDue() <= a.ticks {
		a.resendDue(ctx)
	}
	a.inner.Tick(&wrapCtx{ctx: ctx, a: a})
}

// resendDue pops every envelope whose due tick has arrived, discards settled
// ones, and resends the rest in send (ord) order — the order the old linear
// scan produced, which pins the seeded jitter stream and hence the golden
// tables. Resent envelopes re-queue at their next backoff; abandoned ones
// (see Options.GiveUpTicks) leave the pending set entirely, which also lets
// linkBase advance past them so receivers compact the corresponding seqs.
func (a *Automaton) resendDue(ctx model.Context) {
	h := &a.heap
	a.due = a.due[:0]
	for h.len() > 0 && h.peekDue() <= a.ticks {
		k := h.pop()
		if h.slots[k.slot].acked {
			h.release(k.slot)
			continue
		}
		a.due = append(a.due, k.slot)
	}
	// Insertion sort by ord: popped order is (due, ord), resend order must be
	// ord alone. The due set is small (one backoff cohort), so this beats a
	// sort.Slice allocation per tick.
	for i := 1; i < len(a.due); i++ {
		s := a.due[i]
		o := h.slots[s].ord
		j := i - 1
		for j >= 0 && h.slots[a.due[j]].ord > o {
			a.due[j+1] = a.due[j]
			j--
		}
		a.due[j+1] = s
	}
	for _, s := range a.due {
		pd := &h.slots[s]
		if a.opts.GiveUpTicks > 0 && pd.attempts >= a.cappedAt &&
			a.ticks-a.lastHeard[pd.to-1] > int64(a.opts.GiveUpTicks) {
			a.abandoned++
			delete(a.pending, pendKey{to: pd.to, seq: pd.seq})
			h.release(s)
			continue
		}
		a.resends++
		ctx.Send(pd.to, Data{Epoch: a.epoch, Seq: pd.seq, Base: a.linkBase(pd.to), Payload: pd.payload})
		pd.attempts++
		h.push(a.ticks+a.backoff(pd.attempts), pd.ord, s)
	}
}

// heard records link liveness for the give-up bound: any Data or Ack from q —
// stale epochs included — proves the process is back.
func (a *Automaton) heard(from model.ProcID) {
	if from >= 1 && int(from) <= a.n {
		a.lastHeard[from-1] = a.ticks
	}
}

// backoff returns the tick delay before resend attempt k (1-based): an
// exponential min(RTO·2^k, MaxRTO) plus seeded jitter in [0, RTO).
func (a *Automaton) backoff(attempts int) int64 {
	d := int64(a.opts.RTO)
	for i := 0; i < attempts && d < int64(a.opts.MaxRTO); i++ {
		d *= 2
	}
	if d > int64(a.opts.MaxRTO) {
		d = int64(a.opts.MaxRTO)
	}
	return d + a.rng.Int63n(int64(a.opts.RTO))
}

// linkBase returns the lowest seq on the link to `to` that may still be
// unacked, advancing the cached floor past acked seqs lazily — each seq is
// crossed at most once over its lifetime, so the scan is amortized O(1) per
// envelope.
func (a *Automaton) linkBase(to model.ProcID) int64 {
	b := a.baseTo[to-1]
	for b <= a.seqTo[to-1] {
		if _, unacked := a.pending[pendKey{to: to, seq: b}]; unacked {
			break
		}
		b++
	}
	a.baseTo[to-1] = b
	return b
}

// sendData wraps one inner-protocol payload and registers it for resend. The
// sequence number is drawn from the destination link's own contiguous
// counter (see pendKey).
func (a *Automaton) sendData(ctx model.Context, to model.ProcID, payload any) {
	a.seqTo[to-1]++
	a.sent++
	slot := a.heap.alloc()
	pd := &a.heap.slots[slot]
	*pd = pending{to: to, seq: a.seqTo[to-1], ord: a.sent, payload: payload}
	due := a.ticks + a.backoff(0)
	a.pending[pendKey{to: to, seq: pd.seq}] = slot
	a.heap.push(due, pd.ord, slot)
	ctx.Send(to, Data{Epoch: a.epoch, Seq: pd.seq, Base: a.linkBase(to), Payload: payload})
}

// wrapCtx intercepts the inner automaton's sends; everything else passes
// through to the kernel's context.
type wrapCtx struct {
	ctx model.Context
	a   *Automaton
}

var _ model.Context = (*wrapCtx)(nil)

func (c *wrapCtx) Self() model.ProcID { return c.ctx.Self() }
func (c *wrapCtx) N() int             { return c.ctx.N() }
func (c *wrapCtx) Now() model.Time    { return c.ctx.Now() }
func (c *wrapCtx) FD() any            { return c.ctx.FD() }
func (c *wrapCtx) Output(v any)       { c.ctx.Output(v) }

func (c *wrapCtx) Send(to model.ProcID, payload any) {
	c.a.sendData(c.ctx, to, payload)
}

func (c *wrapCtx) Broadcast(payload any) {
	// The paper's broadcast is n sends (including self); each gets its own
	// envelope so acks and resends are per-recipient.
	for _, q := range model.Procs(c.a.n) {
		c.a.sendData(c.ctx, q, payload)
	}
}
