// Package retransmit restores the paper's eventual-delivery assumption (§2)
// over a lossy wire, at the automaton level: Wrap takes any protocol's
// AutomatonFactory and returns one whose messages travel inside ack'd,
// deduplicated envelopes with seeded exponential resend. Over a network that
// drops each transmission with probability < 1 (internal/sim/adversary.Lossy),
// every payload sent between correct processes is delivered to the inner
// automaton EXACTLY once: resends continue until acknowledged (at-least-once),
// and receiver-side dedup suppresses the duplicates (at-most-once). The loss
// rate thereby becomes a sweepable performance parameter — it costs resends
// and latency — instead of a broken model assumption; E11 in internal/bench
// measures exactly that boundary.
//
// The wrapper is protocol-agnostic and invisible to the inner automaton: it
// intercepts Send/Broadcast on the step context and the matching Recv calls,
// and passes Init/Tick/Input straight through. Retransmission timing counts
// the automaton's own Tick steps (the paper's local timeout — processes have
// no clock access): an unacked envelope is resent after RTO ticks, then
// 2·RTO, 4·RTO, ... capped at MaxRTO, each resend offset by seeded jitter so
// two senders that lost the same burst do not resend in lockstep forever.
//
// Churn interplay: a process restarted by the kernel (sim.Options.Faults)
// re-runs Init with fresh state, which gives the wrapper a new EPOCH (derived
// from the restart time). Envelope identity is (sender, epoch, seq), so a
// restarted sender's fresh sequence numbers are never confused with its
// previous incarnation's, and in-flight envelopes from the old incarnation
// deliver at most once to whichever incarnation receives them first.
//
// Determinism: all jitter comes from a PRNG seeded by (Options.Seed, process,
// epoch), and resend decisions depend only on tick counts — a wrapped run is
// bit-for-bit reproducible like any other kernel run.
package retransmit

import (
	"math/rand"

	"repro/internal/model"
)

// Data is the envelope carrying an inner-protocol payload. Identity is
// (sender, Epoch, Seq); receivers ack every copy and deliver the payload to
// the inner automaton once.
type Data struct {
	Epoch   int64
	Seq     int64
	Payload any
}

// Ack acknowledges receipt of the sender's (Epoch, Seq) envelope. Acks are
// not themselves ack'd: a lost ack just means the data is resent and ack'd
// again.
type Ack struct {
	Epoch int64
	Seq   int64
}

// Options tune the resend schedule.
type Options struct {
	// RTO is the initial resend timeout in ticks of the wrapped automaton
	// (default 3). Attempt k resends after min(RTO·2^k, MaxRTO) ticks plus
	// jitter in [0, RTO).
	RTO int
	// MaxRTO caps the exponential backoff (default 48 ticks).
	MaxRTO int
	// Seed drives the per-process jitter streams.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.RTO <= 0 {
		o.RTO = 3
	}
	if o.MaxRTO < o.RTO {
		o.MaxRTO = 48
		if o.MaxRTO < o.RTO {
			o.MaxRTO = o.RTO
		}
	}
	return o
}

// Wrap returns a factory producing inner's automata inside the retransmission
// layer. All processes of a run must be wrapped together (the wrapper speaks
// Data/Ack on the wire); payloads that are not envelopes are handed to the
// inner automaton unchanged, so wrapped and unwrapped processes can coexist
// without retransmission protection between them.
func Wrap(inner model.AutomatonFactory, opts Options) model.AutomatonFactory {
	opts = opts.withDefaults()
	return func(p model.ProcID, n int) model.Automaton {
		return &Automaton{self: p, n: n, opts: opts, inner: inner(p, n)}
	}
}

// dedupKey identifies one envelope across resends.
type dedupKey struct {
	from  model.ProcID
	epoch int64
	seq   int64
}

// pending is one unacked envelope awaiting resend.
type pending struct {
	to       model.ProcID
	payload  any
	attempts int
	dueTick  int64 // resend when the local tick counter reaches this
}

// Automaton is the retransmission wrapper around one inner automaton.
type Automaton struct {
	self  model.ProcID
	n     int
	opts  Options
	inner model.Automaton

	epoch   int64
	seq     int64
	ticks   int64
	rng     *rand.Rand
	pending map[int64]*pending // by seq
	order   []int64            // pending seqs in send order (acked ones skipped)
	seen    map[dedupKey]struct{}
	resends int64
}

var _ model.Automaton = (*Automaton)(nil)

// Inner returns the wrapped automaton, for post-run inspection.
func (a *Automaton) Inner() model.Automaton { return a.inner }

// Resends returns how many envelope retransmissions this process performed.
func (a *Automaton) Resends() int64 { return a.resends }

// PendingEnvelopes returns how many envelopes are still awaiting an ack.
func (a *Automaton) PendingEnvelopes() int { return len(a.pending) }

// Init implements model.Automaton. The step time identifies the incarnation:
// first boot runs at time 0, kernel restarts run at the restart instant, so
// epochs are distinct per incarnation and deterministic.
func (a *Automaton) Init(ctx model.Context) {
	a.epoch = int64(ctx.Now())
	a.seq = 0
	a.ticks = 0
	a.rng = rand.New(rand.NewSource(a.opts.Seed*1_000_003 + int64(a.self)*7919 + a.epoch))
	a.pending = make(map[int64]*pending)
	a.order = a.order[:0]
	a.seen = make(map[dedupKey]struct{})
	a.inner.Init(&wrapCtx{ctx: ctx, a: a})
}

// Input implements model.Automaton.
func (a *Automaton) Input(ctx model.Context, in any) {
	a.inner.Input(&wrapCtx{ctx: ctx, a: a}, in)
}

// Recv implements model.Automaton.
func (a *Automaton) Recv(ctx model.Context, from model.ProcID, payload any) {
	switch m := payload.(type) {
	case Data:
		// Always ack — the previous ack may have been the lost message.
		ctx.Send(from, Ack{Epoch: m.Epoch, Seq: m.Seq})
		key := dedupKey{from: from, epoch: m.Epoch, seq: m.Seq}
		if _, dup := a.seen[key]; dup {
			return
		}
		a.seen[key] = struct{}{}
		a.inner.Recv(&wrapCtx{ctx: ctx, a: a}, from, m.Payload)
	case Ack:
		if m.Epoch == a.epoch {
			delete(a.pending, m.Seq)
		}
	default:
		// Unwrapped payload (a peer outside the retransmission layer).
		a.inner.Recv(&wrapCtx{ctx: ctx, a: a}, from, payload)
	}
}

// Tick implements model.Automaton: resend overdue envelopes, then tick the
// inner automaton.
func (a *Automaton) Tick(ctx model.Context) {
	a.ticks++
	if len(a.pending) > 0 {
		live := a.order[:0]
		for _, seq := range a.order {
			pd, ok := a.pending[seq]
			if !ok {
				continue // acked; drop from the order while compacting
			}
			live = append(live, seq)
			if a.ticks < pd.dueTick {
				continue
			}
			a.resends++
			ctx.Send(pd.to, Data{Epoch: a.epoch, Seq: seq, Payload: pd.payload})
			pd.attempts++
			pd.dueTick = a.ticks + a.backoff(pd.attempts)
		}
		a.order = live
	} else {
		a.order = a.order[:0]
	}
	a.inner.Tick(&wrapCtx{ctx: ctx, a: a})
}

// backoff returns the tick delay before resend attempt k (1-based): an
// exponential min(RTO·2^k, MaxRTO) plus seeded jitter in [0, RTO).
func (a *Automaton) backoff(attempts int) int64 {
	d := int64(a.opts.RTO)
	for i := 0; i < attempts && d < int64(a.opts.MaxRTO); i++ {
		d *= 2
	}
	if d > int64(a.opts.MaxRTO) {
		d = int64(a.opts.MaxRTO)
	}
	return d + a.rng.Int63n(int64(a.opts.RTO))
}

// sendData wraps one inner-protocol payload and registers it for resend.
func (a *Automaton) sendData(ctx model.Context, to model.ProcID, payload any) {
	a.seq++
	seq := a.seq
	a.pending[seq] = &pending{to: to, payload: payload, dueTick: a.ticks + a.backoff(0)}
	a.order = append(a.order, seq)
	ctx.Send(to, Data{Epoch: a.epoch, Seq: seq, Payload: payload})
}

// wrapCtx intercepts the inner automaton's sends; everything else passes
// through to the kernel's context.
type wrapCtx struct {
	ctx model.Context
	a   *Automaton
}

var _ model.Context = (*wrapCtx)(nil)

func (c *wrapCtx) Self() model.ProcID { return c.ctx.Self() }
func (c *wrapCtx) N() int             { return c.ctx.N() }
func (c *wrapCtx) Now() model.Time    { return c.ctx.Now() }
func (c *wrapCtx) FD() any            { return c.ctx.FD() }
func (c *wrapCtx) Output(v any)       { c.ctx.Output(v) }

func (c *wrapCtx) Send(to model.ProcID, payload any) {
	c.a.sendData(c.ctx, to, payload)
}

func (c *wrapCtx) Broadcast(payload any) {
	// The paper's broadcast is n sends (including self); each gets its own
	// envelope so acks and resends are per-recipient.
	for _, q := range model.Procs(c.a.n) {
		c.a.sendData(c.ctx, q, payload)
	}
}
