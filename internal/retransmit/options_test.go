package retransmit

import "testing"

// TestOptionsWithDefaults pins the resend-schedule defaulting, in particular
// the explicit-cap rule: MaxRTO set below RTO clamps RTO down to the cap
// instead of silently discarding the cap.
func TestOptionsWithDefaults(t *testing.T) {
	for _, tc := range []struct {
		name             string
		in               Options
		wantRTO, wantMax int
	}{
		{"zero value", Options{}, 3, 48},
		{"rto only, below default cap", Options{RTO: 10}, 10, 48},
		{"rto only, above default cap", Options{RTO: 100}, 100, 100},
		{"explicit cap above rto", Options{RTO: 3, MaxRTO: 200}, 3, 200},
		{"explicit cap equals rto", Options{RTO: 7, MaxRTO: 7}, 7, 7},
		{"explicit cap below rto clamps rto", Options{RTO: 100, MaxRTO: 50}, 50, 50},
		{"explicit cap below default rto", Options{MaxRTO: 2}, 2, 2},
	} {
		got := tc.in.withDefaults()
		if got.RTO != tc.wantRTO || got.MaxRTO != tc.wantMax {
			t.Errorf("%s: withDefaults(%+v) = RTO %d / MaxRTO %d, want %d / %d",
				tc.name, tc.in, got.RTO, got.MaxRTO, tc.wantRTO, tc.wantMax)
		}
	}
}

// TestDedupWatermark exercises the per-stream compression directly: out of
// order arrivals park above the watermark, a gap-closing arrival drains them
// into the prefix, and duplicates are recognized on both sides of the line.
func TestDedupWatermark(t *testing.T) {
	var d dedup
	deliver := func(seq int64, wantDup bool) {
		t.Helper()
		if got := d.seen(seq); got != wantDup {
			t.Errorf("seen(%d) = %v, want %v (watermark %d, sparse %d)", seq, got, wantDup, d.watermark, d.sparse())
		}
	}
	deliver(1, false)
	deliver(1, true) // duplicate inside the prefix
	deliver(3, false)
	deliver(5, false)
	deliver(3, true) // duplicate above the watermark
	if d.watermark != 1 || d.sparse() != 2 {
		t.Fatalf("watermark %d sparse %d, want 1 and 2 before the gap closes", d.watermark, d.sparse())
	}
	deliver(2, false) // closes the gap: 3 joins, then the 4-gap stops the drain
	if d.watermark != 3 || d.sparse() != 1 {
		t.Fatalf("watermark %d sparse %d, want 3 and 1 after draining", d.watermark, d.sparse())
	}
	deliver(4, false) // closes the rest: 5 drains too
	if d.watermark != 5 || d.sparse() != 0 {
		t.Fatalf("watermark %d sparse %d, want 5 and 0 when contiguous", d.watermark, d.sparse())
	}
	deliver(5, true)
	deliver(6, false)
	if d.watermark != 6 || d.sparse() != 0 {
		t.Fatalf("watermark %d sparse %d, want 6 and 0", d.watermark, d.sparse())
	}
}
