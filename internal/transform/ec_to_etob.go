package transform

import (
	"repro/internal/model"
)

// PushMsg is the push(m) message of Algorithm 1: the raw dissemination of a
// broadcast message to every process.
type PushMsg struct {
	ID string
}

// ECToETOB is Algorithm 1, T_EC→ETOB: it implements ETOB given any EC
// implementation. Per process p_i it keeps the output sequence d_i, the set
// toDeliver_i of all messages received so far, and the instance counter
// count_i, and runs the loop
//
//	On broadcastETOB(m):            Send push(m) to all
//	On reception of push(m):        toDeliver_i := toDeliver_i ∪ {m}
//	On response d of proposeEC_ℓ:   d_i := d; count_i++;
//	                                proposeEC_count(d_i · NewBatch(d_i, toDeliver_i))
//	On local timeout:               if count_i = 0 then count_i := 1;
//	                                proposeEC_1(NewBatch(d_i, toDeliver_i))
//
// Note Algorithm 1 provides no causal-order guarantee (that is Algorithm 5's
// extra property); the Deps argument of BroadcastETOB is accepted and ignored.
type ECToETOB struct {
	self  model.ProcID
	n     int
	inner ECProtocol

	d         []string        // d_i
	toDeliver []string        // toDeliver_i in arrival order (deterministic NewBatch)
	inSet     map[string]bool // membership index for toDeliver_i
	count     int             // count_i
}

var (
	_ model.Automaton = (*ECToETOB)(nil)
	_ ETOBProtocol    = (*ECToETOB)(nil)
)

const layerECToETOB = "ec->etob"

// NewECToETOB wraps an EC implementation into an ETOB implementation.
func NewECToETOB(p model.ProcID, n int, inner ECProtocol) *ECToETOB {
	return &ECToETOB{self: p, n: n, inner: inner, inSet: make(map[string]bool)}
}

// ECToETOBFactory builds the transformation over a fresh inner EC instance
// per process.
func ECToETOBFactory(innerFactory func(p model.ProcID, n int) ECProtocol) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton {
		return NewECToETOB(p, n, innerFactory(p, n))
	}
}

func (a *ECToETOB) ctx(outer model.Context) innerCtx {
	return innerCtx{outer: outer, layer: layerECToETOB, onOutput: a.onInnerOutput}
}

// Init implements model.Automaton.
func (a *ECToETOB) Init(ctx model.Context) { a.inner.Init(a.ctx(ctx)) }

// Input implements model.Automaton: model.BroadcastInput is broadcastETOB(m).
func (a *ECToETOB) Input(ctx model.Context, in any) {
	b, ok := in.(model.BroadcastInput)
	if !ok {
		return
	}
	a.BroadcastETOB(ctx, b.ID, b.Deps)
}

// BroadcastETOB implements ETOBProtocol. Deps are ignored (see type comment).
func (a *ECToETOB) BroadcastETOB(ctx model.Context, id string, _ []string) {
	ctx.Broadcast(PushMsg{ID: id})
}

// Recv implements model.Automaton.
func (a *ECToETOB) Recv(ctx model.Context, from model.ProcID, payload any) {
	switch m := payload.(type) {
	case PushMsg:
		if !a.inSet[m.ID] {
			a.inSet[m.ID] = true
			a.toDeliver = append(a.toDeliver, m.ID)
		}
	case wrapped:
		if m.Layer == layerECToETOB {
			a.inner.Recv(a.ctx(ctx), from, m.Inner)
		}
	}
}

// Tick implements model.Automaton.
func (a *ECToETOB) Tick(ctx model.Context) {
	a.inner.Tick(a.ctx(ctx))
	if a.count == 0 {
		a.count = 1
		a.inner.Propose(a.ctx(ctx), 1, encodeSeq(a.newBatch()))
	}
}

// onInnerOutput handles responses from the inner EC ("On reception of d as
// response of proposeEC_ℓ").
func (a *ECToETOB) onInnerOutput(outer model.Context, v any) {
	dec, ok := v.(model.Decision)
	if !ok || dec.Instance != a.count {
		return // not a response to our pending invocation
	}
	d := decodeSeq(dec.Value)
	if !equalSeq(a.d, d) {
		a.d = d
		outer.Output(model.SeqSnapshot{Seq: a.d})
	}
	a.count++
	next := append(append([]string(nil), a.d...), a.newBatch()...)
	a.inner.Propose(a.ctx(outer), a.count, encodeSeq(next))
}

// newBatch is the paper's NewBatch(d_i, toDeliver_i): all received messages
// not yet in d_i, in deterministic arrival order, each exactly once.
func (a *ECToETOB) newBatch() []string {
	inD := make(map[string]bool, len(a.d))
	for _, id := range a.d {
		inD[id] = true
	}
	var out []string
	for _, id := range a.toDeliver {
		if !inD[id] {
			out = append(out, id)
		}
	}
	return out
}

// Delivered returns a copy of the current d_i (for inspection).
func (a *ECToETOB) Delivered() []string { return append([]string(nil), a.d...) }

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
