package transform

import (
	"fmt"
	"testing"

	"repro/internal/ec"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func ecInner(p model.ProcID, n int) ECProtocol     { return ec.New(p, n) }
func etobInner(p model.ProcID, n int) ETOBProtocol { return etob.New(p, n) }

func driver(p model.ProcID, inst int) (string, bool) {
	return fmt.Sprintf("v/%v/%d", p, inst), true
}

// runUntilDecided runs the kernel until every correct process has decided
// instances 1..want but not before minTime (so divergence windows are
// exercised), then lets the run settle for the given extra window.
func runUntilDecided(k *sim.Kernel, rec *trace.Recorder, correct []model.ProcID,
	want int, minTime, horizon, settle model.Time) {
	k.RunUntil(horizon, func(k *sim.Kernel) bool {
		return k.Now() >= minTime && rec.AllDecided(correct, want)
	})
	k.Run(k.Now() + settle)
}

func TestCodecRoundtrip(t *testing.T) {
	cases := [][]string{nil, {"a"}, {"a", "b", "c"}, {"p1#1", "p2#9"}}
	for _, seq := range cases {
		got := decodeSeq(encodeSeq(seq))
		if len(got) != len(seq) {
			t.Fatalf("roundtrip %v -> %v", seq, got)
		}
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("roundtrip %v -> %v", seq, got)
			}
		}
	}
}

func TestPairCodec(t *testing.T) {
	id := encodePair(7, "hello", 3, 12)
	l, v, ok := decodePair(id)
	if !ok || l != 7 || v != "hello" {
		t.Fatalf("decodePair(%q) = %d,%q,%v", id, l, v, ok)
	}
	if _, _, ok := decodePair("plain-message"); ok {
		t.Error("foreign IDs must not decode")
	}
	// Distinct broadcasts must produce distinct IDs.
	if encodePair(1, "x", 2, 1) == encodePair(1, "x", 2, 2) {
		t.Error("sequence number must uniquify IDs")
	}
}

// --- Theorem 1, direction 1: Algorithm 1 (EC→ETOB) over Algorithm 4. ---

func TestECToETOBImplementsETOB(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaEventual(fp, 1, 600)
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, ECToETOBFactory(ecInner), sim.Options{Seed: 21})
	k.SetObserver(rec)
	var ids []string
	for i := 0; i < 4; i++ {
		for _, p := range model.Procs(3) {
			id := fmt.Sprintf("p%d#%d", p, i+1)
			ids = append(ids, id)
			k.ScheduleInput(p, model.Time(30+40*i)+model.Time(p), model.BroadcastInput{ID: id})
		}
	}
	k.RunUntil(15000, func(k *sim.Kernel) bool {
		return k.Now() > 800 && rec.AllDelivered(fp.Correct(), ids)
	})
	settleAt := k.Now()
	k.Run(settleAt + 1000)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{InputCutoff: 2000, SettleTime: settleAt})
	if !rep.OK() {
		t.Fatalf("T_EC→ETOB violates ETOB: %+v", rep)
	}
	for _, p := range fp.Correct() {
		if got := len(rec.FinalSeq(p)); got != 12 {
			t.Errorf("%v delivered %d, want 12", p, got)
		}
	}
	t.Logf("τ = %d", rep.Tau)
}

func TestECToETOBWithCrash(t *testing.T) {
	fp := model.NewFailurePattern(4)
	fp.Crash(4, 700)
	det := fd.NewOmegaEventual(fp, 2, 900)
	rec := trace.NewRecorder(4)
	k := sim.New(fp, det, ECToETOBFactory(ecInner), sim.Options{Seed: 8})
	k.SetObserver(rec)
	var ids []string
	for _, p := range model.Procs(4) {
		id := fmt.Sprintf("m%d", p)
		ids = append(ids, id)
		k.ScheduleInput(p, model.Time(50+int(p)), model.BroadcastInput{ID: id})
	}
	k.RunUntil(15000, func(k *sim.Kernel) bool {
		return k.Now() > 1200 && rec.AllDelivered(fp.Correct(), ids)
	})
	settleAt := k.Now()
	k.Run(settleAt + 1000)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{InputCutoff: 600, SettleTime: settleAt})
	if !rep.OK() {
		t.Fatalf("with a crash: %+v", rep)
	}
}

// --- Theorem 1, direction 2: Algorithm 2 (ETOB→EC) over Algorithm 5. ---

func TestETOBToECImplementsEC(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaEventual(fp, 1, 500)
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, ETOBToECFactory(etobInner, driver), sim.Options{Seed: 33})
	k.SetObserver(rec)
	runUntilDecided(k, rec, fp.Correct(), 5, 1500, 30000, 200)
	rep := trace.CheckEC(rec, fp.Correct(), 5)
	if !rep.OK() {
		t.Fatalf("T_ETOB→EC violates EC: %+v", rep)
	}
	t.Logf("AgreementK = %d, MaxInstance = %d", rep.AgreementK, rep.MaxInstance)
}

func TestETOBToECStableLeader(t *testing.T) {
	fp := model.NewFailurePattern(4)
	det := fd.NewOmegaStable(fp, 3)
	rec := trace.NewRecorder(4)
	k := sim.New(fp, det, ETOBToECFactory(etobInner, driver), sim.Options{Seed: 14})
	k.SetObserver(rec)
	runUntilDecided(k, rec, fp.Correct(), 5, 0, 20000, 200)
	rep := trace.CheckEC(rec, fp.Correct(), 5)
	if !rep.OK() {
		t.Fatalf("EC over stable-leader ETOB: %+v", rep)
	}
	if rep.AgreementK != 1 {
		t.Errorf("AgreementK = %d, want 1 under a stable leader", rep.AgreementK)
	}
}

// --- Roundtrip: EC → ETOB → EC (Algorithms 2 ∘ 1 over Algorithm 4). ---

func TestRoundtripECToETOBToEC(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaEventual(fp, 1, 400)
	rec := trace.NewRecorder(3)
	factory := ETOBToECFactory(func(p model.ProcID, n int) ETOBProtocol {
		return NewECToETOB(p, n, ec.New(p, n))
	}, driver)
	k := sim.New(fp, det, factory, sim.Options{Seed: 55})
	k.SetObserver(rec)
	runUntilDecided(k, rec, fp.Correct(), 3, 1200, 60000, 200)
	rep := trace.CheckEC(rec, fp.Correct(), 3)
	if !rep.OK() {
		t.Fatalf("EC→ETOB→EC roundtrip violates EC: %+v", rep)
	}
	t.Logf("roundtrip AgreementK = %d, MaxInstance = %d", rep.AgreementK, rep.MaxInstance)
}

// --- Appendix A: Algorithm 6 (EC→EIC) and Algorithm 7 (EIC→EC). ---

func TestECToEICImplementsEIC(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaEventual(fp, 1, 800) // divergence → revocations pre-stabilization
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, ECToEICFactory(ecInner, Driver(driver)), sim.Options{Seed: 71})
	k.SetObserver(rec)
	runUntilDecided(k, rec, fp.Correct(), 5, 2500, 25000, 200)
	rep := trace.CheckEIC(rec, fp.Correct(), 5)
	if !rep.OK() {
		t.Fatalf("T_EC→EIC violates EIC: %+v", rep)
	}
	t.Logf("IntegrityK = %d, MaxInstance = %d", rep.IntegrityK, rep.MaxInstance)
}

func TestECToEICRevokesDuringDivergence(t *testing.T) {
	// With self-trust until t=1200, early decisions differ across processes
	// and must be revoked after stabilization: some process responds twice to
	// some early instance.
	fp := model.NewFailurePattern(4)
	det := fd.NewOmegaEventual(fp, 2, 1200)
	rec := trace.NewRecorder(4)
	k := sim.New(fp, det, ECToEICFactory(ecInner, Driver(driver)), sim.Options{Seed: 5})
	k.SetObserver(rec)
	runUntilDecided(k, rec, fp.Correct(), 5, 3500, 30000, 200)
	rep := trace.CheckEIC(rec, fp.Correct(), 5)
	if !rep.OK() {
		t.Fatalf("EIC spec: %+v", rep)
	}
	revoked := false
	for _, p := range model.Procs(4) {
		counts := map[int]int{}
		for _, d := range rec.Decisions(p) {
			counts[d.Instance]++
			if counts[d.Instance] > 1 {
				revoked = true
			}
		}
	}
	if !revoked {
		t.Error("expected at least one revocation during the divergence window")
	}
	if rep.IntegrityK <= 1 {
		t.Errorf("IntegrityK = %d, want > 1 when revocations occurred", rep.IntegrityK)
	}
}

func TestRoundtripECToEICToEC(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaEventual(fp, 1, 500)
	rec := trace.NewRecorder(3)
	factory := EICToECFactory(func(p model.ProcID, n int) EICProtocol {
		return NewECToEIC(p, n, ec.New(p, n))
	}, driver)
	k := sim.New(fp, det, factory, sim.Options{Seed: 91})
	k.SetObserver(rec)
	runUntilDecided(k, rec, fp.Correct(), 5, 1500, 30000, 200)
	rep := trace.CheckEC(rec, fp.Correct(), 5)
	if !rep.OK() {
		t.Fatalf("EC→EIC→EC roundtrip violates EC: %+v", rep)
	}
	t.Logf("roundtrip AgreementK = %d", rep.AgreementK)
}

func TestEICToECManualPropose(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	rec := trace.NewRecorder(3)
	factory := EICToECFactory(func(p model.ProcID, n int) EICProtocol {
		return NewECToEIC(p, n, ec.New(p, n))
	}, nil)
	k := sim.New(fp, det, factory, sim.Options{Seed: 2})
	k.SetObserver(rec)
	for _, p := range model.Procs(3) {
		k.ScheduleInput(p, 10, model.ProposeInput{Instance: 1, Value: fmt.Sprintf("z%v", p)})
	}
	runUntilDecided(k, rec, fp.Correct(), 1, 0, 5000, 100)
	rep := trace.CheckEC(rec, fp.Correct(), 1)
	if !rep.OK() {
		t.Fatalf("manual EIC→EC: %+v", rep)
	}
	for _, p := range fp.Correct() {
		ds := rec.Decisions(p)
		if len(ds) != 1 || ds[0].Value != "zp1" {
			t.Fatalf("%v decided %+v, want zp1 once", p, ds)
		}
	}
}

func TestECToETOBNewBatchExcludesDelivered(t *testing.T) {
	a := NewECToETOB(1, 2, ec.New(1, 2))
	a.inSet["a"], a.inSet["b"], a.inSet["c"] = true, true, true
	a.toDeliver = []string{"a", "b", "c"}
	a.d = []string{"b"}
	got := a.newBatch()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("newBatch = %v, want [a c]", got)
	}
}

func TestForeignInputsIgnored(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	k := sim.New(fp, det, ECToETOBFactory(ecInner), sim.Options{Seed: 1})
	k.ScheduleInput(1, 5, 12345) // not a BroadcastInput
	k.Run(200)                   // must not panic
	k2 := sim.New(fp, det, ETOBToECFactory(etobInner, nil), sim.Options{Seed: 1})
	k2.ScheduleInput(1, 5, "nope")
	k2.Run(200)
	k3 := sim.New(fp, det, ECToEICFactory(ecInner, nil), sim.Options{Seed: 1})
	k3.ScheduleInput(1, 5, 3.14)
	k3.Run(200)
}
