package transform

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
)

// ETOBToEC is Algorithm 2, T_ETOB→EC: it implements EC given any ETOB
// implementation. On proposeEC_ℓ(v), the process ETOB-broadcasts the pair
// (ℓ, v); on its local timeout it returns First(count_i) — the value of the
// first message of the form (count_i, ∗) in d_i — as the response to
// proposeEC_count, once such a message has been delivered.
type ETOBToEC struct {
	self  model.ProcID
	n     int
	inner ETOBProtocol

	count   int          // count_i
	d       []string     // mirror of the inner protocol's d_i
	decided map[int]bool // instances already responded to
	bseq    int          // per-process uniquifier for broadcast IDs
	driver  Driver       // optional closed-loop proposer

	// First(ℓ) cache. d_i changes only when the inner protocol emits a new
	// snapshot, but the local timeout polls First every tick; scanning (and
	// pair-decoding) the whole sequence per tick dominated the transformation
	// stacks. firstKnown memoizes First per instance for the CURRENT d_i,
	// filled by a single forward scan (scanned = resume point) that restarts
	// when d_i is replaced; pairMemo caches decodePair per message ID, which
	// is stable across snapshots.
	firstKnown map[int]string
	scanned    int
	pairMemo   map[string]pairVal
}

type pairVal struct {
	inst int
	val  string
	ok   bool
}

// Driver supplies the next proposal in closed-loop runs, mirroring ec.Driver
// (kept separate so this package does not depend on internal/ec).
type Driver func(p model.ProcID, instance int) (value string, ok bool)

var (
	_ model.Automaton = (*ETOBToEC)(nil)
	_ ECProtocol      = (*ETOBToEC)(nil)
)

const layerETOBToEC = "etob->ec"

// NewETOBToEC wraps an ETOB implementation into an EC implementation.
// Proposals arrive as model.ProposeInput inputs or via Propose.
func NewETOBToEC(p model.ProcID, n int, inner ETOBProtocol) *ETOBToEC {
	return &ETOBToEC{
		self:       p,
		n:          n,
		inner:      inner,
		decided:    make(map[int]bool),
		firstKnown: make(map[int]string),
		pairMemo:   make(map[string]pairVal),
	}
}

// NewETOBToECDriven adds a Driver that proposes instance 1 at Init and
// instance ℓ+1 as soon as instance ℓ decides.
func NewETOBToECDriven(p model.ProcID, n int, inner ETOBProtocol, d Driver) *ETOBToEC {
	a := NewETOBToEC(p, n, inner)
	a.driver = d
	return a
}

// ETOBToECFactory builds the transformation over a fresh inner ETOB instance
// per process, with an optional driver (nil for input-driven runs).
func ETOBToECFactory(innerFactory func(p model.ProcID, n int) ETOBProtocol, d Driver) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton {
		if d != nil {
			return NewETOBToECDriven(p, n, innerFactory(p, n), d)
		}
		return NewETOBToEC(p, n, innerFactory(p, n))
	}
}

func (a *ETOBToEC) ctx(outer model.Context) innerCtx {
	return innerCtx{outer: outer, layer: layerETOBToEC, onOutput: a.onInnerOutput}
}

// Init implements model.Automaton.
func (a *ETOBToEC) Init(ctx model.Context) {
	a.inner.Init(a.ctx(ctx))
	if a.driver != nil {
		if v, ok := a.driver(a.self, 1); ok {
			ctx.Output(model.ProposeInput{Instance: 1, Value: v})
			a.Propose(ctx, 1, v)
		}
	}
}

// Input implements model.Automaton.
func (a *ETOBToEC) Input(ctx model.Context, in any) {
	pi, ok := in.(model.ProposeInput)
	if !ok {
		return
	}
	a.Propose(ctx, pi.Instance, pi.Value)
}

// Propose implements ECProtocol: proposeEC_ℓ(v) → broadcastETOB((ℓ, v)).
func (a *ETOBToEC) Propose(ctx model.Context, instance int, value string) {
	a.count = instance
	a.bseq++
	a.inner.BroadcastETOB(a.ctx(ctx), encodePair(instance, value, a.self, a.bseq), nil)
}

// Recv implements model.Automaton.
func (a *ETOBToEC) Recv(ctx model.Context, from model.ProcID, payload any) {
	if m, ok := payload.(wrapped); ok && m.Layer == layerETOBToEC {
		a.inner.Recv(a.ctx(ctx), from, m.Inner)
	}
}

// Tick implements model.Automaton: the "local time out" of Algorithm 2.
func (a *ETOBToEC) Tick(ctx model.Context) {
	a.inner.Tick(a.ctx(ctx))
	a.maybeDecide(ctx)
}

func (a *ETOBToEC) maybeDecide(ctx model.Context) {
	if a.count == 0 || a.decided[a.count] {
		return
	}
	v, ok := a.first(a.count)
	if !ok {
		return
	}
	inst := a.count
	a.decided[inst] = true
	ctx.Output(model.Decision{Instance: inst, Value: v})
	if a.driver != nil {
		if nv, more := a.driver(a.self, inst+1); more {
			ctx.Output(model.ProposeInput{Instance: inst + 1, Value: nv})
			a.Propose(ctx, inst+1, nv)
		}
	}
}

// onInnerOutput mirrors the inner protocol's d_i and invalidates the First
// cache: the new sequence may reorder messages (that is the "eventual" in
// ETOB), so the scan restarts from the front.
func (a *ETOBToEC) onInnerOutput(_ model.Context, v any) {
	if s, ok := v.(model.SeqSnapshot); ok {
		a.d = append(a.d[:0:0], s.Seq...)
		a.scanned = 0
		clear(a.firstKnown)
	}
}

// first is the paper's First(ℓ): the value v of the first message of the
// form (ℓ, ∗) in d_i, or ok=false if none. The scan over d_i is resumed, not
// repeated: each snapshot is decoded at most once no matter how many ticks
// poll it.
func (a *ETOBToEC) first(instance int) (string, bool) {
	for a.scanned < len(a.d) {
		id := a.d[a.scanned]
		a.scanned++
		pv, ok := a.pairMemo[id]
		if !ok {
			pv.inst, pv.val, pv.ok = decodePair(id)
			a.pairMemo[id] = pv
		}
		if pv.ok {
			if _, seen := a.firstKnown[pv.inst]; !seen {
				a.firstKnown[pv.inst] = pv.val
			}
		}
	}
	v, ok := a.firstKnown[instance]
	return v, ok
}

// pairSep separates the fields of an encoded proposal message. It must
// differ from seqSep: pair-encoded IDs flow through sequence-encoded EC
// values when transformations are stacked (e.g. T_ETOB→EC over T_EC→ETOB).
const pairSep = "\x1e"

// encodePair encodes the ETOB message carrying a proposal (ℓ, v). The sender
// and a per-sender sequence number make distinct broadcasts distinct, as the
// TOB specification requires.
func encodePair(instance int, value string, p model.ProcID, seq int) string {
	return fmt.Sprintf("c%s%d%s%s%s%v.%d", pairSep, instance, pairSep, value, pairSep, p, seq)
}

// decodePair extracts (ℓ, v) from an encoded proposal message; ok=false for
// foreign messages.
func decodePair(id string) (instance int, value string, ok bool) {
	parts := strings.SplitN(id, pairSep, 4)
	if len(parts) != 4 || parts[0] != "c" {
		return 0, "", false
	}
	l, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, "", false
	}
	return l, parts[2], true
}
