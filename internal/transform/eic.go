package transform

import (
	"repro/internal/model"
)

// ECToEIC is Algorithm 6, T_EC→EIC: eventual irrevocable consensus from EC.
// The process proposes its whole decision history extended with the new
// value; whenever the EC response disagrees with the local history, the
// affected instances are re-decided (revoked) — which EIC permits finitely
// often (EIC-Integrity holds from some k on).
type ECToEIC struct {
	self  model.ProcID
	n     int
	inner ECProtocol

	decision []string     // decision_i: values decided so far, decision[ℓ-1] for instance ℓ
	count    int          // current instance invoked
	replied  map[int]bool // instances with at least one response (drives the closed loop)
	driver   Driver       // optional closed-loop proposer
}

var (
	_ model.Automaton = (*ECToEIC)(nil)
	_ EICProtocol     = (*ECToEIC)(nil)
)

const layerECToEIC = "ec->eic"

// NewECToEIC wraps an EC implementation into an EIC implementation.
func NewECToEIC(p model.ProcID, n int, inner ECProtocol) *ECToEIC {
	return &ECToEIC{self: p, n: n, inner: inner, replied: make(map[int]bool)}
}

// NewECToEICDriven adds a closed-loop driver: instance 1 at Init, instance
// ℓ+1 upon the first response to instance ℓ.
func NewECToEICDriven(p model.ProcID, n int, inner ECProtocol, d Driver) *ECToEIC {
	a := NewECToEIC(p, n, inner)
	a.driver = d
	return a
}

// ECToEICFactory builds the transformation over a fresh inner EC instance.
func ECToEICFactory(innerFactory func(p model.ProcID, n int) ECProtocol, d Driver) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton {
		if d != nil {
			return NewECToEICDriven(p, n, innerFactory(p, n), d)
		}
		return NewECToEIC(p, n, innerFactory(p, n))
	}
}

func (a *ECToEIC) ctx(outer model.Context) innerCtx {
	return innerCtx{outer: outer, layer: layerECToEIC, onOutput: a.onInnerOutput}
}

// Init implements model.Automaton.
func (a *ECToEIC) Init(ctx model.Context) {
	a.inner.Init(a.ctx(ctx))
	if a.driver != nil {
		if v, ok := a.driver(a.self, 1); ok {
			ctx.Output(model.ProposeInput{Instance: 1, Value: v})
			a.ProposeEIC(ctx, 1, v)
		}
	}
}

// Input implements model.Automaton.
func (a *ECToEIC) Input(ctx model.Context, in any) {
	pi, ok := in.(model.ProposeInput)
	if !ok {
		return
	}
	a.ProposeEIC(ctx, pi.Instance, pi.Value)
}

// ProposeEIC implements EICProtocol: proposeEIC_ℓ(v) →
// proposeEC_ℓ(decision_i · v).
func (a *ECToEIC) ProposeEIC(ctx model.Context, instance int, value string) {
	a.count = instance
	hist := append([]string(nil), a.decision...)
	if len(hist) >= instance {
		hist = hist[:instance-1] // propose exactly ℓ−1 past decisions plus v
	}
	hist = append(hist, value)
	a.inner.Propose(a.ctx(ctx), instance, encodeSeq(hist))
}

// Recv implements model.Automaton.
func (a *ECToEIC) Recv(ctx model.Context, from model.ProcID, payload any) {
	if m, ok := payload.(wrapped); ok && m.Layer == layerECToEIC {
		a.inner.Recv(a.ctx(ctx), from, m.Inner)
	}
}

// Tick implements model.Automaton.
func (a *ECToEIC) Tick(ctx model.Context) { a.inner.Tick(a.ctx(ctx)) }

// onInnerOutput is the paper's "On reception of decision as response of
// proposeEC_ℓ": re-decide every index where the agreed history differs from
// the local one, then adopt the agreed history.
func (a *ECToEIC) onInnerOutput(outer model.Context, v any) {
	dec, ok := v.(model.Decision)
	if !ok {
		return
	}
	agreed := decodeSeq(dec.Value)
	// Adopt the agreed history BEFORE emitting responses: an emitted response
	// may re-enter this automaton synchronously (a stacked T_EIC→EC driver
	// proposing the next instance), and that proposal must see the new
	// decision_i so it extends the right history.
	old := a.decision
	a.decision = agreed
	for k := 1; k <= len(agreed); k++ {
		if k > len(old) || old[k-1] != agreed[k-1] {
			a.replied[k] = true
			outer.Output(model.Decision{Instance: k, Value: agreed[k-1]})
		}
	}
	if a.driver != nil && a.replied[a.count] {
		next := a.count + 1
		if nv, more := a.driver(a.self, next); more {
			a.replied[a.count] = false // consume the trigger
			outer.Output(model.ProposeInput{Instance: next, Value: nv})
			a.ProposeEIC(outer, next, nv)
		}
	}
}

// Decision returns a copy of decision_i (for inspection).
func (a *ECToEIC) Decision() []string { return append([]string(nil), a.decision...) }

// EICToEC is Algorithm 7, T_EIC→EC: EC from eventual irrevocable consensus.
// Only the first response to the currently invoked instance becomes the EC
// response; later revocations are ignored, which restores EC-Integrity.
type EICToEC struct {
	self  model.ProcID
	n     int
	inner EICProtocol

	count   int          // count_i
	decided map[int]bool // instances already responded to
	driver  Driver
}

var (
	_ model.Automaton = (*EICToEC)(nil)
	_ ECProtocol      = (*EICToEC)(nil)
)

const layerEICToEC = "eic->ec"

// NewEICToEC wraps an EIC implementation into an EC implementation.
func NewEICToEC(p model.ProcID, n int, inner EICProtocol) *EICToEC {
	return &EICToEC{self: p, n: n, inner: inner, decided: make(map[int]bool)}
}

// NewEICToECDriven adds a closed-loop driver.
func NewEICToECDriven(p model.ProcID, n int, inner EICProtocol, d Driver) *EICToEC {
	a := NewEICToEC(p, n, inner)
	a.driver = d
	return a
}

// EICToECFactory builds the transformation over a fresh inner EIC instance.
func EICToECFactory(innerFactory func(p model.ProcID, n int) EICProtocol, d Driver) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton {
		if d != nil {
			return NewEICToECDriven(p, n, innerFactory(p, n), d)
		}
		return NewEICToEC(p, n, innerFactory(p, n))
	}
}

func (a *EICToEC) ctx(outer model.Context) innerCtx {
	return innerCtx{outer: outer, layer: layerEICToEC, onOutput: a.onInnerOutput}
}

// Init implements model.Automaton.
func (a *EICToEC) Init(ctx model.Context) {
	a.inner.Init(a.ctx(ctx))
	if a.driver != nil {
		if v, ok := a.driver(a.self, 1); ok {
			ctx.Output(model.ProposeInput{Instance: 1, Value: v})
			a.Propose(ctx, 1, v)
		}
	}
}

// Input implements model.Automaton.
func (a *EICToEC) Input(ctx model.Context, in any) {
	pi, ok := in.(model.ProposeInput)
	if !ok {
		return
	}
	a.Propose(ctx, pi.Instance, pi.Value)
}

// Propose implements ECProtocol: proposeEC_ℓ(v) → count_i := ℓ; proposeEIC_ℓ(v).
func (a *EICToEC) Propose(ctx model.Context, instance int, value string) {
	a.count = instance
	a.inner.ProposeEIC(a.ctx(ctx), instance, value)
}

// Recv implements model.Automaton.
func (a *EICToEC) Recv(ctx model.Context, from model.ProcID, payload any) {
	if m, ok := payload.(wrapped); ok && m.Layer == layerEICToEC {
		a.inner.Recv(a.ctx(ctx), from, m.Inner)
	}
}

// Tick implements model.Automaton.
func (a *EICToEC) Tick(ctx model.Context) { a.inner.Tick(a.ctx(ctx)) }

// onInnerOutput is the paper's "On reception of v as response of
// proposeEIC_ℓ: if count_i = ℓ then DecideEC(ℓ, v)" — restricted to the
// first response per instance.
func (a *EICToEC) onInnerOutput(outer model.Context, v any) {
	dec, ok := v.(model.Decision)
	if !ok {
		return
	}
	if dec.Instance != a.count || a.decided[dec.Instance] {
		return
	}
	a.decided[dec.Instance] = true
	outer.Output(model.Decision{Instance: dec.Instance, Value: dec.Value})
	if a.driver != nil {
		next := dec.Instance + 1
		if nv, more := a.driver(a.self, next); more {
			outer.Output(model.ProposeInput{Instance: next, Value: nv})
			a.Propose(outer, next, nv)
		}
	}
}
