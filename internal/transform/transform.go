// Package transform implements the paper's asynchronous transformations
// between the abstractions of §3 and Appendix A, each using the inner
// protocol strictly as a black box:
//
//	Algorithm 1: T_EC→ETOB  — eventual total order broadcast from eventual consensus
//	Algorithm 2: T_ETOB→EC  — eventual consensus from eventual total order broadcast
//	Algorithm 6: T_EC→EIC   — eventual irrevocable consensus from EC
//	Algorithm 7: T_EIC→EC   — EC from eventual irrevocable consensus
//
// Together with internal/ec (Algorithm 4) and internal/etob (Algorithm 5)
// they make Theorem 1 (EC ≡ ETOB) and Theorem 3 (EC ≡ EIC) executable: any
// stack such as T_ETOB→EC ∘ T_EC→ETOB ∘ Algorithm4 runs under the simulator
// and is property-checked by internal/trace.
//
// Stacking: a transformation is itself a model.Automaton that owns an inner
// automaton. Inner messages travel through the outer network wrapped in a
// layer-tagged envelope, and inner outputs (decisions, sequence snapshots)
// are intercepted by the transformation — the asynchronous "feed inputs,
// consume outputs" composition of §2.
package transform

import (
	"strings"

	"repro/internal/model"
)

// ECProtocol is an eventual-consensus implementation usable as a black box:
// proposals go in through Propose, responses come out as model.Decision
// outputs. *ec.Automaton, *ETOBToEC and *EICToEC satisfy it.
type ECProtocol interface {
	model.Automaton
	Propose(ctx model.Context, instance int, value string)
}

// EICProtocol is an eventual-irrevocable-consensus implementation usable as
// a black box. *ECToEIC satisfies it.
type EICProtocol interface {
	model.Automaton
	ProposeEIC(ctx model.Context, instance int, value string)
}

// ETOBProtocol is an eventual-total-order-broadcast implementation usable as
// a black box: broadcasts go in through BroadcastETOB, the evolving d_i comes
// out as model.SeqSnapshot outputs. *etob.Automaton and *ECToETOB satisfy it.
type ETOBProtocol interface {
	model.Automaton
	BroadcastETOB(ctx model.Context, id string, deps []string)
}

// wrapped is the envelope inner-protocol messages travel in. Layer tags keep
// arbitrarily deep stacks of transformations apart.
type wrapped struct {
	Layer string
	Inner any
}

// innerCtx adapts the outer step context for the inner automaton: sends are
// wrapped with the layer tag, outputs are intercepted by the transformation.
type innerCtx struct {
	outer    model.Context
	layer    string
	onOutput func(outer model.Context, v any)
}

var _ model.Context = innerCtx{}

func (c innerCtx) Self() model.ProcID { return c.outer.Self() }
func (c innerCtx) N() int             { return c.outer.N() }
func (c innerCtx) Now() model.Time    { return c.outer.Now() }
func (c innerCtx) FD() any            { return c.outer.FD() }
func (c innerCtx) Send(to model.ProcID, payload any) {
	c.outer.Send(to, wrapped{Layer: c.layer, Inner: payload})
}
func (c innerCtx) Broadcast(payload any) {
	c.outer.Broadcast(wrapped{Layer: c.layer, Inner: payload})
}
func (c innerCtx) Output(v any) { c.onOutput(c.outer, v) }

// seqSep separates sequence elements inside EC values; message IDs and
// values must not contain it (U+001F, the ASCII unit separator).
const seqSep = "\x1f"

// encodeSeq encodes a message-ID sequence as a single EC value.
func encodeSeq(seq []string) string { return strings.Join(seq, seqSep) }

// decodeSeq decodes an EC value back into a message-ID sequence.
func decodeSeq(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, seqSep)
}
