package runtime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

// recordingTransport is a stub inner Transport that records every frame
// Send hands it, in order.
type recordingTransport struct {
	self model.ProcID
	n    int

	mu     sync.Mutex
	frames []Frame
	inbox  chan Frame
}

func newRecordingTransport(self model.ProcID, n int) *recordingTransport {
	return &recordingTransport{self: self, n: n, inbox: make(chan Frame, 1024)}
}

func (r *recordingTransport) Self() model.ProcID { return r.self }
func (r *recordingTransport) N() int             { return r.n }
func (r *recordingTransport) Recv() <-chan Frame { return r.inbox }
func (r *recordingTransport) Dropped() int64     { return 0 }
func (r *recordingTransport) Close() error       { return nil }

func (r *recordingTransport) Send(f Frame) error {
	r.mu.Lock()
	r.frames = append(r.frames, f)
	r.mu.Unlock()
	return nil
}

func (r *recordingTransport) sent() []Frame {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Frame, len(r.frames))
	copy(out, r.frames)
	return out
}

// TestFaultScheduleDeterministicPerSeed pins the injector's determinism
// contract: the fate of the k-th frame on a directed link is a pure function
// of (Seed, link, k) — two injectors with the same config produce the
// identical decision schedule, and a different seed produces a different one.
func TestFaultScheduleDeterministicPerSeed(t *testing.T) {
	cfg := FaultConfig{
		Seed: 7, Drop: 0.2, Burst: 3,
		DelayMin: time.Millisecond, DelayMax: 9 * time.Millisecond,
		Duplicate: 0.1, Reorder: 0.15, ResetEvery: 25,
	}
	a := NewFaultTransport(newRecordingTransport(1, 3), cfg)
	b := NewFaultTransport(newRecordingTransport(1, 3), cfg)
	differs := false
	other := cfg
	other.Seed = 8
	c := NewFaultTransport(newRecordingTransport(1, 3), other)
	for _, link := range []linkID{{1, 2}, {1, 3}, {2, 1}, {3, 2}} {
		for k := int64(0); k < 512; k++ {
			fa, fb := a.decide(link.from, link.to, k), b.decide(link.from, link.to, k)
			if fa != fb {
				t.Fatalf("link %v frame %d: same seed, different fates: %+v vs %+v", link, k, fa, fb)
			}
			if la, lb := a.burstLen(link.from, link.to, k, 4), b.burstLen(link.from, link.to, k, 4); la != lb {
				t.Fatalf("link %v frame %d: same seed, different burst lengths: %d vs %d", link, k, la, lb)
			}
			if fa != c.decide(link.from, link.to, k) {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("seeds 7 and 8 produced identical 2048-frame fate schedules; the seed is not reaching the hash")
	}
}

// TestFaultTransportZeroConfigPassesThrough: a zero FaultConfig injects
// nothing — every frame forwards unchanged and in order.
func TestFaultTransportZeroConfigPassesThrough(t *testing.T) {
	rec := newRecordingTransport(1, 3)
	ft := NewFaultTransport(rec, FaultConfig{})
	for k := 0; k < 50; k++ {
		if err := ft.Send(Frame{From: 1, To: 2, ID: int64(k)}); err != nil {
			t.Fatal(err)
		}
	}
	got := rec.sent()
	if len(got) != 50 {
		t.Fatalf("zero-config injector forwarded %d of 50 frames", len(got))
	}
	for k, f := range got {
		if f.ID != int64(k) {
			t.Fatalf("zero-config injector reordered: frame %d has ID %d", k, f.ID)
		}
	}
	if ft.Injected() != 0 || ft.Duplicated() != 0 {
		t.Fatalf("zero-config injector reported faults: injected=%d dup=%d", ft.Injected(), ft.Duplicated())
	}
}

// TestFaultTransportPartitionAndHeal: a two-sided partition drops frames
// crossing sides in both directions, passes same-side frames, and heals on
// command. Disabling the injector heals too.
func TestFaultTransportPartitionAndHeal(t *testing.T) {
	rec := newRecordingTransport(1, 4)
	ft := NewFaultTransport(rec, FaultConfig{})
	ft.Partition(1, 2)
	cross := []Frame{{From: 1, To: 3}, {From: 3, To: 1}, {From: 2, To: 4}, {From: 4, To: 2}}
	for _, f := range cross {
		_ = ft.Send(f)
	}
	sameSide := []Frame{{From: 1, To: 2}, {From: 3, To: 4}, {From: 4, To: 3}}
	for _, f := range sameSide {
		_ = ft.Send(f)
	}
	if got := len(rec.sent()); got != len(sameSide) {
		t.Fatalf("partitioned injector forwarded %d frames, want only the %d same-side ones", got, len(sameSide))
	}
	if ft.Injected() != int64(len(cross)) {
		t.Fatalf("partition dropped %d frames, want %d", ft.Injected(), len(cross))
	}
	if !ft.Partitioned() {
		t.Fatal("Partitioned() false while a partition is in force")
	}
	ft.Heal()
	if ft.Partitioned() {
		t.Fatal("Partitioned() true after Heal")
	}
	for _, f := range cross {
		_ = ft.Send(f)
	}
	if got := len(rec.sent()); got != len(sameSide)+len(cross) {
		t.Fatalf("healed injector forwarded %d frames total, want %d", got, len(sameSide)+len(cross))
	}
	// A disabled injector is a healed network even mid-partition.
	ft.Partition(1, 2)
	ft.SetEnabled(false)
	_ = ft.Send(Frame{From: 1, To: 3})
	if got := len(rec.sent()); got != len(sameSide)+len(cross)+1 {
		t.Fatal("disabled injector still enforced the partition")
	}
}

// TestFaultTransportSelfFramesNeverFaulted: frames to self model local
// memory and bypass injection entirely, as in the simulator.
func TestFaultTransportSelfFramesNeverFaulted(t *testing.T) {
	rec := newRecordingTransport(1, 3)
	ft := NewFaultTransport(rec, FaultConfig{Seed: 1, Drop: 0.9})
	ft.Partition(1)
	for k := 0; k < 100; k++ {
		_ = ft.Send(Frame{From: 1, To: 1, ID: int64(k)})
	}
	if got := len(rec.sent()); got != 100 {
		t.Fatalf("self-frames faulted: %d of 100 delivered", got)
	}
}

// TestFaultTransportDropsAndDuplicates: with a heavy drop profile a
// substantial fraction of frames is lost; with duplication, extra copies
// appear. Counters account for both.
func TestFaultTransportDropsAndDuplicates(t *testing.T) {
	rec := newRecordingTransport(1, 2)
	ft := NewFaultTransport(rec, FaultConfig{Seed: 3, Drop: 0.4})
	const frames = 400
	for k := 0; k < frames; k++ {
		_ = ft.Send(Frame{From: 1, To: 2, ID: int64(k)})
	}
	dropped := ft.Injected()
	if dropped == 0 || dropped == frames {
		t.Fatalf("Drop=0.4 dropped %d of %d frames, want some but not all", dropped, frames)
	}
	if got := int64(len(rec.sent())); got+dropped != frames {
		t.Fatalf("accounting: %d forwarded + %d dropped != %d sent", len(rec.sent()), dropped, frames)
	}

	rec2 := newRecordingTransport(1, 2)
	dup := NewFaultTransport(rec2, FaultConfig{Seed: 3, Duplicate: 0.5})
	for k := 0; k < frames; k++ {
		_ = dup.Send(Frame{From: 1, To: 2, ID: int64(k)})
	}
	if dup.Duplicated() == 0 {
		t.Fatal("Duplicate=0.5 produced no duplicates in 400 frames")
	}
	deadline := time.Now().Add(2 * time.Second)
	for int64(len(rec2.sent())) != frames+dup.Duplicated() {
		if time.Now().After(deadline) {
			t.Fatalf("forwarded %d frames, want %d + %d duplicates", len(rec2.sent()), frames, dup.Duplicated())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFaultTransportReorderSwapsButNeverLoses: reordered frames are held
// back and overtaken, not dropped — every frame is eventually forwarded.
func TestFaultTransportReorderSwapsButNeverLoses(t *testing.T) {
	rec := newRecordingTransport(1, 2)
	ft := NewFaultTransport(rec, FaultConfig{Seed: 11, Reorder: 0.3})
	const frames = 200
	for k := 0; k < frames; k++ {
		_ = ft.Send(Frame{From: 1, To: 2, ID: int64(k)})
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(rec.sent()) != frames {
		if time.Now().After(deadline) {
			t.Fatalf("reorder lost frames: %d of %d forwarded", len(rec.sent()), frames)
		}
		time.Sleep(5 * time.Millisecond)
	}
	seen := make(map[int64]bool, frames)
	inOrder := true
	last := int64(-1)
	for _, f := range rec.sent() {
		if seen[f.ID] {
			t.Fatalf("frame %d forwarded twice by reorder-only profile", f.ID)
		}
		seen[f.ID] = true
		if f.ID < last {
			inOrder = false
		}
		last = f.ID
	}
	if inOrder {
		t.Fatal("Reorder=0.3 left 200 frames in perfect order; the reorder path never fired")
	}
}

// TestFaultTransportScheduleScriptsAtWallInstants: Schedule runs control
// steps after a wall delay, the chaos harness's scripting primitive.
func TestFaultTransportScheduleScriptsAtWallInstants(t *testing.T) {
	rec := newRecordingTransport(1, 2)
	ft := NewFaultTransport(rec, FaultConfig{})
	ft.Schedule(10*time.Millisecond, func(f *FaultTransport) { f.Partition(1) })
	deadline := time.Now().Add(2 * time.Second)
	for !ft.Partitioned() {
		if time.Now().After(deadline) {
			t.Fatal("scheduled partition never took effect")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ft.Schedule(10*time.Millisecond, func(f *FaultTransport) { f.Heal() })
	for ft.Partitioned() {
		if time.Now().After(deadline) {
			t.Fatal("scheduled heal never took effect")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := ft.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultConfigTimedPartitionWindow: a FaultConfig carrying
// PartitionAfter/PartitionFor/PartitionLeft arms its own partition-and-heal
// window at construction — the plumbing that lets a preset (hostile-partition)
// ship a whole timed scenario, mirroring the simulator's sim.Partitioned
// layer. Cross-side frames are dropped inside the window and pass after the
// heal.
func TestFaultConfigTimedPartitionWindow(t *testing.T) {
	rec := newRecordingTransport(1, 3)
	ft := NewFaultTransport(rec, FaultConfig{
		PartitionAfter: 10 * time.Millisecond,
		PartitionFor:   80 * time.Millisecond,
		PartitionLeft:  []model.ProcID{1, 2},
	})
	deadline := time.Now().Add(2 * time.Second)
	for !ft.Partitioned() {
		if time.Now().After(deadline) {
			t.Fatal("configured partition window never armed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	before := len(rec.sent())
	if err := ft.Send(Frame{From: 1, To: 3, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.sent()); got != before {
		t.Fatalf("cross-partition frame forwarded during the window (%d -> %d sends)", before, got)
	}
	if err := ft.Send(Frame{From: 1, To: 2, ID: 2}); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.sent()); got != before+1 {
		t.Fatalf("same-side frame did not pass during the window (%d -> %d sends)", before, got)
	}
	for ft.Partitioned() {
		if time.Now().After(deadline) {
			t.Fatal("configured partition window never healed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := ft.Send(Frame{From: 1, To: 3, ID: 3}); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.sent()); got != before+2 {
		t.Fatalf("cross-side frame did not pass after the heal (%d -> %d sends)", before, got)
	}
	if err := ft.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultPresetVocabulary: the live preset names mirror the simulator's
// vocabulary, and unknown names are rejected.
func TestFaultPresetVocabulary(t *testing.T) {
	for _, name := range []string{"lossy", "lossy-burst", "hostile", "hostile-partition", "resets"} {
		cfg, ok := FaultPreset(name, 42)
		if !ok {
			t.Fatalf("preset %q missing from the live fault vocabulary %v", name, FaultPresetNames())
		}
		if cfg.Seed != 42 {
			t.Fatalf("preset %q ignored the seed", name)
		}
	}
	if _, ok := FaultPreset("no-such-preset", 1); ok {
		t.Fatal("unknown preset resolved")
	}
}
