// Package runtime runs the same protocol automata as internal/sim, but live:
// one event loop per process, a pluggable Transport as the wire, wall-clock
// ticks — the "real processes over a real network" realization of the
// paper's model. It also provides the one failure detector that is actually
// IMPLEMENTED from message passing rather than read from an oracle: a
// heartbeat-based Ω (eventually-timely heartbeats elect the smallest-ID
// live process), which is how Ω is realized in practice under partial
// synchrony.
//
// The package splits into three layers:
//
//   - Transport (transport.go): the wire. ChanTransport joins in-process
//     replicas over buffered channels (the reference implementation, used by
//     Cluster and the examples); TCPTransport (tcp.go) makes replicas
//     separate OS processes speaking length-prefixed gob frames over
//     reconnecting per-peer connections (used by internal/node). The
//     interface's contract spells out each implementation's delivery
//     guarantees and why lossy ones pair with internal/retransmit.
//
//   - Proc (proc.go): the per-process event loop — ticks, heartbeat Ω,
//     local operations, frame reception — written against Transport only,
//     so the SAME automaton binary runs over any wire.
//
//   - Cluster (this file): n Procs over a ChanNetwork, preserving the
//     historical in-process API.
//
// Conformance: a Proc can record its run into a trace.StepLog; Replay
// (replay.go) re-executes the log through the deterministic step discipline
// and checks that every step's emissions match — the oracle pinning that no
// transport forked the automaton semantics.
//
// The deterministic kernel remains the substrate for all experiments and
// property checks; this runtime backs the runnable examples and the
// deployable service plane (internal/node, internal/lb, cmd/ecnode).
package runtime

import (
	"time"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options configure a live process (and, via NewCluster, a live cluster).
type Options struct {
	// TickInterval is the λ-step period of every process. Default 2ms.
	TickInterval time.Duration
	// HeartbeatInterval is the Ω heartbeat period. Default 2ms.
	HeartbeatInterval time.Duration
	// LeaderTimeout is how long without a heartbeat before a process stops
	// trusting a peer. Default 10×HeartbeatInterval.
	LeaderTimeout time.Duration
	// Delay, if non-nil, returns the artificial link delay per message
	// (ChanNetwork fabrics only; wire transports have real delays).
	Delay func(from, to model.ProcID) time.Duration
	// InboxSize is the per-process frame buffer. Default 8192. A full inbox
	// DROPS incoming frames — counted on the transport (Transport.Dropped,
	// Cluster.Dropped) and surfaced to an Observer that implements
	// DropObserver — instead of blocking the sender: a slow or wedged peer
	// must not stall the whole replica mid-broadcast. Protocols that must
	// survive drops wrap themselves in internal/retransmit.
	InboxSize int
	// Observer receives run events (a trace.Recorder works). Optional.
	Observer sim.Observer
	// StepLog, if non-nil, records every automaton step (trigger, detector
	// value, clock, emissions) for conformance replay — see trace.StepLog
	// and Replay.
	StepLog *trace.StepLog
	// ClockEpoch is the zero point of the process-local clock (Context.Now
	// and retransmission epochs derive from it). Zero means "process start",
	// the in-process Cluster behavior. Deployable nodes set a fixed epoch
	// (internal/node uses the Unix epoch) so that a RESTARTED process gets a
	// fresh, strictly larger incarnation epoch instead of colliding with its
	// previous life at Now=0.
	ClockEpoch time.Time
}

// DropObserver is an optional extension of sim.Observer: implementations are
// told about every frame dropped on inbox overflow. The base Observer
// interface is unchanged so existing observers keep compiling.
type DropObserver interface {
	OnDrop(from, to model.ProcID, payload any)
}

func (o Options) withDefaults() Options {
	if o.TickInterval <= 0 {
		o.TickInterval = 2 * time.Millisecond
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 2 * time.Millisecond
	}
	if o.LeaderTimeout <= 0 {
		o.LeaderTimeout = 10 * o.HeartbeatInterval
	}
	if o.InboxSize <= 0 {
		o.InboxSize = 8192
	}
	if o.Observer == nil {
		o.Observer = sim.NopObserver{}
	}
	return o
}

// Cluster is a set of live processes over an in-process ChanNetwork.
type Cluster struct {
	n     int
	opts  Options
	nw    *ChanNetwork
	procs []*Proc
}

// NewCluster builds and starts n processes running the automata produced by
// factory. Call Stop (or defer it) to shut the cluster down.
func NewCluster(n int, factory model.AutomatonFactory, opts Options) *Cluster {
	if n < 2 {
		panic("runtime: need at least 2 processes")
	}
	opts = opts.withDefaults()
	var onDrop func(from, to model.ProcID, payload any)
	if d, ok := opts.Observer.(DropObserver); ok {
		onDrop = d.OnDrop
	}
	nw := NewChanNetwork(n, ChanNetworkConfig{
		InboxSize: opts.InboxSize,
		Delay:     opts.Delay,
		OnDrop:    onDrop,
	})
	c := &Cluster{n: n, opts: opts, nw: nw}
	for _, p := range model.Procs(n) {
		c.procs = append(c.procs, NewProc(nw.Endpoint(p), factory, opts))
	}
	return c
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.n }

// Proc returns the live process p (for transport-level inspection).
func (c *Cluster) Proc(p model.ProcID) *Proc {
	c.nw.Endpoint(p) // panics on an unknown process, like the cluster always has
	return c.procs[p-1]
}

// Submit delivers an external input (operation invocation) to process p.
func (c *Cluster) Submit(p model.ProcID, in any) {
	c.Proc(p).Submit(in)
}

// Inspect runs f on process p's automaton inside its own event loop (safe
// live access) and waits for completion. Returns false if p has crashed.
func (c *Cluster) Inspect(p model.ProcID, f func(model.Automaton)) bool {
	return c.Proc(p).Inspect(f)
}

// Crash stops process p (it takes no further steps; messages to it are
// dropped).
func (c *Cluster) Crash(p model.ProcID) {
	c.Proc(p).Stop()
}

// Dropped returns the total frames dropped on inbox overflow across the
// cluster (see Options.InboxSize).
func (c *Cluster) Dropped() int64 { return c.nw.Dropped() }

// Stop shuts the whole cluster down and waits for every process to exit.
func (c *Cluster) Stop() {
	for _, p := range c.procs {
		p.Stop()
	}
	c.nw.Close()
	for _, p := range c.procs {
		<-p.Done()
	}
}
