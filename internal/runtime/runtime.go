// Package runtime runs the same protocol automata as internal/sim, but live:
// one goroutine per process, channels as reliable links, wall-clock ticks —
// the "goroutines/channels as asynchronous processes" realization of the
// paper's model. It also provides the one failure detector that is actually
// IMPLEMENTED from message passing rather than read from an oracle: a
// heartbeat-based Ω (eventually-timely heartbeats elect the smallest-ID
// live process), which is how Ω is realized in practice under partial
// synchrony.
//
// The deterministic kernel remains the substrate for all experiments and
// property checks; this runtime backs the runnable examples.
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
)

// Options configure a live cluster.
type Options struct {
	// TickInterval is the λ-step period of every process. Default 2ms.
	TickInterval time.Duration
	// HeartbeatInterval is the Ω heartbeat period. Default 2ms.
	HeartbeatInterval time.Duration
	// LeaderTimeout is how long without a heartbeat before a process stops
	// trusting a peer. Default 10×HeartbeatInterval.
	LeaderTimeout time.Duration
	// Delay, if non-nil, returns the artificial link delay per message.
	Delay func(from, to model.ProcID) time.Duration
	// InboxSize is the per-process channel buffer. Default 8192.
	InboxSize int
	// Observer receives run events (a trace.Recorder works). Optional.
	Observer sim.Observer
}

func (o Options) withDefaults() Options {
	if o.TickInterval <= 0 {
		o.TickInterval = 2 * time.Millisecond
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 2 * time.Millisecond
	}
	if o.LeaderTimeout <= 0 {
		o.LeaderTimeout = 10 * o.HeartbeatInterval
	}
	if o.InboxSize <= 0 {
		o.InboxSize = 8192
	}
	if o.Observer == nil {
		o.Observer = sim.NopObserver{}
	}
	return o
}

type envelope struct {
	from    model.ProcID
	payload any
	input   any
	inspect func(model.Automaton)
	done    chan struct{}
	msgID   int64
	sentAt  model.Time
}

type heartbeat struct{}

// Cluster is a set of live processes.
type Cluster struct {
	n     int
	opts  Options
	nodes []*liveNode
	start time.Time

	wg      sync.WaitGroup
	pending sync.WaitGroup // delayed deliveries in flight
	msgSeq  atomic.Int64
	stopped atomic.Bool
}

type liveNode struct {
	c    *Cluster
	id   model.ProcID
	auto model.Automaton

	inbox   chan envelope
	stop    chan struct{}
	crashed atomic.Bool

	lastBeat []atomic.Int64 // index p-1: last heartbeat receipt, unix nanos
}

// NewCluster builds and starts n processes running the automata produced by
// factory. Call Stop (or defer it) to shut the cluster down.
func NewCluster(n int, factory model.AutomatonFactory, opts Options) *Cluster {
	if n < 2 {
		panic("runtime: need at least 2 processes")
	}
	c := &Cluster{n: n, opts: opts.withDefaults(), start: time.Now()}
	for _, p := range model.Procs(n) {
		nd := &liveNode{
			c:        c,
			id:       p,
			auto:     factory(p, n),
			inbox:    make(chan envelope, c.opts.InboxSize),
			stop:     make(chan struct{}),
			lastBeat: make([]atomic.Int64, n),
		}
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		c.wg.Add(1)
		go nd.run()
	}
	return c
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.n }

func (c *Cluster) now() model.Time {
	return model.Time(time.Since(c.start) / time.Millisecond)
}

func (c *Cluster) node(p model.ProcID) *liveNode {
	if p < 1 || int(p) > c.n {
		panic(fmt.Sprintf("runtime: unknown process %v", p))
	}
	return c.nodes[p-1]
}

// Submit delivers an external input (operation invocation) to process p.
func (c *Cluster) Submit(p model.ProcID, in any) {
	nd := c.node(p)
	c.opts.Observer.OnInput(p, c.now(), in)
	nd.offer(envelope{input: in})
}

// Inspect runs f on process p's automaton inside its own goroutine (safe
// live access) and waits for completion. Returns false if p has crashed.
func (c *Cluster) Inspect(p model.ProcID, f func(model.Automaton)) bool {
	nd := c.node(p)
	done := make(chan struct{})
	nd.offer(envelope{inspect: f, done: done})
	select {
	case <-done:
		return true
	case <-nd.stop:
		return false
	}
}

// Crash stops process p (it takes no further steps; messages to it are
// dropped).
func (c *Cluster) Crash(p model.ProcID) {
	nd := c.node(p)
	if nd.crashed.CompareAndSwap(false, true) {
		close(nd.stop)
	}
}

// Stop shuts the whole cluster down and waits for every goroutine to exit.
func (c *Cluster) Stop() {
	if !c.stopped.CompareAndSwap(false, true) {
		return
	}
	for _, nd := range c.nodes {
		if nd.crashed.CompareAndSwap(false, true) {
			close(nd.stop)
		}
	}
	c.pending.Wait()
	c.wg.Wait()
}

// send routes a protocol message, applying the artificial delay if any.
func (c *Cluster) send(from, to model.ProcID, payload any) {
	id := c.msgSeq.Add(1)
	now := c.now()
	c.opts.Observer.OnSend(now, sim.Message{ID: id, From: from, To: to, Payload: payload, SentAt: now})
	env := envelope{from: from, payload: payload, msgID: id, sentAt: now}
	var delay time.Duration
	if c.opts.Delay != nil {
		delay = c.opts.Delay(from, to)
	}
	target := c.node(to)
	if delay <= 0 {
		target.offer(env)
		return
	}
	c.pending.Add(1)
	time.AfterFunc(delay, func() {
		defer c.pending.Done()
		target.offer(env)
	})
}

// offer enqueues an envelope unless the node has crashed.
func (nd *liveNode) offer(env envelope) {
	select {
	case <-nd.stop:
	case nd.inbox <- env:
	}
}

func (nd *liveNode) run() {
	defer nd.c.wg.Done()
	ticker := time.NewTicker(nd.c.opts.TickInterval)
	defer ticker.Stop()
	beats := time.NewTicker(nd.c.opts.HeartbeatInterval)
	defer beats.Stop()

	nd.step(func(ctx *liveCtx) { nd.auto.Init(ctx) })
	for {
		select {
		case <-nd.stop:
			return
		case env := <-nd.inbox:
			nd.handle(env)
		case <-ticker.C:
			nd.step(func(ctx *liveCtx) { nd.auto.Tick(ctx) })
		case <-beats.C:
			for _, q := range model.Procs(nd.c.n) {
				if q != nd.id {
					nd.c.node(q).offer(envelope{from: nd.id, payload: heartbeat{}})
				}
			}
		}
	}
}

func (nd *liveNode) handle(env envelope) {
	switch {
	case env.inspect != nil:
		env.inspect(nd.auto)
		close(env.done)
	case env.input != nil:
		nd.step(func(ctx *liveCtx) { nd.auto.Input(ctx, env.input) })
	default:
		if _, ok := env.payload.(heartbeat); ok {
			nd.lastBeat[env.from-1].Store(time.Now().UnixNano())
			return
		}
		nd.c.opts.Observer.OnDeliver(nd.c.now(), sim.Message{
			ID: env.msgID, From: env.from, To: nd.id, Payload: env.payload, SentAt: env.sentAt,
		})
		nd.step(func(ctx *liveCtx) { nd.auto.Recv(ctx, env.from, env.payload) })
	}
}

func (nd *liveNode) step(h func(*liveCtx)) {
	ctx := &liveCtx{nd: nd, t: nd.c.now(), leader: nd.leader()}
	h(ctx)
}

// leader is the heartbeat Ω: the smallest-ID process believed alive (itself,
// or a peer heard from within LeaderTimeout).
func (nd *liveNode) leader() model.ProcID {
	cutoff := time.Now().Add(-nd.c.opts.LeaderTimeout).UnixNano()
	for _, q := range model.Procs(nd.c.n) {
		if q == nd.id {
			return q
		}
		if nd.lastBeat[q-1].Load() >= cutoff {
			return q
		}
	}
	return nd.id
}

// liveCtx implements model.Context for one live step.
type liveCtx struct {
	nd     *liveNode
	t      model.Time
	leader model.ProcID
}

var _ model.Context = (*liveCtx)(nil)

func (c *liveCtx) Self() model.ProcID { return c.nd.id }
func (c *liveCtx) N() int             { return c.nd.c.n }
func (c *liveCtx) Now() model.Time    { return c.t }
func (c *liveCtx) FD() any            { return fd.OmegaValue(c.leader) }

func (c *liveCtx) Send(to model.ProcID, payload any) {
	c.nd.c.send(c.nd.id, to, payload)
}

func (c *liveCtx) Broadcast(payload any) {
	for _, q := range model.Procs(c.nd.c.n) {
		c.nd.c.send(c.nd.id, q, payload)
	}
}

func (c *liveCtx) Output(v any) {
	c.nd.c.opts.Observer.OnOutput(c.nd.id, c.t, v)
}
