package runtime

import "repro/internal/model"

// Frame is one wire-level envelope between processes: link addressing plus
// an opaque protocol payload. Frames are what a Transport moves; the
// protocol meaning of the payload belongs entirely to the automaton layer
// (internal/etob, internal/retransmit envelopes, ...), except for Heartbeat,
// which the Proc loop consumes itself to realize the heartbeat Ω.
type Frame struct {
	// From and To identify the link.
	From, To model.ProcID
	// ID is a per-sender message identifier (informational: observers report
	// it; no protocol decision may depend on it). Heartbeats carry ID 0.
	ID int64
	// SentAt is the sender's local clock at emission (informational).
	SentAt model.Time
	// Payload is the protocol-level content.
	Payload any
}

// Heartbeat is the Ω heartbeat frame. It is exported (and gob-encodable) so
// that wire transports can carry it between real processes; the Proc loop
// intercepts it before the automaton ever sees it.
type Heartbeat struct{}

// Transport is one process's endpoint of the cluster fabric: it can address
// any peer by model.ProcID and it surfaces received frames on a channel. The
// SAME automaton code runs over any implementation — the Proc event loop is
// written against this interface only.
//
// Delivery guarantees, per implementation:
//
//   - ChanTransport (in-process reference implementation): frames are
//     delivered reliably and in per-link FIFO order, except when the
//     receiver's inbox is full — overflow frames are DROPPED and counted
//     (see Dropped) rather than blocking the sender, so one slow process can
//     never stall a peer mid-broadcast. With default-sized inboxes a drop
//     requires a pathological backlog; protocols that must survive drops wrap
//     themselves in internal/retransmit.
//
//   - TCPTransport (separate processes): frames are carried over per-peer TCP
//     connections and delivery is AT-MOST-ONCE. A frame can be lost whenever
//     a connection breaks mid-flight, while a peer is down (frames queued past
//     the outbound buffer are dropped and counted), or on receiver inbox
//     overflow. This is exactly the lossy-link regime of the paper's
//     environments, which is why internal/node always wraps replica automata
//     in the retransmission layer: resend-until-ack plus receiver-side dedup
//     restores the eventual-delivery assumption end-to-end, and a TCP
//     reconnect is then just a long link delay.
//
// Send never blocks on a slow peer and is safe for concurrent use; errors are
// reserved for structural failures (unknown peer, closed transport), not for
// frame loss. Close releases the endpoint's resources; after Close, Recv's
// channel no longer receives frames.
type Transport interface {
	// Self returns the process this endpoint belongs to.
	Self() model.ProcID
	// N returns the number of processes in the cluster.
	N() int
	// Send transmits the frame to f.To (self-sends loop back locally).
	Send(f Frame) error
	// Recv returns the channel on which received frames arrive.
	Recv() <-chan Frame
	// Dropped returns how many frames this endpoint discarded instead of
	// delivering: receiver-side inbox overflow plus, for wire transports,
	// sender-side losses to broken or backlogged links.
	Dropped() int64
	// Close shuts the endpoint down. Idempotent.
	Close() error
}
