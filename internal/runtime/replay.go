package runtime

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/trace"
)

// Replay is the conformance oracle of the service plane: it re-executes a
// recorded live run through fresh automata under the deterministic step
// discipline and checks that every step's emissions — sends and outputs —
// match what the live run produced.
//
// The premise is the paper's determinism of automata (§2): a process's state
// evolution is a function of its step schedule alone — the sequence of
// (trigger, payload, detector value, clock reading) it experienced. A live
// Proc records exactly that schedule into a trace.StepLog (Options.StepLog);
// Replay partitions the log per process, rebuilds each automaton from the
// same factory, and replays its steps single-threaded with the recorded FD
// and clock values. If any transport, goroutine interleaving, or codec quirk
// forked the semantics — a gob round trip that mangled a payload, a context
// leaking live state, an automaton consulting a wall clock it shouldn't —
// the replayed emissions diverge from the recorded ones and Replay reports
// the first offending step.
//
// The oracle deliberately compares EMISSIONS, not internal state: emissions
// are what the rest of the cluster observes, they are recorded at the only
// boundary all runtimes share (model.Context), and matching them step-by-step
// pins the whole state evolution for deterministic automata without
// requiring states to be comparable.
func Replay(n int, factory model.AutomatonFactory, log *trace.StepLog) error {
	autos := make(map[model.ProcID]model.Automaton)
	for i, want := range log.Steps() {
		p := want.P
		if p < 1 || int(p) > n {
			return fmt.Errorf("step %d: process %v outside 1..%d", i, p, n)
		}
		a := autos[p]
		if want.Kind == trace.StepInit {
			a = factory(p, n)
			autos[p] = a
		} else if a == nil {
			return fmt.Errorf("step %d: %v takes a step before its Init was recorded", i, p)
		}
		ctx := &replayCtx{self: p, n: n, now: want.Now, fdv: want.FD}
		switch want.Kind {
		case trace.StepInit:
			a.Init(ctx)
		case trace.StepTick:
			a.Tick(ctx)
		case trace.StepInput:
			a.Input(ctx, want.In)
		case trace.StepRecv:
			a.Recv(ctx, want.From, want.Payload)
		default:
			return fmt.Errorf("step %d: unknown step kind %d", i, want.Kind)
		}
		got := trace.Step{Sends: ctx.sends, Outputs: ctx.outputs}
		if !trace.SameEmissions(&want, &got) {
			return fmt.Errorf("step %d (%v, kind %d): emissions diverged\n  recorded: sends=%v outputs=%v\n  replayed: sends=%v outputs=%v",
				i, p, want.Kind, want.Sends, want.Outputs, got.Sends, got.Outputs)
		}
	}
	return nil
}

// replayCtx feeds an automaton the recorded step environment and captures
// what it emits.
type replayCtx struct {
	self    model.ProcID
	n       int
	now     model.Time
	fdv     any
	sends   []trace.SendRec
	outputs []any
}

var _ model.Context = (*replayCtx)(nil)

func (c *replayCtx) Self() model.ProcID { return c.self }
func (c *replayCtx) N() int             { return c.n }
func (c *replayCtx) Now() model.Time    { return c.now }
func (c *replayCtx) FD() any            { return c.fdv }

func (c *replayCtx) Send(to model.ProcID, payload any) {
	c.sends = append(c.sends, trace.SendRec{To: to, Payload: payload})
}

func (c *replayCtx) Broadcast(payload any) {
	for _, q := range model.Procs(c.n) {
		c.Send(q, payload)
	}
}

func (c *replayCtx) Output(v any) { c.outputs = append(c.outputs, v) }
