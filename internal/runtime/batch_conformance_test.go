package runtime_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/etob"
	"repro/internal/model"
	"repro/internal/retransmit"
	"repro/internal/runtime"
	"repro/internal/smr"
	"repro/internal/trace"
)

// TestTCPBatchedTraceConformance pins batch boundaries under the conformance
// oracle: the full Eventual stack with ETOB batching enabled (k>1) runs live
// over TCP with every step recorded, then the StepLog replays through fresh
// automata from the same batched factory — identical emissions at every step.
// Batching adds sender-local state (the pending queue, the linger clock) that
// the oracle would expose immediately if it ever made a flush decision from
// anything outside the recorded step schedule.
func TestTCPBatchedTraceConformance(t *testing.T) {
	const n, updates = 3, 18
	log := &trace.StepLog{}
	factory := core.ReplicaStackWith(core.Eventual, core.StackOptions{
		Retransmit: &retransmit.Options{Seed: 7},
		Batch:      etob.BatchOptions{MaxBatch: 4, MaxLinger: 2},
	})

	peers := make(map[model.ProcID]string, n)
	var reserved []net.Listener
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		peers[model.ProcID(i+1)] = ln.Addr().String()
		reserved = append(reserved, ln)
	}
	for _, ln := range reserved {
		ln.Close()
	}

	procs := make([]*runtime.Proc, n)
	for i := 0; i < n; i++ {
		p := model.ProcID(i + 1)
		var tr *runtime.TCPTransport
		var err error
		for attempt := 0; attempt < 100; attempt++ {
			tr, err = runtime.NewTCPTransport(runtime.TCPConfig{Self: p, Peers: peers})
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("bind %v: %v", p, err)
		}
		procs[i] = runtime.NewProc(tr, factory, runtime.Options{StepLog: log})
	}
	defer func() {
		for _, p := range procs {
			p.Stop()
			<-p.Done()
		}
	}()

	// Burst submissions — six per replica back to back — so batches fill by
	// depth as well as drain by linger: both flush triggers land in the log.
	want := make(map[string]string, updates)
	for i := 0; i < updates; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		want[k] = v
		if !procs[i%n].Submit(smr.Command{Cmd: "set " + k + " " + v}) {
			t.Fatalf("submit %d rejected", i)
		}
		if i%n == n-1 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	snapshot := func(p *runtime.Proc) (snap string, applied int) {
		p.Inspect(func(a model.Automaton) {
			r := core.UnwrapReplica(a)
			snap, applied = r.Snapshot(), r.AppliedCount()
		})
		return
	}
	converged := func() bool {
		ref, applied := snapshot(procs[0])
		if applied < updates || ref == "" {
			return false
		}
		for _, p := range procs[1:] {
			got, gotApplied := snapshot(p)
			if got != ref || gotApplied < updates {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(30 * time.Second)
	for !converged() {
		if time.Now().After(deadline) {
			s1, _ := snapshot(procs[0])
			s2, _ := snapshot(procs[1])
			s3, _ := snapshot(procs[2])
			t.Fatalf("batched replicas did not converge over TCP:\n p1: %s\n p2: %s\n p3: %s", s1, s2, s3)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ref, _ := snapshot(procs[0])
	for k, v := range want {
		if wantPair := k + "=" + v; !containsPair(ref, wantPair) {
			t.Fatalf("converged snapshot %q missing %q", ref, wantPair)
		}
	}

	// The run must actually have batched — a k=1-shaped log would make this
	// test a duplicate of TestTCPTraceConformance.
	var flushes, ops int64
	for _, p := range procs {
		p.Inspect(func(a model.Automaton) {
			if b, okB := core.UnwrapReplica(a).Inner().(interface{ BatchStats() etob.BatchStats }); okB {
				st := b.BatchStats()
				flushes += st.Flushes
				ops += st.Ops
			}
		})
	}
	if ops != updates {
		t.Fatalf("batch layers saw %d ops, want %d", ops, updates)
	}
	if flushes == 0 || flushes >= ops {
		t.Fatalf("%d flushes for %d ops — the run never coalesced, so batch boundaries go unexercised", flushes, ops)
	}
	t.Logf("batching in the recorded run: %d ops in %d flushes", ops, flushes)

	for _, p := range procs {
		p.Stop()
		<-p.Done()
	}
	if log.Len() == 0 {
		t.Fatal("no steps recorded")
	}

	if err := runtime.Replay(n, factory, log); err != nil {
		t.Fatalf("batched live run does not conform to the deterministic kernel semantics:\n%v", err)
	}
}
