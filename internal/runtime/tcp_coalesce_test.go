package runtime

import (
	"net"
	"testing"
	"time"

	"repro/internal/model"
)

// TestTCPWriterCoalescesQueuedFrames pins the writev-style flush: frames that
// queue while the peer is unreachable must go out in (at most a couple of)
// coalesced connection writes once it comes up, not one write per frame — and
// the flush/coalesce counters must account for every delivered frame.
func TestTCPWriterCoalescesQueuedFrames(t *testing.T) {
	// Reserve both ports up front; only endpoint 1 binds for now, so its
	// writer to peer 2 is stuck redialing while we queue frames.
	addrs := make(map[model.ProcID]string, 2)
	var reserved []net.Listener
	for i := 1; i <= 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addrs[model.ProcID(i)] = ln.Addr().String()
		reserved = append(reserved, ln)
	}
	for _, ln := range reserved {
		ln.Close()
	}

	ep1, err := retryBind(TCPConfig{Self: 1, Peers: clonePeers(addrs)})
	if err != nil {
		t.Fatalf("bind ep1: %v", err)
	}
	defer ep1.Close()

	const frames = 10
	for i := 0; i < frames; i++ {
		if err := ep1.Send(Frame{From: 1, To: 2, ID: int64(i + 1), Payload: testPayload{K: i}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Give the writer time to park in dial backoff with the queue full.
	time.Sleep(100 * time.Millisecond)

	ep2, err := retryBind(TCPConfig{Self: 2, Peers: clonePeers(addrs)})
	if err != nil {
		t.Fatalf("bind ep2: %v", err)
	}
	defer ep2.Close()

	for i := 0; i < frames; i++ {
		f := expectFrame(t, ep2, 5*time.Second)
		if f.ID != int64(i+1) || f.Payload.(testPayload).K != i {
			t.Fatalf("frame %d out of order or mangled: %+v", i, f)
		}
	}

	flushes, coalesced := ep1.Flushes(), ep1.Coalesced()
	if flushes+coalesced != frames {
		t.Errorf("flushes (%d) + coalesced (%d) != %d delivered frames", flushes, coalesced, frames)
	}
	// All 10 frames were queued before the peer's listener existed, so after
	// the single-frame wakeup that got stuck dialing, the rest must ride one
	// drain: at most two flushes, at least eight saved writes.
	if flushes > 2 || coalesced < frames-2 {
		t.Errorf("coalescing too weak: %d flushes, %d coalesced frames", flushes, coalesced)
	}
	if ep1.InboxDropped() != 0 {
		t.Errorf("unexpected inbox drops on the sender: %d", ep1.InboxDropped())
	}
}
