package runtime

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/etob"
	"repro/internal/model"
	"repro/internal/smr"
	"repro/internal/trace"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func TestLiveETOBDelivers(t *testing.T) {
	rec := trace.NewRecorder(3)
	c := NewCluster(3, etob.Factory(), Options{Observer: rec})
	defer c.Stop()

	for _, p := range model.Procs(3) {
		c.Submit(p, model.BroadcastInput{ID: fmt.Sprintf("m%d", p)})
	}
	ok := waitFor(t, 5*time.Second, func() bool {
		return rec.AllDelivered(model.Procs(3), []string{"m1", "m2", "m3"})
	})
	if !ok {
		t.Fatalf("messages not delivered everywhere; finals: %v %v %v",
			rec.FinalSeq(1), rec.FinalSeq(2), rec.FinalSeq(3))
	}
	// Heartbeat Ω stabilizes on p1 (smallest live): sequences identical.
	ref := rec.FinalSeq(1)
	for _, p := range model.Procs(3) {
		got := rec.FinalSeq(p)
		if len(got) != len(ref) {
			t.Fatalf("%v seq %v != %v", p, got, ref)
		}
	}
}

func TestLiveLeaderFailover(t *testing.T) {
	rec := trace.NewRecorder(3)
	c := NewCluster(3, etob.Factory(), Options{Observer: rec})
	defer c.Stop()

	c.Submit(2, model.BroadcastInput{ID: "before"})
	if !waitFor(t, 5*time.Second, func() bool {
		return rec.AllDelivered(model.Procs(3), []string{"before"})
	}) {
		t.Fatal("initial delivery failed")
	}

	// Kill the heartbeat leader p1; p2 must take over and keep delivering.
	c.Crash(1)
	c.Submit(3, model.BroadcastInput{ID: "after"})
	if !waitFor(t, 5*time.Second, func() bool {
		return rec.AllDelivered([]model.ProcID{2, 3}, []string{"before", "after"})
	}) {
		t.Fatalf("no progress after leader crash; finals: %v %v", rec.FinalSeq(2), rec.FinalSeq(3))
	}
	rep := trace.CheckETOB(rec, []model.ProcID{2, 3}, trace.CheckOptions{})
	if !rep.NoCreation.OK || !rep.NoDuplication.OK || !rep.CausalOrder.OK {
		t.Fatalf("safety violated in live run: %+v", rep)
	}
}

func TestLiveSMRKVStore(t *testing.T) {
	factory := smr.ReplicaFactory(etob.Factory(), smr.KVFactory)
	c := NewCluster(3, factory, Options{})
	defer c.Stop()

	c.Submit(1, smr.Command{Cmd: "set greeting hello"})
	c.Submit(2, smr.Command{Cmd: "set from p2"})

	var snap1, snap2 string
	ok := waitFor(t, 5*time.Second, func() bool {
		c.Inspect(1, func(a model.Automaton) { snap1 = a.(*smr.Replica).Snapshot() })
		c.Inspect(2, func(a model.Automaton) { snap2 = a.(*smr.Replica).Snapshot() })
		return snap1 == snap2 && snap1 == "from=p2,greeting=hello"
	})
	if !ok {
		t.Fatalf("replicas did not converge: %q vs %q", snap1, snap2)
	}
}

func TestLiveInspectOnCrashedNode(t *testing.T) {
	c := NewCluster(2, etob.Factory(), Options{})
	defer c.Stop()
	c.Crash(2)
	if c.Inspect(2, func(model.Automaton) {}) {
		// Inspect may race with the crash and still run; both outcomes are
		// acceptable, but it must not hang.
		t.Log("inspect ran before crash took effect")
	}
}

func TestLiveDelayOption(t *testing.T) {
	rec := trace.NewRecorder(2)
	c := NewCluster(2, etob.Factory(), Options{
		Observer: rec,
		Delay:    func(_, _ model.ProcID) time.Duration { return 3 * time.Millisecond },
	})
	defer c.Stop()
	c.Submit(2, model.BroadcastInput{ID: "delayed"})
	if !waitFor(t, 5*time.Second, func() bool {
		return rec.AllDelivered(model.Procs(2), []string{"delayed"})
	}) {
		t.Fatal("delayed delivery failed")
	}
}

func TestClusterStopIdempotentAndPanics(t *testing.T) {
	c := NewCluster(2, etob.Factory(), Options{})
	c.Stop()
	c.Stop() // must be safe
	defer func() {
		if recover() == nil {
			t.Error("n=1 must panic")
		}
	}()
	NewCluster(1, etob.Factory(), Options{})
}
