package runtime

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/retransmit"
)

func init() {
	RegisterWireType(retransmit.Data{})
	RegisterWireType(retransmit.Ack{})
}

// TestCapBackoff pins the writer's cross-connection backoff curve: doubling
// from the base, capped at the max.
func TestCapBackoff(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	want := []time.Duration{10, 10, 20, 40, 80, 80, 80}
	for streak, w := range want {
		if got := capBackoff(base, max, streak); got != w*time.Millisecond {
			t.Errorf("capBackoff(streak=%d) = %v, want %v", streak, got, w*time.Millisecond)
		}
	}
}

// flapListener accepts connections and resets them immediately (SO_LINGER 0
// sends a RST rather than a graceful FIN), counting every accept — the
// flapping-peer regime: dials SUCCEED, so dial-level backoff never engages,
// and only the writer's cross-connection failure streak stands between the
// transport and a tight dial/reset/redial loop.
type flapListener struct {
	ln      net.Listener
	accepts atomic.Int64
	done    chan struct{}
}

func newFlapListener(t *testing.T) *flapListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("flap listen: %v", err)
	}
	fl := &flapListener{ln: ln, done: make(chan struct{})}
	go func() {
		defer close(fl.done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fl.accepts.Add(1)
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			conn.Close()
		}
	}()
	t.Cleanup(func() { ln.Close(); <-fl.done })
	return fl
}

// TestTCPWriterBacksOffAcrossFlappingConnections: against a peer that
// accepts and immediately resets every connection, the writer must pace its
// redials by the capped backoff instead of burning one dial per queued
// frame. The regression this pins: the pre-hardening writer reset its
// backoff whenever a dial succeeded, so a flapping peer saw a reconnection
// attempt for every frame sent — hundreds in this test's window — where the
// backoff bounds it near windowMs/backoffMs.
func TestTCPWriterBacksOffAcrossFlappingConnections(t *testing.T) {
	flap := newFlapListener(t)
	selfLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	selfAddr := selfLn.Addr().String()
	selfLn.Close()
	tr, err := retryBind(TCPConfig{
		Self: 1,
		Peers: map[model.ProcID]string{
			1: selfAddr,
			2: flap.ln.Addr().String(),
		},
		RedialBackoff:    20 * time.Millisecond,
		MaxRedialBackoff: 160 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	defer tr.Close()

	const window = 600 * time.Millisecond
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		_ = tr.Send(Frame{From: 1, To: 2, Payload: testPayload{K: 1}})
		time.Sleep(time.Millisecond)
	}
	accepts := flap.accepts.Load()
	if accepts == 0 {
		t.Fatal("writer never dialed the flapping peer")
	}
	// ~600 frames were queued; an unthrottled writer redials at frame rate
	// (hundreds of accepts). The 20ms base backoff bounds it near 30; allow
	// generous scheduler slack.
	if accepts > 100 {
		t.Fatalf("flapping peer saw %d connection attempts in %v; the writer is redialing in a tight loop", accepts, window)
	}
}

// cutProxy is a chaos TCP proxy that forwards bytes to a real backend but
// RESETS the connection after a seeded byte budget — deliberately cutting
// mid-frame (including inside the 4-byte length prefix) to exercise the
// receiver's partial-frame handling.
type cutProxy struct {
	ln      net.Listener
	backend string
	rng     *rand.Rand
	mu      sync.Mutex
	cuts    atomic.Int64
	wg      sync.WaitGroup
}

func newCutProxy(t *testing.T, backend string, seed int64) *cutProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &cutProxy{ln: ln, backend: backend, rng: rand.New(rand.NewSource(seed))}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			p.wg.Add(1)
			go p.serve(conn)
		}
	}()
	t.Cleanup(func() { ln.Close(); p.wg.Wait() })
	return p
}

// budget draws the next connection's byte allowance: small enough to land
// inside frames routinely (a retransmit envelope around an etob payload gobs
// to a few hundred bytes).
func (p *cutProxy) budget() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return 64 + p.rng.Int63n(900)
}

func (p *cutProxy) serve(client net.Conn) {
	defer p.wg.Done()
	defer client.Close()
	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer backend.Close()
	// Only the client→backend direction carries frames (the transport's
	// writer connections are unidirectional); cut after the byte budget.
	n, _ := io.CopyN(backend, client, p.budget())
	_ = n
	p.cuts.Add(1)
	if tc, ok := client.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	if tc, ok := backend.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
}

// chatAutomaton broadcasts every input and records every distinct payload it
// receives — the minimal protocol for exercising the retransmission layer
// end-to-end over a hostile wire.
type chatAutomaton struct {
	self model.ProcID
	mu   sync.Mutex
	got  map[string]int
}

func (c *chatAutomaton) Init(model.Context) {}
func (c *chatAutomaton) Input(ctx model.Context, in any) {
	ctx.Broadcast(in)
}
func (c *chatAutomaton) Recv(_ model.Context, _ model.ProcID, payload any) {
	p, ok := payload.(testPayload)
	if !ok {
		p = testPayload{S: "CORRUPT(wrong type)"}
	}
	c.mu.Lock()
	c.got[p.S]++
	c.mu.Unlock()
}
func (c *chatAutomaton) Tick(model.Context) {}

// TestTCPReconnectUnderMidFrameResets: a proxy cuts the p1→p2 connection
// after seeded byte budgets — mid-frame, mid-length-prefix — over and over
// while p1 streams retransmit-wrapped broadcasts. Two properties:
//
//  1. No corrupted frame is EVER delivered: a truncated or garbled frame
//     must fail the length-prefix/gob decode and kill the connection, never
//     surface to the automaton (every payload p2 receives is one p1 sent).
//  2. The retransmission layer heals every gap: despite each connection
//     dying within ~a few frames, every payload eventually reaches p2
//     exactly once.
func TestTCPReconnectUnderMidFrameResets(t *testing.T) {
	// Real endpoint addresses.
	addrs := make(map[model.ProcID]string, 2)
	var reserved []net.Listener
	for i := 1; i <= 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[model.ProcID(i)] = ln.Addr().String()
		reserved = append(reserved, ln)
	}
	for _, ln := range reserved {
		ln.Close()
	}
	proxy := newCutProxy(t, addrs[2], 1234)

	// p1 dials p2 THROUGH the proxy; p2 dials p1 directly (acks flow back on
	// p2's own writer connections, unmolested — the cut link is p1→p2).
	p1Peers := map[model.ProcID]string{1: addrs[1], 2: proxy.ln.Addr().String()}
	p2Peers := map[model.ProcID]string{1: addrs[1], 2: addrs[2]}
	mk := func(self model.ProcID, peers map[model.ProcID]string) *TCPTransport {
		tr, err := retryBind(TCPConfig{
			Self: self, Peers: peers,
			RedialBackoff: 2 * time.Millisecond, MaxRedialBackoff: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("bind %v: %v", self, err)
		}
		return tr
	}
	tr1, tr2 := mk(1, p1Peers), mk(2, p2Peers)

	autos := make(map[model.ProcID]*chatAutomaton)
	var mu sync.Mutex
	factory := func(p model.ProcID, n int) model.Automaton {
		a := &chatAutomaton{self: p, got: make(map[string]int)}
		mu.Lock()
		autos[p] = a
		mu.Unlock()
		return a
	}
	wrapped := retransmit.Wrap(factory, retransmit.Options{Seed: 5})
	opts := Options{TickInterval: 2 * time.Millisecond, HeartbeatInterval: 2 * time.Millisecond}
	proc1 := NewProc(tr1, wrapped, opts)
	proc2 := NewProc(tr2, wrapped, opts)
	defer func() {
		proc1.Stop()
		proc2.Stop()
		<-proc1.Done()
		<-proc2.Done()
	}()

	const msgs = 60
	want := make(map[string]bool, msgs)
	for i := 0; i < msgs; i++ {
		m := "msg-" + time.Duration(i).String()
		want[m] = true
		if !proc1.Submit(testPayload{K: i, S: m}) {
			t.Fatalf("submit %d failed", i)
		}
		time.Sleep(2 * time.Millisecond)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		mu.Lock()
		a2 := autos[2]
		mu.Unlock()
		var missing int
		var corrupt []string
		if a2 != nil {
			a2.mu.Lock()
			missing = 0
			for m := range want {
				if a2.got[m] == 0 {
					missing++
				}
			}
			for g, count := range a2.got {
				if !want[g] {
					corrupt = append(corrupt, g)
				}
				if count > 1 {
					corrupt = append(corrupt, g+" (delivered twice)")
				}
			}
			a2.mu.Unlock()
		} else {
			missing = msgs
		}
		if len(corrupt) > 0 {
			t.Fatalf("corrupted or duplicated deliveries surfaced to the automaton: %v", corrupt)
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retransmission never healed the cut link: %d of %d payloads missing after %d connection cuts",
				missing, msgs, proxy.cuts.Load())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if proxy.cuts.Load() == 0 {
		t.Fatal("the proxy never cut a connection; the test exercised nothing")
	}
}
