package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Proc is one live process: the event loop that runs a single automaton over
// any Transport. It is the piece the old Cluster hardwired to channels, now
// transport-agnostic — the same loop drives an in-process replica over a
// ChanTransport and a deployable node over a TCPTransport.
//
// The loop multiplexes four event sources, taking one atomic step at a time
// (the step model of §2):
//
//   - frames from the transport (message receptions; Heartbeat frames are
//     consumed by the loop itself to maintain the heartbeat Ω),
//   - local operations (Submit inputs and Inspect calls),
//   - the tick timer (λ-steps, the paper's local timeout),
//   - the heartbeat timer (broadcasting this process's liveness).
//
// The heartbeat Ω is the one failure detector actually IMPLEMENTED from
// message passing: each process periodically sends Heartbeat to every peer
// and trusts the smallest-ID process heard from within LeaderTimeout
// (itself included). Under partial synchrony the timely processes stabilize
// on one leader, which is how Ω is realized in practice.
type Proc struct {
	tr   Transport
	opts Options
	self model.ProcID
	n    int
	auto model.Automaton

	ops      chan localOp
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	clockBase time.Time
	msgSeq    atomic.Int64
	lastBeat  []atomic.Int64 // index q-1: last heartbeat receipt from q, unix nanos

	prevLeader model.ProcID // event-loop-local: Ω output at the previous step
	flaps      atomic.Int64 // Ω output changes observed across steps
}

type localOp struct {
	input   any
	inspect func(model.Automaton)
	done    chan struct{}
}

// NewProc builds and starts a process over tr, running the automaton the
// factory produces for tr.Self(). Call Stop (or Close the transport and
// Stop) to shut it down.
func NewProc(tr Transport, factory model.AutomatonFactory, opts Options) *Proc {
	opts = opts.withDefaults()
	p := &Proc{
		tr:        tr,
		opts:      opts,
		self:      tr.Self(),
		n:         tr.N(),
		auto:      factory(tr.Self(), tr.N()),
		ops:       make(chan localOp, 64),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		clockBase: opts.ClockEpoch,
		lastBeat:  make([]atomic.Int64, tr.N()),
	}
	if p.clockBase.IsZero() {
		p.clockBase = time.Now()
	}
	go p.run()
	return p
}

// Self returns the process ID.
func (p *Proc) Self() model.ProcID { return p.self }

// N returns the cluster size.
func (p *Proc) N() int { return p.n }

// Transport returns the endpoint this process runs over.
func (p *Proc) Transport() Transport { return p.tr }

// Done is closed when the event loop has exited.
func (p *Proc) Done() <-chan struct{} { return p.done }

// now returns the process-local clock: milliseconds since ClockEpoch. The
// paper's processes cannot read a global clock; this value is used only for
// logging, trace timestamps, and incarnation epochs (see Options.ClockEpoch).
func (p *Proc) now() model.Time {
	return model.Time(time.Since(p.clockBase) / time.Millisecond)
}

// Submit delivers an external input (operation invocation) to the process.
// It returns false if the process has stopped.
func (p *Proc) Submit(in any) bool {
	op := localOp{input: in}
	select {
	case <-p.stop:
		return false
	case p.ops <- op:
		p.opts.Observer.OnInput(p.self, p.now(), in)
		return true
	}
}

// Inspect runs f on the automaton inside the event loop (safe live access)
// and waits for completion. Returns false if the process has stopped.
func (p *Proc) Inspect(f func(model.Automaton)) bool {
	op := localOp{inspect: f, done: make(chan struct{})}
	select {
	case <-p.stop:
		return false
	case p.ops <- op:
	}
	select {
	case <-op.done:
		return true
	case <-p.stop:
		return false
	}
}

// Leader returns the process's current heartbeat-Ω output.
func (p *Proc) Leader() model.ProcID {
	return p.leader()
}

// LeaderFlaps returns how many times the heartbeat Ω's output has CHANGED
// across this process's steps — the oscillation count the paper's eventual
// guarantees ask to see settle. It is sampled per step (the granularity at
// which the automaton can observe Ω), so a flap between two steps that
// round-trips to the same leader is invisible, exactly as it is to the
// protocol. Safe to read from any goroutine.
func (p *Proc) LeaderFlaps() int64 { return p.flaps.Load() }

// PeersHeard returns how many PEERS (self excluded) this process has received
// a heartbeat from within the given window. It is the live connectivity
// signal the service plane's degraded mode keys on: a replica that has heard
// nobody for a leader-timeout span is cut off from the mesh — its Ω output
// has collapsed to itself and nothing it accepts can replicate until the
// partition heals.
func (p *Proc) PeersHeard(window time.Duration) int {
	cutoff := time.Now().Add(-window).UnixNano()
	heard := 0
	for i := range p.lastBeat {
		if model.ProcID(i+1) == p.self {
			continue
		}
		if p.lastBeat[i].Load() >= cutoff {
			heard++
		}
	}
	return heard
}

// Stop terminates the event loop and closes the transport endpoint.
// Idempotent; it does not wait for the loop to exit (use Done).
func (p *Proc) Stop() {
	p.stopOnce.Do(func() {
		close(p.stop)
		_ = p.tr.Close()
	})
}

func (p *Proc) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.opts.TickInterval)
	defer ticker.Stop()
	beats := time.NewTicker(p.opts.HeartbeatInterval)
	defer beats.Stop()

	p.step(trace.StepInit, model.NoProc, nil, nil, func(ctx *liveCtx) { p.auto.Init(ctx) })
	inbox := p.tr.Recv()
	for {
		select {
		case <-p.stop:
			return
		case op := <-p.ops:
			if op.inspect != nil {
				op.inspect(p.auto)
				close(op.done)
				continue
			}
			in := op.input
			p.step(trace.StepInput, model.NoProc, nil, in, func(ctx *liveCtx) { p.auto.Input(ctx, in) })
		case f := <-inbox:
			p.handle(f)
		case <-ticker.C:
			p.step(trace.StepTick, model.NoProc, nil, nil, func(ctx *liveCtx) { p.auto.Tick(ctx) })
		case <-beats.C:
			for _, q := range model.Procs(p.n) {
				if q != p.self {
					_ = p.tr.Send(Frame{From: p.self, To: q, Payload: Heartbeat{}})
				}
			}
		}
	}
}

func (p *Proc) handle(f Frame) {
	if _, ok := f.Payload.(Heartbeat); ok {
		if f.From >= 1 && int(f.From) <= p.n {
			p.lastBeat[f.From-1].Store(time.Now().UnixNano())
		}
		return
	}
	p.opts.Observer.OnDeliver(p.now(), sim.Message{
		ID: f.ID, From: f.From, To: p.self, Payload: f.Payload, SentAt: f.SentAt,
	})
	p.step(trace.StepRecv, f.From, f.Payload, nil, func(ctx *liveCtx) {
		p.auto.Recv(ctx, f.From, f.Payload)
	})
}

// step executes one atomic step: fix the clock and detector value, run the
// handler, and (when conformance logging is on) append the recorded step —
// trigger, FD, clock, and emissions — to the StepLog.
func (p *Proc) step(kind trace.StepKind, from model.ProcID, payload, in any, h func(*liveCtx)) {
	ctx := &liveCtx{p: p, t: p.now(), leader: p.leader()}
	// Ω flap accounting: prevLeader is touched only here, inside the
	// single-threaded event loop; the counter is atomic so /metrics can read
	// it from a scraping goroutine. The init step seeds without counting.
	if ctx.leader != p.prevLeader {
		if p.prevLeader != model.NoProc {
			p.flaps.Add(1)
		}
		p.prevLeader = ctx.leader
	}
	if p.opts.StepLog != nil {
		ctx.rec = &trace.Step{
			P: p.self, Kind: kind, From: from, Payload: payload, In: in,
			FD: fd.OmegaValue(ctx.leader), Now: ctx.t,
		}
	}
	h(ctx)
	if ctx.rec != nil {
		p.opts.StepLog.Append(*ctx.rec)
	}
}

// leader is the heartbeat Ω: the smallest-ID process believed alive (itself,
// or a peer heard from within LeaderTimeout).
func (p *Proc) leader() model.ProcID {
	cutoff := time.Now().Add(-p.opts.LeaderTimeout).UnixNano()
	for _, q := range model.Procs(p.n) {
		if q == p.self {
			return q
		}
		if p.lastBeat[q-1].Load() >= cutoff {
			return q
		}
	}
	return p.self
}

// sendProto transmits one protocol message: stamp a per-process message ID
// (unique across the cluster by construction), notify the observer, and hand
// the frame to the transport.
func (p *Proc) sendProto(to model.ProcID, payload any) {
	id := int64(p.self)<<40 | p.msgSeq.Add(1)
	now := p.now()
	p.opts.Observer.OnSend(now, sim.Message{ID: id, From: p.self, To: to, Payload: payload, SentAt: now})
	_ = p.tr.Send(Frame{From: p.self, To: to, ID: id, SentAt: now, Payload: payload})
}

// liveCtx implements model.Context for one live step.
type liveCtx struct {
	p      *Proc
	t      model.Time
	leader model.ProcID
	rec    *trace.Step // non-nil when conformance logging is on
}

var _ model.Context = (*liveCtx)(nil)

func (c *liveCtx) Self() model.ProcID { return c.p.self }
func (c *liveCtx) N() int             { return c.p.n }
func (c *liveCtx) Now() model.Time    { return c.t }
func (c *liveCtx) FD() any            { return fd.OmegaValue(c.leader) }

func (c *liveCtx) Send(to model.ProcID, payload any) {
	if c.rec != nil {
		c.rec.Sends = append(c.rec.Sends, trace.SendRec{To: to, Payload: payload})
	}
	c.p.sendProto(to, payload)
}

func (c *liveCtx) Broadcast(payload any) {
	for _, q := range model.Procs(c.p.n) {
		c.Send(q, payload)
	}
}

func (c *liveCtx) Output(v any) {
	if c.rec != nil {
		c.rec.Outputs = append(c.rec.Outputs, v)
	}
	c.p.opts.Observer.OnOutput(c.p.self, c.t, v)
}
