package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
)

// ChanNetwork is the in-process fabric: n ChanTransport endpoints joined by
// buffered channels. It is the reference Transport implementation — the
// goroutine/channel plumbing that used to be hardwired into the Cluster —
// and the fastest one, since frames move by pointer-free channel send with
// no encoding.
type ChanNetwork struct {
	n         int
	inboxSize int
	delay     func(from, to model.ProcID) time.Duration
	onDrop    func(from, to model.ProcID, payload any)

	eps     []*ChanTransport
	pending sync.WaitGroup // delayed deliveries in flight
}

// ChanNetworkConfig tunes a ChanNetwork.
type ChanNetworkConfig struct {
	// InboxSize is the per-endpoint frame buffer (default 8192). A full inbox
	// DROPS incoming frames (counted, reported through OnDrop) instead of
	// blocking the sender: a slow or wedged receiver must not stall its peers
	// mid-broadcast.
	InboxSize int
	// Delay, if non-nil, returns the artificial link delay per frame.
	Delay func(from, to model.ProcID) time.Duration
	// OnDrop, if non-nil, is called for every frame dropped on inbox overflow
	// (from the sender's goroutine or a delayed-delivery timer).
	OnDrop func(from, to model.ProcID, payload any)
}

// NewChanNetwork builds the fabric for an n-process in-process cluster.
func NewChanNetwork(n int, cfg ChanNetworkConfig) *ChanNetwork {
	if n < 2 {
		panic("runtime: ChanNetwork needs at least 2 processes")
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 8192
	}
	nw := &ChanNetwork{n: n, inboxSize: cfg.InboxSize, delay: cfg.Delay, onDrop: cfg.OnDrop}
	for _, p := range model.Procs(n) {
		nw.eps = append(nw.eps, &ChanTransport{
			nw:     nw,
			self:   p,
			inbox:  make(chan Frame, cfg.InboxSize),
			closed: make(chan struct{}),
		})
	}
	return nw
}

// Endpoint returns process p's transport.
func (nw *ChanNetwork) Endpoint(p model.ProcID) *ChanTransport {
	if p < 1 || int(p) > nw.n {
		panic(fmt.Sprintf("runtime: unknown process %v", p))
	}
	return nw.eps[p-1]
}

// Dropped returns the total frames dropped across all endpoints.
func (nw *ChanNetwork) Dropped() int64 {
	var total int64
	for _, ep := range nw.eps {
		total += ep.Dropped()
	}
	return total
}

// Close closes every endpoint and waits for delayed deliveries to settle.
func (nw *ChanNetwork) Close() {
	for _, ep := range nw.eps {
		_ = ep.Close()
	}
	nw.pending.Wait()
}

// ChanTransport is one endpoint of a ChanNetwork.
type ChanTransport struct {
	nw      *ChanNetwork
	self    model.ProcID
	inbox   chan Frame
	closed  chan struct{}
	once    sync.Once
	dropped atomic.Int64
}

var _ Transport = (*ChanTransport)(nil)

// Self implements Transport.
func (t *ChanTransport) Self() model.ProcID { return t.self }

// N implements Transport.
func (t *ChanTransport) N() int { return t.nw.n }

// Recv implements Transport.
func (t *ChanTransport) Recv() <-chan Frame { return t.inbox }

// Dropped implements Transport.
func (t *ChanTransport) Dropped() int64 { return t.dropped.Load() }

// Close implements Transport. Frames sent to a closed endpoint are silently
// discarded (the crash semantics of the model: messages to a crashed process
// are lost, not an overflow condition).
func (t *ChanTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	return nil
}

// Send implements Transport: route the frame to the peer's inbox, applying
// the fabric's artificial delay if any.
func (t *ChanTransport) Send(f Frame) error {
	to := f.To
	if to < 1 || int(to) > t.nw.n {
		return fmt.Errorf("runtime: send to unknown process %v", to)
	}
	target := t.nw.eps[to-1]
	var d time.Duration
	if t.nw.delay != nil {
		d = t.nw.delay(t.self, to)
	}
	if d <= 0 {
		target.offer(f)
		return nil
	}
	t.nw.pending.Add(1)
	time.AfterFunc(d, func() {
		defer t.nw.pending.Done()
		target.offer(f)
	})
	return nil
}

// offer enqueues a frame without ever blocking: closed endpoints discard
// silently (crash semantics), full inboxes drop-with-counter (explicit
// overflow semantics — see Transport's contract).
func (t *ChanTransport) offer(f Frame) {
	select {
	case <-t.closed:
		return
	default:
	}
	select {
	case t.inbox <- f:
	case <-t.closed:
	default:
		t.dropped.Add(1)
		if t.nw.onDrop != nil {
			t.nw.onDrop(f.From, t.self, f.Payload)
		}
	}
}
