package runtime

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/etob"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func init() {
	// The wire vocabulary of the tests in this file.
	RegisterWireType(etob.UpdateMsg{})
	RegisterWireType(etob.PromoteMsg{})
	RegisterWireType(testPayload{})
}

type testPayload struct {
	K int
	S string
}

// tcpCluster builds n connected TCPTransport endpoints on loopback. Ports are
// reserved by binding throwaway listeners first (every endpoint needs the
// full peer map up front), then released just before the real binds.
func tcpCluster(t *testing.T, n int, cfg func(*TCPConfig)) []*TCPTransport {
	t.Helper()
	peerAddrs := make(map[model.ProcID]string, n)
	reserved := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		peerAddrs[model.ProcID(i+1)] = ln.Addr().String()
		reserved = append(reserved, ln)
	}
	for _, ln := range reserved {
		ln.Close()
	}
	eps := make([]*TCPTransport, n)
	for i := 0; i < n; i++ {
		p := model.ProcID(i + 1)
		c := TCPConfig{Self: p, Peers: clonePeers(peerAddrs)}
		if cfg != nil {
			cfg(&c)
		}
		ep, err := retryBind(c)
		if err != nil {
			t.Fatalf("bind %v: %v", p, err)
		}
		eps[i] = ep
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			if ep != nil {
				ep.Close()
			}
		}
	})
	return eps
}

// retryBind absorbs the small race window between releasing a reserved port
// and rebinding it.
func retryBind(c TCPConfig) (*TCPTransport, error) {
	var lastErr error
	for i := 0; i < 100; i++ {
		ep, err := NewTCPTransport(c)
		if err == nil {
			return ep, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return nil, lastErr
}

func clonePeers(m map[model.ProcID]string) map[model.ProcID]string {
	out := make(map[model.ProcID]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// expectFrame waits for one non-heartbeat frame on the endpoint.
func expectFrame(t *testing.T, tr Transport, within time.Duration) Frame {
	t.Helper()
	deadline := time.After(within)
	for {
		select {
		case f := <-tr.Recv():
			if _, beat := f.Payload.(Heartbeat); beat {
				continue
			}
			return f
		case <-deadline:
			t.Fatalf("no frame within %v", within)
		}
	}
}

// testTransportBasics is the conformance suite every Transport implementation
// must pass: peer addressing, metadata and payload fidelity, local self-send
// loopback, and a structural error for unknown destinations.
func testTransportBasics(t *testing.T, eps []Transport) {
	t.Helper()
	want := testPayload{K: 42, S: "hello"}
	if err := eps[0].Send(Frame{From: 1, To: 2, ID: 7, SentAt: 5, Payload: want}); err != nil {
		t.Fatalf("send: %v", err)
	}
	f := expectFrame(t, eps[1], 5*time.Second)
	if f.From != 1 || f.ID != 7 || f.SentAt != 5 {
		t.Fatalf("frame metadata mangled: %+v", f)
	}
	if got, ok := f.Payload.(testPayload); !ok || got != want {
		t.Fatalf("payload mangled: %+v", f.Payload)
	}

	if err := eps[0].Send(Frame{From: 1, To: 1, Payload: testPayload{K: 1}}); err != nil {
		t.Fatalf("self-send: %v", err)
	}
	f = expectFrame(t, eps[0], 5*time.Second)
	if f.Payload.(testPayload).K != 1 {
		t.Fatalf("self frame mangled: %+v", f)
	}

	if err := eps[0].Send(Frame{From: 1, To: model.ProcID(len(eps) + 5), Payload: want}); err == nil {
		t.Fatal("send to unknown peer must error")
	}
}

func TestChanTransportBasics(t *testing.T) {
	nw := NewChanNetwork(3, ChanNetworkConfig{})
	defer nw.Close()
	testTransportBasics(t, []Transport{nw.Endpoint(1), nw.Endpoint(2), nw.Endpoint(3)})
}

func TestTCPTransportBasics(t *testing.T) {
	raw := tcpCluster(t, 3, nil)
	testTransportBasics(t, []Transport{raw[0], raw[1], raw[2]})
}

// A graph-carrying ETOB update survives the gob round trip intact — the
// causal.Graph GobEncode/GobDecode pair plus payload registration make the
// protocol's richest message wire-safe.
func TestTCPCarriesCausalGraph(t *testing.T) {
	eps := tcpCluster(t, 2, nil)
	a := etob.New(1, 2)
	ctx := &collectCtx{n: 2}
	a.BroadcastETOB(ctx, "m1", nil)
	a.BroadcastETOB(ctx, "m2", []string{"m1"})
	var upd etob.UpdateMsg
	found := false
	for i := len(ctx.sends) - 1; i >= 0; i-- {
		if u, ok := ctx.sends[i].Payload.(etob.UpdateMsg); ok {
			upd, found = u, true
			break
		}
	}
	if !found {
		t.Fatal("no UpdateMsg among sends")
	}
	if err := eps[0].Send(Frame{From: 1, To: 2, Payload: upd}); err != nil {
		t.Fatalf("send: %v", err)
	}
	f := expectFrame(t, eps[1], 5*time.Second)
	got, ok := f.Payload.(etob.UpdateMsg)
	if !ok {
		t.Fatalf("payload type mangled: %T", f.Payload)
	}
	if got.CG == nil || got.CG.Len() != 2 || !got.CG.Has("m1") || !got.CG.Has("m2") {
		t.Fatalf("graph mangled: %v", got.CG)
	}
	if deps := got.CG.Deps("m2"); len(deps) != 1 || deps[0] != "m1" {
		t.Fatalf("edges mangled: deps(m2) = %v", deps)
	}
	// The decoded graph must be independently usable (index rebuilds).
	got.CG.Add("m3", []string{"m2"})
	if !got.CG.Has("m3") {
		t.Fatal("decoded graph not mutable")
	}
}

// collectCtx is a minimal model.Context collecting sends.
type collectCtx struct {
	n     int
	sends []trace.SendRec
}

var _ model.Context = (*collectCtx)(nil)

func (c *collectCtx) Self() model.ProcID { return 1 }
func (c *collectCtx) N() int             { return c.n }
func (c *collectCtx) Now() model.Time    { return 0 }
func (c *collectCtx) FD() any            { return model.ProcID(1) }
func (c *collectCtx) Send(to model.ProcID, payload any) {
	c.sends = append(c.sends, trace.SendRec{To: to, Payload: payload})
}
func (c *collectCtx) Broadcast(payload any) {
	for i := 1; i <= c.n; i++ {
		c.Send(model.ProcID(i), payload)
	}
}
func (c *collectCtx) Output(any) {}

// TCP reconnection: kill a receiver endpoint mid-stream, bring a new one up
// on the same address, and confirm frames flow again — the transport's
// redial loop heals the link without any sender-side intervention.
func TestTCPReconnect(t *testing.T) {
	eps := tcpCluster(t, 2, func(c *TCPConfig) {
		c.RedialBackoff = 5 * time.Millisecond
		c.MaxRedialBackoff = 50 * time.Millisecond
	})
	if err := eps[0].Send(Frame{From: 1, To: 2, Payload: testPayload{K: 1}}); err != nil {
		t.Fatalf("send: %v", err)
	}
	expectFrame(t, eps[1], 5*time.Second)

	// Kill p2's endpoint and restart it on the same address.
	peers := clonePeers(eps[1].cfg.Peers)
	eps[1].Close()
	revived, err := retryBind(TCPConfig{
		Self: 2, Peers: peers,
		RedialBackoff: 5 * time.Millisecond, MaxRedialBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	defer revived.Close()

	// Frames sent while the peer was down are lost (at-most-once); keep
	// sending until the revived endpoint hears one.
	deadline := time.After(10 * time.Second)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			_ = eps[0].Send(Frame{From: 1, To: 2, Payload: testPayload{K: 2}})
		case f := <-revived.Recv():
			if p, ok := f.Payload.(testPayload); ok && p.K == 2 {
				return // healed
			}
		case <-deadline:
			t.Fatal("link did not heal after peer restart")
		}
	}
}

// Inbox overflow must drop-with-counter, not block the sender — the explicit
// overflow contract of Options.InboxSize.
func TestChanInboxOverflowDropsAndCounts(t *testing.T) {
	var dropped atomic.Int64
	nw := NewChanNetwork(2, ChanNetworkConfig{
		InboxSize: 4,
		OnDrop:    func(from, to model.ProcID, payload any) { dropped.Add(1) },
	})
	defer nw.Close()
	// Nobody drains endpoint 2: the first 4 sends buffer, the rest must
	// return immediately (not block) and count as drops.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = nw.Endpoint(1).Send(Frame{From: 1, To: 2, Payload: testPayload{K: i}})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sender blocked on a full inbox")
	}
	if got := nw.Endpoint(2).Dropped(); got != 96 {
		t.Fatalf("dropped = %d, want 96", got)
	}
	if got := dropped.Load(); got != 96 {
		t.Fatalf("OnDrop fired %d times, want 96", got)
	}
}

// The drop counter is surfaced through the Cluster and through any Observer
// that also implements DropObserver.
func TestClusterSurfacesDrops(t *testing.T) {
	obs := &dropRecorder{}
	c := NewCluster(2, floodFactory(), Options{
		InboxSize:         2,
		Observer:          obs,
		TickInterval:      time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	defer c.Stop()
	waitUntil(t, 5*time.Second, func() bool { return c.Dropped() > 0 })
	if obs.drops.Load() == 0 {
		t.Fatal("DropObserver not notified")
	}
}

type dropRecorder struct {
	sim.NopObserver
	drops atomic.Int64
}

func (d *dropRecorder) OnDrop(from, to model.ProcID, payload any) { d.drops.Add(1) }

// floodFactory broadcasts on every tick, overwhelming a tiny inbox.
func floodFactory() model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return &flooder{} }
}

type flooder struct{}

func (f *flooder) Init(model.Context)                    {}
func (f *flooder) Recv(model.Context, model.ProcID, any) {}
func (f *flooder) Input(model.Context, any)              {}
func (f *flooder) Tick(ctx model.Context)                { ctx.Broadcast(testPayload{}) }

func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", d)
}
