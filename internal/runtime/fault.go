package runtime

import (
	"sort"
	"sync"
	"time"

	"repro/internal/model"
)

// FaultTransport is the live plane's fault injector: a Transport middleware
// that wraps any inner Transport (ChanTransport, TCPTransport) and disrupts
// OUTBOUND protocol frames with seeded drops, added delays, duplicates,
// reorders, connection-reset bursts, and dynamic two-sided partitions — the
// service-plane mirror of internal/sim/adversary. The same automaton stack
// that survives the simulator's hostile environments must survive them over
// real sockets; this is the middleware that lets tests and the chaos harness
// (internal/node's chaos soak) say so.
//
// Determinism contract: every per-frame fault decision — drop, burst length,
// duplicate, reorder, added delay — is a pure function of (Seed, directed
// link, k) where k counts the protocol frames sent on that link through this
// injector. Two injectors built from the same FaultConfig therefore produce
// the IDENTICAL fate schedule for the identical per-link frame sequence (the
// unit test pins this), so a chaos scenario is reproducible by seed alone:
// what varies between live runs is wall-clock interleaving, never which
// frames the injector chose to disrupt. Dynamic control-surface calls
// (Partition, Heal, SetEnabled) are scripted by the harness at wall instants
// and sit OUTSIDE the seeded schedule by design.
//
// Scope: faults apply on the send side, self-frames excepted (a process's
// frames to itself model local memory, as in the simulator). Heartbeat
// frames are subject to drops, partitions, and resets like any other frame —
// partitioning a replica away severs its Ω heartbeats too, which is exactly
// what drives internal/node's degraded read-only mode.
type FaultTransport struct {
	inner Transport
	cfg   FaultConfig

	mu        sync.Mutex
	enabled   bool
	links     map[linkID]*linkState
	left      map[model.ProcID]bool // partition: non-nil while partitioned
	partition bool
	injected  int64 // frames dropped by injected faults (drops, bursts, resets, partitions)
	dupes     int64
	delayed   int64
	pending   sync.WaitGroup // delayed deliveries in flight
	closed    chan struct{}
	once      sync.Once
}

// FaultConfig parameterizes an injector. The zero value injects nothing.
type FaultConfig struct {
	// Seed drives every per-frame decision (see the determinism contract).
	Seed int64
	// Drop is the mean per-frame drop probability across links in [0, 1).
	// Like adversary.Lossy, each directed link gets a fixed rate in
	// [0, 2*Drop] derived from (Seed, link), so losses are asymmetric.
	Drop float64
	// Burst, when >= 2, makes each drop open a burst taking out up to Burst
	// consecutive frames on that link (length drawn from the seeded stream).
	Burst int
	// DelayMin and DelayMax bound an added per-frame delivery delay. Zero
	// both means no added delay.
	DelayMin, DelayMax time.Duration
	// Duplicate is the per-frame probability of sending a second copy —
	// at-most-once transports deliver it twice; retransmission dedup must
	// absorb it.
	Duplicate float64
	// Reorder is the per-frame probability that a frame is held back and
	// transmitted AFTER the next frame on its link (pairwise swap), on top
	// of any delay jitter.
	Reorder float64
	// ResetEvery, when > 0, injects a connection reset roughly every
	// ResetEvery frames per link: the frame and the next ResetBurst frames
	// on the link are dropped in a burst, the way a broken TCP connection
	// takes out everything in flight. Defaults ResetBurst to 3.
	ResetEvery int
	ResetBurst int
	// PartitionAfter, PartitionFor, and PartitionLeft script a single timed
	// partition-and-heal window into the injector itself: PartitionAfter
	// after construction the processes in PartitionLeft are split from the
	// rest (Partition), and PartitionFor later the split heals (Heal) — the
	// live mirror of the simulator's timed sim.Partitioned layer, so a
	// preset can carry the whole scenario. Both durations and a non-empty
	// left side are required for the window to arm. Like every injector, the
	// split is enforced on the SEND side only: full isolation needs every
	// node running the same preset.
	PartitionAfter time.Duration
	PartitionFor   time.Duration
	PartitionLeft  []model.ProcID
}

type linkID struct{ from, to model.ProcID }

// linkState is the per-directed-link schedule cursor.
type linkState struct {
	k         int64 // frames sent on this link through the injector
	burstLeft int   // remaining frames of an open drop/reset burst
	held      *Frame
	heldDelay time.Duration
}

var _ Transport = (*FaultTransport)(nil)

// NewFaultTransport wraps inner with a fault injector. The injector starts
// ENABLED; SetEnabled(false) turns it into a transparent pass-through
// without unwrapping.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	if cfg.ResetEvery > 0 && cfg.ResetBurst <= 0 {
		cfg.ResetBurst = 3
	}
	t := &FaultTransport{
		inner:   inner,
		cfg:     cfg,
		enabled: true,
		links:   make(map[linkID]*linkState),
		closed:  make(chan struct{}),
	}
	if cfg.PartitionFor > 0 && len(cfg.PartitionLeft) > 0 {
		left := append([]model.ProcID(nil), cfg.PartitionLeft...)
		t.Schedule(cfg.PartitionAfter, func(t *FaultTransport) { t.Partition(left...) })
		t.Schedule(cfg.PartitionAfter+cfg.PartitionFor, func(t *FaultTransport) { t.Heal() })
	}
	return t
}

// Self implements Transport.
func (t *FaultTransport) Self() model.ProcID { return t.inner.Self() }

// N implements Transport.
func (t *FaultTransport) N() int { return t.inner.N() }

// Recv implements Transport.
func (t *FaultTransport) Recv() <-chan Frame { return t.inner.Recv() }

// Dropped implements Transport: the inner transport's own drops plus the
// frames this injector disrupted away.
func (t *FaultTransport) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inner.Dropped() + t.injected
}

// Injected returns how many frames the injector itself dropped (drops,
// bursts, resets, partitions) — the chaos harness's accounting, separate
// from the inner transport's organic losses.
func (t *FaultTransport) Injected() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// Duplicated returns how many extra frame copies the injector transmitted.
func (t *FaultTransport) Duplicated() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dupes
}

// Close implements Transport: waits for delayed deliveries to settle, then
// closes the inner transport.
func (t *FaultTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	t.pending.Wait()
	return t.inner.Close()
}

// Inner returns the wrapped transport (tests and diagnostics).
func (t *FaultTransport) Inner() Transport { return t.inner }

// SetEnabled turns injection on or off at a wall instant. Off, every frame
// passes straight through (partitions included — a disabled injector is a
// healed network).
func (t *FaultTransport) SetEnabled(on bool) {
	t.mu.Lock()
	t.enabled = on
	t.mu.Unlock()
}

// Partition installs a two-sided partition at a wall instant: frames between
// a process in left and one outside it are dropped (both directions — the
// caller lists one side, the complement is the other). It replaces any
// partition already in force. Self-frames and same-side frames pass.
func (t *FaultTransport) Partition(left ...model.ProcID) {
	side := make(map[model.ProcID]bool, len(left))
	for _, p := range left {
		side[p] = true
	}
	t.mu.Lock()
	t.left, t.partition = side, true
	t.mu.Unlock()
}

// Heal removes the partition at a wall instant. Seeded per-frame faults
// (drops, delays, duplicates, reorders, resets) keep running; SetEnabled
// turns those off too.
func (t *FaultTransport) Heal() {
	t.mu.Lock()
	t.left, t.partition = nil, false
	t.mu.Unlock()
}

// Partitioned reports whether a partition is currently in force.
func (t *FaultTransport) Partitioned() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.partition
}

// Schedule runs step against the injector after the given wall delay — the
// scripting primitive chaos scenarios are built from ("partition at t=2s,
// heal at t=4s"). The callback is skipped if the injector closes first.
func (t *FaultTransport) Schedule(after time.Duration, step func(*FaultTransport)) {
	t.pending.Add(1)
	timer := time.AfterFunc(after, func() {
		defer t.pending.Done()
		select {
		case <-t.closed:
		default:
			step(t)
		}
	})
	go func() {
		<-t.closed
		if timer.Stop() {
			t.pending.Done()
		}
	}()
}

// hash64 is the splitmix-style mix shared with adversary.Lossy's link-rate
// derivation: a pure function of its inputs, so fault schedules never depend
// on map order or call interleaving across links.
func hash64(seed int64, a, b, c int64) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(a)*0xbf58476d1ce4e5b9 +
		uint64(b)*0x94d049bb133111eb + uint64(c)*0xd6e8feb86659fd93
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash draw to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// linkRate mirrors adversary.Lossy: directed link (from, to) drops with a
// fixed rate in [0, 2*Drop], clamped below 1.
func (t *FaultTransport) linkRate(from, to model.ProcID) float64 {
	r := 2 * t.cfg.Drop * unit(hash64(t.cfg.Seed, int64(from), int64(to), -1))
	if r >= 1 {
		r = 0.999
	}
	return r
}

// fate is the seeded decision for the k-th frame on a link.
type fate struct {
	drop    bool
	dup     bool
	reorder bool
	delay   time.Duration
}

// decide computes the k-th frame's fate on a link — the pure function the
// determinism contract promises. Draw streams are decorrelated by salting
// the hash with a distinct constant per decision kind.
func (t *FaultTransport) decide(from, to model.ProcID, k int64) fate {
	var f fate
	cfg := &t.cfg
	if cfg.Drop > 0 && unit(hash64(cfg.Seed, int64(from), int64(to), k*8+0)) < t.linkRate(from, to) {
		f.drop = true
	}
	if cfg.ResetEvery > 0 &&
		unit(hash64(cfg.Seed, int64(from), int64(to), k*8+1)) < 1/float64(cfg.ResetEvery) {
		f.drop = true // reset: the caller opens a burst of ResetBurst more
	}
	if cfg.Duplicate > 0 && unit(hash64(cfg.Seed, int64(from), int64(to), k*8+2)) < cfg.Duplicate {
		f.dup = true
	}
	if cfg.Reorder > 0 && unit(hash64(cfg.Seed, int64(from), int64(to), k*8+3)) < cfg.Reorder {
		f.reorder = true
	}
	if cfg.DelayMax > cfg.DelayMin || cfg.DelayMin > 0 {
		span := int64(cfg.DelayMax - cfg.DelayMin)
		f.delay = cfg.DelayMin
		if span > 0 {
			f.delay += time.Duration(int64(unit(hash64(cfg.Seed, int64(from), int64(to), k*8+4)) * float64(span+1)))
		}
	}
	return f
}

// burstLen draws the length of a drop burst opened at frame k (1 = just this
// frame), mirroring Lossy's [1, Burst] draw.
func (t *FaultTransport) burstLen(from, to model.ProcID, k int64, max int) int {
	if max < 2 {
		return 1
	}
	return 1 + int(unit(hash64(t.cfg.Seed, int64(from), int64(to), k*8+5))*float64(max))
}

// Send implements Transport: consult the seeded schedule and the partition,
// then forward, duplicate, hold back, delay, or drop the frame.
func (t *FaultTransport) Send(f Frame) error {
	if f.From == f.To {
		return t.inner.Send(f) // self-link models local memory: never faulted
	}
	t.mu.Lock()
	if !t.enabled {
		t.mu.Unlock()
		return t.inner.Send(f)
	}
	if t.partition && t.left[f.From] != t.left[f.To] {
		t.injected++
		t.mu.Unlock()
		return nil
	}
	id := linkID{f.From, f.To}
	ls := t.links[id]
	if ls == nil {
		ls = &linkState{}
		t.links[id] = ls
	}
	k := ls.k
	ls.k++
	if ls.burstLeft > 0 {
		ls.burstLeft--
		t.injected++
		t.mu.Unlock()
		return nil
	}
	fate := t.decide(f.From, f.To, k)
	if fate.drop {
		burst := t.cfg.Burst
		if t.cfg.ResetEvery > 0 && burst < t.cfg.ResetBurst {
			burst = t.cfg.ResetBurst
		}
		if n := t.burstLen(f.From, f.To, k, burst); n > 1 {
			ls.burstLeft = n - 1
		}
		t.injected++
		t.mu.Unlock()
		return nil
	}
	// Reorder: hold this frame; it goes out after the NEXT surviving frame
	// on the link (or its own deferred flush if the link goes quiet).
	if fate.reorder && ls.held == nil {
		held := f
		ls.held = &held
		ls.heldDelay = fate.delay
		t.pending.Add(1)
		time.AfterFunc(maxDuration(fate.delay, time.Millisecond)*4, func() {
			defer t.pending.Done()
			t.flushHeld(id, &held)
		})
		t.mu.Unlock()
		return nil
	}
	var release *Frame
	var releaseDelay time.Duration
	if ls.held != nil {
		release, releaseDelay = ls.held, ls.heldDelay
		ls.held = nil
	}
	if fate.dup {
		t.dupes++
	}
	t.mu.Unlock()

	err := t.forward(f, fate.delay)
	if fate.dup {
		_ = t.forward(f, fate.delay+time.Millisecond)
	}
	if release != nil {
		_ = t.forward(*release, releaseDelay)
	}
	return err
}

// flushHeld releases a reordered frame whose link went quiet before the next
// frame could overtake it — held frames are delayed, never lost (a reorder
// is not a drop).
func (t *FaultTransport) flushHeld(id linkID, held *Frame) {
	t.mu.Lock()
	if t.links[id] == nil || t.links[id].held != held {
		t.mu.Unlock()
		return
	}
	t.links[id].held = nil
	t.mu.Unlock()
	_ = t.inner.Send(*held)
}

// forward transmits a frame after an optional injected delay.
func (t *FaultTransport) forward(f Frame, delay time.Duration) error {
	if delay <= 0 {
		return t.inner.Send(f)
	}
	t.mu.Lock()
	t.delayed++
	t.mu.Unlock()
	t.pending.Add(1)
	time.AfterFunc(delay, func() {
		defer t.pending.Done()
		select {
		case <-t.closed:
		default:
			_ = t.inner.Send(f)
		}
	})
	return nil
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// faultPresets is the live injector's preset vocabulary. The names mirror
// internal/sim/adversary's registry so "lossy" means the same kind of
// environment in the simulator and over real sockets; the magnitudes are
// rescaled from ticks to wall time.
var (
	faultPresetsMu sync.Mutex
	faultPresets   = map[string]func(seed int64) FaultConfig{
		// lossy: ~15% mean per-link loss, independent drops — pair with the
		// retransmission layer (internal/node always does).
		"lossy": func(seed int64) FaultConfig {
			return FaultConfig{Seed: seed, Drop: 0.15}
		},
		// lossy-burst: ~15% mean loss arriving in bursts of up to 4.
		"lossy-burst": func(seed int64) FaultConfig {
			return FaultConfig{Seed: seed, Drop: 0.15, Burst: 4}
		},
		// resets: a connection reset roughly every 40 frames per link, each
		// taking out a 3-frame burst — the mid-stream connection loss regime
		// the TCP transport's redial path is hardened against.
		"resets": func(seed int64) FaultConfig {
			return FaultConfig{Seed: seed, ResetEvery: 40, ResetBurst: 3}
		},
		// hostile: the live mirror of the simulator's hostile stack — ~10%
		// loss, added delay jitter, occasional duplicates and reorders, and
		// reset bursts, all at once.
		"hostile": func(seed int64) FaultConfig {
			return FaultConfig{
				Seed: seed, Drop: 0.10, Burst: 3,
				DelayMin: time.Millisecond, DelayMax: 25 * time.Millisecond,
				Duplicate: 0.05, Reorder: 0.10,
				ResetEvery: 80, ResetBurst: 3,
			}
		},
		// hostile-partition: the hostile stack plus a timed partition-and-heal
		// window — {p1, p2} split from the rest 2s in, healed 1s later — the
		// live mirror of the simulator's composite of the same name. Send-side
		// enforcement means every node must run the preset for full isolation,
		// exactly as every replica shares one simulated network.
		"hostile-partition": func(seed int64) FaultConfig {
			return FaultConfig{
				Seed: seed, Drop: 0.10, Burst: 3,
				DelayMin: time.Millisecond, DelayMax: 25 * time.Millisecond,
				Duplicate: 0.05, Reorder: 0.10,
				ResetEvery: 80, ResetBurst: 3,
				PartitionAfter: 2 * time.Second,
				PartitionFor:   time.Second,
				PartitionLeft:  []model.ProcID{1, 2},
			}
		},
	}
)

// RegisterFaultPreset adds a named live-injector preset, the way
// sim.RegisterPreset names simulator environments. Duplicate names panic.
func RegisterFaultPreset(name string, mk func(seed int64) FaultConfig) {
	faultPresetsMu.Lock()
	defer faultPresetsMu.Unlock()
	if _, dup := faultPresets[name]; dup {
		panic("runtime: fault preset " + name + " already registered")
	}
	faultPresets[name] = mk
}

// FaultPreset resolves a named fault profile at a seed. ok is false for
// unknown names; FaultPresetNames lists the vocabulary.
func FaultPreset(name string, seed int64) (FaultConfig, bool) {
	faultPresetsMu.Lock()
	defer faultPresetsMu.Unlock()
	mk, ok := faultPresets[name]
	if !ok {
		return FaultConfig{}, false
	}
	return mk(seed), true
}

// FaultPresetNames lists the registered live fault presets, sorted.
func FaultPresetNames() []string {
	faultPresetsMu.Lock()
	defer faultPresetsMu.Unlock()
	names := make([]string, 0, len(faultPresets))
	for name := range faultPresets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
