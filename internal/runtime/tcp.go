package runtime

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
)

func init() {
	// Heartbeats are the one payload the runtime itself puts on the wire.
	gob.Register(Heartbeat{})
}

// RegisterWireType registers a concrete payload type with the gob codec used
// by TCPTransport. Every payload type a protocol sends must be registered in
// each process that sends or receives it (internal/node registers the whole
// replica stack's vocabulary); unregistered payloads fail at encode time and
// are counted as drops.
func RegisterWireType(v any) { gob.Register(v) }

// maxFrameBytes bounds a single decoded frame (defensive: a corrupt length
// prefix must not allocate unbounded memory).
const maxFrameBytes = 64 << 20

// maxCoalescedFrames bounds how many queued frames one writer wakeup drains
// into a single connection write (bounds the flush buffer; the remainder just
// rides the next wakeup).
const maxCoalescedFrames = 128

// TCPConfig configures one process's TCPTransport endpoint.
type TCPConfig struct {
	// Self is this process.
	Self model.ProcID
	// Peers maps every process of the cluster — Self included — to its
	// transport address (host:port). Self's entry is the address this
	// endpoint listens on.
	Peers map[model.ProcID]string
	// InboxSize is the received-frame buffer (default 8192); overflow drops
	// with a counter, like every Transport.
	InboxSize int
	// OutboxSize is the per-peer outbound queue (default 1024). When a peer
	// is down or slow, frames beyond the queue are dropped and counted —
	// never blocking the replica's event loop.
	OutboxSize int
	// DialTimeout bounds one connection attempt (default 500ms).
	DialTimeout time.Duration
	// RedialBackoff is the initial pause after a failed dial, doubling up to
	// MaxRedialBackoff (defaults 25ms and 1s). The writer keeps redialing
	// for as long as the endpoint lives, so a restarted peer is picked up
	// automatically — reconnection is the transport's job, recovering the
	// frames lost meanwhile is the retransmission layer's.
	RedialBackoff    time.Duration
	MaxRedialBackoff time.Duration
	// OnDrop, if non-nil, hears about every dropped frame.
	OnDrop func(from, to model.ProcID, payload any)
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.InboxSize <= 0 {
		c.InboxSize = 8192
	}
	if c.OutboxSize <= 0 {
		c.OutboxSize = 1024
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 500 * time.Millisecond
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 25 * time.Millisecond
	}
	if c.MaxRedialBackoff <= 0 {
		c.MaxRedialBackoff = time.Second
	}
	return c
}

// TCPTransport is the wire transport: each process is its own OS process (or
// at least its own listener), frames travel as length-prefixed gob blobs
// over per-peer TCP connections. Writer goroutines own one reconnecting
// connection per peer, sharing a single net.Dialer; readers accept any
// number of inbound connections and funnel decoded frames into the inbox.
// Every frame is encoded independently (4-byte big-endian length + gob
// bytes), so a reconnection never desynchronizes the codec state and a
// partially written frame just fails the connection's decode and triggers a
// redial.
//
// Delivery is at-most-once — see the Transport contract for why replica
// automata wrap themselves in internal/retransmit when running over TCP.
type TCPTransport struct {
	cfg  TCPConfig
	self model.ProcID
	n    int

	ln        net.Listener
	dialer    *net.Dialer // shared across all peer writers
	inbox     chan Frame
	closed    chan struct{}
	once      sync.Once
	dropped   atomic.Int64
	inboxDrop atomic.Int64 // subset of dropped: inbox-overflow drops
	flushes   atomic.Int64 // connection writes (each carrying >= 1 frame)
	coalesced atomic.Int64 // frames that rode an earlier frame's flush
	redials   atomic.Int64 // dial attempts after a dial or write failure
	peers     map[model.ProcID]*tcpPeer
	wg        sync.WaitGroup
}

type tcpPeer struct {
	id   model.ProcID
	addr string
	out  chan Frame
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport binds Self's listen address and starts the accept loop and
// one writer per peer. The peer map must name every process exactly once,
// with IDs 1..n.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	cfg = cfg.withDefaults()
	n := len(cfg.Peers)
	if n < 2 {
		return nil, errors.New("runtime: TCP cluster needs at least 2 peers")
	}
	selfAddr, ok := cfg.Peers[cfg.Self]
	if !ok {
		return nil, fmt.Errorf("runtime: peer map has no entry for self (%v)", cfg.Self)
	}
	for _, p := range model.Procs(n) {
		if _, ok := cfg.Peers[p]; !ok {
			return nil, fmt.Errorf("runtime: peer map must cover 1..%d contiguously; %v missing", n, p)
		}
	}
	ln, err := net.Listen("tcp", selfAddr)
	if err != nil {
		return nil, fmt.Errorf("runtime: listen %s: %w", selfAddr, err)
	}
	t := &TCPTransport{
		cfg:    cfg,
		self:   cfg.Self,
		n:      n,
		ln:     ln,
		dialer: &net.Dialer{Timeout: cfg.DialTimeout},
		inbox:  make(chan Frame, cfg.InboxSize),
		closed: make(chan struct{}),
		peers:  make(map[model.ProcID]*tcpPeer, n-1),
	}
	for _, p := range model.Procs(n) {
		if p == cfg.Self {
			continue
		}
		peer := &tcpPeer{id: p, addr: cfg.Peers[p], out: make(chan Frame, cfg.OutboxSize)}
		t.peers[p] = peer
		t.wg.Add(1)
		go t.writer(peer)
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Self implements Transport.
func (t *TCPTransport) Self() model.ProcID { return t.self }

// N implements Transport.
func (t *TCPTransport) N() int { return t.n }

// Recv implements Transport.
func (t *TCPTransport) Recv() <-chan Frame { return t.inbox }

// Dropped implements Transport.
func (t *TCPTransport) Dropped() int64 { return t.dropped.Load() }

// InboxDropped returns the subset of Dropped() lost to inbox overflow (as
// opposed to outbound-queue overflow, encode failures, and broken writes).
func (t *TCPTransport) InboxDropped() int64 { return t.inboxDrop.Load() }

// Flushes returns how many connection writes the writers performed; each
// flush carries one or more coalesced frames.
func (t *TCPTransport) Flushes() int64 { return t.flushes.Load() }

// Redials returns how many dial attempts followed a connection failure — a
// failed dial retried, or a fresh dial after a broken write. A steadily
// climbing count is the transport-level signature of a flapping peer.
func (t *TCPTransport) Redials() int64 { return t.redials.Load() }

// Coalesced returns how many frames were carried by a flush they did not
// trigger — the frames whose syscall the coalescing writer saved.
func (t *TCPTransport) Coalesced() int64 { return t.coalesced.Load() }

// Addr returns the address the endpoint actually listens on (useful with
// ":0" test configs).
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Close implements Transport: stop the accept loop and all writers, close
// every connection, and wait for the goroutines to exit.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.closed)
		_ = t.ln.Close()
	})
	t.wg.Wait()
	return nil
}

// Send implements Transport: self-frames loop back through the inbox, peer
// frames enqueue on the peer's outbound queue. Never blocks — a full queue
// or closed endpoint drops the frame with a counter.
func (t *TCPTransport) Send(f Frame) error {
	if f.To == t.self {
		t.offer(f)
		return nil
	}
	peer, ok := t.peers[f.To]
	if !ok {
		return fmt.Errorf("runtime: send to unknown process %v", f.To)
	}
	select {
	case <-t.closed:
		return errors.New("runtime: transport closed")
	default:
	}
	select {
	case peer.out <- f:
	default:
		t.drop(f)
	}
	return nil
}

// drop counts one lost frame and tells the configured hook.
func (t *TCPTransport) drop(f Frame) {
	t.dropped.Add(1)
	if t.cfg.OnDrop != nil {
		t.cfg.OnDrop(f.From, f.To, f.Payload)
	}
}

// offer funnels a received (or self-sent) frame into the inbox, dropping on
// overflow like every Transport.
func (t *TCPTransport) offer(f Frame) {
	select {
	case <-t.closed:
		return
	default:
	}
	select {
	case t.inbox <- f:
	case <-t.closed:
	default:
		t.inboxDrop.Add(1)
		t.drop(f)
	}
}

// accept owns the listener: one reader goroutine per inbound connection.
// Frames carry their sender, so no handshake is needed — any process may
// open any number of connections here.
func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			// Transient accept error: back off briefly and keep serving.
			select {
			case <-t.closed:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		t.wg.Add(1)
		go t.reader(conn)
	}
}

// reader decodes length-prefixed frames off one inbound connection until it
// breaks or the endpoint closes.
func (t *TCPTransport) reader(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	// Unblock the blocking Read when the endpoint closes.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-t.closed:
			conn.SetReadDeadline(time.Now())
			conn.Close()
		case <-stop:
		}
	}()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size == 0 || size > maxFrameBytes {
			return // corrupt stream: drop the connection, peer will redial
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		var f Frame
		if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&f); err != nil {
			return // undecodable frame: same treatment as a broken stream
		}
		t.offer(f)
	}
}

// writer owns the outbound connection to one peer: dial (and redial, with
// capped exponential backoff) for as long as the endpoint lives, COALESCE
// whatever has queued behind the frame that woke it — up to
// maxCoalescedFrames, drained without blocking — into one buffer of
// independently encoded length-prefixed frames, and flush that buffer with a
// single connection write (the writev-style amortization: a replica
// broadcasting through the retransmission layer queues n envelopes back to
// back, and a batch-window's worth of traffic to one peer becomes one
// syscall instead of one per frame). Each frame still gets its own gob
// encoder and length prefix, so the reader is unchanged and a reconnection
// never desynchronizes codec state. Anything that cannot be delivered right
// now is dropped with a counter: an unencodable frame individually, a broken
// write the whole flush — at-most-once, by design.
//
// The backoff streak persists ACROSS connections, not just across failed
// dials: a flapping peer whose listener accepts connections and immediately
// resets them would otherwise induce a tight dial/write-fail/redial loop
// (dial succeeds, so dial-level backoff never engages). Consecutive
// connection failures — dial errors and write errors alike — widen the pause
// before the next dial up to MaxRedialBackoff; one successful write resets
// the streak.
func (t *TCPTransport) writer(peer *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	var buf bytes.Buffer
	batch := make([]Frame, 0, maxCoalescedFrames)
	encoded := make([]Frame, 0, maxCoalescedFrames)
	failStreak := 0
	for {
		var f Frame
		select {
		case <-t.closed:
			return
		case f = <-peer.out:
		}
		// Drain what queued behind the wakeup frame; later arrivals ride the
		// next flush.
		batch = append(batch[:0], f)
	drain:
		for len(batch) < maxCoalescedFrames {
			select {
			case more := <-peer.out:
				batch = append(batch, more)
			default:
				break drain
			}
		}
		if conn == nil {
			if failStreak > 0 {
				if !t.pause(capBackoff(t.cfg.RedialBackoff, t.cfg.MaxRedialBackoff, failStreak)) {
					return // endpoint closed while backing off
				}
				t.redials.Add(1)
			}
			var dialErrs int
			conn, dialErrs = t.dial(peer)
			failStreak += dialErrs
			if conn == nil {
				return // endpoint closed while dialing
			}
		}
		buf.Reset()
		encoded = encoded[:0]
		for _, fr := range batch {
			start := buf.Len()
			buf.Write([]byte{0, 0, 0, 0}) // length placeholder
			if err := gob.NewEncoder(&buf).Encode(fr); err != nil {
				// Unregistered or unencodable payload: this frame can never
				// be carried; count it and keep the rest of the flush.
				buf.Truncate(start)
				t.drop(fr)
				continue
			}
			b := buf.Bytes()[start:]
			binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
			encoded = append(encoded, fr)
		}
		if len(encoded) == 0 {
			continue
		}
		if _, err := conn.Write(buf.Bytes()); err != nil {
			conn.Close()
			conn = nil
			failStreak++
			for _, fr := range encoded {
				t.drop(fr)
			}
			continue
		}
		failStreak = 0
		t.flushes.Add(1)
		t.coalesced.Add(int64(len(encoded) - 1))
	}
}

// pause sleeps for d unless the endpoint closes first.
func (t *TCPTransport) pause(d time.Duration) bool {
	select {
	case <-t.closed:
		return false
	case <-time.After(d):
		return true
	}
}

// capBackoff is the writer's capped exponential redial pause after streak
// consecutive connection failures.
func capBackoff(base, max time.Duration, streak int) time.Duration {
	d := base
	for i := 1; i < streak && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// dial connects to a peer, retrying with capped exponential backoff until it
// succeeds or the endpoint closes (then it returns a nil conn). It reports
// how many attempts failed so the writer's cross-connection streak keeps
// counting.
func (t *TCPTransport) dial(peer *tcpPeer) (net.Conn, int) {
	backoff := t.cfg.RedialBackoff
	errs := 0
	for {
		conn, err := t.dialer.Dial("tcp", peer.addr)
		if err == nil {
			return conn, errs
		}
		errs++
		select {
		case <-t.closed:
			return nil, errs
		case <-time.After(backoff):
		}
		t.redials.Add(1)
		backoff *= 2
		if backoff > t.cfg.MaxRedialBackoff {
			backoff = t.cfg.MaxRedialBackoff
		}
	}
}
