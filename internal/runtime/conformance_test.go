package runtime_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/etob"
	"repro/internal/model"
	"repro/internal/retransmit"
	"repro/internal/runtime"
	"repro/internal/smr"
	"repro/internal/trace"
)

func init() {
	// The replica stack's wire vocabulary: retransmission envelopes carrying
	// the ETOB protocol messages.
	runtime.RegisterWireType(retransmit.Data{})
	runtime.RegisterWireType(retransmit.Ack{})
	runtime.RegisterWireType(etob.UpdateMsg{})
	runtime.RegisterWireType(etob.PromoteMsg{})
}

// TestTCPTraceConformance is the service plane's conformance oracle in
// action: run the FULL Eventual replica stack (retransmit → ETOB → replicated
// KV machine) live over real TCP connections while recording every step's
// schedule into a StepLog, then replay the log through fresh automata from
// the SAME factory under the deterministic step discipline and demand
// identical emissions at every step. Any place the live path forks the
// automaton semantics — the gob codec mangling a causality graph, the live
// context leaking wall-clock state into a decision, goroutine interleaving
// bleeding into a handler — shows up as a divergent step.
func TestTCPTraceConformance(t *testing.T) {
	const n, updates = 3, 12
	log := &trace.StepLog{}
	factory := core.ReplicaStack(core.Eventual, nil, &retransmit.Options{Seed: 7})

	// Reserve loopback ports so every endpoint knows the full peer map.
	peers := make(map[model.ProcID]string, n)
	var reserved []net.Listener
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		peers[model.ProcID(i+1)] = ln.Addr().String()
		reserved = append(reserved, ln)
	}
	for _, ln := range reserved {
		ln.Close()
	}

	procs := make([]*runtime.Proc, n)
	for i := 0; i < n; i++ {
		p := model.ProcID(i + 1)
		var tr *runtime.TCPTransport
		var err error
		for attempt := 0; attempt < 100; attempt++ {
			tr, err = runtime.NewTCPTransport(runtime.TCPConfig{Self: p, Peers: peers})
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("bind %v: %v", p, err)
		}
		procs[i] = runtime.NewProc(tr, factory, runtime.Options{StepLog: log})
	}
	defer func() {
		for _, p := range procs {
			p.Stop()
			<-p.Done()
		}
	}()

	// Drive updates through different replicas, then wait for convergence.
	want := make(map[string]string, updates)
	for i := 0; i < updates; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		want[k] = v
		if !procs[i%n].Submit(smr.Command{Cmd: "set " + k + " " + v}) {
			t.Fatalf("submit %d rejected", i)
		}
		time.Sleep(2 * time.Millisecond)
	}
	snapshot := func(p *runtime.Proc) (snap string, applied int) {
		p.Inspect(func(a model.Automaton) {
			r := core.UnwrapReplica(a)
			snap, applied = r.Snapshot(), r.AppliedCount()
		})
		return
	}
	converged := func() bool {
		ref, applied := snapshot(procs[0])
		if applied < updates || ref == "" {
			return false
		}
		for _, p := range procs[1:] {
			got, gotApplied := snapshot(p)
			if got != ref || gotApplied < updates {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(30 * time.Second)
	for !converged() {
		if time.Now().After(deadline) {
			s1, _ := snapshot(procs[0])
			s2, _ := snapshot(procs[1])
			s3, _ := snapshot(procs[2])
			t.Fatalf("replicas did not converge over TCP:\n p1: %s\n p2: %s\n p3: %s", s1, s2, s3)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ref, _ := snapshot(procs[0])
	for k, v := range want {
		if wantPair := k + "=" + v; !containsPair(ref, wantPair) {
			t.Fatalf("converged snapshot %q missing %q", ref, wantPair)
		}
	}

	// Freeze the log: stop every process before replaying.
	for _, p := range procs {
		p.Stop()
		<-p.Done()
	}
	if log.Len() == 0 {
		t.Fatal("no steps recorded")
	}

	// The oracle: the recorded schedule, replayed deterministically through
	// the same factory, must reproduce every emission.
	if err := runtime.Replay(n, factory, log); err != nil {
		t.Fatalf("live run does not conform to the deterministic kernel semantics:\n%v", err)
	}
}

func containsPair(snapshot, pair string) bool {
	for len(snapshot) > 0 {
		i := 0
		for i < len(snapshot) && snapshot[i] != ',' {
			i++
		}
		if snapshot[:i] == pair {
			return true
		}
		if i == len(snapshot) {
			break
		}
		snapshot = snapshot[i+1:]
	}
	return false
}
