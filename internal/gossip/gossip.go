// Package gossip provides the shared mechanics of epidemic dissemination for
// the protocol automata: configuration (fanout, rumor aging, anti-entropy
// cadence) and a deterministic per-process peer sampler.
//
// Rationale (ROADMAP "Big-n scaling"): the paper's Algorithm 4 and 5 both
// write "send to all", which costs n−1 envelopes per invocation — O(n²)
// envelopes per protocol round systemwide, the first thing that breaks at
// n in the hundreds. Both algorithms, however, only require that messages
// EVENTUALLY reach every correct process (ETOB's update messages carry
// monotone causality graphs, EC's promote values are write-once per
// (origin, instance)): neither needs a physical all-to-all round. That is
// exactly the delivery guarantee epidemic protocols give: a rumor pushed to
// O(log n) random peers per hop reaches all n processes in O(log n) hops
// with high probability [cf. Demers et al., PODC 87; Aspnes, Notes on Theory
// of Distributed Systems, ch. "Epidemic protocols"], and a slow round-robin
// anti-entropy pass repairs the o(1) tail deterministically, turning "with
// high probability" into "always, eventually".
//
// The package deliberately contains no protocol logic: each automaton owns
// its rumor format and absorption rule (etob forwards dependency-closed
// graph deltas, ec forwards origin-stamped promote values) and uses this
// package only for WHO to send to and WHEN to stop forwarding.
//
// Determinism: each process draws peers from its own PRNG stream, seeded
// from (Options.Seed, ProcID). The kernel steps automata in a reproducible
// order, so every draw — and therefore every trace — is a pure function of
// the run's seeds, preserving the simulator's bit-for-bit replay guarantee.
package gossip

import (
	"math/rand"

	"repro/internal/model"
)

// Options configures an automaton's gossip dissemination mode. The zero
// value disables gossip: the automaton broadcasts exactly as the paper's
// pseudocode writes, byte-identical to the pre-gossip implementation.
type Options struct {
	// Enable switches dissemination from all-to-all broadcast to epidemic
	// forwarding. All other fields are ignored while false.
	Enable bool
	// Fanout is the number of distinct peers each rumor emission is pushed
	// to. 0 means ceil(log2 n) + 1 — the classical epidemic fanout that
	// infects all n processes in O(log n) hops w.h.p.
	Fanout int
	// MaxAge is the rumor age bound: a rumor arriving with age a is
	// re-forwarded at age a+1 only while a+1 <= MaxAge, after which it goes
	// quiet and the anti-entropy pass owns its remaining spread. 0 means
	// ceil(log2 n) hops.
	MaxAge int
	// AntiEntropyEvery is the number of local timeouts (ticks) between
	// full-state exchanges with the next round-robin peer — the
	// deterministic repair channel that upgrades the rumor phase's
	// with-high-probability coverage to guaranteed eventual delivery.
	// 0 means every 4 ticks.
	AntiEntropyEvery int
	// Seed is the base seed of the per-process sampling streams. Two runs
	// with equal seeds draw identical peer samples.
	Seed int64
}

// Enabled reports whether gossip dissemination is on.
func (o Options) Enabled() bool { return o.Enable }

// WithDefaults resolves the zero fields against the system size.
func (o Options) WithDefaults(n int) Options {
	if o.Fanout <= 0 {
		o.Fanout = Log2Ceil(n) + 1
	}
	if o.MaxAge <= 0 {
		o.MaxAge = Log2Ceil(n)
	}
	if o.AntiEntropyEvery <= 0 {
		o.AntiEntropyEvery = 4
	}
	return o
}

// Log2Ceil returns ceil(log2 n) for n >= 1 (0 for n <= 1).
func Log2Ceil(n int) int {
	k, pow := 0, 1
	for pow < n {
		k++
		pow <<= 1
	}
	return k
}

// Sampler draws peer samples for one process from a seeded stream. Not safe
// for concurrent use; each automaton owns one.
type Sampler struct {
	peers   []model.ProcID // every process except the owner, ascending
	fanout  int
	rng     *rand.Rand
	rot     int              // anti-entropy round-robin cursor
	scratch []model.ProcID   // reused by Sample
}

// NewSampler returns the sampler for process self of n under o (which must
// already have defaults resolved).
func NewSampler(self model.ProcID, n int, o Options) *Sampler {
	peers := make([]model.ProcID, 0, n-1)
	for _, p := range model.Procs(n) {
		if p != self {
			peers = append(peers, p)
		}
	}
	// Distinct stream per process: mix the ProcID into the seed with a large
	// odd multiplier so adjacent seeds do not collide across processes.
	src := rand.NewSource(o.Seed*0x9E3779B1 + int64(self))
	return &Sampler{peers: peers, fanout: o.Fanout, rng: rand.New(src)}
}

// Sample returns fanout distinct peers drawn from this process's stream (all
// peers when fanout >= n−1). The returned slice is reused by the next call;
// callers must not retain it.
func (s *Sampler) Sample() []model.ProcID {
	if s.fanout >= len(s.peers) {
		return s.peers
	}
	if s.scratch == nil {
		s.scratch = make([]model.ProcID, len(s.peers))
	}
	copy(s.scratch, s.peers)
	// Partial Fisher–Yates: the first fanout positions are a uniform sample
	// without replacement.
	for i := 0; i < s.fanout; i++ {
		j := i + s.rng.Intn(len(s.scratch)-i)
		s.scratch[i], s.scratch[j] = s.scratch[j], s.scratch[i]
	}
	return s.scratch[:s.fanout]
}

// NextPeer returns the next anti-entropy partner in round-robin order,
// covering every peer once per len(peers) calls. ok is false for n = 1.
func (s *Sampler) NextPeer() (model.ProcID, bool) {
	if len(s.peers) == 0 {
		return 0, false
	}
	p := s.peers[s.rot%len(s.peers)]
	s.rot++
	return p, true
}

// Fanout returns the resolved fanout (for reporting).
func (s *Sampler) Fanout() int { return s.fanout }
