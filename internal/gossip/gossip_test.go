package gossip

import (
	"testing"

	"repro/internal/model"
)

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 16: 4, 17: 5, 64: 6, 256: 8, 1000: 10}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	o := Options{Enable: true}.WithDefaults(256)
	if o.Fanout != 9 || o.MaxAge != 8 || o.AntiEntropyEvery != 4 {
		t.Errorf("defaults at n=256: %+v, want fanout 9, maxage 8, AE 4", o)
	}
	custom := Options{Enable: true, Fanout: 3, MaxAge: 2, AntiEntropyEvery: 16}.WithDefaults(256)
	if custom.Fanout != 3 || custom.MaxAge != 2 || custom.AntiEntropyEvery != 16 {
		t.Errorf("explicit fields must survive WithDefaults: %+v", custom)
	}
	if (Options{}).Enabled() {
		t.Error("zero Options must be disabled")
	}
}

// TestSamplerDeterministicDistinct: equal seeds replay the identical sample
// stream; every sample holds fanout distinct peers, never the owner.
func TestSamplerDeterministicDistinct(t *testing.T) {
	const n = 64
	o := Options{Enable: true, Seed: 7}.WithDefaults(n)
	a := NewSampler(3, n, o)
	b := NewSampler(3, n, o)
	other := NewSampler(4, n, o)
	diverged := false
	for round := 0; round < 50; round++ {
		sa, sb, so := a.Sample(), b.Sample(), other.Sample()
		if len(sa) != o.Fanout {
			t.Fatalf("round %d: sample size %d, want %d", round, len(sa), o.Fanout)
		}
		seen := make(map[model.ProcID]bool, len(sa))
		for i, p := range sa {
			if p == 3 {
				t.Fatalf("round %d: sampler included its owner", round)
			}
			if seen[p] {
				t.Fatalf("round %d: duplicate peer %v in sample", round, p)
			}
			seen[p] = true
			if p != sb[i] {
				t.Fatalf("round %d: equal seeds diverged at position %d: %v vs %v", round, i, p, sb[i])
			}
			if p != so[i] {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Error("two different processes drew identical streams for 50 rounds — per-process seeding is broken")
	}
}

// TestSamplerSmallN: fanout >= n−1 degenerates to all peers, and n=1 has no
// anti-entropy partner.
func TestSamplerSmallN(t *testing.T) {
	s := NewSampler(1, 3, Options{Enable: true, Fanout: 10}.WithDefaults(3))
	if got := s.Sample(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("fanout >= n-1 must return all peers, got %v", got)
	}
	if _, ok := NewSampler(1, 1, Options{Enable: true}.WithDefaults(1)).NextPeer(); ok {
		t.Error("n=1 must have no anti-entropy partner")
	}
}

// TestNextPeerRoundRobin: one rotation covers every peer exactly once — the
// property the eventual-delivery argument rests on.
func TestNextPeerRoundRobin(t *testing.T) {
	const n = 16
	s := NewSampler(5, n, Options{Enable: true, Seed: 1}.WithDefaults(n))
	seen := make(map[model.ProcID]int)
	for i := 0; i < n-1; i++ {
		p, ok := s.NextPeer()
		if !ok {
			t.Fatal("NextPeer returned !ok with peers available")
		}
		seen[p]++
	}
	for _, p := range model.Procs(n) {
		if p == 5 {
			continue
		}
		if seen[p] != 1 {
			t.Errorf("rotation visited %v %d times, want exactly 1", p, seen[p])
		}
	}
}
