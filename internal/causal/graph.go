// Package causal implements the causality-dependency graph of Algorithm 5
// (ETOB): a DAG over message identifiers where an edge (m1, m2) means
// "m2 causally depends on m1" (m1 ∈ C(m2)), together with the three
// functions the algorithm manipulates it with:
//
//	UpdateCG(m, C(m))   → (*Graph).Add
//	UnionCG(CG_j)       → (*Graph).Union
//	UpdatePromote()     → (*Graph).Extend
//
// Extend implements the paper's specification exactly: it returns a sequence
// s such that the given prefix is a prefix of s, s contains every message of
// the graph exactly once, and for every edge (m1, m2), m1 appears before m2.
// Ties are broken deterministically (lexicographically by message ID), which
// makes promote sequences reproducible across runs — see DESIGN.md decision 3.
//
// Storage is positional — nodes in insertion order with a parallel
// predecessor table — so Clone is a copy-on-write snapshot: it copies slice
// headers, not map entries. Every mutation appends past the clipped lengths
// (or reallocates), so snapshots carried inside protocol messages can never
// observe the owner's later updates. The string→position index is rebuilt
// lazily on clones, and only if the clone is itself mutated or queried by ID;
// the union path (MergeFrom) walks positions directly and never needs it.
package causal

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is a DAG over message IDs. The zero value is not usable; use New.
type Graph struct {
	nodes []string   // insertion order (stable, deduplicated)
	preds [][]string // preds[i] = C(nodes[i]), the direct causal predecessors
	index map[string]int
}

// New returns an empty causality graph.
func New() *Graph {
	return &Graph{index: make(map[string]int)}
}

// ensureIndex rebuilds the string→position index after a Clone dropped it.
func (g *Graph) ensureIndex() {
	if g.index != nil {
		return
	}
	g.index = make(map[string]int, len(g.nodes))
	for i, m := range g.nodes {
		g.index[m] = i
	}
}

// Add inserts message m with direct causal predecessors deps (UpdateCG).
// Predecessors not yet present are inserted as nodes too, so the graph stays
// closed under dependency. Re-adding an existing node merges dependency sets.
func (g *Graph) Add(m string, deps []string) {
	g.AddReporting(m, deps, nil)
}

// AddReporting is Add with frontier bookkeeping support: it calls onNewEdge
// for every predecessor it actually appends to m's dependency set (i.e. every
// edge that is new to the graph), and reports whether the call changed the
// graph at all (new node or new edge). Callers that track causal-successor
// counts hook onNewEdge instead of diffing dependency snapshots.
func (g *Graph) AddReporting(m string, deps []string, onNewEdge func(dep string)) (changed bool) {
	g.ensureIndex()
	mi, fresh := g.addNode(m)
	changed = fresh
	for _, d := range deps {
		if _, isNew := g.addNode(d); isNew {
			changed = true
		}
		if d == m {
			continue // self-loops are meaningless; drop defensively
		}
		if !containsStr(g.preds[mi], d) {
			g.preds[mi] = append(g.preds[mi], d)
			changed = true
			if onNewEdge != nil {
				onNewEdge(d)
			}
		}
	}
	return changed
}

func (g *Graph) addNode(m string) (pos int, isNew bool) {
	if i, ok := g.index[m]; ok {
		return i, false
	}
	i := len(g.nodes)
	g.index[m] = i
	g.nodes = append(g.nodes, m)
	g.preds = append(g.preds, nil)
	return i, true
}

// Union merges other into g (UnionCG).
func (g *Graph) Union(other *Graph) {
	g.MergeFrom(other, nil)
}

// MergeFrom merges other into g, calling onNewEdge for every edge that is new
// to g (once per appended predecessor, in other's insertion order) and
// reporting whether g changed. It walks other's positional storage directly,
// so snapshots without an index merge without rebuilding one and no
// dependency copies materialize on this path.
func (g *Graph) MergeFrom(other *Graph, onNewEdge func(dep string)) (changed bool) {
	if other == nil {
		return false
	}
	for i, m := range other.nodes {
		if g.AddReporting(m, other.preds[i], onNewEdge) {
			changed = true
		}
	}
	return changed
}

// Has reports whether m is a node of the graph.
func (g *Graph) Has(m string) bool {
	g.ensureIndex()
	_, ok := g.index[m]
	return ok
}

// HasEdge reports whether d is a direct causal predecessor of m, without
// copying m's dependency set.
func (g *Graph) HasEdge(m, d string) bool {
	g.ensureIndex()
	i, ok := g.index[m]
	return ok && containsStr(g.preds[i], d)
}

// Len returns the number of messages in the graph.
func (g *Graph) Len() int { return len(g.nodes) }

// Nodes returns the messages in insertion order (copy).
func (g *Graph) Nodes() []string {
	return append([]string(nil), g.nodes...)
}

// Deps returns the direct causal predecessors of m (copy).
func (g *Graph) Deps(m string) []string {
	g.ensureIndex()
	i, ok := g.index[m]
	if !ok {
		return nil
	}
	return append([]string(nil), g.preds[i]...)
}

// Clone returns an independent copy of the graph. Protocol messages carry
// clones so that in-memory kernels cannot alias mutable state across
// processes. The copy is O(nodes) slice-header work: the node and
// predecessor arrays are shared copy-on-write (clipped so any later append —
// by the owner or the clone — reallocates instead of overwriting), and the
// index is rebuilt lazily only if the clone is mutated or queried by ID.
func (g *Graph) Clone() *Graph {
	cp := &Graph{
		nodes: g.nodes[:len(g.nodes):len(g.nodes)],
		preds: make([][]string, len(g.preds)),
	}
	for i, ps := range g.preds {
		cp.preds[i] = ps[:len(ps):len(ps)]
	}
	return cp
}

// Extend implements UpdatePromote: it returns a sequence that (a) has prefix
// as a prefix, (b) contains every node of g exactly once, and (c) respects
// every edge of g. Nodes already in prefix keep their positions; missing
// nodes are appended in Kahn topological order with lexicographic tie-breaks.
//
// Extend reports an error if the graph has a dependency cycle or if prefix
// itself already violates an edge of the graph between two prefix members
// (neither can arise from Algorithm 5's closed-graph updates; the error guards
// against protocol bugs).
func (g *Graph) Extend(prefix []string) ([]string, error) {
	inPrefix := make(map[string]int, len(prefix))
	for i, m := range prefix {
		if _, dup := inPrefix[m]; dup {
			return nil, fmt.Errorf("causal: prefix contains %q twice", m)
		}
		inPrefix[m] = i
	}
	// Check prefix consistency against edges among prefix members.
	g.ensureIndex()
	for m, i := range inPrefix {
		if mi, ok := g.index[m]; ok {
			for _, d := range g.preds[mi] {
				if j, ok := inPrefix[d]; ok && j > i {
					return nil, fmt.Errorf("causal: prefix violates edge (%q before %q)", d, m)
				}
			}
		}
	}

	out := append(make([]string, 0, len(g.nodes)+len(prefix)), prefix...)

	// Kahn's algorithm over the nodes not in prefix. Edges from prefix nodes
	// are already satisfied.
	indeg := make(map[string]int)
	succs := make(map[string][]string)
	var missing []string
	for i, m := range g.nodes {
		if _, ok := inPrefix[m]; ok {
			continue
		}
		missing = append(missing, m)
		for _, d := range g.preds[i] {
			if _, ok := inPrefix[d]; ok {
				continue
			}
			indeg[m]++
			succs[d] = append(succs[d], m)
		}
	}
	var ready []string
	for _, m := range missing {
		if indeg[m] == 0 {
			ready = append(ready, m)
		}
	}
	sort.Strings(ready)
	appended := 0
	for len(ready) > 0 {
		m := ready[0]
		ready = ready[1:]
		out = append(out, m)
		appended++
		newly := make([]string, 0, len(succs[m]))
		for _, s := range succs[m] {
			indeg[s]--
			if indeg[s] == 0 {
				newly = append(newly, s)
			}
		}
		if len(newly) > 0 {
			ready = append(ready, newly...)
			sort.Strings(ready)
		}
	}
	if appended != len(missing) {
		return nil, fmt.Errorf("causal: dependency cycle among %d messages", len(missing)-appended)
	}
	return out, nil
}

// WireSize estimates the graph's serialized size in bytes: the summed
// lengths of every node ID and every edge endpoint (what a length-prefixed
// codec would ship, modulo framing). The bench suite uses it to charge
// update(CG_i) messages their real, growing cost when comparing
// dissemination modes; it is O(nodes + edges), so per-send callers should
// memoize by graph pointer (clones share storage but not identity).
func (g *Graph) WireSize() int {
	sz := 0
	for i, m := range g.nodes {
		sz += len(m)
		for _, d := range g.preds[i] {
			sz += len(d)
		}
	}
	return sz
}

// String renders the graph as "m1<-{}; m2<-{m1}; ..." in insertion order.
func (g *Graph) String() string {
	var b strings.Builder
	for i, m := range g.nodes {
		if i > 0 {
			b.WriteString("; ")
		}
		deps := append([]string(nil), g.preds[i]...)
		sort.Strings(deps)
		fmt.Fprintf(&b, "%s<-{%s}", m, strings.Join(deps, ","))
	}
	return b.String()
}

func containsStr(xs []string, x string) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}
