// Package causal implements the causality-dependency graph of Algorithm 5
// (ETOB): a DAG over message identifiers where an edge (m1, m2) means
// "m2 causally depends on m1" (m1 ∈ C(m2)), together with the three
// functions the algorithm manipulates it with:
//
//	UpdateCG(m, C(m))   → (*Graph).Add
//	UnionCG(CG_j)       → (*Graph).Union
//	UpdatePromote()     → (*Graph).Extend
//
// Extend implements the paper's specification exactly: it returns a sequence
// s such that the given prefix is a prefix of s, s contains every message of
// the graph exactly once, and for every edge (m1, m2), m1 appears before m2.
// Ties are broken deterministically (lexicographically by message ID), which
// makes promote sequences reproducible across runs — see DESIGN.md decision 3.
package causal

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is a DAG over message IDs. The zero value is not usable; use New.
type Graph struct {
	preds map[string][]string // preds[m] = C(m), the direct causal predecessors
	nodes []string            // insertion order (stable, deduplicated)
	index map[string]int      // node → position in nodes
}

// New returns an empty causality graph.
func New() *Graph {
	return &Graph{
		preds: make(map[string][]string),
		index: make(map[string]int),
	}
}

// Add inserts message m with direct causal predecessors deps (UpdateCG).
// Predecessors not yet present are inserted as nodes too, so the graph stays
// closed under dependency. Re-adding an existing node merges dependency sets.
func (g *Graph) Add(m string, deps []string) {
	g.addNode(m)
	for _, d := range deps {
		g.addNode(d)
		if d == m {
			continue // self-loops are meaningless; drop defensively
		}
		if !containsStr(g.preds[m], d) {
			g.preds[m] = append(g.preds[m], d)
		}
	}
}

func (g *Graph) addNode(m string) {
	if _, ok := g.index[m]; ok {
		return
	}
	g.index[m] = len(g.nodes)
	g.nodes = append(g.nodes, m)
	if _, ok := g.preds[m]; !ok {
		g.preds[m] = nil
	}
}

// Union merges other into g (UnionCG).
func (g *Graph) Union(other *Graph) {
	if other == nil {
		return
	}
	for _, m := range other.nodes {
		g.Add(m, other.preds[m])
	}
}

// Has reports whether m is a node of the graph.
func (g *Graph) Has(m string) bool {
	_, ok := g.index[m]
	return ok
}

// Len returns the number of messages in the graph.
func (g *Graph) Len() int { return len(g.nodes) }

// Nodes returns the messages in insertion order (copy).
func (g *Graph) Nodes() []string {
	return append([]string(nil), g.nodes...)
}

// Deps returns the direct causal predecessors of m (copy).
func (g *Graph) Deps(m string) []string {
	return append([]string(nil), g.preds[m]...)
}

// Clone returns a deep copy of the graph. Protocol messages carry clones so
// that in-memory kernels cannot alias mutable state across processes.
func (g *Graph) Clone() *Graph {
	cp := New()
	cp.nodes = append(cp.nodes, g.nodes...)
	for m, i := range g.index {
		cp.index[m] = i
	}
	for m, ds := range g.preds {
		cp.preds[m] = append([]string(nil), ds...)
	}
	return cp
}

// Extend implements UpdatePromote: it returns a sequence that (a) has prefix
// as a prefix, (b) contains every node of g exactly once, and (c) respects
// every edge of g. Nodes already in prefix keep their positions; missing
// nodes are appended in Kahn topological order with lexicographic tie-breaks.
//
// Extend reports an error if the graph has a dependency cycle or if prefix
// itself already violates an edge of the graph between two prefix members
// (neither can arise from Algorithm 5's closed-graph updates; the error guards
// against protocol bugs).
func (g *Graph) Extend(prefix []string) ([]string, error) {
	inPrefix := make(map[string]int, len(prefix))
	for i, m := range prefix {
		if _, dup := inPrefix[m]; dup {
			return nil, fmt.Errorf("causal: prefix contains %q twice", m)
		}
		inPrefix[m] = i
	}
	// Check prefix consistency against edges among prefix members.
	for m, i := range inPrefix {
		for _, d := range g.preds[m] {
			if j, ok := inPrefix[d]; ok && j > i {
				return nil, fmt.Errorf("causal: prefix violates edge (%q before %q)", d, m)
			}
		}
	}

	out := append(make([]string, 0, len(g.nodes)+len(prefix)), prefix...)

	// Kahn's algorithm over the nodes not in prefix. Edges from prefix nodes
	// are already satisfied.
	indeg := make(map[string]int)
	succs := make(map[string][]string)
	var missing []string
	for _, m := range g.nodes {
		if _, ok := inPrefix[m]; ok {
			continue
		}
		missing = append(missing, m)
		for _, d := range g.preds[m] {
			if _, ok := inPrefix[d]; ok {
				continue
			}
			indeg[m]++
			succs[d] = append(succs[d], m)
		}
	}
	var ready []string
	for _, m := range missing {
		if indeg[m] == 0 {
			ready = append(ready, m)
		}
	}
	sort.Strings(ready)
	appended := 0
	for len(ready) > 0 {
		m := ready[0]
		ready = ready[1:]
		out = append(out, m)
		appended++
		newly := make([]string, 0, len(succs[m]))
		for _, s := range succs[m] {
			indeg[s]--
			if indeg[s] == 0 {
				newly = append(newly, s)
			}
		}
		if len(newly) > 0 {
			ready = append(ready, newly...)
			sort.Strings(ready)
		}
	}
	if appended != len(missing) {
		return nil, fmt.Errorf("causal: dependency cycle among %d messages", len(missing)-appended)
	}
	return out, nil
}

// String renders the graph as "m1<-{}; m2<-{m1}; ..." in insertion order.
func (g *Graph) String() string {
	var b strings.Builder
	for i, m := range g.nodes {
		if i > 0 {
			b.WriteString("; ")
		}
		deps := append([]string(nil), g.preds[m]...)
		sort.Strings(deps)
		fmt.Fprintf(&b, "%s<-{%s}", m, strings.Join(deps, ","))
	}
	return b.String()
}

func containsStr(xs []string, x string) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}
