package causal

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndHas(t *testing.T) {
	g := New()
	g.Add("m2", []string{"m1"})
	if !g.Has("m1") || !g.Has("m2") {
		t.Fatal("Add must insert the message and its dependencies")
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	if deps := g.Deps("m2"); len(deps) != 1 || deps[0] != "m1" {
		t.Fatalf("Deps(m2) = %v, want [m1]", deps)
	}
	if deps := g.Deps("m1"); len(deps) != 0 {
		t.Fatalf("Deps(m1) = %v, want empty", deps)
	}
}

func TestAddMergesDeps(t *testing.T) {
	g := New()
	g.Add("m3", []string{"m1"})
	g.Add("m3", []string{"m2", "m1"}) // re-add merges, no duplicates
	deps := g.Deps("m3")
	if len(deps) != 2 {
		t.Fatalf("Deps(m3) = %v, want 2 distinct deps", deps)
	}
}

func TestAddDropsSelfLoop(t *testing.T) {
	g := New()
	g.Add("m", []string{"m"})
	if len(g.Deps("m")) != 0 {
		t.Fatal("self-dependency must be dropped")
	}
	if _, err := g.Extend(nil); err != nil {
		t.Fatalf("Extend after self-loop drop: %v", err)
	}
}

func TestUnion(t *testing.T) {
	g1 := New()
	g1.Add("a", nil)
	g1.Add("b", []string{"a"})
	g2 := New()
	g2.Add("c", []string{"a"})
	g1.Union(g2)
	if g1.Len() != 3 {
		t.Fatalf("union Len = %d, want 3", g1.Len())
	}
	if deps := g1.Deps("c"); len(deps) != 1 || deps[0] != "a" {
		t.Fatalf("Deps(c) = %v after union", deps)
	}
	g1.Union(nil) // must be a no-op
	if g1.Len() != 3 {
		t.Fatal("Union(nil) changed the graph")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New()
	g.Add("a", nil)
	cp := g.Clone()
	cp.Add("b", []string{"a"})
	if g.Has("b") {
		t.Fatal("mutating clone affected original")
	}
	if !cp.Has("b") {
		t.Fatal("clone lost an added node")
	}
}

func TestExtendEmptyGraph(t *testing.T) {
	g := New()
	out, err := g.Extend(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("Extend of empty graph = %v", out)
	}
}

func TestExtendRespectsEdgesAndPrefix(t *testing.T) {
	g := New()
	g.Add("m1", nil)
	g.Add("m2", []string{"m1"})
	g.Add("m3", []string{"m1"})
	g.Add("m4", []string{"m2", "m3"})

	out, err := g.Extend([]string{"m1", "m3"})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "m1" || out[1] != "m3" {
		t.Fatalf("prefix not preserved: %v", out)
	}
	assertTopo(t, g, out)
	if len(out) != 4 {
		t.Fatalf("Extend must contain all nodes once: %v", out)
	}
}

func TestExtendDeterministicTieBreak(t *testing.T) {
	g := New()
	g.Add("z", nil)
	g.Add("a", nil)
	g.Add("k", nil)
	out, err := g.Extend(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "k", "z"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Extend = %v, want lexicographic %v", out, want)
		}
	}
}

func TestExtendErrorOnBadPrefix(t *testing.T) {
	g := New()
	g.Add("m2", []string{"m1"})
	if _, err := g.Extend([]string{"m2", "m1"}); err == nil {
		t.Fatal("prefix violating an edge must be rejected")
	}
	if _, err := g.Extend([]string{"m1", "m1"}); err == nil {
		t.Fatal("duplicate prefix entry must be rejected")
	}
}

func TestExtendErrorOnCycle(t *testing.T) {
	g := New()
	g.Add("a", []string{"b"})
	g.Add("b", []string{"a"})
	if _, err := g.Extend(nil); err == nil {
		t.Fatal("cycle must be detected")
	}
}

func TestExtendPrefixStability(t *testing.T) {
	// Growing the graph and re-extending must keep the old sequence as a
	// prefix — the exact invariant ETOB-Stability rests on.
	g := New()
	seq := []string(nil)
	rng := rand.New(rand.NewSource(42))
	var ids []string
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("m%02d", i)
		// Random deps among earlier messages.
		var deps []string
		for _, prev := range ids {
			if rng.Intn(4) == 0 {
				deps = append(deps, prev)
			}
		}
		ids = append(ids, id)
		g.Add(id, deps)
		next, err := g.Extend(seq)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		for j := range seq {
			if next[j] != seq[j] {
				t.Fatalf("step %d: old promote not a prefix of the new one", i)
			}
		}
		assertTopo(t, g, next)
		seq = next
	}
	if len(seq) != 60 {
		t.Fatalf("final sequence has %d messages, want 60", len(seq))
	}
}

func TestExtendQuick(t *testing.T) {
	// Property: for a random DAG built from a random seed, Extend(nil) is a
	// permutation of the nodes that respects every edge.
	f := func(seed int64, sizeRaw uint8) bool {
		size := int(sizeRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		g := New()
		ids := make([]string, 0, size)
		for i := 0; i < size; i++ {
			id := fmt.Sprintf("n%03d", i)
			var deps []string
			for _, prev := range ids {
				if rng.Intn(3) == 0 {
					deps = append(deps, prev)
				}
			}
			g.Add(id, deps)
			ids = append(ids, id)
		}
		out, err := g.Extend(nil)
		if err != nil || len(out) != size {
			return false
		}
		return isTopo(g, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	g := New()
	g.Add("a", nil)
	g.Add("b", []string{"a"})
	s := g.String()
	if !strings.Contains(s, "b<-{a}") {
		t.Errorf("String() = %q, want it to mention b<-{a}", s)
	}
}

func assertTopo(t *testing.T, g *Graph, seq []string) {
	t.Helper()
	if !isTopo(g, seq) {
		t.Fatalf("sequence %v violates an edge of %v", seq, g)
	}
}

func isTopo(g *Graph, seq []string) bool {
	pos := make(map[string]int, len(seq))
	for i, m := range seq {
		if _, dup := pos[m]; dup {
			return false
		}
		pos[m] = i
	}
	for _, m := range g.Nodes() {
		pm, ok := pos[m]
		if !ok {
			return false
		}
		for _, d := range g.Deps(m) {
			if pos[d] > pm {
				return false
			}
		}
	}
	return true
}
