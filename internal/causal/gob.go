package causal

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Wire encoding: ETOB's update messages carry whole causality graphs, so a
// Graph must cross process boundaries when replicas run over a real
// transport (internal/runtime.TCPTransport). The positional storage is
// unexported by design; GobEncode/GobDecode serialize exactly the canonical
// content — nodes in insertion order with their predecessor lists — and the
// string→position index is rebuilt lazily on the receiving side, the same
// way Clone defers it.

// graphWire is the encoded form of a Graph.
type graphWire struct {
	Nodes []string
	Preds [][]string
}

// GobEncode implements gob.GobEncoder.
func (g *Graph) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(graphWire{Nodes: g.nodes, Preds: g.preds})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder. The decoded graph owns its storage
// (nothing aliases the wire buffer) and carries no index until first use.
func (g *Graph) GobDecode(b []byte) error {
	var w graphWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	if len(w.Preds) != len(w.Nodes) {
		return fmt.Errorf("causal: malformed graph encoding: %d nodes, %d predecessor lists",
			len(w.Nodes), len(w.Preds))
	}
	g.nodes = w.Nodes
	g.preds = w.Preds
	g.index = nil // rebuilt lazily by ensureIndex, like a fresh Clone
	return nil
}
