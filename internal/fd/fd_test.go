package fd

import (
	"testing"

	"repro/internal/model"
)

func fp4() *model.FailurePattern {
	fp := model.NewFailurePattern(4)
	fp.Crash(4, 100)
	return fp
}

func TestOmegaStable(t *testing.T) {
	fp := fp4()
	o := NewOmegaStable(fp, 2)
	for _, p := range model.Procs(4) {
		for _, tm := range []model.Time{0, 1, 500} {
			if got := o.Value(p, tm); got != OmegaValue(2) {
				t.Errorf("Value(%v,%d) = %v, want p2", p, tm, got)
			}
		}
	}
	if o.StabTime() != 0 || o.Leader() != 2 {
		t.Error("stable omega accessors wrong")
	}
}

func TestOmegaEventualSelfTrust(t *testing.T) {
	fp := fp4()
	o := NewOmegaEventual(fp, 1, 50)
	if got := o.Value(3, 49); got != OmegaValue(3) {
		t.Errorf("before stab each process trusts itself: got %v", got)
	}
	if got := o.Value(3, 50); got != OmegaValue(1) {
		t.Errorf("at stab the leader is output: got %v", got)
	}
}

func TestOmegaRotating(t *testing.T) {
	fp := fp4()
	o := NewOmegaRotating(fp, 1, 100, 10)
	seen := map[OmegaValue]bool{}
	for tm := model.Time(0); tm < 100; tm += 10 {
		seen[o.Value(1, tm).(OmegaValue)] = true
	}
	if len(seen) != 4 {
		t.Errorf("rotation covered %d leaders, want 4", len(seen))
	}
	if got := o.Value(1, 100); got != OmegaValue(1) {
		t.Errorf("after stab: %v, want p1", got)
	}
}

func TestOmegaSplit(t *testing.T) {
	fp := fp4()
	o := NewOmegaSplit(fp, 1, 2, 3, 40)
	if got := o.Value(2, 0); got != OmegaValue(1) {
		t.Errorf("even process pre-stab: %v, want p1", got)
	}
	if got := o.Value(3, 0); got != OmegaValue(2) {
		t.Errorf("odd process pre-stab: %v, want p2", got)
	}
	if got := o.Value(2, 40); got != OmegaValue(3) {
		t.Errorf("post-stab: %v, want p3", got)
	}
}

func TestOmegaRejectsFaultyLeader(t *testing.T) {
	fp := fp4()
	defer func() {
		if recover() == nil {
			t.Error("eventual leader must be correct")
		}
	}()
	NewOmegaStable(fp, 4)
}

func TestOmegaSpecHolds(t *testing.T) {
	// Ω spec: there is a time after which the same correct process is output
	// at every correct process, for each variant.
	fp := fp4()
	variants := []*Omega{
		NewOmegaStable(fp, 1),
		NewOmegaEventual(fp, 2, 33),
		NewOmegaRotating(fp, 3, 77, 5),
		NewOmegaSplit(fp, 1, 3, 2, 61),
	}
	for i, o := range variants {
		after := o.StabTime()
		want := o.Leader()
		if !fp.IsCorrect(want) {
			t.Fatalf("variant %d: leader %v not correct", i, want)
		}
		for _, p := range fp.Correct() {
			for dt := model.Time(0); dt < 200; dt += 7 {
				if got := o.Value(p, after+dt); got != want {
					t.Errorf("variant %d: Value(%v,%d) = %v, want %v", i, p, after+dt, got, want)
				}
			}
		}
	}
}

func TestSigmaIntersection(t *testing.T) {
	fp := fp4()
	s := NewSigma(fp, 50)
	// Any two quorums output at any times/processes intersect.
	times := []model.Time{0, 10, 49, 50, 51, 1000}
	var quorums []SigmaValue
	for _, p := range model.Procs(4) {
		for _, tm := range times {
			quorums = append(quorums, s.Value(p, tm).(SigmaValue))
		}
	}
	for i := range quorums {
		for j := range quorums {
			if !intersects(quorums[i], quorums[j]) {
				t.Fatalf("quorums %v and %v do not intersect", quorums[i], quorums[j])
			}
		}
	}
	// Eventually only correct processes.
	q := s.Value(1, 60).(SigmaValue)
	for _, p := range q {
		if !fp.IsCorrect(p) {
			t.Errorf("post-stab quorum contains faulty %v", p)
		}
	}
}

func TestSigmaMinorityCorrect(t *testing.T) {
	// Σ as an oracle is well-defined even with a minority correct — the
	// paper's point is that it cannot be *implemented* there.
	fp := model.NewFailurePattern(5)
	for _, p := range []model.ProcID{3, 4, 5} {
		fp.Crash(p, 10)
	}
	s := NewSigma(fp, 20)
	q1 := s.Value(1, 0).(SigmaValue)
	q2 := s.Value(2, 30).(SigmaValue)
	if !intersects(q1, q2) {
		t.Fatal("pre/post-stab quorums must intersect")
	}
	if len(q2) != 2 {
		t.Fatalf("post-stab quorum = %v, want the 2 correct processes", q2)
	}
}

func TestPerfect(t *testing.T) {
	fp := fp4()
	d := NewPerfect(fp)
	if got := d.Value(1, 99).(SuspectValue); len(got) != 0 {
		t.Errorf("no suspects before any crash: %v", got)
	}
	if got := d.Value(1, 100).(SuspectValue); len(got) != 1 || got[0] != 4 {
		t.Errorf("suspects at crash time = %v, want [p4]", got)
	}
}

func TestEventuallyPerfect(t *testing.T) {
	fp := fp4()
	d := NewEventuallyPerfect(fp, 200)
	pre := d.Value(1, 0).(SuspectValue)
	if len(pre) == 0 {
		t.Error("◇P should be wrong before stabilization in this history")
	}
	post := d.Value(1, 250).(SuspectValue)
	if len(post) != 1 || post[0] != 4 {
		t.Errorf("post-stab suspects = %v, want [p4]", post)
	}
}

func TestOmegaSigmaComposite(t *testing.T) {
	fp := fp4()
	d := NewOmegaSigma(NewOmegaStable(fp, 1), NewSigma(fp, 0))
	v := d.Value(2, 5).(OmegaSigmaValue)
	if v.Leader != 1 {
		t.Errorf("leader = %v, want p1", v.Leader)
	}
	if len(v.Quorum) != 3 {
		t.Errorf("quorum = %v, want 3 correct processes", v.Quorum)
	}
	if d.Name() != "Omega+Sigma" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestLeaderOfAndQuorumOf(t *testing.T) {
	fp := fp4()
	comp := NewOmegaSigma(NewOmegaStable(fp, 1), NewSigma(fp, 0))
	if l, ok := LeaderOf(comp.Value(1, 0)); !ok || l != 1 {
		t.Errorf("LeaderOf composite = %v,%v", l, ok)
	}
	if l, ok := LeaderOf(OmegaValue(3)); !ok || l != 3 {
		t.Errorf("LeaderOf plain = %v,%v", l, ok)
	}
	if _, ok := LeaderOf("junk"); ok {
		t.Error("LeaderOf must reject foreign values")
	}
	if q, ok := QuorumOf(comp.Value(1, 0)); !ok || len(q) == 0 {
		t.Error("QuorumOf composite failed")
	}
	if q, ok := QuorumOf(SigmaValue{1, 2}); !ok || len(q) != 2 {
		t.Errorf("QuorumOf plain = %v,%v", q, ok)
	}
	if _, ok := QuorumOf(42); ok {
		t.Error("QuorumOf must reject foreign values")
	}
}

func TestDetectorNames(t *testing.T) {
	fp := fp4()
	names := map[string]Detector{
		"Omega":    NewOmegaStable(fp, 1),
		"Sigma":    NewSigma(fp, 0),
		"P":        NewPerfect(fp),
		"DiamondP": NewEventuallyPerfect(fp, 10),
	}
	for want, d := range names {
		if d.Name() != want {
			t.Errorf("Name = %q, want %q", d.Name(), want)
		}
	}
}

func intersects(a, b SigmaValue) bool {
	set := make(map[model.ProcID]bool, len(a))
	for _, p := range a {
		set[p] = true
	}
	for _, p := range b {
		if set[p] {
			return true
		}
	}
	return false
}
