package fd

import (
	"repro/internal/model"
)

// This file implements classic failure-detector reductions (the "weaker
// than" relation of §2): algorithms that emulate one detector's output from
// another's. They make the partial order on detectors used throughout the
// paper executable.

// OmegaFromSuspects emulates Ω from any suspect-list detector satisfying
// eventual strong completeness and eventual strong accuracy (◇P, or P):
// output the smallest-ID unsuspected process. Once the underlying history
// suspects exactly the crashed processes forever, the output is the same
// smallest correct process at everyone — the Ω specification. This witnesses
// the textbook fact Ω ⪯ ◇P.
type OmegaFromSuspects struct {
	inner Detector
	n     int
}

var _ Detector = (*OmegaFromSuspects)(nil)

// NewOmegaFromSuspects wraps a ◇P-like detector over n processes.
func NewOmegaFromSuspects(inner Detector, n int) *OmegaFromSuspects {
	return &OmegaFromSuspects{inner: inner, n: n}
}

// Name implements Detector.
func (d *OmegaFromSuspects) Name() string { return "Omega(from " + d.inner.Name() + ")" }

// Value implements Detector.
func (d *OmegaFromSuspects) Value(p model.ProcID, t model.Time) any {
	suspects, ok := d.inner.Value(p, t).(SuspectValue)
	if !ok {
		return OmegaValue(p)
	}
	suspected := make(map[model.ProcID]bool, len(suspects))
	for _, s := range suspects {
		suspected[s] = true
	}
	for _, q := range model.Procs(d.n) {
		if !suspected[q] {
			return OmegaValue(q)
		}
	}
	// Everyone suspected (transiently possible pre-stabilization): trust self.
	return OmegaValue(p)
}

// SegmentStart implements Segmented: the emulated output is a pure function
// of the inner detector's value, so it is constant wherever the inner
// history is. Non-Segmented inners degrade to exact-time caching.
func (d *OmegaFromSuspects) SegmentStart(p model.ProcID, t model.Time) model.Time {
	return innerSegmentStart(d.inner, p, t)
}

// innerSegmentStart is the shared delegation used by reduction wrappers.
func innerSegmentStart(inner Detector, p model.ProcID, t model.Time) model.Time {
	if s, ok := inner.(Segmented); ok {
		return s.SegmentStart(p, t)
	}
	return t
}

// SuspectsFromOmega emulates a (weak) suspect list from Ω: suspect everyone
// except the current leader. The result satisfies the eventually-weak
// accuracy/completeness mix of ◇S restricted to leaders — enough for the
// rotating-coordinator algorithms built on ◇S, and a reminder that Ω and ◇S
// are equivalent [CHT96].
type SuspectsFromOmega struct {
	inner Detector
	n     int
}

var _ Detector = (*SuspectsFromOmega)(nil)

// NewSuspectsFromOmega wraps an Ω-like detector over n processes.
func NewSuspectsFromOmega(inner Detector, n int) *SuspectsFromOmega {
	return &SuspectsFromOmega{inner: inner, n: n}
}

// Name implements Detector.
func (d *SuspectsFromOmega) Name() string { return "DiamondS(from " + d.inner.Name() + ")" }

// Value implements Detector.
func (d *SuspectsFromOmega) Value(p model.ProcID, t model.Time) any {
	leader, ok := LeaderOf(d.inner.Value(p, t))
	if !ok {
		return SuspectValue(nil)
	}
	out := make(SuspectValue, 0, d.n-1)
	for _, q := range model.Procs(d.n) {
		if q != leader {
			out = append(out, q)
		}
	}
	return out
}

// SegmentStart implements Segmented by delegation, exactly as in
// OmegaFromSuspects.
func (d *SuspectsFromOmega) SegmentStart(p model.ProcID, t model.Time) model.Time {
	return innerSegmentStart(d.inner, p, t)
}
