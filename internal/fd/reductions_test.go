package fd

import (
	"testing"

	"repro/internal/model"
)

func TestOmegaFromSuspectsSatisfiesOmega(t *testing.T) {
	fp := model.NewFailurePattern(4)
	fp.Crash(1, 50)
	inner := NewEventuallyPerfect(fp, 200)
	d := NewOmegaFromSuspects(inner, 4)

	// After ◇P stabilizes, the emulated Ω must output the same correct
	// process (the smallest unsuspected = smallest correct) at everyone.
	want := OmegaValue(fp.MinCorrect())
	for _, p := range fp.Correct() {
		for dt := model.Time(200); dt < 500; dt += 13 {
			if got := d.Value(p, dt); got != want {
				t.Fatalf("Value(%v,%d) = %v, want %v", p, dt, got, want)
			}
		}
	}
	if d.Name() != "Omega(from DiamondP)" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestOmegaFromSuspectsPreStabilizationIsDefined(t *testing.T) {
	fp := model.NewFailurePattern(2)
	inner := NewEventuallyPerfect(fp, 100)
	d := NewOmegaFromSuspects(inner, 2)
	// Pre-stabilization output is still some process ID (never junk).
	for _, p := range model.Procs(2) {
		if _, ok := d.Value(p, 0).(OmegaValue); !ok {
			t.Fatalf("pre-stab value not an OmegaValue: %v", d.Value(p, 0))
		}
	}
}

func TestOmegaFromSuspectsUsableByEC(t *testing.T) {
	// The emulated Ω plugs into Algorithm 4 through LeaderOf unchanged.
	fp := model.NewFailurePattern(3)
	d := NewOmegaFromSuspects(NewPerfect(fp), 3)
	if l, ok := LeaderOf(d.Value(2, 10)); !ok || l != 1 {
		t.Fatalf("LeaderOf = %v,%v", l, ok)
	}
}

func TestSuspectsFromOmega(t *testing.T) {
	fp := model.NewFailurePattern(3)
	d := NewSuspectsFromOmega(NewOmegaStable(fp, 2), 3)
	v := d.Value(1, 0).(SuspectValue)
	if len(v) != 2 {
		t.Fatalf("suspects = %v, want all but the leader", v)
	}
	for _, s := range v {
		if s == 2 {
			t.Fatal("the leader must not be suspected")
		}
	}
	if d.Name() != "DiamondS(from Omega)" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestRoundtripOmegaSuspectsOmega(t *testing.T) {
	// Ω → ◇S-like → Ω must reproduce the leader after stabilization.
	fp := model.NewFailurePattern(4)
	base := NewOmegaEventual(fp, 3, 100)
	round := NewOmegaFromSuspects(NewSuspectsFromOmega(base, 4), 4)
	for _, p := range fp.Correct() {
		if got := round.Value(p, 150); got != OmegaValue(3) {
			t.Fatalf("roundtrip Value(%v) = %v, want p3", p, got)
		}
	}
}
