package fd

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/model"
)

// cachedCases builds one detector of every class (and both reductions) over
// a pattern with crashes before, at, and after the stabilization times, so
// segment boundaries of every kind are exercised.
func cachedCases() (map[string]Detector, *model.FailurePattern) {
	fp := model.NewFailurePattern(5)
	fp.Crash(4, 55)
	fp.Crash(5, 120)
	return map[string]Detector{
		"omega-stable":   NewOmegaStable(fp, 1),
		"omega-eventual": NewOmegaEventual(fp, 2, 300),
		"omega-rotating": NewOmegaRotating(fp, 1, 300, 40),
		"omega-split":    NewOmegaSplit(fp, 1, 2, 2, 260),
		"sigma":          NewSigma(fp, 200),
		"perfect":        NewPerfect(fp),
		"diamond-p":      NewEventuallyPerfect(fp, 250),
		"omega-sigma":    NewOmegaSigma(NewOmegaEventual(fp, 1, 300), NewSigma(fp, 200)),
		"omega-from-dp":  NewOmegaFromSuspects(NewEventuallyPerfect(fp, 250), 5),
		"ds-from-omega":  NewSuspectsFromOmega(NewOmegaEventual(fp, 2, 300), 5),
	}, fp
}

// TestCachedEquivalenceRandomOrder fires seeded random (p, t) queries — in an
// order no kernel would produce, so segments are entered and re-entered
// arbitrarily — and demands the cached answer always equals the direct one.
func TestCachedEquivalenceRandomOrder(t *testing.T) {
	dets, fp := cachedCases()
	for name, det := range dets {
		t.Run(name, func(t *testing.T) {
			c := NewCached(det)
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 4000; i++ {
				p := model.ProcID(rng.Intn(fp.N()) + 1)
				tm := model.Time(rng.Intn(600))
				got := c.Value(p, tm)
				want := det.Value(p, tm)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d: Cached(%v, %d) = %v, want %v", i, p, tm, got, want)
				}
			}
			hits, misses := c.Stats()
			if hits == 0 {
				t.Errorf("no cache hits over 4000 random queries (misses=%d)", misses)
			}
		})
	}
}

// TestCachedEquivalenceCHTPattern replays the CHT reduction's sampling
// pattern: a monotone round-robin sweep over processes (BuildDAG) followed by
// exact re-queries of every sampled (p, t) pair (CheckProperties). The
// re-query pass must be all hits for segmented detectors.
func TestCachedEquivalenceCHTPattern(t *testing.T) {
	dets, fp := cachedCases()
	for name, det := range dets {
		t.Run(name, func(t *testing.T) {
			c := NewCached(det)
			type query struct {
				p model.ProcID
				t model.Time
			}
			var sampled []query
			now := model.Time(0)
			for s := 0; s < 12; s++ {
				for q := 1; q <= fp.N(); q++ {
					now += 7
					sampled = append(sampled, query{model.ProcID(q), now})
					got := c.Value(model.ProcID(q), now)
					if want := det.Value(model.ProcID(q), now); !reflect.DeepEqual(got, want) {
						t.Fatalf("build pass: Cached(%v, %d) = %v, want %v", q, now, got, want)
					}
				}
			}
			for _, qu := range sampled {
				got := c.Value(qu.p, qu.t)
				if want := det.Value(qu.p, qu.t); !reflect.DeepEqual(got, want) {
					t.Fatalf("verify pass: Cached(%v, %d) = %v, want %v", qu.p, qu.t, got, want)
				}
			}
		})
	}
}

// TestCachedKernelPatternStaysBounded mimics the kernel's per-step query
// stream (monotone staggered ticks) and checks that a stable history is
// computed at most once per process — the memoization the kernel relies on.
func TestCachedKernelPatternStaysBounded(t *testing.T) {
	fp := model.NewFailurePattern(4)
	c := NewCached(NewOmegaStable(fp, 1))
	for tick := 0; tick < 1000; tick++ {
		for q := 1; q <= 4; q++ {
			c.Value(model.ProcID(q), model.Time(tick*5+q))
		}
	}
	hits, misses := c.Stats()
	if misses > 4 {
		t.Errorf("stable history recomputed: misses = %d, want <= 4", misses)
	}
	if hits != 4000-misses {
		t.Errorf("hits = %d, want %d", hits, 4000-misses)
	}
}

// TestCachedAlternatingSegmentsStayCached pins the LRU-over-segments
// behavior: a query stream that alternates between two segments of the same
// process — the CHT verify pass hopping back across a stabilization
// boundary, or quorum code mixing "now" with a recorded instant — must be
// all hits after each segment has been computed once. A single slot per
// process would miss on every query here.
func TestCachedAlternatingSegmentsStayCached(t *testing.T) {
	fp := model.NewFailurePattern(3)
	c := NewCached(NewOmegaEventual(fp, 2, 400)) // two segments per process: [0,400) and [400,∞)
	for i := 0; i < 100; i++ {
		for q := 1; q <= 3; q++ {
			c.Value(model.ProcID(q), 100) // pre-stabilization segment
			c.Value(model.ProcID(q), 500) // post-stabilization segment
		}
	}
	hits, misses := c.Stats()
	if misses > 6 {
		t.Errorf("alternating segments thrash: misses = %d, want <= 6 (2 segments x 3 procs)", misses)
	}
	if hits != 600-misses {
		t.Errorf("hits = %d, want %d", hits, 600-misses)
	}
}

// TestCachedValuesBatch checks the batch path against per-process queries,
// including reuse of the caller's buffer.
func TestCachedValuesBatch(t *testing.T) {
	dets, fp := cachedCases()
	ps := model.Procs(fp.N())
	det := dets["omega-sigma"]
	c := NewCached(det)
	var buf []any
	for _, tm := range []model.Time{0, 150, 199, 200, 299, 300, 500} {
		buf = c.Values(ps, tm, buf)
		if len(buf) != len(ps) {
			t.Fatalf("Values returned %d entries, want %d", len(buf), len(ps))
		}
		for i, p := range ps {
			if want := det.Value(p, tm); !reflect.DeepEqual(buf[i], want) {
				t.Errorf("Values[%v]@%d = %v, want %v", p, tm, buf[i], want)
			}
		}
	}
}

// TestCachedIdempotentWrap: wrapping a Cached must not stack caches.
func TestCachedIdempotentWrap(t *testing.T) {
	fp := model.NewFailurePattern(3)
	c := NewCached(NewPerfect(fp))
	if NewCached(c) != c {
		t.Error("NewCached(NewCached(d)) must return the same wrapper")
	}
	if c.Name() != "P" {
		t.Errorf("Name = %q, want inner name", c.Name())
	}
	if c.Inner().Name() != "P" {
		t.Error("Inner must expose the wrapped detector")
	}
}

// TestSegmentStartContract spot-checks the Segmented contract: queries inside
// one constancy interval share a start, and the start never exceeds t.
func TestSegmentStartContract(t *testing.T) {
	dets, fp := cachedCases()
	for name, det := range dets {
		seg, ok := det.(Segmented)
		if !ok {
			t.Errorf("%s does not implement Segmented", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			for q := 1; q <= fp.N(); q++ {
				p := model.ProcID(q)
				for tm := model.Time(0); tm < 650; tm++ {
					s := seg.SegmentStart(p, tm)
					if s > tm || s < 0 {
						t.Fatalf("SegmentStart(%v, %d) = %d out of range", p, tm, s)
					}
					// Every instant in [s, tm] must be in the same segment and
					// carry the same value — verify at the endpoints.
					if seg.SegmentStart(p, s) != s {
						t.Fatalf("SegmentStart(%v, %d) = %d is not itself a segment start", p, tm, s)
					}
					if !reflect.DeepEqual(det.Value(p, s), det.Value(p, tm)) {
						t.Fatalf("%s: value changed inside segment [%d, %d] at p=%v", name, s, tm, p)
					}
				}
			}
		})
	}
}

// TestCachedLeader: the leadership-observation query must surface the Ω
// component of any history that has one — Omega directly, OmegaSigma through
// the pair — and report ok=false for Ω-free histories, all through the
// segment cache.
func TestCachedLeader(t *testing.T) {
	fp := model.NewFailurePattern(3)
	omega := NewOmegaEventual(fp, 2, 400)
	c := NewCached(omega)
	if l, ok := c.Leader(3, 100); !ok || l != 3 {
		t.Errorf("pre-stab Leader(p3) = (%v, %v), want (p3, true): self-trust phase", l, ok)
	}
	if l, ok := c.Leader(3, 400); !ok || l != 2 {
		t.Errorf("post-stab Leader(p3) = (%v, %v), want (p2, true)", l, ok)
	}
	both := NewCached(NewOmegaSigma(NewOmegaStable(fp, 1), NewSigma(fp, 50)))
	if l, ok := both.Leader(1, 10); !ok || l != 1 {
		t.Errorf("OmegaSigma Leader = (%v, %v), want (p1, true)", l, ok)
	}
	sigmaOnly := NewCached(NewSigma(fp, 50))
	if _, ok := sigmaOnly.Leader(1, 10); ok {
		t.Error("a Σ-only history has no leader to observe")
	}
}
