// Package fd implements failure detectors as history oracles, exactly as the
// paper defines them (§2): a failure detector D with range R maps a failure
// pattern F to a set of histories H : Π × N → R; an oracle here realizes one
// such history. Protocol code queries the oracle through model.Context.FD().
//
// Provided detectors:
//
//   - Ω  (Omega): the eventual leader detector — eventually the same correct
//     process is output at every correct process. Variants differ in their
//     (adversarial) behavior before stabilization.
//   - Σ  (Sigma): the quorum detector — any two output quorums intersect, and
//     eventually all quorums output at correct processes contain only correct
//     processes.
//   - ◇P (EventuallyPerfect): eventually suspects exactly the crashed
//     processes.
//   - P  (Perfect): always suspects exactly the crashed processes.
//   - Ω+Σ (OmegaSigma): the weakest detector for (strong) consistency in any
//     environment, used by the strong baselines.
//
// Oracles read the failure pattern — they model *information about failures*,
// not an implementation. A message-passing implementation of Ω (heartbeats
// under partial synchrony) lives in internal/runtime.
package fd

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Detector is a single failure-detector history: Value(p, t) is H(p, t),
// the value process p's module outputs at time t.
type Detector interface {
	// Name identifies the detector class for logs and tables ("Omega", ...).
	Name() string
	// Value returns H(p, t). Implementations must be deterministic and
	// side-effect free: the CHT reduction samples them repeatedly.
	Value(p model.ProcID, t model.Time) any
}

// OmegaValue is the range of Ω: the identifier of the current leader.
type OmegaValue = model.ProcID

// SigmaValue is the range of Σ: a quorum of processes, sorted by ID.
type SigmaValue []model.ProcID

// SuspectValue is the range of P and ◇P: the set of currently suspected
// processes, sorted by ID.
type SuspectValue []model.ProcID

// OmegaSigmaValue is the range of the composite detector Ω+Σ.
type OmegaSigmaValue struct {
	Leader model.ProcID
	Quorum SigmaValue
}

// ---------------------------------------------------------------------------
// Ω — eventual leader
// ---------------------------------------------------------------------------

// Omega is an Ω history: before StabTime it outputs whatever the adversarial
// schedule Pre dictates; from StabTime on it outputs the eventual leader at
// every process. The eventual leader must be correct in the failure pattern.
type Omega struct {
	fp     *model.FailurePattern
	leader model.ProcID
	stab   model.Time
	pre    func(p model.ProcID, t model.Time) model.ProcID
	// preSeg is the segmentation of the pre-stabilization phase: the start of
	// the constant segment containing t (see Segmented). The shipped pre
	// schedules are either constant in t (self-trust, split: segment start 0)
	// or periodic (rotating). nil with a non-nil pre means "unknown", which
	// degrades to exact-time caching before stab.
	preSeg func(t model.Time) model.Time
}

var _ Detector = (*Omega)(nil)
var _ Segmented = (*Omega)(nil)

// NewOmegaStable returns an Ω history that outputs the same correct leader at
// every process from time 0 — the regime in which Algorithm 5 implements
// *strong* total order broadcast (§5, property 2).
func NewOmegaStable(fp *model.FailurePattern, leader model.ProcID) *Omega {
	return newOmega(fp, leader, 0, nil, constantPre)
}

// NewOmegaEventual returns an Ω history that stabilizes on the given leader
// at stab. Before stab, every process trusts itself (a classic divergence
// scenario: every process believes it is the leader — maximal disagreement).
func NewOmegaEventual(fp *model.FailurePattern, leader model.ProcID, stab model.Time) *Omega {
	return newOmega(fp, leader, stab,
		func(p model.ProcID, _ model.Time) model.ProcID { return p }, constantPre)
}

// NewOmegaRotating returns an Ω history that, before stab, rotates the
// reported leader through Π with the given period (all processes agree on the
// rotating leader, but it keeps changing — leadership churn), then stabilizes.
func NewOmegaRotating(fp *model.FailurePattern, leader model.ProcID, stab, period model.Time) *Omega {
	if period <= 0 {
		period = 1
	}
	n := fp.N()
	return newOmega(fp, leader, stab, func(_ model.ProcID, t model.Time) model.ProcID {
		return model.ProcID(int(t/period)%n + 1)
	}, func(t model.Time) model.Time { return (t / period) * period })
}

// NewOmegaSplit returns an Ω history that, before stab, partitions processes
// into two camps each trusting a different leader (the "partition period" of
// §5: disagreement on the leader), then stabilizes on leader.
func NewOmegaSplit(fp *model.FailurePattern, leaderA, leaderB, leader model.ProcID, stab model.Time) *Omega {
	return newOmega(fp, leader, stab, func(p model.ProcID, _ model.Time) model.ProcID {
		if int(p)%2 == 0 {
			return leaderA
		}
		return leaderB
	}, constantPre)
}

// constantPre marks a pre-stabilization schedule that does not depend on t:
// the whole pre phase is one constant segment per process.
func constantPre(model.Time) model.Time { return 0 }

func newOmega(fp *model.FailurePattern, leader model.ProcID, stab model.Time,
	pre func(model.ProcID, model.Time) model.ProcID, preSeg func(model.Time) model.Time) *Omega {
	if !fp.IsCorrect(leader) {
		panic(fmt.Sprintf("fd: eventual leader %v is not correct in %v", leader, fp))
	}
	if stab < 0 {
		panic("fd: stabilization time must be >= 0")
	}
	return &Omega{fp: fp, leader: leader, stab: stab, pre: pre, preSeg: preSeg}
}

// Name implements Detector.
func (o *Omega) Name() string { return "Omega" }

// Value implements Detector.
func (o *Omega) Value(p model.ProcID, t model.Time) any {
	if t >= o.stab || o.pre == nil {
		return o.leader
	}
	return o.pre(p, t)
}

// SegmentStart implements Segmented: from stab on the output is the constant
// eventual leader; before stab the pre schedule's own segmentation applies.
func (o *Omega) SegmentStart(_ model.ProcID, t model.Time) model.Time {
	if o.pre == nil {
		return 0 // constant history
	}
	if t >= o.stab {
		return o.stab
	}
	if o.preSeg == nil {
		return t // unknown pre schedule: exact-time caching only
	}
	return o.preSeg(t)
}

// StabTime returns the time from which the output is the stable leader.
func (o *Omega) StabTime() model.Time { return o.stab }

// Leader returns the eventual leader.
func (o *Omega) Leader() model.ProcID { return o.leader }

// ---------------------------------------------------------------------------
// Σ — quorums
// ---------------------------------------------------------------------------

// Sigma is a Σ history: before its stabilization time every process's quorum
// is Π (which intersects everything); afterwards it is correct(F). Both
// phases pairwise intersect (correct(F) ≠ ∅), and eventually quorums contain
// only correct processes — the Σ specification of [DFG10] in any environment.
type Sigma struct {
	fp   *model.FailurePattern
	stab model.Time
}

var _ Detector = (*Sigma)(nil)

// NewSigma returns a Σ history stabilizing at stab.
func NewSigma(fp *model.FailurePattern, stab model.Time) *Sigma {
	return &Sigma{fp: fp, stab: stab}
}

// Name implements Detector.
func (s *Sigma) Name() string { return "Sigma" }

// Value implements Detector.
func (s *Sigma) Value(p model.ProcID, t model.Time) any {
	if t < s.stab {
		return SigmaValue(model.Procs(s.fp.N()))
	}
	return SigmaValue(s.fp.Correct())
}

// SegmentStart implements Segmented: Π until stab, correct(F) afterwards —
// two constant segments.
func (s *Sigma) SegmentStart(_ model.ProcID, t model.Time) model.Time {
	if t < s.stab {
		return 0
	}
	return s.stab
}

// ---------------------------------------------------------------------------
// P and ◇P — (eventually) perfect
// ---------------------------------------------------------------------------

// Perfect is the perfect detector P: at any time it suspects exactly the
// processes crashed so far (strong completeness + strong accuracy).
type Perfect struct {
	fp *model.FailurePattern
}

var _ Detector = (*Perfect)(nil)

// NewPerfect returns a P history for fp.
func NewPerfect(fp *model.FailurePattern) *Perfect { return &Perfect{fp: fp} }

// Name implements Detector.
func (d *Perfect) Name() string { return "P" }

// Value implements Detector.
func (d *Perfect) Value(_ model.ProcID, t model.Time) any {
	return crashedBy(d.fp, t)
}

// SegmentStart implements Segmented: the suspect set changes exactly at crash
// times, so the segment containing t starts at the latest crash ≤ t.
func (d *Perfect) SegmentStart(_ model.ProcID, t model.Time) model.Time {
	return latestCrashBy(d.fp, t)
}

// EventuallyPerfect is ◇P: before stab it may suspect arbitrary processes
// (we suspect everyone with an ID of different parity — aggressively wrong);
// from stab on it suspects exactly the crashed processes.
type EventuallyPerfect struct {
	fp   *model.FailurePattern
	stab model.Time
}

var _ Detector = (*EventuallyPerfect)(nil)

// NewEventuallyPerfect returns a ◇P history stabilizing at stab.
func NewEventuallyPerfect(fp *model.FailurePattern, stab model.Time) *EventuallyPerfect {
	return &EventuallyPerfect{fp: fp, stab: stab}
}

// Name implements Detector.
func (d *EventuallyPerfect) Name() string { return "DiamondP" }

// Value implements Detector.
func (d *EventuallyPerfect) Value(p model.ProcID, t model.Time) any {
	if t >= d.stab {
		return crashedBy(d.fp, t)
	}
	// Wrong suspicions before stabilization: suspect every process whose ID
	// parity differs from ours (includes correct processes).
	out := make(SuspectValue, 0, d.fp.N())
	for _, q := range model.Procs(d.fp.N()) {
		if int(q)%2 != int(p)%2 {
			out = append(out, q)
		}
	}
	return out
}

// SegmentStart implements Segmented: one constant (parity-based) segment per
// process before stab; from stab on, boundaries at stab and each later crash.
func (d *EventuallyPerfect) SegmentStart(_ model.ProcID, t model.Time) model.Time {
	if t < d.stab {
		return 0
	}
	if c := latestCrashBy(d.fp, t); c > d.stab {
		return c
	}
	return d.stab
}

// latestCrashBy returns the largest crash time ≤ t in fp, or 0 if no process
// has crashed by t. It reads fp live (never a precomputed snapshot) so that
// segment answers stay correct even if crashes are added after the detector
// is built.
func latestCrashBy(fp *model.FailurePattern, t model.Time) model.Time {
	var s model.Time
	for q := 1; q <= fp.N(); q++ {
		if ct := fp.CrashTime(model.ProcID(q)); ct >= 0 && ct <= t && ct > s {
			s = ct
		}
	}
	return s
}

func crashedBy(fp *model.FailurePattern, t model.Time) SuspectValue {
	out := make(SuspectValue, 0, fp.N())
	for _, q := range model.Procs(fp.N()) {
		if fp.Crashed(q, t) {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------------------------------------------------------------------------
// Ω+Σ — composite
// ---------------------------------------------------------------------------

// OmegaSigma combines an Ω history and a Σ history into the detector whose
// range is pairs — the weakest failure detector for (strong) consistency in
// any environment. The paper's headline: eventual consistency needs only the
// Ω half.
type OmegaSigma struct {
	O *Omega
	S *Sigma
}

var _ Detector = (*OmegaSigma)(nil)

// NewOmegaSigma combines the two histories.
func NewOmegaSigma(o *Omega, s *Sigma) *OmegaSigma { return &OmegaSigma{O: o, S: s} }

// Name implements Detector.
func (d *OmegaSigma) Name() string { return "Omega+Sigma" }

// Value implements Detector.
func (d *OmegaSigma) Value(p model.ProcID, t model.Time) any {
	return OmegaSigmaValue{
		Leader: d.O.Value(p, t).(OmegaValue),
		Quorum: d.S.Value(p, t).(SigmaValue),
	}
}

// SegmentStart implements Segmented: the pair is constant exactly on the
// intersection of the components' segments, and the intersection segment
// containing t starts at the later of the two component starts.
func (d *OmegaSigma) SegmentStart(p model.ProcID, t model.Time) model.Time {
	so := d.O.SegmentStart(p, t)
	ss := d.S.SegmentStart(p, t)
	if ss > so {
		return ss
	}
	return so
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// LeaderOf extracts the Ω component from a detector value that is either an
// OmegaValue or an OmegaSigmaValue. Protocols that only need Ω use this so
// they run unchanged under either detector.
func LeaderOf(v any) (model.ProcID, bool) {
	switch x := v.(type) {
	case OmegaValue:
		return x, true
	case OmegaSigmaValue:
		return x.Leader, true
	default:
		return model.NoProc, false
	}
}

// QuorumOf extracts the Σ component from a detector value that is either a
// SigmaValue or an OmegaSigmaValue.
func QuorumOf(v any) (SigmaValue, bool) {
	switch x := v.(type) {
	case SigmaValue:
		return x, true
	case OmegaSigmaValue:
		return x.Quorum, true
	default:
		return nil, false
	}
}
