package fd

import (
	"testing"

	"repro/internal/model"
)

// TestOmegaUp: leadership follows the smallest up process across down
// intervals, stabilizes at Stab, and segments exactly at the schedule's
// boundaries (so fd.Cached serves it correctly).
func TestOmegaUp(t *testing.T) {
	// p1 down [100, 300), p2 down [200, 400); stabilization at 500.
	up := func(p model.ProcID, tt model.Time) bool {
		switch p {
		case 1:
			return tt < 100 || tt >= 300
		case 2:
			return tt < 200 || tt >= 400
		default:
			return true
		}
	}
	boundaries := []model.Time{100, 200, 300, 400}
	o := NewOmegaUp(3, 1, 500, up, boundaries)

	for _, tc := range []struct {
		t    model.Time
		want model.ProcID
	}{
		{0, 1},   // everyone up: smallest
		{150, 2}, // p1 down
		{250, 3}, // p1 and p2 down
		{350, 1}, // p1 back
		{600, 1}, // stabilized
	} {
		if got := o.Value(2, tc.t).(model.ProcID); got != tc.want {
			t.Errorf("Value(t=%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
	for _, tc := range []struct{ t, want model.Time }{
		{50, 0}, {100, 100}, {199, 100}, {250, 200}, {450, 400}, {500, 500}, {9000, 500},
	} {
		if got := o.SegmentStart(1, tc.t); got != tc.want {
			t.Errorf("SegmentStart(t=%d) = %d, want %d", tc.t, got, tc.want)
		}
	}

	// Cached must agree with the raw history everywhere, including queries
	// that hop backwards across segments.
	c := NewCached(o)
	for _, tt := range []model.Time{0, 150, 250, 350, 600, 250, 0, 9000} {
		if got, want := c.Value(1, tt), o.Value(1, tt); got != want {
			t.Errorf("Cached.Value(t=%d) = %v, want %v", tt, got, want)
		}
	}
}
