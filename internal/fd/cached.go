package fd

import "repro/internal/model"

// Segmented is an optional Detector refinement for histories that are
// piecewise constant in time — which every oracle in this package is, because
// a history H(p, ·) changes only at finitely many structural instants (a
// stabilization time, a crash, a rotation boundary).
//
// SegmentStart(p, t) must return the start s ≤ t of the maximal interval
// [s, e) containing t on which Value(p, ·) is constant. Two queries inside
// one segment must return the same s, and queries in different segments must
// return different s — the segment start doubles as the cache key in Cached.
// Returning t itself is always sound (it degrades caching to exact-time
// memoization) and is the required fallback when constancy cannot be proved.
type Segmented interface {
	Detector
	SegmentStart(p model.ProcID, t model.Time) model.Time
}

// Cached memoizes a Detector. Soundness rests on the Detector contract
// (Value is a deterministic, side-effect-free function of (p, t)) plus, when
// the detector is Segmented, the segment contract above: within one segment
// the value cannot change, so one computed value serves every query in it.
//
// The cache keeps a small fixed number of entries per process — the
// cacheWays segments (or exact times) most recently queried for that
// process, in LRU order — so memory stays O(ways × n) no matter how long a
// run gets or how many segments its history accumulates. This fits the hot
// query patterns:
//
//   - the kernel's per-step query, where t advances monotonically and stays
//     inside one segment for long stretches (a stable Ω run is one segment);
//   - the CHT reduction's sampling, which re-queries identical (p, t) pairs
//     when verifying DAG properties — and, unlike the kernel, hops BACK
//     across segment boundaries, which a single slot per process would
//     thrash on (every boundary crossing evicts the segment about to be
//     re-queried);
//   - protocol code (quorum Σ re-checks, leadership hooks) interleaving a
//     current-time query with a recorded earlier instant.
//
// Cached values are returned by reference: callers must treat detector
// values (SigmaValue, SuspectValue, ...) as immutable, which the Detector
// contract already demands. A Cached instance is NOT safe for concurrent
// use; give each kernel its own wrapper (sim.New does this automatically)
// and never share one across concurrently running kernels.
type Cached struct {
	inner Detector
	seg   Segmented // nil when inner does not implement Segmented
	sets  []cacheSet
	hits  int64
	miss  int64
}

// cacheWays is the per-process associativity: how many distinct segments a
// process's cache set holds before LRU eviction. Four covers every observed
// alternation pattern (kernel monotone = 1, CHT build/verify straddling a
// boundary = 2, quorum code mixing "now" with a recorded instant = 3) with
// one spare, while keeping the hit path a scan of four adjacent entries.
const cacheWays = 4

// cacheSet is one process's LRU set, MRU-first: slots[0] is the most
// recently used of the n valid entries. A hit rotates the entry to the
// front; a miss inserts at the front, evicting slots[n-1] when full.
type cacheSet struct {
	n     int
	slots [cacheWays]cacheSlot
}

type cacheSlot struct {
	key model.Time // segment start (Segmented) or exact query time
	val any
}

var _ Detector = (*Cached)(nil)

// NewCached wraps d in a memoizing cache. Wrapping an already-cached
// detector returns it unchanged.
func NewCached(d Detector) *Cached {
	if c, ok := d.(*Cached); ok {
		return c
	}
	c := &Cached{inner: d}
	if s, ok := d.(Segmented); ok {
		c.seg = s
	}
	return c
}

// Name implements Detector.
func (c *Cached) Name() string { return c.inner.Name() }

// Inner returns the wrapped detector.
func (c *Cached) Inner() Detector { return c.inner }

// Value implements Detector: H(p, t), served from the per-process LRU set
// when the query lands in a segment already computed for p.
func (c *Cached) Value(p model.ProcID, t model.Time) any {
	i := int(p) - 1
	if i < 0 {
		return c.inner.Value(p, t)
	}
	if i >= len(c.sets) {
		grown := make([]cacheSet, i+1)
		copy(grown, c.sets)
		c.sets = grown
	}
	key := t
	if c.seg != nil {
		key = c.seg.SegmentStart(p, t)
	}
	set := &c.sets[i]
	for w := 0; w < set.n; w++ {
		if set.slots[w].key != key {
			continue
		}
		hit := set.slots[w]
		copy(set.slots[1:w+1], set.slots[:w]) // move-to-front keeps LRU order
		set.slots[0] = hit
		c.hits++
		return hit.val
	}
	v := c.inner.Value(p, t)
	if set.n < cacheWays {
		set.n++
	}
	copy(set.slots[1:set.n], set.slots[:set.n-1])
	set.slots[0] = cacheSlot{key: key, val: v}
	c.miss++
	return v
}

// Values is the batch query path: it fills out (allocating it if nil or too
// short) with H(p, t) for each p in ps, hitting the cache per process. Sweep
// drivers that inspect a whole configuration at one instant use this instead
// of n separate Value calls.
func (c *Cached) Values(ps []model.ProcID, t model.Time, out []any) []any {
	if cap(out) < len(ps) {
		out = make([]any, len(ps))
	}
	out = out[:len(ps)]
	for i, p := range ps {
		out[i] = c.Value(p, t)
	}
	return out
}

// ValuesAt is the vectorized sampling path: it fills out (allocating it if
// nil or too short) with H(ps[i], ts[i]) for each index, hitting the
// per-process cache entry by entry. The CHT DAG builder uses this to sample
// a whole sweep — every alive process at its slot time — in one call against
// a reused scratch slice; Values remains the single-instant convenience.
func (c *Cached) ValuesAt(ps []model.ProcID, ts []model.Time, out []any) []any {
	if cap(out) < len(ps) {
		out = make([]any, len(ps))
	}
	out = out[:len(ps)]
	for i, p := range ps {
		out[i] = c.Value(p, ts[i])
	}
	return out
}

// Leader is the leadership-observation query: the Ω component of H(p, t) —
// the leader currently output at process p's failure-detector module — served
// through the same per-segment cache as Value, with ok=false when the wrapped
// history has no Ω component (a plain Σ or ◇P history). The kernel's
// leadership hook (sim.LeaderAware) is built on this method, which is how
// protocol-aware network models such as adversary.LeaderStarver read the
// run's current leader out of any detector's history segments without
// re-deriving them.
func (c *Cached) Leader(p model.ProcID, t model.Time) (model.ProcID, bool) {
	return LeaderOf(c.Value(p, t))
}

// Stats reports cache hits and misses since construction.
func (c *Cached) Stats() (hits, misses int64) { return c.hits, c.miss }
