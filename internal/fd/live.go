package fd

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// OmegaUp is an Ω history for environments with churn: before Stab it outputs
// the smallest process that is UP at t according to a liveness function —
// leadership fails over while the leader is down and fails back when it
// rejoins — and from Stab on it outputs the fixed eventual leader at every
// process. It is how the adversarial environment engine's FaultSchedule
// (internal/sim/adversary) surfaces in a failure-detector history: the
// detector's value genuinely changes across down intervals, which is what
// E10 exercises.
//
// The Ω specification only constrains the eventual output (some correct
// process, forever, at every correct process), so any pre-Stab behavior is
// admissible; tracking the live set is the natural adversary here because it
// maximizes leadership churn without ever electing a down process. The
// eventual leader must be up forever from some point on (eventually-up in
// the schedule's sense); callers pass the schedule's churn end as Stab.
//
// Segmentation: the output can only change at an up/down boundary (or at
// Stab), so SegmentStart answers with the latest boundary ≤ t — the
// boundaries slice comes from FaultSchedule.Boundaries. Histories stay
// cacheable by fd.Cached across down intervals.
type OmegaUp struct {
	n          int
	leader     model.ProcID
	stab       model.Time
	up         func(p model.ProcID, t model.Time) bool
	boundaries []model.Time // sorted state-change instants of up
}

var _ Detector = (*OmegaUp)(nil)
var _ Segmented = (*OmegaUp)(nil)

// NewOmegaUp builds the history over n processes. up must be a deterministic
// pure function (model.FaultModel.Up qualifies); boundaries must contain, in
// sorted order, every instant at which up changes for any process
// (FaultSchedule.Boundaries qualifies).
func NewOmegaUp(n int, leader model.ProcID, stab model.Time, up func(model.ProcID, model.Time) bool, boundaries []model.Time) *OmegaUp {
	if leader < 1 || int(leader) > n {
		panic(fmt.Sprintf("fd: eventual leader %v outside a %d-process system", leader, n))
	}
	if stab < 0 {
		panic("fd: stabilization time must be >= 0")
	}
	return &OmegaUp{n: n, leader: leader, stab: stab, up: up, boundaries: boundaries}
}

// Name implements Detector.
func (o *OmegaUp) Name() string { return "Omega" }

// Value implements Detector.
func (o *OmegaUp) Value(_ model.ProcID, t model.Time) any {
	if t >= o.stab {
		return o.leader
	}
	for q := 1; q <= o.n; q++ {
		if o.up(model.ProcID(q), t) {
			return model.ProcID(q)
		}
	}
	// Everyone down at t: no process takes a step, so the value is never
	// observed; return the eventual leader for definiteness.
	return o.leader
}

// SegmentStart implements Segmented.
func (o *OmegaUp) SegmentStart(_ model.ProcID, t model.Time) model.Time {
	if t >= o.stab {
		return o.stab
	}
	// Latest boundary <= t (0 if none): the up set is constant between
	// boundaries, so the smallest up process is too.
	i := sort.Search(len(o.boundaries), func(i int) bool { return o.boundaries[i] > t })
	if i == 0 {
		return 0
	}
	return o.boundaries[i-1]
}

// StabTime returns the time from which the output is the stable leader.
func (o *OmegaUp) StabTime() model.Time { return o.stab }

// Leader returns the eventual leader.
func (o *OmegaUp) Leader() model.ProcID { return o.leader }
