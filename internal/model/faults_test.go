package model

import "testing"

// intervalFaults is a minimal FaultModel for merge tests: down during the
// listed [start, end) intervals (end < 0 = forever), sorted by construction.
type intervalFaults struct {
	down [][2]Time
}

func (f intervalFaults) Up(_ ProcID, t Time) bool {
	for _, iv := range f.down {
		if t >= iv[0] && (iv[1] < 0 || t < iv[1]) {
			return false
		}
	}
	return true
}

func (f intervalFaults) Restarts(ProcID) []Time {
	var out []Time
	for _, iv := range f.down {
		if iv[1] >= 0 {
			out = append(out, iv[1])
		}
	}
	return out
}

func TestMergeFaultsUpIntersection(t *testing.T) {
	a := intervalFaults{down: [][2]Time{{100, 200}}}
	b := intervalFaults{down: [][2]Time{{150, 300}}}
	m := MergeFaults(a, b)
	for _, tc := range []struct {
		t    Time
		want bool
	}{
		{50, true}, {100, false}, {150, false}, {199, false},
		{200, false}, {299, false}, {300, true},
	} {
		if got := m.Up(1, tc.t); got != tc.want {
			t.Errorf("Up(p1, %d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestMergeFaultsRestartsRecomputed(t *testing.T) {
	// a restarts at 200, but b holds the process down until 300: the merge
	// restarts once, at 300.
	a := intervalFaults{down: [][2]Time{{100, 200}}}
	b := intervalFaults{down: [][2]Time{{150, 300}}}
	got := MergeFaults(a, b).Restarts(1)
	if len(got) != 1 || got[0] != 300 {
		t.Errorf("Restarts = %v, want [300]", got)
	}

	// Disjoint down intervals: both restarts survive, sorted.
	c := intervalFaults{down: [][2]Time{{400, 500}}}
	got = MergeFaults(a, c).Restarts(1)
	if len(got) != 2 || got[0] != 200 || got[1] != 500 {
		t.Errorf("Restarts = %v, want [200 500]", got)
	}

	// Coinciding restarts deduplicate.
	d := intervalFaults{down: [][2]Time{{120, 200}}}
	got = MergeFaults(a, d).Restarts(1)
	if len(got) != 1 || got[0] != 200 {
		t.Errorf("Restarts = %v, want [200]", got)
	}

	// A permanent crash suppresses every later restart (monotone component).
	fp := NewFailurePattern(2)
	fp.Crash(1, 250)
	if got := MergeFaults(c, fp).Restarts(1); got != nil {
		t.Errorf("Restarts = %v, want nil: the process never comes back after its crash", got)
	}
	if MergeFaults(c, fp).Up(1, 450) {
		t.Error("crashed process reported up inside the churn window")
	}
}

func TestMergeFaultsDegenerateArities(t *testing.T) {
	if MergeFaults() != nil {
		t.Error("merging nothing must be nil (no fault override)")
	}
	if MergeFaults(nil, nil) != nil {
		t.Error("nil inputs are skipped")
	}
	a := intervalFaults{down: [][2]Time{{1, 2}}}
	if got := MergeFaults(nil, a, nil); got == nil {
		t.Error("single effective model lost")
	} else if _, wrapped := got.(mergedFaults); wrapped {
		t.Error("single effective model must be returned as-is, not wrapped")
	}
}
