package model

// This file defines the neutral input/output vocabulary shared by protocols,
// kernels, and the property checkers: the input history H_I (operation
// invocations) and the output history H_O (operation responses / output
// variables) of §2. Protocols consume the input types in Automaton.Input and
// emit the output types through Context.Output; internal/trace records both
// and checks the TOB/ETOB/EC/EIC properties over them.

// BroadcastInput is the invocation broadcastETOB(m, C(m)) (or
// broadcastTOB(m)). ID is the globally unique message identifier (also used
// as the payload in experiments); Deps lists the message IDs m causally
// depends on (the paper's C(m)). A nil Deps lets the protocol compute the
// causal frontier itself.
type BroadcastInput struct {
	ID   string
	Deps []string
}

// ProposeInput is the invocation proposeEC_ℓ(v) (or proposeEIC_ℓ, proposeC).
// Instances are 1-based, matching the paper's proposeEC1, proposeEC2, ...
type ProposeInput struct {
	Instance int
	Value    string
}

// SeqSnapshot is emitted by broadcast protocols whenever the output variable
// d_i changes: Seq is the new value of d_i (message IDs in delivery order).
type SeqSnapshot struct {
	Seq []string
}

// Decision is emitted when a consensus-style protocol returns a response to
// proposeEC_ℓ / proposeEIC_ℓ / proposeC: DecideEC(ℓ, v).
type Decision struct {
	Instance int
	Value    string
}

// LeaderOutput is emitted by Ω-emulation protocols (the CHT reduction and the
// heartbeat Ω) whenever their Ω-output variable changes.
type LeaderOutput struct {
	Leader ProcID
}
