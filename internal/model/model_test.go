package model

import (
	"testing"
	"testing/quick"
)

func TestProcs(t *testing.T) {
	ps := Procs(4)
	if len(ps) != 4 {
		t.Fatalf("Procs(4) len = %d, want 4", len(ps))
	}
	for i, p := range ps {
		if int(p) != i+1 {
			t.Errorf("Procs(4)[%d] = %v, want p%d", i, p, i+1)
		}
	}
	if ps[0].String() != "p1" {
		t.Errorf("String() = %q, want p1", ps[0].String())
	}
	if NoProc.String() != "p?" {
		t.Errorf("NoProc.String() = %q", NoProc.String())
	}
}

func TestFailurePatternBasics(t *testing.T) {
	fp := NewFailurePattern(4)
	if got := len(fp.Correct()); got != 4 {
		t.Fatalf("failure-free Correct() len = %d, want 4", got)
	}
	fp.Crash(2, 10)
	fp.Crash(4, 0)

	if fp.Crashed(2, 9) {
		t.Error("p2 should not be crashed at t=9")
	}
	if !fp.Crashed(2, 10) {
		t.Error("p2 should be crashed at t=10 (crashed BY t)")
	}
	if !fp.Crashed(2, 1000) {
		t.Error("crashes are permanent: p2 must stay crashed")
	}
	if !fp.Crashed(4, 0) {
		t.Error("p4 crashes at t=0")
	}
	if fp.IsCorrect(2) || fp.IsCorrect(4) {
		t.Error("p2 and p4 are faulty")
	}
	if !fp.IsCorrect(1) || !fp.IsCorrect(3) {
		t.Error("p1 and p3 are correct")
	}

	if got := fp.Faulty(); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("Faulty() = %v, want [p2 p4]", got)
	}
	if got := fp.Correct(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Correct() = %v, want [p1 p3]", got)
	}
	if got := fp.AliveAt(5); len(got) != 3 {
		t.Errorf("AliveAt(5) = %v, want 3 alive (p4 crashed at 0)", got)
	}
	if fp.MinCorrect() != 1 {
		t.Errorf("MinCorrect() = %v, want p1", fp.MinCorrect())
	}
	if fp.HasCorrectMajority() {
		t.Error("2 of 4 correct is not a majority")
	}
	if fp.CrashTime(1) != TimeNever {
		t.Errorf("CrashTime(p1) = %d, want TimeNever", fp.CrashTime(1))
	}
	if fp.CrashTime(2) != 10 {
		t.Errorf("CrashTime(p2) = %d, want 10", fp.CrashTime(2))
	}
}

func TestFailurePatternEarliestCrashWins(t *testing.T) {
	fp := NewFailurePattern(3)
	fp.Crash(1, 20)
	fp.Crash(1, 50) // later crash must not delay the earlier one
	if fp.CrashTime(1) != 20 {
		t.Errorf("CrashTime = %d, want 20", fp.CrashTime(1))
	}
	fp.Crash(1, 5)
	if fp.CrashTime(1) != 5 {
		t.Errorf("CrashTime = %d, want 5 (earliest wins)", fp.CrashTime(1))
	}
}

func TestFailurePatternClone(t *testing.T) {
	fp := NewFailurePattern(3)
	fp.Crash(2, 7)
	cp := fp.Clone()
	cp.Crash(3, 1)
	if !fp.IsCorrect(3) {
		t.Error("mutating the clone must not affect the original")
	}
	if cp.IsCorrect(3) {
		t.Error("clone must record the new crash")
	}
}

func TestFailurePatternPanics(t *testing.T) {
	assertPanics(t, "n=1", func() { NewFailurePattern(1) })
	assertPanics(t, "unknown proc", func() { NewFailurePattern(3).Crash(9, 0) })
	assertPanics(t, "negative time", func() { NewFailurePattern(3).Crash(1, -1) })
	assertPanics(t, "no correct", func() {
		fp := NewFailurePattern(2)
		fp.Crash(1, 0)
		fp.Crash(2, 0)
		fp.MinCorrect()
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestEnvironments(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7} {
		for _, env := range []Environment{EnvAny(), EnvMajority(), EnvMinorityCorrect()} {
			for i, fp := range env.Samples(n) {
				if fp.N() != n {
					t.Errorf("%s sample %d: n = %d, want %d", env.Name, i, fp.N(), n)
				}
				if !env.Contains(fp) {
					t.Errorf("%s sample %d (n=%d): %v not in its own environment", env.Name, i, n, fp)
				}
				if len(fp.Correct()) == 0 {
					t.Errorf("%s sample %d (n=%d): no correct process", env.Name, i, n)
				}
			}
		}
	}
}

func TestCrashMonotoneProperty(t *testing.T) {
	// F(t) ⊆ F(t+1) for arbitrary crash sets: quick-check over random inputs.
	f := func(crashRaw []uint8, probe uint16) bool {
		n := 5
		fp := NewFailurePattern(n)
		for i, c := range crashRaw {
			p := ProcID(i%n + 1)
			if i%2 == 0 && len(fp.Correct()) > 1 {
				fp.Crash(p, Time(c))
			}
		}
		t0 := Time(probe)
		for _, p := range Procs(n) {
			if fp.Crashed(p, t0) && !fp.Crashed(p, t0+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
