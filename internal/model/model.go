// Package model defines the abstract computational model of the paper
// "The Weakest Failure Detector for Eventual Consistency" (PODC 2015), §2:
// a set of processes Π = {p1..pn} taking asynchronous steps under a discrete
// global clock, crash failure patterns F : N → 2^Π, environments (sets of
// failure patterns), and failure-detector histories H : Π × N → R.
//
// Everything else in this repository — the simulator, the failure-detector
// oracles, the protocols, and the CHT reduction — is expressed in terms of
// these types.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// ProcID identifies a process p_i ∈ Π. IDs are 1-based to match the paper's
// p1..pn convention; 0 is reserved as "no process".
type ProcID int

// NoProc is the zero ProcID, meaning "no process".
const NoProc ProcID = 0

// String implements fmt.Stringer ("p3" style, matching the paper).
func (p ProcID) String() string {
	if p == NoProc {
		return "p?"
	}
	return fmt.Sprintf("p%d", int(p))
}

// Time is a tick of the discrete global clock to which processes have no
// access. The range of the clock is N; Time is signed only so that -1 can
// mean "never" in internal bookkeeping.
type Time int64

// TimeNever is a sentinel meaning "at no time" (e.g. a process that never
// crashes).
const TimeNever Time = -1

// Procs returns Π for a system of n processes: [p1, p2, ..., pn].
func Procs(n int) []ProcID {
	ps := make([]ProcID, n)
	for i := range ps {
		ps[i] = ProcID(i + 1)
	}
	return ps
}

// FailurePattern is the paper's F : N → 2^Π, represented by the crash time of
// each process (TimeNever for correct processes). Processes never recover:
// F(t) ⊆ F(t+1) holds by construction.
type FailurePattern struct {
	n       int
	crashAt map[ProcID]Time
}

// NewFailurePattern returns the failure-free pattern over n processes.
// Crashes are added with Crash.
func NewFailurePattern(n int) *FailurePattern {
	if n < 2 {
		panic("model: a system needs at least 2 processes (n >= 2)")
	}
	return &FailurePattern{n: n, crashAt: make(map[ProcID]Time, n)}
}

// NewCrashPattern is a convenience constructor: pattern over n processes in
// which each listed process crashes at the given time.
func NewCrashPattern(n int, crashes map[ProcID]Time) *FailurePattern {
	fp := NewFailurePattern(n)
	for p, t := range crashes {
		fp.Crash(p, t)
	}
	return fp
}

// N returns the number of processes in the system.
func (f *FailurePattern) N() int { return f.n }

// Crash records that p crashes at time t (has crashed *by* time t).
// Crashing an already-crashed process keeps the earliest crash time.
func (f *FailurePattern) Crash(p ProcID, t Time) {
	if p < 1 || int(p) > f.n {
		panic(fmt.Sprintf("model: crash of unknown process %v (n=%d)", p, f.n))
	}
	if t < 0 {
		panic("model: crash time must be >= 0")
	}
	if prev, ok := f.crashAt[p]; ok && prev <= t {
		return
	}
	f.crashAt[p] = t
}

// CrashTime returns the time at which p crashes, or TimeNever if p is correct.
func (f *FailurePattern) CrashTime(p ProcID) Time {
	if t, ok := f.crashAt[p]; ok {
		return t
	}
	return TimeNever
}

// Crashed reports whether p ∈ F(t), i.e. p has crashed by time t.
func (f *FailurePattern) Crashed(p ProcID, t Time) bool {
	ct, ok := f.crashAt[p]
	return ok && ct <= t
}

// Alive reports whether p has not crashed by time t.
func (f *FailurePattern) Alive(p ProcID, t Time) bool { return !f.Crashed(p, t) }

// Faulty returns faulty(F) = ∪_t F(t), sorted by process ID.
func (f *FailurePattern) Faulty() []ProcID {
	out := make([]ProcID, 0, len(f.crashAt))
	for p := range f.crashAt {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Correct returns correct(F) = Π − faulty(F), sorted by process ID.
func (f *FailurePattern) Correct() []ProcID {
	out := make([]ProcID, 0, f.n-len(f.crashAt))
	for _, p := range Procs(f.n) {
		if _, crashed := f.crashAt[p]; !crashed {
			out = append(out, p)
		}
	}
	return out
}

// IsCorrect reports whether p ∈ correct(F).
func (f *FailurePattern) IsCorrect(p ProcID) bool {
	_, crashed := f.crashAt[p]
	return !crashed
}

// AliveAt returns the set of processes not crashed by time t, sorted.
func (f *FailurePattern) AliveAt(t Time) []ProcID {
	out := make([]ProcID, 0, f.n)
	for _, p := range Procs(f.n) {
		if f.Alive(p, t) {
			out = append(out, p)
		}
	}
	return out
}

// MinCorrect returns the correct process with the smallest ID. It panics if
// no process is correct (such patterns are excluded from all environments we
// use, as is standard).
func (f *FailurePattern) MinCorrect() ProcID {
	for _, p := range Procs(f.n) {
		if f.IsCorrect(p) {
			return p
		}
	}
	panic("model: failure pattern with no correct process")
}

// HasCorrectMajority reports whether |correct(F)| > n/2.
func (f *FailurePattern) HasCorrectMajority() bool {
	return len(f.Correct()) > f.n/2
}

// Clone returns a deep copy of the pattern.
func (f *FailurePattern) Clone() *FailurePattern {
	cp := NewFailurePattern(f.n)
	for p, t := range f.crashAt {
		cp.crashAt[p] = t
	}
	return cp
}

// String renders the pattern, e.g. "F{n=4, crash p2@10, crash p4@0}".
func (f *FailurePattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "F{n=%d", f.n)
	for _, p := range f.Faulty() {
		fmt.Fprintf(&b, ", crash %v@%d", p, f.crashAt[p])
	}
	b.WriteString("}")
	return b.String()
}

// Environment is the paper's E: a (possibly infinite) set of failure
// patterns. We represent it as a named predicate plus a finite generator of
// representative patterns used by experiments and tests.
type Environment struct {
	// Name identifies the environment in tables ("any", "majority", ...).
	Name string
	// Contains reports whether a failure pattern belongs to the environment.
	Contains func(*FailurePattern) bool
	// Samples generates representative failure patterns over n processes for
	// experiments. All returned patterns must satisfy Contains.
	Samples func(n int) []*FailurePattern
}

// EnvAny is the unconstrained environment: any number of crashes at any time
// (as long as at least one process stays correct, the standard assumption).
func EnvAny() Environment {
	return Environment{
		Name:     "any",
		Contains: func(f *FailurePattern) bool { return len(f.Correct()) >= 1 },
		Samples: func(n int) []*FailurePattern {
			var out []*FailurePattern
			// Failure-free.
			out = append(out, NewFailurePattern(n))
			// One crash at time 0 and mid-run.
			fp := NewFailurePattern(n)
			fp.Crash(ProcID(n), 0)
			out = append(out, fp)
			fp = NewFailurePattern(n)
			fp.Crash(ProcID(1), 50)
			out = append(out, fp)
			// Minority correct: crash ceil(n/2) processes.
			fp = NewFailurePattern(n)
			for i := 0; i < (n+1)/2 && i < n-1; i++ {
				fp.Crash(ProcID(n-i), Time(10*i))
			}
			out = append(out, fp)
			// All but one crash.
			fp = NewFailurePattern(n)
			for i := 2; i <= n; i++ {
				fp.Crash(ProcID(i), Time(5*(i-1)))
			}
			out = append(out, fp)
			return out
		},
	}
}

// EnvMajority is the environment in which a majority of processes are
// correct — where Ω suffices even for (strong) consensus [CHT96, CT96].
func EnvMajority() Environment {
	return Environment{
		Name:     "majority",
		Contains: func(f *FailurePattern) bool { return f.HasCorrectMajority() },
		Samples: func(n int) []*FailurePattern {
			var out []*FailurePattern
			out = append(out, NewFailurePattern(n))
			maxCrash := (n - 1) / 2
			fp := NewFailurePattern(n)
			for i := 0; i < maxCrash; i++ {
				fp.Crash(ProcID(n-i), Time(20*i))
			}
			out = append(out, fp)
			return out
		},
	}
}

// EnvMinorityCorrect contains only patterns where at most a minority is
// correct — the regime in which Σ-style quorums are unobtainable from
// message passing and where the paper's ETOB still makes progress.
func EnvMinorityCorrect() Environment {
	return Environment{
		Name: "minority-correct",
		Contains: func(f *FailurePattern) bool {
			c := len(f.Correct())
			return c >= 1 && c <= f.n/2
		},
		Samples: func(n int) []*FailurePattern {
			fp := NewFailurePattern(n)
			// Crash enough processes to leave floor(n/2) correct.
			for i := 0; i < n-(n/2) && n-i >= 2; i++ {
				fp.Crash(ProcID(n-i), Time(10*i))
			}
			if len(fp.Correct()) > n/2 {
				fp.Crash(ProcID(len(fp.Correct())), 0)
			}
			return []*FailurePattern{fp}
		},
	}
}
