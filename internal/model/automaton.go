package model

// This file defines the step model of §2: an algorithm A is a collection of
// deterministic automata, one per process. In each step a process atomically
// (1) receives a single message m (possibly the empty message λ) or accepts
// an external input, (2) queries its failure detector and receives a value d,
// (3) changes its state, and (4) sends messages / produces outputs.
//
// Automata are written against the Context interface so that the same
// protocol code runs unchanged under the deterministic simulator
// (internal/sim), the live goroutine runtime (internal/runtime), and the
// CHT step-by-step simulation (internal/cht).

// Context is the environment an automaton sees during a single step.
// Implementations are only valid for the duration of the step.
type Context interface {
	// Self returns the ID of the process taking the step.
	Self() ProcID
	// N returns the number of processes in the system.
	N() int
	// Now returns the current global time. The paper's processes cannot read
	// the global clock; protocol code must use Now only for logging/outputs,
	// never for decisions. The simulator's checkers enforce protocol
	// determinism independently of Now.
	Now() Time
	// FD returns the failure detector value d received in this step.
	FD() any
	// Send sends a message payload to a single process (reliable link).
	Send(to ProcID, payload any)
	// Broadcast sends a message payload to every process, including the
	// sender itself (the paper's "Send to all processes (including pi)").
	Broadcast(payload any)
	// Output produces a value to the external world (the output history H_O).
	Output(v any)
}

// Automaton is the deterministic automaton A(p) of one process.
//
// The zero value of an implementation should be unusable; constructors wire
// in process ID and protocol parameters.
type Automaton interface {
	// Init is called once, at the initial configuration, before any step.
	Init(ctx Context)
	// Recv handles a step that receives message payload from a process.
	Recv(ctx Context, from ProcID, payload any)
	// Tick handles a λ-step: no message is received. Kernels schedule ticks
	// periodically; protocols use them as the paper's "local timeout".
	Tick(ctx Context)
	// Input handles a step accepting an input from the external world
	// (an operation invocation such as broadcastETOB(m) or proposeEC(v)).
	Input(ctx Context, in any)
}

// AutomatonFactory builds the automaton of each process; used by kernels to
// instantiate a fresh protocol instance per run.
type AutomatonFactory func(p ProcID, n int) Automaton
