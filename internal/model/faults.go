package model

// This file generalizes the paper's monotone crash model to environments
// with churn. The paper's F : N → 2^Π is monotone — once a process is in
// F(t) it stays there — which FailurePattern encodes directly. An adversarial
// environment engine additionally wants processes that crash and REJOIN
// (crash+restart pairs with a state reset), so kernels consume liveness
// through the FaultModel interface below: FailurePattern remains the monotone
// special case (it implements FaultModel with no restarts, so every existing
// experiment and the CHT reduction are untouched), and
// internal/sim/adversary.FaultSchedule is the up/down-interval generalization.

// FaultModel answers the two liveness questions a kernel asks: is process p
// up at time t, and at which times does p come back up after a down interval.
//
// Contract: implementations are immutable once handed to a kernel, and all
// queries are deterministic pure functions — the same property that makes
// FailurePattern safe to share across concurrently running kernels.
type FaultModel interface {
	// Up reports whether p is up (taking steps, receiving messages) at t.
	Up(p ProcID, t Time) bool
	// Restarts returns the times, strictly increasing, at which p transitions
	// from down back to up — i.e. the start of every up interval except one
	// beginning at time 0. A restarted process re-runs its init hook with
	// fresh automaton state; messages that reached it while down are lost.
	// Monotone patterns return nil.
	Restarts(p ProcID) []Time
}

var _ FaultModel = (*FailurePattern)(nil)

// Up implements FaultModel: a monotone pattern is up exactly while alive.
func (f *FailurePattern) Up(p ProcID, t Time) bool { return f.Alive(p, t) }

// Restarts implements FaultModel: crashes are permanent, so there are none.
func (f *FailurePattern) Restarts(ProcID) []Time { return nil }
