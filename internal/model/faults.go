package model

// This file generalizes the paper's monotone crash model to environments
// with churn. The paper's F : N → 2^Π is monotone — once a process is in
// F(t) it stays there — which FailurePattern encodes directly. An adversarial
// environment engine additionally wants processes that crash and REJOIN
// (crash+restart pairs with a state reset), so kernels consume liveness
// through the FaultModel interface below: FailurePattern remains the monotone
// special case (it implements FaultModel with no restarts, so every existing
// experiment and the CHT reduction are untouched), and
// internal/sim/adversary.FaultSchedule is the up/down-interval generalization.

// FaultModel answers the two liveness questions a kernel asks: is process p
// up at time t, and at which times does p come back up after a down interval.
//
// Contract: implementations are immutable once handed to a kernel, and all
// queries are deterministic pure functions — the same property that makes
// FailurePattern safe to share across concurrently running kernels.
type FaultModel interface {
	// Up reports whether p is up (taking steps, receiving messages) at t.
	Up(p ProcID, t Time) bool
	// Restarts returns the times, strictly increasing, at which p transitions
	// from down back to up — i.e. the start of every up interval except one
	// beginning at time 0. A restarted process re-runs its init hook with
	// fresh automaton state; messages that reached it while down are lost.
	// Monotone patterns return nil.
	Restarts(p ProcID) []Time
}

var _ FaultModel = (*FailurePattern)(nil)

// Up implements FaultModel: a monotone pattern is up exactly while alive.
func (f *FailurePattern) Up(p ProcID, t Time) bool { return f.Alive(p, t) }

// Restarts implements FaultModel: crashes are permanent, so there are none.
func (f *FailurePattern) Restarts(ProcID) []Time { return nil }

// MergeFaults merges fault schedules: the returned model reports a process up
// only when EVERY input model does, so down intervals union — churn stacked
// on permanent crashes, two independent churn schedules, and so on. Restart
// instants are recomputed against the merged liveness (a component's restart
// while another component still holds the process down is not a restart of
// the merge). Nil inputs are skipped; a single effective model is returned
// as-is, and merging nothing returns nil (no fault override).
//
// The merge is a pure function of immutable pure-query inputs, so it honors
// the FaultModel contract and is safe to share across concurrent kernels like
// any other fault model. The composite environment presets in
// internal/sim/adversary pair it with sim.ComposeNetworks to register both
// halves of a hostile environment under one name.
func MergeFaults(models ...FaultModel) FaultModel {
	live := make([]FaultModel, 0, len(models))
	for _, m := range models {
		if m != nil {
			live = append(live, m)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return mergedFaults(live)
}

type mergedFaults []FaultModel

var _ FaultModel = (mergedFaults)(nil)

// Up implements FaultModel: up iff up in every component.
func (m mergedFaults) Up(p ProcID, t Time) bool {
	for _, f := range m {
		if !f.Up(p, t) {
			return false
		}
	}
	return true
}

// Restarts implements FaultModel. Candidate instants are the union of the
// components' restarts — the merged down set is a union of intervals, so it
// can only transition down→up where some component does — filtered to the
// instants where the MERGE is up having been down the instant before.
func (m mergedFaults) Restarts(p ProcID) []Time {
	var candidates []Time
	for _, f := range m {
		candidates = append(candidates, f.Restarts(p)...)
	}
	if len(candidates) == 0 {
		return nil
	}
	sortTimes(candidates)
	out := make([]Time, 0, len(candidates))
	for i, t := range candidates {
		if i > 0 && candidates[i-1] == t {
			continue // deduplicate coinciding component restarts
		}
		if t > 0 && m.Up(p, t) && !m.Up(p, t-1) {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sortTimes is an insertion sort: restart lists are short (a handful of churn
// intervals per process), and this keeps the cold path free of sort's
// interface machinery.
func sortTimes(ts []Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
