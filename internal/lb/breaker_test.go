package lb

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chaosBackend is an httptest backend whose behavior is switchable at
// runtime: healthy (200), declining (503 + Retry-After), or resetting
// (hijack the connection and close it — a transport-level failure to the
// front door's client, while /healthz stays green).
type chaosBackend struct {
	name string
	srv  *httptest.Server
	mode atomic.Int32 // 0 = ok, 1 = reset, 2 = decline
	hits atomic.Int64 // non-healthz forwards that reached the handler
}

const (
	beOK = iota
	beReset
	beDecline
)

func newChaosBackend(t *testing.T, name string) *chaosBackend {
	t.Helper()
	b := &chaosBackend{name: name}
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		b.hits.Add(1)
		switch b.mode.Load() {
		case beReset:
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("test server does not support hijacking")
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
		case beDecline:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "degraded", http.StatusServiceUnavailable)
		default:
			fmt.Fprint(w, b.name)
		}
	}))
	t.Cleanup(b.srv.Close)
	return b
}

func register(t *testing.T, f *Front, id, baseURL string) {
	t.Helper()
	resp, err := http.Post(f.URL()+"/register?id="+id+"&url="+baseURL, "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: %v %v", id, err, resp)
	}
	resp.Body.Close()
}

func get(t *testing.T, f *Front, session string) (body string, status int, hdr http.Header) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, f.URL()+"/op", nil)
	req.Header.Set("X-Session", session)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw), resp.StatusCode, resp.Header
}

// sessionRanking finds a session whose rendezvous ranking puts wantFirst
// first (white-box: ranking is deterministic, so some small session index
// always exists).
func sessionRanking(t *testing.T, f *Front, wantFirst string) string {
	t.Helper()
	for s := 0; s < 256; s++ {
		session := fmt.Sprintf("s%d", s)
		ranked := f.rank(session)
		if len(ranked) > 0 && ranked[0].id == wantFirst {
			return session
		}
	}
	t.Fatalf("no session ranks %s first", wantFirst)
	return ""
}

// TestBreakerOpensBlocksAndRecloses: consecutive transport failures open a
// backend's breaker (forwards stop reaching it), and after the open interval
// a half-open trial against the recovered backend closes it again. Probes
// are parked (long interval) so the breaker alone is under test.
func TestBreakerOpensBlocksAndRecloses(t *testing.T) {
	be := newChaosBackend(t, "a")
	be.mode.Store(beReset)
	f, err := New(Config{
		ProbeInterval:    10 * time.Second, // parked
		FailThreshold:    1000,             // forward failures must not evict
		BreakerThreshold: 2,
		BreakerOpenFor:   150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	register(t, f, "a", be.srv.URL)

	for i := 0; i < 2; i++ {
		if _, status, _ := get(t, f, "s"); status != http.StatusBadGateway {
			t.Fatalf("request %d against resetting backend: status %d, want 502", i, status)
		}
	}
	if got := be.hits.Load(); got != 2 {
		t.Fatalf("backend saw %d forwards before the breaker opened, want 2", got)
	}
	// Breaker open: further requests must not reach the backend at all.
	for i := 0; i < 3; i++ {
		if _, status, _ := get(t, f, "s"); status != http.StatusBadGateway {
			t.Fatalf("request during open breaker: status %d, want 502", status)
		}
	}
	if got := be.hits.Load(); got != 2 {
		t.Fatalf("open breaker leaked %d forwards to the backend", got-2)
	}

	// Backend recovers; after the open interval one trial closes the breaker.
	be.mode.Store(beOK)
	time.Sleep(200 * time.Millisecond)
	body, status, _ := get(t, f, "s")
	if status != http.StatusOK || body != "a" {
		t.Fatalf("half-open trial: got %d %q, want 200 \"a\"", status, body)
	}
	if body, status, _ = get(t, f, "s"); status != http.StatusOK || body != "a" {
		t.Fatalf("after reclose: got %d %q, want 200 \"a\"", status, body)
	}
}

// TestRetryBudgetBoundsFailovers: with the token bucket nearly empty, a
// flapping first-ranked replica can absorb only the budgeted number of
// failovers — excess requests fail fast instead of storming the healthy
// replica — and once the flapper's breaker opens, requests route cleanly
// around it at no budget cost.
func TestRetryBudgetBoundsFailovers(t *testing.T) {
	dead := newChaosBackend(t, "dead")
	dead.mode.Store(beReset)
	live := newChaosBackend(t, "live")
	f, err := New(Config{
		ProbeInterval:    10 * time.Second,
		FailThreshold:    1000,
		BreakerThreshold: 3,
		BreakerOpenFor:   10 * time.Second,
		RetryCredit:      0.01, // ~no refill during the test
		RetryBurst:       1,    // exactly one failover in the bucket
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	register(t, f, "dead", dead.srv.URL)
	register(t, f, "live", live.srv.URL)
	session := sessionRanking(t, f, "dead")

	// Request 1: dead fails, the one budgeted failover lands on live.
	if body, status, _ := get(t, f, session); status != http.StatusOK || body != "live" {
		t.Fatalf("request 1: got %d %q, want budgeted failover to live", status, body)
	}
	// Requests 2–3: budget dry — failover denied, requests fail fast.
	for i := 2; i <= 3; i++ {
		if _, status, _ := get(t, f, session); status != http.StatusBadGateway {
			t.Fatalf("request %d: status %d, want 502 (failover denied)", i, status)
		}
	}
	if f.RetriesDenied() != 2 {
		t.Fatalf("RetriesDenied = %d, want 2", f.RetriesDenied())
	}
	if f.Failovers() != 1 {
		t.Fatalf("Failovers = %d, want 1", f.Failovers())
	}
	// Request 3 was dead's third consecutive transport failure: breaker open.
	// Routing now skips it as a FIRST attempt — no budget needed.
	for i := 4; i <= 6; i++ {
		if body, status, _ := get(t, f, session); status != http.StatusOK || body != "live" {
			t.Fatalf("request %d after breaker opened: got %d %q, want live", i, status, body)
		}
	}
	if got := f.RetriesDenied(); got != 2 {
		t.Fatalf("breaker-routed requests consumed budget: RetriesDenied = %d", got)
	}
}

// TestDecliningReplicaFailsOver: a degraded replica's 503 + Retry-After is
// an invitation to try a peer — the front door relays the healthy answer,
// charges no breaker failure, and only when EVERY replica declines does the
// client see the 503 (with Retry-After preserved).
func TestDecliningReplicaFailsOver(t *testing.T) {
	deg := newChaosBackend(t, "deg")
	deg.mode.Store(beDecline)
	ok := newChaosBackend(t, "ok")
	f, err := New(Config{ProbeInterval: 10 * time.Second, FailThreshold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	register(t, f, "deg", deg.srv.URL)
	register(t, f, "ok", ok.srv.URL)
	session := sessionRanking(t, f, "deg")

	for i := 0; i < 4; i++ {
		body, status, _ := get(t, f, session)
		if status != http.StatusOK || body != "ok" {
			t.Fatalf("request %d: got %d %q, want failover to ok", i, status, body)
		}
	}
	if f.Declined() != 4 {
		t.Fatalf("Declined = %d, want 4", f.Declined())
	}
	// Declines are answers, not transport failures: deg must still be
	// admitted (breaker closed) and hit first on every request.
	if got := deg.hits.Load(); got != 4 {
		t.Fatalf("declining replica saw %d forwards, want 4 (breaker must stay closed)", got)
	}

	// Everyone declines → the 503 is the service's honest answer.
	ok.mode.Store(beDecline)
	_, status, hdr := get(t, f, session)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("all-declining: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("all-declining 503 lost its Retry-After header")
	}
}

// TestProbeDeregisterChurn pins the probe/deregister window: health probes
// snapshot *replica pointers outside the lock, and a concurrent deregister
// (or re-register, which installs a FRESH struct) orphans them mid-probe.
// Before the membership re-check, the prober would mutate the orphan —
// losing evictions or resurrecting replicas the registry no longer holds.
// Run under -race with registration churn, probe traffic, and routing all
// concurrent; afterwards the registry must reflect only the final state.
func TestProbeDeregisterChurn(t *testing.T) {
	flap := newChaosBackend(t, "flap")
	f, err := New(Config{
		ProbeInterval: time.Millisecond,
		ProbeTimeout:  50 * time.Millisecond,
		FailThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // churn: register/deregister the same id as fast as possible
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(f.URL()+"/register?id=x&url="+flap.srv.URL, "", nil)
			if err == nil {
				resp.Body.Close()
			}
			resp, err = http.Post(f.URL()+"/deregister?id=x", "", nil)
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	go func() { // concurrent routing traffic
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			req, _ := http.NewRequest(http.MethodGet, f.URL()+"/op", nil)
			req.Header.Set("X-Session", "s")
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Final deregister; any probe still in flight must not resurrect x.
	resp, err := http.Post(f.URL()+"/deregister?id=x", "", nil)
	if err == nil {
		resp.Body.Close()
	}
	time.Sleep(20 * time.Millisecond) // let in-flight probes settle
	f.mu.RLock()
	_, present := f.replicas["x"]
	f.mu.RUnlock()
	if present {
		t.Fatal("deregistered replica x still present in the registry")
	}
}
