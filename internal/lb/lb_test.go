package lb

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeReplica is an httptest backend that answers /healthz and echoes its
// name on every other path.
type fakeReplica struct {
	name string
	srv  *httptest.Server
	hits int
}

func newFakeReplica(name string) *fakeReplica {
	f := &fakeReplica{name: name}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		f.hits++
		fmt.Fprint(w, f.name)
	}))
	return f
}

func startFront(t *testing.T, backends ...*fakeReplica) *Front {
	t.Helper()
	f, err := New(Config{ProbeInterval: 20 * time.Millisecond, ProbeTimeout: time.Second})
	if err != nil {
		t.Fatalf("front: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	for _, b := range backends {
		resp, err := http.Post(f.URL()+"/register?id="+b.name+"&url="+b.srv.URL, "", nil)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: %v %v", b.name, err, resp)
		}
		resp.Body.Close()
	}
	return f
}

func routed(t *testing.T, f *Front, session string) (replica string, status int) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, f.URL()+"/whoami", nil)
	req.Header.Set("X-Session", session)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return strings.TrimSpace(string(body)), resp.StatusCode
}

// TestSessionAffinityIsDeterministic: rendezvous hashing routes the same
// session to the same backend every time, and different sessions actually
// spread (with enough sessions, more than one backend serves traffic).
func TestSessionAffinityIsDeterministic(t *testing.T) {
	a, b, c := newFakeReplica("a"), newFakeReplica("b"), newFakeReplica("c")
	defer a.srv.Close()
	defer b.srv.Close()
	defer c.srv.Close()
	f := startFront(t, a, b, c)

	seen := make(map[string]string)
	backends := make(map[string]bool)
	for s := 0; s < 20; s++ {
		session := fmt.Sprintf("session-%d", s)
		for i := 0; i < 3; i++ {
			got, status := routed(t, f, session)
			if status != http.StatusOK {
				t.Fatalf("session %s: status %d", session, status)
			}
			if prev, ok := seen[session]; ok && prev != got {
				t.Fatalf("session %s bounced %s -> %s", session, prev, got)
			}
			seen[session] = got
			backends[got] = true
		}
	}
	if len(backends) < 2 {
		t.Errorf("20 sessions all landed on %v — rendezvous spread suspiciously absent", backends)
	}
}

// TestFailoverOnTransportError: when a session's backend dies, the forward
// fails at the transport level and the front door retries the session's
// next-ranked backend transparently — the client still gets 200.
func TestFailoverOnTransportError(t *testing.T) {
	a, b, c := newFakeReplica("a"), newFakeReplica("b"), newFakeReplica("c")
	defer b.srv.Close()
	defer c.srv.Close()
	f := startFront(t, a, b, c)

	const session = "sticky"
	first, status := routed(t, f, session)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	// Kill whichever backend owns the session; keep the others.
	for _, fr := range []*fakeReplica{a, b, c} {
		if fr.name == first {
			fr.srv.Close()
		}
	}
	got, status := routed(t, f, session)
	if status != http.StatusOK {
		t.Fatalf("failover request got status %d", status)
	}
	if got == first {
		t.Fatalf("request still served by dead backend %s", first)
	}
	// The dead backend accumulates forward failures and is evicted, so
	// subsequent requests skip it without a retry penalty.
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := f.Healthy()
		if len(healthy) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead backend never evicted: healthy=%v", healthy)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestErrorStatusIsRelayedNotFailedOver: an HTTP error status is the
// replica's answer — the front door must relay it, not shop for a backend
// that says something nicer.
func TestErrorStatusIsRelayedNotFailedOver(t *testing.T) {
	angry := &fakeReplica{name: "angry"}
	angry.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		http.Error(w, "no", http.StatusConflict)
	}))
	defer angry.srv.Close()
	calm := newFakeReplica("calm")
	defer calm.srv.Close()
	f := startFront(t, angry, calm)

	// Find a session that rendezvous-routes to the angry backend.
	for s := 0; s < 100; s++ {
		session := fmt.Sprintf("probe-%d", s)
		got, status := routed(t, f, session)
		if status == http.StatusConflict {
			return // relayed as-is: exactly right
		}
		if status != http.StatusOK || got != "calm" {
			t.Fatalf("session %s: unexpected %d %q", session, status, got)
		}
	}
	t.Fatal("no session ever routed to the angry backend — rendezvous broken?")
}

// TestDeregisterStopsRouting: a deregistered replica receives no further
// traffic even though it is still alive and healthy.
func TestDeregisterStopsRouting(t *testing.T) {
	a, b := newFakeReplica("a"), newFakeReplica("b")
	defer a.srv.Close()
	defer b.srv.Close()
	f := startFront(t, a, b)

	resp, err := http.Post(f.URL()+"/deregister?id=a", "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: %v %v", err, resp)
	}
	resp.Body.Close()
	before := a.hits
	for s := 0; s < 10; s++ {
		got, status := routed(t, f, fmt.Sprintf("s%d", s))
		if status != http.StatusOK || got != "b" {
			t.Fatalf("session s%d: %d %q routed past deregistration", s, status, got)
		}
	}
	if a.hits != before {
		t.Fatalf("deregistered replica served %d requests", a.hits-before)
	}
}
