// Package lb is the service plane's front door: a small HTTP load balancer
// that spreads client operations over the registered replica nodes
// (internal/node) of one eventually consistent service.
//
// Replicas announce themselves with POST /register?id=..&url=.. and withdraw
// with POST /deregister?id=.. — the graceful-shutdown path of a node does the
// latter BEFORE draining, so the front door stops routing to a leaving
// replica while it can still finish in-flight work. Between registrations,
// liveness is health-driven: a background prober hits each replica's
// /healthz, and FailThreshold consecutive failures evict the replica from
// routing (it rejoins automatically when probes succeed again). Eviction is
// soft — the registration survives — so a crashed-and-restarted replica
// resumes service without re-registering.
//
// Routing is session-affine by rendezvous (highest-random-weight) hashing:
// each request's session key — the X-Session header, else the "session"
// query parameter, else the client IP — scores every healthy replica by
// hash(session, replica) and picks the maximum. The same session therefore
// sticks to the same replica while the replica set is stable (read-your-
// writes for clients of an eventually consistent store, per session), and
// when a replica joins or leaves only the sessions scored onto it move —
// no global reshuffle, no routing table to rebuild, no state to migrate.
// When the forward itself fails, the front door marks the replica failing
// and retries the NEXT-best replica of the same session transparently, so a
// replica dying between probes costs clients nothing but latency.
package lb

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config configures a front door.
type Config struct {
	// Addr is the HTTP listen address (default "127.0.0.1:0").
	Addr string
	// ProbeInterval is the health-probe period (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default ProbeInterval/2).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures evict a replica
	// from routing (default 2).
	FailThreshold int
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// replica is one registered backend.
type replica struct {
	id      string
	baseURL string
	fails   int
	healthy bool
}

// Front is a running front door.
type Front struct {
	cfg    Config
	ln     net.Listener
	srv    *http.Server
	client *http.Client

	mu       sync.RWMutex
	replicas map[string]*replica

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	httpDone chan struct{}
}

// New starts a front door.
func New(cfg Config) (*Front, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval / 2
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("lb: listen %s: %w", cfg.Addr, err)
	}
	f := &Front{
		cfg:      cfg,
		ln:       ln,
		client:   &http.Client{Timeout: 10 * time.Second},
		replicas: make(map[string]*replica),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		httpDone: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/register", f.handleRegister)
	mux.HandleFunc("/deregister", f.handleDeregister)
	mux.HandleFunc("/replicas", f.handleReplicas)
	mux.HandleFunc("/", f.handleRoute)
	f.srv = &http.Server{Handler: mux}
	go func() {
		defer close(f.httpDone)
		if err := f.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			f.logf("lb: serve: %v", err)
		}
	}()
	go f.probeLoop()
	return f, nil
}

func (f *Front) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Addr returns the address the front door actually listens on.
func (f *Front) Addr() string { return f.ln.Addr().String() }

// URL returns the front door's base URL.
func (f *Front) URL() string { return "http://" + f.Addr() }

// Close stops the prober and the HTTP server.
func (f *Front) Close() error {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.srv.Close()
		<-f.httpDone
		<-f.done
	})
	return nil
}

// Healthy returns the IDs of replicas currently eligible for routing.
func (f *Front) Healthy() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var ids []string
	for id, r := range f.replicas {
		if r.healthy {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// handleRegister adds (or re-adds) a replica: POST /register?id=..&url=..
// A replica registers healthy — it would not call in otherwise.
func (f *Front) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id, base := r.URL.Query().Get("id"), r.URL.Query().Get("url")
	if id == "" || base == "" {
		http.Error(w, "need id and url", http.StatusBadRequest)
		return
	}
	if _, err := url.ParseRequestURI(base); err != nil {
		http.Error(w, "bad url", http.StatusBadRequest)
		return
	}
	f.mu.Lock()
	f.replicas[id] = &replica{id: id, baseURL: strings.TrimRight(base, "/"), healthy: true}
	f.mu.Unlock()
	f.logf("lb: registered replica %s at %s", id, base)
	fmt.Fprintln(w, "ok")
}

// handleDeregister removes a replica entirely: POST /deregister?id=..
func (f *Front) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("id")
	f.mu.Lock()
	_, had := f.replicas[id]
	delete(f.replicas, id)
	f.mu.Unlock()
	if !had {
		http.Error(w, "unknown replica", http.StatusNotFound)
		return
	}
	f.logf("lb: deregistered replica %s", id)
	fmt.Fprintln(w, "ok")
}

// handleReplicas lists the registry: GET /replicas → "id url healthy" lines.
func (f *Front) handleReplicas(w http.ResponseWriter, r *http.Request) {
	f.mu.RLock()
	ids := make([]string, 0, len(f.replicas))
	for id := range f.replicas {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		rep := f.replicas[id]
		fmt.Fprintf(&b, "%s %s %v\n", rep.id, rep.baseURL, rep.healthy)
	}
	f.mu.RUnlock()
	io.WriteString(w, b.String())
}

// sessionKey extracts the affinity key of a request.
func sessionKey(r *http.Request) string {
	if s := r.Header.Get("X-Session"); s != "" {
		return s
	}
	if s := r.URL.Query().Get("session"); s != "" {
		return s
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// rank orders the healthy replicas for a session by rendezvous score,
// best first.
func (f *Front) rank(session string) []*replica {
	f.mu.RLock()
	defer f.mu.RUnlock()
	type scored struct {
		r *replica
		s uint64
	}
	var cands []scored
	for _, rep := range f.replicas {
		if !rep.healthy {
			continue
		}
		h := fnv.New64a()
		io.WriteString(h, session)
		io.WriteString(h, "\x00")
		io.WriteString(h, rep.id)
		cands = append(cands, scored{r: rep, s: h.Sum64()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].r.id < cands[j].r.id
	})
	out := make([]*replica, len(cands))
	for i, c := range cands {
		out[i] = c.r
	}
	return out
}

// markFailed records a forwarding failure against a replica, evicting it at
// the configured threshold (probes bring it back).
func (f *Front) markFailed(rep *replica) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rep.fails++
	if rep.fails >= f.cfg.FailThreshold && rep.healthy {
		rep.healthy = false
		f.logf("lb: evicted replica %s after %d failures", rep.id, rep.fails)
	}
}

// handleRoute forwards any other request to the session's replica, falling
// through the session's rendezvous ranking when a forward fails at the
// transport level. Only transport failures fail over — an HTTP error status
// is the replica's answer and is relayed as-is.
func (f *Front) handleRoute(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ranked := f.rank(sessionKey(r))
	if len(ranked) == 0 {
		http.Error(w, "no healthy replicas", http.StatusServiceUnavailable)
		return
	}
	for _, rep := range ranked {
		target := rep.baseURL + r.URL.RequestURI()
		req, err := http.NewRequestWithContext(r.Context(), r.Method, target, strings.NewReader(string(body)))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := f.client.Do(req)
		if err != nil {
			f.markFailed(rep)
			continue
		}
		w.Header().Set("X-Replica", rep.id)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	http.Error(w, "all replicas unreachable", http.StatusBadGateway)
}

// probeLoop drives health-based eviction and recovery.
func (f *Front) probeLoop() {
	defer close(f.done)
	client := &http.Client{Timeout: f.cfg.ProbeTimeout}
	ticker := time.NewTicker(f.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
		}
		f.mu.RLock()
		reps := make([]*replica, 0, len(f.replicas))
		for _, rep := range f.replicas {
			reps = append(reps, rep)
		}
		f.mu.RUnlock()
		for _, rep := range reps {
			ok := probe(client, rep.baseURL+"/healthz")
			f.mu.Lock()
			if ok {
				if !rep.healthy {
					f.logf("lb: replica %s recovered", rep.id)
				}
				rep.fails, rep.healthy = 0, true
			} else {
				rep.fails++
				if rep.fails >= f.cfg.FailThreshold && rep.healthy {
					rep.healthy = false
					f.logf("lb: evicted replica %s after %d failed probes", rep.id, rep.fails)
				}
			}
			f.mu.Unlock()
		}
	}
}

func probe(client *http.Client, target string) bool {
	resp, err := client.Get(target)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
