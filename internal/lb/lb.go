// Package lb is the service plane's front door: a small HTTP load balancer
// that spreads client operations over the registered replica nodes
// (internal/node) of one eventually consistent service.
//
// Replicas announce themselves with POST /register?id=..&url=.. and withdraw
// with POST /deregister?id=.. — the graceful-shutdown path of a node does the
// latter BEFORE draining, so the front door stops routing to a leaving
// replica while it can still finish in-flight work. Between registrations,
// liveness is health-driven: a background prober hits each replica's
// /healthz, and FailThreshold consecutive failures evict the replica from
// routing (it rejoins automatically when probes succeed again). Eviction is
// soft — the registration survives — so a crashed-and-restarted replica
// resumes service without re-registering.
//
// Routing is session-affine by rendezvous (highest-random-weight) hashing:
// each request's session key — the X-Session header, else the "session"
// query parameter, else the client IP — scores every healthy replica by
// hash(session, replica) and picks the maximum. The same session therefore
// sticks to the same replica while the replica set is stable (read-your-
// writes for clients of an eventually consistent store, per session), and
// when a replica joins or leaves only the sessions scored onto it move —
// no global reshuffle, no routing table to rebuild, no state to migrate.
// When the forward itself fails, the front door marks the replica failing
// and retries the NEXT-best replica of the same session transparently, so a
// replica dying between probes costs clients nothing but latency.
//
// # Failure containment
//
// Failover is governed by two mechanisms that keep a misbehaving backend or
// a failure storm from amplifying through the front door:
//
//   - A per-backend CIRCUIT BREAKER: Config.BreakerThreshold consecutive
//     transport failures open the breaker and the replica stops receiving
//     forwards; after Config.BreakerOpenFor it half-opens, admitting one
//     trial request (or a successful health probe) whose outcome closes or
//     re-opens it. The breaker is deliberately separate from probe-driven
//     eviction: probes ask "is the process alive", the breaker asks "are
//     forwards to it currently failing", and a replica flapping between the
//     two states is contained by whichever trips first.
//
//   - A RETRY BUDGET: each incoming request earns Config.RetryCredit retry
//     tokens (capped at Config.RetryBurst), and every failover attempt
//     beyond a request's first forward spends one. When the budget is
//     exhausted, requests get the first answer or error without failover —
//     so a flapping replica costs the fleet a bounded fraction of extra
//     load instead of an unbounded retry storm.
//
// A backend answering 503 WITH a Retry-After header is DECLINING (a
// degraded, partitioned-away replica refusing writes — see internal/node),
// not broken: the front door fails such operations over to the next-ranked
// replica without charging the breaker, relaying the 503 only when every
// replica declines.
package lb

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config configures a front door.
type Config struct {
	// Addr is the HTTP listen address (default "127.0.0.1:0").
	Addr string
	// ProbeInterval is the health-probe period (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default ProbeInterval/2).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures evict a replica
	// from routing (default 2).
	FailThreshold int
	// BreakerThreshold is how many consecutive forward (transport) failures
	// open a replica's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerOpenFor is how long an open breaker blocks forwards before
	// half-opening for a trial (default 2×ProbeInterval).
	BreakerOpenFor time.Duration
	// RetryCredit is how many retry tokens each incoming request earns
	// (default 0.2 — failovers bounded at ~20% of request volume).
	RetryCredit float64
	// RetryBurst caps the retry-token bucket (default 10; the bucket starts
	// full so cold-start failovers are never denied).
	RetryBurst float64
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Circuit breaker states.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

// replica is one registered backend. All fields beyond id/baseURL are
// guarded by Front.mu; a *replica may outlive its registry entry (a stale
// pointer held by the prober or a forward in flight), so every mutation
// first re-checks membership — see Front.current.
type replica struct {
	id      string
	baseURL string
	fails   int
	healthy bool

	brState   int
	brFails   int
	openUntil time.Time
	trial     bool // half-open: one trial forward in flight
}

// Front is a running front door.
type Front struct {
	cfg    Config
	ln     net.Listener
	srv    *http.Server
	client *http.Client

	mu       sync.RWMutex
	replicas map[string]*replica
	tokens   float64 // retry budget (guarded by mu)

	failovers   atomic.Int64
	retryDenied atomic.Int64
	declined    atomic.Int64

	// Observability plane: the registry behind GET /metrics and the routed-
	// request latency histogram (same name as the replicas' so a dashboard
	// overlays front-door latency on backend latency directly).
	reg     *obs.Registry
	httpLat *obs.Histogram

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	httpDone chan struct{}
}

// New starts a front door.
func New(cfg Config) (*Front, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval / 2
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerOpenFor <= 0 {
		cfg.BreakerOpenFor = 2 * cfg.ProbeInterval
	}
	if cfg.RetryCredit <= 0 {
		cfg.RetryCredit = 0.2
	}
	if cfg.RetryBurst <= 0 {
		cfg.RetryBurst = 10
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("lb: listen %s: %w", cfg.Addr, err)
	}
	f := &Front{
		cfg:      cfg,
		ln:       ln,
		client:   &http.Client{Timeout: 10 * time.Second},
		replicas: make(map[string]*replica),
		tokens:   cfg.RetryBurst,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		httpDone: make(chan struct{}),
	}
	f.wireMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("/register", f.handleRegister)
	mux.HandleFunc("/deregister", f.handleDeregister)
	mux.HandleFunc("/replicas", f.handleReplicas)
	// /metrics is the front door's OWN scrape endpoint — registered on an
	// exact pattern so it wins over the catch-all route and is never
	// forwarded to a backend.
	mux.Handle("/metrics", f.reg)
	mux.HandleFunc("/", f.handleRoute)
	f.srv = &http.Server{Handler: mux}
	go func() {
		defer close(f.httpDone)
		if err := f.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			f.logf("lb: serve: %v", err)
		}
	}()
	go f.probeLoop()
	return f, nil
}

// wireMetrics builds the front door's registry: failover-governance counters
// read straight from the existing atomics, plus two routing-health gauges
// computed at scrape time under the registry lock's snapshot.
func (f *Front) wireMetrics() {
	f.reg = obs.NewRegistry()
	f.httpLat = f.reg.Histogram(obs.MetricHTTPLatency)
	f.reg.CounterFunc(obs.MetricLBFailovers, f.failovers.Load)
	f.reg.CounterFunc(obs.MetricLBRetriesDenied, f.retryDenied.Load)
	f.reg.CounterFunc(obs.MetricLBDeclined, f.declined.Load)
	f.reg.GaugeFunc(obs.MetricLBHealthy, func() int64 {
		return int64(len(f.Healthy()))
	})
	f.reg.GaugeFunc(obs.MetricLBBreakerOpen, func() int64 {
		f.mu.RLock()
		defer f.mu.RUnlock()
		var open int64
		for _, rep := range f.replicas {
			if rep.brState == brOpen {
				open++
			}
		}
		return open
	})
}

// Registry returns the front door's metrics registry (GET /metrics).
func (f *Front) Registry() *obs.Registry { return f.reg }

func (f *Front) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Addr returns the address the front door actually listens on.
func (f *Front) Addr() string { return f.ln.Addr().String() }

// URL returns the front door's base URL.
func (f *Front) URL() string { return "http://" + f.Addr() }

// Close stops the prober and the HTTP server.
func (f *Front) Close() error {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.srv.Close()
		<-f.httpDone
		<-f.done
	})
	return nil
}

// Healthy returns the IDs of replicas currently eligible for routing.
func (f *Front) Healthy() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var ids []string
	for id, r := range f.replicas {
		if r.healthy {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// handleRegister adds (or re-adds) a replica: POST /register?id=..&url=..
// A replica registers healthy — it would not call in otherwise.
func (f *Front) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id, base := r.URL.Query().Get("id"), r.URL.Query().Get("url")
	if id == "" || base == "" {
		http.Error(w, "need id and url", http.StatusBadRequest)
		return
	}
	if _, err := url.ParseRequestURI(base); err != nil {
		http.Error(w, "bad url", http.StatusBadRequest)
		return
	}
	f.mu.Lock()
	f.replicas[id] = &replica{id: id, baseURL: strings.TrimRight(base, "/"), healthy: true}
	f.mu.Unlock()
	f.logf("lb: registered replica %s at %s", id, base)
	fmt.Fprintln(w, "ok")
}

// handleDeregister removes a replica entirely: POST /deregister?id=..
func (f *Front) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("id")
	f.mu.Lock()
	_, had := f.replicas[id]
	delete(f.replicas, id)
	f.mu.Unlock()
	if !had {
		http.Error(w, "unknown replica", http.StatusNotFound)
		return
	}
	f.logf("lb: deregistered replica %s", id)
	fmt.Fprintln(w, "ok")
}

// handleReplicas lists the registry: GET /replicas → "id url healthy" lines.
func (f *Front) handleReplicas(w http.ResponseWriter, r *http.Request) {
	f.mu.RLock()
	ids := make([]string, 0, len(f.replicas))
	for id := range f.replicas {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		rep := f.replicas[id]
		fmt.Fprintf(&b, "%s %s %v\n", rep.id, rep.baseURL, rep.healthy)
	}
	f.mu.RUnlock()
	io.WriteString(w, b.String())
}

// sessionKey extracts the affinity key of a request.
func sessionKey(r *http.Request) string {
	if s := r.Header.Get("X-Session"); s != "" {
		return s
	}
	if s := r.URL.Query().Get("session"); s != "" {
		return s
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// rank orders the healthy replicas for a session by rendezvous score,
// best first.
func (f *Front) rank(session string) []*replica {
	f.mu.RLock()
	defer f.mu.RUnlock()
	type scored struct {
		r *replica
		s uint64
	}
	var cands []scored
	for _, rep := range f.replicas {
		if !rep.healthy {
			continue
		}
		h := fnv.New64a()
		io.WriteString(h, session)
		io.WriteString(h, "\x00")
		io.WriteString(h, rep.id)
		cands = append(cands, scored{r: rep, s: h.Sum64()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].r.id < cands[j].r.id
	})
	out := make([]*replica, len(cands))
	for i, c := range cands {
		out[i] = c.r
	}
	return out
}

// current reports whether rep is still THE registry entry for its id. Every
// mutation of a replica's guarded fields must check this first: the prober
// and in-flight forwards hold *replica pointers across lock releases, and a
// concurrent Deregister (or re-register, which installs a fresh struct) can
// orphan the pointer in between — mutating the orphan would resurrect or
// mis-track a replica the registry no longer knows.
func (f *Front) current(rep *replica) bool {
	return f.replicas[rep.id] == rep
}

// admit asks rep's circuit breaker whether a forward may proceed,
// transitioning open→half-open when the open interval has elapsed.
func (f *Front) admit(rep *replica) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.current(rep) {
		return false
	}
	switch rep.brState {
	case brClosed:
		return true
	case brOpen:
		if time.Now().Before(rep.openUntil) {
			return false
		}
		rep.brState, rep.trial = brHalfOpen, true
		f.logf("lb: breaker half-open for replica %s", rep.id)
		return true
	default: // half-open: one trial at a time
		if rep.trial {
			return false
		}
		rep.trial = true
		return true
	}
}

// reportForward settles a forward attempt against rep's breaker and the
// probe-eviction counter. Success closes the breaker; failure counts toward
// both opening it and probe-style eviction.
func (f *Front) reportForward(rep *replica, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.current(rep) {
		return
	}
	if ok {
		if rep.brState != brClosed {
			f.logf("lb: breaker closed for replica %s", rep.id)
		}
		rep.brState, rep.brFails, rep.trial = brClosed, 0, false
		return
	}
	rep.trial = false
	rep.brFails++
	if rep.brState == brHalfOpen || (rep.brState == brClosed && rep.brFails >= f.cfg.BreakerThreshold) {
		rep.brState = brOpen
		rep.openUntil = time.Now().Add(f.cfg.BreakerOpenFor)
		f.logf("lb: breaker open for replica %s after %d transport failures", rep.id, rep.brFails)
	}
	rep.fails++
	if rep.fails >= f.cfg.FailThreshold && rep.healthy {
		rep.healthy = false
		f.logf("lb: evicted replica %s after %d failures", rep.id, rep.fails)
	}
}

// creditRetry refills the retry budget on an incoming request; spendRetry
// charges one token per failover attempt, denying when the bucket is dry.
func (f *Front) creditRetry() {
	f.mu.Lock()
	if f.tokens += f.cfg.RetryCredit; f.tokens > f.cfg.RetryBurst {
		f.tokens = f.cfg.RetryBurst
	}
	f.mu.Unlock()
}

func (f *Front) spendRetry() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tokens < 1 {
		return false
	}
	f.tokens--
	return true
}

// Failovers returns how many times a request was retried on another replica.
func (f *Front) Failovers() int64 { return f.failovers.Load() }

// RetriesDenied returns how many failovers the retry budget refused.
func (f *Front) RetriesDenied() int64 { return f.retryDenied.Load() }

// Declined returns how many forwards a degraded replica declined
// (503 + Retry-After) before failover.
func (f *Front) Declined() int64 { return f.declined.Load() }

// declining recognizes a replica's explicit "not now": a degraded node
// refusing writes answers 503 WITH Retry-After (see internal/node) — an
// invitation to try a peer, not a transport failure.
func declining(resp *http.Response) bool {
	return resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != ""
}

// handleRoute forwards any other request to the session's replica, falling
// through the session's rendezvous ranking when a forward fails at the
// transport level or the replica declines (degraded 503 + Retry-After).
// Other HTTP error statuses are the replica's answer and are relayed as-is.
// Failovers past a request's first attempt spend the retry budget.
func (f *Front) handleRoute(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { f.httpLat.Record(time.Since(start).Microseconds()) }()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.creditRetry()
	ranked := f.rank(sessionKey(r))
	if len(ranked) == 0 {
		http.Error(w, "no healthy replicas", http.StatusServiceUnavailable)
		return
	}
	attempts, someoneDeclined := 0, false
	for _, rep := range ranked {
		if !f.admit(rep) {
			continue
		}
		if attempts > 0 {
			if !f.spendRetry() {
				f.retryDenied.Add(1)
				break
			}
			f.failovers.Add(1)
		}
		attempts++
		target := rep.baseURL + r.URL.RequestURI()
		req, err := http.NewRequestWithContext(r.Context(), r.Method, target, strings.NewReader(string(body)))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := f.client.Do(req)
		if err != nil {
			f.reportForward(rep, false)
			continue
		}
		f.reportForward(rep, true)
		if declining(resp) {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			f.declined.Add(1)
			someoneDeclined = true
			continue
		}
		w.Header().Set("X-Replica", rep.id)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	if someoneDeclined {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "all replicas declining (degraded)", http.StatusServiceUnavailable)
		return
	}
	http.Error(w, "all replicas unreachable", http.StatusBadGateway)
}

// probeLoop drives health-based eviction and recovery.
func (f *Front) probeLoop() {
	defer close(f.done)
	client := &http.Client{Timeout: f.cfg.ProbeTimeout}
	ticker := time.NewTicker(f.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
		}
		f.mu.RLock()
		reps := make([]*replica, 0, len(f.replicas))
		for _, rep := range f.replicas {
			reps = append(reps, rep)
		}
		f.mu.RUnlock()
		for _, rep := range reps {
			ok := probe(client, rep.baseURL+"/healthz")
			f.mu.Lock()
			if !f.current(rep) {
				// Deregistered (or replaced by a re-registration) while the
				// probe was in flight: this pointer is an orphan, and
				// mutating it would route state changes to a replica the
				// registry no longer holds.
				f.mu.Unlock()
				continue
			}
			if ok {
				if !rep.healthy {
					f.logf("lb: replica %s recovered", rep.id)
				}
				rep.fails, rep.healthy = 0, true
				// A live health endpoint is the half-open trial for an
				// expired breaker: auto-close without waiting for a client
				// request to volunteer.
				if rep.brState == brOpen && !time.Now().Before(rep.openUntil) {
					rep.brState, rep.brFails, rep.trial = brClosed, 0, false
					f.logf("lb: breaker closed for replica %s (probe)", rep.id)
				}
			} else {
				rep.fails++
				if rep.fails >= f.cfg.FailThreshold && rep.healthy {
					rep.healthy = false
					f.logf("lb: evicted replica %s after %d failed probes", rep.id, rep.fails)
				}
			}
			f.mu.Unlock()
		}
	}
}

func probe(client *http.Client, target string) bool {
	resp, err := client.Get(target)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
