package quorum

import (
	"sync"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
)

// opObserver collects register-operation outputs.
type opObserver struct {
	sim.NopObserver
	mu     sync.Mutex
	writes map[model.ProcID][]WriteDone
	reads  map[model.ProcID][]ReadDone
}

func newOpObserver() *opObserver {
	return &opObserver{
		writes: make(map[model.ProcID][]WriteDone),
		reads:  make(map[model.ProcID][]ReadDone),
	}
}

func (o *opObserver) OnOutput(p model.ProcID, _ model.Time, v any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch out := v.(type) {
	case WriteDone:
		o.writes[p] = append(o.writes[p], out)
	case ReadDone:
		o.reads[p] = append(o.reads[p], out)
	}
}

func TestTagOrdering(t *testing.T) {
	a := Tag{TS: 1, Writer: 2}
	b := Tag{TS: 2, Writer: 1}
	c := Tag{TS: 1, Writer: 3}
	if !a.Less(b) || b.Less(a) {
		t.Error("timestamp dominates")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("writer breaks ties")
	}
	if a.Less(a) {
		t.Error("irreflexive")
	}
}

func TestWriteThenReadMajority(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	obs := newOpObserver()
	k := sim.New(fp, det, Factory(Majority), sim.Options{Seed: 3})
	k.SetObserver(obs)
	k.ScheduleInput(1, 10, WriteInput{Value: "hello"})
	k.ScheduleInput(2, 500, ReadInput{}) // starts well after the write completes
	k.Run(3000)

	if len(obs.writes[1]) != 1 || obs.writes[1][0].Value != "hello" {
		t.Fatalf("write outcome: %+v", obs.writes[1])
	}
	if len(obs.reads[2]) != 1 || obs.reads[2][0].Value != "hello" {
		t.Fatalf("read after write must see it: %+v", obs.reads[2])
	}
}

func TestReadsMonotoneTags(t *testing.T) {
	// Writes w1 < w2 from the same writer; any reader sequence of completed
	// reads must observe non-decreasing tags (regularity via write-backs).
	fp := model.NewFailurePattern(5)
	det := fd.NewOmegaStable(fp, 1)
	obs := newOpObserver()
	k := sim.New(fp, det, Factory(Majority), sim.Options{Seed: 9})
	k.SetObserver(obs)
	k.ScheduleInput(1, 10, WriteInput{Value: "v1"})
	k.ScheduleInput(1, 300, WriteInput{Value: "v2"})
	for i := 0; i < 6; i++ {
		k.ScheduleInput(3, model.Time(50+i*120), ReadInput{})
	}
	k.Run(5000)
	rs := obs.reads[3]
	if len(rs) != 6 {
		t.Fatalf("expected 6 completed reads, got %d", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Tag.Less(rs[i-1].Tag) {
			t.Fatalf("tags went backwards: %+v then %+v", rs[i-1], rs[i])
		}
	}
	if rs[len(rs)-1].Value != "v2" {
		t.Fatalf("final read = %q, want v2", rs[len(rs)-1].Value)
	}
}

func TestMajorityBlocksWithMinorityCorrect(t *testing.T) {
	// 2 of 5 correct: no operation can complete — the CAP-style blocking that
	// motivates eventual consistency (§1).
	fp := model.NewFailurePattern(5)
	fp.Crash(3, 0)
	fp.Crash(4, 0)
	fp.Crash(5, 0)
	det := fd.NewOmegaStable(fp, 1)
	obs := newOpObserver()
	k := sim.New(fp, det, Factory(Majority), sim.Options{Seed: 4})
	k.SetObserver(obs)
	k.ScheduleInput(1, 10, WriteInput{Value: "x"})
	k.ScheduleInput(2, 10, ReadInput{})
	k.Run(5000)
	if len(obs.writes[1]) != 0 || len(obs.reads[2]) != 0 {
		t.Fatalf("operations completed without a majority: %+v %+v", obs.writes, obs.reads)
	}
	if !k.Automaton(1).(*Register).Blocked() {
		t.Error("writer must still be blocked")
	}
}

func TestSigmaQuorumsLiveWithMinorityCorrect(t *testing.T) {
	// Same failure pattern, Σ oracle: operations complete.
	fp := model.NewFailurePattern(5)
	fp.Crash(3, 0)
	fp.Crash(4, 0)
	fp.Crash(5, 0)
	det := fd.NewOmegaSigma(fd.NewOmegaStable(fp, 1), fd.NewSigma(fp, 0))
	obs := newOpObserver()
	k := sim.New(fp, det, Factory(SigmaFD), sim.Options{Seed: 6})
	k.SetObserver(obs)
	k.ScheduleInput(1, 10, WriteInput{Value: "y"})
	k.ScheduleInput(2, 600, ReadInput{})
	k.Run(5000)
	if len(obs.writes[1]) != 1 {
		t.Fatalf("Σ write did not complete: %+v", obs.writes)
	}
	if len(obs.reads[2]) != 1 || obs.reads[2][0].Value != "y" {
		t.Fatalf("Σ read = %+v, want y", obs.reads[2])
	}
}

func TestOpsQueueFIFO(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	obs := newOpObserver()
	k := sim.New(fp, det, Factory(Majority), sim.Options{Seed: 8})
	k.SetObserver(obs)
	// Burst of writes submitted at once: must complete in order, one at a time.
	k.ScheduleInput(1, 10, WriteInput{Value: "a"})
	k.ScheduleInput(1, 11, WriteInput{Value: "b"})
	k.ScheduleInput(1, 12, WriteInput{Value: "c"})
	k.Run(5000)
	ws := obs.writes[1]
	if len(ws) != 3 || ws[0].Value != "a" || ws[1].Value != "b" || ws[2].Value != "c" {
		t.Fatalf("writes completed out of order: %+v", ws)
	}
	reg := k.Automaton(1).(*Register)
	if reg.Completed() != 3 {
		t.Errorf("Completed = %d, want 3", reg.Completed())
	}
	if v, _ := reg.Current(); v != "c" {
		t.Errorf("replica value = %q, want c", v)
	}
}

func TestCrashDuringOperationRecoversViaRetransmit(t *testing.T) {
	// A replica crashes mid-protocol; the client's tick retransmissions must
	// still assemble a quorum from the survivors.
	fp := model.NewFailurePattern(5)
	fp.Crash(5, 25) // crashes while the first query round is in flight
	det := fd.NewOmegaStable(fp, 1)
	obs := newOpObserver()
	k := sim.New(fp, det, Factory(Majority), sim.Options{Seed: 11})
	k.SetObserver(obs)
	k.ScheduleInput(1, 10, WriteInput{Value: "z"})
	k.Run(5000)
	if len(obs.writes[1]) != 1 {
		t.Fatalf("write must survive a minority crash: %+v", obs.writes)
	}
}
