// Package quorum implements an ABD-style replicated read/write register
// [Attiya–Bar-Noy–Dolev], the canonical quorum-based substrate of strong
// consistency. It exists for the paper's Σ discussion (§1, §7):
//
//   - with majority quorums, every operation blocks forever once a majority
//     of processes has crashed (the CAP-style impossibility the paper cites
//     as the motivation for eventual consistency);
//   - with Σ quorums (detector values fd.SigmaValue or fd.OmegaSigmaValue),
//     operations stay live in ANY environment — the quorum *information* is
//     what matters, and Σ is exactly the information strong consistency
//     needs on top of Ω.
//
// Experiments E5 contrasts both regimes with the paper's ETOB, which needs
// neither.
package quorum

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/model"
)

// Tag orders writes: lexicographic on (TS, Writer).
type Tag struct {
	TS     int64
	Writer model.ProcID
}

// Less reports whether t orders strictly before u.
func (t Tag) Less(u Tag) bool {
	if t.TS != u.TS {
		return t.TS < u.TS
	}
	return t.Writer < u.Writer
}

// WriteInput asks the process to write Value to the register.
type WriteInput struct {
	Value string
}

// ReadInput asks the process to read the register.
type ReadInput struct{}

// WriteDone is output when a write completes.
type WriteDone struct {
	Value string
}

// ReadDone is output when a read completes.
type ReadDone struct {
	Value string
	Tag   Tag
}

// QueryMsg asks a replica for its current (tag, value).
type QueryMsg struct {
	OpSeq int64
}

// QueryRespMsg carries a replica's current (tag, value).
type QueryRespMsg struct {
	OpSeq int64
	Tag   Tag
	Value string
}

// StoreMsg asks a replica to adopt (tag, value) if newer.
type StoreMsg struct {
	OpSeq int64
	Tag   Tag
	Value string
}

// StoreAckMsg acknowledges a StoreMsg.
type StoreAckMsg struct {
	OpSeq int64
}

type opKind int

const (
	opWrite opKind = iota + 1
	opRead
)

type opPhase int

const (
	phaseQuery opPhase = iota + 1
	phaseStore
)

// pendingOp is the client-side state of one in-flight operation. Quorum
// progress is tracked at insert time — membership sets for the Σ inclusion
// test, counters for the majority test, and a running best reply — so each
// delivery costs O(1) instead of copying and rescanning the collected
// replies (which is O(n) per delivery, O(n²) per phase, at n=256).
type pendingOp struct {
	kind  opKind
	phase opPhase
	seq   int64
	value string // write: value to store; read: value being written back
	tag   Tag

	replySeen  map[model.ProcID]bool
	replyCount int
	best       QueryRespMsg // highest tag among replies so far
	hasBest    bool

	ackSeen  map[model.ProcID]bool
	ackCount int
}

// Register is the per-process automaton: replica + client.
type Register struct {
	self model.ProcID
	n    int
	mode Mode

	// Replica state.
	tag Tag
	val string

	// Client state.
	op    *pendingOp
	queue []any // queued WriteInput/ReadInput while an op is in flight
	opSeq int64

	completed int // number of completed operations (for experiments)
}

// Mode selects the quorum regime.
type Mode int

// Supported quorum regimes.
const (
	// Majority requires >n/2 replies.
	Majority Mode = iota + 1
	// SigmaFD requires replies from a full quorum currently output by Σ.
	SigmaFD
)

var _ model.Automaton = (*Register)(nil)

// NewRegister returns the ABD automaton for process p of n.
func NewRegister(p model.ProcID, n int, mode Mode) *Register {
	return &Register{self: p, n: n, mode: mode}
}

// Factory adapts NewRegister to model.AutomatonFactory.
func Factory(mode Mode) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return NewRegister(p, n, mode) }
}

// Init implements model.Automaton.
func (r *Register) Init(model.Context) {}

// Input implements model.Automaton: WriteInput and ReadInput start operations
// (queued FIFO if one is already in flight).
func (r *Register) Input(ctx model.Context, in any) {
	switch in.(type) {
	case WriteInput, ReadInput:
		r.queue = append(r.queue, in)
		r.startNext(ctx)
	}
}

func (r *Register) startNext(ctx model.Context) {
	if r.op != nil || len(r.queue) == 0 {
		return
	}
	next := r.queue[0]
	r.queue = r.queue[1:]
	r.opSeq++
	op := &pendingOp{
		phase:     phaseQuery,
		seq:       r.opSeq,
		replySeen: make(map[model.ProcID]bool, r.n/2+1),
		ackSeen:   make(map[model.ProcID]bool, r.n/2+1),
	}
	switch in := next.(type) {
	case WriteInput:
		op.kind = opWrite
		op.value = in.Value
	case ReadInput:
		op.kind = opRead
	}
	r.op = op
	ctx.Broadcast(QueryMsg{OpSeq: op.seq})
}

// Recv implements model.Automaton.
func (r *Register) Recv(ctx model.Context, from model.ProcID, payload any) {
	switch m := payload.(type) {
	case QueryMsg:
		ctx.Send(from, QueryRespMsg{OpSeq: m.OpSeq, Tag: r.tag, Value: r.val})
	case StoreMsg:
		if r.tag.Less(m.Tag) {
			r.tag = m.Tag
			r.val = m.Value
		}
		ctx.Send(from, StoreAckMsg{OpSeq: m.OpSeq})
	case QueryRespMsg:
		r.onQueryResp(ctx, from, m)
	case StoreAckMsg:
		r.onStoreAck(ctx, from, m)
	}
}

func (r *Register) onQueryResp(ctx model.Context, from model.ProcID, m QueryRespMsg) {
	op := r.op
	if op == nil || op.phase != phaseQuery || m.OpSeq != op.seq {
		return
	}
	if !op.replySeen[from] {
		op.replySeen[from] = true
		op.replyCount++
	}
	// Track the highest tag incrementally, folding in retransmitted replies
	// too: a replica's tag only grows between responses, so the max over all
	// responses equals the max over each replica's latest — what the old
	// collect-then-scan computed.
	if !op.hasBest || op.best.Tag.Less(m.Tag) {
		op.best = m
		op.hasBest = true
	}
	if !r.quorum(ctx, op.replySeen, op.replyCount) {
		return
	}
	op.phase = phaseStore
	switch op.kind {
	case opWrite:
		op.tag = Tag{TS: op.best.Tag.TS + 1, Writer: r.self}
	case opRead:
		op.tag = op.best.Tag
		op.value = op.best.Value
	}
	ctx.Broadcast(StoreMsg{OpSeq: op.seq, Tag: op.tag, Value: op.value})
}

func (r *Register) onStoreAck(ctx model.Context, from model.ProcID, m StoreAckMsg) {
	op := r.op
	if op == nil || op.phase != phaseStore || m.OpSeq != op.seq {
		return
	}
	if !op.ackSeen[from] {
		op.ackSeen[from] = true
		op.ackCount++
	}
	if !r.quorum(ctx, op.ackSeen, op.ackCount) {
		return
	}
	r.op = nil
	r.completed++
	switch op.kind {
	case opWrite:
		ctx.Output(WriteDone{Value: op.value})
	case opRead:
		ctx.Output(ReadDone{Value: op.value, Tag: op.tag})
	}
	r.startNext(ctx)
}

// Tick implements model.Automaton: retransmit the in-flight phase (messages
// to crashed replicas are lost; quorums must be re-solicited).
func (r *Register) Tick(ctx model.Context) {
	op := r.op
	if op == nil {
		return
	}
	switch op.phase {
	case phaseQuery:
		ctx.Broadcast(QueryMsg{OpSeq: op.seq})
	case phaseStore:
		ctx.Broadcast(StoreMsg{OpSeq: op.seq, Tag: op.tag, Value: op.value})
	}
}

// quorum decides phase completion: the majority test reads the insert-time
// counter (O(1)); the Σ test re-checks the detector's CURRENT quorum against
// the membership set on every delivery — Σ's output is time-varying, and
// liveness in minority environments depends on a later, smaller quorum
// completing a phase with responders gathered earlier.
func (r *Register) quorum(ctx model.Context, responders map[model.ProcID]bool, count int) bool {
	switch r.mode {
	case Majority:
		return count > r.n/2
	case SigmaFD:
		q, ok := fd.QuorumOf(ctx.FD())
		if !ok || len(q) == 0 {
			return false
		}
		for _, p := range q {
			if !responders[p] {
				return false
			}
		}
		return true
	default:
		panic(fmt.Sprintf("quorum: unknown mode %d", r.mode))
	}
}

// Completed returns the number of operations this process has completed.
func (r *Register) Completed() int { return r.completed }

// Blocked reports whether an operation is currently in flight.
func (r *Register) Blocked() bool { return r.op != nil }

// Current returns the replica's current value and tag.
func (r *Register) Current() (string, Tag) { return r.val, r.tag }
