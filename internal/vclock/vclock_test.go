package vclock

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestCompareBasics(t *testing.T) {
	a := New().Tick(1)
	b := a.Clone().Tick(2)
	if got := a.Compare(b); got != Before {
		t.Errorf("a vs b = %v, want before", got)
	}
	if got := b.Compare(a); got != After {
		t.Errorf("b vs a = %v, want after", got)
	}
	if got := a.Compare(a.Clone()); got != Equal {
		t.Errorf("a vs a = %v, want equal", got)
	}
	c := New().Tick(3)
	if got := a.Compare(c); got != Concurrent {
		t.Errorf("a vs c = %v, want concurrent", got)
	}
	if !a.HappensBefore(b) || b.HappensBefore(a) {
		t.Error("HappensBefore inconsistent with Compare")
	}
}

func TestCompareMissingEntries(t *testing.T) {
	// {} < {p1:1}, and zero entries behave like absent ones.
	empty := New()
	one := New().Tick(1)
	if got := empty.Compare(one); got != Before {
		t.Errorf("empty vs one = %v, want before", got)
	}
	withZero := VC{model.ProcID(1): 0}
	if got := withZero.Compare(New()); got != Equal {
		t.Errorf("explicit zero vs empty = %v, want equal", got)
	}
}

func TestMerge(t *testing.T) {
	a := VC{1: 3, 2: 1}
	b := VC{2: 5, 3: 2}
	a.Merge(b)
	want := VC{1: 3, 2: 5, 3: 2}
	if a.Compare(want) != Equal {
		t.Errorf("merge = %v, want %v", a, want)
	}
}

func TestTickAndGet(t *testing.T) {
	v := New()
	v.Tick(2).Tick(2)
	if v.Get(2) != 2 {
		t.Errorf("Get = %d, want 2", v.Get(2))
	}
	if v.Get(1) != 0 {
		t.Errorf("Get of absent = %d, want 0", v.Get(1))
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New().Tick(1)
	b := a.Clone()
	b.Tick(1)
	if a.Get(1) != 1 || b.Get(1) != 2 {
		t.Error("Clone must be independent")
	}
}

func TestString(t *testing.T) {
	v := VC{2: 1, 1: 3}
	if got := v.String(); got != "{p1:3, p2:1}" {
		t.Errorf("String = %q", got)
	}
}

func TestOrderingString(t *testing.T) {
	cases := map[Ordering]string{Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent", Ordering(99): "Ordering(99)"}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

func fromRaw(raw []uint8) VC {
	v := New()
	for i, c := range raw {
		if i >= 4 {
			break
		}
		v[model.ProcID(i+1)] = int64(c % 4)
	}
	return v
}

func TestCompareAntisymmetryQuick(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a, b := fromRaw(ra), fromRaw(rb)
		ab, ba := a.Compare(b), b.Compare(a)
		switch ab {
		case Equal:
			return ba == Equal
		case Before:
			return ba == After
		case After:
			return ba == Before
		default:
			return ba == Concurrent
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeUpperBoundQuick(t *testing.T) {
	// a ≤ merge(a,b) and b ≤ merge(a,b).
	f := func(ra, rb []uint8) bool {
		a, b := fromRaw(ra), fromRaw(rb)
		m := a.Clone().Merge(b)
		ca, cb := a.Compare(m), b.Compare(m)
		return (ca == Before || ca == Equal) && (cb == Before || cb == Equal)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTickStrictlyIncreasesQuick(t *testing.T) {
	f := func(raw []uint8, pRaw uint8) bool {
		v := fromRaw(raw)
		p := model.ProcID(pRaw%4 + 1)
		w := v.Clone().Tick(p)
		return v.Compare(w) == Before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
