// Package vclock implements vector clocks over process IDs. The protocols of
// the paper do not need vector clocks (Algorithm 5 tracks causality through
// explicit dependency graphs), but the test suite and the examples use them
// as an independent witness of the causal order →_R of §3: if VC(m1) < VC(m2)
// then m1 →_R m2 must be respected by every delivered sequence.
package vclock

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// VC is a vector clock: a map from process ID to its logical-event count.
// The zero value is usable (an empty clock).
type VC map[model.ProcID]int64

// Ordering is the result of comparing two vector clocks.
type Ordering int

// Possible Compare outcomes.
const (
	Equal Ordering = iota + 1
	Before
	After
	Concurrent
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// New returns an empty vector clock.
func New() VC { return make(VC) }

// Clone returns a copy of the clock.
func (v VC) Clone() VC {
	cp := make(VC, len(v))
	for p, c := range v {
		cp[p] = c
	}
	return cp
}

// Tick increments p's component and returns the clock (for chaining).
func (v VC) Tick(p model.ProcID) VC {
	v[p]++
	return v
}

// Get returns p's component (0 if absent).
func (v VC) Get(p model.ProcID) int64 { return v[p] }

// Merge sets v to the component-wise maximum of v and other.
func (v VC) Merge(other VC) VC {
	for p, c := range other {
		if c > v[p] {
			v[p] = c
		}
	}
	return v
}

// Compare returns the causal relation between v and other.
func (v VC) Compare(other VC) Ordering {
	vLess, oLess := false, false
	for p, c := range v {
		if oc := other[p]; c < oc {
			vLess = true
		} else if c > oc {
			oLess = true
		}
	}
	for p, oc := range other {
		if _, ok := v[p]; ok {
			continue // already compared
		}
		if oc > 0 {
			vLess = true
		}
	}
	switch {
	case !vLess && !oLess:
		return Equal
	case vLess && !oLess:
		return Before
	case !vLess && oLess:
		return After
	default:
		return Concurrent
	}
}

// HappensBefore reports v < other (strictly).
func (v VC) HappensBefore(other VC) bool { return v.Compare(other) == Before }

// String renders the clock as "{p1:3, p2:1}" with sorted keys.
func (v VC) String() string {
	ps := make([]model.ProcID, 0, len(v))
	for p := range v {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	parts := make([]string, 0, len(ps))
	for _, p := range ps {
		parts = append(parts, fmt.Sprintf("%v:%d", p, v[p]))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
