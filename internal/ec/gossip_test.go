package ec

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/gossip"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runGossipEC executes Algorithm 4 with gossip dissemination: promotes travel
// as origin-stamped rumors to a seeded O(log n) sample instead of n−1 sends.
// The driver stops after 12 instances: the closed loop re-proposes on every
// decide, and an unbounded instance stream makes the known-value table — and
// with it each anti-entropy exchange — grow without limit.
func runGossipEC(t *testing.T, n int, g gossip.Options, horizon model.Time, seed int64) *trace.Recorder {
	t.Helper()
	fp := model.NewFailurePattern(n)
	det := fd.NewOmegaStable(fp, 1)
	rec := trace.NewRecorder(n)
	driver := func(p model.ProcID, inst int) (string, bool) {
		return fmt.Sprintf("v/%v/%d", p, inst), inst <= 12
	}
	k := sim.New(fp, det, GossipDrivenFactory(driver, g), sim.Options{Seed: seed})
	k.SetObserver(rec)
	k.Run(horizon)
	return rec
}

// TestGossipECSatisfiesSpec: the EC proofs only use eventual delivery of
// promote(v, ℓ), which rumor + anti-entropy dissemination provides — the full
// EC spec (termination, integrity, validity, eventual agreement) must hold at
// n=16 with O(log n) fan-out.
func TestGossipECSatisfiesSpec(t *testing.T) {
	const n = 16
	rec := runGossipEC(t, n, gossip.Options{Enable: true, Seed: 11}, 30000, 11)
	rep := trace.CheckEC(rec, model.Procs(n), 6)
	if !rep.OK() {
		t.Fatalf("EC spec violated under gossip: %+v", rep)
	}
	// The stable leader p1's value must win every agreed instance.
	for _, p := range model.Procs(n) {
		for _, d := range rec.Decisions(p) {
			if d.Instance >= rep.AgreementK {
				want := fmt.Sprintf("v/p1/%d", d.Instance)
				if d.Value != want {
					t.Errorf("%v decided %q in instance %d, want leader value %q", p, d.Value, d.Instance, want)
				}
			}
		}
	}
	t.Logf("AgreementK = %d, MaxInstance = %d", rep.AgreementK, rep.MaxInstance)
}

// TestGossipECOriginStamping: relayed promotes must land in received_i[j, ℓ]
// under the ORIGINATOR j, never the forwarder — decisions adopt the leader's
// value even at processes the leader never sampled directly.
func TestGossipECOriginStamping(t *testing.T) {
	const n = 32
	rec := runGossipEC(t, n, gossip.Options{Enable: true, Seed: 3}, 30000, 3)
	rep := trace.CheckEC(rec, model.Procs(n), 4)
	if !rep.OK() {
		t.Fatalf("EC spec violated: %+v", rep)
	}
	// Fanout at n=32 is 6: the leader samples at most 6 peers per rumor, so
	// most of the 31 others can only learn promote values via relays or
	// anti-entropy. Every process deciding the leader's value from
	// AgreementK on proves origin keying survived multi-hop carriage.
	decidedAgreed := 0
	for _, p := range model.Procs(n) {
		for _, d := range rec.Decisions(p) {
			if d.Instance >= rep.AgreementK {
				decidedAgreed++
			}
		}
	}
	if decidedAgreed < n {
		t.Errorf("only %d agreed-phase decisions recorded across %d processes", decidedAgreed, n)
	}
}

// TestGossipECOffByteIdentical: the gossip factory with the zero options must
// be byte-identical to the plain driven automaton.
func TestGossipECOffByteIdentical(t *testing.T) {
	driver := func(p model.ProcID, inst int) (string, bool) {
		return fmt.Sprintf("v/%v/%d", p, inst), inst <= 6
	}
	run := func(factory model.AutomatonFactory) []string {
		fp := model.NewFailurePattern(4)
		det := fd.NewOmegaStable(fp, 1)
		obs := &ecTraceLog{}
		k := sim.New(fp, det, factory, sim.Options{Seed: 9})
		k.SetObserver(obs)
		k.Run(6000)
		return obs.events
	}
	plain := run(DrivenFactory(driver))
	off := run(GossipDrivenFactory(driver, gossip.Options{}))
	if len(plain) != len(off) {
		t.Fatalf("trace lengths differ: %d vs %d", len(plain), len(off))
	}
	for i := range plain {
		if plain[i] != off[i] {
			t.Fatalf("traces diverge at event %d:\n  plain: %s\n  off:   %s", i, plain[i], off[i])
		}
	}
}

// ecTraceLog flattens kernel events for byte-identity comparison.
type ecTraceLog struct{ events []string }

func (o *ecTraceLog) OnSend(t model.Time, m sim.Message) {
	o.events = append(o.events, fmt.Sprintf("S %d %d %v>%v %T %+v", t, m.ID, m.From, m.To, m.Payload, m.Payload))
}
func (o *ecTraceLog) OnDeliver(t model.Time, m sim.Message) {
	o.events = append(o.events, fmt.Sprintf("D %d %d %v>%v", t, m.ID, m.From, m.To))
}
func (o *ecTraceLog) OnOutput(p model.ProcID, t model.Time, v any) {
	o.events = append(o.events, fmt.Sprintf("O %d %v %+v", t, p, v))
}
func (o *ecTraceLog) OnInput(p model.ProcID, t model.Time, v any) {
	o.events = append(o.events, fmt.Sprintf("I %d %v %+v", t, p, v))
}
