package ec

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runEC executes Algorithm 4 with a per-process driver proposing distinct
// values "v/<proc>/<instance>" and returns the recorded trace.
func runEC(t *testing.T, fp *model.FailurePattern, det fd.Detector, horizon model.Time, seed int64) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder(fp.N())
	driver := func(p model.ProcID, inst int) (string, bool) {
		return fmt.Sprintf("v/%v/%d", p, inst), true
	}
	k := sim.New(fp, det, DrivenFactory(driver), sim.Options{Seed: seed})
	k.SetObserver(rec)
	k.Run(horizon)
	return rec
}

func TestECStableLeaderAgreesFromStart(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	rec := runEC(t, fp, det, 4000, 1)
	rep := trace.CheckEC(rec, fp.Correct(), 10)
	if !rep.OK() {
		t.Fatalf("EC spec violated: %+v", rep)
	}
	if rep.AgreementK != 1 {
		t.Errorf("stable Ω from t=0: AgreementK = %d, want 1", rep.AgreementK)
	}
	// All decisions must carry the leader's values.
	for _, p := range fp.Correct() {
		for _, d := range rec.Decisions(p) {
			want := fmt.Sprintf("v/p1/%d", d.Instance)
			if d.Value != want {
				t.Errorf("%v decided %q in instance %d, want %q", p, d.Value, d.Instance, want)
			}
		}
	}
}

func TestECEventualLeaderEventuallyAgrees(t *testing.T) {
	fp := model.NewFailurePattern(4)
	det := fd.NewOmegaEventual(fp, 2, 800) // everyone trusts itself until t=800
	rec := runEC(t, fp, det, 20000, 42)
	rep := trace.CheckEC(rec, fp.Correct(), 8)
	if !rep.OK() {
		t.Fatalf("EC spec violated: %+v", rep)
	}
	if rep.AgreementK <= 1 {
		t.Errorf("self-trust until t=800 should cause early disagreement; AgreementK = %d", rep.AgreementK)
	}
	t.Logf("AgreementK = %d, MaxInstance = %d", rep.AgreementK, rep.MaxInstance)
}

func TestECAnyEnvironmentMinorityCorrect(t *testing.T) {
	// Lemma 2: EC works in ANY environment — here 1 correct of 5.
	fp := model.NewFailurePattern(5)
	for i := 2; i <= 5; i++ {
		fp.Crash(model.ProcID(i), model.Time(40*i))
	}
	det := fd.NewOmegaEventual(fp, 1, 500)
	rec := runEC(t, fp, det, 20000, 7)
	rep := trace.CheckEC(rec, fp.Correct(), 8)
	if !rep.OK() {
		t.Fatalf("EC must terminate with a single correct process: %+v", rep)
	}
}

func TestECRotatingLeaderChurn(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaRotating(fp, 2, 600, 30)
	rec := runEC(t, fp, det, 15000, 99)
	rep := trace.CheckEC(rec, fp.Correct(), 6)
	if !rep.OK() {
		t.Fatalf("EC under churn: %+v", rep)
	}
}

func TestECIntegritySingleDecisionPerInstance(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaEventual(fp, 1, 300)
	rec := runEC(t, fp, det, 10000, 5)
	for _, p := range model.Procs(3) {
		seen := map[int]int{}
		for _, d := range rec.Decisions(p) {
			seen[d.Instance]++
			if seen[d.Instance] > 1 {
				t.Fatalf("%v decided instance %d twice", p, d.Instance)
			}
		}
	}
}

func TestECManualPropose(t *testing.T) {
	// Drive proposeEC_1 through kernel inputs (no driver).
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 2)
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, Factory(), sim.Options{Seed: 3})
	k.SetObserver(rec)
	for _, p := range model.Procs(3) {
		k.ScheduleInput(p, 10, model.ProposeInput{Instance: 1, Value: fmt.Sprintf("x%v", p)})
	}
	k.Run(3000)
	rep := trace.CheckEC(rec, fp.Correct(), 1)
	if !rep.OK() {
		t.Fatalf("manual single instance: %+v", rep)
	}
	for _, p := range fp.Correct() {
		ds := rec.Decisions(p)
		if len(ds) != 1 || ds[0].Value != "xp2" {
			t.Fatalf("%v decisions = %+v, want one decision xp2", p, ds)
		}
	}
}

func TestECDecidedUpTo(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	driver := func(p model.ProcID, inst int) (string, bool) { return "v", inst <= 5 }
	k := sim.New(fp, det, DrivenFactory(driver), sim.Options{Seed: 1})
	k.Run(5000)
	a := k.Automaton(1).(*Automaton)
	if a.DecidedUpTo() != 5 {
		t.Errorf("DecidedUpTo = %d, want 5", a.DecidedUpTo())
	}
	if a.Count() != 5 {
		t.Errorf("Count = %d, want 5 (driver stopped)", a.Count())
	}
}

func TestECProposeRejectsBadInstance(t *testing.T) {
	a := New(1, 2)
	defer func() {
		if recover() == nil {
			t.Error("instance 0 must panic")
		}
	}()
	a.propose(nil, 0, "v")
}

func TestECIgnoresForeignPayloadsAndInputs(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	k := sim.New(fp, det, Factory(), sim.Options{Seed: 1})
	k.ScheduleInput(1, 5, "not-a-propose")
	k.Run(100) // must not panic
	a := k.Automaton(1).(*Automaton)
	a.Recv(nil, 2, 42) // foreign payload ignored
	if a.Count() != 0 {
		t.Error("foreign input must not start an instance")
	}
}
