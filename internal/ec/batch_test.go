package ec

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ecEventLog records every kernel event as a formatted line for trace-identity
// comparisons.
type ecEventLog struct {
	sim.NopObserver
	lines []string
	sends int
}

func (l *ecEventLog) OnSend(t model.Time, m sim.Message) {
	l.sends++
	l.lines = append(l.lines, fmt.Sprintf("send %d %v->%v @%d %v", m.ID, m.From, m.To, t, m.Payload))
}

func (l *ecEventLog) OnDeliver(t model.Time, m sim.Message) {
	l.lines = append(l.lines, fmt.Sprintf("dlv %d %v->%v @%d %v", m.ID, m.From, m.To, t, m.Payload))
}

func (l *ecEventLog) OnOutput(p model.ProcID, t model.Time, v any) {
	l.lines = append(l.lines, fmt.Sprintf("out %v @%d %v", p, t, v))
}

func runECLogged(factory model.AutomatonFactory, seed int64) *ecEventLog {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	log := &ecEventLog{}
	k := sim.New(fp, det, factory, sim.Options{Seed: seed})
	k.SetObserver(log)
	k.Run(4000)
	return log
}

func TestECBatchK1TraceIdentity(t *testing.T) {
	driver := func(p model.ProcID, inst int) (string, bool) {
		return fmt.Sprintf("v/%v/%d", p, inst), inst <= 6
	}
	base := runECLogged(DrivenFactory(driver), 17)
	batched := runECLogged(func(p model.ProcID, n int) model.Automaton {
		return NewDrivenBatched(p, n, driver, BatchOptions{MaxBatch: 1, MaxLinger: 3})
	}, 17)
	if len(base.lines) != len(batched.lines) {
		t.Fatalf("%d events batched vs %d unbatched", len(batched.lines), len(base.lines))
	}
	for i := range base.lines {
		if base.lines[i] != batched.lines[i] {
			t.Fatalf("event %d diverges:\n  batched:   %s\n  unbatched: %s", i, batched.lines[i], base.lines[i])
		}
	}
}

// scheduleBurstProposals submits instances 1..insts from every process in one
// tick each — an OPEN-loop workload (the driver is closed-loop, one instance
// in flight at a time, so its batches never fill).
func scheduleBurstProposals(k *sim.Kernel, n, insts int) {
	for _, p := range model.Procs(n) {
		for inst := 1; inst <= insts; inst++ {
			k.ScheduleInput(p, model.Time(10+p), model.ProposeInput{Instance: inst, Value: fmt.Sprintf("v/%v/%d", p, inst)})
		}
	}
}

func TestECBatchedClosedLoopStillSatisfiesSpec(t *testing.T) {
	// Promote batching must not change what EC guarantees under the spec's
	// closed loop (proposeEC_{ℓ+1} on deciding ℓ): the trace checker passes
	// end to end. Batches stay shallow here by construction — at most one
	// promote is in flight per process — which is exactly the degenerate
	// case the linger deadline exists for.
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	driver := func(p model.ProcID, inst int) (string, bool) {
		return fmt.Sprintf("v/%v/%d", p, inst), inst <= 8
	}
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, func(p model.ProcID, n int) model.Automaton {
		return NewDrivenBatched(p, n, driver, BatchOptions{MaxBatch: 4, MaxLinger: 2})
	}, sim.Options{Seed: 17})
	k.SetObserver(rec)
	k.Run(20000)

	rep := trace.CheckEC(rec, fp.Correct(), 8)
	if !rep.OK() {
		t.Fatalf("batched EC violates the spec: %+v", rep)
	}
	for _, p := range fp.Correct() {
		if a := k.Automaton(p).(*Automaton); a.Flushes() == 0 {
			t.Errorf("%v never flushed a batch", p)
		}
	}
}

func TestECBatchCoalescesBurst(t *testing.T) {
	// An open-loop burst (instances 1..10 proposed in one tick) fills the
	// batches: the same promotes must reach everyone in fewer messages, and
	// the live instance (count_i = 10) must still decide on the leader's
	// value everywhere. (Instances 1..9 are superseded the moment the burst
	// overwrites count_i — unbatched Algorithm 4 behaves identically.)
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	log := &ecEventLog{}
	k := sim.New(fp, det, BatchedFactory(BatchOptions{MaxBatch: 4, MaxLinger: 2}), sim.Options{Seed: 17})
	k.SetObserver(log)
	scheduleBurstProposals(k, 3, 10)
	k.Run(12000)

	for _, p := range fp.Correct() {
		a := k.Automaton(p).(*Automaton)
		if a.Flushes() == 0 {
			t.Errorf("%v never flushed a batch", p)
		}
		if !a.decided[10] {
			t.Errorf("%v never decided the live instance 10", p)
		}
		// Every promote of every process must have arrived, batch or not.
		for _, q := range fp.Correct() {
			for inst := 1; inst <= 10; inst++ {
				want := fmt.Sprintf("v/%v/%d", q, inst)
				if got := a.received[q][inst]; got != want {
					t.Errorf("%v received[%v][%d] = %q, want %q", p, q, inst, got, want)
				}
			}
		}
	}

	base := &ecEventLog{}
	kb := sim.New(model.NewFailurePattern(3), fd.NewOmegaStable(fp, 1), Factory(), sim.Options{Seed: 17})
	kb.SetObserver(base)
	scheduleBurstProposals(kb, 3, 10)
	kb.Run(12000)
	if log.sends >= base.sends {
		t.Errorf("batched EC sent %d messages, unbatched %d", log.sends, base.sends)
	}
	t.Logf("sends: %d batched vs %d unbatched", log.sends, base.sends)
}

type ecTee struct{ a, b sim.Observer }

func (t ecTee) OnSend(tm model.Time, m sim.Message)           { t.a.OnSend(tm, m); t.b.OnSend(tm, m) }
func (t ecTee) OnDeliver(tm model.Time, m sim.Message)        { t.a.OnDeliver(tm, m); t.b.OnDeliver(tm, m) }
func (t ecTee) OnOutput(p model.ProcID, tm model.Time, v any) { t.a.OnOutput(p, tm, v); t.b.OnOutput(p, tm, v) }
func (t ecTee) OnInput(p model.ProcID, tm model.Time, v any)  { t.a.OnInput(p, tm, v); t.b.OnInput(p, tm, v) }

func TestECBatchUnpackEquivalence(t *testing.T) {
	// Receiving PromoteBatchMsg{m1..mk} must leave the automaton in exactly
	// the state of receiving m1..mk individually.
	msgs := []PromoteMsg{
		{Instance: 1, Value: "a"},
		{Instance: 2, Value: "b"},
		{Instance: 3, Value: "c"},
	}
	one, many := New(2, 3), New(2, 3)
	for _, m := range msgs {
		one.Recv(nil, 1, m)
	}
	many.Recv(nil, 1, PromoteBatchMsg{Msgs: msgs})
	for _, m := range msgs {
		a, okA := one.received[1][m.Instance]
		b, okB := many.received[1][m.Instance]
		if okA != okB || a != b {
			t.Errorf("instance %d: individually %q,%v vs batched %q,%v", m.Instance, a, okA, b, okB)
		}
	}
}

func TestECSingleItemFlushLooksUnbatched(t *testing.T) {
	// A linger flush of one queued promote must put a raw PromoteMsg on the
	// wire, not a one-element carrier.
	a := NewBatched(1, 2, BatchOptions{MaxBatch: 8, MaxLinger: 1})
	ctx := &captureCtx{}
	a.propose(ctx, 1, "v")
	if len(ctx.broadcasts) != 0 {
		t.Fatalf("promote left before the flush: %v", ctx.broadcasts)
	}
	a.Tick(ctx)
	found := false
	for _, b := range ctx.broadcasts {
		switch b.(type) {
		case PromoteMsg:
			found = true
		case PromoteBatchMsg:
			t.Fatalf("single-item flush used the batch carrier: %v", b)
		}
	}
	if !found {
		t.Fatal("queued promote never flushed")
	}
	if a.Flushes() != 1 {
		t.Errorf("Flushes = %d, want 1", a.Flushes())
	}
}

// captureCtx is a minimal model.Context recording broadcasts.
type captureCtx struct {
	broadcasts []any
	outputs    []any
}

func (c *captureCtx) Self() model.ProcID     { return 1 }
func (c *captureCtx) N() int                 { return 2 }
func (c *captureCtx) Now() model.Time        { return 0 }
func (c *captureCtx) FD() any                { return model.ProcID(1) }
func (c *captureCtx) Send(model.ProcID, any) {}
func (c *captureCtx) Broadcast(v any)        { c.broadcasts = append(c.broadcasts, v) }
func (c *captureCtx) Output(v any)           { c.outputs = append(c.outputs, v) }
