package ec

import "repro/internal/model"

// Batching for Algorithm 4: unlike ETOB — whose update messages carry the
// whole causality graph, so coalescing is free — EC's promote(v, ℓ) messages
// are per-instance, so batching needs a carrier: PromoteBatchMsg packs the
// promotes of several instances into one broadcast. Receivers unpack and
// handle each item exactly as a standalone promote, so the protocol state
// machine is unchanged; only the message count shrinks. The flush policy
// mirrors internal/etob's contract: flush when MaxBatch promotes are queued
// or when the oldest has waited MaxLinger ticks, whichever comes first, with
// the linger check running at the start of Tick (before the decide step).
// With MaxBatch <= 1 the queue is never touched and every trace is
// byte-identical to the unbatched automaton.

// PromoteBatchMsg carries the promote(v, ℓ) messages of several instances in
// one broadcast.
type PromoteBatchMsg struct {
	Msgs []PromoteMsg
}

// BatchOptions configures the EC batching layer.
type BatchOptions struct {
	// MaxBatch is the flush threshold; <= 1 disables batching.
	MaxBatch int
	// MaxLinger is the maximum ticks a queued promote waits (default 1).
	MaxLinger int
}

// Enabled reports whether these options actually batch.
func (o BatchOptions) Enabled() bool { return o.MaxBatch > 1 }

func (o BatchOptions) withDefaults() BatchOptions {
	if o.MaxLinger <= 0 {
		o.MaxLinger = 1
	}
	return o
}

// NewBatched returns the Algorithm 4 automaton with promote batching.
func NewBatched(p model.ProcID, n int, o BatchOptions) *Automaton {
	a := New(p, n)
	a.SetBatch(o)
	return a
}

// BatchedFactory adapts NewBatched to model.AutomatonFactory.
func BatchedFactory(o BatchOptions) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return NewBatched(p, n, o) }
}

// NewDrivenBatched returns a driver-closed-loop automaton with batching.
func NewDrivenBatched(p model.ProcID, n int, d Driver, o BatchOptions) *Automaton {
	a := NewDriven(p, n, d)
	a.SetBatch(o)
	return a
}

// SetBatch installs the batch options. Must be called before the automaton
// takes its first step.
func (a *Automaton) SetBatch(o BatchOptions) { a.batch = o.withDefaults() }

// Flushes returns how many batched broadcasts the layer emitted (single-item
// flushes included).
func (a *Automaton) Flushes() int64 { return a.flushes }

// FullFlushes returns how many flushes were triggered by the queue reaching
// MaxBatch; LingerFlushes how many were forced out partial by the linger
// timeout. Their sum is Flushes.
func (a *Automaton) FullFlushes() int64 { return a.fullFlushes }

// LingerFlushes returns the linger-forced half of the Full/Linger split.
func (a *Automaton) LingerFlushes() int64 { return a.lingerFlushes }

// enqueuePromote queues one promote for the next coalesced broadcast.
func (a *Automaton) enqueuePromote(ctx model.Context, m PromoteMsg) {
	a.pending = append(a.pending, m)
	if len(a.pending) >= a.batch.MaxBatch {
		a.fullFlushes++
		a.flushPromotes(ctx)
	}
}

// flushPromotes broadcasts everything queued: one raw promote when the batch
// holds a single item (the wire then looks exactly like the unbatched
// protocol), one PromoteBatchMsg otherwise.
func (a *Automaton) flushPromotes(ctx model.Context) {
	if len(a.pending) == 0 {
		return
	}
	a.flushes++
	if len(a.pending) == 1 {
		ctx.Broadcast(a.pending[0])
	} else {
		ctx.Broadcast(PromoteBatchMsg{Msgs: append([]PromoteMsg(nil), a.pending...)})
	}
	a.pending = a.pending[:0]
	a.linger = 0
}

// tickBatch runs the linger half of the flush policy; called at the start of
// every Tick, before the decide step.
func (a *Automaton) tickBatch(ctx model.Context) {
	if len(a.pending) == 0 {
		return
	}
	a.linger++
	if a.linger >= a.batch.MaxLinger {
		a.lingerFlushes++
		a.flushPromotes(ctx)
	}
}
