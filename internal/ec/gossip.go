package ec

import (
	"sort"

	"repro/internal/gossip"
	"repro/internal/model"
)

// This file is the gossip dissemination mode of Algorithm 4: replacing the
// "send promote(v, ℓ) to all" of proposeEC with epidemic forwarding to a
// seeded O(log n) peer sample. Algorithm 4's reception rule writes
// received_i[j, ℓ] — the state is keyed by the ORIGINATOR, not the carrier —
// so a relayed promote must travel origin-stamped (GossipPromote.Origin) and
// the receiver records it under that origin, never under the forwarder.
// Values are write-once per (origin, instance) (recvPromote keeps the first),
// which makes absorption order-insensitive and relaying safe.
//
// Eventual delivery — the only delivery property the EC proofs use — is
// guaranteed by the anti-entropy pass: every AntiEntropyEvery ticks each
// process sends everything it knows (its full received_i table, which
// includes its own proposals) to the next round-robin peer, in deterministic
// (origin, instance) order. Known-value tables are monotone, so coverage of
// every promote widens each rotation and reaches all correct processes in
// O(n) rotations even if its rumor retired early.
//
// With gossip disabled (the zero gossip.Options) none of this code runs and
// traces are byte-identical to the pre-gossip automaton. When both batching
// and gossip are enabled, gossip takes precedence on the propose path: the
// rumor IS a batch carrier (Entries coalesce on forward), so the promote
// batching queue stays idle.

// GossipPromote is one promote(v, ℓ) as it travels inside a rumor,
// origin-stamped so relays preserve Algorithm 4's received_i[j, ℓ] keying.
type GossipPromote struct {
	Origin   model.ProcID
	Instance int
	Value    string
}

// GossipPromoteMsg is a rumor: origin-stamped promotes plus the hop age used
// for rumor retirement.
type GossipPromoteMsg struct {
	Entries []GossipPromote
	Age     int
}

// GossipStats counts the gossip layer's traffic at one automaton.
type GossipStats struct {
	Rumors      int64 // rumor emissions (each costs Fanout envelopes)
	AntiEntropy int64 // full-table repair messages sent
	Absorbed    int64 // novel promotes learned from rumors
	Stale       int64 // rumor entries already known (not re-forwarded)
}

// SetGossip installs the gossip dissemination mode. Must be called before
// the automaton takes its first step; the zero Options disables gossip.
func (a *Automaton) SetGossip(o gossip.Options) {
	if !o.Enabled() {
		a.gossip = gossip.Options{}
		a.sampler = nil
		return
	}
	o = o.WithDefaults(a.n)
	a.gossip = o
	a.sampler = gossip.NewSampler(a.self, a.n, o)
}

// GossipStats returns the gossip layer's counters.
func (a *Automaton) GossipStats() GossipStats { return a.gstats }

// GossipFactory adapts New + SetGossip to model.AutomatonFactory.
func GossipFactory(g gossip.Options) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton {
		a := New(p, n)
		a.SetGossip(g)
		return a
	}
}

// GossipDrivenFactory is GossipFactory with a closed-loop Driver.
func GossipDrivenFactory(d Driver, g gossip.Options) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton {
		a := NewDriven(p, n, d)
		a.SetGossip(g)
		return a
	}
}

// emitGossipPropose disseminates our own promote(v, ℓ) as an age-0 rumor.
// Gossip sends no self-copy, so the value is recorded locally first (in
// broadcast mode the sender's own delivery did that).
func (a *Automaton) emitGossipPropose(ctx model.Context, instance int, value string) {
	a.recvPromote(a.self, PromoteMsg{Value: value, Instance: instance})
	msg := GossipPromoteMsg{Entries: []GossipPromote{{Origin: a.self, Instance: instance, Value: value}}}
	for _, q := range a.sampler.Sample() {
		ctx.Send(q, msg)
	}
	a.gstats.Rumors++
}

// recvGossipPromote absorbs a rumor and queues the entries that were novel
// here for one tick-coalesced re-forward at Age+1 while the rumor is young.
func (a *Automaton) recvGossipPromote(m GossipPromoteMsg) {
	forward := m.Age+1 <= a.gossip.MaxAge
	for _, e := range m.Entries {
		if _, known := a.received[e.Origin][e.Instance]; known {
			a.gstats.Stale++
			continue
		}
		a.recvPromote(e.Origin, PromoteMsg{Value: e.Value, Instance: e.Instance})
		a.gstats.Absorbed++
		if forward {
			a.fresh = append(a.fresh, e)
			if m.Age > a.freshAge {
				a.freshAge = m.Age
			}
		}
	}
}

// tickGossip runs once per local timeout before the decide step: it
// re-forwards the tick's accumulated novel promotes as one aged rumor, and
// every AntiEntropyEvery ticks sends the full known-value table to the next
// round-robin peer (the deterministic repair channel).
func (a *Automaton) tickGossip(ctx model.Context) {
	if len(a.fresh) > 0 {
		msg := GossipPromoteMsg{Entries: a.fresh, Age: a.freshAge + 1}
		for _, q := range a.sampler.Sample() {
			ctx.Send(q, msg)
		}
		a.gstats.Rumors++
		a.fresh = nil
		a.freshAge = 0
	}
	a.aeTick++
	if a.aeTick >= a.gossip.AntiEntropyEvery {
		a.aeTick = 0
		if q, ok := a.sampler.NextPeer(); ok {
			if entries := a.knownEntries(); len(entries) > 0 {
				// Repair messages age past MaxAge so receivers never re-rumor
				// them: anti-entropy traffic stays O(1) messages per process
				// per period.
				ctx.Send(q, GossipPromoteMsg{Entries: entries, Age: a.gossip.MaxAge})
				a.gstats.AntiEntropy++
			}
		}
	}
}

// knownEntries flattens received_i into origin-stamped entries in
// deterministic (origin, instance) order — map iteration must not leak into
// message contents, or traces would stop being seed-stable.
func (a *Automaton) knownEntries() []GossipPromote {
	var out []GossipPromote
	for _, origin := range model.Procs(a.n) {
		byInst := a.received[origin]
		if len(byInst) == 0 {
			continue
		}
		insts := make([]int, 0, len(byInst))
		for i := range byInst {
			insts = append(insts, i)
		}
		sort.Ints(insts)
		for _, i := range insts {
			out = append(out, GossipPromote{Origin: origin, Instance: i, Value: byInst[i]})
		}
	}
	return out
}
