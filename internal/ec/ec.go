// Package ec implements eventual consensus (EC) from Ω — Algorithm 4 of the
// paper — in any environment (Lemma 2). The abstraction exports operations
// proposeEC_1, proposeEC_2, ... and guarantees, in every admissible run,
// EC-Termination, EC-Integrity and EC-Validity always, and EC-Agreement from
// some instance k onward (all responses to proposeEC_ℓ coincide for ℓ ≥ k).
//
// The algorithm (per process p_i):
//
//	On invocation of proposeEC_ℓ(v):
//	    count_i := ℓ
//	    send promote(v, ℓ) to all
//	On reception of promote(v, ℓ) from p_j:
//	    received_i[j, ℓ] := v
//	On local timeout:
//	    if received_i[Ω_i, count_i] ≠ ⊥ then
//	        DecideEC(count_i, received_i[Ω_i, count_i])
//
// The implementation is multivalued (values are strings); the paper notes the
// binary→multivalued transformation is standard [Mostefaoui–Raynal–Tronel].
package ec

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/gossip"
	"repro/internal/model"
)

// PromoteMsg is the promote(v, ℓ) message of Algorithm 4.
type PromoteMsg struct {
	Value    string
	Instance int
}

// Driver supplies the value a process proposes to the next instance, closing
// the loop the EC specification assumes ("every process invokes proposeEC_j
// as soon as it returns a response to proposeEC_{j−1}"). Returning ok=false
// stops the process after the current instance.
type Driver func(p model.ProcID, instance int) (value string, ok bool)

// Automaton is the per-process automaton of Algorithm 4.
type Automaton struct {
	self model.ProcID
	n    int

	count    int                             // count_i: last instance invoked
	received map[model.ProcID]map[int]string // received_i[j, ℓ]
	decided  map[int]bool                    // instances already responded to
	driver   Driver                          // optional auto-proposer
	values   map[int]string                  // values this process proposed

	// Promote batching (batch.go): inert unless batch.Enabled().
	batch         BatchOptions
	pending       []PromoteMsg
	linger        int
	flushes       int64
	fullFlushes   int64 // flushes triggered by queue depth
	lingerFlushes int64 // flushes forced by the linger timeout

	// Gossip dissemination (gossip.go): inert unless gossip.Enabled().
	gossip   gossip.Options
	sampler  *gossip.Sampler
	fresh    []GossipPromote // novel promotes awaiting one coalesced re-forward
	freshAge int             // max incoming age among fresh (re-forward at +1)
	aeTick   int             // ticks since the last anti-entropy exchange
	gstats   GossipStats
}

var _ model.Automaton = (*Automaton)(nil)

// New returns the Algorithm 4 automaton for process p of n. Proposals arrive
// as model.ProposeInput inputs.
func New(p model.ProcID, n int) *Automaton {
	return &Automaton{
		self:     p,
		n:        n,
		received: make(map[model.ProcID]map[int]string, n),
		decided:  make(map[int]bool),
		values:   make(map[int]string),
	}
}

// NewDriven returns the automaton with a Driver that proposes instance 1 at
// Init and instance ℓ+1 as soon as instance ℓ decides.
func NewDriven(p model.ProcID, n int, d Driver) *Automaton {
	a := New(p, n)
	a.driver = d
	return a
}

// Factory adapts New to model.AutomatonFactory.
func Factory() model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return New(p, n) }
}

// DrivenFactory adapts NewDriven to model.AutomatonFactory.
func DrivenFactory(d Driver) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return NewDriven(p, n, d) }
}

// Init implements model.Automaton.
func (a *Automaton) Init(ctx model.Context) {
	if a.driver != nil {
		if v, ok := a.driver(a.self, 1); ok {
			ctx.Output(model.ProposeInput{Instance: 1, Value: v})
			a.propose(ctx, 1, v)
		}
	}
}

// Input implements model.Automaton: a model.ProposeInput is proposeEC_ℓ(v).
func (a *Automaton) Input(ctx model.Context, in any) {
	pi, ok := in.(model.ProposeInput)
	if !ok {
		return
	}
	a.propose(ctx, pi.Instance, pi.Value)
}

// Propose invokes proposeEC_ℓ(v) programmatically (used by the
// transformations of §3, which drive EC as a black box).
func (a *Automaton) Propose(ctx model.Context, instance int, value string) {
	a.propose(ctx, instance, value)
}

func (a *Automaton) propose(ctx model.Context, instance int, value string) {
	if instance <= 0 {
		panic(fmt.Sprintf("ec: proposeEC instance must be >= 1, got %d", instance))
	}
	a.count = instance
	a.values[instance] = value
	if a.gossip.Enabled() {
		a.emitGossipPropose(ctx, instance, value)
		return
	}
	if a.batch.Enabled() {
		a.enqueuePromote(ctx, PromoteMsg{Value: value, Instance: instance})
		return
	}
	ctx.Broadcast(PromoteMsg{Value: value, Instance: instance})
}

// Recv implements model.Automaton.
func (a *Automaton) Recv(ctx model.Context, from model.ProcID, payload any) {
	if g, ok := payload.(GossipPromoteMsg); ok {
		a.recvGossipPromote(g)
		return
	}
	if b, ok := payload.(PromoteBatchMsg); ok {
		for _, m := range b.Msgs {
			a.recvPromote(from, m)
		}
		return
	}
	m, ok := payload.(PromoteMsg)
	if !ok {
		return
	}
	a.recvPromote(from, m)
}

// recvPromote is the reception handler of one promote(v, ℓ), shared by the
// raw and batched carriers.
func (a *Automaton) recvPromote(from model.ProcID, m PromoteMsg) {
	byInst := a.received[from]
	if byInst == nil {
		byInst = make(map[int]string)
		a.received[from] = byInst
	}
	// A process sends promote(·, ℓ) at most once; keep the first value
	// defensively if a duplicate ever arrives.
	if _, dup := byInst[m.Instance]; !dup {
		byInst[m.Instance] = m.Value
	}
}

// Tick implements model.Automaton: the "local timeout" of Algorithm 4. With
// batching enabled, queued promotes flush (by linger) before the decide step.
func (a *Automaton) Tick(ctx model.Context) {
	if a.batch.Enabled() {
		a.tickBatch(ctx)
	}
	if a.gossip.Enabled() {
		a.tickGossip(ctx)
	}
	if a.count == 0 || a.decided[a.count] {
		return
	}
	leader, ok := fd.LeaderOf(ctx.FD())
	if !ok {
		return
	}
	v, have := a.received[leader][a.count]
	if !have {
		return
	}
	inst := a.count
	a.decided[inst] = true
	ctx.Output(model.Decision{Instance: inst, Value: v})
	if a.driver != nil {
		if nv, more := a.driver(a.self, inst+1); more {
			// Record the proposal for the EC-Validity checker, then invoke
			// the next instance — the spec's closed loop.
			ctx.Output(model.ProposeInput{Instance: inst + 1, Value: nv})
			a.propose(ctx, inst+1, nv)
		}
	}
}

// Count returns count_i (for inspection in tests).
func (a *Automaton) Count() int { return a.count }

// DecidedUpTo returns the highest instance ℓ such that all instances 1..ℓ
// have been decided by this process.
func (a *Automaton) DecidedUpTo() int {
	l := 0
	for a.decided[l+1] {
		l++
	}
	return l
}
