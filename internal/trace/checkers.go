package trace

import (
	"fmt"

	"repro/internal/model"
)

// Verdict is the result of checking one property.
type Verdict struct {
	OK         bool
	Violations []string // at most maxViolations, for readable reports
}

const maxViolations = 8

func (v *Verdict) violate(format string, args ...any) {
	v.OK = false
	if len(v.Violations) < maxViolations {
		v.Violations = append(v.Violations, fmt.Sprintf(format, args...))
	}
}

func okVerdict() Verdict { return Verdict{OK: true} }

// ETOBReport is the outcome of checking a broadcast run against the ETOB
// specification (§3). The always-properties get boolean verdicts; the
// eventual properties get the minimal witness τ (model.TimeNever when no τ
// exists within the run, i.e. the property is violated at the end).
type ETOBReport struct {
	NoCreation    Verdict
	NoDuplication Verdict
	Validity      Verdict
	Agreement     Verdict
	CausalOrder   Verdict

	// StabilityTau is the minimal τ from which ETOB-Stability holds at every
	// correct process; 0 means the run satisfies (strong) TOB-Stability.
	StabilityTau model.Time
	// TotalOrderTau is the minimal τ from which ETOB-Total-order holds across
	// all pairs of correct processes.
	TotalOrderTau model.Time
	// Tau = max(StabilityTau, TotalOrderTau): the run's eventual-consistency
	// stabilization time.
	Tau model.Time
}

// OK reports whether the run satisfies the full ETOB specification (all
// always-properties hold and both eventual properties admit a τ).
func (rep ETOBReport) OK() bool {
	return rep.NoCreation.OK && rep.NoDuplication.OK && rep.Validity.OK &&
		rep.Agreement.OK && rep.CausalOrder.OK &&
		rep.StabilityTau != model.TimeNever && rep.TotalOrderTau != model.TimeNever
}

// StrongTOB reports whether the run satisfies the *strong* TOB specification:
// ETOB with τ = 0 (§5, property 2: when Ω is stable from the start,
// Algorithm 5 implements total order broadcast).
func (rep ETOBReport) StrongTOB() bool { return rep.OK() && rep.Tau == 0 }

// CheckOptions tune the finite-run interpretation of the liveness clauses.
type CheckOptions struct {
	// InputCutoff: only messages broadcast at or before this time are
	// required to be delivered (later broadcasts may still be in flight when
	// the run ends). Zero means "no cutoff" (all broadcasts checked).
	InputCutoff model.Time
	// SettleTime: a message stably delivered by some correct process at or
	// before SettleTime must be stably delivered by every correct process by
	// the end of the run (TOB-Agreement, finite-run form). Zero means no
	// Agreement liveness check beyond final-sequence containment of
	// cutoff-eligible messages.
	SettleTime model.Time
}

// CheckETOB verifies the recorded run against the ETOB specification for the
// given set of correct processes.
func CheckETOB(r *Recorder, correct []model.ProcID, opts CheckOptions) ETOBReport {
	rep := ETOBReport{
		NoCreation:    okVerdict(),
		NoDuplication: okVerdict(),
		Validity:      okVerdict(),
		Agreement:     okVerdict(),
		CausalOrder:   okVerdict(),
	}

	// --- TOB-No-creation and TOB-No-duplication: over every snapshot of
	// every process (the paper states them for all d_i(t)).
	for _, p := range model.Procs(r.N()) {
		for _, pt := range r.Seqs(p) {
			seen := make(map[string]bool, len(pt.Seq))
			for _, id := range pt.Seq {
				if _, ok := r.Broadcast(id); !ok {
					rep.NoCreation.violate("%v delivered %q at t=%d but it was never broadcast", p, id, pt.T)
				}
				if seen[id] {
					rep.NoDuplication.violate("%v's d at t=%d contains %q twice", p, pt.T, id)
				}
				seen[id] = true
			}
		}
	}

	// --- TOB-Validity: a correct broadcaster stably delivers its own message.
	for _, b := range r.Broadcasts() {
		if opts.InputCutoff > 0 && b.T > opts.InputCutoff {
			continue
		}
		if !isIn(correct, b.Sender) {
			continue
		}
		if _, ok := r.StableDeliveryTime(b.Sender, b.ID); !ok {
			rep.Validity.violate("correct %v broadcast %q at t=%d but never stably delivered it", b.Sender, b.ID, b.T)
		}
	}

	// --- TOB-Agreement: stable delivery anywhere (early enough) implies
	// stable delivery everywhere among correct processes.
	for _, b := range r.Broadcasts() {
		stableSomewhere := model.TimeNever
		for _, p := range correct {
			if st, ok := r.StableDeliveryTime(p, b.ID); ok {
				if stableSomewhere == model.TimeNever || st < stableSomewhere {
					stableSomewhere = st
				}
			}
		}
		if stableSomewhere == model.TimeNever {
			continue
		}
		if opts.SettleTime > 0 && stableSomewhere > opts.SettleTime {
			continue
		}
		for _, p := range correct {
			if _, ok := r.StableDeliveryTime(p, b.ID); !ok {
				rep.Agreement.violate("%q stably delivered at t=%d by some correct process but not by %v", b.ID, stableSomewhere, p)
			}
		}
	}

	// --- TOB-Causal-Order: in every snapshot of every correct process, if m2
	// (transitively) causally depends on m1 and both appear, m1 appears first.
	closure := depClosure(r)
	for _, p := range correct {
		for _, pt := range r.Seqs(p) {
			pos := make(map[string]int, len(pt.Seq))
			for i, id := range pt.Seq {
				pos[id] = i
			}
			for i, id := range pt.Seq {
				for dep := range closure[id] {
					if j, ok := pos[dep]; ok && j > i {
						rep.CausalOrder.violate("%v at t=%d: %q (pos %d) causally precedes %q (pos %d) but appears after it", p, pt.T, dep, j, id, i)
					}
				}
			}
		}
	}

	rep.StabilityTau = stabilityTau(r, correct)
	rep.TotalOrderTau = totalOrderTau(r, correct)
	rep.Tau = rep.StabilityTau
	if rep.TotalOrderTau == model.TimeNever || (rep.Tau != model.TimeNever && rep.TotalOrderTau > rep.Tau) {
		rep.Tau = rep.TotalOrderTau
	}
	if rep.StabilityTau == model.TimeNever {
		rep.Tau = model.TimeNever
	}
	return rep
}

// stabilityTau returns the minimal τ such that for every correct p and all
// τ ≤ t1 ≤ t2, d_p(t1) is a prefix of d_p(t2); TimeNever if the last
// transition still violates the prefix order.
func stabilityTau(r *Recorder, correct []model.ProcID) model.Time {
	var tau model.Time
	for _, p := range correct {
		pts := r.Seqs(p)
		for i := 1; i < len(pts); i++ {
			if !isPrefix(pts[i-1].Seq, pts[i].Seq) {
				// The earlier value is current throughout [pts[i-1].T,
				// pts[i].T), so the pair (t1 = pts[i].T−1, t2 = pts[i].T)
				// violates stability; τ must be ≥ pts[i].T. τ = pts[i].T is a
				// valid witness even for the last transition (d is constant
				// afterwards).
				if pts[i].T > tau {
					tau = pts[i].T
				}
			}
		}
	}
	return tau
}

// totalOrderTau returns the minimal τ such that for all correct pi, pj and
// all t ≥ τ, the common messages of d_i(t) and d_j(t) appear in the same
// order; TimeNever if a conflict persists at the end of the run.
func totalOrderTau(r *Recorder, correct []model.ProcID) model.Time {
	var tau model.Time
	for a := 0; a < len(correct); a++ {
		for b := a + 1; b < len(correct); b++ {
			pi, pj := correct[a], correct[b]
			t := pairOrderTau(r, pi, pj)
			if t == model.TimeNever {
				return model.TimeNever
			}
			if t > tau {
				tau = t
			}
		}
	}
	return tau
}

func pairOrderTau(r *Recorder, pi, pj model.ProcID) model.Time {
	ptsI, ptsJ := r.Seqs(pi), r.Seqs(pj)
	// Merge event times; d is a step function so checking at each event time
	// covers all t in [event, next event).
	var tau model.Time
	i, j := -1, -1
	for i+1 < len(ptsI) || j+1 < len(ptsJ) {
		var t model.Time
		advI := i+1 < len(ptsI) && (j+1 >= len(ptsJ) || ptsI[i+1].T <= ptsJ[j+1].T)
		if advI {
			t = ptsI[i+1].T
		} else {
			t = ptsJ[j+1].T
		}
		for i+1 < len(ptsI) && ptsI[i+1].T <= t {
			i++
		}
		for j+1 < len(ptsJ) && ptsJ[j+1].T <= t {
			j++
		}
		if i < 0 || j < 0 {
			continue
		}
		if !orderConsistent(ptsI[i].Seq, ptsJ[j].Seq) {
			tau = t + 1
		}
	}
	if i >= 0 && j >= 0 && !orderConsistent(ptsI[i].Seq, ptsJ[j].Seq) {
		return model.TimeNever // conflict persists at end of run
	}
	return tau
}

// orderConsistent reports whether the messages common to both sequences
// appear in the same relative order.
func orderConsistent(a, b []string) bool {
	pos := make(map[string]int, len(a))
	for i, id := range a {
		pos[id] = i
	}
	last := -1
	for _, id := range b {
		if i, ok := pos[id]; ok {
			if i < last {
				return false
			}
			last = i
		}
	}
	return true
}

func isPrefix(pre, full []string) bool {
	if len(pre) > len(full) {
		return false
	}
	for i := range pre {
		if pre[i] != full[i] {
			return false
		}
	}
	return true
}

func isIn(set []model.ProcID, p model.ProcID) bool {
	for _, q := range set {
		if q == p {
			return true
		}
	}
	return false
}

// depClosure computes the transitive closure of the declared causal
// dependencies over all broadcast messages: closure[m] is the set of messages
// m transitively depends on.
func depClosure(r *Recorder) map[string]map[string]bool {
	direct := make(map[string][]string)
	for _, b := range r.Broadcasts() {
		direct[b.ID] = b.Deps
	}
	closure := make(map[string]map[string]bool, len(direct))
	var visit func(id string) map[string]bool
	visit = func(id string) map[string]bool {
		if c, ok := closure[id]; ok {
			return c
		}
		c := make(map[string]bool)
		closure[id] = c // pre-insert to cut cycles (deps form a DAG by construction)
		for _, d := range direct[id] {
			c[d] = true
			for dd := range visit(d) {
				c[dd] = true
			}
		}
		return c
	}
	for id := range direct {
		visit(id)
	}
	return closure
}
