package trace

import (
	"fmt"
	"reflect"
	"sync"

	"repro/internal/model"
)

// This file records a run at STEP granularity — finer than the Recorder's
// input/output histories. A StepLog captures, for every atomic step a process
// took, the step's trigger (init, tick, input, or the received message), the
// failure-detector value the process was handed, the local clock it read, and
// everything the step emitted (sends and outputs). That is the complete
// input of the automaton's transition function, so a recorded log REPLAYS:
// internal/runtime.Replay re-executes the same automaton factory against the
// recorded schedule and must reproduce the emissions bit for bit. The replay
// is the conformance oracle of the service plane — it pins that a live
// transport (goroutines, TCP, ...) did not fork the automaton semantics,
// because state evolution is a deterministic function of the step schedule
// alone, independent of the wire that produced it.

// StepKind classifies the trigger of one step.
type StepKind int

// The four step triggers of the model (§2): initialization, a λ-step, an
// external input, and a message reception.
const (
	StepInit StepKind = iota + 1
	StepTick
	StepInput
	StepRecv
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case StepInit:
		return "init"
	case StepTick:
		return "tick"
	case StepInput:
		return "input"
	case StepRecv:
		return "recv"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// SendRec is one message emission of a step.
type SendRec struct {
	To      model.ProcID
	Payload any
}

// Step is one recorded atomic step: the trigger and clock/detector inputs
// that drove it, plus the emissions it produced. Together the input fields
// determine the automaton's transition exactly; the emission fields are what
// a replay checks itself against.
type Step struct {
	// P is the process that took the step.
	P model.ProcID
	// Kind is the trigger.
	Kind StepKind
	// From and Payload describe the received message (StepRecv only).
	From    model.ProcID
	Payload any
	// In is the external input (StepInput only).
	In any
	// FD is the failure-detector value handed to the step.
	FD any
	// Now is the local clock value the step observed.
	Now model.Time

	// Sends are the messages the step emitted, in emission order.
	Sends []SendRec
	// Outputs are the values the step emitted to the external world.
	Outputs []any
}

// SameEmissions reports whether two steps emitted identical sends and
// outputs (deep equality), which is the conformance criterion per step.
func SameEmissions(a, b *Step) bool {
	if len(a.Sends) != len(b.Sends) || len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for i := range a.Sends {
		if a.Sends[i].To != b.Sends[i].To || !reflect.DeepEqual(a.Sends[i].Payload, b.Sends[i].Payload) {
			return false
		}
	}
	for i := range a.Outputs {
		if !reflect.DeepEqual(a.Outputs[i], b.Outputs[i]) {
			return false
		}
	}
	return true
}

// StepLog collects the steps of a run. It is safe for concurrent append (a
// live cluster records from one goroutine per process); the global order is
// the append order, and the per-process subsequences — the only order the
// replay semantics depend on, since automata share no state — are exactly
// each process's execution order.
type StepLog struct {
	mu    sync.Mutex
	steps []Step
}

// NewStepLog returns an empty log.
func NewStepLog() *StepLog { return &StepLog{} }

// Append records one step.
func (l *StepLog) Append(s Step) {
	l.mu.Lock()
	l.steps = append(l.steps, s)
	l.mu.Unlock()
}

// Len returns the number of recorded steps.
func (l *StepLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.steps)
}

// Steps returns a snapshot of the recorded steps.
func (l *StepLog) Steps() []Step {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Step(nil), l.steps...)
}
