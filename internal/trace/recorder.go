// Package trace records the input and output histories of a run and checks
// the properties that define the paper's abstractions: TOB (Validity,
// No-creation, No-duplication, Agreement, Stability, Total-order,
// Causal-Order), their eventual relaxations ETOB-Stability and
// ETOB-Total-order (both "for some τ ∈ N"), and the eventual consensus
// properties (EC-Termination, EC-Integrity, EC-Validity, EC-Agreement
// "for some k"). The checkers both verify runs in tests and *measure* τ and
// k for the experiment tables.
package trace

import (
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/sim"
)

// SeqPoint is one observation of an output variable d_i: at time T the
// sequence became Seq.
type SeqPoint struct {
	T   model.Time
	Seq []string
}

// DecisionPoint is one response DecideEC(Instance, Value) at time T.
type DecisionPoint struct {
	T        model.Time
	Instance int
	Value    string
}

// ProposalPoint is one invocation proposeEC_Instance(Value) by P at time T.
type ProposalPoint struct {
	P        model.ProcID
	T        model.Time
	Instance int
	Value    string
}

// BroadcastPoint is one invocation broadcastETOB(ID, Deps) by Sender at T.
type BroadcastPoint struct {
	ID     string
	Sender model.ProcID
	T      model.Time
	Deps   []string
}

// Recorder collects the histories of a run. It implements sim.Observer and
// is safe for concurrent use (the live runtime records from many goroutines).
type Recorder struct {
	mu sync.Mutex

	n          int
	seqs       map[model.ProcID][]SeqPoint
	decisions  map[model.ProcID][]DecisionPoint
	proposals  []ProposalPoint
	broadcasts map[string]BroadcastPoint
	bcastOrder []string
	leaders    map[model.ProcID][]LeaderPoint

	sends    int64
	delivers int64
}

// LeaderPoint is one observation of an Ω-output variable.
type LeaderPoint struct {
	T      model.Time
	Leader model.ProcID
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder returns an empty recorder for an n-process run.
func NewRecorder(n int) *Recorder {
	return &Recorder{
		n:          n,
		seqs:       make(map[model.ProcID][]SeqPoint, n),
		decisions:  make(map[model.ProcID][]DecisionPoint, n),
		broadcasts: make(map[string]BroadcastPoint),
		leaders:    make(map[model.ProcID][]LeaderPoint, n),
	}
}

// OnSend implements sim.Observer.
func (r *Recorder) OnSend(model.Time, sim.Message) {
	r.mu.Lock()
	r.sends++
	r.mu.Unlock()
}

// OnDeliver implements sim.Observer.
func (r *Recorder) OnDeliver(model.Time, sim.Message) {
	r.mu.Lock()
	r.delivers++
	r.mu.Unlock()
}

// OnInput implements sim.Observer: records invocation events.
func (r *Recorder) OnInput(p model.ProcID, t model.Time, v any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch in := v.(type) {
	case model.BroadcastInput:
		if _, dup := r.broadcasts[in.ID]; !dup {
			r.broadcasts[in.ID] = BroadcastPoint{ID: in.ID, Sender: p, T: t, Deps: append([]string(nil), in.Deps...)}
			r.bcastOrder = append(r.bcastOrder, in.ID)
		}
	case model.ProposeInput:
		r.proposals = append(r.proposals, ProposalPoint{P: p, T: t, Instance: in.Instance, Value: in.Value})
	}
}

// OnOutput implements sim.Observer: records response/output events.
func (r *Recorder) OnOutput(p model.ProcID, t model.Time, v any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch out := v.(type) {
	case model.SeqSnapshot:
		r.seqs[p] = append(r.seqs[p], SeqPoint{T: t, Seq: append([]string(nil), out.Seq...)})
	case model.Decision:
		r.decisions[p] = append(r.decisions[p], DecisionPoint{T: t, Instance: out.Instance, Value: out.Value})
	case model.ProposeInput:
		// Driven protocols (ec.NewDriven, the §3 transformations) announce
		// their self-generated proposals as outputs so that the EC-Validity
		// checker sees the full input history.
		r.proposals = append(r.proposals, ProposalPoint{P: p, T: t, Instance: out.Instance, Value: out.Value})
	case model.BroadcastInput:
		// Protocols that generate broadcast IDs internally (smr.Replica)
		// announce them as outputs; record them like invocation inputs.
		if _, dup := r.broadcasts[out.ID]; !dup {
			r.broadcasts[out.ID] = BroadcastPoint{ID: out.ID, Sender: p, T: t, Deps: append([]string(nil), out.Deps...)}
			r.bcastOrder = append(r.bcastOrder, out.ID)
		}
	case model.LeaderOutput:
		r.leaders[p] = append(r.leaders[p], LeaderPoint{T: t, Leader: out.Leader})
	}
}

// RecordProposal records a proposal directly (used by transformations whose
// inner EC invocations do not pass through a kernel input).
func (r *Recorder) RecordProposal(p model.ProcID, t model.Time, instance int, value string) {
	r.mu.Lock()
	r.proposals = append(r.proposals, ProposalPoint{P: p, T: t, Instance: instance, Value: value})
	r.mu.Unlock()
}

// N returns the number of processes.
func (r *Recorder) N() int { return r.n }

// Sends returns the number of link-level messages sent.
func (r *Recorder) Sends() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sends
}

// Delivers returns the number of link-level messages delivered.
func (r *Recorder) Delivers() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.delivers
}

// Seqs returns the recorded d_i evolution of process p (not copied; treat as
// read-only).
func (r *Recorder) Seqs(p model.ProcID) []SeqPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seqs[p]
}

// FinalSeq returns the last recorded d_i of process p (nil if none).
func (r *Recorder) FinalSeq(p model.ProcID) []string {
	pts := r.Seqs(p)
	if len(pts) == 0 {
		return nil
	}
	return pts[len(pts)-1].Seq
}

// SeqAt returns d_p(t): the last snapshot at or before t (nil if none).
func (r *Recorder) SeqAt(p model.ProcID, t model.Time) []string {
	pts := r.Seqs(p)
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T > t })
	if i == 0 {
		return nil
	}
	return pts[i-1].Seq
}

// Decisions returns the decisions of process p in time order.
func (r *Recorder) Decisions(p model.ProcID) []DecisionPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decisions[p]
}

// Proposals returns all recorded proposals.
func (r *Recorder) Proposals() []ProposalPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.proposals
}

// Broadcasts returns all broadcast invocations in invocation order.
func (r *Recorder) Broadcasts() []BroadcastPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BroadcastPoint, 0, len(r.bcastOrder))
	for _, id := range r.bcastOrder {
		out = append(out, r.broadcasts[id])
	}
	return out
}

// Broadcast returns the broadcast record for a message ID.
func (r *Recorder) Broadcast(id string) (BroadcastPoint, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.broadcasts[id]
	return b, ok
}

// Leaders returns the Ω-output evolution at p.
func (r *Recorder) Leaders(p model.ProcID) []LeaderPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaders[p]
}

// AllDecided reports whether every listed process has decided all instances
// 1..want — a convenient kernel stop predicate for consensus runs.
func (r *Recorder) AllDecided(procs []model.ProcID, want int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range procs {
		have := make(map[int]bool, want)
		for _, d := range r.decisions[p] {
			have[d.Instance] = true
		}
		for l := 1; l <= want; l++ {
			if !have[l] {
				return false
			}
		}
	}
	return true
}

// AllDelivered reports whether every listed process's current d_i contains
// all the given message IDs — a convenient kernel stop predicate for
// broadcast runs.
func (r *Recorder) AllDelivered(procs []model.ProcID, ids []string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range procs {
		pts := r.seqs[p]
		if len(pts) == 0 {
			return false
		}
		cur := make(map[string]bool, len(pts[len(pts)-1].Seq))
		for _, id := range pts[len(pts)-1].Seq {
			cur[id] = true
		}
		for _, id := range ids {
			if !cur[id] {
				return false
			}
		}
	}
	return true
}

// StableDeliveryTime returns the time at which process p stably delivered
// message id: the first snapshot time after which id is present in every
// later snapshot. Returns (0, false) if id is absent from p's final sequence.
func (r *Recorder) StableDeliveryTime(p model.ProcID, id string) (model.Time, bool) {
	pts := r.Seqs(p)
	if len(pts) == 0 {
		return 0, false
	}
	// Walk backwards: find the last snapshot NOT containing id.
	lastAbsent := -1
	for i := len(pts) - 1; i >= 0; i-- {
		if !contains(pts[i].Seq, id) {
			lastAbsent = i
			break
		}
	}
	if lastAbsent == len(pts)-1 {
		return 0, false // absent at the end: never stably delivered
	}
	return pts[lastAbsent+1].T, true
}

func contains(seq []string, id string) bool {
	for _, x := range seq {
		if x == id {
			return true
		}
	}
	return false
}
