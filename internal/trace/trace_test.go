package trace

import (
	"testing"

	"repro/internal/model"
)

// feed is a test helper that drives a recorder directly.
type feed struct{ r *Recorder }

func (f feed) bcast(p model.ProcID, t model.Time, id string, deps ...string) {
	f.r.OnInput(p, t, model.BroadcastInput{ID: id, Deps: deps})
}

func (f feed) seq(p model.ProcID, t model.Time, ids ...string) {
	f.r.OnOutput(p, t, model.SeqSnapshot{Seq: ids})
}

func (f feed) propose(p model.ProcID, t model.Time, inst int, v string) {
	f.r.OnInput(p, t, model.ProposeInput{Instance: inst, Value: v})
}

func (f feed) decide(p model.ProcID, t model.Time, inst int, v string) {
	f.r.OnOutput(p, t, model.Decision{Instance: inst, Value: v})
}

func procs2() []model.ProcID { return []model.ProcID{1, 2} }

func TestStableDeliveryTime(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.bcast(1, 5, "a")
	f.seq(1, 10, "a")
	f.seq(1, 20) // removed!
	f.seq(1, 30, "a")
	f.seq(1, 40, "a", "b")
	if st, ok := r.StableDeliveryTime(1, "a"); !ok || st != 30 {
		t.Errorf("stable time = %d,%v, want 30 (after the removal)", st, ok)
	}
	if st, ok := r.StableDeliveryTime(1, "b"); !ok || st != 40 {
		t.Errorf("b stable time = %d,%v", st, ok)
	}
	if _, ok := r.StableDeliveryTime(1, "zz"); ok {
		t.Error("never-delivered ID must not be stable")
	}
	if _, ok := r.StableDeliveryTime(2, "a"); ok {
		t.Error("no snapshots at p2")
	}
}

func TestSeqAt(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.seq(1, 10, "a")
	f.seq(1, 20, "a", "b")
	if got := r.SeqAt(1, 5); got != nil {
		t.Errorf("SeqAt(5) = %v, want nil", got)
	}
	if got := r.SeqAt(1, 15); len(got) != 1 {
		t.Errorf("SeqAt(15) = %v", got)
	}
	if got := r.SeqAt(1, 99); len(got) != 2 {
		t.Errorf("SeqAt(99) = %v", got)
	}
}

func TestCheckETOBCleanRun(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.bcast(1, 1, "a")
	f.bcast(2, 2, "b", "a")
	f.seq(1, 10, "a")
	f.seq(2, 11, "a")
	f.seq(1, 20, "a", "b")
	f.seq(2, 21, "a", "b")
	rep := CheckETOB(r, procs2(), CheckOptions{})
	if !rep.OK() || !rep.StrongTOB() {
		t.Fatalf("clean run must be strong TOB: %+v", rep)
	}
}

func TestCheckETOBNoCreation(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.seq(1, 10, "ghost")
	rep := CheckETOB(r, procs2(), CheckOptions{})
	if rep.NoCreation.OK {
		t.Fatal("ghost message must violate no-creation")
	}
}

func TestCheckETOBNoDuplication(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.bcast(1, 1, "a")
	f.seq(1, 10, "a", "a")
	rep := CheckETOB(r, procs2(), CheckOptions{})
	if rep.NoDuplication.OK {
		t.Fatal("duplicate in d_i must violate no-duplication")
	}
}

func TestCheckETOBValidity(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.bcast(1, 1, "a") // correct sender, never delivered anywhere
	f.seq(1, 10)
	rep := CheckETOB(r, procs2(), CheckOptions{})
	if rep.Validity.OK {
		t.Fatal("undelivered broadcast from a correct process must violate validity")
	}
	// With the sender crashed (not in correct set), no violation.
	rep = CheckETOB(r, []model.ProcID{2}, CheckOptions{})
	if !rep.Validity.OK {
		t.Fatal("faulty sender's messages are exempt from validity")
	}
}

func TestCheckETOBAgreement(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.bcast(1, 1, "a")
	f.seq(1, 10, "a") // stable at p1 early, never at p2
	f.seq(2, 10)
	rep := CheckETOB(r, procs2(), CheckOptions{SettleTime: 100})
	if rep.Agreement.OK {
		t.Fatal("agreement must fail when only one correct process delivers")
	}
}

func TestStabilityTauMeasured(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.bcast(1, 1, "a")
	f.bcast(1, 2, "b")
	// p1 reorders at t=50 (divergence repair), then grows monotonically.
	f.seq(1, 10, "a")
	f.seq(1, 50, "b", "a")
	f.seq(1, 60, "b", "a")
	f.seq(2, 10, "b", "a")
	rep := CheckETOB(r, procs2(), CheckOptions{})
	if rep.StabilityTau != 50 {
		t.Errorf("StabilityTau = %d, want 50", rep.StabilityTau)
	}
	if rep.StrongTOB() {
		t.Error("a reorder must rule out strong TOB")
	}
}

func TestTotalOrderTauMeasured(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.bcast(1, 1, "a")
	f.bcast(1, 2, "b")
	// Conflict at t<=30: p1 has [a,b], p2 has [b,a]; resolved at t=40.
	f.seq(1, 10, "a", "b")
	f.seq(2, 20, "b", "a")
	f.seq(2, 40, "a", "b")
	rep := CheckETOB(r, procs2(), CheckOptions{})
	if rep.TotalOrderTau == 0 || rep.TotalOrderTau == model.TimeNever {
		t.Fatalf("TotalOrderTau = %d, want a positive finite witness", rep.TotalOrderTau)
	}
	if rep.TotalOrderTau > 41 {
		t.Errorf("TotalOrderTau = %d, want <= 41", rep.TotalOrderTau)
	}
}

func TestTotalOrderNeverWhenConflictPersists(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.bcast(1, 1, "a")
	f.bcast(1, 2, "b")
	f.seq(1, 10, "a", "b")
	f.seq(2, 20, "b", "a")
	rep := CheckETOB(r, procs2(), CheckOptions{})
	if rep.TotalOrderTau != model.TimeNever {
		t.Fatalf("persistent conflict must yield TimeNever, got %d", rep.TotalOrderTau)
	}
	if rep.OK() {
		t.Fatal("run must not satisfy ETOB")
	}
}

func TestCausalOrderTransitive(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.bcast(1, 1, "a")
	f.bcast(1, 2, "b", "a")
	f.bcast(1, 3, "c", "b")
	// c before a with b ABSENT: only the transitive closure catches this.
	f.seq(1, 10, "c", "a")
	rep := CheckETOB(r, procs2(), CheckOptions{})
	if rep.CausalOrder.OK {
		t.Fatal("transitive causal violation undetected")
	}
}

func TestCausalOrderOnlyConstrainsPresentPairs(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.bcast(1, 1, "a")
	f.bcast(1, 2, "b", "a")
	f.seq(1, 10, "b") // a absent: no constraint violated
	rep := CheckETOB(r, procs2(), CheckOptions{InputCutoff: 1, SettleTime: 1})
	if !rep.CausalOrder.OK {
		t.Fatalf("absent dependency must not violate causal order: %v", rep.CausalOrder.Violations)
	}
}

func TestCheckECFull(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.propose(1, 1, 1, "x")
	f.propose(2, 2, 1, "y")
	f.decide(1, 10, 1, "x")
	f.decide(2, 11, 1, "y") // disagreement in instance 1
	f.propose(1, 12, 2, "x2")
	f.propose(2, 13, 2, "x2")
	f.decide(1, 20, 2, "x2")
	f.decide(2, 21, 2, "x2")
	rep := CheckEC(r, procs2(), 2)
	if !rep.OK() {
		t.Fatalf("eventual agreement from k=2 must pass: %+v", rep)
	}
	if rep.AgreementK != 2 {
		t.Errorf("AgreementK = %d, want 2", rep.AgreementK)
	}
}

func TestCheckECViolations(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.propose(1, 1, 1, "x")
	f.decide(1, 10, 1, "x")
	f.decide(1, 11, 1, "x") // double response: integrity violation
	f.decide(2, 12, 1, "z") // never proposed: validity violation
	rep := CheckEC(r, procs2(), 1)
	if rep.Integrity.OK {
		t.Error("double response must violate integrity")
	}
	if rep.Validity.OK {
		t.Error("unproposed value must violate validity")
	}
}

func TestCheckECTermination(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.propose(1, 1, 1, "x")
	f.decide(1, 10, 1, "x")
	rep := CheckEC(r, procs2(), 1)
	if rep.Termination.OK {
		t.Error("p2 never decided: termination must fail")
	}
}

func TestCheckECDisagreementAtEnd(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.propose(1, 1, 1, "x")
	f.propose(2, 1, 1, "y")
	f.decide(1, 10, 1, "x")
	f.decide(2, 10, 1, "y")
	rep := CheckEC(r, procs2(), 1)
	if rep.AgreementK != -1 {
		t.Errorf("disagreement on the last instance must give k=-1, got %d", rep.AgreementK)
	}
}

func TestCheckEIC(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.propose(1, 1, 1, "x")
	f.propose(2, 1, 1, "y")
	// Revocation: p2 first answers y, then revokes to x.
	f.decide(1, 10, 1, "x")
	f.decide(2, 11, 1, "y")
	f.decide(2, 20, 1, "x")
	f.propose(1, 21, 2, "w")
	f.propose(2, 21, 2, "w")
	f.decide(1, 30, 2, "w")
	f.decide(2, 31, 2, "w")
	rep := CheckEIC(r, procs2(), 2)
	if !rep.OK() {
		t.Fatalf("EIC run must pass: %+v", rep)
	}
	if rep.IntegrityK != 2 {
		t.Errorf("IntegrityK = %d, want 2 (instance 1 was revoked)", rep.IntegrityK)
	}
}

func TestCheckEICAgreementViolation(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.propose(1, 1, 1, "x")
	f.propose(2, 1, 1, "y")
	f.decide(1, 10, 1, "x")
	f.decide(2, 11, 1, "y") // final answers differ forever
	rep := CheckEIC(r, procs2(), 1)
	if rep.Agreement.OK {
		t.Fatal("forever-different final responses must violate EIC agreement")
	}
}

func TestRecorderBroadcastDedup(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	f.bcast(1, 1, "a")
	f.bcast(2, 5, "a") // duplicate ID from elsewhere: first wins
	bs := r.Broadcasts()
	if len(bs) != 1 || bs[0].Sender != 1 {
		t.Fatalf("broadcasts = %+v", bs)
	}
}

func TestRecorderCountsAndLeaders(t *testing.T) {
	r := NewRecorder(2)
	r.OnOutput(1, 5, model.LeaderOutput{Leader: 2})
	if ls := r.Leaders(1); len(ls) != 1 || ls[0].Leader != 2 {
		t.Fatalf("Leaders = %+v", ls)
	}
	r.RecordProposal(1, 3, 1, "v")
	if ps := r.Proposals(); len(ps) != 1 || ps[0].Value != "v" {
		t.Fatalf("Proposals = %+v", ps)
	}
}

func TestAllDecidedAndAllDelivered(t *testing.T) {
	r := NewRecorder(2)
	f := feed{r}
	if r.AllDecided(procs2(), 1) {
		t.Error("empty recorder cannot be all-decided")
	}
	f.decide(1, 1, 1, "v")
	f.decide(2, 2, 1, "v")
	if !r.AllDecided(procs2(), 1) {
		t.Error("both decided instance 1")
	}
	if r.AllDelivered(procs2(), []string{"a"}) {
		t.Error("nothing delivered yet")
	}
	f.seq(1, 5, "a")
	f.seq(2, 6, "a")
	if !r.AllDelivered(procs2(), []string{"a"}) {
		t.Error("a delivered at both")
	}
}
