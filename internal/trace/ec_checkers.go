package trace

import (
	"repro/internal/model"
)

// ECReport is the outcome of checking a run against the eventual consensus
// specification (§3): EC-Termination, EC-Integrity, EC-Validity always, and
// EC-Agreement from some instance k onward.
type ECReport struct {
	Termination Verdict
	Integrity   Verdict
	Validity    Verdict
	// AgreementK is the minimal k such that for every instance ℓ ≥ k all
	// responses returned (by any process) to proposeEC_ℓ are equal; -1 when
	// even the last instance disagrees (EC-Agreement violated in this run).
	AgreementK int
	// MaxInstance is the highest instance any process decided.
	MaxInstance int
}

// OK reports whether the run satisfies the EC specification.
func (rep ECReport) OK() bool {
	return rep.Termination.OK && rep.Integrity.OK && rep.Validity.OK && rep.AgreementK >= 0
}

// CheckEC verifies the recorded decisions against the EC spec. wantInstances
// is the number of instances every correct process is required to have
// decided (EC-Termination, finite-run form).
func CheckEC(r *Recorder, correct []model.ProcID, wantInstances int) ECReport {
	rep := ECReport{
		Termination: okVerdict(),
		Integrity:   okVerdict(),
		Validity:    okVerdict(),
		AgreementK:  -1,
	}

	proposed := make(map[int]map[string]bool) // instance → set of proposed values
	for _, pr := range r.Proposals() {
		if proposed[pr.Instance] == nil {
			proposed[pr.Instance] = make(map[string]bool)
		}
		proposed[pr.Instance][pr.Value] = true
	}

	// decided[ℓ] → set of distinct values returned to proposeEC_ℓ.
	decided := make(map[int]map[string]bool)
	for _, p := range model.Procs(r.N()) {
		seen := make(map[int]int)
		for _, d := range r.Decisions(p) {
			seen[d.Instance]++
			if seen[d.Instance] == 2 {
				rep.Integrity.violate("%v responded twice to proposeEC_%d", p, d.Instance)
			}
			if vals := proposed[d.Instance]; vals == nil || !vals[d.Value] {
				rep.Validity.violate("%v decided %q in instance %d, which was never proposed", p, d.Value, d.Instance)
			}
			if decided[d.Instance] == nil {
				decided[d.Instance] = make(map[string]bool)
			}
			decided[d.Instance][d.Value] = true
			if d.Instance > rep.MaxInstance {
				rep.MaxInstance = d.Instance
			}
		}
	}

	// EC-Termination: every correct process decided instances 1..wantInstances.
	for _, p := range correct {
		have := make(map[int]bool)
		for _, d := range r.Decisions(p) {
			have[d.Instance] = true
		}
		for l := 1; l <= wantInstances; l++ {
			if !have[l] {
				rep.Termination.violate("correct %v never returned from proposeEC_%d", p, l)
			}
		}
	}

	// EC-Agreement: minimal k with unanimity for every ℓ ≥ k (over instances
	// that were decided at all).
	k := 1
	for l := 1; l <= rep.MaxInstance; l++ {
		if vals := decided[l]; len(vals) > 1 {
			k = l + 1
		}
	}
	if k <= rep.MaxInstance || rep.MaxInstance == 0 {
		rep.AgreementK = k
	} else if k == rep.MaxInstance+1 {
		// Disagreement on the very last decided instance: no within-run
		// witness that agreement was reached.
		rep.AgreementK = -1
	}
	return rep
}

// EICReport is the outcome of checking a run against the eventual
// *irrevocable* consensus specification (Appendix A): EIC-Termination and
// EIC-Validity always, EIC-Integrity from some instance k on (decisions may
// be revoked finitely many times before that), and EIC-Agreement in the
// "not forever different" form.
type EICReport struct {
	Termination Verdict
	Validity    Verdict
	// IntegrityK is the minimal k such that no process responds twice to
	// proposeEIC_ℓ for ℓ ≥ k; -1 if the last instance was still revoked.
	IntegrityK int
	// Agreement holds when, for every instance, the *last* responses of all
	// correct processes coincide (no two processes return forever-different
	// values).
	Agreement   Verdict
	MaxInstance int
}

// OK reports whether the run satisfies the EIC specification.
func (rep EICReport) OK() bool {
	return rep.Termination.OK && rep.Validity.OK && rep.Agreement.OK && rep.IntegrityK >= 0
}

// CheckEIC verifies the recorded decisions against the EIC spec.
func CheckEIC(r *Recorder, correct []model.ProcID, wantInstances int) EICReport {
	rep := EICReport{
		Termination: okVerdict(),
		Validity:    okVerdict(),
		Agreement:   okVerdict(),
		IntegrityK:  -1,
	}

	proposed := make(map[int]map[string]bool)
	for _, pr := range r.Proposals() {
		if proposed[pr.Instance] == nil {
			proposed[pr.Instance] = make(map[string]bool)
		}
		proposed[pr.Instance][pr.Value] = true
	}

	// Per process: count of responses and last response per instance.
	revokedMax := 0 // highest instance with a double response at any process
	last := make(map[model.ProcID]map[int]string, r.N())
	for _, p := range model.Procs(r.N()) {
		counts := make(map[int]int)
		last[p] = make(map[int]string)
		for _, d := range r.Decisions(p) {
			counts[d.Instance]++
			last[p][d.Instance] = d.Value
			if counts[d.Instance] > 1 && d.Instance > revokedMax {
				revokedMax = d.Instance
			}
			if vals := proposed[d.Instance]; vals == nil || !vals[d.Value] {
				rep.Validity.violate("%v decided %q in instance %d, which was never proposed", p, d.Value, d.Instance)
			}
			if d.Instance > rep.MaxInstance {
				rep.MaxInstance = d.Instance
			}
		}
	}

	for _, p := range correct {
		for l := 1; l <= wantInstances; l++ {
			if _, ok := last[p][l]; !ok {
				rep.Termination.violate("correct %v never responded to proposeEIC_%d", p, l)
			}
		}
	}

	// EIC-Agreement: the final responses of correct processes per instance
	// must coincide (two processes returning different values forever would
	// show up as differing final responses).
	for l := 1; l <= rep.MaxInstance; l++ {
		var ref string
		var refP model.ProcID
		haveRef := false
		for _, p := range correct {
			v, ok := last[p][l]
			if !ok {
				continue
			}
			if !haveRef {
				ref, refP, haveRef = v, p, true
				continue
			}
			if v != ref {
				rep.Agreement.violate("instance %d: %v's final response %q differs from %v's %q", l, p, v, refP, ref)
			}
		}
	}

	if revokedMax < rep.MaxInstance || rep.MaxInstance == 0 {
		rep.IntegrityK = revokedMax + 1
	}
	return rep
}
