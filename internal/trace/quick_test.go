package trace

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func bcastInput(id string) model.BroadcastInput { return model.BroadcastInput{ID: id} }

func snapOutput(seq []string) model.SeqSnapshot {
	return model.SeqSnapshot{Seq: append([]string(nil), seq...)}
}

func int64ToTime(t int64) model.Time { return model.Time(t) }

func seqFromRaw(raw []uint8, alphabet int) []string {
	out := make([]string, 0, len(raw))
	seen := map[int]bool{}
	for _, r := range raw {
		v := int(r) % alphabet
		if !seen[v] {
			seen[v] = true
			out = append(out, fmt.Sprintf("m%d", v))
		}
	}
	return out
}

// orderConsistent must be symmetric: the common-subsequence order either
// matches in both directions or conflicts in both.
func TestQuickOrderConsistentSymmetric(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a, b := seqFromRaw(ra, 8), seqFromRaw(rb, 8)
		return orderConsistent(a, b) == orderConsistent(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A sequence is always order-consistent with any subsequence of itself.
func TestQuickOrderConsistentWithSubsequence(t *testing.T) {
	f := func(raw []uint8, mask uint16) bool {
		full := seqFromRaw(raw, 12)
		var sub []string
		for i, m := range full {
			if i < 16 && mask&(1<<uint(i)) != 0 {
				sub = append(sub, m)
			}
		}
		return orderConsistent(full, sub) && orderConsistent(sub, full)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Reversing a sequence of >= 2 elements always conflicts with the original.
func TestQuickOrderConsistentDetectsReversal(t *testing.T) {
	f := func(raw []uint8) bool {
		full := seqFromRaw(raw, 10)
		if len(full) < 2 {
			return true
		}
		rev := make([]string, len(full))
		for i, m := range full {
			rev[len(full)-1-i] = m
		}
		return !orderConsistent(full, rev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// isPrefix laws: reflexive, and any cut of a sequence is a prefix of it;
// appending breaks nothing.
func TestQuickIsPrefixLaws(t *testing.T) {
	f := func(raw []uint8, cutRaw uint8) bool {
		full := seqFromRaw(raw, 10)
		if !isPrefix(full, full) {
			return false
		}
		if len(full) == 0 {
			return isPrefix(nil, full)
		}
		cut := int(cutRaw) % (len(full) + 1)
		if !isPrefix(full[:cut], full) {
			return false
		}
		ext := append(append([]string(nil), full...), "extra")
		return isPrefix(full, ext)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// StabilityTau of a prefix-monotone history is always 0; inserting a single
// reorder makes it the reorder time.
func TestQuickStabilityTauOfMonotoneHistoryIsZero(t *testing.T) {
	f := func(seed int64, stepsRaw uint8) bool {
		steps := int(stepsRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		r := NewRecorder(2)
		var seq []string
		for i := 0; i < steps; i++ {
			seq = append(seq, fmt.Sprintf("m%d", i))
			r.OnInput(1, 0, makeBroadcast(fmt.Sprintf("m%d", i)))
			r.OnOutput(1, int64ToTime(int64(10*(i+1))), makeSnapshot(seq))
			_ = rng
		}
		rep := CheckETOB(r, procs2(), CheckOptions{})
		return rep.StabilityTau == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Helpers keeping the quick tests free of model-type noise.

func makeBroadcast(id string) any { return bcastInput(id) }

func makeSnapshot(seq []string) any { return snapOutput(seq) }
