package etob

import (
	"fmt"
	"testing"

	"sync"

	"repro/internal/fd"
	"repro/internal/gossip"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func gossipPreset(seed int64) gossip.Options {
	return gossip.Options{Enable: true, Seed: seed}
}

func runGossipETOB(t *testing.T, n, perProc int, g gossip.Options, horizon model.Time, seed int64) *trace.Recorder {
	t.Helper()
	fp := model.NewFailurePattern(n)
	det := fd.NewOmegaStable(fp, 1)
	rec := trace.NewRecorder(n)
	k := sim.New(fp, det, GossipFactory(BatchOptions{}, g), sim.Options{Seed: seed})
	k.SetObserver(rec)
	scheduleBroadcasts(k, n, perProc, 20, 40)
	k.Run(horizon)
	return rec
}

// TestGossipETOBConverges: with O(log n) dissemination instead of
// all-to-all, every broadcast still reaches every process (anti-entropy
// guarantees delivery) and the full ETOB spec holds.
func TestGossipETOBConverges(t *testing.T) {
	const n, perProc = 16, 4
	rec := runGossipETOB(t, n, perProc, gossipPreset(7), 30000, 7)
	rep := trace.CheckETOB(rec, model.Procs(n), trace.CheckOptions{InputCutoff: 4000, SettleTime: 25000})
	if !rep.OK() {
		t.Fatalf("ETOB spec violated under gossip: %+v", rep)
	}
	for _, p := range model.Procs(n) {
		if got := len(rec.FinalSeq(p)); got != n*perProc {
			t.Errorf("%v delivered %d messages, want %d", p, got, n*perProc)
		}
	}
}

// TestGossipCausalDeltasStayClosed: explicit cross-process dependencies
// force rumors whose deps may be missing at the receiver; the closure check
// must keep every CG dependency-closed (no UpdatePromote panic) and the
// causal order must hold in every delivered sequence.
func TestGossipCausalDeltasStayClosed(t *testing.T) {
	const n = 8
	fp := model.NewFailurePattern(n)
	det := fd.NewOmegaStable(fp, 1)
	rec := trace.NewRecorder(n)
	k := sim.New(fp, det, GossipFactory(BatchOptions{}, gossipPreset(3)), sim.Options{Seed: 3})
	k.SetObserver(rec)
	// A chain of dependent ops from one origin (Algorithm 5's precondition:
	// C(m) ⊆ CG_i at the broadcaster — p1 has each parent locally). Distinct
	// rumors take distinct peer paths, so receivers routinely see the child
	// rumor before the parent and must drop it for anti-entropy to repair.
	for i := 1; i <= 12; i++ {
		var deps []string
		if i > 1 {
			deps = []string{fmt.Sprintf("c%d", i-1)}
		}
		k.ScheduleInput(1, model.Time(20+i*15), model.BroadcastInput{ID: fmt.Sprintf("c%d", i), Deps: deps})
	}
	k.Run(30000)
	rep := trace.CheckETOB(rec, model.Procs(n), trace.CheckOptions{InputCutoff: 1000, SettleTime: 25000})
	if !rep.OK() {
		t.Fatalf("causal chain under gossip: %+v", rep)
	}
	for _, p := range model.Procs(n) {
		seq := rec.FinalSeq(p)
		if len(seq) != 12 {
			t.Fatalf("%v delivered %d of 12 chained ops", p, len(seq))
		}
		pos := make(map[string]int, len(seq))
		for i, id := range seq {
			pos[id] = i
		}
		for i := 2; i <= 12; i++ {
			if pos[fmt.Sprintf("c%d", i-1)] > pos[fmt.Sprintf("c%d", i)] {
				t.Fatalf("%v delivered c%d before its dependency c%d", p, i, i-1)
			}
		}
	}
}

// gossipCountObs counts envelopes by payload kind.
type gossipCountObs struct {
	rumor, update, digest, promote int
}

func (o *gossipCountObs) OnSend(_ model.Time, m sim.Message) {
	switch m.Payload.(type) {
	case GossipMsg:
		o.rumor++
	case UpdateMsg:
		o.update++
	case DigestMsg:
		o.digest++
	case PromoteMsg:
		o.promote++
	}
}
func (o *gossipCountObs) OnDeliver(model.Time, sim.Message)      {}
func (o *gossipCountObs) OnOutput(model.ProcID, model.Time, any) {}
func (o *gossipCountObs) OnInput(model.ProcID, model.Time, any)  {}

// TestGossipFanoutBound: at n=64 a flush emits exactly Fanout =
// ceil(log2 n)+1 = 7 rumor envelopes (not n−1 = 63), and total rumor
// traffic per op stays well under one all-to-all round.
func TestGossipFanoutBound(t *testing.T) {
	const n, perProc = 64, 2
	fp := model.NewFailurePattern(n)
	det := fd.NewOmegaStable(fp, 1)
	obs := &gossipCountObs{}
	k := sim.New(fp, det, GossipFactory(BatchOptions{}, gossipPreset(5)), sim.Options{Seed: 5})
	k.SetObserver(obs)
	scheduleBroadcasts(k, n, perProc, 20, 40)
	k.Run(12000)

	wantFanout := gossip.Log2Ceil(n) + 1 // 7 at n=64
	ops := n * perProc
	var rumors, repairs int64
	for _, p := range model.Procs(n) {
		st := k.Automaton(p).(*Automaton).GossipStats()
		rumors += st.Rumors
		repairs += st.Repairs
	}
	// Every GossipMsg envelope is either one of a rumor emission's Fanout
	// sends or a single anti-entropy repair delta — nothing else.
	if want := int(rumors)*wantFanout + int(repairs); obs.rumor != want {
		t.Errorf("rumor envelopes = %d, want emissions(%d) x fanout(%d) + repairs(%d) = %d",
			obs.rumor, rumors, wantFanout, repairs, want)
	}
	// No full-graph update(CG) may travel in gossip mode: anti-entropy is
	// digest + delta, the all-to-all message type disappears entirely.
	if obs.update != 0 {
		t.Errorf("gossip mode sent %d full-graph UpdateMsg envelopes, want 0", obs.update)
	}
	// The O(log n) claim at the sender: a flush costs Fanout = ceil(log2 n)+1
	// envelopes where all-to-all costs n−1.
	if wantFanout >= (n-1)/4 {
		t.Errorf("fanout %d is not O(log n) small against n-1 = %d", wantFanout, n-1)
	}
	// Systemwide, novelty gating (each process re-forwards an op at most
	// once) plus aging must keep the epidemic well under the naive flood of
	// n x fanout envelopes per op.
	perOp := float64(obs.rumor) / float64(ops)
	if flood := float64(n * wantFanout); perOp >= flood/4 {
		t.Errorf("rumor envelopes per op = %.1f, want well under the %.0f flood bound", perOp, flood)
	}
	t.Logf("n=%d: %.1f rumor envelopes/op (sender fanout %d vs all-to-all %d), %d digests, %d repair deltas",
		n, perOp, wantFanout, n-1, obs.digest, repairs)
}

// traceString flattens a recorder-independent event trace for byte-identity
// comparisons.
type traceLog struct{ events []string }

func (o *traceLog) OnSend(t model.Time, m sim.Message) {
	o.events = append(o.events, fmt.Sprintf("S %d %d %v>%v %T %+v", t, m.ID, m.From, m.To, m.Payload, m.Payload))
}
func (o *traceLog) OnDeliver(t model.Time, m sim.Message) {
	o.events = append(o.events, fmt.Sprintf("D %d %d %v>%v", t, m.ID, m.From, m.To))
}
func (o *traceLog) OnOutput(p model.ProcID, t model.Time, v any) {
	o.events = append(o.events, fmt.Sprintf("O %d %v %+v", t, p, v))
}
func (o *traceLog) OnInput(p model.ProcID, t model.Time, v any) {
	o.events = append(o.events, fmt.Sprintf("I %d %v %+v", t, p, v))
}

func gossipTrace(n, perProc int, factory model.AutomatonFactory, horizon model.Time, seed int64) []string {
	fp := model.NewFailurePattern(n)
	det := fd.NewOmegaStable(fp, 1)
	obs := &traceLog{}
	k := sim.New(fp, det, factory, sim.Options{Seed: seed})
	k.SetObserver(obs)
	scheduleBroadcasts(k, n, perProc, 20, 40)
	k.Run(horizon)
	return obs.events
}

// TestGossipOffByteIdentical: an automaton built through the gossip factory
// with gossip DISABLED must produce the byte-identical event trace of the
// plain automaton — the "gossip-off stays bit-identical" contract the golden
// tables pin at suite level.
func TestGossipOffByteIdentical(t *testing.T) {
	plain := gossipTrace(5, 3, Factory(), 8000, 42)
	off := gossipTrace(5, 3, GossipFactory(BatchOptions{}, gossip.Options{}), 8000, 42)
	if len(plain) != len(off) {
		t.Fatalf("trace lengths differ: %d vs %d", len(plain), len(off))
	}
	for i := range plain {
		if plain[i] != off[i] {
			t.Fatalf("traces diverge at event %d:\n  plain: %s\n  off:   %s", i, plain[i], off[i])
		}
	}
}

// TestGossipTraceDeterminism20Seeds: at n=64, 20 seeds, the gossip preset
// replays byte-identically — peer sampling, rumor coalescing, and
// anti-entropy rotation are all pure functions of the seeds.
func TestGossipTraceDeterminism20Seeds(t *testing.T) {
	const n, perProc = 64, 1
	for seed := int64(1); seed <= 20; seed++ {
		factory := func() model.AutomatonFactory { return GossipFactory(BatchOptions{}, gossipPreset(seed)) }
		a := gossipTrace(n, perProc, factory(), 4000, seed)
		b := gossipTrace(n, perProc, factory(), 4000, seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at event %d:\n  a: %s\n  b: %s", seed, i, a[i], b[i])
			}
		}
	}
}

// TestGossipParallelMatchesSerial: 8 gossip kernels at n=64 running
// CONCURRENTLY produce traces byte-identical to the same seeds run one at a
// time. The gossip layer keeps all its state (peer samplers, rumor buffers,
// AE rotation) inside the automaton, so concurrent kernels share nothing;
// run under -race in CI, this also shakes out any hidden package-level
// state. This is the Runner-level parity guarantee the bench suite relies
// on, pinned at the layer that owns the sampling.
func TestGossipParallelMatchesSerial(t *testing.T) {
	const n, perProc, workers = 64, 1, 8
	serial := make([][]string, workers)
	for i := range serial {
		seed := int64(i + 1)
		serial[i] = gossipTrace(n, perProc, GossipFactory(BatchOptions{}, gossipPreset(seed)), 4000, seed)
	}
	parallel := make([][]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := int64(i + 1)
			parallel[i] = gossipTrace(n, perProc, GossipFactory(BatchOptions{}, gossipPreset(seed)), 4000, seed)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if len(serial[i]) != len(parallel[i]) {
			t.Fatalf("seed %d: trace lengths differ: serial %d vs parallel %d", i+1, len(serial[i]), len(parallel[i]))
		}
		for j := range serial[i] {
			if serial[i][j] != parallel[i][j] {
				t.Fatalf("seed %d: traces diverge at event %d:\n  serial:   %s\n  parallel: %s", i+1, j, serial[i][j], parallel[i][j])
			}
		}
	}
}
