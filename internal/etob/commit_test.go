package etob

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// commitObserver records CommitOutput events per process.
type commitObserver struct {
	sim.NopObserver
	mu      sync.Mutex
	commits map[model.ProcID][]CommitOutput
}

func newCommitObserver() *commitObserver {
	return &commitObserver{commits: make(map[model.ProcID][]CommitOutput)}
}

func (o *commitObserver) OnOutput(p model.ProcID, _ model.Time, v any) {
	if c, ok := v.(CommitOutput); ok {
		o.mu.Lock()
		o.commits[p] = append(o.commits[p], c)
		o.mu.Unlock()
	}
}

func TestCommitIndicationsStableLeader(t *testing.T) {
	// Stable leader: indications appear and every later indication extends
	// every earlier one (at each process, and across processes).
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	obs := newCommitObserver()
	k := sim.New(fp, det, CommitFactory(), sim.Options{Seed: 21})
	k.SetObserver(obs)
	var ids []string
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("m%d", i)
		ids = append(ids, id)
		k.ScheduleInput(model.ProcID(i%3+1), model.Time(20+30*i), model.BroadcastInput{ID: id})
	}
	k.Run(5000)

	for _, p := range fp.Correct() {
		cs := obs.commits[p]
		if len(cs) == 0 {
			t.Fatalf("%v produced no commit indications", p)
		}
		for i := 1; i < len(cs); i++ {
			if !prefixOf(cs[i-1].Prefix, cs[i].Prefix) {
				t.Fatalf("%v: indication %d does not extend %d: %v vs %v", p, i, i-1, cs[i-1].Prefix, cs[i].Prefix)
			}
		}
		final := cs[len(cs)-1].Prefix
		if len(final) != len(ids) {
			t.Errorf("%v final committed prefix has %d entries, want %d", p, len(final), len(ids))
		}
	}
	// Cross-process: the longest committed prefixes must be order-consistent.
	a := obs.commits[1][len(obs.commits[1])-1].Prefix
	b := obs.commits[2][len(obs.commits[2])-1].Prefix
	short := a
	if len(b) < len(a) {
		short = b
	}
	for i := range short {
		if a[i] != b[i] {
			t.Fatalf("committed prefixes disagree at %d: %v vs %v", i, a, b)
		}
	}
}

func TestCommitIndicationsStableAfterOmegaStabilizes(t *testing.T) {
	// The paper's soundness condition: indications produced AFTER Ω's
	// stabilization are never invalidated — the indicated prefix stays a
	// prefix of every later delivered sequence.
	fp := model.NewFailurePattern(4)
	det := fd.NewOmegaSplit(fp, 2, 1, 1, 1500)
	obs := newCommitObserver()
	rec := trace.NewRecorder(4)
	multi := multiObserver{obs, rec}
	k := sim.New(fp, det, CommitFactory(), sim.Options{Seed: 5})
	k.SetObserver(multi)
	for i := 0; i < 6; i++ {
		k.ScheduleInput(model.ProcID(i%4+1), model.Time(20+2*i), model.BroadcastInput{ID: fmt.Sprintf("x%d", i)})
	}
	k.Run(12000)

	type stamped struct {
		t      model.Time
		prefix []string
	}
	// Recompute commit times from recorder-less observer: we did not record
	// times above, so just check the final-run invariant instead: the last
	// indication of each correct process is a prefix of its final d_i.
	for _, p := range fp.Correct() {
		cs := obs.commits[p]
		if len(cs) == 0 {
			continue
		}
		final := rec.FinalSeq(p)
		last := cs[len(cs)-1].Prefix
		if !prefixOf(last, final) {
			t.Fatalf("%v: last indication %v not a prefix of final %v", p, last, final)
		}
	}
	_ = stamped{}
}

func TestCommitRequiresMajorityAlive(t *testing.T) {
	// With only 1 of 3 alive there is no majority of ackers: no indications.
	fp := model.NewFailurePattern(3)
	fp.Crash(2, 0)
	fp.Crash(3, 0)
	det := fd.NewOmegaStable(fp, 1)
	obs := newCommitObserver()
	k := sim.New(fp, det, CommitFactory(), sim.Options{Seed: 9})
	k.SetObserver(obs)
	k.ScheduleInput(1, 20, model.BroadcastInput{ID: "solo"})
	k.Run(4000)
	if len(obs.commits[1]) != 0 {
		t.Fatalf("no majority alive, yet indications appeared: %+v", obs.commits[1])
	}
	// The message is still DELIVERED (eventual consistency needs no
	// majority) — only the commit indication is withheld.
	a := k.Automaton(1).(*CommitAutomaton)
	if got := a.Delivered(); len(got) != 1 {
		t.Fatalf("delivery must not need a majority: %v", got)
	}
	if a.Committed() != 0 {
		t.Fatal("Committed() must be 0")
	}
}

// multiObserver fans events out to several observers.
type multiObserver []sim.Observer

func (m multiObserver) OnSend(t model.Time, msg sim.Message) {
	for _, o := range m {
		o.OnSend(t, msg)
	}
}
func (m multiObserver) OnDeliver(t model.Time, msg sim.Message) {
	for _, o := range m {
		o.OnDeliver(t, msg)
	}
}
func (m multiObserver) OnOutput(p model.ProcID, t model.Time, v any) {
	for _, o := range m {
		o.OnOutput(p, t, v)
	}
}
func (m multiObserver) OnInput(p model.ProcID, t model.Time, v any) {
	for _, o := range m {
		o.OnInput(p, t, v)
	}
}

func prefixOf(pre, full []string) bool {
	if len(pre) > len(full) {
		return false
	}
	for i := range pre {
		if pre[i] != full[i] {
			return false
		}
	}
	return true
}
