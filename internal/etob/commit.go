package etob

import (
	"repro/internal/fd"
	"repro/internal/model"
)

// This file implements the extension sketched in the paper's concluding
// remarks (§7): "such systems sometimes produce indications when a prefix of
// operations on the replicated service is committed, i.e., is not subject to
// further changes. A prefix of operations can be committed, e.g., in
// sufficiently long periods of synchrony, when a majority of correct
// processes elect the same leader [...]. We believe that such indications
// could easily be implemented, during the stable periods, on top of ETOB."
//
// Mechanism: whenever a process adopts a promote sequence from the leader it
// currently trusts, it broadcasts an acknowledgment (leader, promote counter,
// adopted length). A process considers a prefix of length L committed once a
// majority of processes have acknowledged sequences of length >= L from the
// same leader it currently trusts. As the paper says, this is an INDICATION:
// it is stable in every run in which the elected leader does not change
// afterwards (in particular, always after Ω's stabilization time); during
// unstable periods a later leader may still reorder an indicated prefix.
// CommitChecker in the test suite measures exactly that.

// AckMsg acknowledges the adoption of a leader's promote sequence.
type AckMsg struct {
	Leader  model.ProcID
	Counter int64
	Len     int
}

// CommitOutput is emitted when the committed prefix grows.
type CommitOutput struct {
	Prefix []string
}

// CommitAutomaton is Algorithm 5 extended with committed-prefix indications.
type CommitAutomaton struct {
	*Automaton
	n        int
	majority int

	ackedLen  map[model.ProcID]int          // per acker: max acked length...
	ackedFor  map[model.ProcID]model.ProcID // ...and for which leader
	committed int                           // length of the last indicated prefix
}

var _ model.Automaton = (*CommitAutomaton)(nil)

// NewWithCommit returns the extended automaton for process p of n.
func NewWithCommit(p model.ProcID, n int) *CommitAutomaton {
	return &CommitAutomaton{
		Automaton: New(p, n),
		n:         n,
		majority:  n/2 + 1,
		ackedLen:  make(map[model.ProcID]int, n),
		ackedFor:  make(map[model.ProcID]model.ProcID, n),
	}
}

// CommitFactory adapts NewWithCommit to model.AutomatonFactory.
func CommitFactory() model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return NewWithCommit(p, n) }
}

// Recv implements model.Automaton: handle acks, and acknowledge every
// adopted promote.
func (a *CommitAutomaton) Recv(ctx model.Context, from model.ProcID, payload any) {
	if ack, ok := payload.(AckMsg); ok {
		a.ackedLen[from] = ack.Len
		a.ackedFor[from] = ack.Leader
		a.maybeCommit(ctx)
		return
	}
	beforeCtr := a.lastCtr[from]
	a.Automaton.Recv(ctx, from, payload)
	if m, ok := payload.(PromoteMsg); ok && a.lastCtr[from] > beforeCtr {
		// Adopted a fresh promote from the leader we trust: acknowledge to
		// everyone, including ourselves.
		ctx.Broadcast(AckMsg{Leader: from, Counter: m.Counter, Len: len(m.Seq)})
	}
}

// maybeCommit checks whether a longer prefix is now acknowledged by a
// majority under the leader we currently trust.
func (a *CommitAutomaton) maybeCommit(ctx model.Context) {
	leader, ok := fd.LeaderOf(ctx.FD())
	if !ok {
		return
	}
	// Candidate lengths: sort acked lengths of processes acking our leader.
	lens := make([]int, 0, a.n)
	for p, l := range a.ackedLen {
		if a.ackedFor[p] == leader {
			lens = append(lens, l)
		}
	}
	if len(lens) < a.majority {
		return
	}
	// The committed length is the majority'th largest acked length.
	for i := 0; i < len(lens); i++ {
		for j := i + 1; j < len(lens); j++ {
			if lens[j] > lens[i] {
				lens[i], lens[j] = lens[j], lens[i]
			}
		}
	}
	cand := lens[a.majority-1]
	if cand > len(a.d) {
		cand = len(a.d) // we can only indicate what we have adopted ourselves
	}
	if cand > a.committed {
		a.committed = cand
		ctx.Output(CommitOutput{Prefix: append([]string(nil), a.d[:cand]...)})
	}
}

// Committed returns the length of the last indicated prefix.
func (a *CommitAutomaton) Committed() int { return a.committed }
