package etob

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/causal"
	"repro/internal/model"
)

// nullCtx satisfies model.Context for driving an automaton without a kernel.
type nullCtx struct {
	self model.ProcID
	fd   any
}

func (c nullCtx) Self() model.ProcID     { return c.self }
func (c nullCtx) N() int                 { return 2 }
func (c nullCtx) Now() model.Time        { return 0 }
func (c nullCtx) FD() any                { return c.fd }
func (c nullCtx) Send(model.ProcID, any) {}
func (c nullCtx) Broadcast(any)          {}
func (c nullCtx) Output(any)             {}

// TestQuickPromotePrefixInvariant: feeding an automaton any sequence of
// dependency-closed causality-graph unions keeps promote_i (a) duplicate
// free, (b) prefix-monotone, and (c) edge-respecting — the exact invariants
// ETOB-Stability rests on (Lemma 3).
func TestQuickPromotePrefixInvariant(t *testing.T) {
	f := func(seed int64, nMsgsRaw uint8) bool {
		nMsgs := int(nMsgsRaw%24) + 1
		rng := rand.New(rand.NewSource(seed))
		// A global dependency-closed graph, grown message by message.
		global := causal.New()
		var ids []string
		a := New(1, 2)
		ctx := nullCtx{self: 1, fd: nil}
		prev := a.Promote()
		for i := 0; i < nMsgs; i++ {
			id := fmt.Sprintf("m%02d", i)
			var deps []string
			for _, prevID := range ids {
				if rng.Intn(3) == 0 {
					deps = append(deps, prevID)
				}
			}
			global.Add(id, deps)
			ids = append(ids, id)
			// Deliver a clone of the current global graph (as Algorithm 5's
			// update messages do), possibly repeatedly (links can duplicate
			// knowledge through different senders).
			times := rng.Intn(2) + 1
			for j := 0; j < times; j++ {
				a.Recv(ctx, 2, UpdateMsg{CG: global.Clone()})
			}
			cur := a.Promote()
			// (a) duplicate-free.
			seen := map[string]bool{}
			for _, m := range cur {
				if seen[m] {
					return false
				}
				seen[m] = true
			}
			// (b) prefix-monotone.
			if len(cur) < len(prev) {
				return false
			}
			for k := range prev {
				if cur[k] != prev[k] {
					return false
				}
			}
			// (c) edge-respecting.
			pos := map[string]int{}
			for k, m := range cur {
				pos[m] = k
			}
			for _, m := range cur {
				for _, d := range global.Deps(m) {
					if pd, ok := pos[d]; !ok || pd > pos[m] {
						return false
					}
				}
			}
			prev = cur
		}
		return len(prev) == nMsgs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickStalePromotesNeverShrinkD: delivering promote messages with
// arbitrary (possibly decreasing) counters never makes d_i adopt a stale
// sequence — the non-FIFO fix of DESIGN.md decision 6.
func TestQuickStalePromotesNeverShrinkD(t *testing.T) {
	f := func(ctrsRaw []uint8) bool {
		a := New(2, 2)
		ctx := nullCtx{self: 2, fd: model.ProcID(1)} // p2 trusts p1
		best := int64(0)
		for i, raw := range ctrsRaw {
			ctr := int64(raw%16) + 1
			seq := make([]string, ctr) // longer counter ⇒ longer sequence
			for j := range seq {
				seq[j] = fmt.Sprintf("m%02d", j)
			}
			a.Recv(ctx, 1, PromoteMsg{Seq: seq, Counter: ctr})
			if ctr > best {
				best = ctr
			}
			// d_i must always reflect the highest counter seen so far.
			if int64(len(a.Delivered())) != best {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
