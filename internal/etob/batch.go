package etob

import "repro/internal/model"

// This file is the batching layer of Algorithm 5: coalescing k pending
// broadcastETOB invocations into ONE update(CG_i) message. The protocol makes
// this free — update messages carry the sender's whole causality graph, so a
// graph that grew by k nodes since the last send is still one message, and
// receivers' UnionCG absorbs k ops exactly as it absorbs one. Batching
// therefore changes no message type and no receiver logic; it only changes
// WHEN the sender snapshots and broadcasts its graph.
//
// # Flush-policy contract
//
// A batched automaton queues each broadcastETOB(m, C(m)) instead of applying
// it, and flushes the queue — applying every queued UpdateCG in submission
// order, then broadcasting a single update(CG_i) — when either:
//
//   - the queue reaches the batch-size target (MaxBatch, or the adaptive
//     controller's current target), or
//   - a queued op has waited MaxLinger local timeouts (ticks), whichever
//     comes first. Linger flushing runs at the START of Tick, before the
//     leader's promote step, so a leader never promotes around its own
//     queued ops within the same timeout.
//
// Dependencies are resolved at FLUSH time, not submission time: an op queued
// with nil deps takes the causal frontier as of its own UpdateCG, which by
// then includes every earlier op of the same batch — intra-batch causality
// (op_2 after op_1) is preserved exactly as if the ops had been broadcast
// individually. Explicit deps pass through untouched.
//
// Degeneration: with MaxBatch <= 1 and Adaptive off, BroadcastETOB takes the
// historical immediate path — the queue is never touched, and every trace is
// byte-identical to the unbatched automaton (the golden tables pin this).
//
// The batch is sender-local state, not protocol state: a crash loses queued
// (unflushed) ops exactly as it loses ops the client never submitted, which
// is the same durability contract the unbatched automaton offers between
// accepting a broadcast and its update message leaving the process.

// BatchOptions configures the batching layer of a (Commit)Automaton.
type BatchOptions struct {
	// MaxBatch is the batch-size target: the queue flushes when it holds
	// this many ops. <= 1 disables batching (with Adaptive false) — the
	// automaton behaves bit-for-bit like the unbatched one. Under Adaptive,
	// MaxBatch is the controller's CAP (default 32).
	MaxBatch int
	// MaxLinger is the maximum number of local timeouts (ticks) a queued op
	// waits before a flush is forced regardless of queue depth. Default 1:
	// an op never waits more than one tick beyond its submission.
	MaxLinger int
	// Adaptive enables the AIMD batch-size controller: the target starts at
	// 1 and climbs by one each time a flush fills (queue-depth pressure says
	// the window is too small), and halves each time a flush is forced by
	// linger at under half the target (the batch is waiting on arrivals, so
	// a larger window only adds tail latency — the local proxy for a p99
	// regression). MaxBatch caps the climb.
	Adaptive bool
}

// Enabled reports whether these options actually batch.
func (o BatchOptions) Enabled() bool { return o.MaxBatch > 1 || o.Adaptive }

func (o BatchOptions) withDefaults() BatchOptions {
	if o.Adaptive && o.MaxBatch <= 1 {
		o.MaxBatch = 32
	}
	if o.MaxLinger <= 0 {
		o.MaxLinger = 1
	}
	return o
}

// pendingOp is one queued broadcastETOB invocation.
type pendingOp struct {
	id   string
	deps []string // nil = frontier at flush time
}

// BatchStats is a snapshot of the batching layer's counters.
type BatchStats struct {
	// Flushes is the number of update(CG_i) broadcasts the layer emitted.
	Flushes int64
	// FullFlushes and LingerFlushes split Flushes by trigger: queue depth
	// reaching the target vs the linger timeout forcing out a partial batch.
	// Their ratio is what the adaptive controller steers on.
	FullFlushes   int64
	LingerFlushes int64
	// Ops is the number of broadcastETOB invocations that went through the
	// queue (Ops/Flushes is the realized mean batch size).
	Ops int64
	// Target is the current batch-size target (MaxBatch when fixed; the
	// controller's current value when adaptive).
	Target int
	// Queued is the number of ops currently waiting for a flush.
	Queued int
}

// NewBatched returns the Algorithm 5 automaton with the batching layer
// configured. NewBatched(p, n, BatchOptions{}) is New(p, n).
func NewBatched(p model.ProcID, n int, o BatchOptions) *Automaton {
	a := New(p, n)
	a.SetBatch(o)
	return a
}

// BatchedFactory adapts NewBatched to model.AutomatonFactory.
func BatchedFactory(o BatchOptions) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return NewBatched(p, n, o) }
}

// NewWithCommitBatched returns the committed-prefix automaton over a batched
// core (the commit layer sits entirely on the promote/ack side, so it
// composes with batching unchanged).
func NewWithCommitBatched(p model.ProcID, n int, o BatchOptions) *CommitAutomaton {
	a := NewWithCommit(p, n)
	a.SetBatch(o)
	return a
}

// CommitBatchedFactory adapts NewWithCommitBatched to model.AutomatonFactory.
func CommitBatchedFactory(o BatchOptions) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return NewWithCommitBatched(p, n, o) }
}

// SetBatch installs the batch options. Must be called before the automaton
// takes its first step.
func (a *Automaton) SetBatch(o BatchOptions) {
	o = o.withDefaults()
	a.batch = o
	a.target = o.MaxBatch
	if o.Adaptive {
		a.target = 1
	}
}

// BatchStats returns the batching layer's counters.
func (a *Automaton) BatchStats() BatchStats {
	return BatchStats{
		Flushes:       a.flushes,
		FullFlushes:   a.fullFlushes,
		LingerFlushes: a.lingerFlushes,
		Ops:           a.batchedOps,
		Target:        a.target,
		Queued:        len(a.pending),
	}
}

// enqueue queues one broadcastETOB invocation and flushes if the queue
// reached the current target.
func (a *Automaton) enqueue(ctx model.Context, id string, deps []string) {
	if a.cg.Has(id) || a.inQueue(id) {
		return // duplicate broadcast of the same ID: ignore, as unbatched does
	}
	if deps != nil {
		deps = append([]string(nil), deps...) // callers may reuse their slice
	}
	a.pending = append(a.pending, pendingOp{id: id, deps: deps})
	a.batchedOps++
	if len(a.pending) >= a.target {
		a.flush(ctx, true)
	}
}

// inQueue reports whether id is already waiting for a flush. The queue is
// bounded by the batch target, so the linear scan is cheaper than keeping a
// set in sync.
func (a *Automaton) inQueue(id string) bool {
	for i := range a.pending {
		if a.pending[i].id == id {
			return true
		}
	}
	return false
}

// flush applies every queued op to CG_i in submission order and broadcasts
// one update(CG_i). full reports whether the flush was triggered by queue
// depth (as opposed to linger), which is what the adaptive controller feeds
// on.
func (a *Automaton) flush(ctx model.Context, full bool) {
	if len(a.pending) == 0 {
		return
	}
	flushed := len(a.pending)
	var ids []string
	if a.onFlush != nil {
		ids = make([]string, 0, flushed)
	}
	var gops []GossipOp
	if a.gossip.Enabled() {
		gops = make([]GossipOp, 0, flushed)
	}
	for i := range a.pending {
		op := &a.pending[i]
		deps := op.deps
		if deps == nil {
			deps = a.frontier()
		}
		a.updateCG(op.id, deps)
		if ids != nil {
			ids = append(ids, op.id)
		}
		if gops != nil {
			// deps is either frontier()'s fresh slice or the copy enqueue
			// made, so the rumor can own it past this step.
			gops = append(gops, GossipOp{ID: op.id, Deps: deps})
		}
	}
	a.pending = a.pending[:0]
	a.linger = 0
	a.flushes++
	if full {
		a.fullFlushes++
	} else {
		a.lingerFlushes++
	}
	if gops != nil {
		a.emitGossip(ctx, gops)
	} else {
		ctx.Broadcast(UpdateMsg{CG: a.cg.Clone()})
	}
	if a.onFlush != nil {
		a.onFlush(ids)
	}
	if a.batch.Adaptive {
		a.adapt(full, flushed)
	}
}

// adapt is the AIMD controller: additive increase on queue-depth pressure,
// halving decrease when linger forces out a batch that filled to under half
// the target (see BatchOptions.Adaptive).
func (a *Automaton) adapt(full bool, flushed int) {
	switch {
	case full:
		if a.target < a.batch.MaxBatch {
			a.target++
		}
	case flushed*2 < a.target:
		a.target /= 2
		if a.target < 1 {
			a.target = 1
		}
	}
}

// tickBatch runs the linger half of the flush policy; called at the start of
// every Tick, before the promote step.
func (a *Automaton) tickBatch(ctx model.Context) {
	if len(a.pending) == 0 {
		return
	}
	a.linger++
	if a.linger >= a.batch.MaxLinger {
		a.flush(ctx, false)
	}
}
