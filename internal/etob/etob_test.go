package etob

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// scheduleBroadcasts schedules perProc broadcasts from every process, spaced
// by gap, starting at t0. IDs are "<proc>#<seq>"; deps are protocol-computed.
func scheduleBroadcasts(k *sim.Kernel, n, perProc int, t0, gap model.Time) {
	for i := 0; i < perProc; i++ {
		for _, p := range model.Procs(n) {
			id := fmt.Sprintf("p%d#%d", p, i+1)
			k.ScheduleInput(p, t0+model.Time(i)*gap+model.Time(p), model.BroadcastInput{ID: id})
		}
	}
}

func runETOB(t *testing.T, fp *model.FailurePattern, det fd.Detector, perProc int, horizon model.Time, seed int64) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder(fp.N())
	k := sim.New(fp, det, Factory(), sim.Options{Seed: seed})
	k.SetObserver(rec)
	scheduleBroadcasts(k, fp.N(), perProc, 20, 40)
	k.Run(horizon)
	return rec
}

func TestETOBStableLeaderIsStrongTOB(t *testing.T) {
	// §5 property 2: if Ω outputs the same leader at all processes from the
	// very beginning, Algorithm 5 implements (strong) total order broadcast.
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	rec := runETOB(t, fp, det, 5, 8000, 11)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{InputCutoff: 4000, SettleTime: 6000})
	if !rep.OK() {
		t.Fatalf("ETOB spec violated: %+v", rep)
	}
	if !rep.StrongTOB() {
		t.Fatalf("stable Ω must give strong TOB (τ=0); got τ=%d (stab %d, order %d)",
			rep.Tau, rep.StabilityTau, rep.TotalOrderTau)
	}
	// All 15 messages delivered everywhere.
	for _, p := range fp.Correct() {
		if got := len(rec.FinalSeq(p)); got != 15 {
			t.Errorf("%v delivered %d messages, want 15", p, got)
		}
	}
}

func TestETOBEventualLeaderConverges(t *testing.T) {
	// Self-trust until t=1500: every process promotes its own ordering, so
	// sequences diverge, then converge on the eventual leader's order.
	fp := model.NewFailurePattern(4)
	det := fd.NewOmegaEventual(fp, 2, 1500)
	rec := runETOB(t, fp, det, 4, 15000, 23)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{InputCutoff: 4000, SettleTime: 10000})
	if !rep.OK() {
		t.Fatalf("ETOB spec violated: %+v", rep)
	}
	if rep.Tau == 0 {
		t.Error("expected a nonzero stabilization time with diverging leaders")
	}
	if rep.Tau > 3000 {
		t.Errorf("τ = %d, expected convergence shortly after Ω stabilizes at 1500", rep.Tau)
	}
	// Final sequences identical across correct processes.
	ref := rec.FinalSeq(1)
	for _, p := range fp.Correct() {
		got := rec.FinalSeq(p)
		if len(got) != len(ref) {
			t.Fatalf("%v final length %d != %d", p, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%v final seq diverges at %d: %v vs %v", p, i, got, ref)
			}
		}
	}
	t.Logf("τ = %d (Ω stabilized at 1500)", rep.Tau)
}

func TestETOBMinorityCorrectStillProgresses(t *testing.T) {
	// The headline: no correct majority needed. 2 correct of 5.
	fp := model.NewFailurePattern(5)
	fp.Crash(3, 900)
	fp.Crash(4, 950)
	fp.Crash(5, 1000)
	det := fd.NewOmegaEventual(fp, 1, 1200)
	rec := runETOB(t, fp, det, 4, 15000, 31)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{InputCutoff: 800, SettleTime: 10000})
	if !rep.OK() {
		t.Fatalf("ETOB with minority correct: %+v", rep)
	}
	// Messages broadcast by correct processes before the crashes must be
	// delivered by both correct processes.
	for _, p := range fp.Correct() {
		if got := len(rec.FinalSeq(p)); got < 8 {
			t.Errorf("%v delivered only %d messages", p, got)
		}
	}
}

func TestETOBCausalOrderDuringDisagreement(t *testing.T) {
	// §5 property 3: TOB-Causal-Order holds at ALL times, even while Ω
	// outputs different leaders (split-brain until t=2000).
	fp := model.NewFailurePattern(4)
	det := fd.NewOmegaSplit(fp, 1, 2, 1, 2000)
	rec := trace.NewRecorder(4)
	k := sim.New(fp, det, Factory(), sim.Options{Seed: 77})
	k.SetObserver(rec)
	// Causal chains: a1 <- a2 <- a3 on p1; b1 <- b2 on p3; cross dep c1 on a2,b1.
	k.ScheduleInput(1, 20, model.BroadcastInput{ID: "a1"})
	k.ScheduleInput(1, 120, model.BroadcastInput{ID: "a2", Deps: []string{"a1"}})
	k.ScheduleInput(1, 240, model.BroadcastInput{ID: "a3", Deps: []string{"a2"}})
	k.ScheduleInput(3, 50, model.BroadcastInput{ID: "b1"})
	k.ScheduleInput(3, 180, model.BroadcastInput{ID: "b2", Deps: []string{"b1"}})
	k.ScheduleInput(2, 400, model.BroadcastInput{ID: "c1", Deps: []string{"a2", "b1"}})
	k.Run(10000)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{SettleTime: 8000})
	if !rep.CausalOrder.OK {
		t.Fatalf("causal order violated during split-brain: %v", rep.CausalOrder.Violations)
	}
	if !rep.OK() {
		t.Fatalf("ETOB spec: %+v", rep)
	}
}

func TestETOBAutoDepsRespectLocalOrder(t *testing.T) {
	// With protocol-computed deps, "p sent m1 then m2" must order m1 before
	// m2 in every delivered sequence (→_R case 1).
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 2)
	rec := runETOB(t, fp, det, 6, 9000, 5)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{InputCutoff: 5000, SettleTime: 7000})
	if !rep.CausalOrder.OK {
		t.Fatalf("auto-deps causal order: %v", rep.CausalOrder.Violations)
	}
	// Check explicitly: p1#1 before p1#2 before p1#3... in the final order.
	fin := rec.FinalSeq(1)
	pos := map[string]int{}
	for i, id := range fin {
		pos[id] = i
	}
	for _, p := range model.Procs(3) {
		for i := 1; i < 6; i++ {
			a, b := fmt.Sprintf("p%d#%d", p, i), fmt.Sprintf("p%d#%d", p, i+1)
			pa, oka := pos[a]
			pb, okb := pos[b]
			if !oka || !okb {
				t.Fatalf("missing %s or %s in final sequence %v", a, b, fin)
			}
			if pa > pb {
				t.Errorf("sender order violated: %s at %d after %s at %d", a, pa, b, pb)
			}
		}
	}
}

func TestETOBNoDuplicationNoCreation(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaRotating(fp, 1, 1000, 50)
	rec := runETOB(t, fp, det, 5, 12000, 13)
	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{SettleTime: 9000})
	if !rep.NoCreation.OK {
		t.Errorf("no-creation: %v", rep.NoCreation.Violations)
	}
	if !rep.NoDuplication.OK {
		t.Errorf("no-duplication: %v", rep.NoDuplication.Violations)
	}
}

func TestETOBDuplicateBroadcastIgnored(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	rec := trace.NewRecorder(2)
	k := sim.New(fp, det, Factory(), sim.Options{Seed: 2})
	k.SetObserver(rec)
	k.ScheduleInput(1, 10, model.BroadcastInput{ID: "dup"})
	k.ScheduleInput(1, 30, model.BroadcastInput{ID: "dup"}) // same ID again
	k.Run(2000)
	fin := rec.FinalSeq(2)
	count := 0
	for _, id := range fin {
		if id == "dup" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate broadcast delivered %d times: %v", count, fin)
	}
}

func TestETOBLeaderOnlyPromotes(t *testing.T) {
	// A non-leader must never install its own promote into d_i of others.
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 3)
	rec := runETOB(t, fp, det, 3, 6000, 17)
	// d_i snapshots must all be prefixes of p3's final promote order.
	for _, p := range fp.Correct() {
		for _, pt := range rec.Seqs(p) {
			fin := rec.FinalSeq(p)
			for i, id := range pt.Seq {
				if i < len(fin) && fin[i] != id {
					t.Fatalf("%v snapshot %v not prefix of final %v (stable leader)", p, pt.Seq, fin)
				}
			}
		}
	}
}

func TestETOBInspectionHelpers(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	k := sim.New(fp, det, Factory(), sim.Options{Seed: 4})
	k.ScheduleInput(2, 10, model.BroadcastInput{ID: "m1"})
	k.Run(2000)
	a := k.Automaton(1).(*Automaton)
	if a.KnownMessages() != 1 {
		t.Errorf("KnownMessages = %d, want 1", a.KnownMessages())
	}
	if got := a.Promote(); len(got) != 1 || got[0] != "m1" {
		t.Errorf("Promote = %v", got)
	}
	if got := a.Delivered(); len(got) != 1 || got[0] != "m1" {
		t.Errorf("Delivered = %v", got)
	}
}
