package etob

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// eventLog records every kernel event as a formatted line: two runs with
// identical logs took bit-for-bit identical steps (same sends, same payload
// encodings, same deliveries, same outputs, same times).
type eventLog struct {
	sim.NopObserver
	lines []string
	sends int
}

func (l *eventLog) OnSend(t model.Time, m sim.Message) {
	l.sends++
	l.lines = append(l.lines, fmt.Sprintf("send %d %v->%v @%d %v", m.ID, m.From, m.To, t, m.Payload))
}

func (l *eventLog) OnDeliver(t model.Time, m sim.Message) {
	l.lines = append(l.lines, fmt.Sprintf("dlv %d %v->%v @%d %v", m.ID, m.From, m.To, t, m.Payload))
}

func (l *eventLog) OnOutput(p model.ProcID, t model.Time, v any) {
	l.lines = append(l.lines, fmt.Sprintf("out %v @%d %v", p, t, v))
}

// runLogged runs a fixed broadcast schedule under the given factory and
// returns the full event log.
func runLogged(fp *model.FailurePattern, factory model.AutomatonFactory, seed int64) *eventLog {
	det := fd.NewOmegaStable(fp, 1)
	log := &eventLog{}
	k := sim.New(fp, det, factory, sim.Options{Seed: seed})
	k.SetObserver(log)
	scheduleBroadcasts(k, fp.N(), 5, 20, 40)
	k.Run(8000)
	return log
}

func TestBatchK1TraceIdentity(t *testing.T) {
	// The degeneration guarantee behind the golden tables: MaxBatch=1 (and
	// the zero value) must take the historical immediate path, producing an
	// event stream identical to the unbatched automaton's, event for event.
	fp := model.NewFailurePattern(3)
	base := runLogged(fp, Factory(), 9)
	for _, o := range []BatchOptions{{}, {MaxBatch: 1}, {MaxBatch: 1, MaxLinger: 5}} {
		got := runLogged(model.NewFailurePattern(3), BatchedFactory(o), 9)
		if len(got.lines) != len(base.lines) {
			t.Fatalf("%+v: %d events vs %d unbatched", o, len(got.lines), len(base.lines))
		}
		for i := range base.lines {
			if got.lines[i] != base.lines[i] {
				t.Fatalf("%+v: event %d diverges:\n  batched:   %s\n  unbatched: %s", o, i, got.lines[i], base.lines[i])
			}
		}
	}
}

func TestBatchCoalescesAndStaysConformant(t *testing.T) {
	// k=4 with a linger bound: the same workload must (a) still satisfy the
	// full ETOB spec, (b) deliver every message everywhere, and (c) do it
	// with materially fewer update broadcasts than k=1.
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	log := &eventLog{}
	rec := trace.NewRecorder(3)
	k := sim.New(fp, det, BatchedFactory(BatchOptions{MaxBatch: 4, MaxLinger: 2}), sim.Options{Seed: 9})
	k.SetObserver(teeObserver{log, rec})
	// Burst submissions: 5 ops per process at the SAME tick so batches fill.
	for i := 0; i < 5; i++ {
		for _, p := range model.Procs(3) {
			k.ScheduleInput(p, model.Time(20+p), model.BroadcastInput{ID: fmt.Sprintf("p%d#%d", p, i+1)})
		}
	}
	k.Run(8000)

	rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{InputCutoff: 4000, SettleTime: 6000})
	if !rep.OK() {
		t.Fatalf("batched ETOB violates the spec: %+v", rep)
	}
	for _, p := range fp.Correct() {
		if got := len(rec.FinalSeq(p)); got != 15 {
			t.Errorf("%v delivered %d messages, want 15", p, got)
		}
	}

	base := runBurst(fp.N(), Factory(), 9)
	for _, p := range model.Procs(3) {
		st := k.Automaton(p).(*Automaton).BatchStats()
		if st.Queued != 0 {
			t.Errorf("%v still has %d queued ops after the run", p, st.Queued)
		}
		if st.Ops != 5 {
			t.Errorf("%v batched %d ops, want 5", p, st.Ops)
		}
		if st.Flushes >= st.Ops {
			t.Errorf("%v: %d flushes for %d ops — nothing coalesced", p, st.Flushes, st.Ops)
		}
	}
	if log.sends >= base.sends {
		t.Errorf("batched run sent %d messages, unbatched %d — batching must shrink the send count", log.sends, base.sends)
	}
	t.Logf("sends: %d batched vs %d unbatched", log.sends, base.sends)
}

// runBurst mirrors the burst schedule of TestBatchCoalescesAndStaysConformant.
func runBurst(n int, factory model.AutomatonFactory, seed int64) *eventLog {
	fp := model.NewFailurePattern(n)
	det := fd.NewOmegaStable(fp, 1)
	log := &eventLog{}
	k := sim.New(fp, det, factory, sim.Options{Seed: seed})
	k.SetObserver(log)
	for i := 0; i < 5; i++ {
		for _, p := range model.Procs(n) {
			k.ScheduleInput(p, model.Time(20+p), model.BroadcastInput{ID: fmt.Sprintf("p%d#%d", p, i+1)})
		}
	}
	k.Run(8000)
	return log
}

// teeObserver fans kernel events out to two observers.
type teeObserver struct{ a, b sim.Observer }

func (t teeObserver) OnSend(tm model.Time, m sim.Message)            { t.a.OnSend(tm, m); t.b.OnSend(tm, m) }
func (t teeObserver) OnDeliver(tm model.Time, m sim.Message)         { t.a.OnDeliver(tm, m); t.b.OnDeliver(tm, m) }
func (t teeObserver) OnOutput(p model.ProcID, tm model.Time, v any)  { t.a.OnOutput(p, tm, v); t.b.OnOutput(p, tm, v) }
func (t teeObserver) OnInput(p model.ProcID, tm model.Time, v any)   { t.a.OnInput(p, tm, v); t.b.OnInput(p, tm, v) }

func TestBatchIntraBatchCausality(t *testing.T) {
	// Ops queued in one batch with nil deps must chain causally: the flush
	// resolves op k's deps to the frontier AFTER op k-1's UpdateCG.
	a := NewBatched(1, 2, BatchOptions{MaxBatch: 3})
	ctx := &fakeCtx{}
	a.Init(ctx)
	a.Input(ctx, model.BroadcastInput{ID: "m1"})
	a.Input(ctx, model.BroadcastInput{ID: "m2"})
	if got := a.cg.Len(); got != 0 {
		t.Fatalf("CG has %d nodes before the flush, want 0", got)
	}
	a.Input(ctx, model.BroadcastInput{ID: "m3"}) // fills the batch → flush
	if got := a.cg.Len(); got != 3 {
		t.Fatalf("CG has %d nodes after the flush, want 3", got)
	}
	if !a.cg.HasEdge("m2", "m1") || !a.cg.HasEdge("m3", "m2") {
		t.Errorf("intra-batch causal chain missing: deps(m2)=%v deps(m3)=%v", a.cg.Deps("m2"), a.cg.Deps("m3"))
	}
	if got := len(ctx.broadcasts); got != 1 {
		t.Fatalf("%d broadcasts for a 3-op batch, want 1", got)
	}
	if _, ok := ctx.broadcasts[0].(UpdateMsg); !ok {
		t.Fatalf("flush broadcast a %T, want UpdateMsg", ctx.broadcasts[0])
	}
}

func TestBatchLingerFlush(t *testing.T) {
	// An op never waits more than MaxLinger ticks: a half-full batch flushes
	// on the linger deadline.
	a := NewBatched(1, 2, BatchOptions{MaxBatch: 8, MaxLinger: 2})
	ctx := &fakeCtx{}
	a.Init(ctx)
	countUpdates := func() int {
		n := 0
		for _, b := range ctx.broadcasts {
			if _, ok := b.(UpdateMsg); ok {
				n++
			}
		}
		return n
	}
	a.Input(ctx, model.BroadcastInput{ID: "solo"})
	a.Tick(ctx) // linger 1 (the leader's PromoteMsg broadcasts don't count)
	if countUpdates() != 0 {
		t.Fatalf("flushed after 1 tick with MaxLinger=2")
	}
	a.Tick(ctx) // linger 2 → flush
	if !a.cg.Has("solo") {
		t.Fatal("linger deadline passed but the op never flushed")
	}
	if countUpdates() != 1 {
		t.Fatalf("%d UpdateMsg broadcasts after the linger flush, want 1", countUpdates())
	}
}

func TestBatchDuplicateIDIgnored(t *testing.T) {
	a := NewBatched(1, 2, BatchOptions{MaxBatch: 4})
	ctx := &fakeCtx{}
	a.Init(ctx)
	a.Input(ctx, model.BroadcastInput{ID: "dup"})
	a.Input(ctx, model.BroadcastInput{ID: "dup"}) // queued duplicate
	if st := a.BatchStats(); st.Queued != 1 || st.Ops != 1 {
		t.Fatalf("queued duplicate accepted: %+v", st)
	}
	a.Tick(ctx) // flush "dup" into the graph
	a.Input(ctx, model.BroadcastInput{ID: "dup"}) // already-flushed duplicate
	if st := a.BatchStats(); st.Queued != 0 || st.Ops != 1 {
		t.Fatalf("flushed duplicate re-queued: %+v", st)
	}
}

func TestBatchAdaptiveAIMD(t *testing.T) {
	// The controller climbs by one per full flush and halves on a linger
	// flush that filled to under half the target.
	a := NewBatched(1, 2, BatchOptions{Adaptive: true, MaxBatch: 8, MaxLinger: 1})
	ctx := &fakeCtx{}
	a.Init(ctx)
	if a.target != 1 {
		t.Fatalf("adaptive target starts at %d, want 1", a.target)
	}
	// Sustained pressure: submit until the window fills and flushes (the
	// flush empties the queue, so each fill ends on a full flush exactly).
	next := 0
	fill := func() {
		start := a.flushes
		for a.flushes == start {
			next++
			a.Input(ctx, model.BroadcastInput{ID: fmt.Sprintf("m%d", next)})
		}
	}
	for i := 0; i < 4; i++ {
		fill() // full flush → +1
	}
	if a.target != 5 {
		t.Fatalf("after 4 full flushes target = %d, want 5", a.target)
	}
	for i := 0; i < 10; i++ {
		fill()
	}
	if a.target != 8 {
		t.Fatalf("target %d exceeded or never reached the MaxBatch cap 8", a.target)
	}
	// Starvation: one lone op lingers out at 1 < 8/2 → halve.
	next++
	a.Input(ctx, model.BroadcastInput{ID: fmt.Sprintf("m%d", next)})
	a.Tick(ctx)
	if a.target != 4 {
		t.Fatalf("after a starved linger flush target = %d, want 4", a.target)
	}
	// Repeated starvation settles at 2: halving needs the flush to fill to
	// UNDER half the target, and 1 op is exactly half of 2 — batching stays
	// armed instead of disabling itself.
	for i := 0; i < 6; i++ {
		next++
		a.Input(ctx, model.BroadcastInput{ID: fmt.Sprintf("m%d", next)})
		a.Tick(ctx)
	}
	if a.target != 2 {
		t.Fatalf("repeated starvation target = %d, want 2", a.target)
	}
}

func TestBatchCommitComposition(t *testing.T) {
	// The commit layer rides on the batched core: a batched CommitAutomaton
	// cluster still commits every op.
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	k := sim.New(fp, det, CommitBatchedFactory(BatchOptions{MaxBatch: 3, MaxLinger: 2}), sim.Options{Seed: 21})
	for i := 0; i < 6; i++ {
		for _, p := range model.Procs(3) {
			k.ScheduleInput(p, model.Time(20+p), model.BroadcastInput{ID: fmt.Sprintf("c%d#%d", p, i)})
		}
	}
	k.Run(10000)
	for _, p := range fp.Correct() {
		ca := k.Automaton(p).(*CommitAutomaton)
		if got := ca.Committed(); got != 18 {
			t.Errorf("%v committed %d ops, want 18", p, got)
		}
		if st := ca.BatchStats(); st.Flushes >= st.Ops {
			t.Errorf("%v commit stack never coalesced: %+v", p, st)
		}
	}
}

// fakeCtx is a minimal model.Context for driving an automaton directly.
type fakeCtx struct {
	broadcasts []any
	outputs    []any
}

func (c *fakeCtx) Self() model.ProcID     { return 1 }
func (c *fakeCtx) N() int                 { return 2 }
func (c *fakeCtx) Now() model.Time        { return 0 }
func (c *fakeCtx) FD() any                { return model.ProcID(1) }
func (c *fakeCtx) Send(model.ProcID, any) {}
func (c *fakeCtx) Broadcast(v any)        { c.broadcasts = append(c.broadcasts, v) }
func (c *fakeCtx) Output(v any)           { c.outputs = append(c.outputs, v) }
