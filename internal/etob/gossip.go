package etob

import (
	"sort"

	"repro/internal/gossip"
	"repro/internal/model"
)

// This file is the gossip dissemination mode of Algorithm 5: replacing the
// "send update(CG_i) to all" of each flush with epidemic forwarding of graph
// DELTAS to a seeded O(log n) peer sample. Why this preserves ETOB:
//
//   - The protocol's obligations (§5, Lemma 3) only need every broadcast to
//     EVENTUALLY enter every correct process's CG_j — update messages carry
//     monotone state, so WHEN and VIA WHOM an op arrives is irrelevant to
//     safety, and eventual arrival is all the liveness proof uses.
//   - TOB-Causal-Order rests on every CG_j staying dependency-closed. A full
//     update(CG_i) is closed by construction; a delta is not, so receivers
//     absorb a delta op only when all its dependencies are already present
//     and DROP it otherwise (recvGossip) — the closed-graph invariant that
//     UpdatePromote's correctness needs is maintained unconditionally, and
//     the dropped op is re-learned later from the repair channel.
//   - Eventual delivery is guaranteed (not just w.h.p.) by the anti-entropy
//     pass: every AntiEntropyEvery ticks each process sends a DIGEST — the
//     sorted ID set of its graph, no edges, no values — to the next
//     round-robin peer. The peer answers with exactly the ops the digester
//     lacks (a delta, in insertion order, each op with its resolved deps),
//     absorbed through the same closure-checked recvGossip path at an age
//     past MaxAge so repairs are never re-rumored. Graphs are monotone and
//     the rotation visits every peer, so for any op m held by a correct q,
//     every correct p digests to q within one rotation and q repairs p:
//     every op reaches every correct process within O(n) anti-entropy
//     periods even if its rumor died out immediately — and the repair
//     channel ships deltas, never the full O(ops + edges) graph the
//     all-to-all mode broadcasts.
//
// Cost: a flush costs Fanout = ceil(log2 n)+1 envelopes instead of n−1, each
// carrying only the flushed ops instead of the whole graph; forwarding is
// novelty-gated (only ops that were new to the forwarder travel on) and
// tick-coalesced (one sample per tick, not per reception), and rumor aging
// (MaxAge hops) bounds the epidemic phase at O(fanout · log n) envelopes per
// op systemwide. The En experiment in internal/bench measures the realized
// envelope counts against the n−1 column.
//
// Promote dissemination is unchanged: only the current leader broadcasts
// promote_i, which is O(n) envelopes per timeout systemwide — not the n²
// term — and promote adoption is guarded by "from the leader I trust", which
// relayed copies would break.
//
// With gossip disabled (the zero gossip.Options), none of this code runs and
// every trace is byte-identical to the pre-gossip automaton — pinned by the
// golden tables and TestGossipOffByteIdentical.

// GossipOp is one broadcastETOB invocation as it travels inside a rumor:
// the op and its resolved direct dependencies (deps resolve at flush, so a
// rumor is self-describing and the receiver can check closure locally).
type GossipOp struct {
	ID   string
	Deps []string
}

// GossipMsg is a rumor: a delta of ops, plus the hop age used for rumor
// retirement. Receivers absorb what is dependency-closed, then re-forward
// (tick-coalesced) what was novel to them while Age+1 <= MaxAge. Anti-entropy
// repairs travel as GossipMsg too, at Age = MaxAge so they never re-rumor.
type GossipMsg struct {
	Ops []GossipOp
	Age int
}

// DigestMsg is the anti-entropy probe: the sorted ID set of the sender's
// causality graph. The receiver answers with the delta the sender lacks.
type DigestMsg struct {
	IDs []string
}

// GossipStats counts the gossip layer's traffic at one automaton.
type GossipStats struct {
	// Rumors is the number of rumor emissions (each costs Fanout envelopes):
	// flush-originated plus forwarded.
	Rumors int64
	// AntiEntropy is the number of digest probes sent; Repairs is the number
	// of delta responses sent back to a digesting peer.
	AntiEntropy int64
	Repairs     int64
	// OpsAbsorbed counts delta ops applied on reception; OpsDropped counts
	// delta ops discarded for missing dependencies (left to anti-entropy).
	OpsAbsorbed int64
	OpsDropped  int64
}

// SetGossip installs the gossip dissemination mode. Must be called before
// the automaton takes its first step; the zero Options disables gossip.
func (a *Automaton) SetGossip(o gossip.Options) {
	if !o.Enabled() {
		a.gossip = gossip.Options{}
		a.sampler = nil
		return
	}
	o = o.WithDefaults(a.n)
	a.gossip = o
	a.sampler = gossip.NewSampler(a.self, a.n, o)
}

// GossipStats returns the gossip layer's counters.
func (a *Automaton) GossipStats() GossipStats { return a.gstats }

// GossipFactory adapts New + SetGossip (and optionally SetBatch) to
// model.AutomatonFactory.
func GossipFactory(b BatchOptions, g gossip.Options) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton {
		a := New(p, n)
		a.SetBatch(b)
		a.SetGossip(g)
		return a
	}
}

// CommitGossipFactory is GossipFactory over the committed-prefix automaton.
func CommitGossipFactory(b BatchOptions, g gossip.Options) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton {
		a := NewWithCommit(p, n)
		a.SetBatch(b)
		a.SetGossip(g)
		return a
	}
}

// emitGossip disseminates freshly flushed ops as an age-0 rumor to a seeded
// peer sample. It replaces the flush path's ctx.Broadcast(UpdateMsg) — and,
// because gossip sends no self-copy, it extends promote_i locally (in
// broadcast mode the sender's own update delivery did that).
func (a *Automaton) emitGossip(ctx model.Context, ops []GossipOp) {
	msg := GossipMsg{Ops: ops}
	for _, q := range a.sampler.Sample() {
		ctx.Send(q, msg)
	}
	a.gstats.Rumors++
	a.updatePromote()
}

// recvGossip absorbs a rumor: each op is applied iff all its dependencies
// are already in CG_i (keeping the graph dependency-closed; see the file
// comment), and ops that were novel here are queued for one tick-coalesced
// re-forward at Age+1 while the rumor is young enough.
func (a *Automaton) recvGossip(m GossipMsg) {
	novel := false
	forward := m.Age+1 <= a.gossip.MaxAge
	for _, op := range m.Ops {
		if a.cg.Has(op.ID) {
			continue
		}
		closed := true
		for _, d := range op.Deps {
			if !a.cg.Has(d) {
				closed = false
				break
			}
		}
		if !closed {
			a.gstats.OpsDropped++
			continue
		}
		a.updateCG(op.ID, op.Deps)
		a.gstats.OpsAbsorbed++
		novel = true
		if forward {
			a.fresh = append(a.fresh, op)
			if m.Age > a.freshAge {
				a.freshAge = m.Age
			}
		}
	}
	if novel {
		a.updatePromote()
	}
}

// tickGossip runs once per local timeout before the promote step: it
// re-forwards the tick's accumulated novel ops as one aged rumor, and every
// AntiEntropyEvery ticks sends a graph digest to the next round-robin peer
// (the deterministic repair channel).
func (a *Automaton) tickGossip(ctx model.Context) {
	if len(a.fresh) > 0 {
		msg := GossipMsg{Ops: a.fresh, Age: a.freshAge + 1}
		for _, q := range a.sampler.Sample() {
			ctx.Send(q, msg)
		}
		a.gstats.Rumors++
		a.fresh = nil
		a.freshAge = 0
	}
	a.aeTick++
	if a.aeTick >= a.gossip.AntiEntropyEvery {
		a.aeTick = 0
		if q, ok := a.sampler.NextPeer(); ok {
			ids := a.cg.Nodes()
			sort.Strings(ids)
			ctx.Send(q, DigestMsg{IDs: ids})
			a.gstats.AntiEntropy++
		}
	}
}

// recvDigest answers an anti-entropy probe with the ops the digesting peer
// lacks. The delta walks the graph in insertion order — topological whenever
// broadcasters respect C(m) ⊆ CG_i, which Algorithm 5 requires — so the
// peer's closure check absorbs it front to back; anything out of order is
// dropped there and repaired on a later rotation. Age starts at MaxAge so
// repairs are never re-rumored: anti-entropy traffic stays one digest plus
// one delta per period, independent of fanout.
func (a *Automaton) recvDigest(ctx model.Context, from model.ProcID, m DigestMsg) {
	has := make(map[string]bool, len(m.IDs))
	for _, id := range m.IDs {
		has[id] = true
	}
	var delta []GossipOp
	for _, id := range a.cg.Nodes() {
		if !has[id] {
			delta = append(delta, GossipOp{ID: id, Deps: a.cg.Deps(id)})
		}
	}
	if len(delta) > 0 {
		ctx.Send(from, GossipMsg{Ops: delta, Age: a.gossip.MaxAge})
		a.gstats.Repairs++
	}
}
