// Package etob implements the paper's ETOB protocol (Algorithm 5, §5):
// eventual total order broadcast directly from Ω, in any environment.
//
// Protocol sketch (per process p_i):
//
//	On broadcastETOB(m, C(m)):
//	    UpdateCG(m, C(m)); send update(CG_i) to all
//	On reception of update(CG_j):
//	    UnionCG(CG_j); UpdatePromote()
//	On reception of promote(promote_j) from p_j:
//	    if Ω_i = p_j then d_i := promote_j
//	On local timeout:
//	    if Ω_i = p_i then send promote(promote_i) to all
//
// The three headline properties (Lemma 3 and §5 discussion), all exercised by
// the experiments in internal/bench:
//
//  1. A broadcast is stably delivered after two communication steps when the
//     leader is stable (update to the leader, promote from the leader) —
//     strong TOB needs three in the worst case [Lamport, DC 2006].
//  2. If Ω outputs the same leader at every process from the very beginning,
//     the protocol implements (strong) total order broadcast.
//  3. TOB-Causal-Order holds at all times, even while Ω outputs different
//     leaders at different processes.
//
// A batching layer (batch.go, BatchOptions) coalesces k pending
// broadcastETOB invocations into one update(CG_i) message — same wire
// vocabulary, same receiver logic, ~k× fewer broadcasts — under a
// max-batch-size + max-linger flush policy with an optional AIMD self-tuning
// target; at k=1 it degenerates bit-for-bit to the unbatched automaton. See
// the flush-policy contract in batch.go.
//
// A gossip dissemination mode (gossip.go, GossipFactory + gossip.Options)
// replaces the all-to-all update(CG_i) broadcast for clusters with n in the
// hundreds: a flush sends op deltas to a seeded sample of Fanout =
// ceil(log2 n)+1 peers instead of n−1, receivers re-forward novel ops with
// an age bound of ceil(log2 n) hops, and a digest-based anti-entropy
// rotation repairs whatever the epidemic missed. Eventual delivery of every
// op to every correct process is all ETOB needs — the spec's delivery
// guarantees are themselves eventual, so a dissemination layer that
// guarantees eventual receipt (rumors for the fast path, anti-entropy for
// the tail) preserves Lemma 3 verbatim while cutting per-flush sender cost
// from O(n) to O(log n). With gossip disabled the factory is bit-identical
// to the plain path. See the layer contract in gossip.go.
package etob

import (
	"fmt"
	"sort"

	"repro/internal/causal"
	"repro/internal/fd"
	"repro/internal/gossip"
	"repro/internal/model"
)

// UpdateMsg is the update(CG_i) message: the sender's causality graph.
// Receivers only read the graph, so a single clone per send is safe.
type UpdateMsg struct {
	CG *causal.Graph
}

// PromoteMsg is the promote(promote_i) message: the leader's current
// promotion sequence. Counter is a per-sender monotone counter: links in the
// model are reliable but not FIFO, and adopting a stale promote after a newer
// one would shrink d_i and break (E)TOB-Stability. Receivers ignore promotes
// older than the last one adopted from the same sender — the standard fix,
// equivalent to the FIFO adoption the paper's Lemma 3 proof implicitly uses
// (it matches d_i(t1), d_i(t2) with promote_j(t3), promote_j(t4), t3 ≤ t4).
type PromoteMsg struct {
	Seq     []string
	Counter int64
}

// Automaton is the per-process automaton of Algorithm 5.
type Automaton struct {
	self model.ProcID
	n    int

	d       []string       // d_i: output sequence
	promote []string       // promote_i
	cg      *causal.Graph  // CG_i
	succ    map[string]int // # of known causal successors per message (frontier tracking)

	promoteCtr int64                  // counter stamped on our promote messages
	lastCtr    map[model.ProcID]int64 // highest promote counter adopted per sender

	// cgDirty is set when CG_i gained a node or edge since the last
	// UpdatePromote. Extend is a pure function of (graph, prefix) and
	// promote_i already contains every node after each UpdatePromote, so an
	// update that adds nothing would extend to the identical sequence —
	// skipping it is behavior-preserving and removes the dominant cost of
	// redundant update floods.
	cgDirty bool

	// Batching layer (batch.go): queued broadcastETOB invocations awaiting
	// one coalesced update(CG_i). Inert — never touched — unless
	// batch.Enabled().
	batch         BatchOptions
	pending       []pendingOp
	linger        int   // ticks the oldest queued op has waited
	target        int   // current batch-size target (fixed or adaptive)
	flushes       int64 // update broadcasts emitted by the batch layer
	fullFlushes   int64 // flushes triggered by queue depth
	lingerFlushes int64 // flushes forced by the linger timeout
	batchedOps    int64 // ops that went through the queue

	// onFlush, when set, is called with the op IDs each update(CG_i)
	// broadcast carries (the flushed batch, or the single op on the unbatched
	// path). Observability tap — see SetFlushHook.
	onFlush func(ids []string)

	// Gossip dissemination mode (gossip.go): epidemic forwarding of graph
	// deltas instead of all-to-all update broadcasts. Inert — never touched —
	// unless gossip.Enabled().
	gossip   gossip.Options
	sampler  *gossip.Sampler
	fresh    []GossipOp // novel ops awaiting one tick-coalesced re-forward
	freshAge int        // max incoming age among fresh (re-forward at +1)
	aeTick   int        // ticks since the last anti-entropy exchange
	gstats   GossipStats
}

var _ model.Automaton = (*Automaton)(nil)

// New returns the Algorithm 5 automaton for process p of n.
func New(p model.ProcID, n int) *Automaton {
	return &Automaton{
		self:    p,
		n:       n,
		cg:      causal.New(),
		succ:    make(map[string]int),
		lastCtr: make(map[model.ProcID]int64),
	}
}

// Factory adapts New to model.AutomatonFactory.
func Factory() model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return New(p, n) }
}

// Init implements model.Automaton.
func (a *Automaton) Init(model.Context) {}

// Input implements model.Automaton: a model.BroadcastInput is
// broadcastETOB(m, C(m)). A nil Deps asks the protocol to use the causal
// frontier of everything this process has seen (so that both "p sent m1 then
// m2" and "p received m1 then sent m2" of the →_R relation are captured).
func (a *Automaton) Input(ctx model.Context, in any) {
	b, ok := in.(model.BroadcastInput)
	if !ok {
		return
	}
	a.BroadcastETOB(ctx, b.ID, b.Deps)
}

// BroadcastETOB invokes broadcastETOB(m, C(m)) programmatically (used by the
// ETOB→EC transformation, which drives ETOB as a black box). With batching
// enabled (SetBatch) the op is queued for a coalesced update instead — see
// the flush-policy contract in batch.go.
func (a *Automaton) BroadcastETOB(ctx model.Context, id string, deps []string) {
	if a.batch.Enabled() {
		a.enqueue(ctx, id, deps)
		return
	}
	if a.cg.Has(id) {
		return // duplicate broadcast of the same ID: ignore
	}
	explicit := deps != nil
	if deps == nil {
		deps = a.frontier()
	}
	a.updateCG(id, deps)
	if a.gossip.Enabled() {
		if explicit {
			deps = append([]string(nil), deps...) // rumor outlives the step; callers may reuse their slice
		}
		a.emitGossip(ctx, []GossipOp{{ID: id, Deps: deps}})
	} else {
		ctx.Broadcast(UpdateMsg{CG: a.cg.Clone()})
	}
	if a.onFlush != nil {
		a.onFlush([]string{id})
	}
}

// SetFlushHook installs an observability tap called, from within the step
// that broadcasts, with the op IDs each update(CG_i) carries — the flushed
// batch, or the single op on the unbatched path. The node's op-lifecycle
// tracer stamps its batch-flush and broadcast stages here. The hook must not
// retain the slice.
func (a *Automaton) SetFlushHook(fn func(ids []string)) { a.onFlush = fn }

// Undelivered returns how many ops are known to CG_i but not yet in the
// output sequence d_i — the unresolved-dependency stall depth the eventual
// guarantees are draining.
func (a *Automaton) Undelivered() int {
	n := a.cg.Len() - len(a.d)
	if n < 0 {
		return 0
	}
	return n
}

// Recv implements model.Automaton.
func (a *Automaton) Recv(ctx model.Context, from model.ProcID, payload any) {
	switch m := payload.(type) {
	case UpdateMsg:
		a.unionCG(m.CG)
		a.updatePromote()
	case GossipMsg:
		a.recvGossip(m)
	case DigestMsg:
		a.recvDigest(ctx, from, m)
	case PromoteMsg:
		leader, ok := fd.LeaderOf(ctx.FD())
		if !ok || leader != from {
			return
		}
		if m.Counter <= a.lastCtr[from] {
			return // stale promote (links are not FIFO)
		}
		a.lastCtr[from] = m.Counter
		if !equalSeq(a.d, m.Seq) {
			a.d = append(a.d[:0:0], m.Seq...)
			ctx.Output(model.SeqSnapshot{Seq: a.d})
		}
	}
}

// Tick implements model.Automaton: the "local timeout" of Algorithm 5. With
// batching enabled, the linger half of the flush policy runs first, so a
// leader flushes its own queued ops before promoting.
func (a *Automaton) Tick(ctx model.Context) {
	if a.batch.Enabled() {
		a.tickBatch(ctx)
	}
	if a.gossip.Enabled() {
		a.tickGossip(ctx)
	}
	leader, ok := fd.LeaderOf(ctx.FD())
	if !ok || leader != a.self {
		return
	}
	a.promoteCtr++
	ctx.Broadcast(PromoteMsg{Seq: append([]string(nil), a.promote...), Counter: a.promoteCtr})
}

// updateCG is the paper's UpdateCG(m, C(m)). Successor counts advance once
// per edge that is new to CG_i, which AddReporting surfaces directly —
// missing succ keys read as zero, so no explicit zero entry is needed.
func (a *Automaton) updateCG(m string, deps []string) {
	if a.cg.AddReporting(m, deps, func(d string) { a.succ[d]++ }) {
		a.cgDirty = true
	}
}

// unionCG is the paper's UnionCG(CG_j), keeping frontier bookkeeping in sync.
func (a *Automaton) unionCG(other *causal.Graph) {
	if a.cg.MergeFrom(other, func(d string) { a.succ[d]++ }) {
		a.cgDirty = true
	}
}

// updatePromote is the paper's UpdatePromote(): extend promote_i to a
// sequence containing all of CG_i once, respecting every edge, with the old
// promote_i as a prefix. When CG_i has not changed since the last extension,
// promote_i already contains every node and Extend would return it unchanged.
func (a *Automaton) updatePromote() {
	if !a.cgDirty {
		return
	}
	next, err := a.cg.Extend(a.promote)
	if err != nil {
		// Cannot occur in Algorithm 5: update messages carry dependency-closed
		// graphs, so the promote prefix never violates a new edge. A failure
		// here is a protocol-invariant bug worth crashing the simulation for.
		panic(fmt.Sprintf("etob: UpdatePromote invariant violated at %v: %v", a.self, err))
	}
	a.promote = next
	a.cgDirty = false
}

// frontier returns the causal frontier: all known messages with no known
// successor, in deterministic (sorted) order. Used as the default C(m).
func (a *Automaton) frontier() []string {
	var out []string
	for _, m := range a.cg.Nodes() {
		if a.succ[m] == 0 {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// Delivered returns a copy of the current output variable d_i.
func (a *Automaton) Delivered() []string { return append([]string(nil), a.d...) }

// Promote returns a copy of the current promotion sequence promote_i.
func (a *Automaton) Promote() []string { return append([]string(nil), a.promote...) }

// KnownMessages returns the number of messages in CG_i.
func (a *Automaton) KnownMessages() int { return a.cg.Len() }

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
