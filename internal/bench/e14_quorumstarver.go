package bench

import (
	"repro/internal/sim"
	"repro/internal/sim/adversary"
)

// E14QuorumStarver is the E13 variant the ROADMAP's adversary-axis follow-on
// asked for: the leader-starving schedule against its QUORUM-FOLLOWER
// redirection (adversary.LeaderStarver with StarveQuorum — the ⌈n/2⌉
// lowest-id followers pinned at the bound, the leader spared), on E13's two
// canonical workloads over the identical [1, 60] delay support. The quorum
// mode is aimed at Σ-based baselines, where assembling an unstarved majority
// quorum is the primitive under attack; against the EC stack — whose
// convergence pipeline runs through the leader, not through quorums — it
// measures how much adversarial power is LOST by sparing the leader:
// starving everything around the pipeline's source is not the same as
// starving the source.
func E14QuorumStarver(opts Options) Table { return e14Spec(opts).run() }

// e14Schedulers names the two starvation targets over the same delay
// support. The order is the table's row order per workload.
func e14Schedulers() []struct {
	name string
	net  sim.NetworkFactory
} {
	return []struct {
		name string
		net  sim.NetworkFactory
	}{
		{"leader-aware", func() sim.NetworkModel { return &adversary.LeaderStarver{Min: 1, Max: 60} }},
		{"quorum-starve", func() sim.NetworkModel { return &adversary.LeaderStarver{Min: 1, Max: 60, StarveQuorum: true} }},
	}
}

// e14Spec decomposes E14 into one cell per (workload, starvation target),
// reusing E12/E13's cell bodies so the workloads are identical by
// construction and the leader-aware rows are directly comparable to E13's.
func e14Spec(opts Options) spec {
	s := spec{shell: Table{
		ID:     "E14",
		Title:  "Starvation target: current leader vs a quorum of followers",
		Claim:  "starving a quorum transversal of followers (Sigma's attack surface) while sparing the leader is a weaker adversary against the EC stack than starving the leader itself: the promotion pipeline's source outranks its audience",
		Header: []string{"workload", "scheduler", "converged", "converged at", "worst decision latency", "tau"},
		Notes: []string{
			"both schedulers are adversary.LeaderStarver over [1, 60] ticks; quorum-starve sets StarveQuorum, pinning every link touching the ceil(n/2) lowest-id non-leader processes — the smallest set intersecting every majority quorum — and running the leader's links on the ordinary greedy schedule",
			"the quorum mode is the ROADMAP follow-on aimed at Sigma-based baselines: a quorum primitive layered on these runs could never assemble an unstarved quorum, but EC's convergence is leader-routed, so the redirection measures what sparing the leader costs the adversary",
			"workloads and measurements are E13's: broadcast (E9's crash-free n=5 run) under stable delivery, transform (E3's Alg1 over Alg4, n=3) under ORDER convergence over an extended horizon",
			"EC still converges in every cell: both starvation targets are admissible (finite delays, every message delivered)",
		},
	}}
	msgs := 6
	if opts.Quick {
		msgs = 3
	}
	for _, sched := range e14Schedulers() {
		sched := sched
		s.cells = append(s.cells, func() cellOut {
			return schedulerBroadcastCell(opts, sched.name, sched.net, msgs)
		})
	}
	for _, sched := range e14Schedulers() {
		sched := sched
		s.cells = append(s.cells, func() cellOut {
			return e13TransformCell(opts, sched.name, sched.net)
		})
	}
	return s
}
