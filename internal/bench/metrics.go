package bench

import (
	"fmt"
	"io"
	"reflect"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// observe attaches a fresh metrics registry to one cell's kernel when
// Options.Metrics is on, and returns the scrape to run when the cell
// finishes (defer it right after sim.New). A metrics-on cell therefore pays
// exactly what a monitored run pays — registry construction, counter
// registration, and one end-of-run scrape (stack snapshot + Prometheus
// exposition) — and NOTHING per step, because the registry reads the
// counters the kernel and stack already maintain. The metrics-on/off
// comparison in MetricsCompare (the "metrics" section of BENCH_*.json, and
// the 5% gate in scripts/metrics_overhead.sh) exists to keep that claim
// honest. With Metrics off this is a no-op, so the default suite is
// unchanged.
func (o Options) observe(k *sim.Kernel) func() {
	if !o.Metrics {
		return func() {}
	}
	reg := obs.NewRegistry()
	k.RegisterMetrics(reg)
	return func() {
		// Proc 1 exists in every experiment topology; non-replica stacks
		// (echo, quorum baselines) register the parity set as zeros.
		core.CollectStackMetrics(reg, k.Automaton(1))
		if err := reg.WritePrometheus(io.Discard); err != nil {
			panic(fmt.Sprintf("bench: metrics exposition: %v", err))
		}
	}
}

// MetricsResult is one experiment's metrics-on/off comparison inside a
// Report: median cell time with the registry off and on, the delta, and
// whether that delta sits within the run's own repeat-to-repeat spread (plus
// a 0.5ms floor for experiments too small to have measurable spread) — the
// observability plane's overhead contract, measured.
type MetricsResult struct {
	ID           string  `json:"id"`
	OffMS        float64 `json:"off_ms"`
	OnMS         float64 `json:"on_ms"`
	DeltaMS      float64 `json:"delta_ms"`
	SpreadMS     float64 `json:"spread_ms"`
	WithinSpread bool    `json:"within_spread"`
}

// noiseFloorMS absorbs scheduler jitter on experiments whose whole cell time
// is microseconds: a sub-half-millisecond delta is below what wall-clock
// timing can attribute to the registry.
const noiseFloorMS = 0.5

// MetricsCompare runs the selected experiments twice with identical Runner
// settings — metrics registry off and on — and compares per-experiment cell
// times. The off and on runs of EACH experiment execute back to back
// (off(E1), on(E1), off(E2), ...) rather than as two whole-suite passes:
// on a shared 1-core host the machine drifts on a seconds scale, and a
// suite-apart pairing charges that drift to the registry. It errors if any
// experiment's TABLE differs between the runs: observation must never
// perturb results, only (boundedly) timing.
func MetricsCompare(r Runner, ids []string) ([]MetricsResult, error) {
	off, on := r, r
	off.Opts.Metrics = false
	on.Opts.Metrics = true
	if len(ids) == 0 {
		ids = IDs()
	}
	out := make([]MetricsResult, 0, len(ids))
	for _, id := range ids {
		offRes, err := off.Run([]string{id})
		if err != nil {
			return nil, err
		}
		onRes, err := on.Run([]string{id})
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(offRes[0].Table.Rows, onRes[0].Table.Rows) {
			return nil, fmt.Errorf("bench: %s rows differ with metrics on — observation perturbed the run",
				offRes[0].Table.ID)
		}
		mr := MetricsResult{
			ID:      offRes[0].Table.ID,
			OffMS:   ms(offRes[0].CellTime),
			OnMS:    ms(onRes[0].CellTime),
			DeltaMS: ms(onRes[0].CellTime - offRes[0].CellTime),
		}
		mr.SpreadMS = ms(offRes[0].CellSpread)
		if s := ms(onRes[0].CellSpread); s > mr.SpreadMS {
			mr.SpreadMS = s
		}
		delta := mr.DeltaMS
		if delta < 0 {
			delta = -delta
		}
		mr.WithinSpread = delta <= mr.SpreadMS+noiseFloorMS
		out = append(out, mr)
	}
	return out, nil
}

// AddMetrics records a metrics-on/off comparison in the report.
func (r *Report) AddMetrics(results []MetricsResult) { r.Metrics = results }
