package bench

import (
	"fmt"

	"repro/internal/ec"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/sim/adversary"
	"repro/internal/trace"
	"repro/internal/transform"
)

// E12AdversarialScheduler runs the divergence-maximizing scheduler head to
// head against i.i.d. delays drawn over the IDENTICAL support ([1, 60]
// ticks), on the suite's two canonical workloads: the E9-style broadcast
// convergence run (ETOB under a stable leader) and the E3-style
// transformation stack (Algorithm 1 over Algorithm 4 under a late-stabilizing
// Ω, property-checked against the ETOB spec). Both schedulers are admissible
// §2 environments — every message arrives within the menu bound — so
// convergence is always reached; the table measures how much of the
// admissible envelope the greedy adversary actually costs versus i.i.d.
// noise: later convergence, larger worst-case decision latency, larger
// measured tau.
func E12AdversarialScheduler(opts Options) Table { return e12Spec(opts).run() }

// e12Net builds the two competing network factories over the same support.
func e12Net(adversarial bool) sim.NetworkFactory {
	if adversarial {
		return func() sim.NetworkModel { return &adversary.AdversarialScheduler{Min: 1, Max: 60} }
	}
	return func() sim.NetworkModel { return sim.NewUniform(1, 60) }
}

// e12Spec decomposes E12 into one cell per (workload, scheduler) pair.
func e12Spec(opts Options) spec {
	s := spec{shell: Table{
		ID:     "E12",
		Title:  "Adversarial (divergence-maximizing) scheduler vs i.i.d. delays",
		Claim:  "the scheduler is part of the environment: a greedy adversary inside the same delay bounds degrades convergence and worst-case latency versus i.i.d. noise, while EC still always converges (admissibility)",
		Header: []string{"workload", "scheduler", "converged", "converged at", "worst decision latency", "tau"},
		Notes: []string{
			"both schedulers draw delays in [1, 60] ticks; the adversary starves a rotating victim at the bound and spreads other arrivals greedily (adversary.AdversarialScheduler)",
			"broadcast workload: E9's crash-free run (n=5, stable leader, alternating senders)",
			"transform workload: E3's Alg1(EC->ETOB) over Alg4 (n=3, Omega stabilizes at 600); tau measured by the ETOB checker",
			"the adversary is protocol-blind: when its victim rotation happens to spare the post-stabilization leader (as on the transform workload), i.i.d. noise can cost more — a reminder that the worst admissible schedule is protocol-aware",
		},
	}}
	msgs := 6
	if opts.Quick {
		msgs = 3
	}
	for _, adversarial := range []bool{false, true} {
		adversarial := adversarial
		s.cells = append(s.cells, func() cellOut { return e12BroadcastCell(opts, adversarial, msgs) })
	}
	for _, adversarial := range []bool{false, true} {
		adversarial := adversarial
		s.cells = append(s.cells, func() cellOut { return e12TransformCell(opts, adversarial) })
	}
	return s
}

// e12BroadcastCell is the E9-style workload: ETOB broadcast convergence.
func e12BroadcastCell(opts Options, adversarial bool, msgs int) cellOut {
	return schedulerBroadcastCell(opts, e12Name(adversarial), e12Net(adversarial), msgs)
}

// schedulerBroadcastCell runs the broadcast workload under a named scheduler;
// E12 (i.i.d. vs blind adversary) and E13 (the three-way head-to-head) share
// it so their cells differ only in the network factory under test.
func schedulerBroadcastCell(opts Options, scheduler string, net sim.NetworkFactory, msgs int) cellOut {
	const n = 5
	fp := model.NewFailurePattern(n)
	det := fd.NewOmegaStable(fp, 1)
	rec := trace.NewRecorder(n)
	k := sim.New(fp, det, etob.Factory(), sim.Options{Seed: opts.seed(), Network: net})
	defer opts.observe(k)()
	k.SetObserver(rec)
	var ids []string
	var sentAt []model.Time
	for i := 0; i < msgs; i++ {
		sender := model.ProcID(2)
		if i%2 == 1 {
			sender = model.ProcID(4)
		}
		at := model.Time(100 + 300*i)
		id := fmt.Sprintf("m%d", i)
		ids = append(ids, id)
		sentAt = append(sentAt, at)
		k.ScheduleInput(sender, at, model.BroadcastInput{ID: id})
	}
	correct := fp.Correct()
	k.RunUntil(30000, func(*sim.Kernel) bool { return rec.AllDelivered(correct, ids) })
	k.Run(k.Now() + 500)

	convergedAt, worst := model.Time(0), model.Time(0)
	converged := true
	for i, id := range ids {
		for _, p := range correct {
			st, ok := rec.StableDeliveryTime(p, id)
			if !ok {
				converged = false
				continue
			}
			if st > convergedAt {
				convergedAt = st
			}
			if lat := st - sentAt[i]; lat > worst {
				worst = lat
			}
		}
	}
	convergedCell, latencyCell := "-", "-"
	if converged {
		convergedCell, latencyCell = fmt.Sprint(convergedAt), fmt.Sprint(worst)
	}
	return cellOut{rows: [][]string{{
		"broadcast (E9)", scheduler, boolCell(converged), convergedCell, latencyCell, "-",
	}}, steps: k.Steps()}
}

// e12TransformCell is the E3-style workload: Alg1 over Alg4, ETOB-checked.
func e12TransformCell(opts Options, adversarial bool) cellOut {
	return schedulerTransformCell(opts, e12Name(adversarial), e12Net(adversarial))
}

// transformWorkload builds the transform workload SHARED by E12 and E13 —
// Alg1 over Alg4 on n=3 under an Ω stabilizing on p1 at 600, with the
// canonical nine-broadcast input schedule — so the two experiments compare
// schedulers over identical inputs, detector, seed, and protocol stack by
// construction (E13's claim depends on it; only the run-length and the
// convergence metric differ between them).
func transformWorkload(opts Options, net sim.NetworkFactory) (k *sim.Kernel, rec *trace.Recorder, ids []string, correct []model.ProcID) {
	const n = 3
	fp := model.NewFailurePattern(n)
	det := fd.NewOmegaEventual(fp, 1, 600)
	rec = trace.NewRecorder(n)
	factory := transform.ECToETOBFactory(func(p model.ProcID, nn int) transform.ECProtocol {
		return ec.New(p, nn)
	})
	k = sim.New(fp, det, factory, sim.Options{Seed: opts.seed(), Network: net})
	defer opts.observe(k)()
	k.SetObserver(rec)
	for i := 0; i < 3; i++ {
		for _, p := range model.Procs(n) {
			id := fmt.Sprintf("p%d#%d", p, i)
			ids = append(ids, id)
			k.ScheduleInput(p, model.Time(30+40*i)+model.Time(p), model.BroadcastInput{ID: id})
		}
	}
	return k, rec, ids, fp.Correct()
}

// schedulerTransformCell runs the transform workload under a named scheduler.
// This is the cell whose protocol-blind honesty note motivated the
// leader-aware scheduler: the rotation can spare the post-stabilization
// leader here.
func schedulerTransformCell(opts Options, scheduler string, net sim.NetworkFactory) cellOut {
	k, rec, ids, correct := transformWorkload(opts, net)
	k.RunUntil(30000, func(k *sim.Kernel) bool {
		return k.Now() > 800 && rec.AllDelivered(correct, ids)
	})
	settle := k.Now()
	k.Run(settle + 1000)
	rep := trace.CheckETOB(rec, correct, trace.CheckOptions{InputCutoff: 500, SettleTime: settle})

	convergedAt := model.Time(0)
	converged := true
	for _, id := range ids {
		for _, p := range correct {
			st, ok := rec.StableDeliveryTime(p, id)
			if !ok {
				converged = false
				continue
			}
			if st > convergedAt {
				convergedAt = st
			}
		}
	}
	convergedCell := "-"
	if converged {
		convergedCell = fmt.Sprint(convergedAt)
	}
	return cellOut{rows: [][]string{{
		"transform (E3)", scheduler, boolCell(converged && rep.OK()), convergedCell, "-",
		fmt.Sprintf("tau=%d", rep.Tau),
	}}, steps: k.Steps()}
}

func e12Name(adversarial bool) string {
	if adversarial {
		return "adversarial"
	}
	return "i.i.d."
}
