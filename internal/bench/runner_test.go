package bench

import (
	"strings"
	"testing"
)

// formatAll renders results the way cmd/bench prints them.
func formatAll(results []Result) string {
	var b strings.Builder
	for i, r := range results {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(r.Table.Format())
	}
	return b.String()
}

// TestRunnerParallelMatchesSerial is the sweep engine's golden property: the
// full thirteen-table suite under an 8-worker pool must be byte-identical to
// the serial path (and to the legacy All entry point). Run under -race in CI,
// this also shakes out any shared mutable state between cells.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	opts := Options{Quick: true}
	serial, err := Runner{Opts: opts, Parallel: 1}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Opts: opts, Parallel: 8}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	sOut, pOut := formatAll(serial), formatAll(parallel)
	if sOut != pOut {
		t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", sOut, pOut)
	}
	var b strings.Builder
	for i, tbl := range All(opts) {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(tbl.Format())
	}
	if b.String() != sOut {
		t.Fatal("Runner serial output differs from All()")
	}
}

// TestRunnerParallelMatchesSerialAdversary pins the same byte-identity for
// the adversarial-environment experiments specifically (E10 churn, E11 loss,
// E12 scheduler): their cells build seeded schedules, lossy models, and
// retransmission wrappers, and none of that state may leak across workers.
func TestRunnerParallelMatchesSerialAdversary(t *testing.T) {
	ids := []string{"E10", "E11", "E12"}
	opts := Options{Quick: true}
	serial, err := Runner{Opts: opts, Parallel: 1}.Run(ids)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Opts: opts, Parallel: 8}.Run(ids)
	if err != nil {
		t.Fatal(err)
	}
	if sOut, pOut := formatAll(serial), formatAll(parallel); sOut != pOut {
		t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", sOut, pOut)
	}
}

// TestRunnerPerfAccounting: cells and steps must be populated — the
// BENCH_*.json report depends on them.
func TestRunnerPerfAccounting(t *testing.T) {
	results, err := Runner{Opts: Options{Quick: true}, Parallel: 4}.Run([]string{"e1", "E9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Table.ID != "E1" || results[1].Table.ID != "E9" {
		t.Fatalf("unexpected results: %+v", results)
	}
	for _, r := range results {
		if r.Cells == 0 || r.Steps == 0 {
			t.Errorf("%s: cells=%d steps=%d, want both > 0", r.Table.ID, r.Cells, r.Steps)
		}
		if len(r.Table.Rows) == 0 {
			t.Errorf("%s: no rows", r.Table.ID)
		}
	}
}

// TestRunnerRepeatIdenticalRows: -repeat only steadies timings — the
// assembled tables must be byte-identical to a single-shot run, and the
// report must carry the repeat count under the bumped schema.
func TestRunnerRepeatIdenticalRows(t *testing.T) {
	opts := Options{Quick: true}
	once, err := Runner{Opts: opts, Parallel: 2}.Run([]string{"E1", "E11"})
	if err != nil {
		t.Fatal(err)
	}
	thrice, err := Runner{Opts: opts, Parallel: 2, Repeat: 3}.Run([]string{"E1", "E11"})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := formatAll(once), formatAll(thrice); a != b {
		t.Fatalf("repeat changed the tables:\n--- once ---\n%s\n--- median-of-3 ---\n%s", a, b)
	}
	rep := NewReport(opts, 2, 3, thrice, 0)
	if rep.Schema != "repro-bench/6" || rep.Repeat != 3 {
		t.Errorf("report schema/repeat = %q/%d, want repro-bench/6 and 3", rep.Schema, rep.Repeat)
	}
	if rep := NewReport(opts, 2, 0, once, 0); rep.Repeat != 1 {
		t.Errorf("repeat <= 1 must normalize to 1, got %d", rep.Repeat)
	}
	// The spread column: repeated runs must carry a non-negative spread per
	// experiment, single-shot runs exactly zero (nothing to spread over).
	for _, er := range rep.Experiments {
		if er.SpreadMS < 0 {
			t.Errorf("experiment %s: negative spread %v", er.ID, er.SpreadMS)
		}
	}
	for _, er := range NewReport(opts, 2, 1, once, 0).Experiments {
		if er.SpreadMS != 0 {
			t.Errorf("experiment %s: single-shot run has spread %v, want 0", er.ID, er.SpreadMS)
		}
	}
}

// TestRunnerUnknownID: the error must list the valid IDs (cmd/bench prints
// it verbatim).
func TestRunnerUnknownID(t *testing.T) {
	_, err := Runner{Opts: Options{Quick: true}}.Run([]string{"e42"})
	if err == nil {
		t.Fatal("unknown experiment must error")
	}
	for _, id := range IDs() {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("error %q does not list %s", err, id)
		}
	}
}

// TestRegistryCoherence: All, ByID, and IDs must agree — they all derive
// from the single registry.
func TestRegistryCoherence(t *testing.T) {
	ids := IDs()
	if len(ids) != 14 {
		t.Fatalf("IDs() = %v", ids)
	}
	tables := All(Options{Quick: true})
	if len(tables) != len(ids) {
		t.Fatalf("All returned %d tables for %d IDs", len(tables), len(ids))
	}
	for i, id := range ids {
		if tables[i].ID != id {
			t.Errorf("All()[%d].ID = %s, want %s", i, tables[i].ID, id)
		}
		tbl, ok := ByID(strings.ToLower(id), Options{Quick: true})
		if !ok {
			t.Errorf("ByID(%q) not found", id)
			continue
		}
		if tbl.ID != id {
			t.Errorf("ByID(%q).ID = %s", id, tbl.ID)
		}
	}
}
