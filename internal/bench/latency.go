package bench

import (
	"fmt"

	"repro/internal/etob"
	"repro/internal/loadgen"
)

// LatencyResult is one open-loop load measurement inside a Report: a network
// preset crossed with a batching configuration, driven by internal/loadgen's
// Poisson arrival stream on the deterministic kernel. Latencies are kernel
// ticks (the kernel's only clock), quantiles read from the harness's
// log-bucketed histograms (~3% relative error).
type LatencyResult struct {
	Preset string `json:"preset"` // "uniform", "lossy", "hostile", ...
	Batch  string `json:"batch"`  // "k=1", "k=8", "adaptive"
	Ops    int    `json:"ops"`
	// Resolved ops became visible at every correct process; Unresolved did
	// not inside the settle window (under churn presets a small residue is
	// expected — restarts can eat a submission; under uniform it means queue
	// collapse and fails the sweep).
	Resolved   int `json:"resolved"`
	Unresolved int `json:"unresolved,omitempty"`
	// Visibility latency: submit → applied at every correct process.
	VisibleP50  int64 `json:"visible_p50"`
	VisibleP99  int64 `json:"visible_p99"`
	VisibleP999 int64 `json:"visible_p999"`
	// Order stability: submit → the op's last (re)application anywhere.
	StableP50  int64 `json:"stable_p50"`
	StableP99  int64 `json:"stable_p99"`
	StableP999 int64 `json:"stable_p999"`
	// MessagesSent is what batching amortizes; OpsPerSec/StepsPerSec and
	// AllocsPerOp are the wall-clock cost of pushing the stream through.
	MessagesSent int64   `json:"messages_sent"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	WallMS       float64 `json:"wall_ms"`
}

// latencyBatchConfigs is the batching axis of the sweep: the historical
// unbatched path, a fixed window of eight, and the AIMD controller.
var latencyBatchConfigs = []struct {
	Name string
	Opts etob.BatchOptions
}{
	{"k=1", etob.BatchOptions{}},
	{"k=8", etob.BatchOptions{MaxBatch: 8, MaxLinger: 3}},
	{"adaptive", etob.BatchOptions{Adaptive: true, MaxBatch: 32, MaxLinger: 3}},
}

// LatencyPresets is the default environment axis of the sweep.
var LatencyPresets = []string{"uniform", "lossy", "hostile"}

// LatencySweep runs the open-loop latency grid — presets × batch configs —
// and returns one LatencyResult per cell for the Report's "latency" section.
// quick shrinks the stream for CI smoke runs; the arrival schedule is fully
// determined by seed, so latency quantiles (everything but the wall-clock
// fields) are reproducible.
func LatencySweep(quick bool, seed int64, presets []string) ([]LatencyResult, error) {
	if len(presets) == 0 {
		presets = LatencyPresets
	}
	ops, rate := 20_000, 2.0
	if quick {
		ops, rate = 1_500, 1.0
	}
	var out []LatencyResult
	for _, preset := range presets {
		for _, bc := range latencyBatchConfigs {
			cfg := loadgen.Config{
				Ops:      ops,
				Rate:     rate,
				Sessions: 64,
				Seed:     seed,
				Preset:   preset,
				Batch:    bc.Opts,
			}
			res, err := loadgen.RunSim(cfg)
			if err != nil {
				return nil, fmt.Errorf("latency sweep %s/%s: %w", preset, bc.Name, err)
			}
			if preset == "uniform" && res.Unresolved > 0 {
				return nil, fmt.Errorf("latency sweep %s/%s: %d/%d ops unresolved on the clean network — queue collapse",
					preset, bc.Name, res.Unresolved, res.Ops)
			}
			out = append(out, LatencyResult{
				Preset:       preset,
				Batch:        bc.Name,
				Ops:          res.Ops,
				Resolved:     res.Resolved,
				Unresolved:   res.Unresolved,
				VisibleP50:   res.Visible.Quantile(0.50),
				VisibleP99:   res.Visible.Quantile(0.99),
				VisibleP999:  res.Visible.Quantile(0.999),
				StableP50:    res.Stable.Quantile(0.50),
				StableP99:    res.Stable.Quantile(0.99),
				StableP999:   res.Stable.Quantile(0.999),
				MessagesSent: res.MessagesSent,
				OpsPerSec:    res.OpsPerSec,
				StepsPerSec:  res.StepsPerSec,
				AllocsPerOp:  res.AllocsPerOp,
				WallMS:       res.WallMS,
			})
		}
	}
	return out, nil
}
