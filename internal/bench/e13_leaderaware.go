package bench

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/sim/adversary"
	"repro/internal/trace"
)

// E13LeaderAware is the three-way scheduler head-to-head the E12 honesty note
// asked for: the protocol-AWARE adversary (adversary.LeaderStarver, starving
// whatever process the run's Ω currently outputs) against the protocol-BLIND
// rotation (adversary.AdversarialScheduler) and against i.i.d. noise, all
// drawing delays over the IDENTICAL [1, 60] support, on E12's two canonical
// workloads. E12 showed the blind rotation can cost LESS than i.i.d. on the
// transform workload when its victim rotation spares the post-stabilization
// leader; E13 quantifies how much of that gap leader-awareness recovers —
// the leader-aware schedule must never converge earlier than the blind one,
// and on the flagged transform workload it must converge strictly later
// (pinned by TestE13LeaderAwareDominatesBlind).
func E13LeaderAware(opts Options) Table { return e13Spec(opts).run() }

// e13Schedulers names the three competing network factories over the same
// delay support. The order is the table's row order per workload.
func e13Schedulers() []struct {
	name string
	net  sim.NetworkFactory
} {
	return []struct {
		name string
		net  sim.NetworkFactory
	}{
		{"i.i.d.", func() sim.NetworkModel { return sim.NewUniform(1, 60) }},
		{"blind-rotation", func() sim.NetworkModel { return &adversary.AdversarialScheduler{Min: 1, Max: 60} }},
		{"leader-aware", func() sim.NetworkModel { return &adversary.LeaderStarver{Min: 1, Max: 60} }},
	}
}

// e13Spec decomposes E13 into one cell per (workload, scheduler) pair,
// reusing E12's cell bodies so the workloads are identical by construction.
func e13Spec(opts Options) spec {
	s := spec{shell: Table{
		ID:     "E13",
		Title:  "Protocol-aware (leader-starving) vs blind-rotation vs i.i.d. scheduling",
		Claim:  "the worst admissible schedule is protocol-aware: starving the links of the CURRENT Omega leader (observed through the kernel's leadership hook) delays convergence at least as much as a blind victim rotation on every workload, and strictly more on the transform workload where the rotation spared the post-stabilization leader",
		Header: []string{"workload", "scheduler", "converged", "converged at", "worst decision latency", "tau"},
		Notes: []string{
			"all three schedulers draw delays in [1, 60] ticks — same admissible envelope, different schedules inside it",
			"leader-aware = adversary.LeaderStarver: every link touching the current Omega output (observed through the kernel's sim.LeaderAware hook, served from its fd.Cached segments) is pinned at the bound — the leader's own step loop included, which is what starves the EC promotion pipeline at its source",
			"blind-rotation = adversary.AdversarialScheduler: one victim per 400-tick window, protocol-blind — the E12 note this experiment quantifies; on the transform workload it converges EARLIER than i.i.d. noise (the flagged inversion), while leader-awareness costs ~10x over both",
			"workloads are E12's: broadcast (E9's crash-free n=5 run, stable leader) and transform (E3's Alg1 over Alg4, n=3, Omega stabilizes at 600); the transform cells measure ORDER convergence (last sequence change across correct replicas) over an extended horizon, since presence-based stable delivery saturates at the delay bound and cannot see post-stabilization reordering",
			"EC still converges in every cell: leader starvation is admissible (finite delays, every message delivered)",
		},
	}}
	msgs := 6
	if opts.Quick {
		msgs = 3
	}
	for _, sched := range e13Schedulers() {
		sched := sched
		s.cells = append(s.cells, func() cellOut {
			return schedulerBroadcastCell(opts, sched.name, sched.net, msgs)
		})
	}
	for _, sched := range e13Schedulers() {
		sched := sched
		s.cells = append(s.cells, func() cellOut {
			return e13TransformCell(opts, sched.name, sched.net)
		})
	}
	return s
}

// e13TransformCell runs E12's transform workload (identical inputs, detector,
// seed, and protocol stack) but measures CONVERGENCE, not delivery: the
// "converged at" column is the last instant any correct replica's sequence
// changed — the end of divergence, which is what an adversary delaying
// convergence actually delays. E12's presence-based StableDeliveryTime caps
// at the last message arrival (the delay bound guarantees presence by then)
// and cannot see post-stabilization reordering, which is exactly where the
// leader-aware adversary does its damage; the run horizon is extended
// accordingly so every schedule is followed to actual agreement.
func e13TransformCell(opts Options, scheduler string, net sim.NetworkFactory) cellOut {
	k, rec, ids, correct := transformWorkload(opts, net)
	k.RunUntil(30000, func(k *sim.Kernel) bool {
		return k.Now() > 800 && rec.AllDelivered(correct, ids) && seqsAgree(rec, correct, len(ids))
	})
	settle := k.Now()
	k.Run(settle + 1000)
	rep := trace.CheckETOB(rec, correct, trace.CheckOptions{InputCutoff: 500, SettleTime: settle})

	// Order convergence: sequence snapshots are recorded only on change, so
	// the last snapshot is the last reorder and their max across correct
	// replicas is the instant divergence ended.
	convergedAt, converged := model.Time(0), seqsAgree(rec, correct, len(ids))
	for _, p := range correct {
		pts := rec.Seqs(p)
		if len(pts) == 0 {
			converged = false
			continue
		}
		if t := pts[len(pts)-1].T; t > convergedAt {
			convergedAt = t
		}
	}
	convergedCell := "-"
	if converged {
		convergedCell = fmt.Sprint(convergedAt)
	}
	return cellOut{rows: [][]string{{
		"transform (E3)", scheduler, boolCell(converged && rep.OK()), convergedCell, "-",
		fmt.Sprintf("tau=%d", rep.Tau),
	}}, steps: k.Steps()}
}

// seqsAgree reports whether every correct replica's current sequence is the
// same full permutation of the want broadcast ids — the run has actually
// converged, not just delivered.
func seqsAgree(rec *trace.Recorder, correct []model.ProcID, want int) bool {
	base := rec.FinalSeq(correct[0])
	if len(base) != want {
		return false
	}
	for _, p := range correct[1:] {
		seq := rec.FinalSeq(p)
		if len(seq) != len(base) {
			return false
		}
		for i := range seq {
			if seq[i] != base[i] {
				return false
			}
		}
	}
	return true
}
