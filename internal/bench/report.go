package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Report is the machine-readable record of a bench run, written by cmd/bench
// as BENCH_<n>.json to track the perf trajectory across PRs.
//
// Schema ("repro-bench/6" — rev 6 adds the optional "scaling_n" section: the
// En cluster-size sweep, two rows per n (all-to-all vs gossip dissemination)
// recording kernel steps/sec, measured dissemination envelopes and payload
// bytes per process, and the analytic per-sender fan-out (n−1 vs
// ceil(log2 n)+1); absent when the sweep was not requested. Note "scaling"
// (rev 2) remains the WORKER-count sweep — wall-time parallelism — while
// "scaling_n" scales the simulated cluster itself.
//
// Rev 5 adds the optional "metrics" section: the
// observability plane's overhead audit, comparing each experiment's median
// cell time with the metrics registry off and on (same seeds, same repeat);
// "within_spread" reports whether the delta sits inside the run's own
// repeat-to-repeat spread plus a 0.5ms noise floor — the registry's
// zero-hot-path-cost contract, measured. Absent when the comparison was not
// requested. Rev 4 added the optional "latency" section: the
// open-loop load sweep (internal/loadgen) crossing network presets with
// broadcast-batching configurations, recording p50/p99/p999 visibility and
// order-stability latency in kernel ticks plus messages sent and allocs/op
// per cell; absent when the sweep was not requested, and the rest of the
// report reads exactly like schema 3. Rev 3 added "spread_ms": the summed
// per-cell time spread (max − min across the -repeat samples), so a reader
// can judge how noisy the medians in "cell_ms" are; it is 0 when "repeat" is
// 1. Rev 2 added "repeat": per-cell times are the median of that many
// repetitions, taming single-core scheduling noise):
//
//	{
//	  "schema":     "repro-bench/6",
//	  "seed":       42,            // base experiment seed
//	  "quick":      false,         // reduced workloads?
//	  "parallel":   8,             // worker-pool size of the recorded run
//	  "repeat":     5,             // each cell timed as median-of-5
//	  "gomaxprocs": 8,             // cores visible to the scheduler
//	  "wall_ms":    1234.5,        // wall time of the full table run
//	  "experiments": [             // per experiment, in suite order
//	    {"id": "E1", "cells": 3, "steps": 123456,
//	     "cell_ms": 456.7,         // summed median cell time (CPU-ms, overlaps under parallelism)
//	     "spread_ms": 12.3,        // summed per-cell max−min across the repeats
//	     "steps_per_sec": 270000}, // kernel steps / cell time
//	    ...],
//	  "scaling_n": [               // optional -scalen cluster-size sweep (see ScaleN)
//	    {"n": 64, "mode": "gossip", "ops": 128, "delivered_pct": 99.2,
//	     "steps": 123456, "wall_ms": 80.0, "steps_per_sec": 1500000,
//	     "send_fanout": 7, "envelopes": 9000, "envelopes_per_op": 70.3,
//	     "bytes": 400000, "bytes_per_proc": 6250.0}, ...],
//	  "scaling": [                 // optional -scaling sweep, one point per worker
//	                               // count; each point reruns exactly the experiment
//	                               // selection listed in "experiments" above
//	    {"workers": 1, "wall_ms": 2000.0, "speedup": 1.0},
//	    {"workers": 8, "wall_ms": 300.0,  "speedup": 6.7}],   // vs the first entry
//	  "micro": [                   // kernel microbenchmarks (see Microbenchmarks)
//	    {"name": "kernel/uniform", "iters": 30,
//	     "ns_per_op": 590000, "allocs_per_op": 172}, ...],
//	  "latency": [                 // optional open-loop load sweep (see LatencySweep)
//	    {"preset": "uniform", "batch": "k=8", "ops": 20000, "resolved": 20000,
//	     "visible_p50": 33, "visible_p99": 49, "visible_p999": 57,
//	     "stable_p50": 33, "stable_p99": 49, "stable_p999": 57,
//	     "messages_sent": 123456, "ops_per_sec": 250000,
//	     "steps_per_sec": 800000, "allocs_per_op": 90, "wall_ms": 80.0}, ...],
//	  "metrics": [                 // optional metrics-on/off overhead audit (MetricsCompare)
//	    {"id": "E1", "off_ms": 456.7, "on_ms": 458.1, "delta_ms": 1.4,
//	     "spread_ms": 12.3, "within_spread": true}, ...]
//	}
type Report struct {
	Schema      string           `json:"schema"`
	Seed        int64            `json:"seed"`
	Quick       bool             `json:"quick"`
	Parallel    int              `json:"parallel"`
	Repeat      int              `json:"repeat"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	WallMS      float64          `json:"wall_ms"`
	Experiments []ExpReport      `json:"experiments"`
	ScalingN    []ScalingNResult `json:"scaling_n,omitempty"`
	Scaling     []ScalingPoint   `json:"scaling,omitempty"`
	Micro       []MicroResult    `json:"micro,omitempty"`
	Latency     []LatencyResult  `json:"latency,omitempty"`
	Metrics     []MetricsResult  `json:"metrics,omitempty"`
}

// ExpReport is one experiment's perf accounting inside a Report.
type ExpReport struct {
	ID          string  `json:"id"`
	Cells       int     `json:"cells"`
	Steps       int64   `json:"steps"`
	CellMS      float64 `json:"cell_ms"`
	SpreadMS    float64 `json:"spread_ms"`
	StepsPerSec float64 `json:"steps_per_sec"`
}

// ScalingPoint is one worker-count measurement of the full suite.
type ScalingPoint struct {
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
	Speedup float64 `json:"speedup"`
}

// NewReport assembles a Report from a Runner's results and the measured wall
// time of the run. repeat is the Runner.Repeat the results were timed with
// (values <= 1 normalize to 1).
func NewReport(opts Options, parallel, repeat int, results []Result, wall time.Duration) *Report {
	if repeat < 1 {
		repeat = 1
	}
	r := &Report{
		Schema:     "repro-bench/6",
		Seed:       opts.seed(),
		Quick:      opts.Quick,
		Parallel:   parallel,
		Repeat:     repeat,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		WallMS:     ms(wall),
	}
	for _, res := range results {
		er := ExpReport{
			ID:       res.Table.ID,
			Cells:    res.Cells,
			Steps:    res.Steps,
			CellMS:   ms(res.CellTime),
			SpreadMS: ms(res.CellSpread),
		}
		if res.CellTime > 0 {
			er.StepsPerSec = float64(res.Steps) / res.CellTime.Seconds()
		}
		r.Experiments = append(r.Experiments, er)
	}
	return r
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// AddScaling records a worker-count sweep; speedups are computed against the
// first point's wall time (conventionally workers=1).
func (r *Report) AddScaling(points []ScalingPoint) {
	if len(points) > 0 {
		base := points[0].WallMS
		for i := range points {
			if points[i].WallMS > 0 {
				points[i].Speedup = base / points[i].WallMS
			}
		}
	}
	r.Scaling = points
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
