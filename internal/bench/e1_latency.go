package bench

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/tob"
	"repro/internal/trace"
)

// E1Latency measures broadcast→stable-delivery latency in communication
// steps (units of the fixed link delay D) under a stable leader, for the
// paper's ETOB versus the strong baselines. The paper's claim (§5, §7):
// ETOB completes an operation in the optimal TWO communication steps, while
// strongly consistent broadcast needs THREE in the worst case [Lamport 06].
func E1Latency(opts Options) Table { return e1Spec(opts).run() }

// e1Spec decomposes E1 into one cell per protocol.
func e1Spec(opts Options) spec {
	const (
		n     = 5
		delay = 1000 // D: link delay; ticks are 1, so steps ≈ latency/D
	)
	msgs := 8
	if opts.Quick {
		msgs = 3
	}
	protocols := []struct {
		name    string
		factory model.AutomatonFactory
		expect  string
	}{
		{"ETOB (Alg 5, Ω)", etob.Factory(), "2"},
		{"Paxos log (Ω, majority)", tob.PaxosLog(consensus.MajorityQuorums), "3"},
		{"TOB = Alg1 over consensus", tob.FromConsensus(consensus.MajorityQuorums), ">=3"},
	}
	s := spec{shell: Table{
		ID:     "E1",
		Title:  "Delivery latency in communication steps (stable leader)",
		Claim:  "ETOB delivers after 2 message delays; strong TOB needs >=3 (paper §5 property 1, §7)",
		Header: []string{"protocol", "mean steps", "min", "max", "paper"},
		Notes: []string{
			fmt.Sprintf("n=%d, link delay D=%d, tick=1, %d isolated broadcasts from non-leader processes", n, delay, msgs),
			"steps = (stable delivery time at ALL correct processes - broadcast time) / D, rounded to 0.1",
		},
	}}
	for _, proto := range protocols {
		s.cells = append(s.cells, func() cellOut {
			fp := model.NewFailurePattern(n)
			det := fd.NewOmegaStable(fp, 1)
			rec := trace.NewRecorder(n)
			k := sim.New(fp, det, proto.factory, sim.Options{
				Seed: opts.seed(), MinDelay: delay, MaxDelay: delay, TickInterval: 1, MaxTime: 1 << 40,
			})
			defer opts.observe(k)()
			k.SetObserver(rec)
			var ids []string
			var sentAt []model.Time
			for i := 0; i < msgs; i++ {
				// Isolated broadcasts from rotating non-leader senders.
				sender := model.ProcID(2 + i%(n-1))
				at := model.Time(10_000 * (i + 1))
				id := fmt.Sprintf("m%d", i)
				ids = append(ids, id)
				sentAt = append(sentAt, at)
				k.ScheduleInput(sender, at, model.BroadcastInput{ID: id})
			}
			k.RunUntil(model.Time(10_000*(msgs+4)), func(*sim.Kernel) bool {
				return rec.AllDelivered(fp.Correct(), ids)
			})
			k.Run(k.Now() + 8*delay)

			var sum, minS, maxS float64
			count := 0
			for i, id := range ids {
				worst := model.Time(0)
				ok := true
				for _, p := range fp.Correct() {
					st, has := rec.StableDeliveryTime(p, id)
					if !has {
						ok = false
						break
					}
					if lat := st - sentAt[i]; lat > worst {
						worst = lat
					}
				}
				if !ok {
					continue
				}
				steps := float64(worst) / float64(delay)
				sum += steps
				if count == 0 || steps < minS {
					minS = steps
				}
				if steps > maxS {
					maxS = steps
				}
				count++
			}
			row := []string{proto.name, "undelivered", "-", "-", proto.expect}
			if count > 0 {
				row = []string{
					proto.name,
					fmt.Sprintf("%.1f", sum/float64(count)),
					fmt.Sprintf("%.1f", minS),
					fmt.Sprintf("%.1f", maxS),
					proto.expect,
				}
			}
			return cellOut{rows: [][]string{row}, steps: k.Steps()}
		})
	}
	return s
}
