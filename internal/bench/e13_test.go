package bench

import (
	"strconv"
	"testing"
)

// e13ConvergedAt extracts the "converged at" cell per (workload, scheduler)
// from an E13 table.
func e13ConvergedAt(t *testing.T, tbl Table) map[[2]string]int {
	t.Helper()
	out := map[[2]string]int{}
	for _, row := range tbl.Rows {
		if row[2] != "yes" {
			t.Fatalf("cell (%s, %s) did not converge: %v", row[0], row[1], row)
		}
		v, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("non-numeric converged-at cell in %v: %v", row, err)
		}
		out[[2]string{row[0], row[1]}] = v
	}
	return out
}

// TestE13LeaderAwareDominatesBlind pins the acceptance property of the
// protocol-aware adversary, at both workload scales: the leader-aware
// schedule delays convergence AT LEAST as much as the blind rotation in
// every cell, STRICTLY more on the transform workload (the cell whose E12
// honesty note flagged the blind rotation as non-worst-case), and on that
// flagged cell it also restores the expected adversary ordering versus
// i.i.d. noise — the blind rotation converges EARLIER than i.i.d. there
// (the flagged inversion), while leader-awareness costs strictly more than
// both.
func TestE13LeaderAwareDominatesBlind(t *testing.T) {
	for _, opts := range []Options{{Quick: true}, {}} {
		name := "full"
		if opts.Quick {
			name = "quick"
		}
		t.Run(name, func(t *testing.T) {
			cells := e13ConvergedAt(t, E13LeaderAware(opts))
			for _, workload := range []string{"broadcast (E9)", "transform (E3)"} {
				blind := cells[[2]string{workload, "blind-rotation"}]
				aware := cells[[2]string{workload, "leader-aware"}]
				if blind == 0 || aware == 0 {
					t.Fatalf("%s: missing scheduler rows in %v", workload, cells)
				}
				if aware < blind {
					t.Errorf("%s: leader-aware converged at %d, EARLIER than blind rotation at %d", workload, aware, blind)
				}
			}
			iid := cells[[2]string{"transform (E3)", "i.i.d."}]
			blind := cells[[2]string{"transform (E3)", "blind-rotation"}]
			aware := cells[[2]string{"transform (E3)", "leader-aware"}]
			if aware <= blind {
				t.Errorf("transform: leader-aware converged at %d, want strictly later than blind rotation's %d (the flagged cell)", aware, blind)
			}
			if blind >= iid {
				t.Errorf("transform: blind rotation converged at %d, i.i.d. at %d — the E12 inversion this experiment documents has vanished; re-examine the claim text", blind, iid)
			}
			if aware <= iid {
				t.Errorf("transform: leader-aware converged at %d, want strictly later than i.i.d.'s %d (protocol-awareness must beat noise)", aware, iid)
			}
		})
	}
}
