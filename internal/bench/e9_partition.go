package bench

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/tob"
	"repro/internal/trace"
)

// E9PartitionSweep measures eventual consistency under crash-free network
// partitions (the sim.Partitioned / sim.MultiPartitioned network models).
// All five processes stay up; links sever at t=500 and heal after the
// sweep's duration, with cross-partition traffic buffered until the heal
// (eventual delivery, §2). The paper's claim: EC/ETOB needs only Ω and an
// environment with eventual delivery — so convergence must always be
// reached, with the convergence lag tracking partition length rather than
// diverging.
//
// Three axes share the table:
//
//   - the original two-sided duration sweep ({p1,p2} | {p3,p4,p5}) for ETOB;
//   - multi-way (k-side) partitions at a fixed duration: the network
//     fragments into 3 and 4 mutually isolated sides and ETOB still
//     reconverges after the heal (nothing in Algorithm 5 assumes two sides);
//   - the strong baselines on the two-sided split: the Paxos log with
//     majority quorums (Ω only) stalls while its leader sits in the minority
//     side and catches up after the heal, and with Σ quorums (detector Ω+Σ)
//     it behaves the same here — buffered links stall any quorum that spans
//     the cut — so the contrast with ETOB is in decision latency, not
//     liveness.
//
// Reported per row: when the last correct process stably delivered the last
// broadcast (EC convergence), how far behind the heal that is, and the worst
// per-broadcast decision latency (stable delivery at ALL correct processes
// minus broadcast time).
func E9PartitionSweep(opts Options) Table { return e9Spec(opts).run() }

// e9Case parameterizes one E9 cell: a protocol stack over a partition shape.
type e9Case struct {
	protocol string
	factory  model.AutomatonFactory
	det      func(fp *model.FailurePattern) fd.Detector
	sides    int
	dur      model.Time
}

// e9Spec decomposes E9 into one cell per (protocol, sides, duration).
func e9Spec(opts Options) spec {
	const (
		n       = 5
		splitAt = 500 // partition onset
	)
	durations := []model.Time{0, 500, 1000, 2000, 4000}
	baselineDur := model.Time(2000)
	kSides := []int{3, 4}
	msgs := 6
	if opts.Quick {
		durations = []model.Time{0, 1000}
		baselineDur = 1000
		kSides = []int{3}
		msgs = 3
	}
	omega := func(fp *model.FailurePattern) fd.Detector { return fd.NewOmegaStable(fp, 1) }
	omegaSigma := func(fp *model.FailurePattern) fd.Detector {
		return fd.NewOmegaSigma(fd.NewOmegaStable(fp, 1), fd.NewSigma(fp, 0))
	}
	s := spec{shell: Table{
		ID:     "E9",
		Title:  "EC convergence and decision latency vs partition length, k-side partitions, and strong baselines",
		Claim:  "with eventual delivery, ETOB (Omega only) always reconverges — across any partition length and any number of sides; lag tracks partition length (paper §2, Theorem 2)",
		Header: []string{"protocol", "sides", "partition len", "heal at", "converged", "converged at", "lag after heal", "worst decision latency"},
		Notes: []string{
			fmt.Sprintf("n=%d, crash-free; partitions form at t=%d; %d broadcasts from senders on different sides", n, splitAt, msgs),
			"2 sides: {p1,p2} | {p3,p4,p5} (sim.Partitioned); k sides: p on side (p-1) mod k (sim.MultiPartitioned)",
			"cross-partition messages are buffered and released at heal time (eventual delivery)",
			"baselines: Paxos log over majority and Sigma quorums — any quorum spanning the cut stalls until the heal",
		},
	}}
	var cases []e9Case
	for _, dur := range durations {
		cases = append(cases, e9Case{"ETOB (Omega)", etob.Factory(), omega, 2, dur})
	}
	for _, k := range kSides {
		cases = append(cases, e9Case{"ETOB (Omega)", etob.Factory(), omega, k, baselineDur})
	}
	cases = append(cases,
		e9Case{"Paxos majority (Omega)", tob.PaxosLog(consensus.MajorityQuorums), omega, 2, baselineDur},
		e9Case{"Paxos Sigma (Omega+Sigma)", tob.PaxosLog(consensus.SigmaQuorums), omegaSigma, 2, baselineDur},
	)
	for _, c := range cases {
		c := c
		s.cells = append(s.cells, func() cellOut {
			return e9Cell(opts, c, splitAt, msgs, n)
		})
	}
	return s
}

// e9Cell runs one partition run and reports its row.
func e9Cell(opts Options, c e9Case, splitAt model.Time, msgs, n int) cellOut {
	fp := model.NewFailurePattern(n)
	det := c.det(fp)
	rec := trace.NewRecorder(n)
	k := sim.New(fp, det, c.factory, sim.Options{
		Seed: opts.seed(),
		Network: func() sim.NetworkModel {
			if c.sides == 2 {
				return &sim.Partitioned{LeftSize: 2, FirstAt: splitAt, Duration: c.dur}
			}
			return &sim.MultiPartitioned{Sides: c.sides, FirstAt: splitAt, Duration: c.dur}
		},
	})
	defer opts.observe(k)()
	k.SetObserver(rec)
	var ids []string
	var sentAt []model.Time
	for i := 0; i < msgs; i++ {
		// Alternate senders that sit on different sides under both the
		// two-sided split and every k-way assignment used here.
		sender := model.ProcID(2)
		if i%2 == 1 {
			sender = model.ProcID(4)
		}
		at := model.Time(100 + 300*i)
		id := fmt.Sprintf("m%d", i)
		ids = append(ids, id)
		sentAt = append(sentAt, at)
		k.ScheduleInput(sender, at, model.BroadcastInput{ID: id})
	}
	heal := splitAt + c.dur
	horizon := heal + 20000
	correct := fp.Correct() // hoisted: the stop predicate runs per event
	k.RunUntil(horizon, func(*sim.Kernel) bool { return rec.AllDelivered(correct, ids) })
	k.Run(k.Now() + 500)

	convergedAt := model.Time(0)
	worstLatency := model.Time(0)
	converged := true
	for i, id := range ids {
		for _, p := range correct {
			st, ok := rec.StableDeliveryTime(p, id)
			if !ok {
				converged = false
				continue
			}
			if st > convergedAt {
				convergedAt = st
			}
			if lat := st - sentAt[i]; lat > worstLatency {
				worstLatency = lat
			}
		}
	}
	// "-" cells: no heal event when dur == 0 (no partition ever forms),
	// and no convergence figures when a run did not converge.
	healCell, convergedCell, lagCell, latencyCell := "-", "-", "-", "-"
	if c.dur > 0 {
		healCell = fmt.Sprint(heal)
	}
	if converged {
		convergedCell = fmt.Sprint(convergedAt)
		latencyCell = fmt.Sprint(worstLatency)
		if c.dur > 0 {
			lag := convergedAt - heal
			if lag < 0 {
				lag = 0 // converged before the heal
			}
			lagCell = fmt.Sprint(lag)
		}
	}
	return cellOut{rows: [][]string{{
		c.protocol, fmt.Sprint(c.sides), fmt.Sprint(c.dur), healCell,
		boolCell(converged), convergedCell, lagCell, latencyCell,
	}}, steps: k.Steps()}
}
