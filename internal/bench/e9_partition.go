package bench

import (
	"fmt"

	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// E9PartitionSweep measures eventual consistency under crash-free network
// partitions of increasing length (the sim.Partitioned network model, new in
// this revision of the kernel). All five processes stay up; the links between
// {p1, p2} and {p3, p4, p5} sever at t=500 and heal after the sweep's
// duration, with cross-partition traffic buffered until the heal (eventual
// delivery, §2). The paper's claim: EC/ETOB needs only Ω and an environment
// with eventual delivery — so convergence must always be reached, with the
// convergence lag tracking the partition length rather than diverging.
//
// Reported per partition length: when the last correct process stably
// delivered the last broadcast (EC convergence), how far behind the heal
// that is, and the worst per-broadcast ETOB decision latency (stable
// delivery at ALL correct processes minus broadcast time).
func E9PartitionSweep(opts Options) Table { return e9Spec(opts).run() }

// e9Spec decomposes E9 into one cell per partition duration.
func e9Spec(opts Options) spec {
	const (
		n       = 5
		splitAt = 500 // partition onset
	)
	durations := []model.Time{0, 500, 1000, 2000, 4000}
	msgs := 6
	if opts.Quick {
		durations = []model.Time{0, 1000}
		msgs = 3
	}
	s := spec{shell: Table{
		ID:     "E9",
		Title:  "EC convergence and ETOB decision latency vs partition length",
		Claim:  "with eventual delivery, ETOB (Omega only) always reconverges; lag tracks partition length (paper §2, Theorem 2)",
		Header: []string{"partition len", "heal at", "converged", "converged at", "lag after heal", "worst decision latency"},
		Notes: []string{
			fmt.Sprintf("n=%d, crash-free; links {p1,p2}|{p3,p4,p5} sever at t=%d; %d broadcasts from both sides", n, splitAt, msgs),
			"cross-partition messages are buffered and released at heal time (sim.Partitioned)",
			"converged at = last stable delivery of the last broadcast at any correct process",
		},
	}}
	for _, dur := range durations {
		s.cells = append(s.cells, func() cellOut {
			return e9Cell(opts, dur, splitAt, msgs, n)
		})
	}
	return s
}

// e9Cell runs one partition-duration run and reports its row.
func e9Cell(opts Options, dur, splitAt model.Time, msgs, n int) cellOut {
	fp := model.NewFailurePattern(n)
	det := fd.NewOmegaStable(fp, 1)
	rec := trace.NewRecorder(n)
	k := sim.New(fp, det, etob.Factory(), sim.Options{
		Seed: opts.seed(),
		Network: func() sim.NetworkModel {
			return &sim.Partitioned{LeftSize: 2, FirstAt: splitAt, Duration: dur}
		},
	})
	k.SetObserver(rec)
	var ids []string
	var sentAt []model.Time
	for i := 0; i < msgs; i++ {
		// Alternate sides so both partitions keep accepting operations.
		sender := model.ProcID(2)
		if i%2 == 1 {
			sender = model.ProcID(4)
		}
		at := model.Time(100 + 300*i)
		id := fmt.Sprintf("m%d", i)
		ids = append(ids, id)
		sentAt = append(sentAt, at)
		k.ScheduleInput(sender, at, model.BroadcastInput{ID: id})
	}
	heal := splitAt + dur
	horizon := heal + 20000
	correct := fp.Correct() // hoisted: the stop predicate runs per event
	k.RunUntil(horizon, func(*sim.Kernel) bool { return rec.AllDelivered(correct, ids) })
	k.Run(k.Now() + 500)

	convergedAt := model.Time(0)
	worstLatency := model.Time(0)
	converged := true
	for i, id := range ids {
		for _, p := range correct {
			st, ok := rec.StableDeliveryTime(p, id)
			if !ok {
				converged = false
				continue
			}
			if st > convergedAt {
				convergedAt = st
			}
			if lat := st - sentAt[i]; lat > worstLatency {
				worstLatency = lat
			}
		}
	}
	// "-" cells: no heal event when dur == 0 (no partition ever forms),
	// and no convergence figures when a run did not converge.
	healCell, convergedCell, lagCell, latencyCell := "-", "-", "-", "-"
	if dur > 0 {
		healCell = fmt.Sprint(heal)
	}
	if converged {
		convergedCell = fmt.Sprint(convergedAt)
		latencyCell = fmt.Sprint(worstLatency)
		if dur > 0 {
			lag := convergedAt - heal
			if lag < 0 {
				lag = 0 // converged before the heal
			}
			lagCell = fmt.Sprint(lag)
		}
	}
	return cellOut{rows: [][]string{{
		fmt.Sprint(dur), healCell, boolCell(converged), convergedCell, lagCell, latencyCell,
	}}, steps: k.Steps()}
}
