package bench

import (
	"fmt"

	"repro/internal/ec"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/retransmit"
	"repro/internal/sim"
	"repro/internal/sim/adversary"
	"repro/internal/trace"
)

// E11LossSweep measures what the paper's §2 eventual-delivery assumption is
// actually WORTH: the same eventual-consensus workload (Algorithm 4, driven
// through a fixed ladder of instances) runs over an increasingly lossy wire
// (adversary.Lossy with bursts), once raw and once inside retransmit.Wrap.
//
// Algorithm 4 sends each promote(v, ℓ) exactly once, so a raw lossy link
// makes EC-Termination structurally fragile: a process that misses the
// leader's single promote for instance ℓ is stuck at ℓ forever — each lost
// leader-promote is a permanent hole, and with L instances and n−1 receivers
// the chance that NO hole opens decays like (1−r)^(L(n−1)). The table shows
// exactly that: convergence at 0 loss, divergence (stuck processes, no
// convergence tick) from 10% up, and — the retransmission layer's point —
// a finite convergence tick restored in EVERY cell once retransmit.Wrap
// carries the same protocol, at the measured cost in resends.
func E11LossSweep(opts Options) Table { return e11Spec(opts).run() }

// e11Spec decomposes E11 into one cell per (drop rate, mode) pair.
func e11Spec(opts Options) spec {
	const (
		n         = 4
		instances = 8
	)
	rates := []float64{0, 0.05, 0.10, 0.20, 0.30}
	if opts.Quick {
		rates = []float64{0, 0.10, 0.30}
	}
	s := spec{shell: Table{
		ID:     "E11",
		Title:  "EC convergence vs message loss, with and without retransmission",
		Claim:  "raw loss breaks eventual delivery and with it EC-Termination; retransmit.Wrap restores both end-to-end",
		Header: []string{"drop", "mode", "converged", "instances decided", "converged at", "lost", "resends"},
		Notes: []string{
			fmt.Sprintf("n=%d, Algorithm 4 driven through %d instances, stable leader p1; adversary.Lossy, bursts up to 4", n, instances),
			"instances decided = min over processes of the consecutively-decided prefix",
			"a process that misses the leader's single promote for an instance is stuck there forever (raw mode)",
		},
	}}
	for _, rate := range rates {
		for _, wrapped := range []bool{false, true} {
			rate, wrapped := rate, wrapped
			s.cells = append(s.cells, func() cellOut {
				return e11Cell(opts, rate, wrapped, instances, n)
			})
		}
	}
	return s
}

// e11Cell runs one (rate, mode) cell and reports its row.
func e11Cell(opts Options, rate float64, wrapped bool, instances, n int) cellOut {
	fp := model.NewFailurePattern(n)
	det := fd.NewOmegaStable(fp, 1)
	rec := trace.NewRecorder(n)
	driver := func(p model.ProcID, inst int) (string, bool) {
		if inst > instances {
			return "", false
		}
		return fmt.Sprintf("v/%v/%d", p, inst), true
	}
	factory := ec.DrivenFactory(driver)
	if wrapped {
		factory = retransmit.Wrap(factory, retransmit.Options{Seed: opts.seed()})
	}
	k := sim.New(fp, det, factory, sim.Options{
		Seed: opts.seed(),
		Network: func() sim.NetworkModel {
			return &adversary.Lossy{Drop: rate, Burst: 4}
		},
	})
	defer opts.observe(k)()
	k.SetObserver(rec)
	correct := fp.Correct()
	k.RunUntil(25000, func(*sim.Kernel) bool { return rec.AllDecided(correct, instances) })
	k.Run(k.Now() + 500)

	decided := instances
	convergedAt := model.Time(0)
	for _, p := range correct {
		have := make(map[int]model.Time, instances)
		for _, d := range rec.Decisions(p) {
			if _, dup := have[d.Instance]; !dup {
				have[d.Instance] = d.T
			}
		}
		prefix := 0
		for {
			t, ok := have[prefix+1]
			if !ok {
				break
			}
			if t > convergedAt {
				convergedAt = t
			}
			prefix++
		}
		if prefix < decided {
			decided = prefix
		}
	}
	converged := decided == instances
	convergedCell := "-"
	if converged {
		convergedCell = fmt.Sprint(convergedAt)
	}
	mode, resends := "raw", "-"
	if wrapped {
		mode = "retransmit"
		var total int64
		for _, p := range correct {
			total += k.Automaton(p).(*retransmit.Automaton).Resends()
		}
		resends = fmt.Sprint(total)
	}
	return cellOut{rows: [][]string{{
		fmt.Sprintf("%.0f%%", rate*100), mode, boolCell(converged),
		fmt.Sprintf("%d/%d", decided, instances), convergedCell,
		fmt.Sprint(k.MessagesLost()), resends,
	}}, steps: k.Steps()}
}
