package bench

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/tob"
	"repro/internal/trace"
)

// E5SigmaGap operationalizes the paper's headline gap (§1, §7): with only a
// correct minority, any majority-quorum protocol blocks (0 operations),
// while the paper's ETOB — needing only Ω — keeps delivering; adding the Σ
// oracle (detector Ω+Σ) restores liveness to the strong protocols, showing
// that Σ is exactly the information separating consistency from eventual
// consistency.
func E5SigmaGap(opts Options) Table { return e5Spec(opts).run() }

// e5Spec decomposes E5 into one cell per protocol: three broadcast stacks
// and two ABD register configurations. Each cell builds its own crash
// pattern, so nothing is shared.
func e5Spec(opts Options) spec {
	const n = 5
	// 2 of 5 correct: p3, p4, p5 crash at t=0.
	mkPattern := func() *model.FailurePattern {
		fp := model.NewFailurePattern(n)
		fp.Crash(3, 0)
		fp.Crash(4, 0)
		fp.Crash(5, 0)
		return fp
	}
	ops := 6
	if opts.Quick {
		ops = 3
	}
	s := spec{shell: Table{
		ID:     "E5",
		Title:  "Progress with a correct MINORITY (2 of 5)",
		Claim:  "eventual consistency needs only Omega; strong consistency additionally needs Sigma (the exact gap)",
		Header: []string{"protocol", "detector", "ops submitted", "ops completed", "live"},
		Notes: []string{
			"broadcast protocols: completed = messages stably delivered at every correct process",
			"ABD register: completed = finished read/write operations at the clients",
		},
	}}

	// Broadcast protocols.
	type bcase struct {
		name    string
		factory model.AutomatonFactory
		det     func(fp *model.FailurePattern) fd.Detector
		detName string
	}
	bcases := []bcase{
		{"ETOB (Alg 5)", etob.Factory(),
			func(fp *model.FailurePattern) fd.Detector { return fd.NewOmegaStable(fp, 1) }, "Omega"},
		{"Paxos log, majority", tob.PaxosLog(consensus.MajorityQuorums),
			func(fp *model.FailurePattern) fd.Detector { return fd.NewOmegaStable(fp, 1) }, "Omega"},
		{"Paxos log, Sigma quorums", tob.PaxosLog(consensus.SigmaQuorums),
			func(fp *model.FailurePattern) fd.Detector {
				return fd.NewOmegaSigma(fd.NewOmegaStable(fp, 1), fd.NewSigma(fp, 0))
			}, "Omega+Sigma"},
	}
	for _, c := range bcases {
		s.cells = append(s.cells, func() cellOut {
			fp := mkPattern()
			rec := trace.NewRecorder(n)
			k := sim.New(fp, c.det(fp), c.factory, sim.Options{Seed: opts.seed()})
			defer opts.observe(k)()
			k.SetObserver(rec)
			var ids []string
			for i := 0; i < ops; i++ {
				p := fp.Correct()[i%2]
				id := fmt.Sprintf("op%d", i)
				ids = append(ids, id)
				k.ScheduleInput(p, model.Time(30+40*i), model.BroadcastInput{ID: id})
			}
			k.RunUntil(20000, func(*sim.Kernel) bool { return rec.AllDelivered(fp.Correct(), ids) })
			k.Run(k.Now() + 500)
			completed := 0
			for _, id := range ids {
				everywhere := true
				for _, p := range fp.Correct() {
					if _, ok := rec.StableDeliveryTime(p, id); !ok {
						everywhere = false
						break
					}
				}
				if everywhere {
					completed++
				}
			}
			return cellOut{rows: [][]string{{
				c.name, c.detName, fmt.Sprint(ops), fmt.Sprint(completed), boolCell(completed == ops),
			}}, steps: k.Steps()}
		})
	}

	// ABD register (read/write quorum substrate).
	type rcase struct {
		name    string
		mode    quorum.Mode
		det     func(fp *model.FailurePattern) fd.Detector
		detName string
	}
	rcases := []rcase{
		{"ABD register, majority", quorum.Majority,
			func(fp *model.FailurePattern) fd.Detector { return fd.NewOmegaStable(fp, 1) }, "Omega"},
		{"ABD register, Sigma quorums", quorum.SigmaFD,
			func(fp *model.FailurePattern) fd.Detector {
				return fd.NewOmegaSigma(fd.NewOmegaStable(fp, 1), fd.NewSigma(fp, 0))
			}, "Omega+Sigma"},
	}
	for _, c := range rcases {
		s.cells = append(s.cells, func() cellOut {
			fp := mkPattern()
			done := 0
			k := sim.New(fp, c.det(fp), quorum.Factory(c.mode), sim.Options{Seed: opts.seed()})
			defer opts.observe(k)()
			k.SetObserver(&opCounter{count: &done})
			for i := 0; i < ops; i++ {
				if i%2 == 0 {
					k.ScheduleInput(1, model.Time(30+60*i), quorum.WriteInput{Value: fmt.Sprintf("v%d", i)})
				} else {
					k.ScheduleInput(2, model.Time(30+60*i), quorum.ReadInput{})
				}
			}
			k.Run(20000)
			return cellOut{rows: [][]string{{
				c.name, c.detName, fmt.Sprint(ops), fmt.Sprint(done), boolCell(done == ops),
			}}, steps: k.Steps()}
		})
	}
	return s
}

// opCounter counts completed register operations.
type opCounter struct {
	sim.NopObserver
	count *int
}

func (o *opCounter) OnOutput(_ model.ProcID, _ model.Time, v any) {
	switch v.(type) {
	case quorum.WriteDone, quorum.ReadDone:
		*o.count++
	}
}
