package bench

import "testing"

// TestMetricsCompare pins the overhead audit's contract on a pair of quick
// experiments: one result per experiment in selection order, tables
// bit-identical on/off (MetricsCompare errors otherwise), non-negative
// timings, and a spread that is the max of the two runs' spreads.
func TestMetricsCompare(t *testing.T) {
	r := Runner{Opts: Options{Quick: true}, Parallel: 2, Repeat: 2}
	results, err := MetricsCompare(r, []string{"E1", "E11"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].ID != "E1" || results[1].ID != "E11" {
		t.Fatalf("unexpected results: %+v", results)
	}
	for _, mr := range results {
		if mr.OffMS <= 0 || mr.OnMS <= 0 {
			t.Errorf("%s: off_ms=%v on_ms=%v, want both > 0", mr.ID, mr.OffMS, mr.OnMS)
		}
		if got := mr.OnMS - mr.OffMS; got-mr.DeltaMS > 1e-6 || mr.DeltaMS-got > 1e-6 {
			t.Errorf("%s: delta_ms=%v, want on-off=%v", mr.ID, mr.DeltaMS, got)
		}
		if mr.SpreadMS < 0 {
			t.Errorf("%s: negative spread %v", mr.ID, mr.SpreadMS)
		}
	}
}

// TestMetricsOptionIdenticalTables is the perturbation-freedom property on
// its own: a metrics-on run must produce byte-identical tables to the
// default, across every experiment in the suite (quick workloads).
func TestMetricsOptionIdenticalTables(t *testing.T) {
	off, err := Runner{Opts: Options{Quick: true}, Parallel: 4}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	on, err := Runner{Opts: Options{Quick: true, Metrics: true}, Parallel: 4}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := formatAll(off), formatAll(on); a != b {
		t.Fatalf("metrics registry changed the tables:\n--- off ---\n%s\n--- on ---\n%s", a, b)
	}
}
