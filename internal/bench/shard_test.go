package bench

import (
	"strings"
	"testing"
	"time"
)

// TestShardsReassembleToSerialTable is the -shard contract: running shards
// 0/2 and 1/2 independently and stitching each cell's rows back together (in
// cell order, from whichever shard owns the cell) must reproduce the serial
// table byte-for-byte.
func TestShardsReassembleToSerialTable(t *testing.T) {
	opts := Options{Quick: true}
	serial, err := Runner{Opts: opts, Parallel: 1}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	shard0, err := Runner{Opts: opts, Parallel: 2, Shard: Shard{Index: 0, Count: 2}}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	shard1, err := Runner{Opts: opts, Parallel: 2, Shard: Shard{Index: 1, Count: 2}}.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(shard0) != len(serial) || len(shard1) != len(serial) {
		t.Fatalf("result counts differ: serial=%d shard0=%d shard1=%d", len(serial), len(shard0), len(shard1))
	}

	merged := make([]Result, len(serial))
	for i := range serial {
		m := Result{Table: shard0[i].Table}
		m.Table.Rows = nil
		if shard0[i].Cells != shard1[i].Cells {
			t.Fatalf("%s: shards disagree on cell count", serial[i].Table.ID)
		}
		for c := 0; c < shard0[i].Cells; c++ {
			r0, r1 := shard0[i].ByCell[c], shard1[i].ByCell[c]
			switch {
			case r0 != nil && r1 != nil:
				t.Fatalf("%s cell %d: owned by both shards", serial[i].Table.ID, c)
			case r0 != nil:
				m.Table.Rows = append(m.Table.Rows, r0...)
			case r1 != nil:
				m.Table.Rows = append(m.Table.Rows, r1...)
			default:
				t.Fatalf("%s cell %d: owned by neither shard", serial[i].Table.ID, c)
			}
		}
		merged[i] = m
	}
	if got, want := formatAll(merged), formatAll(serial); got != want {
		t.Fatalf("reassembled shards differ from serial:\n--- merged ---\n%s\n--- serial ---\n%s", got, want)
	}
}

// TestShardValidation: out-of-range shard indices must fail the run.
func TestShardValidation(t *testing.T) {
	for _, sh := range []Shard{{Index: 2, Count: 2}, {Index: -1, Count: 3}} {
		if _, err := (Runner{Opts: Options{Quick: true}, Shard: sh}).Run([]string{"e2"}); err == nil {
			t.Errorf("shard %+v must be rejected", sh)
		}
	}
}

// TestCellTimeoutIsolatesDivergentCell: a cell that never finishes must not
// hang the run; it is replaced by a TIMEOUT marker row while the other cells
// of the suite still produce their normal rows.
func TestCellTimeoutIsolatesDivergentCell(t *testing.T) {
	hang := spec{
		shell: Table{ID: "EHANG", Header: []string{"x"}},
		cells: []cell{
			func() cellOut { return cellOut{rows: [][]string{{"ok"}}} },
			func() cellOut { select {} }, // diverges forever
		},
	}
	type slowRunner struct{ Runner }
	r := slowRunner{Runner{CellTimeout: 50 * time.Millisecond, Parallel: 2}}

	// Exercise runCell directly against the divergent cell, then the Runner
	// plumbing against the normal one.
	out, timedOut := runCell(hang.cells[1], r.CellTimeout)
	if !timedOut {
		t.Fatal("divergent cell did not time out")
	}
	if len(out.rows) != 1 || !strings.HasPrefix(out.rows[0][0], "TIMEOUT:") {
		t.Fatalf("unexpected timeout rows: %v", out.rows)
	}
	out, timedOut = runCell(hang.cells[0], r.CellTimeout)
	if timedOut || len(out.rows) != 1 || out.rows[0][0] != "ok" {
		t.Fatalf("healthy cell mangled: %v timedOut=%v", out.rows, timedOut)
	}
}

// TestCellTimeoutUnboundedByDefault: without a CellTimeout the suite runs on
// the calling goroutine exactly as before (the golden tests pin the output).
func TestCellTimeoutUnboundedByDefault(t *testing.T) {
	res, err := Runner{Opts: Options{Quick: true}, Parallel: 1}.Run([]string{"e2"})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].TimedOut != 0 {
		t.Fatalf("unexpected timeouts: %d", res[0].TimedOut)
	}
}
