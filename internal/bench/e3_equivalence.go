package bench

import (
	"fmt"

	"repro/internal/ec"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transform"
)

// E3Equivalence makes Theorem 1 executable: Algorithm 1 turns EC into ETOB,
// Algorithm 2 turns ETOB into EC, and the two compose back to EC. Each stack
// is property-checked and its overhead (link-level messages) reported.
func E3Equivalence(opts Options) Table { return e3Spec(opts).run() }

// e3Spec decomposes E3 into one cell per transformation stack.
func e3Spec(opts Options) spec {
	n := 3
	s := spec{shell: Table{
		ID:     "E3",
		Title:  "EC <-> ETOB transformations (Algorithms 1 and 2)",
		Claim:  "EC and ETOB are equivalent in any environment (Theorem 1)",
		Header: []string{"stack", "spec checked", "ok", "tau / k", "messages"},
		Notes: []string{
			fmt.Sprintf("n=%d, Ω stabilizes at t=600 after self-trust divergence", n),
			"tau: measured ETOB stabilization time; k: measured EC agreement instance",
		},
	}}
	driver := func(p model.ProcID, inst int) (string, bool) {
		return fmt.Sprintf("v/%v/%d", p, inst), true
	}

	// Stack 1: Algorithm 1 over Algorithm 4 — check the ETOB spec.
	s.cells = append(s.cells, func() cellOut {
		fp := model.NewFailurePattern(n)
		det := fd.NewOmegaEventual(fp, 1, 600)
		rec := trace.NewRecorder(n)
		factory := transform.ECToETOBFactory(func(p model.ProcID, nn int) transform.ECProtocol {
			return ec.New(p, nn)
		})
		k := sim.New(fp, det, factory, sim.Options{Seed: opts.seed()})
		defer opts.observe(k)()
		k.SetObserver(rec)
		var ids []string
		for i := 0; i < 3; i++ {
			for _, p := range model.Procs(n) {
				id := fmt.Sprintf("p%d#%d", p, i)
				ids = append(ids, id)
				k.ScheduleInput(p, model.Time(30+40*i)+model.Time(p), model.BroadcastInput{ID: id})
			}
		}
		k.RunUntil(30000, func(k *sim.Kernel) bool {
			return k.Now() > 800 && rec.AllDelivered(fp.Correct(), ids)
		})
		settle := k.Now()
		k.Run(settle + 1000)
		rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{InputCutoff: 500, SettleTime: settle})
		return cellOut{rows: [][]string{{
			"Alg1(EC->ETOB) over Alg4", "ETOB", boolCell(rep.OK()),
			fmt.Sprintf("tau=%d", rep.Tau), fmt.Sprint(rec.Sends()),
		}}, steps: k.Steps()}
	})

	// Stack 2: Algorithm 2 over Algorithm 5 — check the EC spec.
	s.cells = append(s.cells, func() cellOut {
		fp := model.NewFailurePattern(n)
		det := fd.NewOmegaEventual(fp, 1, 600)
		rec := trace.NewRecorder(n)
		factory := transform.ETOBToECFactory(func(p model.ProcID, nn int) transform.ETOBProtocol {
			return etob.New(p, nn)
		}, transform.Driver(driver))
		k := sim.New(fp, det, factory, sim.Options{Seed: opts.seed() + 1})
		defer opts.observe(k)()
		k.SetObserver(rec)
		k.RunUntil(30000, func(k *sim.Kernel) bool {
			return k.Now() > 1500 && rec.AllDecided(fp.Correct(), 5)
		})
		rep := trace.CheckEC(rec, fp.Correct(), 5)
		return cellOut{rows: [][]string{{
			"Alg2(ETOB->EC) over Alg5", "EC", boolCell(rep.OK()),
			fmt.Sprintf("k=%d", rep.AgreementK), fmt.Sprint(rec.Sends()),
		}}, steps: k.Steps()}
	})

	// Stack 3: the roundtrip Alg2 ∘ Alg1 over Alg4 — check the EC spec.
	s.cells = append(s.cells, func() cellOut {
		fp := model.NewFailurePattern(n)
		det := fd.NewOmegaEventual(fp, 1, 600)
		rec := trace.NewRecorder(n)
		factory := transform.ETOBToECFactory(func(p model.ProcID, nn int) transform.ETOBProtocol {
			return transform.NewECToETOB(p, nn, ec.New(p, nn))
		}, transform.Driver(driver))
		k := sim.New(fp, det, factory, sim.Options{Seed: opts.seed() + 2})
		defer opts.observe(k)()
		k.SetObserver(rec)
		k.RunUntil(60000, func(k *sim.Kernel) bool {
			return k.Now() > 1500 && rec.AllDecided(fp.Correct(), 3)
		})
		rep := trace.CheckEC(rec, fp.Correct(), 3)
		return cellOut{rows: [][]string{{
			"Alg2 over Alg1 over Alg4", "EC", boolCell(rep.OK()),
			fmt.Sprintf("k=%d", rep.AgreementK), fmt.Sprint(rec.Sends()),
		}}, steps: k.Steps()}
	})
	return s
}
