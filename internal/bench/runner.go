package bench

import (
	"runtime"
	"sync"
	"time"
)

// Runner is the parallel sweep engine: it decomposes experiments into their
// independent cells (one seeded kernel per cell), fans the cells across a
// bounded worker pool, and reassembles each table in registry/cell order —
// so the output is byte-identical to the serial path no matter how the
// scheduler interleaves workers. Determinism comes for free from the cell
// contract (each cell is self-contained and seeded) plus index-addressed
// result slots; there is no cross-worker communication beyond the job feed.
type Runner struct {
	// Opts are the experiment options applied to every experiment.
	Opts Options
	// Parallel is the worker-pool size: 1 runs the cells serially on the
	// calling goroutine (the reference path), larger values fan out across
	// that many workers, and values <= 0 default to GOMAXPROCS.
	Parallel int
}

// Result is one experiment's assembled table plus the perf accounting the
// BENCH_*.json report records.
type Result struct {
	Table Table
	// Cells is the number of independent cells the experiment decomposed into.
	Cells int
	// Steps is the total kernel steps executed across the cells.
	Steps int64
	// CellTime is the summed execution time of the cells (CPU-seconds, not
	// wall time: under parallelism cells overlap, so the suite's wall time is
	// measured by the caller around Run).
	CellTime time.Duration
}

// Run executes the selected experiments (nil or empty = the full suite) and
// returns their results in suite order. An unknown ID fails the whole run.
func (r Runner) Run(ids []string) ([]Result, error) {
	specs, err := specsFor(ids, r.Opts)
	if err != nil {
		return nil, err
	}
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type slot struct {
		out cellOut
		dur time.Duration
	}
	cells := make([][]slot, len(specs))
	type job struct{ e, c int }
	var jobs []job
	for i, s := range specs {
		cells[i] = make([]slot, len(s.cells))
		for c := range s.cells {
			jobs = append(jobs, job{i, c})
		}
	}

	runJob := func(j job) {
		start := time.Now()
		out := specs[j.e].cells[j.c]()
		cells[j.e][j.c] = slot{out: out, dur: time.Since(start)}
	}
	if workers <= 1 {
		for _, j := range jobs {
			runJob(j)
		}
	} else {
		feed := make(chan job)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range feed {
					runJob(j)
				}
			}()
		}
		for _, j := range jobs {
			feed <- j
		}
		close(feed)
		wg.Wait()
	}

	results := make([]Result, len(specs))
	for i, s := range specs {
		res := Result{Table: s.shell, Cells: len(s.cells)}
		for _, sl := range cells[i] {
			res.Table.Rows = append(res.Table.Rows, sl.out.rows...)
			res.Steps += sl.out.steps
			res.CellTime += sl.dur
		}
		results[i] = res
	}
	return results, nil
}
