package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Shard selects a deterministic 1/Count slice of the suite's cells for
// multi-machine sweeps: the cell with global index g (counting across the
// selected experiments in registry/cell order) belongs to shard Index iff
// g % Count == Index. Count <= 1 means no sharding. Because the partition is
// a pure function of the cell order, running every shard anywhere and
// concatenating their per-cell rows (Result.ByCell) reassembles the exact
// serial table.
type Shard struct {
	Index, Count int
}

// enabled reports whether sharding is active.
func (s Shard) enabled() bool { return s.Count > 1 }

// owns reports whether this shard runs global cell g.
func (s Shard) owns(g int) bool { return !s.enabled() || g%s.Count == s.Index }

// Runner is the parallel sweep engine: it decomposes experiments into their
// independent cells (one seeded kernel per cell), fans the cells across a
// bounded worker pool, and reassembles each table in registry/cell order —
// so the output is byte-identical to the serial path no matter how the
// scheduler interleaves workers. Determinism comes for free from the cell
// contract (each cell is self-contained and seeded) plus index-addressed
// result slots; there is no cross-worker communication beyond the job feed.
type Runner struct {
	// Opts are the experiment options applied to every experiment.
	Opts Options
	// Parallel is the worker-pool size: 1 runs the cells serially on the
	// calling goroutine (the reference path), larger values fan out across
	// that many workers, and values <= 0 default to GOMAXPROCS.
	Parallel int
	// CellTimeout, when positive, bounds each cell's execution: a cell that
	// exceeds it is abandoned (its goroutine keeps running detached — the
	// deterministic kernel has no preemption points — but the worker moves
	// on) and contributes a single "TIMEOUT: ..." row, so one divergent run
	// cannot hang the whole table.
	CellTimeout time.Duration
	// Shard restricts the run to a deterministic subset of cells for
	// multi-machine sweeps; cells owned by other shards are skipped and
	// their ByCell entries stay nil.
	Shard Shard
	// Repeat runs every cell N times and records the MEDIAN execution time
	// (values <= 1 mean once). Cells are deterministic, so the rows are
	// identical across repetitions and only the timing varies — the median
	// tames the ±2× single-core scheduling noise that makes one-shot cell
	// times unreliable in BENCH_*.json comparisons.
	Repeat int
}

// Result is one experiment's assembled table plus the perf accounting the
// BENCH_*.json report records.
type Result struct {
	Table Table
	// Cells is the number of independent cells the experiment decomposed into
	// (including cells skipped by sharding).
	Cells int
	// Steps is the total kernel steps executed across the cells that ran.
	Steps int64
	// CellTime is the summed execution time of the cells (CPU-seconds, not
	// wall time: under parallelism cells overlap, so the suite's wall time is
	// measured by the caller around Run). With Repeat > 1 each cell
	// contributes its median-of-N time.
	CellTime time.Duration
	// CellSpread is the summed per-cell time SPREAD (max − min across the
	// Repeat samples; zero when Repeat <= 1 or a cell was sampled once): the
	// run-to-run variance the medians in CellTime are taming, surfaced so a
	// BENCH_*.json reader can judge how trustworthy each cell time is on a
	// noisy single-core runner.
	CellSpread time.Duration
	// ByCell holds each cell's rows in cell order: nil for cells this shard
	// skipped, so shards reassemble into the serial table by picking every
	// cell's rows from the shard that owns it.
	ByCell [][][]string
	// TimedOut counts cells that hit CellTimeout.
	TimedOut int
}

// Run executes the selected experiments (nil or empty = the full suite) and
// returns their results in suite order. An unknown ID or an invalid shard
// fails the whole run.
func (r Runner) Run(ids []string) ([]Result, error) {
	if r.Shard.enabled() && (r.Shard.Index < 0 || r.Shard.Index >= r.Shard.Count) {
		return nil, fmt.Errorf("bench: shard index %d out of range [0, %d)", r.Shard.Index, r.Shard.Count)
	}
	specs, err := specsFor(ids, r.Opts)
	if err != nil {
		return nil, err
	}
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type slot struct {
		out      cellOut
		dur      time.Duration
		spread   time.Duration
		ran      bool
		timedOut bool
	}
	cells := make([][]slot, len(specs))
	type job struct{ e, c int }
	var jobs []job
	global := 0
	for i, s := range specs {
		cells[i] = make([]slot, len(s.cells))
		for c := range s.cells {
			if r.Shard.owns(global) {
				jobs = append(jobs, job{i, c})
			}
			global++
		}
	}

	repeat := r.Repeat
	if repeat < 1 {
		repeat = 1
	}
	runJob := func(j job) {
		// Repetitions only steady the timing: the first SUCCESSFUL run's rows
		// are the cell's rows, and a repetition that trips CellTimeout (the
		// wall-clock noise -repeat exists to tame can push a borderline cell
		// over the bound) neither overwrites them nor skews the median — it
		// just ends the sampling early. Only a timeout with no successful run
		// at all marks the cell TIMEOUT.
		var durs []time.Duration
		var out cellOut
		var haveOut, timedOut bool
		for rep := 0; rep < repeat; rep++ {
			start := time.Now()
			o, to := runCell(specs[j.e].cells[j.c], r.CellTimeout)
			if to {
				if !haveOut {
					out, timedOut = o, true
					durs = append(durs, time.Since(start))
				}
				break
			}
			if !haveOut {
				out, haveOut = o, true
			}
			durs = append(durs, time.Since(start))
		}
		cells[j.e][j.c] = slot{out: out, dur: median(durs), spread: spread(durs), ran: true, timedOut: timedOut}
	}
	if workers <= 1 {
		for _, j := range jobs {
			runJob(j)
		}
	} else {
		feed := make(chan job)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range feed {
					runJob(j)
				}
			}()
		}
		for _, j := range jobs {
			feed <- j
		}
		close(feed)
		wg.Wait()
	}

	results := make([]Result, len(specs))
	for i, s := range specs {
		res := Result{Table: s.shell, Cells: len(s.cells), ByCell: make([][][]string, len(s.cells))}
		for c, sl := range cells[i] {
			if !sl.ran {
				continue
			}
			res.ByCell[c] = sl.out.rows
			res.Table.Rows = append(res.Table.Rows, sl.out.rows...)
			res.Steps += sl.out.steps
			res.CellTime += sl.dur
			res.CellSpread += sl.spread
			if sl.timedOut {
				res.TimedOut++
			}
		}
		results[i] = res
	}
	return results, nil
}

// median returns the median duration (mean of the middle two for even
// counts). The input is sorted in place.
func median(durs []time.Duration) time.Duration {
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	n := len(durs)
	if n%2 == 1 {
		return durs[n/2]
	}
	return (durs[n/2-1] + durs[n/2]) / 2
}

// spread returns max − min of the samples (zero for fewer than two): the
// per-cell time-spread column of the repro-bench/4 report. Call after median
// (which leaves durs sorted); a single sample has no spread to report.
func spread(durs []time.Duration) time.Duration {
	if len(durs) < 2 {
		return 0
	}
	return durs[len(durs)-1] - durs[0]
}

// runCell executes one cell, bounded by timeout when positive. A timed-out
// cell is replaced by a marker row; its goroutine is abandoned (Go cannot
// kill it), which isolates the table from a divergent run at the cost of the
// runaway goroutine's CPU until process exit.
func runCell(c cell, timeout time.Duration) (cellOut, bool) {
	if timeout <= 0 {
		return c(), false
	}
	done := make(chan cellOut, 1)
	go func() { done <- c() }()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case out := <-done:
		return out, false
	case <-timer.C:
		return cellOut{rows: [][]string{{fmt.Sprintf("TIMEOUT: cell abandoned after %v", timeout)}}}, true
	}
}
