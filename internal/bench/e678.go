package bench

import (
	"fmt"

	"repro/internal/ec"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/smr"
	"repro/internal/trace"
	"repro/internal/transform"
)

// E6StableOmega checks §5 property 2: whenever Ω outputs the same leader at
// every process from time 0, Algorithm 5 satisfies the STRONG total order
// broadcast specification (measured τ = 0), across seeds and leaders.
func E6StableOmega(opts Options) Table { return e6Spec(opts).run() }

// e6Spec decomposes E6 into one cell per (leader, seed) pair.
func e6Spec(opts Options) spec {
	n := 4
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if opts.Quick {
		seeds = seeds[:2]
	}
	s := spec{shell: Table{
		ID:     "E6",
		Title:  "Algorithm 5 under stable Omega is STRONG total order broadcast",
		Claim:  "if Omega outputs the same leader from the start, ETOB implements TOB (paper §5 property 2)",
		Header: []string{"leader", "seed", "delivered", "tau", "strong TOB"},
		Notes:  []string{fmt.Sprintf("n=%d, 12 broadcasts, adversarial random link delays per seed", n)},
	}}
	for _, leader := range []model.ProcID{1, 3} {
		for _, seed := range seeds {
			s.cells = append(s.cells, func() cellOut {
				fp := model.NewFailurePattern(n)
				det := fd.NewOmegaStable(fp, leader)
				rec := trace.NewRecorder(n)
				k := sim.New(fp, det, etob.Factory(), sim.Options{Seed: seed, MinDelay: 5, MaxDelay: 60})
				defer opts.observe(k)()
				k.SetObserver(rec)
				var ids []string
				for i := 0; i < 12; i++ {
					p := model.ProcID(i%n + 1)
					id := fmt.Sprintf("m%d", i)
					ids = append(ids, id)
					k.ScheduleInput(p, model.Time(20+17*i), model.BroadcastInput{ID: id})
				}
				k.RunUntil(30000, func(*sim.Kernel) bool { return rec.AllDelivered(fp.Correct(), ids) })
				settle := k.Now()
				k.Run(settle + 500)
				rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{SettleTime: settle})
				return cellOut{rows: [][]string{{
					leader.String(), fmt.Sprint(seed),
					fmt.Sprint(len(rec.FinalSeq(1))),
					fmt.Sprint(rep.Tau), boolCell(rep.StrongTOB()),
				}}, steps: k.Steps()}
			})
		}
	}
	return s
}

// E7CausalOrder checks §5 property 3: TOB-Causal-Order holds at ALL times —
// even during a split-brain window in which half the processes trust one
// leader and half another, replicas diverge (ETOB τ > 0, SMR rebuilds > 0),
// and yet no delivered sequence ever inverts a causal dependency.
func E7CausalOrder(opts Options) Table { return e7Spec(opts).run() }

// e7Spec decomposes E7 into one cell per seed.
func e7Spec(opts Options) spec {
	n := 4
	seeds := []int64{10, 11, 12, 13}
	if opts.Quick {
		seeds = seeds[:2]
	}
	s := spec{shell: Table{
		ID:     "E7",
		Title:  "Causal order during leader disagreement (split brain until t=2000)",
		Claim:  "TOB-Causal-Order holds even while Omega outputs different leaders (paper §5 property 3)",
		Header: []string{"seed", "causal ok", "tau", "diverged (tau>0)", "SMR rebuilds", "converged"},
		Notes: []string{
			"workload: three causal chains plus a cross-chain dependency, broadcast during the split",
			"SMR rebuilds > 0 witnesses real divergence; causal ok must hold regardless",
		},
	}}
	for _, seed := range seeds {
		s.cells = append(s.cells, func() cellOut {
			fp := model.NewFailurePattern(n)
			det := fd.NewOmegaSplit(fp, 2, 1, 1, 2000)
			rec := trace.NewRecorder(n)
			factory := smr.ReplicaFactory(etob.Factory(), smr.LogFactory)
			k := sim.New(fp, det, factory, sim.Options{Seed: seed})
			defer opts.observe(k)()
			k.SetObserver(rec)
			// Causal chains via explicit deps. Causally concurrent messages are
			// broadcast near-simultaneously from different processes so the two
			// leader camps observe — and promote — different interleavings.
			type bc struct {
				id, dep string
				p       model.ProcID
				at      model.Time
			}
			workload := []bc{
				{"a1|cmd a1", "", 1, 30}, {"b1|cmd b1", "", 4, 32},
				{"a2|cmd a2", "a1|cmd a1", 3, 150}, {"b2|cmd b2", "b1|cmd b1", 2, 152},
				{"a3|cmd a3", "a2|cmd a2", 1, 270}, {"c1|cmd c1", "a2|cmd a2", 2, 272},
			}
			var ids []string
			for _, w := range workload {
				in := model.BroadcastInput{ID: w.id}
				if w.dep != "" {
					in.Deps = []string{w.dep}
				}
				ids = append(ids, w.id)
				k.ScheduleInput(w.p, w.at, in)
			}
			k.RunUntil(30000, func(k *sim.Kernel) bool {
				return k.Now() > 2500 && rec.AllDelivered(fp.Correct(), ids)
			})
			settle := k.Now()
			k.Run(settle + 500)
			rep := trace.CheckETOB(rec, fp.Correct(), trace.CheckOptions{SettleTime: settle})
			rebuilds := 0
			for _, p := range model.Procs(n) {
				rebuilds += k.Automaton(p).(*smr.Replica).Rebuilds()
			}
			return cellOut{rows: [][]string{{
				fmt.Sprint(seed),
				boolCell(rep.CausalOrder.OK),
				fmt.Sprint(rep.Tau),
				boolCell(rep.Tau > 0),
				fmt.Sprint(rebuilds),
				boolCell(rep.OK()),
			}}, steps: k.Steps()}
		})
	}
	return s
}

// E8EIC checks Appendix A: Algorithm 6 turns EC into eventual irrevocable
// consensus (finitely many revocations: IntegrityK finite), and Algorithm 7
// turns EIC back into EC.
func E8EIC(opts Options) Table { return e8Spec(opts).run() }

// e8Spec decomposes E8 into one cell per transformation direction.
func e8Spec(opts Options) spec {
	n := 3
	s := spec{shell: Table{
		ID:     "E8",
		Title:  "EC <-> EIC transformations (Algorithms 6 and 7, Appendix A)",
		Claim:  "EC and EIC are equivalent; decisions are revoked only finitely often (Theorem 3)",
		Header: []string{"stack", "spec", "ok", "integrity k / agreement k", "revocations"},
		Notes:  []string{fmt.Sprintf("n=%d, Ω self-trust until t=1000 forces early revocable decisions", n)},
	}}
	driver := func(p model.ProcID, inst int) (string, bool) {
		return fmt.Sprintf("v/%v/%d", p, inst), true
	}

	// Algorithm 6 over Algorithm 4 — check EIC.
	s.cells = append(s.cells, func() cellOut {
		fp := model.NewFailurePattern(n)
		det := fd.NewOmegaEventual(fp, 1, 1000)
		rec := trace.NewRecorder(n)
		factory := transform.ECToEICFactory(func(p model.ProcID, nn int) transform.ECProtocol {
			return ec.New(p, nn)
		}, transform.Driver(driver))
		k := sim.New(fp, det, factory, sim.Options{Seed: opts.seed()})
		defer opts.observe(k)()
		k.SetObserver(rec)
		k.RunUntil(30000, func(k *sim.Kernel) bool {
			return k.Now() > 3000 && rec.AllDecided(fp.Correct(), 5)
		})
		rep := trace.CheckEIC(rec, fp.Correct(), 5)
		revocations := 0
		for _, p := range model.Procs(n) {
			seen := map[int]int{}
			for _, d := range rec.Decisions(p) {
				seen[d.Instance]++
				if seen[d.Instance] > 1 {
					revocations++
				}
			}
		}
		return cellOut{rows: [][]string{{
			"Alg6(EC->EIC) over Alg4", "EIC", boolCell(rep.OK()),
			fmt.Sprintf("integrityK=%d", rep.IntegrityK), fmt.Sprint(revocations),
		}}, steps: k.Steps()}
	})

	// Algorithm 7 over Algorithm 6 over Algorithm 4 — check EC.
	s.cells = append(s.cells, func() cellOut {
		fp := model.NewFailurePattern(n)
		det := fd.NewOmegaEventual(fp, 1, 1000)
		rec := trace.NewRecorder(n)
		factory := transform.EICToECFactory(func(p model.ProcID, nn int) transform.EICProtocol {
			return transform.NewECToEIC(p, nn, ec.New(p, nn))
		}, transform.Driver(driver))
		k := sim.New(fp, det, factory, sim.Options{Seed: opts.seed() + 1})
		defer opts.observe(k)()
		k.SetObserver(rec)
		k.RunUntil(30000, func(k *sim.Kernel) bool {
			return k.Now() > 2000 && rec.AllDecided(fp.Correct(), 5)
		})
		rep := trace.CheckEC(rec, fp.Correct(), 5)
		return cellOut{rows: [][]string{{
			"Alg7 over Alg6 over Alg4", "EC", boolCell(rep.OK()),
			fmt.Sprintf("agreementK=%d", rep.AgreementK), "-",
		}}, steps: k.Steps()}
	})
	return s
}
