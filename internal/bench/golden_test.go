package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenTables pins the E3, E4, and E8 table output byte-for-byte against
// snapshots captured before the CHT hot-path overhaul (testdata/golden_E*.txt,
// generated with `bench -exp eN -parallel 1` at the default seed). The
// interned configuration engine, the StructuredAlgorithm fast path, the
// incremental tree growth, and the transform-layer caches are all pure
// performance changes: every emitted row must stay identical.
func TestGoldenTables(t *testing.T) {
	opts := Options{Seed: 42}
	for _, id := range []string{"E3", "E4", "E8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden_"+id+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			tbl, ok := ByID(id, opts)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			if got := tbl.Format(); got != string(want) {
				t.Errorf("%s output drifted from golden snapshot.\n--- got ---\n%s\n--- want ---\n%s", id, got, want)
			}
		})
	}
}
