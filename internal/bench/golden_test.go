package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenTables pins table output byte-for-byte against committed
// snapshots (testdata/golden_E*.txt, generated with `bench -exp eN
// -parallel 1` at the default seed): E3/E4/E8 against their pre-CHT-overhaul
// snapshots (those changes were pure performance work), and E13 against the
// snapshot committed with the leader-aware adversary, so the measured
// protocol-aware-vs-blind gap cannot drift silently.
func TestGoldenTables(t *testing.T) {
	opts := Options{Seed: 42}
	for _, id := range []string{"E3", "E4", "E8", "E13"} {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden_"+id+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			tbl, ok := ByID(id, opts)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			if got := tbl.Format(); got != string(want) {
				t.Errorf("%s output drifted from golden snapshot.\n--- got ---\n%s\n--- want ---\n%s", id, got, want)
			}
		})
	}
}

// TestGoldenQuickSuite pins the ENTIRE pre-existing suite — every E1–E12
// quick table, exactly as `bench -quick -parallel 1` prints it — against a
// snapshot captured before the protocol-aware adversary landed. The new
// leadership hook, the scheduler refactor, the retransmission watermark, and
// the composition layer are all additive: not one cell of the existing
// experiments may move.
func TestGoldenQuickSuite(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_quick_suite.txt"))
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}
	results, err := (Runner{Opts: Options{Quick: true}, Parallel: 1}).Run(ids)
	if err != nil {
		t.Fatal(err)
	}
	if got := formatAll(results); got != string(want) {
		t.Errorf("E1–E12 quick suite drifted from the pre-adversary snapshot.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGoldenQuickSuiteE13E14 completes the E1–E14 gossip-off pin: E13/E14
// quick tables against the snapshot committed with the gossip dissemination
// mode. Gossip is strictly opt-in (zero-value gossip.Options), so the new
// dissemination layer, the digest anti-entropy, and the En scaling sweep may
// not move one cell of any existing experiment.
func TestGoldenQuickSuiteE13E14(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_quick_E13_E14.txt"))
	if err != nil {
		t.Fatal(err)
	}
	results, err := (Runner{Opts: Options{Quick: true}, Parallel: 1}).Run([]string{"E13", "E14"})
	if err != nil {
		t.Fatal(err)
	}
	if got := formatAll(results); got != string(want) {
		t.Errorf("E13–E14 quick tables drifted from the gossip-era snapshot.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
