package bench

import (
	"fmt"
	"time"

	"repro/internal/causal"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/gossip"
	"repro/internal/model"
	"repro/internal/sim"
)

// ScalingNResult is one (n, dissemination mode) cell of the En scaling
// experiment: the same ETOB workload — every process broadcasting a fixed
// number of ops — run at growing cluster sizes, once with the paper's
// all-to-all update(CG_i) broadcast and once with the gossip mode, recording
// kernel throughput and the dissemination traffic each mode actually paid.
//
// SendFanout is the analytic claim (envelopes ONE flush costs its sender:
// n−1 all-to-all, ceil(log2 n)+1 gossip); Envelopes/EnvPerOp are the measured
// systemwide totals including forwarding and anti-entropy, and Bytes charges
// each envelope its payload wire size — full O(nodes+edges) graphs in
// all-to-all mode, op deltas and ID digests in gossip mode. Promote traffic
// is excluded: the leader's promote broadcast is identical in both modes and
// would only blur the comparison.
type ScalingNResult struct {
	N    int    `json:"n"`
	Mode string `json:"mode"` // "all-to-all" | "gossip"
	Ops  int    `json:"ops"`
	// DeliveredPct is the fraction of (op, process) deliveries that landed
	// inside the horizon, in percent. Gossip trades bounded per-sender
	// fan-out for anti-entropy repair latency, so its tail can still be in
	// flight when the horizon closes; all-to-all should sit at 100.
	DeliveredPct float64 `json:"delivered_pct"`
	Steps        int64   `json:"steps"`
	WallMS       float64 `json:"wall_ms"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	SendFanout   int     `json:"send_fanout"`
	Envelopes    int64   `json:"envelopes"`
	EnvPerOp     float64 `json:"envelopes_per_op"`
	Bytes        int64   `json:"bytes"`
	BytesPerProc float64 `json:"bytes_per_proc"`
}

// scaleNObs tallies dissemination envelopes and their payload wire bytes,
// and tracks delivery progress (the summed length of every process's d_i)
// so the cell can stop as soon as dissemination completes — a fixed horizon
// would charge gossip mode for anti-entropy heartbeats long after the
// workload is done. UpdateMsg graphs are memoized by pointer: a broadcast
// shares one clone across all n recipients, so WireSize runs once per flush,
// not once per envelope.
type scaleNObs struct {
	envelopes int64
	bytes     int64
	memo      map[*causal.Graph]int
	seqLen    map[model.ProcID]int
	delivered int64
}

func newScaleNObs(n int) *scaleNObs {
	return &scaleNObs{memo: make(map[*causal.Graph]int), seqLen: make(map[model.ProcID]int, n)}
}

func (o *scaleNObs) OnSend(t model.Time, m sim.Message) {
	switch p := m.Payload.(type) {
	case etob.UpdateMsg:
		sz, ok := o.memo[p.CG]
		if !ok {
			sz = p.CG.WireSize()
			o.memo[p.CG] = sz
		}
		o.envelopes++
		o.bytes += int64(sz)
	case etob.GossipMsg:
		sz := 8 // age + framing
		for _, op := range p.Ops {
			sz += len(op.ID)
			for _, d := range op.Deps {
				sz += len(d)
			}
		}
		o.envelopes++
		o.bytes += int64(sz)
	case etob.DigestMsg:
		sz := 0
		for _, id := range p.IDs {
			sz += len(id)
		}
		o.envelopes++
		o.bytes += int64(sz)
	}
}

func (o *scaleNObs) OnDeliver(model.Time, sim.Message) {}
func (o *scaleNObs) OnOutput(p model.ProcID, _ model.Time, v any) {
	if s, ok := v.(model.SeqSnapshot); ok {
		o.delivered += int64(len(s.Seq) - o.seqLen[p])
		o.seqLen[p] = len(s.Seq)
	}
}
func (o *scaleNObs) OnInput(model.ProcID, model.Time, any) {}

// ScaleN runs the En scaling experiment over the given cluster sizes and
// returns two rows per n (all-to-all, then gossip) for the Report's
// "scaling_n" section. quick shrinks the per-process op count; the workload
// and all protocol randomness derive from seed, so everything but the
// wall-clock fields is reproducible.
func ScaleN(ns []int, quick bool, seed int64) []ScalingNResult {
	perProc := 2
	if quick {
		perProc = 1
	}
	var out []ScalingNResult
	for _, n := range ns {
		// AntiEntropyEvery 16 (one digest per 16 local timeouts): the
		// package default of 4 is tuned for fast repair in short tests; at
		// bench horizons it would spend most of its digests on an already
		// converged cluster and bury the rumor traffic being measured.
		gopts := gossip.Options{Enable: true, Seed: seed, AntiEntropyEvery: 16}
		modes := []struct {
			name    string
			factory model.AutomatonFactory
			fanout  int
		}{
			{"all-to-all", etob.Factory(), n - 1},
			{"gossip", etob.GossipFactory(etob.BatchOptions{}, gopts), gossip.Log2Ceil(n) + 1},
		}
		for _, mode := range modes {
			fp := model.NewFailurePattern(n)
			det := fd.NewOmegaStable(fp, 1)
			obs := newScaleNObs(n)
			k := sim.New(fp, det, mode.factory, sim.Options{Seed: seed + int64(n)})
			k.SetObserver(obs)
			// Ops arrive as a staggered stream (one submission per 10 time
			// units round-robin across processes), not one burst: the
			// causality graph must GROW across flushes for the modes to
			// differ — all-to-all re-ships the whole O(nodes+edges) history
			// with every update, deltas don't.
			ops := n * perProc
			for j := 0; j < perProc; j++ {
				for pi, p := range model.Procs(n) {
					at := model.Time(20 + (j*n+pi)*10)
					k.ScheduleInput(p, at, model.BroadcastInput{ID: fmt.Sprintf("b/%v/%d", p, j)})
				}
			}
			window := model.Time(20 + ops*10)
			want := int64(n * ops)
			start := time.Now()
			k.RunUntil(window+20000, func(*sim.Kernel) bool { return obs.delivered >= want })
			wall := time.Since(start)

			r := ScalingNResult{
				N:            n,
				Mode:         mode.name,
				Ops:          ops,
				DeliveredPct: 100 * float64(obs.delivered) / float64(want),
				Steps:        k.Steps(),
				WallMS:       ms(wall),
				SendFanout:   mode.fanout,
				Envelopes:    obs.envelopes,
				EnvPerOp:     float64(obs.envelopes) / float64(ops),
				Bytes:        obs.bytes,
				BytesPerProc: float64(obs.bytes) / float64(n),
			}
			if wall > 0 {
				r.StepsPerSec = float64(r.Steps) / wall.Seconds()
			}
			out = append(out, r)
		}
	}
	return out
}
