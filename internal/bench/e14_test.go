package bench

import "testing"

// TestE14QuorumStarveWeakerThanLeaderStarve pins E14's claim at both
// workload scales: redirecting the starvation target from the leader to a
// quorum transversal of its followers never delays convergence MORE than
// starving the leader, and on the transform workload — where the whole
// promotion pipeline runs through the leader's own step loop — it is
// STRICTLY weaker. Sigma's attack surface is not EC's: the pipeline's
// source outranks its audience.
func TestE14QuorumStarveWeakerThanLeaderStarve(t *testing.T) {
	for _, opts := range []Options{{Quick: true}, {}} {
		name := "full"
		if opts.Quick {
			name = "quick"
		}
		t.Run(name, func(t *testing.T) {
			cells := e13ConvergedAt(t, E14QuorumStarver(opts))
			for _, workload := range []string{"broadcast (E9)", "transform (E3)"} {
				leader := cells[[2]string{workload, "leader-aware"}]
				quorum := cells[[2]string{workload, "quorum-starve"}]
				if leader == 0 || quorum == 0 {
					t.Fatalf("%s: missing scheduler rows in %v", workload, cells)
				}
				if quorum > leader {
					t.Errorf("%s: quorum-starve converged at %d, LATER than leader-aware at %d — sparing the leader gained adversarial power; re-examine the claim text", workload, quorum, leader)
				}
			}
			leader := cells[[2]string{"transform (E3)", "leader-aware"}]
			quorum := cells[[2]string{"transform (E3)", "quorum-starve"}]
			if quorum >= leader {
				t.Errorf("transform: quorum-starve converged at %d, want strictly earlier than leader-aware's %d (the leader-routed pipeline is the stronger target)", quorum, leader)
			}
		})
	}
}
