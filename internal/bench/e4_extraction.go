package bench

import (
	"fmt"

	"repro/internal/cht"
	"repro/internal/fd"
	"repro/internal/model"
)

// E4Extraction runs the CHT reduction (Lemma 1 / Theorem 2, necessity):
// emulate Ω from the algorithm A = Algorithm 4 and the detector D = Ω, both
// in the classical one-shot form (Appendix B) and in the paper's eventual-
// consensus extension (§4). Reported per round: each correct process's Ω
// estimate — the claim is that estimates stabilize on the same CORRECT
// process.
func E4Extraction(opts Options) Table { return e4Spec(opts).run() }

// e4Spec decomposes E4 into one cell per reduction scenario; each cell
// contributes one row per emulation round. E4 runs no kernel (the CHT
// reduction samples histories directly), so its step counts are zero.
func e4Spec(opts Options) spec {
	rounds := 4
	if opts.Quick {
		rounds = 2
	}
	s := spec{shell: Table{
		ID:     "E4",
		Title:  "CHT extraction: emulating Omega from an EC implementation",
		Claim:  "Omega is weaker than any D implementing EC (Lemma 1): the reduction's leader estimates stabilize on a correct process",
		Header: []string{"variant", "detector", "round", "samples/proc", "outputs", "agreed", "correct", "tree nodes"},
		Notes: []string{
			"n=2; A = Algorithm 4; estimates carry over when the finite prefix has no gadget yet",
			"outputs column: p -> estimate for each correct process",
		},
	}}
	type scenario struct {
		variant   string
		classical bool
		alg       cht.Algorithm
		fp        *model.FailurePattern
		det       fd.Detector
		detName   string
	}
	fpFree := model.NewFailurePattern(2)
	fpCrash := model.NewFailurePattern(2)
	fpCrash.Crash(1, 55)
	scenarios := []scenario{
		{"classical (App. B)", true, cht.NewEC4(1), fpFree, fd.NewOmegaStable(fpFree, 1), "stable Omega(p1)"},
		{"classical (App. B)", true, cht.NewEC4(1), fpFree, fd.NewOmegaEventual(fpFree, 2, 35), "eventual Omega(p2)@35"},
		{"EC (paper §4)", false, cht.NewEC4(2), fpFree, fd.NewOmegaEventual(fpFree, 2, 35), "eventual Omega(p2)@35"},
		{"EC (paper §4)", false, cht.NewEC4(2), fpCrash, fd.NewOmegaEventual(fpCrash, 2, 35), "eventual Omega(p2)@35, p1 crashes@55"},
	}
	for i, sc := range scenarios {
		s.cells = append(s.cells, func() cellOut {
			rs, err := cht.EmulateOmega(sc.alg, sc.fp, sc.det, cht.EmulateOptions{
				Rounds:      rounds,
				Classical:   sc.classical,
				BaseSamples: 2,
				Build:       cht.BuildOptions{Seed: opts.seed() + int64(i)},
				ViewLag:     1,
			})
			if err != nil {
				return cellOut{rows: [][]string{{
					sc.variant, sc.detName, "-", "-", "error: " + err.Error(), "-", "-", "-",
				}}}
			}
			var rows [][]string
			for _, r := range rs {
				leader, agreed := r.Agreed(sc.fp.Correct())
				correct := agreed && sc.fp.IsCorrect(leader)
				outs := ""
				for _, p := range sc.fp.Correct() {
					outs += fmt.Sprintf("%v->%v ", p, r.Outputs[p])
				}
				rows = append(rows, []string{
					sc.variant, sc.detName,
					fmt.Sprint(r.Round), fmt.Sprint(r.Samples),
					outs, boolCell(agreed), boolCell(correct), fmt.Sprint(r.Nodes),
				})
			}
			return cellOut{rows: rows}
		})
	}
	return s
}
