package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/cht"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
)

// MicroResult is one kernel microbenchmark measurement, recorded in the
// BENCH_*.json report so the perf trajectory of the hot path is tracked
// per PR alongside the experiment wall times.
type MicroResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// pingAuto is a minimal protocol that keeps the kernel's hot path busy:
// every process broadcasts on a fraction of its ticks and acks what it
// receives, so the run exercises the event heap, the per-step detector
// query, and the broadcast path without protocol-level cost dominating.
type pingAuto struct {
	self  model.ProcID
	ticks int
}

func (a *pingAuto) Init(model.Context) {}

func (a *pingAuto) Tick(ctx model.Context) {
	a.ticks++
	if a.ticks%4 == 1 {
		ctx.Broadcast("ping")
	}
}

func (a *pingAuto) Recv(ctx model.Context, from model.ProcID, payload any) {
	if payload == "ping" && from != a.self {
		ctx.Send(from, "ack")
	}
}

func (a *pingAuto) Input(ctx model.Context, _ any) { ctx.Broadcast("ping") }

func pingFactory() model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return &pingAuto{self: p} }
}

// microKernels defines the kernel microbenchmarks mirrored from
// internal/sim's testing benchmarks (kernel_bench_test.go); they are
// restated here because cmd/bench cannot import test files. One op = one
// complete 8-process run to t=5000.
func microKernels() []struct {
	name string
	run  func(seed int64)
} {
	run := func(opts sim.Options, det func(fp *model.FailurePattern) fd.Detector) {
		fp := model.NewFailurePattern(8)
		k := sim.New(fp, det(fp), pingFactory(), opts)
		k.ScheduleInput(1, 60, "go")
		k.Run(5000)
	}
	omega := func(fp *model.FailurePattern) fd.Detector { return fd.NewOmegaStable(fp, 1) }
	return []struct {
		name string
		run  func(seed int64)
	}{
		{"kernel/uniform", func(seed int64) {
			run(sim.Options{Seed: seed, MinDelay: 3, MaxDelay: 30}, omega)
		}},
		{"kernel/partitioned", func(seed int64) {
			run(sim.Options{Seed: seed, Network: func() sim.NetworkModel {
				return &sim.Partitioned{LeftSize: 4, FirstAt: 500, Duration: 400, Interval: 1500}
			}}, omega)
		}},
		{"kernel/jittery", func(seed int64) {
			run(sim.Options{Seed: seed, Network: func() sim.NetworkModel {
				return sim.NewJittery(20)
			}}, omega)
		}},
		{"kernel/omega-sigma-fd", func(seed int64) {
			run(sim.Options{Seed: seed, MinDelay: 3, MaxDelay: 30},
				func(fp *model.FailurePattern) fd.Detector {
					return fd.NewOmegaSigma(fd.NewOmegaStable(fp, 1), fd.NewSigma(fp, 0))
				})
		}},
	}
}

// bcastAuto broadcasts once per input and is otherwise inert; rotorAuto
// unicasts to a rotating peer on every tick. Both mirror the big-n automata
// in internal/sim/kernel_bench_test.go, restated because cmd/bench cannot
// import test files.
type bcastAuto struct{}

func (bcastAuto) Init(model.Context)                    {}
func (bcastAuto) Tick(model.Context)                    {}
func (bcastAuto) Recv(model.Context, model.ProcID, any) {}
func (bcastAuto) Input(ctx model.Context, _ any)        { ctx.Broadcast("payload") }

type rotorAuto struct {
	self  model.ProcID
	n     int
	ticks int
}

func (a *rotorAuto) Init(model.Context) {}
func (a *rotorAuto) Tick(ctx model.Context) {
	a.ticks++
	peer := model.ProcID((int(a.self)-1+a.ticks)%a.n + 1)
	if peer != a.self {
		ctx.Send(peer, "x")
	}
}
func (a *rotorAuto) Recv(model.Context, model.ProcID, any) {}
func (a *rotorAuto) Input(model.Context, any)              {}

// microScale defines the big-n microbenchmarks parameterized over cluster
// size — broadcast fan-out, heap churn, and the fd.Cached hit path — the
// axes the gossip/scaling work optimizes. They mirror BenchmarkKernelBroadcastN,
// BenchmarkKernelHeapChurnN, and BenchmarkCachedHitPathN in
// internal/sim/kernel_bench_test.go. quick drops the n=256 points so CI
// smoke jobs stay fast; full runs record all three sizes.
func microScale(quick bool) []struct {
	name string
	run  func(seed int64)
} {
	ns := []int{5, 64, 256}
	if quick {
		ns = []int{5, 64}
	}
	var out []struct {
		name string
		run  func(seed int64)
	}
	for _, n := range ns {
		n := n
		out = append(out, []struct {
			name string
			run  func(seed int64)
		}{
			{fmt.Sprintf("kernel/broadcast/n=%d", n), func(seed int64) {
				fp := model.NewFailurePattern(n)
				k := sim.New(fp, fd.NewOmegaStable(fp, 1), func(model.ProcID, int) model.Automaton {
					return bcastAuto{}
				}, sim.Options{Seed: seed, MinDelay: 3, MaxDelay: 30})
				for j := 0; j < 32; j++ {
					k.ScheduleInput(model.ProcID(j%n+1), model.Time(20+j*10), "go")
				}
				k.Run(400)
			}},
			{fmt.Sprintf("kernel/heap-churn/n=%d", n), func(seed int64) {
				fp := model.NewFailurePattern(n)
				k := sim.New(fp, fd.NewOmegaStable(fp, 1), func(p model.ProcID, n int) model.Automaton {
					return &rotorAuto{self: p, n: n}
				}, sim.Options{Seed: seed, Network: func() sim.NetworkModel { return sim.NewJittery(20) }})
				k.Run(500)
			}},
			{fmt.Sprintf("fd/cached-hit/n=%d", n), func(seed int64) {
				fp := model.NewFailurePattern(n)
				det := fd.NewCached(fd.NewOmegaSigma(fd.NewOmegaStable(fp, 1), fd.NewSigma(fp, 0)))
				for t := model.Time(0); t < 2560; t += 5 {
					for _, p := range model.Procs(n) {
						det.Value(p, t)
					}
				}
			}},
		}...)
	}
	return out
}

// microCHT defines the CHT-reduction microbenchmarks tracking the interned
// engine's hot paths: DAG construction (batched detector sampling), the
// incremental tree growth over monotone DAG prefixes, and the per-view
// valency tagging (k-tag recomputation on a settled tree). They mirror the
// Go benchmarks in internal/cht (cht_bench_test.go), restated here because
// cmd/bench cannot import test files.
func microCHT() []struct {
	name string
	run  func(seed int64)
} {
	setup := func(seed int64) (*model.FailurePattern, fd.Detector) {
		fp := model.NewFailurePattern(3)
		det := fd.NewOmegaEventual(fp, 2, 35)
		return fp, det
	}
	return []struct {
		name string
		run  func(seed int64)
	}{
		{"cht/build-dag", func(seed int64) {
			fp, det := setup(seed)
			cht.BuildDAG(fp, det, cht.BuildOptions{SamplesPerProcess: 12, Seed: seed})
		}},
		{"cht/tree-growth", func(seed int64) {
			// One op grows a single cached tree across every prefix of the
			// DAG, the way EmulateOmega's lagged views consume it.
			fp, det := setup(seed)
			g := cht.BuildDAG(fp, det, cht.BuildOptions{SamplesPerProcess: 3, Seed: seed})
			cache := cht.NewTreeCache(cht.NewEC4(1), fp.N(), nil, 0)
			for m := 1; m <= g.Len(); m++ {
				if _, err := cache.View(g, m); err != nil {
					panic(err)
				}
			}
		}},
		{"cht/valency-tagging", func() func(seed int64) {
			// The tree is grown once at definition time; each op re-views the
			// settled cache 8 times, which re-runs only the k-tag (reach)
			// propagation over the existing nodes.
			fp, det := setup(0)
			g := cht.BuildDAG(fp, det, cht.BuildOptions{SamplesPerProcess: 3, Seed: 1})
			cache := cht.NewTreeCache(cht.NewEC4(1), fp.N(), nil, 0)
			if _, err := cache.View(g, g.Len()); err != nil {
				panic(err)
			}
			return func(int64) {
				for i := 0; i < 8; i++ {
					if _, err := cache.View(g, g.Len()); err != nil {
						panic(err)
					}
				}
			}
		}()},
		{"cht/emulate-omega", func(seed int64) {
			// One op is a full 3-round incremental emulation (E4's shape).
			fp, det := setup(seed)
			if _, err := cht.EmulateOmega(cht.NewEC4(1), fp, det, cht.EmulateOptions{
				Rounds: 3, BaseSamples: 2, ViewLag: 1,
				Build: cht.BuildOptions{Seed: seed},
			}); err != nil {
				panic(err)
			}
		}},
	}
}

// Microbenchmarks measures the kernel and CHT microbenchmarks and returns
// their results. One warm-up run precedes each measurement; quick shrinks the
// iteration count for CI smoke jobs. Iteration counts are fixed, never
// time-calibrated, so two runs of identical code measure identical work —
// and the quick count stays high enough (10, matching the CI bench steps'
// -benchtime=10x) that a single descheduling blip cannot double ns/op the
// way it could at 3 iterations.
func Microbenchmarks(quick bool) []MicroResult {
	iters := 30
	if quick {
		iters = 10
	}
	benches := microKernels()
	benches = append(benches, microCHT()...)
	benches = append(benches, microScale(quick)...)
	var out []MicroResult
	for _, m := range benches {
		m.run(0) // warm-up
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mallocs := ms.Mallocs
		start := time.Now()
		for i := 0; i < iters; i++ {
			m.run(int64(i + 1))
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		out = append(out, MicroResult{
			Name:        m.name,
			Iters:       iters,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
			AllocsPerOp: float64(ms.Mallocs-mallocs) / float64(iters),
		})
	}
	return out
}
