package bench

import (
	"runtime"
	"time"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
)

// MicroResult is one kernel microbenchmark measurement, recorded in the
// BENCH_*.json report so the perf trajectory of the hot path is tracked
// per PR alongside the experiment wall times.
type MicroResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// pingAuto is a minimal protocol that keeps the kernel's hot path busy:
// every process broadcasts on a fraction of its ticks and acks what it
// receives, so the run exercises the event heap, the per-step detector
// query, and the broadcast path without protocol-level cost dominating.
type pingAuto struct {
	self  model.ProcID
	ticks int
}

func (a *pingAuto) Init(model.Context) {}

func (a *pingAuto) Tick(ctx model.Context) {
	a.ticks++
	if a.ticks%4 == 1 {
		ctx.Broadcast("ping")
	}
}

func (a *pingAuto) Recv(ctx model.Context, from model.ProcID, payload any) {
	if payload == "ping" && from != a.self {
		ctx.Send(from, "ack")
	}
}

func (a *pingAuto) Input(ctx model.Context, _ any) { ctx.Broadcast("ping") }

func pingFactory() model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return &pingAuto{self: p} }
}

// microKernels defines the kernel microbenchmarks mirrored from
// internal/sim's testing benchmarks (kernel_bench_test.go); they are
// restated here because cmd/bench cannot import test files. One op = one
// complete 8-process run to t=5000.
func microKernels() []struct {
	name string
	run  func(seed int64)
} {
	run := func(opts sim.Options, det func(fp *model.FailurePattern) fd.Detector) {
		fp := model.NewFailurePattern(8)
		k := sim.New(fp, det(fp), pingFactory(), opts)
		k.ScheduleInput(1, 60, "go")
		k.Run(5000)
	}
	omega := func(fp *model.FailurePattern) fd.Detector { return fd.NewOmegaStable(fp, 1) }
	return []struct {
		name string
		run  func(seed int64)
	}{
		{"kernel/uniform", func(seed int64) {
			run(sim.Options{Seed: seed, MinDelay: 3, MaxDelay: 30}, omega)
		}},
		{"kernel/partitioned", func(seed int64) {
			run(sim.Options{Seed: seed, Network: func() sim.NetworkModel {
				return &sim.Partitioned{LeftSize: 4, FirstAt: 500, Duration: 400, Interval: 1500}
			}}, omega)
		}},
		{"kernel/jittery", func(seed int64) {
			run(sim.Options{Seed: seed, Network: func() sim.NetworkModel {
				return sim.NewJittery(20)
			}}, omega)
		}},
		{"kernel/omega-sigma-fd", func(seed int64) {
			run(sim.Options{Seed: seed, MinDelay: 3, MaxDelay: 30},
				func(fp *model.FailurePattern) fd.Detector {
					return fd.NewOmegaSigma(fd.NewOmegaStable(fp, 1), fd.NewSigma(fp, 0))
				})
		}},
	}
}

// Microbenchmarks measures the kernel microbenchmarks and returns their
// results. One warm-up run precedes each measurement; quick shrinks the
// iteration count for CI smoke jobs.
func Microbenchmarks(quick bool) []MicroResult {
	iters := 30
	if quick {
		iters = 3
	}
	var out []MicroResult
	for _, m := range microKernels() {
		m.run(0) // warm-up
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mallocs := ms.Mallocs
		start := time.Now()
		for i := 0; i < iters; i++ {
			m.run(int64(i + 1))
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		out = append(out, MicroResult{
			Name:        m.name,
			Iters:       iters,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
			AllocsPerOp: float64(ms.Mallocs-mallocs) / float64(iters),
		})
	}
	return out
}
