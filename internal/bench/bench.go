// Package bench regenerates every experiment table of EXPERIMENTS.md. The
// paper is a theory paper — its "evaluation" is a set of proved claims — so
// each experiment operationalizes one claim as a measurable table:
//
//	E1  §5/§7     ETOB delivers in 2 communication steps; Paxos needs 3
//	E2  Lemma 2   Algorithm 4 implements EC with Ω in any environment
//	E3  Theorem 1 EC ≡ ETOB (Algorithms 1 and 2, plus the roundtrip)
//	E4  Lemma 1   Ω is extractable from any D implementing EC (CHT)
//	E5  §1/§7     Σ is the exact gap: quorum protocols block with a correct
//	              minority, ETOB and Ω+Σ protocols progress
//	E6  §5 P2     stable Ω from t=0 ⇒ Algorithm 5 is strong TOB (τ = 0)
//	E7  §5 P3     causal order holds even during leader disagreement
//	E8  App. A    EC ≡ EIC (Algorithms 6 and 7; revocations are finite)
//	E9  §2/Thm 2  EC reconverges after crash-free network partitions of any
//	              length and side count, vs the strong Paxos baselines
//	              (sweep over sim.Partitioned / sim.MultiPartitioned)
//	E10 §2        EC rides out churn (crash+restart via adversary.Churn and
//	              the kernel's suspend/restart semantics) once retransmission
//	              restores eventual delivery; lag tracks the churn rate
//	E11 §2        the eventual-delivery assumption itself: raw message loss
//	              (adversary.Lossy) breaks EC-Termination, retransmit.Wrap
//	              restores a finite convergence tick at every loss rate
//	E12 §2        the scheduler as adversary: divergence-maximizing delays
//	              (adversary.AdversarialScheduler) vs i.i.d. over the same
//	              bounds — convergence still happens, but later
//	E13 §2        the worst admissible schedule is PROTOCOL-AWARE: the
//	              leader-starving scheduler (adversary.LeaderStarver, fed by
//	              the kernel's Ω observation hook) vs the blind rotation vs
//	              i.i.d., quantifying the inversion E12's honesty note
//	              flagged — the blind rotation can cost less than noise,
//	              leader-awareness costs ~10x over both
//
// All experiments run on the deterministic kernel; absolute times are
// simulator ticks, and "steps" are message delays (DESIGN.md decision 5).
//
// The suite lives in a single ordered registry (registry.go) from which All,
// ByID, IDs, and the parallel sweep Runner all derive. Every experiment is
// decomposed into independent seeded cells; Runner fans the cells of a whole
// run across a bounded worker pool and reassembles rows in registry order,
// so parallel output is byte-identical to serial. Report (report.go) is the
// machine-readable BENCH_*.json emitted by cmd/bench alongside the tables.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's regenerated result.
type Table struct {
	ID     string
	Title  string
	Claim  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text with a Markdown-compatible grid.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "Claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tune experiment scale.
type Options struct {
	// Quick shrinks workloads for use inside testing.B loops.
	Quick bool
	// Seed is the base PRNG seed (experiments derive from it).
	Seed int64
	// Metrics attaches an obs.Registry to every cell's kernel and scrapes it
	// when the cell finishes — the monitored-run configuration whose timing
	// MetricsCompare holds against the default within the run's own spread.
	// Tables are bit-identical either way (observation reads counters the
	// kernel already keeps; MetricsCompare enforces this).
	Metrics bool
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

func boolCell(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}
