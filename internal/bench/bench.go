// Package bench regenerates every experiment table of EXPERIMENTS.md. The
// paper is a theory paper — its "evaluation" is a set of proved claims — so
// each experiment operationalizes one claim as a measurable table:
//
//	E1  §5/§7     ETOB delivers in 2 communication steps; Paxos needs 3
//	E2  Lemma 2   Algorithm 4 implements EC with Ω in any environment
//	E3  Theorem 1 EC ≡ ETOB (Algorithms 1 and 2, plus the roundtrip)
//	E4  Lemma 1   Ω is extractable from any D implementing EC (CHT)
//	E5  §1/§7     Σ is the exact gap: quorum protocols block with a correct
//	              minority, ETOB and Ω+Σ protocols progress
//	E6  §5 P2     stable Ω from t=0 ⇒ Algorithm 5 is strong TOB (τ = 0)
//	E7  §5 P3     causal order holds even during leader disagreement
//	E8  App. A    EC ≡ EIC (Algorithms 6 and 7; revocations are finite)
//	E9  §2/Thm 2  EC reconverges after crash-free network partitions of any
//	              length (partition-length sweep over sim.Partitioned)
//
// All experiments run on the deterministic kernel; absolute times are
// simulator ticks, and "steps" are message delays (DESIGN.md decision 5).
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's regenerated result.
type Table struct {
	ID     string
	Title  string
	Claim  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text with a Markdown-compatible grid.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "Claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tune experiment scale.
type Options struct {
	// Quick shrinks workloads for use inside testing.B loops.
	Quick bool
	// Seed is the base PRNG seed (experiments derive from it).
	Seed int64
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// All runs every experiment in order.
func All(opts Options) []Table {
	return []Table{
		E1Latency(opts),
		E2AnyEnvironment(opts),
		E3Equivalence(opts),
		E4Extraction(opts),
		E5SigmaGap(opts),
		E6StableOmega(opts),
		E7CausalOrder(opts),
		E8EIC(opts),
		E9PartitionSweep(opts),
	}
}

// ByID returns the experiment with the given ID (e1..e9).
func ByID(id string, opts Options) (Table, bool) {
	switch strings.ToLower(id) {
	case "e1":
		return E1Latency(opts), true
	case "e2":
		return E2AnyEnvironment(opts), true
	case "e3":
		return E3Equivalence(opts), true
	case "e4":
		return E4Extraction(opts), true
	case "e5":
		return E5SigmaGap(opts), true
	case "e6":
		return E6StableOmega(opts), true
	case "e7":
		return E7CausalOrder(opts), true
	case "e8":
		return E8EIC(opts), true
	case "e9":
		return E9PartitionSweep(opts), true
	default:
		return Table{}, false
	}
}

func boolCell(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}
