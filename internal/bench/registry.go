package bench

import (
	"fmt"
	"strings"
)

// cellOut is one cell's contribution to its experiment: consecutive table
// rows, plus the kernel steps the cell executed (perf accounting surfaced in
// the BENCH_*.json report; 0 for cells that run no kernel, like E4's CHT
// reduction).
type cellOut struct {
	rows  [][]string
	steps int64
}

// cell is one independent unit of an experiment — typically one seeded
// kernel run. A cell builds everything it touches (failure pattern,
// detector, network model, kernel, recorder) from the experiment Options,
// shares no mutable state with its siblings, and derives all randomness from
// the experiment seed. That is the contract that lets the Runner execute
// cells on any worker in any order while the assembled table stays
// byte-identical to the serial path.
type cell func() cellOut

// spec is an experiment decomposed for the sweep engine: the table shell
// (ID, title, claim, header, notes — everything but Rows) plus the ordered
// cells whose outputs concatenate into Rows.
type spec struct {
	shell Table
	cells []cell
}

// run executes the cells in order on the calling goroutine and assembles the
// table — the serial reference path used by All, ByID, and the exported
// per-experiment functions. Runner is the parallel equivalent; a golden test
// holds the two byte-identical.
func (s spec) run() Table {
	t := s.shell
	for _, c := range s.cells {
		t.Rows = append(t.Rows, c().rows...)
	}
	return t
}

// registry is the single ordered source of truth for the experiment suite.
// All, ByID, IDs, and the Runner all derive from it, so they cannot drift.
var registry = []struct {
	id   string
	spec func(Options) spec
}{
	{"E1", e1Spec},
	{"E2", e2Spec},
	{"E3", e3Spec},
	{"E4", e4Spec},
	{"E5", e5Spec},
	{"E6", e6Spec},
	{"E7", e7Spec},
	{"E8", e8Spec},
	{"E9", e9Spec},
	{"E10", e10Spec},
	{"E11", e11Spec},
	{"E12", e12Spec},
	{"E13", e13Spec},
	{"E14", e14Spec},
}

// IDs returns the experiment IDs in suite order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// All runs every experiment in order, serially.
func All(opts Options) []Table {
	out := make([]Table, len(registry))
	for i, e := range registry {
		out[i] = e.spec(opts).run()
	}
	return out
}

// ByID runs the experiment with the given ID (case-insensitive, "e1".."e9").
func ByID(id string, opts Options) (Table, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.id, id) {
			return e.spec(opts).run(), true
		}
	}
	return Table{}, false
}

// specsFor resolves experiment IDs to specs in the given order; nil or empty
// ids selects the whole suite. Unknown IDs error with the valid list.
func specsFor(ids []string, opts Options) ([]spec, error) {
	if len(ids) == 0 {
		ids = IDs()
	}
	specs := make([]spec, 0, len(ids))
	for _, id := range ids {
		found := false
		for _, e := range registry {
			if strings.EqualFold(e.id, id) {
				specs = append(specs, e.spec(opts))
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("bench: unknown experiment %q (want one of %s)",
				id, strings.Join(IDs(), " "))
		}
	}
	return specs, nil
}
