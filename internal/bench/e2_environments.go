package bench

import (
	"fmt"

	"repro/internal/ec"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// E2AnyEnvironment checks Lemma 2 across environments: Algorithm 4
// implements EC with Ω regardless of how many processes crash — including
// with only a correct minority (where strong consensus is impossible without
// Σ). Reported: whether the EC spec held and the measured agreement
// instance k relative to Ω's stabilization.
func E2AnyEnvironment(opts Options) Table { return e2Spec(opts).run() }

// e2Spec decomposes E2 into one cell per (environment sample, tauOmega)
// pair. The sampled failure patterns are built once here and shared
// read-only by the cells.
func e2Spec(opts Options) spec {
	n := 5
	instances := 8
	if opts.Quick {
		instances = 4
	}
	s := spec{shell: Table{
		ID:     "E2",
		Title:  "Algorithm 4 (EC from Ω) across environments",
		Claim:  "EC is implementable from Ω in ANY environment (Lemma 2)",
		Header: []string{"environment", "pattern", "tauOmega", "EC ok", "agreement k", "instances"},
		Notes: []string{
			fmt.Sprintf("n=%d, driven EC (each process proposes v/<p>/<l>), %d instances required", n, instances),
			"pre-stabilization Ω behavior: every process trusts itself (maximal divergence)",
		},
	}}
	for _, env := range []model.Environment{model.EnvMajority(), model.EnvAny(), model.EnvMinorityCorrect()} {
		for _, fp := range env.Samples(n) {
			for _, tauOmega := range []model.Time{0, 800} {
				s.cells = append(s.cells, func() cellOut {
					det := fd.NewOmegaEventual(fp, fp.MinCorrect(), tauOmega)
					rec := trace.NewRecorder(n)
					driver := func(p model.ProcID, inst int) (string, bool) {
						return fmt.Sprintf("v/%v/%d", p, inst), true
					}
					k := sim.New(fp, det, ec.DrivenFactory(driver), sim.Options{Seed: opts.seed()})
					defer opts.observe(k)()
					k.SetObserver(rec)
					k.RunUntil(60000, func(k *sim.Kernel) bool {
						return k.Now() > tauOmega+500 && rec.AllDecided(fp.Correct(), instances)
					})
					rep := trace.CheckEC(rec, fp.Correct(), instances)
					return cellOut{rows: [][]string{{
						env.Name,
						fp.String(),
						fmt.Sprint(tauOmega),
						boolCell(rep.OK()),
						fmt.Sprint(rep.AgreementK),
						fmt.Sprint(rep.MaxInstance),
					}}, steps: k.Steps()}
				})
			}
		}
	}
	return s
}
