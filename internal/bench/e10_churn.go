package bench

import (
	"fmt"

	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/retransmit"
	"repro/internal/sim"
	"repro/internal/sim/adversary"
	"repro/internal/trace"
)

// E10ChurnSweep measures eventual consistency under CHURN: processes crash
// and rejoin on a seeded schedule (adversary.Churn via the kernel's
// suspend/restart semantics), with the churn rate — the mean up/down interval
// length — as the sweep parameter. Ω is the live-set detector fd.OmegaUp, so
// leadership genuinely fails over and back across down intervals.
//
// Churn is outside the paper's monotone model: a restarted process lost its
// state AND every message sent to it while down, so the §2 eventual-delivery
// assumption no longer comes for free. The run restores it end-to-end with
// retransmit.Wrap (resends outlive the receiver's down interval and reach its
// next incarnation), which is what makes convergence reachable in every cell;
// the experiment then shows the convergence LAG tracking churn violence —
// the same shape as E9's partition sweep, on the failure axis instead of the
// link axis.
func E10ChurnSweep(opts Options) Table { return e10Spec(opts).run() }

// e10Spec decomposes E10 into one cell per churn rate.
func e10Spec(opts Options) spec {
	const (
		n     = 5
		until = 6000 // churn window: no down interval starts after this
	)
	// Sweep the mean up-interval length; the mean down interval stays half of
	// it, so faster churn = both shorter lives and proportionally longer
	// relative downtime.
	scales := []model.Time{400, 800, 1600, 3200}
	msgs := 6
	if opts.Quick {
		scales = []model.Time{400, 1600}
		msgs = 3
	}
	s := spec{shell: Table{
		ID:     "E10",
		Title:  "EC convergence under churn (crash+restart) vs mean up/down interval",
		Claim:  "with eventual delivery restored by retransmission, EC rides out churn: stability is withheld while leadership keeps changing and convergence lands right after the schedule quiets",
		Header: []string{"mean up", "mean down", "restarts", "converged", "converged at", "lag after churn", "worst delivery latency"},
		Notes: []string{
			fmt.Sprintf("n=%d, p1..p%d churn until t=%d (adversary.Churn), then stay up; Omega = fd.OmegaUp over the schedule, failing over to the smallest up process", n, n-1, until),
			fmt.Sprintf("the eventual leader p%d is spared (the Omega spec wants an eventually-up leader; a restarted one is mute under ETOB's stale-promote guard)", n),
			"ETOB wrapped in retransmit.Wrap: resends cross down intervals, so restarted replicas recover",
			"lag after churn = convergence time minus the schedule's quiet point",
			"worst delivery latency = max over (message, process) of stable delivery minus broadcast time: every leadership change can unwind stability, so heavy churn holds it hostage until the quiet point while mild churn releases it early",
		},
	}}
	for _, scale := range scales {
		s.cells = append(s.cells, func() cellOut {
			return e10Cell(opts, scale, until, msgs, n)
		})
	}
	return s
}

// e10Cell runs one churn-rate cell and reports its row.
func e10Cell(opts Options, scale, until model.Time, msgs, n int) cellOut {
	// The eventual leader p_n is spared from churn: ETOB's stale-promote
	// guard (PromoteMsg.Counter) silences a restarted leader until its fresh
	// counter overtakes its pre-crash one, so an eventual leader that
	// restarts would be mute for arbitrarily long — the Ω spec only promises
	// an eventually-up leader, and sparing one process realizes it. Everyone
	// else churns, and fd.OmegaUp makes leadership fail over through the
	// churning processes (smallest up) until the schedule quiets.
	leader := model.ProcID(n)
	fs := adversary.Churn(n, adversary.ChurnConfig{
		Seed:     opts.seed() + int64(scale),
		MeanUp:   scale,
		MeanDown: scale / 2,
		Until:    until,
		Spare:    []model.ProcID{leader},
	})
	fp := model.NewFailurePattern(n) // all correct: churned processes are eventually up
	det := fd.NewOmegaUp(n, leader, fs.QuietAfter(), fs.Up, fs.Boundaries())
	rec := trace.NewRecorder(n)
	k := sim.New(fp, det, retransmit.Wrap(etob.Factory(), retransmit.Options{Seed: opts.seed()}),
		sim.Options{Seed: opts.seed(), Faults: fs})
	defer opts.observe(k)()
	k.SetObserver(rec)
	var ids []string
	var restarts int
	for _, p := range model.Procs(n) {
		restarts += len(fs.Restarts(p))
	}
	var sentAt []model.Time
	for i := 0; i < msgs; i++ {
		at := model.Time(100) + model.Time(i)*until/model.Time(msgs)
		// Submit to a replica that is up at the invocation and stays up long
		// enough to push the operation out (a real client retries elsewhere
		// if its replica dies immediately; the deterministic equivalent is
		// picking a stably-up replica from the schedule).
		sender := stableSender(fs, at, at+2*scale)
		id := fmt.Sprintf("m%d", i)
		ids = append(ids, id)
		sentAt = append(sentAt, at)
		k.ScheduleInput(sender, at, model.BroadcastInput{ID: id})
	}
	quiet := fs.QuietAfter()
	correct := model.Procs(n)
	// Convergence only counts after the schedule quiets: mid-churn a
	// restarted leader with an empty promote can transiently regress other
	// replicas, so stopping on an early AllDelivered would freeze a state the
	// next leadership change still unwinds.
	k.RunUntil(quiet+30000, func(k *sim.Kernel) bool {
		return k.Now() > quiet && rec.AllDelivered(correct, ids)
	})
	k.Run(k.Now() + 500)

	convergedAt, worstLatency := model.Time(0), model.Time(0)
	converged := true
	for i, id := range ids {
		for _, p := range correct {
			st, ok := rec.StableDeliveryTime(p, id)
			if !ok {
				converged = false
				continue
			}
			if st > convergedAt {
				convergedAt = st
			}
			if lat := st - sentAt[i]; lat > worstLatency {
				worstLatency = lat
			}
		}
	}
	convergedCell, lagCell, latencyCell := "-", "-", "-"
	if converged {
		convergedCell = fmt.Sprint(convergedAt)
		latencyCell = fmt.Sprint(worstLatency)
		lag := convergedAt - quiet
		if lag < 0 {
			lag = 0
		}
		lagCell = fmt.Sprint(lag)
	}
	return cellOut{rows: [][]string{{
		fmt.Sprint(scale), fmt.Sprint(scale / 2), fmt.Sprint(restarts),
		boolCell(converged), convergedCell, lagCell, latencyCell,
	}}, steps: k.Steps()}
}

// stableSender picks the smallest process that is up throughout [from, to]
// per the schedule (checked at the endpoints and every schedule boundary
// between them), falling back to the smallest process up at from.
func stableSender(fs *adversary.FaultSchedule, from, to model.Time) model.ProcID {
	bounds := fs.Boundaries()
	upDuring := func(p model.ProcID) bool {
		if !fs.Up(p, from) || !fs.Up(p, to) {
			return false
		}
		for _, b := range bounds {
			if b > from && b < to && !fs.Up(p, b) {
				return false
			}
		}
		return true
	}
	for _, p := range model.Procs(fs.N()) {
		if upDuring(p) {
			return p
		}
	}
	for _, p := range model.Procs(fs.N()) {
		if fs.Up(p, from) {
			return p
		}
	}
	return 1
}
