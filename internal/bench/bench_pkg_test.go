package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableFormat(t *testing.T) {
	tbl := Table{
		ID:     "EX",
		Title:  "demo",
		Claim:  "c",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"x", "y"}, {"wider-cell", "z"}},
		Notes:  []string{"n1"},
	}
	out := tbl.Format()
	for _, want := range []string{"EX — demo", "Claim: c", "| a ", "long-column", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestByID(t *testing.T) {
	opts := Options{Quick: true}
	for _, id := range []string{"e1", "E2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "E11", "e12", "e13"} {
		if _, ok := ByID(id, opts); !ok {
			t.Errorf("ByID(%q) not found", id)
		}
	}
	if _, ok := ByID("e99", opts); ok {
		t.Error("unknown ID must not resolve")
	}
}

// The substantive checks: every experiment's rows must support the paper's
// claim, not merely run.

func TestE1StepCounts(t *testing.T) {
	tbl := E1Latency(Options{Quick: true})
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %v", tbl.Rows)
	}
	etobSteps, paxosSteps := tbl.Rows[0][1], tbl.Rows[1][1]
	if !strings.HasPrefix(etobSteps, "2.") && etobSteps != "2.0" {
		t.Errorf("ETOB steps = %s, want ~2", etobSteps)
	}
	if !strings.HasPrefix(paxosSteps, "3.") && paxosSteps != "3.0" {
		t.Errorf("Paxos steps = %s, want ~3", paxosSteps)
	}
}

func TestE2AllEnvironmentsOK(t *testing.T) {
	tbl := E2AnyEnvironment(Options{Quick: true})
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tbl.Rows {
		if row[3] != "yes" {
			t.Errorf("EC spec failed in %s / %s", row[0], row[1])
		}
	}
}

func TestE3AllStacksOK(t *testing.T) {
	tbl := E3Equivalence(Options{Quick: true})
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %v", tbl.Rows)
	}
	for _, row := range tbl.Rows {
		if row[2] != "yes" {
			t.Errorf("stack %s failed its spec", row[0])
		}
	}
}

func TestE4FinalRoundsAgreeAndCorrect(t *testing.T) {
	tbl := E4Extraction(Options{Quick: true})
	// The LAST round of every scenario must agree on a correct process.
	last := map[string][]string{}
	for _, row := range tbl.Rows {
		last[row[0]+row[1]] = row
	}
	for k, row := range last {
		if row[5] != "yes" || row[6] != "yes" {
			t.Errorf("scenario %s final round: agreed=%s correct=%s (%v)", k, row[5], row[6], row)
		}
	}
}

func TestE5GapShape(t *testing.T) {
	tbl := E5SigmaGap(Options{Quick: true})
	byName := map[string][]string{}
	for _, row := range tbl.Rows {
		byName[row[0]] = row
	}
	mustLive := []string{"ETOB (Alg 5)", "Paxos log, Sigma quorums", "ABD register, Sigma quorums"}
	mustBlock := []string{"Paxos log, majority", "ABD register, majority"}
	for _, name := range mustLive {
		if byName[name][4] != "yes" {
			t.Errorf("%s must be live with a correct minority: %v", name, byName[name])
		}
	}
	for _, name := range mustBlock {
		if byName[name][3] != "0" {
			t.Errorf("%s must complete 0 ops with a correct minority: %v", name, byName[name])
		}
	}
}

func TestE6AllStrong(t *testing.T) {
	tbl := E6StableOmega(Options{Quick: true})
	for _, row := range tbl.Rows {
		if row[4] != "yes" || row[3] != "0" {
			t.Errorf("stable omega run not strong TOB: %v", row)
		}
	}
}

func TestE7CausalAlwaysHolds(t *testing.T) {
	tbl := E7CausalOrder(Options{Quick: true})
	divergedSomewhere := false
	for _, row := range tbl.Rows {
		if row[1] != "yes" {
			t.Errorf("causal order violated: %v", row)
		}
		if row[5] != "yes" {
			t.Errorf("run did not converge: %v", row)
		}
		if row[3] == "yes" {
			divergedSomewhere = true
		}
	}
	if !divergedSomewhere {
		t.Error("expected at least one run with real divergence (tau > 0)")
	}
}

func TestE8BothDirectionsOK(t *testing.T) {
	tbl := E8EIC(Options{Quick: true})
	for _, row := range tbl.Rows {
		if row[2] != "yes" {
			t.Errorf("EIC stack failed: %v", row)
		}
	}
}

func TestE9AlwaysReconverges(t *testing.T) {
	tbl := E9PartitionSweep(Options{Quick: true})
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows: %v", tbl.Rows)
	}
	var etob2 [][]string // the two-sided ETOB duration sweep, in order
	sawKWay, sawBaseline := false, false
	for _, row := range tbl.Rows {
		if row[4] != "yes" {
			t.Errorf("%s with %s sides, partition length %s never reconverged: %v", row[0], row[1], row[2], row)
		}
		switch {
		case row[0] == "ETOB (Omega)" && row[1] == "2":
			etob2 = append(etob2, row)
		case row[0] == "ETOB (Omega)":
			sawKWay = true
		default:
			sawBaseline = true
		}
	}
	if !sawKWay {
		t.Error("no multi-way (k-side) partition row")
	}
	if !sawBaseline {
		t.Error("no strong-baseline row")
	}
	// Longer partitions must cost decision latency (first row has length 0).
	first, last := etob2[0], etob2[len(etob2)-1]
	firstLat, err1 := strconv.Atoi(first[7])
	lastLat, err2 := strconv.Atoi(last[7])
	if err1 != nil || err2 != nil {
		t.Fatalf("non-numeric latency cells: %q %q", first[7], last[7])
	}
	if firstLat >= lastLat {
		t.Errorf("worst decision latency did not grow with partition length: %v vs %v", first, last)
	}
}

// TestE10ChurnConverges: every churn rate must reach convergence (the
// retransmission layer restores eventual delivery across down intervals), and
// churn must actually have happened (restarts > 0).
func TestE10ChurnConverges(t *testing.T) {
	tbl := E10ChurnSweep(Options{Quick: true})
	if len(tbl.Rows) < 2 {
		t.Fatalf("rows: %v", tbl.Rows)
	}
	for _, row := range tbl.Rows {
		if restarts, err := strconv.Atoi(row[2]); err != nil || restarts == 0 {
			t.Errorf("mean up %s: restarts=%s, want > 0 (no churn exercised)", row[0], row[2])
		}
		if row[3] != "yes" {
			t.Errorf("churn rate %s/%s never converged: %v", row[0], row[1], row)
		}
	}
}

// TestE11LossGate pins the experiment's acceptance shape at both workload
// scales: raw loss at >= 10% drop never converges (EC-Termination breaks with
// eventual delivery), while the retransmission rows converge at EVERY loss
// rate with a finite convergence tick.
func TestE11LossGate(t *testing.T) {
	for _, opts := range []Options{{Quick: true}, {}} {
		tbl := E11LossSweep(opts)
		for _, row := range tbl.Rows {
			rate, err := strconv.Atoi(strings.TrimSuffix(row[0], "%"))
			if err != nil {
				t.Fatalf("bad drop cell %q", row[0])
			}
			switch row[1] {
			case "raw":
				if rate >= 10 && row[2] != "no" {
					t.Errorf("raw loss at %d%% converged — eventual delivery should be broken: %v", rate, row)
				}
				if rate == 0 && row[2] != "yes" {
					t.Errorf("raw loss at 0%% did not converge: %v", row)
				}
			case "retransmit":
				if row[2] != "yes" {
					t.Errorf("retransmission did not restore convergence at %d%%: %v", rate, row)
				}
				if _, err := strconv.Atoi(row[4]); err != nil {
					t.Errorf("retransmit row at %d%% has no finite convergence tick: %v", rate, row)
				}
			default:
				t.Fatalf("unknown mode %q", row[1])
			}
		}
	}
}

// TestE12AdversaryAdmissible: the adversarial scheduler must never prevent
// convergence (it is an admissible environment), and on the broadcast
// workload its worst decision latency must be at least i.i.d.'s.
func TestE12AdversaryAdmissible(t *testing.T) {
	tbl := E12AdversarialScheduler(Options{Quick: true})
	lat := map[string]int{}
	for _, row := range tbl.Rows {
		if row[2] != "yes" {
			t.Errorf("%s under %s did not converge: %v", row[0], row[1], row)
		}
		if row[0] == "broadcast (E9)" {
			v, err := strconv.Atoi(row[4])
			if err != nil {
				t.Fatalf("bad latency cell: %v", row)
			}
			lat[row[1]] = v
		}
	}
	if lat["adversarial"] < lat["i.i.d."] {
		t.Errorf("adversarial worst latency %d below i.i.d. %d", lat["adversarial"], lat["i.i.d."])
	}
}

func TestAllRuns(t *testing.T) {
	tables := All(Options{Quick: true})
	if len(tables) != 14 {
		t.Fatalf("All returned %d tables", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s has no rows", tbl.ID)
		}
		if tbl.Format() == "" {
			t.Errorf("%s formats empty", tbl.ID)
		}
	}
}
