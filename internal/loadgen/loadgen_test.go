package loadgen

import "testing"

// TestRunSimUniformResolvesAll pins the harness end to end on the clean
// network: every offered op becomes visible everywhere, latencies are sane
// (visible <= stable per construction of max-over-procs vs last-apply), and
// identical configs reproduce identical histograms.
func TestRunSimUniformResolvesAll(t *testing.T) {
	cfg := Config{Procs: 3, Ops: 200, Rate: 0.5, Sessions: 8, Seed: 3}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unresolved != 0 || res.Resolved != cfg.Ops {
		t.Fatalf("resolved %d/%d (unresolved %d) on the clean network", res.Resolved, res.Ops, res.Unresolved)
	}
	if res.Visible.Count() != int64(cfg.Ops) || res.Stable.Count() != int64(cfg.Ops) {
		t.Fatalf("histogram counts %d/%d, want %d", res.Visible.Count(), res.Stable.Count(), cfg.Ops)
	}
	if res.Visible.Min() <= 0 {
		t.Errorf("visibility latency min %d — submissions cannot be visible instantly", res.Visible.Min())
	}
	if res.Stable.Quantile(0.99) < res.Visible.Quantile(0.99) {
		t.Errorf("stable p99 %d < visible p99 %d — stability cannot precede visibility",
			res.Stable.Quantile(0.99), res.Visible.Quantile(0.99))
	}
	if res.MessagesSent == 0 {
		t.Error("no protocol messages counted")
	}

	again, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := again.Visible.String(), res.Visible.String(); got != want {
		t.Errorf("same config, different visibility histogram:\n  %s\n  %s", got, want)
	}
}

// TestRunSimBatchingShrinksMessages pins the tentpole claim at harness level:
// under the same open-loop arrival schedule, batching (k=8) sends measurably
// fewer protocol messages than k=1 while still resolving every op.
func TestRunSimBatchingShrinksMessages(t *testing.T) {
	base := Config{Procs: 3, Ops: 300, Rate: 2, Sessions: 16, Seed: 5}
	unbatched, err := RunSim(base)
	if err != nil {
		t.Fatal(err)
	}
	batched := base
	batched.Batch.MaxBatch = 8
	batched.Batch.MaxLinger = 3
	b, err := RunSim(batched)
	if err != nil {
		t.Fatal(err)
	}
	if b.Unresolved != 0 {
		t.Fatalf("batched run left %d ops unresolved", b.Unresolved)
	}
	if b.MessagesSent >= unbatched.MessagesSent {
		t.Errorf("batched run sent %d messages, unbatched %d — batching amortized nothing",
			b.MessagesSent, unbatched.MessagesSent)
	}
	t.Logf("messages: k=1 %d, k=8 %d (%.1f%%)", unbatched.MessagesSent, b.MessagesSent,
		100*float64(b.MessagesSent)/float64(unbatched.MessagesSent))
}

// TestRunSimLossyPresetStillResolves runs the lossy preset: retransmission
// must eventually make every op visible, at strictly higher tail latency than
// the op's own minimum possible.
func TestRunSimLossyPresetStillResolves(t *testing.T) {
	res, err := RunSim(Config{Procs: 3, Ops: 120, Rate: 0.3, Sessions: 8, Seed: 11, Preset: "lossy"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unresolved != 0 {
		t.Fatalf("lossy preset left %d/%d unresolved — retransmission failed", res.Unresolved, res.Ops)
	}
	if res.Visible.Quantile(0.999) <= res.Visible.Min() {
		t.Errorf("p999 %d <= min %d under loss — no tail at all is implausible",
			res.Visible.Quantile(0.999), res.Visible.Min())
	}
}

func TestRunSimUnknownPreset(t *testing.T) {
	if _, err := RunSim(Config{Ops: 1, Preset: "no-such-preset"}); err == nil {
		t.Fatal("unknown preset must error, not silently run clean")
	}
}

// TestRunLiveSmoke drives a small paced run against the live in-process
// cluster: all ops resolve, wall-clock latencies recorded in microseconds.
func TestRunLiveSmoke(t *testing.T) {
	res, err := RunLive(Config{Procs: 3, Ops: 60, Rate: 1, Sessions: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unresolved != 0 || res.Resolved != 60 {
		t.Fatalf("live run resolved %d/60 (unresolved %d)", res.Resolved, res.Unresolved)
	}
	if res.Visible.Count() != 60 {
		t.Fatalf("visibility histogram holds %d samples, want 60", res.Visible.Count())
	}
	if res.OpsPerSec <= 0 {
		t.Error("ops/sec not measured")
	}
	t.Logf("live visibility µs: %s", res.Visible.String())
}

func TestRunLiveRejectsPreset(t *testing.T) {
	if _, err := RunLive(Config{Ops: 1, Preset: "lossy"}); err == nil {
		t.Fatal("RunLive must reject sim-only presets")
	}
}
