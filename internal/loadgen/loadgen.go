// Package loadgen is the open-loop load harness for the replicated service:
// it drives a configurable Poisson arrival stream of client operations over
// many concurrent sessions into either the deterministic simulation kernel
// (RunSim) or a live in-process cluster (RunLive), and measures per-operation
// replication latency into log-bucketed histograms (Histogram).
//
// Open loop means arrival times are drawn up front from the seeded arrival
// process and never wait for completions — the harness measures the system's
// response to offered load, including overload, rather than the closed-loop
// rate the system itself permits (which hides queueing collapse: a slow
// system slows its own clients and the numbers look fine).
//
// Two latencies are recorded per operation, in kernel ticks (RunSim) or
// microseconds (RunLive), both from submission:
//
//   - VISIBILITY — submit → applied at EVERY correct process (first
//     application per process; the reading below).
//   - ORDER STABILITY — submit → the operation's last (re)application
//     anywhere. A reorder before the ETOB stabilization time rebuilds a
//     replica and re-applies its log, so an op's position is stable only
//     after its final re-application; with a stable leader the two
//     histograms coincide.
//
// Reading under churn: a process that restarts re-applies everything after
// reviving, so first-application times are per-incarnation approximations;
// operations whose submission raced a crash may never resolve and are
// reported in Result.Unresolved rather than silently dropped — a nonzero
// Unresolved under a fault-free preset means queue collapse, the exact
// condition the open loop exists to expose.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	goruntime "runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/retransmit"
	"repro/internal/runtime"
	"repro/internal/sim"
	_ "repro/internal/sim/adversary" // registers the named network presets
	"repro/internal/smr"
)

// Config parameterizes one load run.
type Config struct {
	// Procs is the number of replicas (default 3).
	Procs int
	// Ops is the total number of operations (default 10_000; the harness is
	// sized for >= 10^6).
	Ops int
	// Rate is the mean arrival rate in operations per kernel tick (RunSim)
	// or per LiveTick (RunLive). Default 0.2.
	Rate float64
	// Sessions is the number of concurrent client sessions; each session has
	// replica affinity (session mod Procs), like the front door's rendezvous
	// ranking. Default 64.
	Sessions int
	// Seed seeds the arrival process, the network model, and the default
	// retransmission jitter. Default 1.
	Seed int64
	// Preset names the sim network environment ("uniform" or "" for the
	// default clean network, "lossy", "hostile", ... — any registered
	// sim preset; fault schedules attached to the preset apply too).
	// RunSim only.
	Preset string
	// Batch configures ETOB broadcast batching for the replica stack; the
	// zero value runs unbatched.
	Batch etob.BatchOptions
	// Retransmit overrides the retransmission options (default: seeded from
	// Seed, no give-up).
	Retransmit *retransmit.Options
	// Settle is how long past the last arrival the run may keep going before
	// unresolved operations are declared stuck, in ticks (RunSim; default
	// 60_000) or as a wall duration via SettleWall (RunLive; default 60s).
	Settle     model.Time
	SettleWall time.Duration
	// LiveTick is the live cluster's tick/heartbeat interval (RunLive;
	// default 2ms, the production cadence).
	LiveTick time.Duration
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 3
	}
	if c.Ops <= 0 {
		c.Ops = 10_000
	}
	if c.Rate <= 0 {
		c.Rate = 0.2
	}
	if c.Sessions <= 0 {
		c.Sessions = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Settle <= 0 {
		c.Settle = 60_000
	}
	if c.SettleWall <= 0 {
		c.SettleWall = 60 * time.Second
	}
	if c.LiveTick <= 0 {
		c.LiveTick = 2 * time.Millisecond
	}
	return c
}

// Result is one load run's measurements.
type Result struct {
	// Ops is the number of operations offered; Resolved of them became
	// visible at every correct process, Unresolved did not (queue collapse,
	// or — under churn presets — submissions lost to a down window).
	Ops        int
	Resolved   int
	Unresolved int
	// Visible and Stable are the two latency histograms (ticks for RunSim,
	// microseconds for RunLive); see the package comment.
	Visible *Histogram
	Stable  *Histogram
	// WallMS is the run's wall-clock cost; StepsPerSec the kernel event rate
	// (RunSim only); OpsPerSec resolved operations per wall second;
	// AllocsPerOp heap allocations per offered operation (RunSim only —
	// live-plane allocation is dominated by the harness's own pacing).
	WallMS      float64
	StepsPerSec float64
	OpsPerSec   float64
	AllocsPerOp float64
	// MessagesSent counts protocol messages on the wire (RunSim only) — the
	// direct view of what batching amortizes.
	MessagesSent int64
}

// opCmd encodes operation i as a state-machine command ("o<i>", applied to an
// append-only log machine).
func opCmd(i int) string { return "o" + strconv.Itoa(i) }

func opOf(cmd string) (int, bool) {
	if len(cmd) < 2 || cmd[0] != 'o' {
		return 0, false
	}
	i, err := strconv.Atoi(cmd[1:])
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// tracker accumulates per-operation apply times. Indexing is flat
// (op*n + proc-1); times are int64 in the caller's unit.
type tracker struct {
	n          int
	submitAt   []int64
	firstApply []int64
	lastApply  []int64
	appliedBy  []int32 // how many distinct procs have applied op i
	visibleAt  []int64
	resolved   int
}

func newTracker(ops, n int) *tracker {
	tr := &tracker{
		n:          n,
		submitAt:   make([]int64, ops),
		firstApply: make([]int64, ops*n),
		lastApply:  make([]int64, ops),
		appliedBy:  make([]int32, ops),
		visibleAt:  make([]int64, ops),
	}
	for i := range tr.submitAt {
		tr.submitAt[i] = -1
		tr.lastApply[i] = -1
		tr.visibleAt[i] = -1
	}
	for i := range tr.firstApply {
		tr.firstApply[i] = -1
	}
	return tr
}

func (tr *tracker) submit(i int, t int64) {
	if i < len(tr.submitAt) && tr.submitAt[i] < 0 {
		tr.submitAt[i] = t
	}
}

func (tr *tracker) apply(i int, p model.ProcID, t int64) {
	if i >= len(tr.appliedBy) {
		return
	}
	if t > tr.lastApply[i] {
		tr.lastApply[i] = t
	}
	slot := i*tr.n + int(p) - 1
	if tr.firstApply[slot] >= 0 {
		return
	}
	tr.firstApply[slot] = t
	tr.appliedBy[i]++
	if int(tr.appliedBy[i]) == tr.n {
		tr.visibleAt[i] = t // the last first-application completes visibility
		tr.resolved++
	}
}

// result folds the tracker into histograms.
func (tr *tracker) result() (visible, stable *Histogram, unresolved int) {
	visible, stable = &Histogram{}, &Histogram{}
	for i, sub := range tr.submitAt {
		if sub < 0 || tr.visibleAt[i] < 0 {
			unresolved++
			continue
		}
		visible.Record(tr.visibleAt[i] - sub)
		stable.Record(tr.lastApply[i] - sub)
	}
	return visible, stable, unresolved
}

// simObserver feeds the tracker from kernel events (single-threaded).
type simObserver struct {
	sim.NopObserver
	tr *tracker
}

func (o *simObserver) OnInput(p model.ProcID, t model.Time, v any) {
	if c, ok := v.(smr.Command); ok {
		if i, isOp := opOf(c.Cmd); isOp {
			o.tr.submit(i, int64(t))
		}
	}
}

func (o *simObserver) OnOutput(p model.ProcID, t model.Time, v any) {
	a, ok := v.(smr.Applied)
	if !ok {
		return
	}
	for _, id := range a.New {
		if cmd, isCmd := smr.DecodeCommand(id); isCmd {
			if i, isOp := opOf(cmd); isOp {
				o.tr.apply(i, p, int64(t))
			}
		}
	}
}

// stackFactory builds the full Eventual replica stack under test.
func stackFactory(cfg Config) model.AutomatonFactory {
	rt := cfg.Retransmit
	if rt == nil {
		rt = &retransmit.Options{Seed: cfg.Seed}
	}
	return core.ReplicaStackWith(core.Eventual, core.StackOptions{
		Machine:    smr.LogFactory,
		Retransmit: rt,
		Batch:      cfg.Batch,
	})
}

// RunSim executes one open-loop load run on the deterministic simulation
// kernel and returns its measurements. Identical configs produce identical
// latency histograms (wall-clock fields aside).
func RunSim(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	opts := sim.Options{Seed: cfg.Seed, MaxTime: model.TimeNever}
	if cfg.Preset != "" && cfg.Preset != "uniform" {
		nf, err := sim.PresetFactory(cfg.Preset)
		if err != nil {
			return Result{}, err
		}
		opts.Network = nf
		if mkFaults := sim.PresetFaults(cfg.Preset); mkFaults != nil {
			opts.Faults = mkFaults(cfg.Procs)
		}
	}
	fp := model.NewFailurePattern(cfg.Procs)
	det := fd.NewOmegaStable(fp, 1)
	k := sim.New(fp, det, stackFactory(cfg), opts)
	tr := newTracker(cfg.Ops, cfg.Procs)
	k.SetObserver(&simObserver{tr: tr})

	// Draw the whole open-loop arrival schedule up front: Poisson arrivals
	// (exponential interarrival times at Rate per tick), session affinity
	// deciding the replica, per-replica arrival ticks made strictly
	// monotone so submission order is well defined.
	rng := rand.New(rand.NewSource(cfg.Seed))
	lastAt := make([]model.Time, cfg.Procs+1)
	at := 100.0
	var horizon model.Time
	for i := 0; i < cfg.Ops; i++ {
		at += rng.ExpFloat64() / cfg.Rate
		session := rng.Intn(cfg.Sessions)
		p := model.ProcID(session%cfg.Procs + 1)
		tick := model.Time(math.Ceil(at))
		if tick <= lastAt[p] {
			tick = lastAt[p] + 1
		}
		lastAt[p] = tick
		if tick > horizon {
			horizon = tick
		}
		k.ScheduleInput(p, tick, smr.Command{Cmd: opCmd(i)})
	}

	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	start := time.Now()
	k.RunUntil(horizon+cfg.Settle, func(k *sim.Kernel) bool { return tr.resolved == cfg.Ops })
	wall := time.Since(start)
	goruntime.ReadMemStats(&after)

	visible, stable, unresolved := tr.result()
	res := Result{
		Ops:          cfg.Ops,
		Resolved:     tr.resolved,
		Unresolved:   unresolved,
		Visible:      visible,
		Stable:       stable,
		WallMS:       float64(wall.Nanoseconds()) / 1e6,
		MessagesSent: k.MessagesSent(),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(cfg.Ops),
	}
	if sec := wall.Seconds(); sec > 0 {
		res.StepsPerSec = float64(k.Steps()) / sec
		res.OpsPerSec = float64(tr.resolved) / sec
	}
	return res, nil
}

// liveObserver feeds the tracker from a live cluster's event loops
// (concurrent: one goroutine per process), stamping wall microseconds.
type liveObserver struct {
	sim.NopObserver
	mu    sync.Mutex
	tr    *tracker
	epoch time.Time
}

func (o *liveObserver) now() int64 { return time.Since(o.epoch).Microseconds() }

func (o *liveObserver) OnOutput(p model.ProcID, _ model.Time, v any) {
	a, ok := v.(smr.Applied)
	if !ok {
		return
	}
	t := o.now()
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, id := range a.New {
		if cmd, isCmd := smr.DecodeCommand(id); isCmd {
			if i, isOp := opOf(cmd); isOp {
				o.tr.apply(i, p, t)
			}
		}
	}
}

func (o *liveObserver) resolvedCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.tr.resolved
}

// RunLive executes one open-loop load run against a live in-process cluster
// (runtime.Cluster: real event loops, channel transport) and returns its
// measurements with latencies in wall microseconds. The arrival process is
// the same seeded Poisson stream, paced in real time at Rate operations per
// LiveTick.
func RunLive(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Preset != "" && cfg.Preset != "uniform" {
		return Result{}, fmt.Errorf("loadgen: network presets are sim-only; RunLive supports only the clean network (got %q)", cfg.Preset)
	}
	tr := newTracker(cfg.Ops, cfg.Procs)
	obs := &liveObserver{tr: tr, epoch: time.Now()}
	cluster := runtime.NewCluster(cfg.Procs, stackFactory(cfg), runtime.Options{
		TickInterval:      cfg.LiveTick,
		HeartbeatInterval: cfg.LiveTick,
		Observer:          obs,
	})
	defer cluster.Stop()

	rng := rand.New(rand.NewSource(cfg.Seed))
	meanGap := float64(cfg.LiveTick) / cfg.Rate // mean interarrival in ns
	start := time.Now()
	next := time.Duration(0)
	for i := 0; i < cfg.Ops; i++ {
		next += time.Duration(rng.ExpFloat64() * meanGap)
		if sleep := next - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		session := rng.Intn(cfg.Sessions)
		p := model.ProcID(session%cfg.Procs + 1)
		obs.mu.Lock()
		tr.submit(i, obs.now())
		obs.mu.Unlock()
		cluster.Submit(p, smr.Command{Cmd: opCmd(i)})
	}

	deadline := time.Now().Add(cfg.SettleWall)
	for obs.resolvedCount() < cfg.Ops && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	wall := time.Since(start)

	obs.mu.Lock()
	visible, stable, unresolved := tr.result()
	resolved := tr.resolved
	obs.mu.Unlock()
	res := Result{
		Ops:        cfg.Ops,
		Resolved:   resolved,
		Unresolved: unresolved,
		Visible:    visible,
		Stable:     stable,
		WallMS:     float64(wall.Nanoseconds()) / 1e6,
	}
	if sec := wall.Seconds(); sec > 0 {
		res.OpsPerSec = float64(resolved) / sec
	}
	return res, nil
}
