package loadgen

import "repro/internal/obs"

// Histogram is the shared log-bucketed latency histogram, extracted to
// internal/obs (the observability plane) so the serving path and the load
// harness bucket latencies identically. The alias keeps loadgen's API — and
// its golden outputs — byte-identical to the pre-extraction type; the
// histogram's own tests live with the implementation in internal/obs.
type Histogram = obs.Histogram
