package loadgen

import (
	"fmt"
	"math"
	"math/bits"
)

// Histogram is a fixed-footprint log-bucketed latency histogram in the HDR
// style: values 0..31 are recorded exactly, and each further power of two is
// split into 32 sub-buckets, bounding the relative quantile error at ~3%
// while covering the full non-negative int64 range in a 16 KiB counts array.
// No dependency, no allocation after construction, deterministic for a
// deterministic record sequence. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

const (
	histSubBuckets = 32 // sub-buckets per power of two: 2^5
	histSubBits    = 5
	// 32 exact buckets + one row of 32 per remaining power of two.
	histBuckets = histSubBuckets + (63-histSubBits)*histSubBuckets
)

// Record adds one value. Negative values clamp to zero (latency cannot be
// negative; a clamp beats a panic in a measurement path).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.counts[histBucketOf(v)]++
}

func histBucketOf(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // v ∈ [2^exp, 2^exp+1), exp >= 5
	base := exp - histSubBits
	sub := int((v >> base) - histSubBuckets) // 0..31
	return histSubBuckets*(base+1) + sub
}

// histBucketValue returns the representative (midpoint) value of bucket i.
func histBucketValue(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	base := i/histSubBuckets - 1
	sub := i % histSubBuckets
	lo := int64(histSubBuckets+sub) << base
	return lo + (int64(1)<<base)/2
}

// Count returns how many values were recorded.
func (h *Histogram) Count() int64 { return h.n }

// Min and Max return the exact extremes of the recorded values (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the exact maximum recorded value.
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the approximate q-quantile (q in [0,1]) of the recorded
// values: the representative value of the bucket containing the rank-⌈q·n⌉
// value. Exact for values < 32; within ~3% above. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i]
		if seen >= rank {
			v := histBucketValue(i)
			// Clamp to the exact extremes: the top/bottom buckets may extend
			// past what was actually recorded.
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge folds other into h (exact: bucket-wise addition).
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
}

// String summarizes the histogram (for logs and test failures).
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p99=%d p999=%d max=%d mean=%.1f",
		h.n, h.min, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.max, h.Mean())
}
