// Package smr implements replicated state machines over a total-order (or
// eventually-total-order) broadcast — the paper's motivating construction
// (§1): a deterministic service replicated over the processes, with all
// replicas applying the same command sequence.
//
// Over the paper's ETOB (internal/etob) the result is an EVENTUALLY
// consistent replicated service: during leader disagreement the delivered
// sequence of a replica may be reordered, and the replica then rebuilds its
// state from scratch (deterministic replay); after the ETOB stabilization
// time τ, sequences only grow and replicas converge — the paper's "replicas
// may diverge for a finite period". Over a strong TOB (internal/consensus,
// internal/tob) the same code yields a strongly consistent service.
//
// Commands piggyback on broadcast message IDs ("<uniq>|<command>"), since
// the broadcast abstractions order opaque message identifiers.
package smr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/model"
)

// StateMachine is a deterministic service: identical command sequences yield
// identical snapshots.
type StateMachine interface {
	// Apply executes one command and returns its response.
	Apply(cmd string) string
	// Snapshot returns a canonical encoding of the current state.
	Snapshot() string
}

// MachineFactory creates a fresh machine in its initial state (used both at
// startup and for deterministic replay after a reorder).
type MachineFactory func() StateMachine

// Command is the input that submits a command to the replicated service.
type Command struct {
	Cmd string
}

// Applied is output whenever the replica's machine state changes. It carries
// only the DELTA: the command IDs applied by this change, in order, and the
// total applied count after it — not the full sequence and not a snapshot.
// (It used to carry both, which made the output O(applied) per change and the
// whole run quadratic in ops; under the open-loop load harness that copying
// dominated everything. Observers that want the full sequence accumulate the
// deltas — a Rebuilt change restarts the accumulation — and ones that want
// the machine state ask the Replica.) Rebuilt reports whether the replica
// replayed from scratch because its delivered prefix changed (only possible
// before the ETOB stabilization time); the New of a rebuilt change is the
// entire re-applied sequence.
type Applied struct {
	New     []string
	Total   int
	Rebuilt bool
}

// EncodeCommand builds the broadcast message ID carrying cmd; uniq must be
// globally unique (the replica uses "<proc>.<seq>").
func EncodeCommand(uniq, cmd string) string { return uniq + "|" + cmd }

// DecodeCommand extracts the command from a broadcast message ID.
func DecodeCommand(id string) (string, bool) {
	i := strings.IndexByte(id, '|')
	if i < 0 {
		return "", false
	}
	return id[i+1:], true
}

// Replica runs a state machine over any broadcast automaton that consumes
// model.BroadcastInput and emits model.SeqSnapshot (etob.Automaton,
// consensus.Log, transform.ECToETOB, ...).
type Replica struct {
	self    model.ProcID
	inner   model.Automaton
	factory MachineFactory

	machine StateMachine
	applied []string // command IDs applied, in order
	seq     int64
	rebuilt int
}

var _ model.Automaton = (*Replica)(nil)

// NewReplica wraps the broadcast automaton with a state machine.
func NewReplica(p model.ProcID, inner model.Automaton, factory MachineFactory) *Replica {
	return &Replica{self: p, inner: inner, factory: factory, machine: factory()}
}

// ReplicaFactory composes a broadcast factory with a machine factory.
func ReplicaFactory(broadcast model.AutomatonFactory, machine MachineFactory) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton {
		return NewReplica(p, broadcast(p, n), machine)
	}
}

// replicaCtx intercepts the inner protocol's outputs.
type replicaCtx struct {
	model.Context
	r *Replica
}

func (c replicaCtx) Output(v any) {
	if snap, ok := v.(model.SeqSnapshot); ok {
		// Pass the raw d_i evolution through (recorders and the (E)TOB
		// property checkers need it), then reconcile the machine.
		c.Context.Output(v)
		c.r.onDelivered(c.Context, snap.Seq)
		return
	}
	c.Context.Output(v)
}

// Init implements model.Automaton.
func (r *Replica) Init(ctx model.Context) { r.inner.Init(replicaCtx{ctx, r}) }

// Tick implements model.Automaton.
func (r *Replica) Tick(ctx model.Context) { r.inner.Tick(replicaCtx{ctx, r}) }

// Recv implements model.Automaton.
func (r *Replica) Recv(ctx model.Context, from model.ProcID, payload any) {
	r.inner.Recv(replicaCtx{ctx, r}, from, payload)
}

// Input implements model.Automaton: a Command is broadcast with a unique ID;
// other inputs pass through to the broadcast protocol.
func (r *Replica) Input(ctx model.Context, in any) {
	if cmd, ok := in.(Command); ok {
		r.seq++
		id := EncodeCommand(fmt.Sprintf("%v.%d", r.self, r.seq), cmd.Cmd)
		// Announce the generated broadcast so recorders see the full input
		// history (the raw input was a Command, not a BroadcastInput).
		ctx.Output(model.BroadcastInput{ID: id})
		r.inner.Input(replicaCtx{ctx, r}, model.BroadcastInput{ID: id})
		return
	}
	r.inner.Input(replicaCtx{ctx, r}, in)
}

// onDelivered reconciles the machine with the newly delivered sequence:
// apply the suffix if the old sequence is a prefix of the new one, otherwise
// rebuild deterministically from scratch.
func (r *Replica) onDelivered(ctx model.Context, seq []string) {
	rebuilt := false
	if !isPrefix(r.applied, seq) {
		r.machine = r.factory()
		r.applied = r.applied[:0]
		r.rebuilt++
		rebuilt = true
	}
	from := len(r.applied)
	for _, id := range seq[from:] {
		if cmd, ok := DecodeCommand(id); ok {
			r.machine.Apply(cmd)
		}
		r.applied = append(r.applied, id)
	}
	if rebuilt || len(r.applied) > from {
		ctx.Output(Applied{
			New:     append([]string(nil), r.applied[from:]...),
			Total:   len(r.applied),
			Rebuilt: rebuilt,
		})
	}
}

// Snapshot returns the replica's current machine snapshot.
func (r *Replica) Snapshot() string { return r.machine.Snapshot() }

// Inner returns the broadcast automaton the replica drives (introspection:
// e.g. the ETOB batching layer's counters live there).
func (r *Replica) Inner() model.Automaton { return r.inner }

// AppliedCount returns the number of commands currently applied.
func (r *Replica) AppliedCount() int { return len(r.applied) }

// Rebuilds returns how many times the replica replayed from scratch.
func (r *Replica) Rebuilds() int { return r.rebuilt }

func isPrefix(pre, full []string) bool {
	if len(pre) > len(full) {
		return false
	}
	for i := range pre {
		if pre[i] != full[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// State machines
// ---------------------------------------------------------------------------

// KVStore is a key-value store machine. Commands:
//
//	set <k> <v> | del <k> | append <k> <v>
type KVStore struct {
	m map[string]string
}

var _ StateMachine = (*KVStore)(nil)

// NewKVStore returns an empty KV store.
func NewKVStore() *KVStore { return &KVStore{m: make(map[string]string)} }

// KVFactory is a MachineFactory for KVStore.
func KVFactory() StateMachine { return NewKVStore() }

// Apply implements StateMachine.
func (s *KVStore) Apply(cmd string) string {
	f := strings.Fields(cmd)
	if len(f) == 0 {
		return "err empty"
	}
	switch f[0] {
	case "set":
		if len(f) < 3 {
			return "err set"
		}
		s.m[f[1]] = strings.Join(f[2:], " ")
		return "ok"
	case "del":
		if len(f) < 2 {
			return "err del"
		}
		delete(s.m, f[1])
		return "ok"
	case "append":
		if len(f) < 3 {
			return "err append"
		}
		s.m[f[1]] += strings.Join(f[2:], " ")
		return "ok"
	default:
		return "err unknown"
	}
}

// Get returns the value of a key.
func (s *KVStore) Get(k string) (string, bool) {
	v, ok := s.m[k]
	return v, ok
}

// Snapshot implements StateMachine: sorted "k=v" pairs.
func (s *KVStore) Snapshot() string {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+s.m[k])
	}
	return strings.Join(parts, ",")
}

// Counter is a named-counter machine. Commands: inc <name> [n] | dec <name> [n].
type Counter struct {
	m map[string]int64
}

var _ StateMachine = (*Counter)(nil)

// NewCounter returns an empty counter machine.
func NewCounter() *Counter { return &Counter{m: make(map[string]int64)} }

// CounterFactory is a MachineFactory for Counter.
func CounterFactory() StateMachine { return NewCounter() }

// Apply implements StateMachine.
func (c *Counter) Apply(cmd string) string {
	f := strings.Fields(cmd)
	if len(f) < 2 {
		return "err"
	}
	n := int64(1)
	if len(f) >= 3 {
		if v, err := strconv.ParseInt(f[2], 10, 64); err == nil {
			n = v
		}
	}
	switch f[0] {
	case "inc":
		c.m[f[1]] += n
	case "dec":
		c.m[f[1]] -= n
	default:
		return "err unknown"
	}
	return strconv.FormatInt(c.m[f[1]], 10)
}

// Value returns the current value of a counter.
func (c *Counter) Value(name string) int64 { return c.m[name] }

// Snapshot implements StateMachine.
func (c *Counter) Snapshot() string {
	keys := make([]string, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, c.m[k]))
	}
	return strings.Join(parts, ",")
}

// AppendLog is an append-only log machine. Command: any string, appended.
type AppendLog struct {
	entries []string
}

var _ StateMachine = (*AppendLog)(nil)

// NewAppendLog returns an empty log.
func NewAppendLog() *AppendLog { return &AppendLog{} }

// LogFactory is a MachineFactory for AppendLog.
func LogFactory() StateMachine { return NewAppendLog() }

// Apply implements StateMachine.
func (l *AppendLog) Apply(cmd string) string {
	l.entries = append(l.entries, cmd)
	return strconv.Itoa(len(l.entries))
}

// Entries returns a copy of the log.
func (l *AppendLog) Entries() []string { return append([]string(nil), l.entries...) }

// Snapshot implements StateMachine.
func (l *AppendLog) Snapshot() string { return strings.Join(l.entries, "\n") }
