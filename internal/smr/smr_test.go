package smr

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/consensus"
	"repro/internal/etob"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
)

// snapObserver accumulates each replica's applied sequence from the Applied
// deltas — a rebuilt change restarts the accumulation — which doubles as a
// test of the delta contract: the running total must always match
// Applied.Total.
type snapObserver struct {
	sim.NopObserver
	t    *testing.T
	mu   sync.Mutex
	seqs map[model.ProcID][]string
}

func newSnapObserver(t *testing.T) *snapObserver {
	return &snapObserver{t: t, seqs: make(map[model.ProcID][]string)}
}

func (o *snapObserver) OnOutput(p model.ProcID, _ model.Time, v any) {
	if a, ok := v.(Applied); ok {
		o.mu.Lock()
		if a.Rebuilt {
			o.seqs[p] = o.seqs[p][:0]
		}
		o.seqs[p] = append(o.seqs[p], a.New...)
		if len(o.seqs[p]) != a.Total {
			o.t.Errorf("%v: accumulated %d applied commands, Applied.Total says %d", p, len(o.seqs[p]), a.Total)
		}
		o.mu.Unlock()
	}
}

func (o *snapObserver) final(p model.ProcID) ([]string, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s, ok := o.seqs[p]
	return s, ok && len(s) > 0
}

func TestCommandCodec(t *testing.T) {
	id := EncodeCommand("p1.7", "set a b")
	if cmd, ok := DecodeCommand(id); !ok || cmd != "set a b" {
		t.Fatalf("DecodeCommand(%q) = %q,%v", id, cmd, ok)
	}
	if _, ok := DecodeCommand("no-separator"); ok {
		t.Fatal("IDs without commands must not decode")
	}
}

func TestKVStoreMachine(t *testing.T) {
	kv := NewKVStore()
	if got := kv.Apply("set a 1"); got != "ok" {
		t.Errorf("set: %q", got)
	}
	kv.Apply("set b 2")
	kv.Apply("append b x")
	kv.Apply("del a")
	if v, ok := kv.Get("b"); !ok || v != "2x" {
		t.Errorf("Get(b) = %q,%v", v, ok)
	}
	if _, ok := kv.Get("a"); ok {
		t.Error("a must be deleted")
	}
	if kv.Snapshot() != "b=2x" {
		t.Errorf("Snapshot = %q", kv.Snapshot())
	}
	for _, bad := range []string{"", "set a", "del", "append k", "nope x"} {
		if got := kv.Apply(bad); got == "ok" {
			t.Errorf("Apply(%q) must fail", bad)
		}
	}
}

func TestCounterMachine(t *testing.T) {
	c := NewCounter()
	if got := c.Apply("inc hits"); got != "1" {
		t.Errorf("inc: %q", got)
	}
	c.Apply("inc hits 4")
	c.Apply("dec hits 2")
	if c.Value("hits") != 3 {
		t.Errorf("Value = %d, want 3", c.Value("hits"))
	}
	if c.Snapshot() != "hits=3" {
		t.Errorf("Snapshot = %q", c.Snapshot())
	}
	if got := c.Apply("inc"); got != "err" {
		t.Errorf("short command: %q", got)
	}
}

func TestAppendLogMachine(t *testing.T) {
	l := NewAppendLog()
	l.Apply("first")
	l.Apply("second")
	if got := l.Entries(); len(got) != 2 || got[1] != "second" {
		t.Errorf("Entries = %v", got)
	}
	if l.Snapshot() != "first\nsecond" {
		t.Errorf("Snapshot = %q", l.Snapshot())
	}
}

func TestMachineDeterminismQuick(t *testing.T) {
	// Identical command sequences must yield identical snapshots.
	cmds := []string{"set a 1", "set b 2", "del a", "append b z", "set c 9"}
	f := func(perm []uint8) bool {
		m1, m2 := NewKVStore(), NewKVStore()
		for _, i := range perm {
			cmd := cmds[int(i)%len(cmds)]
			m1.Apply(cmd)
			m2.Apply(cmd)
		}
		return m1.Snapshot() == m2.Snapshot()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventualSMRConvergesAfterDivergence(t *testing.T) {
	// ETOB-backed KV store with split-brain Ω until t=1500: replicas diverge
	// (rebuilds happen), then converge to identical snapshots.
	fp := model.NewFailurePattern(4)
	// Even processes trust p2 (itself even), odd processes trust p1 (itself
	// odd): two self-sustaining leader camps until t=1500.
	det := fd.NewOmegaSplit(fp, 2, 1, 1, 1500)
	obs := newSnapObserver(t)
	factory := ReplicaFactory(etob.Factory(), KVFactory)
	k := sim.New(fp, det, factory, sim.Options{Seed: 61})
	k.SetObserver(obs)
	for i, p := range model.Procs(4) {
		// Near-simultaneous broadcasts: random link delays make the two
		// leader camps observe (and promote) different orders.
		k.ScheduleInput(p, model.Time(30+i), Command{Cmd: fmt.Sprintf("set k%d v%d", i, i)})
		k.ScheduleInput(p, model.Time(400+i), Command{Cmd: fmt.Sprintf("set shared from-p%d", p)})
	}
	k.Run(8000)

	want := ""
	for _, p := range fp.Correct() {
		fin, ok := obs.final(p)
		if !ok {
			t.Fatalf("%v never applied anything", p)
		}
		if len(fin) != 8 {
			t.Errorf("%v applied %d commands, want 8", p, len(fin))
		}
		snap := k.Automaton(p).(*Replica).Snapshot()
		if want == "" {
			want = snap
		} else if snap != want {
			t.Errorf("%v snapshot %q != %q", p, snap, want)
		}
	}
	// Divergence happened: some replica rebuilt at least once.
	rebuilds := 0
	for _, p := range model.Procs(4) {
		rebuilds += k.Automaton(p).(*Replica).Rebuilds()
	}
	if rebuilds == 0 {
		t.Error("expected at least one rebuild during the split-brain window")
	}
	t.Logf("total rebuilds: %d, final snapshot: %q", rebuilds, want)
}

func TestStrongSMRNeverRebuilds(t *testing.T) {
	// Paxos-backed KV store: sequences never reorder, so no rebuilds ever.
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaRotating(fp, 1, 800, 50)
	obs := newSnapObserver(t)
	factory := ReplicaFactory(consensus.LogFactory(consensus.MajorityQuorums), KVFactory)
	k := sim.New(fp, det, factory, sim.Options{Seed: 71})
	k.SetObserver(obs)
	for i, p := range model.Procs(3) {
		k.ScheduleInput(p, model.Time(30+15*i), Command{Cmd: fmt.Sprintf("inc-like set x%d %d", i, i)})
	}
	k.Run(20000)
	for _, p := range fp.Correct() {
		if rb := k.Automaton(p).(*Replica).Rebuilds(); rb != 0 {
			t.Errorf("%v rebuilt %d times under strong TOB", p, rb)
		}
	}
	a, okA := obs.final(1)
	b, okB := obs.final(2)
	snapA := k.Automaton(1).(*Replica).Snapshot()
	snapB := k.Automaton(2).(*Replica).Snapshot()
	if !okA || !okB || snapA != snapB {
		t.Fatalf("strong replicas differ: %v (%q) vs %v (%q)", a, snapA, b, snapB)
	}
}

func TestReplicaInspection(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	factory := ReplicaFactory(etob.Factory(), CounterFactory)
	k := sim.New(fp, det, factory, sim.Options{Seed: 5})
	k.ScheduleInput(1, 10, Command{Cmd: "inc visits"})
	k.ScheduleInput(2, 20, Command{Cmd: "inc visits"})
	k.Run(3000)
	r := k.Automaton(2).(*Replica)
	if r.AppliedCount() != 2 {
		t.Errorf("AppliedCount = %d, want 2", r.AppliedCount())
	}
	if r.Snapshot() != "visits=2" {
		t.Errorf("Snapshot = %q, want visits=2", r.Snapshot())
	}
}

func TestReplicaPassthroughInputs(t *testing.T) {
	// Non-Command inputs go straight to the broadcast protocol.
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	factory := ReplicaFactory(etob.Factory(), KVFactory)
	k := sim.New(fp, det, factory, sim.Options{Seed: 6})
	k.ScheduleInput(1, 10, model.BroadcastInput{ID: "raw|set z 9"})
	k.Run(3000)
	r := k.Automaton(2).(*Replica)
	if r.Snapshot() != "z=9" {
		t.Errorf("Snapshot = %q, want z=9", r.Snapshot())
	}
}
