package sim

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

func TestInputToCrashedProcessIgnored(t *testing.T) {
	fp := model.NewFailurePattern(2)
	fp.Crash(2, 0)
	det := fd.NewOmegaStable(fp, 1)
	obs := &countObs{}
	k := New(fp, det, echoFactory(), Options{Seed: 1})
	k.SetObserver(obs)
	k.ScheduleInput(2, 50, "go") // crashed: must not execute
	k.Run(500)
	a2 := k.Automaton(2).(*echoAuto)
	if len(a2.received) != 0 || a2.sent {
		t.Fatal("crashed process executed steps")
	}
	// Observer OnInput is only fired for executed inputs.
	if obs.inputs != 0 {
		t.Fatalf("inputs = %d, want 0", obs.inputs)
	}
}

func TestBroadcastIncludesSelf(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	k := New(fp, det, echoFactory(), Options{Seed: 1})
	k.Run(300)
	// echoAuto broadcasts "hello" once; each process must receive its own.
	a1 := k.Automaton(1).(*echoAuto)
	selfHello := 0
	for _, m := range a1.received {
		if m == "hello" {
			selfHello++
		}
	}
	if selfHello != 2 { // one from itself, one from the peer
		t.Fatalf("p1 received %d hellos, want 2 (self + peer)", selfHello)
	}
}

func TestOutputOutsideStepPanics(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	var leaked model.Context
	k := New(fp, det, func(p model.ProcID, n int) model.Automaton {
		return &ctxLeaker{&leaked}
	}, Options{Seed: 1})
	k.Run(10)
	if leaked == nil {
		t.Fatal("no step executed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Send on a finished step context must panic")
		}
	}()
	leaked.Send(1, "late")
}

// ctxLeaker stores its step context so the test can misuse it after the step.
type ctxLeaker struct{ out *model.Context }

func (c *ctxLeaker) Init(ctx model.Context)                { *c.out = ctx }
func (c *ctxLeaker) Tick(model.Context)                    {}
func (c *ctxLeaker) Recv(model.Context, model.ProcID, any) {}
func (c *ctxLeaker) Input(model.Context, any)              {}

func TestLinksAreNotFIFO(t *testing.T) {
	// With a wide delay spread, two messages sent back-to-back on one link
	// can arrive reordered — the model property that motivated the ETOB
	// promote counters (DESIGN.md decision 6).
	reordered := false
	for seed := int64(1); seed <= 20 && !reordered; seed++ {
		fp := model.NewFailurePattern(2)
		det := fd.NewOmegaStable(fp, 1)
		var order []string
		k := New(fp, det, func(p model.ProcID, n int) model.Automaton {
			return &seqSender{order: &order}
		}, Options{Seed: seed, MinDelay: 1, MaxDelay: 100})
		k.ScheduleInput(1, 10, "send")
		k.Run(1000)
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				reordered = true
			}
		}
	}
	if !reordered {
		t.Fatal("no reordering across 20 seeds — links unexpectedly FIFO")
	}
}

// seqSender: on input, p1 sends "a".."e" to p2 in one step; p2 records the
// arrival order.
type seqSender struct{ order *[]string }

func (s *seqSender) Init(model.Context) {}
func (s *seqSender) Tick(model.Context) {}
func (s *seqSender) Input(ctx model.Context, _ any) {
	for _, m := range []string{"a", "b", "c", "d", "e"} {
		ctx.Send(2, m)
	}
}
func (s *seqSender) Recv(_ model.Context, _ model.ProcID, payload any) {
	if str, ok := payload.(string); ok {
		*s.order = append(*s.order, str)
	}
}
