package sim

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

// benchKernel drives one echo-protocol run to completion; the per-op cost is
// dominated by the kernel's event loop (heap ops, step contexts, sends).
func benchKernel(b *testing.B, opts Options) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fp := model.NewFailurePattern(8)
		det := fd.NewOmegaStable(fp, 1)
		k := New(fp, det, echoFactory(), opts)
		k.ScheduleInput(1, 60, "go")
		k.Run(5000)
		if k.Steps() == 0 {
			b.Fatal("run did nothing")
		}
	}
}

func BenchmarkKernelUniform(b *testing.B) {
	benchKernel(b, Options{Seed: 1, MinDelay: 3, MaxDelay: 30})
}

func BenchmarkKernelPartitioned(b *testing.B) {
	benchKernel(b, Options{Seed: 1, Network: func() NetworkModel {
		return &Partitioned{LeftSize: 4, FirstAt: 500, Duration: 400, Interval: 1500}
	}})
}

func BenchmarkKernelJittery(b *testing.B) {
	benchKernel(b, Options{Seed: 1, Network: func() NetworkModel { return NewJittery(20) }})
}

// benchNs are the cluster sizes the big-n benchmarks sweep; mirrored in
// internal/bench's microScale so BENCH_*.json tracks the same points.
var benchNs = []int{5, 64, 256}

// bcastAuto broadcasts once per input and is otherwise inert, so a run's
// cost is the kernel's broadcast fan-out alone: n heap inserts and n
// delivery steps per submitted input, nothing protocol-side.
type bcastAuto struct{ got int }

func (a *bcastAuto) Init(model.Context)                          {}
func (a *bcastAuto) Tick(model.Context)                          {}
func (a *bcastAuto) Recv(_ model.Context, _ model.ProcID, _ any) { a.got++ }
func (a *bcastAuto) Input(ctx model.Context, _ any)              { ctx.Broadcast("payload") }

// BenchmarkKernelBroadcastN measures broadcast fan-out cost as n grows: 32
// staggered inputs each fan out to all n processes, so one op is O(32·n)
// heap inserts + deliveries dominated by the kernel's per-recipient send
// path (delay draw, slab alloc, sift).
func BenchmarkKernelBroadcastN(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fp := model.NewFailurePattern(n)
				det := fd.NewOmegaStable(fp, 1)
				k := New(fp, det, func(p model.ProcID, n int) model.Automaton {
					return &bcastAuto{}
				}, Options{Seed: 1, MinDelay: 3, MaxDelay: 30})
				for j := 0; j < 32; j++ {
					k.ScheduleInput(model.ProcID(j%n+1), model.Time(20+j*10), "go")
				}
				k.Run(400)
				if got := k.Automaton(1).(*bcastAuto).got; got != 32 {
					b.Fatalf("p1 received %d broadcasts, want 32", got)
				}
			}
		})
	}
}

// rotorAuto sends one unicast to a rotating peer on every tick, keeping
// ~n messages in flight at all times under jittery delays — the heap is in
// constant insert/pop churn with no long quiet stretches.
type rotorAuto struct {
	self  model.ProcID
	n     int
	ticks int
}

func (a *rotorAuto) Init(model.Context) {}
func (a *rotorAuto) Tick(ctx model.Context) {
	a.ticks++
	peer := model.ProcID((int(a.self)-1+a.ticks)%a.n + 1)
	if peer != a.self {
		ctx.Send(peer, "x")
	}
}
func (a *rotorAuto) Recv(model.Context, model.ProcID, any) {}
func (a *rotorAuto) Input(model.Context, any)              {}

// BenchmarkKernelHeapChurnN measures the slab heap under sustained churn as
// n grows: every process sends every tick with jittered delays, so inserts
// land out of order and the heap never drains until the horizon.
func BenchmarkKernelHeapChurnN(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fp := model.NewFailurePattern(n)
				det := fd.NewOmegaStable(fp, 1)
				k := New(fp, det, func(p model.ProcID, n int) model.Automaton {
					return &rotorAuto{self: p, n: n}
				}, Options{Seed: 1, Network: func() NetworkModel { return NewJittery(20) }})
				k.Run(500)
				if k.MessagesSent() == 0 {
					b.Fatal("no churn traffic")
				}
			}
		})
	}
}

// BenchmarkCachedHitPathN measures fd.Cached's hit path as n grows: the
// kernel-shaped query pattern (t advancing monotonically per process) stays
// inside one segment of a stable Ω+Σ history, so after the first miss per
// process every query is a scan of the 4-way LRU set's front slot. The
// sweep pins that the per-query cost is flat in n — the cache is O(ways)
// per process, never O(segments).
func BenchmarkCachedHitPathN(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			fp := model.NewFailurePattern(n)
			det := fd.NewCached(fd.NewOmegaSigma(fd.NewOmegaStable(fp, 1), fd.NewSigma(fp, 0)))
			procs := model.Procs(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for t := model.Time(0); t < 2560; t += 5 {
					for _, p := range procs {
						det.Value(p, t)
					}
				}
			}
			b.StopTimer()
			if hits, misses := det.Stats(); hits < misses*64 {
				b.Fatalf("hit path not exercised: %d hits / %d misses", hits, misses)
			}
		})
	}
}

// BenchmarkKernelSigmaFD drives the same run under the composite Ω+Σ
// detector, whose uncached Value allocates a quorum slice per query. The
// kernel's per-step query goes through fd.Cached, so allocs/op must stay in
// the same regime as the Ω-only benchmarks.
func BenchmarkKernelSigmaFD(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fp := model.NewFailurePattern(8)
		det := fd.NewOmegaSigma(fd.NewOmegaStable(fp, 1), fd.NewSigma(fp, 0))
		k := New(fp, det, echoFactory(), Options{Seed: 1, MinDelay: 3, MaxDelay: 30})
		k.ScheduleInput(1, 60, "go")
		k.Run(5000)
		if k.Steps() == 0 {
			b.Fatal("run did nothing")
		}
	}
}
