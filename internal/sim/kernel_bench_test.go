package sim

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

// benchKernel drives one echo-protocol run to completion; the per-op cost is
// dominated by the kernel's event loop (heap ops, step contexts, sends).
func benchKernel(b *testing.B, opts Options) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fp := model.NewFailurePattern(8)
		det := fd.NewOmegaStable(fp, 1)
		k := New(fp, det, echoFactory(), opts)
		k.ScheduleInput(1, 60, "go")
		k.Run(5000)
		if k.Steps() == 0 {
			b.Fatal("run did nothing")
		}
	}
}

func BenchmarkKernelUniform(b *testing.B) {
	benchKernel(b, Options{Seed: 1, MinDelay: 3, MaxDelay: 30})
}

func BenchmarkKernelPartitioned(b *testing.B) {
	benchKernel(b, Options{Seed: 1, Network: func() NetworkModel {
		return &Partitioned{LeftSize: 4, FirstAt: 500, Duration: 400, Interval: 1500}
	}})
}

func BenchmarkKernelJittery(b *testing.B) {
	benchKernel(b, Options{Seed: 1, Network: func() NetworkModel { return NewJittery(20) }})
}

// BenchmarkKernelSigmaFD drives the same run under the composite Ω+Σ
// detector, whose uncached Value allocates a quorum slice per query. The
// kernel's per-step query goes through fd.Cached, so allocs/op must stay in
// the same regime as the Ω-only benchmarks.
func BenchmarkKernelSigmaFD(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fp := model.NewFailurePattern(8)
		det := fd.NewOmegaSigma(fd.NewOmegaStable(fp, 1), fd.NewSigma(fp, 0))
		k := New(fp, det, echoFactory(), Options{Seed: 1, MinDelay: 3, MaxDelay: 30})
		k.ScheduleInput(1, 60, "go")
		k.Run(5000)
		if k.Steps() == 0 {
			b.Fatal("run did nothing")
		}
	}
}
