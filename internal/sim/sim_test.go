package sim

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

// echoAuto broadcasts "hello" on its first tick and counts everything it
// receives; it re-echoes each "hello" once as "reply".
type echoAuto struct {
	self     model.ProcID
	sent     bool
	received []string
	leaders  []model.ProcID
}

func (e *echoAuto) Init(model.Context) {}

func (e *echoAuto) Tick(ctx model.Context) {
	if l, ok := fd.LeaderOf(ctx.FD()); ok {
		e.leaders = append(e.leaders, l)
	}
	if !e.sent {
		e.sent = true
		ctx.Broadcast("hello")
	}
}

func (e *echoAuto) Recv(ctx model.Context, from model.ProcID, payload any) {
	s, _ := payload.(string)
	e.received = append(e.received, s)
	if s == "hello" && from != e.self {
		ctx.Send(from, "reply")
	}
	if s == "done" {
		ctx.Output("saw-done")
	}
}

func (e *echoAuto) Input(ctx model.Context, in any) {
	ctx.Broadcast("done")
}

type countObs struct {
	NopObserver
	sends, delivers, outputs, inputs int
	maxDepth                         int
	outputTimes                      []model.Time
}

func (o *countObs) OnSend(_ model.Time, m Message) {
	o.sends++
	if m.Depth > o.maxDepth {
		o.maxDepth = m.Depth
	}
}
func (o *countObs) OnDeliver(model.Time, Message) { o.delivers++ }
func (o *countObs) OnOutput(_ model.ProcID, t model.Time, _ any) {
	o.outputs++
	o.outputTimes = append(o.outputTimes, t)
}
func (o *countObs) OnInput(model.ProcID, model.Time, any) { o.inputs++ }

func echoFactory() model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton { return &echoAuto{self: p} }
}

func TestKernelBasicRun(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	obs := &countObs{}
	k := New(fp, det, echoFactory(), Options{Seed: 1})
	k.SetObserver(obs)
	k.ScheduleInput(2, 100, "go")
	k.Run(1000)

	// 3 "hello" broadcasts (3 sends each) + replies (2 per hello for the
	// other processes) + 1 "done" broadcast.
	if obs.inputs != 1 {
		t.Errorf("inputs = %d, want 1", obs.inputs)
	}
	if obs.sends < 9+6+3 {
		t.Errorf("sends = %d, want >= 18", obs.sends)
	}
	if obs.delivers != obs.sends {
		t.Errorf("failure-free run: delivers (%d) must equal sends (%d)", obs.delivers, obs.sends)
	}
	if obs.outputs != 3 {
		t.Errorf("outputs = %d, want 3 (each process sees done)", obs.outputs)
	}
	for _, p := range model.Procs(3) {
		a := k.Automaton(p).(*echoAuto)
		// Everyone receives 3 hellos, 2 replies, 1 done.
		if len(a.received) != 6 {
			t.Errorf("%v received %d messages, want 6: %v", p, len(a.received), a.received)
		}
		for _, l := range a.leaders {
			if l != 1 {
				t.Errorf("%v saw leader %v, want p1", p, l)
			}
		}
	}
	// "reply" is sent while processing "hello": depth 2.
	if obs.maxDepth != 2 {
		t.Errorf("max message depth = %d, want 2", obs.maxDepth)
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func() (int64, int64, model.Time) {
		fp := model.NewFailurePattern(4)
		fp.Crash(4, 150)
		det := fd.NewOmegaEventual(fp, 2, 50)
		k := New(fp, det, echoFactory(), Options{Seed: 7, MinDelay: 3, MaxDelay: 17})
		k.ScheduleInput(1, 60, "go")
		k.Run(2000)
		return k.Steps(), k.MessagesSent(), k.Now()
	}
	s1, m1, t1 := run()
	s2, m2, t2 := run()
	if s1 != s2 || m1 != m2 || t1 != t2 {
		t.Fatalf("same seed must reproduce: (%d,%d,%d) vs (%d,%d,%d)", s1, m1, t1, s2, m2, t2)
	}
	if s1 == 0 || m1 == 0 {
		t.Fatal("run did nothing")
	}
}

func TestKernelSeedChangesSchedule(t *testing.T) {
	run := func(seed int64) model.Time {
		fp := model.NewFailurePattern(3)
		det := fd.NewOmegaStable(fp, 1)
		obs := &countObs{}
		k := New(fp, det, echoFactory(), Options{Seed: seed, MinDelay: 1, MaxDelay: 50})
		k.SetObserver(obs)
		k.ScheduleInput(1, 60, "go")
		k.Run(300)
		var sum model.Time
		for _, t := range obs.outputTimes {
			sum += t
		}
		return sum
	}
	// Not guaranteed for every pair, but for this automaton the delivery
	// times differ, so steps within the horizon differ for at least one of
	// several seeds.
	base := run(1)
	diff := false
	for seed := int64(2); seed <= 6; seed++ {
		if run(seed) != base {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical schedules — PRNG unused?")
	}
}

func TestKernelCrashStopsProcess(t *testing.T) {
	fp := model.NewFailurePattern(3)
	fp.Crash(3, 0) // initially crashed: takes no steps at all
	det := fd.NewOmegaStable(fp, 1)
	k := New(fp, det, echoFactory(), Options{Seed: 3})
	k.Run(500)

	a3 := k.Automaton(3).(*echoAuto)
	if a3.sent || len(a3.received) != 0 {
		t.Error("initially-crashed process must take no steps")
	}
	if k.MessagesDropped() == 0 {
		t.Error("messages to the crashed process must be dropped")
	}
	// The two surviving processes exchange hello+reply.
	for _, p := range []model.ProcID{1, 2} {
		a := k.Automaton(p).(*echoAuto)
		if len(a.received) != 3 { // 2 hellos + 1 reply
			t.Errorf("%v received %d, want 3 (%v)", p, len(a.received), a.received)
		}
	}
}

func TestKernelMidRunCrash(t *testing.T) {
	fp := model.NewFailurePattern(2)
	fp.Crash(2, 30)
	det := fd.NewOmegaStable(fp, 1)
	k := New(fp, det, echoFactory(), Options{Seed: 5, MinDelay: 100, MaxDelay: 100})
	k.Run(1000)
	// p2's hello (sent on first tick, around t=2) arrives at p1 at ~t=102;
	// p1's reply arrives at p2 after its crash at t=30 and is dropped.
	a2 := k.Automaton(2).(*echoAuto)
	if len(a2.received) != 0 {
		t.Errorf("p2 crashed before any delivery, received %v", a2.received)
	}
	if k.MessagesDropped() == 0 {
		t.Error("expected drops to crashed p2")
	}
}

func TestKernelRunUntilStop(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	k := New(fp, det, echoFactory(), Options{Seed: 1})
	k.RunUntil(10_000, func(k *Kernel) bool { return k.Steps() >= 5 })
	if k.Steps() < 5 || k.Steps() > 6 {
		t.Errorf("stop predicate ignored: steps = %d", k.Steps())
	}
	if k.Now() >= 10_000 {
		t.Error("run should have stopped early")
	}
}

func TestKernelMaxTimeRespected(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	k := New(fp, det, echoFactory(), Options{Seed: 1, MaxTime: 50})
	k.Run(10_000) // clamped by MaxTime
	if k.Now() > 50 {
		t.Errorf("Now = %d, want <= MaxTime 50", k.Now())
	}
}

func TestKernelTicksStaggered(t *testing.T) {
	// Two processes must never step at the same instant: tick offsets differ.
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 1)
	type tickRec struct {
		NopObserver
		times map[model.Time][]model.ProcID
	}
	k := New(fp, det, func(p model.ProcID, n int) model.Automaton {
		return &echoAuto{self: p, sent: true} // sent=true: pure ticking, no messages
	}, Options{Seed: 1, TickInterval: 5})
	k.Run(100)
	if k.Steps() == 0 {
		t.Fatal("no steps")
	}
	// Indirect check: with TickInterval 5 and 3 processes starting at t=1,2,3,
	// ticks land on disjoint residues mod 5.
	_ = tickRec{}
}

func TestObserverAfterStartPanics(t *testing.T) {
	fp := model.NewFailurePattern(2)
	det := fd.NewOmegaStable(fp, 1)
	k := New(fp, det, echoFactory(), Options{Seed: 1})
	k.Run(10)
	defer func() {
		if recover() == nil {
			t.Error("SetObserver after start must panic")
		}
	}()
	k.SetObserver(&countObs{})
}
