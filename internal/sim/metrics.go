package sim

import "repro/internal/obs"

// RegisterMetrics exposes the kernel's run counters on reg under the
// canonical kernel_* names as read-at-scrape functions. The kernel already
// maintains these counters for its own accounting, so a metrics-on run
// executes the identical per-step instruction stream as a metrics-off run —
// the overhead contract scripts/metrics_overhead.sh enforces. The kernel is
// single-threaded; scrape between Run calls (or after the run), not from a
// concurrent goroutine mid-run.
func (k *Kernel) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc(obs.MetricKernelSteps, k.Steps)
	reg.CounterFunc(obs.MetricKernelSent, k.MessagesSent)
	reg.CounterFunc(obs.MetricKernelDropped, k.MessagesDropped)
	reg.CounterFunc(obs.MetricKernelLost, k.MessagesLost)
}
