package sim

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

// testFaults is a minimal model.FaultModel for kernel tests: explicit down
// intervals [start, end) per process, end < 0 meaning forever. (The real
// schedule type lives in internal/sim/adversary, which sits above this
// package.)
type testFaults struct {
	n    int
	down map[model.ProcID][][2]model.Time
}

func (f testFaults) Up(p model.ProcID, t model.Time) bool {
	for _, iv := range f.down[p] {
		if t >= iv[0] && (iv[1] < 0 || t < iv[1]) {
			return false
		}
	}
	return true
}

func (f testFaults) Restarts(p model.ProcID) []model.Time {
	var out []model.Time
	for _, iv := range f.down[p] {
		if iv[1] >= 0 {
			out = append(out, iv[1])
		}
	}
	return out
}

// churnAuto records what one automaton incarnation experienced; the factory
// keeps every incarnation so tests can inspect state across restarts.
type churnAuto struct {
	self  model.ProcID
	ticks []model.Time
	got   []string
	ins   []string
}

func (a *churnAuto) Init(model.Context) {}

func (a *churnAuto) Tick(ctx model.Context) { a.ticks = append(a.ticks, ctx.Now()) }

func (a *churnAuto) Recv(_ model.Context, _ model.ProcID, payload any) {
	a.got = append(a.got, payload.(string))
}

func (a *churnAuto) Input(ctx model.Context, in any) {
	a.ins = append(a.ins, in.(string))
	ctx.Broadcast(in.(string))
}

func churnFactory(instances map[model.ProcID][]*churnAuto) model.AutomatonFactory {
	return func(p model.ProcID, n int) model.Automaton {
		a := &churnAuto{self: p}
		instances[p] = append(instances[p], a)
		return a
	}
}

// TestKernelInputAtRestartInstantReachesNewIncarnation pins the tie-break
// between a pre-run input and a restart scheduled at the SAME instant: the
// input's FIFO seq is smaller (ScheduleInput runs before start()), but
// executing it against the dying incarnation would wipe its effects —
// including a retransmission wrapper's unacked envelopes — in the same
// instant, silently losing the input. The kernel defers such an input past
// the restart, so the new incarnation receives it.
func TestKernelInputAtRestartInstantReachesNewIncarnation(t *testing.T) {
	fp := model.NewFailurePattern(2)
	faults := testFaults{n: 2, down: map[model.ProcID][][2]model.Time{
		1: {{100, 300}},
	}}
	instances := make(map[model.ProcID][]*churnAuto)
	k := New(fp, fd.NewOmegaStable(fp, 2), churnFactory(instances), Options{Seed: 1, Faults: faults})
	k.ScheduleInput(1, 300, "at-restart") // exactly the restart instant
	k.ScheduleInput(1, 320, "after")
	k.Run(2000)
	if n := len(instances[1]); n != 2 {
		t.Fatalf("p1 has %d incarnations, want 2 (initial + one restart)", n)
	}
	if old := instances[1][0]; len(old.ins) != 0 {
		t.Errorf("dying incarnation received inputs %v; they are wiped with its state in the same instant", old.ins)
	}
	fresh := instances[1][1]
	if len(fresh.ins) != 2 || fresh.ins[0] != "at-restart" || fresh.ins[1] != "after" {
		t.Errorf("new incarnation received %v, want [at-restart after]", fresh.ins)
	}
}

// TestKernelChurnSuspendRestart exercises the suspend/restart semantics:
// messages delivered during a down interval are dropped, a restart rebuilds
// the automaton from scratch (fresh state, Init re-run), and the tick chain
// pauses while down.
func TestKernelChurnSuspendRestart(t *testing.T) {
	fp := model.NewFailurePattern(3)
	faults := testFaults{n: 3, down: map[model.ProcID][][2]model.Time{
		2: {{100, 300}},
	}}
	instances := map[model.ProcID][]*churnAuto{}
	k := New(fp, fd.NewOmegaStable(fp, 1), churnFactory(instances), Options{Seed: 3, Faults: faults})
	k.ScheduleInput(1, 50, "m1")  // delivered everywhere (delays 10..20)
	k.ScheduleInput(1, 150, "m2") // p2 is down on arrival: dropped
	k.ScheduleInput(2, 200, "m3") // input to a down process: ignored
	k.ScheduleInput(1, 400, "m4") // delivered everywhere, incl. restarted p2
	k.Run(1000)

	if got := len(instances[1]); got != 1 {
		t.Fatalf("p1 has %d incarnations, want 1", got)
	}
	if got := len(instances[2]); got != 2 {
		t.Fatalf("p2 has %d incarnations, want 2 (restart rebuilds the automaton)", got)
	}
	first, second := instances[2][0], instances[2][1]
	if want := []string{"m1"}; !equalStrings(first.got, want) {
		t.Errorf("p2 first incarnation got %v, want %v (m2 dropped while down)", first.got, want)
	}
	if want := []string{"m4"}; !equalStrings(second.got, want) {
		t.Errorf("p2 second incarnation got %v, want %v (fresh state after restart)", second.got, want)
	}
	for _, p := range []model.ProcID{1, 3} {
		if want := []string{"m1", "m2", "m4"}; !equalStrings(instances[p][0].got, want) {
			t.Errorf("%v got %v, want %v (m3 input ignored while its target is down)", p, instances[p][0].got, want)
		}
	}
	if k.MessagesDropped() == 0 {
		t.Error("no messages dropped, expected m2's delivery to p2 to be dropped")
	}
	for _, tt := range first.ticks {
		if tt >= 100 {
			t.Errorf("p2 first incarnation ticked at %d, inside its down interval", tt)
		}
	}
	if len(second.ticks) == 0 {
		t.Fatal("p2 second incarnation never ticked: the restart must start a fresh tick chain")
	}
	if second.ticks[0] < 300 {
		t.Errorf("p2 restarted chain first tick at %d, before the restart at 300", second.ticks[0])
	}
}

// TestKernelChurnNoDuplicateTickChains: a down interval too short to contain
// a tick event leaves the old chain pending; the restart's generation bump
// must retire it, or the process would tick at double rate forever.
func TestKernelChurnNoDuplicateTickChains(t *testing.T) {
	fp := model.NewFailurePattern(2)
	faults := testFaults{n: 2, down: map[model.ProcID][][2]model.Time{
		1: {{7, 8}}, // p1 ticks at 1, 6, 11, ... with TickInterval 5: no tick in [7, 8)
	}}
	instances := map[model.ProcID][]*churnAuto{}
	k := New(fp, fd.NewOmegaStable(fp, 2), churnFactory(instances), Options{Seed: 1, Faults: faults})
	k.Run(200)

	if got := len(instances[1]); got != 2 {
		t.Fatalf("p1 has %d incarnations, want 2", got)
	}
	var all []model.Time
	for _, inst := range instances[1] {
		all = append(all, inst.ticks...)
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatalf("tick times not strictly increasing across restart: %v", all)
		}
		if all[i]-all[i-1] < 5 {
			t.Fatalf("ticks %d and %d closer than TickInterval: duplicate chains survived the restart (%v)", all[i-1], all[i], all)
		}
	}
	// The restarted chain begins at restart + TickInterval = 13, retiring the
	// old chain's pending tick at 11.
	second := instances[1][1]
	if len(second.ticks) == 0 || second.ticks[0] != 13 {
		t.Errorf("restarted chain ticks = %v, want first tick at 13", second.ticks)
	}
}

// TestKernelFaultsMonotoneEquivalence: passing the run's own FailurePattern
// as Options.Faults must reproduce the nil-Faults run bit-for-bit — the
// monotone special case goes through the same interface with no restarts.
func TestKernelFaultsMonotoneEquivalence(t *testing.T) {
	run := func(useFaults bool) []string {
		fp := model.NewFailurePattern(4)
		fp.Crash(4, 900)
		det := fd.NewOmegaEventual(fp, 2, 300)
		obs := &traceObs{}
		opts := Options{Seed: 7}
		if useFaults {
			opts.Faults = fp
		}
		k := New(fp, det, echoFactory(), opts)
		k.SetObserver(obs)
		k.ScheduleInput(1, 60, "go")
		k.Run(3000)
		return obs.events
	}
	a, b := run(false), run(true)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at event %d:\n  nil Faults: %s\n  fp Faults:  %s", i, a[i], b[i])
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
