package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/model"
)

// NetworkModel decides the fate of every message on the wire: how long the
// link from→to delays a message sent at a given time, and whether the message
// is delivered at all. It is the kernel's pluggable environment engine — the
// paper's results are parameterized by an environment (which processes crash,
// how links behave), and a NetworkModel is the link half of that object.
//
// Determinism contract: all randomness must come from the seed passed to
// Reset, which the kernel calls exactly once at construction with
// Options.Seed. Delay is invoked once per sent message, in send order, so a
// model that draws from its PRNG on each call is reproducible run-to-run.
// A NetworkModel instance must not be shared by two kernels running
// concurrently; sequential reuse is fine (each New re-seeds it).
//
// Models that honor the paper's eventual-delivery assumption (§2: every
// message sent over a link between correct processes is eventually received)
// must either always return deliver=true and express disruptions as finite
// extra delay — Partitioned, for example, buffers cross-partition traffic and
// releases it at heal time rather than dropping it — OR be paired with an
// automaton-level retransmission layer (internal/retransmit.Wrap) that
// restores eventual delivery end-to-end over the lossy wire, as
// internal/sim/adversary.Lossy is. A lossy model without retransmission runs
// outside the paper's model: the kernel permits it (counting the losses in
// MessagesLost) precisely so experiments can show eventual consistency
// failing to converge when eventual delivery is withdrawn.
// NetworkFactory builds a fresh NetworkModel instance. Options.Network takes
// a factory — not an instance — so that every kernel owns a private model and
// a shared Options value can never alias one stateful model across
// interleaved or concurrent kernels. The preset registry has always had this
// shape; Options now matches it.
type NetworkFactory func() NetworkModel

type NetworkModel interface {
	// Reset re-seeds the model's PRNG and clears any per-run state.
	Reset(seed int64)
	// Delay returns the delivery delay in ticks for a message from→to sent
	// at sendTime, and whether the message is delivered at all. Negative
	// delays are clamped to 0 by the kernel.
	Delay(from, to model.ProcID, sendTime model.Time) (delay model.Time, deliver bool)
}

// LeaderObservation reports the Ω output of the run's failure detector: the
// leader currently output at process p's module at time t, with ok=false when
// the detector history has no Ω component. It is the read-only window through
// which a protocol-aware network model sees the protocol it is scheduling
// against.
//
// The kernel installs one automatically (see LeaderAware): it answers from
// the same per-segment fd.Cached the step loop queries, so observations are
// deterministic, cheap within a constancy segment, and always consistent with
// what the automata themselves see through model.Context.FD().
type LeaderObservation func(p model.ProcID, t model.Time) (leader model.ProcID, ok bool)

// LeaderAware is an optional NetworkModel interface for protocol-aware
// adversaries. A model implementing it receives a LeaderObservation from the
// kernel at construction time (after Reset), and may consult it during Delay
// to aim disruption at the protocol's current leader —
// adversary.LeaderStarver pins every link touching the observed leader at the
// admissibility bound. The observation stays valid for the whole run; models
// must treat it as a pure query and must not retain it past the run.
//
// Composite models (ComposeNetworks) forward the observation to every layer
// that wants one. A model driven outside a kernel simply never receives an
// observation and must degrade gracefully (LeaderStarver falls back to its
// greedy spread with no starvation).
type LeaderAware interface {
	ObserveLeadership(obs LeaderObservation)
}

// NetworkValidator is an optional interface for models with configuration
// constraints that depend on the system size. The kernel calls Validate(n)
// at construction and panics on error; CLIs can call ValidateNetwork first
// to turn the same error into a flag diagnostic.
type NetworkValidator interface {
	Validate(n int) error
}

// ValidateNetwork checks a model's configuration against a system of n
// processes, if the model has constraints to check.
func ValidateNetwork(net NetworkModel, n int) error {
	if v, ok := net.(NetworkValidator); ok {
		return v.Validate(n)
	}
	return nil
}

// Uniform delays every message uniformly at random in [Min, Max] ticks,
// independently per message — the kernel's historical default. Set Min == Max
// for a fixed-delay network (used to measure latency in communication steps).
type Uniform struct {
	Min, Max model.Time

	rng *rand.Rand
}

var _ NetworkModel = (*Uniform)(nil)

// NewUniform returns a uniform-delay model over [min, max].
func NewUniform(min, max model.Time) *Uniform {
	if max < min {
		max = min
	}
	return &Uniform{Min: min, Max: max}
}

// Reset implements NetworkModel.
func (u *Uniform) Reset(seed int64) { u.rng = rand.New(rand.NewSource(seed)) }

// drawUniform samples a delay uniformly in [min, max] (clamping max up to
// min), drawing from rng exactly when max > min — the single draw shared by
// every model overlaying a uniform base, so their streams cannot diverge.
func drawUniform(rng *rand.Rand, min, max model.Time) model.Time {
	d := min
	if max > min {
		d += model.Time(rng.Int63n(int64(max-min) + 1))
	}
	return d
}

// Delay implements NetworkModel.
func (u *Uniform) Delay(model.ProcID, model.ProcID, model.Time) (model.Time, bool) {
	return drawUniform(u.rng, u.Min, u.Max), true
}

// Partitioned overlays crash-free network partitions on a uniform base
// delay. The process set is split into two sides (p ≤ LeftSize on the left,
// the rest on the right); partitions form and heal on a fixed schedule.
// While a partition is active, a message crossing sides is *buffered*, not
// dropped: it is released at the heal time and then experiences a fresh base
// delay, honoring the paper's eventual-delivery assumption. Same-side
// traffic, and all traffic outside partition windows, sees the base delay.
//
// The k-th partition window (k = 0, 1, ...) is [FirstAt + k·Interval,
// FirstAt + k·Interval + Duration). Interval == 0 means a single window.
// The crossing decision is made at send time: a message sent inside a
// window waits for that window's heal; a message sent outside is unaffected
// even if a partition forms while it is in flight (link state at send time
// decides, as in a store-and-forward relay at the partition boundary).
type Partitioned struct {
	// Min and Max bound the base link delay (defaults 10 and 20 if both 0).
	Min, Max model.Time
	// LeftSize is the number of processes on the left side (p1..pLeftSize).
	LeftSize int
	// FirstAt is when the first partition forms.
	FirstAt model.Time
	// Duration is how long each partition lasts before healing.
	Duration model.Time
	// Interval is the period between successive partition onsets
	// (0 = exactly one partition).
	Interval model.Time

	rng *rand.Rand
}

var _ NetworkModel = (*Partitioned)(nil)

// NewPartitioned returns a model with one partition window
// [firstAt, firstAt+duration) separating p1..pLeftSize from the rest, over a
// default 10–20 tick base delay.
func NewPartitioned(leftSize int, firstAt, duration model.Time) *Partitioned {
	return &Partitioned{LeftSize: leftSize, FirstAt: firstAt, Duration: duration}
}

// Reset implements NetworkModel.
func (m *Partitioned) Reset(seed int64) { m.rng = rand.New(rand.NewSource(seed)) }

// Validate implements NetworkValidator: the split must separate a non-empty
// side from a non-empty side (otherwise nothing ever partitions and runs
// would silently exercise the uniform base while claiming partitions), and
// windows must not overlap (Interval > 0 with Duration >= Interval means the
// network never heals, breaking the eventual-delivery assumption the model's
// buffer-until-heal behavior exists to honor).
func (m *Partitioned) Validate(n int) error {
	if m.LeftSize <= 0 || m.LeftSize >= n {
		return fmt.Errorf("sim: Partitioned.LeftSize=%d does not split a %d-process system", m.LeftSize, n)
	}
	if m.Interval > 0 && m.Duration >= m.Interval {
		return fmt.Errorf("sim: Partitioned windows overlap (Duration=%d >= Interval=%d): the network would never heal", m.Duration, m.Interval)
	}
	return nil
}

func (m *Partitioned) base() (model.Time, model.Time) {
	min, max := m.Min, m.Max
	if min == 0 && max == 0 {
		min, max = 10, 20
	}
	if max < min {
		max = min
	}
	return min, max
}

// healTime returns the end of the partition window active at t, or -1 if no
// partition is active at t.
func (m *Partitioned) healTime(t model.Time) model.Time {
	if m.Duration <= 0 || t < m.FirstAt {
		return -1
	}
	if m.Interval <= 0 {
		if t < m.FirstAt+m.Duration {
			return m.FirstAt + m.Duration
		}
		return -1
	}
	k := (t - m.FirstAt) / m.Interval
	onset := m.FirstAt + k*m.Interval
	if t < onset+m.Duration {
		return onset + m.Duration
	}
	return -1
}

// Delay implements NetworkModel.
func (m *Partitioned) Delay(from, to model.ProcID, sendTime model.Time) (model.Time, bool) {
	min, max := m.base()
	d := drawUniform(m.rng, min, max)
	crosses := (int(from) <= m.LeftSize) != (int(to) <= m.LeftSize)
	if crosses {
		if heal := m.healTime(sendTime); heal >= 0 {
			// Buffered at the partition boundary, released at heal time.
			return heal - sendTime + d, true
		}
	}
	return d, true
}

// MultiPartitioned generalizes Partitioned to k-side partitions: while a
// window is active the process set splits into Sides groups (process p is on
// side (p-1) mod Sides, so sides stay balanced and every side contains
// processes for any n >= Sides), and a message crossing sides is buffered
// until the window heals — the same store-and-forward semantics, decided at
// send time, as the two-sided model. Windows follow the same
// FirstAt/Duration/Interval schedule.
type MultiPartitioned struct {
	// Min and Max bound the base link delay (defaults 10 and 20 if both 0).
	Min, Max model.Time
	// Sides is the number of partition sides (>= 2).
	Sides int
	// FirstAt is when the first partition forms.
	FirstAt model.Time
	// Duration is how long each partition lasts before healing.
	Duration model.Time
	// Interval is the period between successive partition onsets
	// (0 = exactly one partition).
	Interval model.Time

	rng *rand.Rand
}

var _ NetworkModel = (*MultiPartitioned)(nil)

// NewMultiPartitioned returns a model with one k-side partition window
// [firstAt, firstAt+duration) over a default 10–20 tick base delay.
func NewMultiPartitioned(sides int, firstAt, duration model.Time) *MultiPartitioned {
	return &MultiPartitioned{Sides: sides, FirstAt: firstAt, Duration: duration}
}

// Reset implements NetworkModel.
func (m *MultiPartitioned) Reset(seed int64) { m.rng = rand.New(rand.NewSource(seed)) }

// Validate implements NetworkValidator: the split must produce at least two
// non-empty sides and the windows must heal (see Partitioned.Validate).
func (m *MultiPartitioned) Validate(n int) error {
	if m.Sides < 2 || m.Sides > n {
		return fmt.Errorf("sim: MultiPartitioned.Sides=%d does not split a %d-process system", m.Sides, n)
	}
	if m.Interval > 0 && m.Duration >= m.Interval {
		return fmt.Errorf("sim: MultiPartitioned windows overlap (Duration=%d >= Interval=%d): the network would never heal", m.Duration, m.Interval)
	}
	return nil
}

// Delay implements NetworkModel.
func (m *MultiPartitioned) Delay(from, to model.ProcID, sendTime model.Time) (model.Time, bool) {
	// Reuse Partitioned's base-delay defaults and window arithmetic through a
	// shim sharing the schedule fields; only the side assignment differs.
	shim := Partitioned{Min: m.Min, Max: m.Max, FirstAt: m.FirstAt, Duration: m.Duration, Interval: m.Interval}
	min, max := shim.base()
	d := drawUniform(m.rng, min, max)
	if (int(from)-1)%m.Sides != (int(to)-1)%m.Sides {
		if heal := shim.healTime(sendTime); heal >= 0 {
			return heal - sendTime + d, true
		}
	}
	return d, true
}

// Jittery models partial synchrony with asymmetric per-link latency classes
// and occasional spikes. Each directed link (from, to) is assigned a fixed
// latency class by hashing the pair — so p1→p2 and p2→p1 may differ — and
// every message additionally gets uniform jitter plus, with probability
// 1/SpikeEvery, a multiplicative spike (a slow retransmission, a GC pause,
// a routing flap). Delays are always finite: eventual delivery holds.
type Jittery struct {
	// Base is the floor latency of the fastest link class (default 5).
	Base model.Time
	// Classes are per-link latency additions; link (from, to) deterministically
	// uses Classes[(37·from + to) mod len(Classes)]. Default {0, 5, 15}.
	Classes []model.Time
	// Jitter is the per-message uniform jitter bound (default 5).
	Jitter model.Time
	// SpikeEvery makes ~1 in SpikeEvery messages spike (0 = never).
	SpikeEvery int
	// SpikeFactor multiplies the delay of a spiking message (default 8).
	SpikeFactor model.Time

	rng *rand.Rand
}

var _ NetworkModel = (*Jittery)(nil)

// NewJittery returns a jittery asymmetric model with sensible defaults and
// spikes on roughly one message in spikeEvery (0 disables spikes).
func NewJittery(spikeEvery int) *Jittery {
	return &Jittery{SpikeEvery: spikeEvery}
}

// Reset implements NetworkModel.
func (j *Jittery) Reset(seed int64) { j.rng = rand.New(rand.NewSource(seed)) }

// class returns the fixed latency class of the directed link from→to.
func (j *Jittery) class(from, to model.ProcID) model.Time {
	classes := j.Classes
	if len(classes) == 0 {
		classes = []model.Time{0, 5, 15}
	}
	return classes[(37*int(from)+int(to))%len(classes)]
}

// Delay implements NetworkModel.
func (j *Jittery) Delay(from, to model.ProcID, _ model.Time) (model.Time, bool) {
	base := j.Base
	if base <= 0 {
		base = 5
	}
	jitter := j.Jitter
	if jitter <= 0 {
		jitter = 5
	}
	d := base + j.class(from, to) + model.Time(j.rng.Int63n(int64(jitter)+1))
	if j.SpikeEvery > 0 && j.rng.Intn(j.SpikeEvery) == 0 {
		factor := j.SpikeFactor
		if factor <= 0 {
			factor = 8
		}
		d *= factor
	}
	return d, true
}

// presets names ready-made network environments so tests, benches, and CLI
// flags can say "partition" instead of hand-rolling delay parameters. Each
// call builds a fresh model value (the kernel seeds it), so presets are safe
// to use for many runs.
var presets = map[string]func() NetworkModel{
	// uniform: the historical default, delays in [10, 20].
	"uniform": func() NetworkModel { return NewUniform(10, 20) },
	// lan: tight low-latency links, delays in [1, 3].
	"lan": func() NetworkModel { return NewUniform(1, 3) },
	// wan: wide delay spread, delays in [20, 200].
	"wan": func() NetworkModel { return NewUniform(20, 200) },
	// fixed: constant delay 10 (latency measured in communication steps).
	"fixed": func() NetworkModel { return NewUniform(10, 10) },
	// partition: one 2000-tick partition at t = 500 splitting {p1, p2} off.
	"partition": func() NetworkModel { return NewPartitioned(2, 500, 2000) },
	// partition-flaky: a 500-tick partition every 2000 ticks, forever.
	"partition-flaky": func() NetworkModel {
		return &Partitioned{LeftSize: 2, FirstAt: 500, Duration: 500, Interval: 2000}
	},
	// jitter: asymmetric link classes, no spikes.
	"jitter": func() NetworkModel { return NewJittery(0) },
	// jitter-spiky: asymmetric link classes, ~1 in 20 messages spikes 8×.
	"jitter-spiky": func() NetworkModel { return NewJittery(20) },
	// partition-3way: one 2000-tick three-sided partition at t = 500.
	"partition-3way": func() NetworkModel { return NewMultiPartitioned(3, 500, 2000) },
}

// presetFaults holds the fault-schedule half of environment presets that have
// one (the churn-* presets registered by internal/sim/adversary). The factory
// takes the system size because schedules are per-process.
var presetFaults = map[string]func(n int) model.FaultModel{}

// RegisterPreset adds a named network preset to the registry shared by
// ecsim -net, the examples, and the experiment tables. Packages layered above
// the kernel (internal/sim/adversary) register their models from init, the
// same way image formats self-register. Duplicate names panic: presets are
// a global namespace and silent replacement would make two builds of the same
// flag value mean different environments.
func RegisterPreset(name string, mk func() NetworkModel) {
	if _, dup := presets[name]; dup {
		panic(fmt.Sprintf("sim: network preset %q already registered", name))
	}
	presets[name] = mk
}

// RegisterPresetFaults attaches a fault-schedule factory to a preset name, so
// environment presets can carry churn in addition to link behavior. If no
// network preset exists under the name, a Uniform default is registered so
// the name resolves everywhere a network preset does.
func RegisterPresetFaults(name string, mk func(n int) model.FaultModel) {
	if _, dup := presetFaults[name]; dup {
		panic(fmt.Sprintf("sim: fault preset %q already registered", name))
	}
	presetFaults[name] = mk
	if _, ok := presets[name]; !ok {
		presets[name] = func() NetworkModel { return NewUniform(10, 20) }
	}
}

// PresetFaults returns the fault-schedule factory attached to a preset, or
// nil for network-only presets. Callers pass the result (instantiated at
// their n) as Options.Faults.
func PresetFaults(name string) func(n int) model.FaultModel {
	return presetFaults[name]
}

// Preset returns a fresh instance of a named network environment.
func Preset(name string) (NetworkModel, error) {
	mk, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown network preset %q (want one of %v)", name, PresetNames())
	}
	return mk(), nil
}

// PresetFactory returns the factory of a named network environment, ready to
// assign to Options.Network. Each kernel built from the Options gets its own
// fresh instance.
func PresetFactory(name string) (NetworkFactory, error) {
	mk, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown network preset %q (want one of %v)", name, PresetNames())
	}
	return NetworkFactory(mk), nil
}

// PresetNames lists the available network presets, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
