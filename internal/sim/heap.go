package sim

import "repro/internal/model"

// eventHeap is the kernel's event queue: a 4-ary min-heap ordered by
// (t, seq). It replaces container/heap over []*event — the interface-based
// heap paid an indirect Less/Swap call per comparison and boxed every element
// through `any` on Push/Pop, and its pointer elements forced a freelist to
// keep steady-state allocation flat.
//
// Layout: the heap itself holds compact 24-byte key entries (t, seq, slot
// index); the full event values live in a slab of reusable slots addressed
// by index. Sift operations therefore move small, pointer-free keys — not
// ~112-byte events and not GC-visible pointers — while events are still
// stored by value (one slab slot each, recycled on pop, so steady-state runs
// allocate nothing per event). The 4-ary layout halves the tree depth of a
// binary heap; the wider child scan is cheap on adjacent 24-byte keys.
//
// Determinism: (t, seq) is a total order (seq is unique), so every correct
// heap — any arity, any layout — pops events in the identical sequence. The
// kernel's bit-for-bit reproducibility cannot depend on this file's internals.
type eventHeap struct {
	keys  []heapKey
	slots []event // payload storage; keys[i].slot indexes into this
	free  []int32 // recycled slot indexes
}

type heapKey struct {
	t    model.Time
	seq  int64
	slot int32
}

func keyLess(a, b *heapKey) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (h *eventHeap) len() int { return len(h.keys) }

// peekTime returns the timestamp of the minimum event without removing it.
// Callers must ensure the heap is non-empty.
func (h *eventHeap) peekTime() model.Time { return h.keys[0].t }

// topSlot returns the slab index of the minimum event without removing it.
// The index stays valid across heap operations (slots are only recycled by
// pop), so callers that dispatch in place — the batched-delivery path — hold
// the index, not the pointer, and re-resolve through slot() after any
// operation that may grow the slab.
func (h *eventHeap) topSlot() int32 { return h.keys[0].slot }

// slot resolves a slab index to the event stored there. The pointer is only
// valid until the next emplace (which may grow and move the slab).
func (h *eventHeap) slot(i int32) *event { return &h.slots[i] }

// emplace enqueues a key for time t and returns a pointer to the payload
// slot so the caller can fill the event IN PLACE — one write instead of
// build-then-copy. The pointer is only valid until the next heap operation
// (a later emplace may grow the slab and move it).
func (h *eventHeap) emplace(t model.Time, seq int64) *event {
	var idx int32
	if n := len(h.free); n > 0 {
		idx = h.free[n-1]
		h.free = h.free[:n-1]
	} else {
		idx = int32(len(h.slots))
		h.slots = append(h.slots, event{})
	}
	h.keys = append(h.keys, heapKey{t: t, seq: seq, slot: idx})
	h.up(len(h.keys) - 1)
	e := &h.slots[idx]
	e.t, e.seq = t, seq
	return e
}

// pop removes and returns the minimum event, recycling its slab slot. It
// returns a copy because dispatching an event pushes new ones, which may
// reuse or move the slot.
func (h *eventHeap) pop() event {
	q := h.keys
	top := q[0]
	n := len(q) - 1
	last := q[n]
	h.keys = q[:n]
	if n > 0 {
		q[0] = last
		h.down(0)
	}
	s := &h.slots[top.slot]
	e := *s
	s.msg.Payload, s.in, s.recips = nil, nil, nil // release references to the GC
	h.free = append(h.free, top.slot)
	return e
}

func (h *eventHeap) up(i int) {
	q := h.keys
	k := q[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !keyLess(&k, &q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = k
}

func (h *eventHeap) down(i int) {
	q := h.keys
	n := len(q)
	k := q[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if keyLess(&q[c], &q[min]) {
				min = c
			}
		}
		if !keyLess(&q[min], &k) {
			break
		}
		q[i] = q[min]
		i = min
	}
	q[i] = k
}
