package sim

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// TestEventHeapTotalOrder drains a randomly-built heap and checks that
// events come out in strict (t, seq) order — the total order the kernel's
// determinism rests on — including interleaved pushes mid-drain, and that
// payloads stay attached to their keys through slot recycling.
func TestEventHeapTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var h eventHeap
	seq := int64(0)
	push := func(tm model.Time) {
		seq++
		e := h.emplace(tm, seq)
		e.kind, e.p, e.in = evInput, model.ProcID(1), seq
	}
	for i := 0; i < 500; i++ {
		push(model.Time(rng.Intn(64))) // dense times: many ties broken by seq
	}
	var prevT model.Time
	var prevSeq int64
	popped := 0
	for h.len() > 0 {
		e := h.pop()
		if popped > 0 && (e.t < prevT || (e.t == prevT && e.seq <= prevSeq)) {
			t.Fatalf("pop %d out of order: (%d,%d) then (%d,%d)",
				popped, prevT, prevSeq, e.t, e.seq)
		}
		if e.in.(int64) != e.seq {
			t.Fatalf("payload detached from key: slot holds %v for seq %d", e.in, e.seq)
		}
		prevT, prevSeq = e.t, e.seq
		popped++
		// Mid-drain pushes, as the kernel does on every tick and send.
		if popped%3 == 0 && popped < 900 {
			push(prevT + model.Time(rng.Intn(32)))
		}
	}
	if popped < 500 {
		t.Fatalf("drained only %d events", popped)
	}
}

// TestEventHeapPeekMatchesPop verifies the peekTime/pop pair used by
// RunUntil's horizon check.
func TestEventHeapPeekMatchesPop(t *testing.T) {
	var h eventHeap
	for i, tm := range []model.Time{9, 3, 7, 3, 1} {
		h.emplace(tm, int64(i+1))
	}
	for h.len() > 0 {
		want := h.peekTime()
		if got := h.pop(); got.t != want {
			t.Fatalf("peekTime %d != popped t %d", want, got.t)
		}
	}
}

// TestEventHeapSlotReuse checks the slab stays flat: a long push/pop churn
// must not grow the slot array beyond the high-water mark of queued events.
func TestEventHeapSlotReuse(t *testing.T) {
	var h eventHeap
	seq := int64(0)
	for round := 0; round < 1000; round++ {
		for i := 0; i < 8; i++ {
			seq++
			h.emplace(model.Time(round*10+i), seq)
		}
		for i := 0; i < 8; i++ {
			h.pop()
		}
	}
	if len(h.slots) > 16 {
		t.Errorf("slot slab grew to %d for a queue that never exceeds 8", len(h.slots))
	}
}
