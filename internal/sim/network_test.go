package sim

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

func TestUniformDelayBounds(t *testing.T) {
	u := NewUniform(5, 25)
	u.Reset(3)
	for i := 0; i < 1000; i++ {
		d, deliver := u.Delay(1, 2, model.Time(i))
		if !deliver {
			t.Fatal("Uniform must always deliver")
		}
		if d < 5 || d > 25 {
			t.Fatalf("delay %d outside [5, 25]", d)
		}
	}
}

func TestUniformFixedDelay(t *testing.T) {
	u := NewUniform(10, 10)
	u.Reset(1)
	for i := 0; i < 50; i++ {
		if d, _ := u.Delay(1, 2, 0); d != 10 {
			t.Fatalf("fixed-delay network returned %d, want 10", d)
		}
	}
}

func TestUniformSwappedBoundsClamped(t *testing.T) {
	u := NewUniform(30, 10)
	u.Reset(1)
	if d, _ := u.Delay(1, 2, 0); d != 30 {
		t.Fatalf("max<min must clamp to min: got %d, want 30", d)
	}
}

func TestPartitionedBuffersAcrossSides(t *testing.T) {
	// {p1,p2} | {p3,p4}, partition during [100, 400).
	m := &Partitioned{Min: 10, Max: 10, LeftSize: 2, FirstAt: 100, Duration: 300}
	m.Reset(7)

	// Cross-side message sent inside the window: held until heal + base delay.
	d, deliver := m.Delay(1, 3, 200)
	if !deliver {
		t.Fatal("Partitioned must always deliver (eventual delivery)")
	}
	if got, want := model.Time(200)+d, model.Time(400+10); got != want {
		t.Fatalf("cross-partition message arrives at %d, want heal+base = %d", got, want)
	}
	// Same-side message inside the window: unaffected.
	if d, _ := m.Delay(3, 4, 200); d != 10 {
		t.Fatalf("same-side delay %d, want base 10", d)
	}
	// Cross-side message outside the window: unaffected.
	if d, _ := m.Delay(1, 3, 450); d != 10 {
		t.Fatalf("post-heal delay %d, want base 10", d)
	}
	if d, _ := m.Delay(1, 3, 50); d != 10 {
		t.Fatalf("pre-partition delay %d, want base 10", d)
	}
}

func TestPartitionedRecurringWindows(t *testing.T) {
	// 100-tick partitions at t = 1000, 2000, 3000, ...
	m := &Partitioned{Min: 5, Max: 5, LeftSize: 1, FirstAt: 1000, Duration: 100, Interval: 1000}
	m.Reset(1)
	cases := []struct {
		sendAt model.Time
		heldTo model.Time // 0 = not held
	}{
		{999, 0},
		{1000, 1100},
		{1099, 1100},
		{1100, 0},
		{2050, 2100},
		{5010, 5100},
	}
	for _, c := range cases {
		d, _ := m.Delay(1, 2, c.sendAt)
		arrive := c.sendAt + d
		if c.heldTo == 0 {
			if d != 5 {
				t.Errorf("send@%d: delay %d, want base 5", c.sendAt, d)
			}
		} else if arrive != c.heldTo+5 {
			t.Errorf("send@%d: arrives %d, want heal+base = %d", c.sendAt, arrive, c.heldTo+5)
		}
	}
}

func TestPartitionedZeroDurationIsTransparent(t *testing.T) {
	m := &Partitioned{Min: 10, Max: 10, LeftSize: 2}
	m.Reset(1)
	for _, at := range []model.Time{0, 100, 10_000} {
		if d, _ := m.Delay(1, 3, at); d != 10 {
			t.Fatalf("no-partition model delayed %d at t=%d, want 10", d, at)
		}
	}
}

func TestJitteryAsymmetricClasses(t *testing.T) {
	j := NewJittery(0)
	j.Reset(5)
	// Link classes are fixed per direction; p1→p2 and p2→p1 may differ. With
	// the default classes {0, 5, 15}: class(1,2) = (37+2)%3 = 0,
	// class(2,1) = (74+1)%3 = 0, class(1,3) = (37+3)%3 = 1 → classes differ
	// across links even when a particular pair coincides.
	if j.class(1, 3) == j.class(1, 2) && j.class(1, 3) == j.class(3, 1) {
		t.Fatal("expected distinct latency classes across links")
	}
	for i := 0; i < 200; i++ {
		d, deliver := j.Delay(1, 2, 0)
		if !deliver {
			t.Fatal("Jittery must always deliver")
		}
		// base 5 + class 0 + jitter [0,5] and no spikes.
		if d < 5 || d > 10 {
			t.Fatalf("delay %d outside [5, 10] for spike-free class-0 link", d)
		}
	}
}

func TestJitterySpikesBounded(t *testing.T) {
	j := NewJittery(10) // ~1 in 10 spikes at 8×
	j.Reset(9)
	spikes := 0
	for i := 0; i < 1000; i++ {
		d, _ := j.Delay(1, 2, 0)
		if d > 10 { // above the spike-free ceiling for this link
			spikes++
			if d > 10*8 {
				t.Fatalf("spiked delay %d above factor ceiling", d)
			}
		}
	}
	if spikes == 0 || spikes > 300 {
		t.Fatalf("spike count %d/1000 implausible for 1-in-10 spikes", spikes)
	}
}

func TestModelsSeedReproducible(t *testing.T) {
	models := map[string]NetworkModel{
		"uniform":     NewUniform(1, 100),
		"partitioned": &Partitioned{Min: 1, Max: 50, LeftSize: 2, FirstAt: 10, Duration: 40},
		"jittery":     NewJittery(5),
	}
	for name, m := range models {
		sample := func(seed int64) []model.Time {
			m.Reset(seed)
			out := make([]model.Time, 0, 100)
			for i := 0; i < 100; i++ {
				d, _ := m.Delay(model.ProcID(i%4+1), model.ProcID(i%3+1), model.Time(i))
				out = append(out, d)
			}
			return out
		}
		a, b := sample(42), sample(42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at draw %d: %d vs %d", name, i, a[i], b[i])
			}
		}
		c := sample(43)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same { // every model has a wide enough range here that seeds must differ
			t.Errorf("%s: different seeds produced identical delay streams", name)
		}
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	if len(names) < 6 {
		t.Fatalf("want at least 6 presets, got %v", names)
	}
	for _, name := range names {
		m, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		m.Reset(1)
		d, deliver := m.Delay(1, 2, 0)
		if !deliver || d < 0 {
			t.Fatalf("preset %q: delay=%d deliver=%v", name, d, deliver)
		}
	}
	if _, err := Preset("no-such-net"); err == nil {
		t.Fatal("unknown preset must error")
	}
	// Preset returns fresh instances: seeding one must not affect another.
	m1, _ := Preset("uniform")
	m2, _ := Preset("uniform")
	if m1 == m2 {
		t.Fatal("Preset must return a fresh model per call")
	}
}

func TestPartitionedValidate(t *testing.T) {
	good := &Partitioned{LeftSize: 2, FirstAt: 100, Duration: 400, Interval: 1000}
	if err := ValidateNetwork(good, 5); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	overlap := &Partitioned{LeftSize: 1, FirstAt: 100, Duration: 1000, Interval: 500}
	if err := ValidateNetwork(overlap, 5); err == nil {
		t.Error("Duration >= Interval (never-healing network) must be rejected")
	}
	for _, leftSize := range []int{0, 5, 7} {
		if err := ValidateNetwork(&Partitioned{LeftSize: leftSize, Duration: 100}, 5); err == nil {
			t.Errorf("LeftSize=%d of n=5 (no actual split) must be rejected", leftSize)
		}
	}
	// Models without constraints validate trivially.
	if err := ValidateNetwork(NewUniform(1, 2), 5); err != nil {
		t.Errorf("Uniform has no constraints: %v", err)
	}
}

func TestKernelRejectsDegeneratePartition(t *testing.T) {
	fp := model.NewFailurePattern(2)
	defer func() {
		if recover() == nil {
			t.Error("Partitioned with LeftSize >= n must panic at kernel construction")
		}
	}()
	New(fp, fd.NewOmegaStable(fp, 1), echoFactory(), Options{Seed: 1,
		Network: func() NetworkModel { return NewPartitioned(2, 500, 2000) }})
}

func TestPresetInstancesIndependent(t *testing.T) {
	m1, _ := Preset("wan")
	m2, _ := Preset("wan")
	m1.Reset(1)
	m2.Reset(1)
	for i := 0; i < 20; i++ {
		d1, _ := m1.Delay(1, 2, 0)
		d2, _ := m2.Delay(1, 2, 0)
		if d1 != d2 {
			t.Fatal("two same-seed instances of one preset must agree")
		}
	}
}
