package sim

import (
	"fmt"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
)

// traceObs records the full observable event sequence of a run as strings,
// so two runs can be compared event-for-event.
type traceObs struct {
	events []string
}

func (o *traceObs) OnSend(t model.Time, m Message) {
	o.events = append(o.events, fmt.Sprintf("S %d #%d %v->%v depth=%d cause=%d %v",
		t, m.ID, m.From, m.To, m.Depth, m.CauseID, m.Payload))
}

func (o *traceObs) OnDeliver(t model.Time, m Message) {
	o.events = append(o.events, fmt.Sprintf("D %d #%d %v->%v %v", t, m.ID, m.From, m.To, m.Payload))
}

func (o *traceObs) OnOutput(p model.ProcID, t model.Time, v any) {
	o.events = append(o.events, fmt.Sprintf("O %d %v %v", t, p, v))
}

func (o *traceObs) OnInput(p model.ProcID, t model.Time, v any) {
	o.events = append(o.events, fmt.Sprintf("I %d %v %v", t, p, v))
}

// runTrace executes one run with the given options and returns its full
// event sequence.
func runTrace(opts Options) []string {
	fp := model.NewFailurePattern(4)
	fp.Crash(4, 900)
	det := fd.NewOmegaEventual(fp, 2, 300)
	obs := &traceObs{}
	k := New(fp, det, echoFactory(), opts)
	k.SetObserver(obs)
	k.ScheduleInput(1, 60, "go")
	k.ScheduleInput(3, 400, "go")
	k.Run(3000)
	return obs.events
}

// TestKernelTraceDeterminism is the kernel's bit-for-bit determinism promise
// at trace granularity: same seed + same options ⇒ the identical sequence of
// send/deliver/input/output events, for every shipped network model.
func TestKernelTraceDeterminism(t *testing.T) {
	cases := map[string]func() Options{
		"uniform-default": func() Options { return Options{Seed: 7} },
		"uniform-wide":    func() Options { return Options{Seed: 7, MinDelay: 1, MaxDelay: 80} },
		"partitioned": func() Options {
			return Options{Seed: 7, Network: func() NetworkModel {
				return &Partitioned{LeftSize: 2, FirstAt: 200, Duration: 600}
			}}
		},
		"partitioned-recurring": func() Options {
			return Options{Seed: 7, Network: func() NetworkModel {
				return &Partitioned{LeftSize: 1, FirstAt: 100, Duration: 150, Interval: 500}
			}}
		},
		"jittery": func() Options { return Options{Seed: 7, Network: func() NetworkModel { return NewJittery(10) }} },
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			a := runTrace(mk())
			b := runTrace(mk())
			if len(a) == 0 {
				t.Fatal("empty trace")
			}
			if len(a) != len(b) {
				t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("traces diverge at event %d:\n  run1: %s\n  run2: %s", i, a[i], b[i])
				}
			}
		})
	}
}

// TestKernelTraceDeterminismSharedOptions re-runs with the SAME Options value
// (hence the same NetworkFactory): every kernel builds and seeds a fresh
// instance, so sequential runs must coincide.
func TestKernelTraceDeterminismSharedOptions(t *testing.T) {
	opts := Options{Seed: 11, Network: func() NetworkModel { return NewJittery(7) }}
	a := runTrace(opts)
	b := runTrace(opts)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shared-options traces diverge at event %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

// TestKernelTraceSeedSensitivity: different seeds must change the schedule
// under every randomized model (otherwise the PRNG is not wired through).
func TestKernelTraceSeedSensitivity(t *testing.T) {
	mks := map[string]func(seed int64) Options{
		"uniform": func(seed int64) Options { return Options{Seed: seed, MinDelay: 1, MaxDelay: 80} },
		"jittery": func(seed int64) Options {
			return Options{Seed: seed, Network: func() NetworkModel { return NewJittery(10) }}
		},
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			base := runTrace(mk(1))
			for seed := int64(2); seed <= 6; seed++ {
				got := runTrace(mk(seed))
				if len(got) != len(base) {
					return // schedules differ
				}
				for i := range got {
					if got[i] != base[i] {
						return
					}
				}
			}
			t.Error("five different seeds produced identical traces — PRNG unused?")
		})
	}
}
