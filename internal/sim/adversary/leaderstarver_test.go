package adversary

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
)

// stableObservation is a canned leadership observation: every module outputs
// the same leader at every time, as a stabilized Ω would.
func stableObservation(leader model.ProcID) sim.LeaderObservation {
	return func(model.ProcID, model.Time) (model.ProcID, bool) { return leader, true }
}

// TestLeaderStarverPinsLeaderLinks: with an observation installed and
// exploration disabled, every link touching the observed leader — incoming,
// outgoing, and the leader's own self-delivery — runs at the menu maximum,
// while a leader-free link does not saturate once its greedy score prefers
// otherwise. Without an observation the starver must degrade to spread-only
// (no victim, self-delivery at min).
func TestLeaderStarverPinsLeaderLinks(t *testing.T) {
	s := &LeaderStarver{Explore: -1}
	if err := s.Validate(4); err != nil {
		t.Fatal(err)
	}
	s.Reset(1)
	s.ObserveLeadership(stableObservation(2))
	min, max, _ := s.params()
	if d, _ := s.Delay(1, 2, 10); d != max {
		t.Errorf("message to the leader delayed %d, want the bound %d", d, max)
	}
	if d, _ := s.Delay(2, 3, 10); d != max {
		t.Errorf("message from the leader delayed %d, want the bound %d", d, max)
	}
	if d, _ := s.Delay(2, 2, 10); d != max {
		t.Errorf("the leader's self-delivery delayed %d, want the bound %d (its own step loop is starved too)", d, max)
	}
	if d, _ := s.Delay(3, 3, 10); d != min {
		t.Errorf("a follower's self-delivery delayed %d, want %d", d, min)
	}

	bare := &LeaderStarver{Explore: -1}
	if err := bare.Validate(4); err != nil {
		t.Fatal(err)
	}
	bare.Reset(1)
	if d, _ := bare.Delay(2, 2, 10); d != min {
		t.Errorf("no observation: self-delivery delayed %d, want %d", d, min)
	}
	for i := 0; i < 50; i++ {
		if _, ok := bare.Delay(1, 3, model.Time(i)); !ok {
			t.Fatal("starver must deliver every message")
		}
	}
}

// TestQuorumStarverSparesLeaderStarvesFollowers: with StarveQuorum the
// starved set flips — the leader's links run at the ordinary schedule while
// the ⌈n/2⌉ lowest-id FOLLOWERS (a transversal of every majority quorum) are
// pinned at the bound, self-delivery included. With n=5 and leader 2 the
// starved set is {1, 3, 4}: any 3-of-5 quorum must include one of them.
func TestQuorumStarverSparesLeaderStarvesFollowers(t *testing.T) {
	s := &LeaderStarver{Explore: -1, StarveQuorum: true}
	if err := s.Validate(5); err != nil {
		t.Fatal(err)
	}
	s.Reset(1)
	s.ObserveLeadership(stableObservation(2))
	min, max, _ := s.params()
	if d, _ := s.Delay(2, 2, 10); d != min {
		t.Errorf("leader self-delivery delayed %d, want %d (quorum mode spares the leader)", d, min)
	}
	for _, starved := range []model.ProcID{1, 3, 4} {
		if d, _ := s.Delay(2, starved, 10); d != max {
			t.Errorf("message to starved follower %d delayed %d, want the bound %d", starved, d, max)
		}
		if d, _ := s.Delay(starved, starved, 10); d != max {
			t.Errorf("starved follower %d self-delivery delayed %d, want the bound %d", starved, d, max)
		}
	}
	// p5 is outside the quorum transversal: its self-delivery is unstarved.
	if d, _ := s.Delay(5, 5, 10); d != min {
		t.Errorf("unstarved follower self-delivery delayed %d, want %d", d, min)
	}
	// No observation → no starved set, exactly as in the default mode.
	bare := &LeaderStarver{Explore: -1, StarveQuorum: true}
	if err := bare.Validate(5); err != nil {
		t.Fatal(err)
	}
	bare.Reset(1)
	if d, _ := bare.Delay(1, 1, 10); d != min {
		t.Errorf("no observation: self-delivery delayed %d, want %d", d, min)
	}
}

// TestLeaderStarverVictimFollowsOmega: the victim is the CURRENT Ω output of
// the canonical observer, so when leadership fails over the starvation moves
// with it, within the same run.
func TestLeaderStarverVictimFollowsOmega(t *testing.T) {
	s := &LeaderStarver{Explore: -1}
	if err := s.Validate(3); err != nil {
		t.Fatal(err)
	}
	s.Reset(7)
	s.ObserveLeadership(func(_ model.ProcID, t model.Time) (model.ProcID, bool) {
		if t < 500 {
			return 3, true
		}
		return 1, true
	})
	_, max, _ := s.params()
	if d, _ := s.Delay(2, 3, 100); d != max {
		t.Errorf("pre-failover message to p3 delayed %d, want %d", d, max)
	}
	if d, _ := s.Delay(2, 1, 600); d != max {
		t.Errorf("post-failover message to p1 delayed %d, want %d", d, max)
	}
	if d, _ := s.Delay(3, 3, 600); d == max {
		t.Errorf("p3's self-delivery still starved after failover: %d", d)
	}
}

// TestExplorationOverridesStarvation pins the precedence both schedulers
// share at their DEFAULT Explore: a 1-in-16 seeded random pick outranks even
// "unconditional" victim starvation, so across enough victim-link messages
// some delay must land below the bound. The earlier test suite only
// exercised Explore=-1; this pins the default across 10+ seeds for both the
// blind scheduler and the leader starver.
func TestExplorationOverridesStarvation(t *testing.T) {
	const calls = 300
	for seed := int64(1); seed <= 12; seed++ {
		adv := NewAdversarialScheduler() // default Explore=16
		if err := adv.Validate(4); err != nil {
			t.Fatal(err)
		}
		adv.Reset(seed)
		_, max, _, window := adv.params()
		sub := 0
		for i := 0; i < calls; i++ {
			// Stay inside the first rotation window: victim is p1 throughout.
			if d, _ := adv.Delay(2, 1, model.Time(i)%window); d != max {
				sub++
			}
		}
		if sub == 0 {
			t.Errorf("seed %d: blind scheduler never explored below the bound on a victim link in %d calls", seed, calls)
		}

		ls := NewLeaderStarver() // default Explore=16
		if err := ls.Validate(4); err != nil {
			t.Fatal(err)
		}
		ls.Reset(seed)
		ls.ObserveLeadership(stableObservation(1))
		lmax := model.Time(60)
		sub = 0
		for i := 0; i < calls; i++ {
			if d, _ := ls.Delay(2, 1, model.Time(i)); d != lmax {
				sub++
			}
		}
		if sub == 0 {
			t.Errorf("seed %d: leader starver never explored below the bound on a leader link in %d calls", seed, calls)
		}
	}
}

// TestSchedulerRangeFrozen pins the grow bugfix: the victim-rotation modulus
// is frozen by Validate, and a process id outside the validated system is a
// panic, not a silent resize of the rotation (which used to change every
// subsequent victim mid-run).
func TestSchedulerRangeFrozen(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("%s: expected panic", name)
			} else if !strings.Contains(fmt.Sprint(r), "adversary:") {
				t.Errorf("%s: panic %v does not identify the adversary package", name, r)
			}
		}()
		f()
	}
	a := NewAdversarialScheduler()
	if err := a.Validate(4); err != nil {
		t.Fatal(err)
	}
	a.Reset(1)
	mustPanic("to out of range", func() { a.Delay(2, 5, 10) })
	mustPanic("from out of range", func() { a.Delay(5, 2, 10) })
	mustPanic("zero id", func() { a.Delay(0, 2, 10) })

	unvalidated := NewAdversarialScheduler()
	unvalidated.Reset(1)
	mustPanic("Delay before Validate", func() { unvalidated.Delay(1, 2, 10) })

	ls := NewLeaderStarver()
	if err := ls.Validate(3); err != nil {
		t.Fatal(err)
	}
	ls.Reset(1)
	mustPanic("starver out of range", func() { ls.Delay(1, 4, 10) })
}

// hostilePresets are the protocol-aware and composite environments this PR
// registers; the determinism and parallel/serial tests below run all of them.
func hostilePresets() []string {
	return []string{"leader-starve", "churn-lossy", "hostile", "hostile-partition"}
}

// presetTrace runs one 4-process kernel under a named preset (network + any
// fault half) and returns its full event trace.
func presetTrace(t *testing.T, name string, seed int64) []string {
	t.Helper()
	nf, err := sim.PresetFactory(name)
	if err != nil {
		t.Fatal(err)
	}
	var faults model.FaultModel
	if ff := sim.PresetFaults(name); ff != nil {
		faults = ff(4)
	}
	return runTrace(seed, nf, faults)
}

// TestHostilePresetTraceDeterminism extends the package's 20-seed
// determinism contract to the leader-aware scheduler and both composite
// presets: same seed, same named environment ⇒ byte-identical event
// sequence, leadership observation and layered models included.
func TestHostilePresetTraceDeterminism(t *testing.T) {
	for _, name := range hostilePresets() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 20; seed++ {
				a, b := presetTrace(t, name, seed), presetTrace(t, name, seed)
				if len(a) == 0 {
					t.Fatalf("seed %d: empty trace", seed)
				}
				if len(a) != len(b) {
					t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("seed %d: traces diverge at event %d:\n  run1: %s\n  run2: %s", seed, i, a[i], b[i])
					}
				}
			}
		})
	}
}

// TestHostilePresetParallelSerialIdentity is the aliasing regression test
// for the new models: running the same seeds concurrently (one kernel per
// goroutine, all built from the same preset factories) must reproduce the
// serial traces byte for byte — no state may leak between kernels through
// the preset registry, the composition layer, or the leadership hook.
func TestHostilePresetParallelSerialIdentity(t *testing.T) {
	const seeds = 8
	for _, name := range hostilePresets() {
		t.Run(name, func(t *testing.T) {
			serial := make([][]string, seeds)
			for s := 0; s < seeds; s++ {
				serial[s] = presetTrace(t, name, int64(s+1))
			}
			parallel := make([][]string, seeds)
			var wg sync.WaitGroup
			for s := 0; s < seeds; s++ {
				s := s
				wg.Add(1)
				go func() {
					defer wg.Done()
					parallel[s] = presetTrace(t, name, int64(s+1))
				}()
			}
			wg.Wait()
			for s := 0; s < seeds; s++ {
				if len(serial[s]) != len(parallel[s]) {
					t.Fatalf("seed %d: serial %d events, parallel %d", s+1, len(serial[s]), len(parallel[s]))
				}
				for i := range serial[s] {
					if serial[s][i] != parallel[s][i] {
						t.Fatalf("seed %d: parallel trace diverges at event %d:\n  serial:   %s\n  parallel: %s", s+1, i, serial[s][i], parallel[s][i])
					}
				}
			}
		})
	}
}

// TestLeaderStarverInKernelStarvesStableLeader is the end-to-end hook test:
// a kernel built over a stable-leader Ω must hand the starver an observation
// that pins the leader's links — observable as every delivery from a
// follower to the leader arriving exactly Max after its send.
func TestLeaderStarverInKernelStarvesStableLeader(t *testing.T) {
	fp := model.NewFailurePattern(3)
	det := fd.NewOmegaStable(fp, 2)
	sent := map[int64]model.Time{}
	var worst, count int64
	obs := &funcObserver{
		onSend: func(tt model.Time, m sim.Message) {
			if m.From != m.To && m.To == 2 {
				sent[m.ID] = tt
			}
		},
		onDeliver: func(tt model.Time, m sim.Message) {
			if at, ok := sent[m.ID]; ok {
				count++
				if d := int64(tt - at); d != 60 {
					worst = d
				}
			}
		},
	}
	k := sim.New(fp, det, pingFactory(), sim.Options{
		Seed: 3,
		Network: func() sim.NetworkModel {
			return &LeaderStarver{Min: 1, Max: 60, Explore: -1}
		},
	})
	k.SetObserver(obs)
	k.ScheduleInput(1, 40, "a")
	k.ScheduleInput(3, 160, "b")
	k.Run(4000)
	if count == 0 {
		t.Fatal("no follower-to-leader deliveries observed")
	}
	if worst != 0 {
		t.Errorf("a follower-to-leader message took %d ticks, want exactly the 60-tick bound on every one", worst)
	}
}

// funcObserver adapts closures to sim.Observer.
type funcObserver struct {
	sim.NopObserver
	onSend    func(model.Time, sim.Message)
	onDeliver func(model.Time, sim.Message)
}

func (o *funcObserver) OnSend(t model.Time, m sim.Message) {
	if o.onSend != nil {
		o.onSend(t, m)
	}
}

func (o *funcObserver) OnDeliver(t model.Time, m sim.Message) {
	if o.onDeliver != nil {
		o.onDeliver(t, m)
	}
}
