package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// LeaderStarver is the protocol-AWARE adversarial scheduler: instead of
// starving a blindly rotating victim (AdversarialScheduler), it tracks the
// run's current Ω output through the kernel's leadership-observation hook
// (sim.LeaderAware) and pins every link touching the CURRENT LEADER at the
// admissibility bound. The whole convergence pipeline — updates flowing into
// the leader, promotions flowing out — is starved for as long as that process
// is the leader, which for a stabilized Ω is forever.
//
// This is the scheduler the blind rotation's honesty note in E12 asked for:
// a rotating victim spends only 1/n of the clock on the process that matters,
// and when the rotation happens to spare the post-stabilization leader the
// blind adversary can cost LESS than i.i.d. noise. The worst admissible
// schedule is protocol-aware; E13 quantifies the gap.
//
// Ω output is per-process and may disagree before stabilization, so the
// starver anchors ONE coherent victim per instant: the leader currently
// output at the lowest-id process's module (see victim). Every link
// touching the victim — incoming, outgoing, and the victim's own
// self-delivery — runs at Max; post-stabilization every module agrees and
// the rule is exactly "all links touching the leader run at Max". Starving
// every link that ANY view associates with leadership was tried and
// rejected: under a self-trusting pre-phase it saturates the whole system
// at Max, which is a synchronous lockstep — replicas see identical arrival
// orders and agree EARLY. Targeted asymmetry is the stronger adversary, and
// links the victim rule spares keep the same greedy arrival-spread
// lookahead as the blind scheduler.
//
// The observation is installed by the kernel at construction (any
// fd.Detector whose values carry an Ω component — Omega, OmegaUp,
// OmegaSigma — is visible; see fd.Cached.Leader). Driven without a kernel,
// or under a detector with no Ω component, the starver degrades to the pure
// greedy-spread adversary: no observation, no victim.
//
// Every delay is finite (≤ Max) and every message is delivered, so the
// starver remains an admissible §2 environment: eventual consistency must
// still converge, as late as a leader-aware greedy adversary can push it.
// Determinism: the exploration stream is drawn exactly as in
// AdversarialScheduler (one draw per non-self message), and leadership
// observations are pure queries of the deterministic detector history, so
// runs are bit-for-bit reproducible per seed.
type LeaderStarver struct {
	// Min and Max bound the delay menu (defaults 1 and 60 if both 0).
	Min, Max model.Time
	// Menu is the number of candidate delays (default 6, minimum 2).
	Menu int
	// Explore makes ~1 in Explore choices a seeded random menu pick
	// (default 16; negative disables). Exploration outranks starvation,
	// exactly as in AdversarialScheduler.
	Explore int
	// StarveQuorum redirects the starvation target from the leader to a
	// QUORUM of its followers: the ⌈n/2⌉ lowest-id processes other than the
	// current leader — the smallest set guaranteed to intersect every
	// majority quorum, so a Σ-style quorum primitive layered on these runs
	// cannot assemble an unstarved quorum. The leader's own links (its step
	// loop included) run at the ordinary greedy schedule; the adversary bets
	// that choking the followers' inbound promote traffic delays agreement
	// as much as choking its source. E14 quantifies that bet against the
	// leader-starving default.
	StarveQuorum bool

	n       int // frozen in Validate
	rng     *rand.Rand
	arrival []model.Time // index p: latest scheduled arrival at p (1-based)
	leader  sim.LeaderObservation
}

var _ sim.NetworkModel = (*LeaderStarver)(nil)
var _ sim.NetworkValidator = (*LeaderStarver)(nil)
var _ sim.LeaderAware = (*LeaderStarver)(nil)

// NewLeaderStarver returns the leader-aware scheduler with default menu
// parameters.
func NewLeaderStarver() *LeaderStarver { return &LeaderStarver{} }

// Validate implements sim.NetworkValidator, freezing the system size.
func (s *LeaderStarver) Validate(n int) error {
	if s.Menu == 1 {
		return fmt.Errorf("sim: LeaderStarver.Menu=1 leaves no delay choice to the adversary")
	}
	s.n = n
	return nil
}

// Reset implements sim.NetworkModel. The leadership observation, installed
// once per run by the kernel, survives Reset.
func (s *LeaderStarver) Reset(seed int64) {
	s.rng = rand.New(rand.NewSource(seed))
	s.arrival = make([]model.Time, s.n+1)
}

// ObserveLeadership implements sim.LeaderAware.
func (s *LeaderStarver) ObserveLeadership(obs sim.LeaderObservation) { s.leader = obs }

func (s *LeaderStarver) params() (min, max model.Time, menu int) {
	min, max = s.Min, s.Max
	if min == 0 && max == 0 {
		min, max = 1, 60
	}
	if max < min {
		max = min
	}
	menu = s.Menu
	if menu < 2 {
		menu = 6
	}
	return min, max, menu
}

// victim returns the process whose links are starved at time t: the leader
// currently output at the CANONICAL OBSERVER's failure-detector module. Ω
// output is per-process and may disagree before stabilization, so the
// adversary needs one coherent victim per instant; the lowest process id is
// the deterministic anchor (and the process the shipped Ω histories
// conventionally stabilize toward, which is what makes the bet vicious:
// under a self-trusting pre-phase the observer names ITSELF, so the starver
// is already sitting on the eventual leader's links — its own step loop
// included — long before the blind rotation would next visit it). From
// stabilization on every observer agrees and the victim IS the leader.
func (s *LeaderStarver) victim(t model.Time) (model.ProcID, bool) {
	if s.leader == nil {
		return model.NoProc, false
	}
	return s.leader(canonicalObserver, t)
}

// canonicalObserver is the process whose Ω view anchors the victim choice.
const canonicalObserver = model.ProcID(1)

// starves reports whether p's links run at the bound at time t. In the
// default mode the starved set is exactly {victim}. With StarveQuorum it is
// the ⌈n/2⌉ lowest-id processes OTHER than the victim — a deterministic
// transversal of every majority quorum that leaves the leader itself
// unstarved.
func (s *LeaderStarver) starves(p model.ProcID, t model.Time) bool {
	v, ok := s.victim(t)
	if !ok {
		return false
	}
	if !s.StarveQuorum {
		return p == v
	}
	if p == v {
		return false
	}
	quota := (s.n + 1) / 2
	for q := model.ProcID(1); quota > 0 && int(q) <= s.n; q++ {
		if q == v {
			continue
		}
		if q == p {
			return true
		}
		quota--
	}
	return false
}

// Delay implements sim.NetworkModel.
func (s *LeaderStarver) Delay(from, to model.ProcID, sendTime model.Time) (model.Time, bool) {
	min, max, menu := s.params()
	checkRange("LeaderStarver", s.n, from, to)
	if len(s.arrival) < s.n+1 {
		s.arrival = append(s.arrival, make([]model.Time, s.n+1-len(s.arrival))...)
	}
	if from == to {
		// Self-delivery models local memory — except a starved process's: the
		// leader's own step loop (an EC leader decides on its own promote
		// round-trip) is a link touching the leader, and pinning it is what
		// starves the promotion pipeline at its source; a starved follower's
		// step loop is likewise a link touching the follower.
		if s.starves(from, sendTime) {
			return max, true
		}
		return min, true
	}
	pick := explorePick(s.rng, s.Explore, menu)
	switch {
	case pick >= 0:
		// Seeded exploration chose for us (outranks starvation, as in
		// AdversarialScheduler).
	case s.starves(from, sendTime) || s.starves(to, sendTime):
		pick = menu - 1
	default:
		pick = greedySpread(s.arrival, to, sendTime, min, max, menu)
	}
	d := menuDelay(min, max, menu, pick)
	if arrive := sendTime + d; arrive > s.arrival[to] {
		s.arrival[to] = arrive
	}
	return d, true
}
