package adversary

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sim"
)

// Composite bundles BOTH halves of a hostile environment — a (possibly
// layered, see sim.ComposeNetworks) link model and a fault schedule — into a
// single value that registers under one preset name. Before it, a hostile
// environment was assembled by hand at every call site: pick a network
// preset, separately resolve its fault half, remember which pairs make
// sense. A Composite is the pair as one object, so "hostile" means the same
// stacked environment in ecsim -net, the examples, and the experiment
// tables.
type Composite struct {
	// Name is the preset name the composite registers under.
	Name string
	// Network builds the link half — typically a sim.ComposeNetworks stack.
	// Required.
	Network func() sim.NetworkModel
	// Faults builds the fault half at system size n — typically Churn or a
	// model.MergeFaults of several schedules. Nil means links only.
	Faults func(n int) model.FaultModel
}

// Register adds the composite to the shared preset registry: the network
// half under Name for every -net consumer, and the fault half (when present)
// where sim.PresetFaults resolves it. Like all preset registration it
// panics on a duplicate name.
func (c Composite) Register() {
	if c.Network == nil {
		panic(fmt.Sprintf("adversary: composite preset %q has no network half", c.Name))
	}
	// Network first: RegisterPresetFaults would otherwise install a Uniform
	// fallback under the name and the real network would collide with it.
	sim.RegisterPreset(c.Name, c.Network)
	if c.Faults != nil {
		sim.RegisterPresetFaults(c.Name, c.Faults)
	}
}
