package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// AdversarialScheduler is a sim.NetworkModel that picks message delays to
// maximize replica divergence and delay convergence, instead of drawing them
// i.i.d. — the scheduler-as-adversary view of the asynchronous model (the
// environment gets to choose any admissible schedule, and lower bounds are
// proved against the worst one).
//
// The adversary works greedily over a bounded delay menu (Menu evenly spaced
// values in [Min, Max]). For each message it scores every candidate delay
// with a one-step lookahead of the divergence it would cause and picks the
// argmax:
//
//   - Arrival spread: information reaching different processes at maximally
//     different times keeps their states apart longest, so a candidate
//     arrival is rewarded by its total distance from the latest scheduled
//     arrivals at all OTHER processes (pushing deliveries pairwise apart).
//
//   - Victim starvation: a rotating victim (one process per Window of the
//     clock) has ALL traffic touching it — incoming and outgoing — pinned to
//     the maximal delay while the rest of the system runs fast: the victim's
//     replica falls a full menu span behind and its own updates reach the
//     others as late as admissible, and the victim role moves on before the
//     gap fully heals. When the victim is the leader, the whole convergence
//     pipeline (updates in, promotions out) is starved at once.
//
// Ties break toward the larger delay, and a seeded 1-in-Explore choice takes
// a random menu entry instead of the greedy one (negative Explore disables),
// so distinct seeds explore distinct near-worst-case schedules. Every delay
// is finite (≤ Max) and every message is delivered: the scheduler stays an
// admissible §2 environment in which eventual consistency must still
// converge — E12 measures how much later the greedy schedule pushes
// convergence versus i.i.d. delays over the identical menu span.
type AdversarialScheduler struct {
	// Min and Max bound the delay menu (defaults 1 and 60 if both 0).
	Min, Max model.Time
	// Menu is the number of candidate delays (default 6, minimum 2).
	Menu int
	// Window is the victim rotation period in ticks (default 400).
	Window model.Time
	// Explore makes ~1 in Explore choices a seeded random menu pick
	// (default 16; negative disables exploration).
	Explore int

	n       int // learned in Validate; grown lazily if Validate was skipped
	rng     *rand.Rand
	arrival []model.Time // index p: latest scheduled arrival at p (1-based)
}

var _ sim.NetworkModel = (*AdversarialScheduler)(nil)
var _ sim.NetworkValidator = (*AdversarialScheduler)(nil)

// NewAdversarialScheduler returns the scheduler with default menu and
// rotation parameters.
func NewAdversarialScheduler() *AdversarialScheduler { return &AdversarialScheduler{} }

// Validate implements sim.NetworkValidator. It also records the system size,
// which the victim rotation needs; the kernel always validates before the
// first Delay call.
func (a *AdversarialScheduler) Validate(n int) error {
	if a.Menu == 1 {
		return fmt.Errorf("sim: AdversarialScheduler.Menu=1 leaves no delay choice to the adversary")
	}
	a.n = n
	return nil
}

// Reset implements sim.NetworkModel.
func (a *AdversarialScheduler) Reset(seed int64) {
	a.rng = rand.New(rand.NewSource(seed))
	a.arrival = make([]model.Time, a.n+1)
}

func (a *AdversarialScheduler) params() (min, max model.Time, menu int, window model.Time) {
	min, max = a.Min, a.Max
	if min == 0 && max == 0 {
		min, max = 1, 60
	}
	if max < min {
		max = min
	}
	menu = a.Menu
	if menu < 2 {
		menu = 6
	}
	window = a.Window
	if window <= 0 {
		window = 400
	}
	return min, max, menu, window
}

// grow makes the arrival table cover process p (only needed when the model is
// used without Validate, e.g. driven directly in a test).
func (a *AdversarialScheduler) grow(p model.ProcID) {
	for int(p) >= len(a.arrival) {
		a.arrival = append(a.arrival, 0)
		a.n = len(a.arrival) - 1
	}
}

// Delay implements sim.NetworkModel.
func (a *AdversarialScheduler) Delay(from, to model.ProcID, sendTime model.Time) (model.Time, bool) {
	min, max, menu, window := a.params()
	a.grow(to)
	if from == to {
		// Self-delivery models local memory; starving it would slow the
		// victim's own steps rather than its view of others.
		return min, true
	}
	victim := model.ProcID(int(sendTime/window)%a.n + 1)
	candidate := func(i int) model.Time {
		return min + model.Time(i)*(max-min)/model.Time(menu-1)
	}
	pick := -1
	explore := a.Explore
	if explore == 0 {
		explore = 16
	}
	if explore > 0 && a.rng.Intn(explore) == 0 {
		pick = a.rng.Intn(menu)
	}
	switch {
	case pick >= 0:
		// Seeded exploration chose for us.
	case from == victim || to == victim:
		// Starvation is unconditional: every link touching the victim runs at
		// the admissibility bound.
		pick = menu - 1
	default:
		// Greedy lookahead among the rest: score each menu delay by the
		// arrival spread it creates and keep the argmax.
		best := int64(-1)
		for i := 0; i < menu; i++ {
			arrive := sendTime + candidate(i)
			var score int64
			for q := 1; q < len(a.arrival); q++ {
				if model.ProcID(q) == to {
					continue
				}
				gap := int64(arrive - a.arrival[q])
				if gap < 0 {
					gap = -gap
				}
				score += gap
			}
			if score >= best { // ties toward the larger delay (later i)
				best, pick = score, i
			}
		}
	}
	d := candidate(pick)
	if arrive := sendTime + d; arrive > a.arrival[to] {
		a.arrival[to] = arrive
	}
	return d, true
}
