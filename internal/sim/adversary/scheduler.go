package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// AdversarialScheduler is a sim.NetworkModel that picks message delays to
// maximize replica divergence and delay convergence, instead of drawing them
// i.i.d. — the scheduler-as-adversary view of the asynchronous model (the
// environment gets to choose any admissible schedule, and lower bounds are
// proved against the worst one).
//
// The adversary works greedily over a bounded delay menu (Menu evenly spaced
// values in [Min, Max]). For each message it scores every candidate delay
// with a one-step lookahead of the divergence it would cause and picks the
// argmax:
//
//   - Arrival spread: information reaching different processes at maximally
//     different times keeps their states apart longest, so a candidate
//     arrival is rewarded by its total distance from the latest scheduled
//     arrivals at all OTHER processes (pushing deliveries pairwise apart).
//
//   - Victim starvation: a rotating victim (one process per Window of the
//     clock) has ALL traffic touching it — incoming and outgoing — pinned to
//     the maximal delay while the rest of the system runs fast: the victim's
//     replica falls a full menu span behind and its own updates reach the
//     others as late as admissible, and the victim role moves on before the
//     gap fully heals. When the victim is the leader, the whole convergence
//     pipeline (updates in, promotions out) is starved at once.
//
// Ties break toward the larger delay, and a seeded 1-in-Explore choice takes
// a random menu entry instead of the greedy one (negative Explore disables),
// so distinct seeds explore distinct near-worst-case schedules. Every delay
// is finite (≤ Max) and every message is delivered: the scheduler stays an
// admissible §2 environment in which eventual consistency must still
// converge — E12 measures how much later the greedy schedule pushes
// convergence versus i.i.d. delays over the identical menu span.
type AdversarialScheduler struct {
	// Min and Max bound the delay menu (defaults 1 and 60 if both 0).
	Min, Max model.Time
	// Menu is the number of candidate delays (default 6, minimum 2).
	Menu int
	// Window is the victim rotation period in ticks (default 400).
	Window model.Time
	// Explore makes ~1 in Explore choices a seeded random menu pick
	// (default 16; negative disables exploration).
	Explore int

	n       int // frozen in Validate; the victim-rotation modulus
	rng     *rand.Rand
	arrival []model.Time // index p: latest scheduled arrival at p (1-based)
}

var _ sim.NetworkModel = (*AdversarialScheduler)(nil)
var _ sim.NetworkValidator = (*AdversarialScheduler)(nil)

// NewAdversarialScheduler returns the scheduler with default menu and
// rotation parameters.
func NewAdversarialScheduler() *AdversarialScheduler { return &AdversarialScheduler{} }

// Validate implements sim.NetworkValidator. It also FREEZES the system size,
// which is the victim-rotation modulus: every subsequent Delay call must name
// processes in [1, n]. The kernel always validates before the first Delay
// call; a model driven directly in a test must do the same.
func (a *AdversarialScheduler) Validate(n int) error {
	if a.Menu == 1 {
		return fmt.Errorf("sim: AdversarialScheduler.Menu=1 leaves no delay choice to the adversary")
	}
	a.n = n
	return nil
}

// Reset implements sim.NetworkModel.
func (a *AdversarialScheduler) Reset(seed int64) {
	a.rng = rand.New(rand.NewSource(seed))
	a.arrival = make([]model.Time, a.n+1)
}

func (a *AdversarialScheduler) params() (min, max model.Time, menu int, window model.Time) {
	min, max = a.Min, a.Max
	if min == 0 && max == 0 {
		min, max = 1, 60
	}
	if max < min {
		max = min
	}
	menu = a.Menu
	if menu < 2 {
		menu = 6
	}
	window = a.Window
	if window <= 0 {
		window = 400
	}
	return min, max, menu, window
}

// checkRange rejects process ids outside the validated system. The rotation
// modulus n is frozen by Validate: growing it lazily mid-run (as an earlier
// revision did) silently changed `sendTime/window mod n` and with it every
// subsequent victim, so an out-of-range id is a caller bug, not a resize.
func checkRange(kind string, n int, from, to model.ProcID) {
	if n <= 0 {
		panic(fmt.Sprintf("adversary: %s.Delay before Validate (the victim rotation needs the system size)", kind))
	}
	if from < 1 || int(from) > n || to < 1 || int(to) > n {
		panic(fmt.Sprintf("adversary: %s.Delay(%v, %v) outside the validated %d-process system", kind, from, to, n))
	}
}

// Delay implements sim.NetworkModel.
func (a *AdversarialScheduler) Delay(from, to model.ProcID, sendTime model.Time) (model.Time, bool) {
	min, max, menu, window := a.params()
	checkRange("AdversarialScheduler", a.n, from, to)
	if len(a.arrival) < a.n+1 {
		// Reset ran before Validate froze n (legal when driven directly);
		// size the table without ever touching the rotation modulus.
		a.arrival = append(a.arrival, make([]model.Time, a.n+1-len(a.arrival))...)
	}
	if from == to {
		// Self-delivery models local memory; starving it would slow the
		// victim's own steps rather than its view of others.
		return min, true
	}
	victim := model.ProcID(int(sendTime/window)%a.n + 1)
	pick := explorePick(a.rng, a.Explore, menu)
	switch {
	case pick >= 0:
		// Seeded exploration chose for us — it outranks even "unconditional"
		// starvation (pinned by TestExplorationOverridesStarvation).
	case from == victim || to == victim:
		// Starvation is unconditional: every link touching the victim runs at
		// the admissibility bound.
		pick = menu - 1
	default:
		pick = greedySpread(a.arrival, to, sendTime, min, max, menu)
	}
	d := menuDelay(min, max, menu, pick)
	if arrive := sendTime + d; arrive > a.arrival[to] {
		a.arrival[to] = arrive
	}
	return d, true
}

// menuDelay returns the i-th of menu evenly spaced candidate delays spanning
// [min, max].
func menuDelay(min, max model.Time, menu, i int) model.Time {
	return min + model.Time(i)*(max-min)/model.Time(menu-1)
}

// explorePick draws the seeded exploration choice shared by the adversarial
// schedulers: with probability ~1/explore it returns a random menu index,
// otherwise -1 ("no exploration this message"). explore == 0 means the
// default of 16; negative disables. The draw happens for every non-self
// message, exploration or not, so the PRNG stream — and with it the whole
// schedule — does not shift when starvation conditions change.
func explorePick(rng *rand.Rand, explore, menu int) int {
	if explore == 0 {
		explore = 16
	}
	if explore > 0 && rng.Intn(explore) == 0 {
		return rng.Intn(menu)
	}
	return -1
}

// greedySpread is the divergence lookahead shared by the adversarial
// schedulers: it scores each menu delay by the total distance of the
// candidate arrival from the latest scheduled arrivals at all OTHER
// processes, and returns the argmax index with ties toward the larger delay.
func greedySpread(arrival []model.Time, to model.ProcID, sendTime, min, max model.Time, menu int) int {
	best, pick := int64(-1), menu-1
	for i := 0; i < menu; i++ {
		arrive := sendTime + menuDelay(min, max, menu, i)
		var score int64
		for q := 1; q < len(arrival); q++ {
			if model.ProcID(q) == to {
				continue
			}
			gap := int64(arrive - arrival[q])
			if gap < 0 {
				gap = -gap
			}
			score += gap
		}
		if score >= best { // ties toward the larger delay (later i)
			best, pick = score, i
		}
	}
	return pick
}
