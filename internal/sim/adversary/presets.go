package adversary

import (
	"repro/internal/model"
	"repro/internal/sim"
)

// The adversary models self-register as environment presets so ecsim -net,
// the examples, and the partition demo can name them — the same pattern the
// kernel's built-in presets use, layered through sim.RegisterPreset because
// this package sits above the kernel.
//
// The churn presets carry a fault schedule instead of link behavior: they
// pair the default uniform network with a canned Churn schedule (fixed
// internal seed — presets are named environments, reproducible by name
// alone). Callers resolve the schedule with sim.PresetFaults(name)(n).
func init() {
	// lossy: ~15% mean per-link loss, independent drops. Violates eventual
	// delivery — pair with retransmit.Wrap unless the point is to watch
	// convergence fail.
	sim.RegisterPreset("lossy", func() sim.NetworkModel { return NewLossy(0.15) })
	// lossy-burst: ~15% mean loss arriving in bursts of up to 4.
	sim.RegisterPreset("lossy-burst", func() sim.NetworkModel { return &Lossy{Drop: 0.15, Burst: 4} })
	// adversarial: divergence-maximizing scheduler, default menu [1, 60].
	sim.RegisterPreset("adversarial", func() sim.NetworkModel { return NewAdversarialScheduler() })
	// churn-fast: short lives — mean 600 up / 200 down until t=4000.
	sim.RegisterPresetFaults("churn-fast", func(n int) model.FaultModel {
		return Churn(n, ChurnConfig{Seed: 1, MeanUp: 600, MeanDown: 200, Until: 4000})
	})
	// churn-slow: long lives — mean 2400 up / 400 down until t=8000.
	sim.RegisterPresetFaults("churn-slow", func(n int) model.FaultModel {
		return Churn(n, ChurnConfig{Seed: 1, MeanUp: 2400, MeanDown: 400, Until: 8000})
	})
	// leader-starve: the protocol-aware scheduler — links touching the
	// current Ω leader pinned at the bound, menu [1, 60]. Admissible.
	sim.RegisterPreset("leader-starve", func() sim.NetworkModel { return NewLeaderStarver() })
	// churn-lossy: the first composite preset — churn-fast's restart cadence
	// UNDER lossy links (~15% mean drop), so down intervals and message loss
	// compound. p1 is spared, as in E10: restart means state reset, so a
	// schedule that eventually restarts EVERY replica wipes the system's
	// memory and "convergence" degenerates to agreeing on nothing — some
	// process must carry the history across the churn, and the conventional
	// eventual leader is the natural survivor. Pair with -retransmit for
	// convergence.
	Composite{
		Name:    "churn-lossy",
		Network: func() sim.NetworkModel { return NewLossy(0.15) },
		Faults: func(n int) model.FaultModel {
			return Churn(n, ChurnConfig{Seed: 1, MeanUp: 600, MeanDown: 200, Until: 4000,
				Spare: []model.ProcID{1}})
		},
	}.Register()
	// hostile: the full stack — leader-aware adversarial delays layered under
	// ~10% mean loss (the Lossy layer contributes a constant 1-tick delay;
	// the starver owns the schedule), over a churn window that spares p1 (see
	// churn-lossy). The worst named environment in the registry; pair with
	// -retransmit for convergence.
	Composite{
		Name: "hostile",
		Network: func() sim.NetworkModel {
			return sim.ComposeNetworks(
				&LeaderStarver{Min: 1, Max: 60},
				&Lossy{Min: 1, Max: 1, Drop: 0.10},
			)
		},
		Faults: func(n int) model.FaultModel {
			return Churn(n, ChurnConfig{Seed: 1, MeanUp: 900, MeanDown: 250, Until: 4000,
				Spare: []model.ProcID{1}})
		},
	}.Register()
	// hostile-partition: the hostile stack with a TIMED partition-and-heal
	// layer composed on top — {p1, p2} split from the rest over the window
	// [1500, 2300), cross-partition traffic buffered at the boundary and
	// released at the heal (sim.Partitioned's eventual-delivery behavior), on
	// top of the starver's schedule and the lossy layer's drops. The same
	// scenario the live injector runs under the matching preset name, so a
	// partition-spanning chaos run means the same environment in the
	// simulator and over real sockets. Pair with -retransmit for convergence.
	Composite{
		Name: "hostile-partition",
		Network: func() sim.NetworkModel {
			return sim.ComposeNetworks(
				&LeaderStarver{Min: 1, Max: 60},
				&Lossy{Min: 1, Max: 1, Drop: 0.10},
				&sim.Partitioned{Min: 1, Max: 1, LeftSize: 2, FirstAt: 1500, Duration: 800},
			)
		},
		Faults: func(n int) model.FaultModel {
			return Churn(n, ChurnConfig{Seed: 1, MeanUp: 900, MeanDown: 250, Until: 4000,
				Spare: []model.ProcID{1}})
		},
	}.Register()
}
