package adversary

import (
	"repro/internal/model"
	"repro/internal/sim"
)

// The adversary models self-register as environment presets so ecsim -net,
// the examples, and the partition demo can name them — the same pattern the
// kernel's built-in presets use, layered through sim.RegisterPreset because
// this package sits above the kernel.
//
// The churn presets carry a fault schedule instead of link behavior: they
// pair the default uniform network with a canned Churn schedule (fixed
// internal seed — presets are named environments, reproducible by name
// alone). Callers resolve the schedule with sim.PresetFaults(name)(n).
func init() {
	// lossy: ~15% mean per-link loss, independent drops. Violates eventual
	// delivery — pair with retransmit.Wrap unless the point is to watch
	// convergence fail.
	sim.RegisterPreset("lossy", func() sim.NetworkModel { return NewLossy(0.15) })
	// lossy-burst: ~15% mean loss arriving in bursts of up to 4.
	sim.RegisterPreset("lossy-burst", func() sim.NetworkModel { return &Lossy{Drop: 0.15, Burst: 4} })
	// adversarial: divergence-maximizing scheduler, default menu [1, 60].
	sim.RegisterPreset("adversarial", func() sim.NetworkModel { return NewAdversarialScheduler() })
	// churn-fast: short lives — mean 600 up / 200 down until t=4000.
	sim.RegisterPresetFaults("churn-fast", func(n int) model.FaultModel {
		return Churn(n, ChurnConfig{Seed: 1, MeanUp: 600, MeanDown: 200, Until: 4000})
	})
	// churn-slow: long lives — mean 2400 up / 400 down until t=8000.
	sim.RegisterPresetFaults("churn-slow", func(n int) model.FaultModel {
		return Churn(n, ChurnConfig{Seed: 1, MeanUp: 2400, MeanDown: 400, Until: 8000})
	})
}
