package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// Lossy is a sim.NetworkModel with message loss: delivered messages see a
// uniform base delay in [Min, Max], but each message is dropped with its
// link's drop probability, and a drop can open a BURST that takes out the
// next messages on the same directed link too (losses cluster in practice:
// a flapping route or an overflowing queue kills runs of packets, not
// isolated ones).
//
// Per-link drop rates derive from the seed: link (from, to) gets a rate in
// [0, 2*Drop] (mean Drop across links), computed by hashing the seed with
// the link — so the rate map is a pure function of (seed, config), not of
// the order links are first used. Self-links (from == to) never lose: a
// process's messages to itself model local memory, not a wire.
//
// A raw Lossy network violates the paper's eventual-delivery assumption (§2)
// by design. Pair it with internal/retransmit.Wrap to restore eventual
// delivery end-to-end; see the package comment.
type Lossy struct {
	// Min and Max bound the base delay of delivered messages
	// (defaults 10 and 20 if both 0).
	Min, Max model.Time
	// Drop is the mean per-message drop probability across links, in [0, 1).
	Drop float64
	// Burst, when >= 2, makes each loss take out up to Burst consecutive
	// messages on that link (the burst length is drawn uniformly in
	// [1, Burst]). 0 or 1 means independent losses.
	Burst int

	seed      int64
	rng       *rand.Rand
	burstLeft map[linkKey]int
}

type linkKey struct{ from, to model.ProcID }

var _ sim.NetworkModel = (*Lossy)(nil)
var _ sim.NetworkValidator = (*Lossy)(nil)

// NewLossy returns a lossy model with mean drop probability drop over a
// default 10–20 tick base delay, with independent (non-burst) losses.
func NewLossy(drop float64) *Lossy { return &Lossy{Drop: drop} }

// Reset implements sim.NetworkModel.
func (l *Lossy) Reset(seed int64) {
	l.seed = seed
	l.rng = rand.New(rand.NewSource(seed))
	l.burstLeft = make(map[linkKey]int)
}

// Validate implements sim.NetworkValidator.
func (l *Lossy) Validate(int) error {
	if l.Drop < 0 || l.Drop >= 1 {
		return fmt.Errorf("sim: Lossy.Drop=%v outside [0, 1): a link losing everything can never deliver, retransmitted or not", l.Drop)
	}
	return nil
}

func (l *Lossy) base() (model.Time, model.Time) {
	min, max := l.Min, l.Max
	if min == 0 && max == 0 {
		min, max = 10, 20
	}
	if max < min {
		max = min
	}
	return min, max
}

// linkRate returns the directed link's drop probability in [0, 2*Drop],
// clamped to [0, 1): a pure function of (seed, from, to) via a splitmix-style
// integer hash, independent of call order.
func (l *Lossy) linkRate(from, to model.ProcID) float64 {
	x := uint64(l.seed)*0x9e3779b97f4a7c15 + uint64(from)*0xbf58476d1ce4e5b9 + uint64(to)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	r := 2 * l.Drop * float64(x>>11) / float64(1<<53)
	if r >= 1 {
		r = 0.999
	}
	return r
}

// Delay implements sim.NetworkModel. The base delay is drawn for every
// message — dropped or not — so with independent losses (Burst <= 1) the
// delay stream of surviving messages does not depend on which predecessors
// were lost. Burst mode trades that property away: starting a burst costs an
// extra draw and burst-suppressed messages skip the drop draw, shifting the
// stream — still fully deterministic per seed, just coupled to the loss
// pattern.
func (l *Lossy) Delay(from, to model.ProcID, _ model.Time) (model.Time, bool) {
	min, max := l.base()
	d := min
	if max > min {
		d += model.Time(l.rng.Int63n(int64(max-min) + 1))
	}
	if from == to || l.Drop <= 0 {
		return d, true
	}
	key := linkKey{from, to}
	if left := l.burstLeft[key]; left > 0 {
		l.burstLeft[key] = left - 1
		return 0, false
	}
	if l.rng.Float64() < l.linkRate(from, to) {
		if l.Burst >= 2 {
			l.burstLeft[key] = l.rng.Intn(l.Burst) // this drop + up to Burst-1 more
		}
		return 0, false
	}
	return d, true
}
